package hilos

import (
	"repro/internal/cluster"
	"repro/internal/faults"
)

// Fault-injection re-exports: the deterministic failure vocabulary of the
// cluster's robustness layer.
type (
	// FaultPlan describes every fault a cluster run will observe: scheduled
	// events, a fleet-wide transient error probability, and a flash
	// endurance budget. The zero value schedules nothing and is
	// bit-identical to running without faults at all.
	FaultPlan = faults.Plan
	// FaultEvent is one scheduled fault on the simulated clock.
	FaultEvent = faults.Event
	// FaultKind names one injectable fault class.
	FaultKind = faults.Kind
	// ClusterRetryPolicy bounds the recovery layer: per-batch retries with
	// deterministic exponential backoff, and the consecutive-failure
	// circuit breaker that quarantines a pipeline.
	ClusterRetryPolicy = cluster.RetryPolicy
)

// The registered fault kinds.
const (
	// FaultFailStop takes a pipeline down at AtSec for DurationSec: running
	// work is killed (and retried elsewhere), queued work fails over.
	FaultFailStop = faults.FailStop
	// FaultTransient is a probabilistic per-batch execution error — the
	// batch burns its time, produces nothing, and is retried with backoff.
	FaultTransient = faults.Transient
	// FaultStraggler multiplies a pipeline's service time by Factor for
	// DurationSec — slow-but-alive.
	FaultStraggler = faults.Straggler
	// FaultWearOut permanently retires a pipeline once its cumulative flash
	// writes cross the endurance budget.
	FaultWearOut = faults.WearOut
)

// FaultKinds lists the registered fault kinds in documentation order.
func FaultKinds() []FaultKind { return faults.Kinds() }

// DefaultClusterRetryPolicy is the recovery configuration WithFaults implies
// when WithRetryPolicy is not given: 3 retries, 1 s backoff doubling to 60 s,
// quarantine after 3 consecutive failures for 120 s.
func DefaultClusterRetryPolicy() ClusterRetryPolicy { return cluster.DefaultRetryPolicy() }

// GenerateFailStops draws a deterministic fail-stop schedule for a fleet:
// exponential times between failures (mean mtbfSec, excluding downtime) and
// exponential repair windows (mean mttrSec) per pipeline, over [0,
// horizonSec). Deterministic per seed and independent of trace content.
func GenerateFailStops(seed int64, pipelines int, horizonSec, mtbfSec, mttrSec float64) ([]FaultEvent, error) {
	return faults.GenerateFailStops(seed, pipelines, horizonSec, mtbfSec, mttrSec)
}

// WithFaults injects the plan's faults into the cluster run: fail-stop and
// straggler windows fire at their scheduled instants, transient batch errors
// draw from the plan's seeded PRNG, and wear budgets retire pipelines whose
// cumulative flash writes cross them. The recovery layer (bounded retries
// with exponential backoff, circuit-breaker quarantine, failover, degraded
// dispatch onto lossy tiers) reacts deterministically: replays are
// bit-identical, and a zero-value plan leaves the Summary bit-identical to
// not calling WithFaults at all. Unless WithRetryPolicy is also given,
// DefaultClusterRetryPolicy applies.
func WithFaults(plan FaultPlan) ClusterOption {
	return func(c *clusterConfig) error {
		p := plan
		c.faults = &p
		return nil
	}
}

// WithRetryPolicy replaces the recovery layer's retry/backoff/quarantine
// configuration (see ClusterRetryPolicy; useful without WithFaults too, for
// traces whose engines refuse batches). The zero value disables retries:
// every failed attempt is terminal.
func WithRetryPolicy(rp ClusterRetryPolicy) ClusterOption {
	return func(c *clusterConfig) error {
		r := rp
		c.retry = &r
		return nil
	}
}
