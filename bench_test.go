package hilos

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/accel"
	"repro/internal/attention"
	"repro/internal/baseline"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/estimator"
	"repro/internal/experiments"
	"repro/internal/longbench"
	"repro/internal/model"
	"repro/internal/pipeline"
	"repro/internal/repcache"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/tensor"
	"repro/internal/workload"
)

// --- One benchmark per paper table/figure (DESIGN.md §3 index). Each
// regenerates the corresponding experiment end to end; b.N repetitions give
// stable timings of the full harness.

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	g, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	r := experiments.New()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Cold cache per iteration: each op measures full table generation
		// (cross-point dedup included), independent of b.N and of which
		// benchmarks ran earlier in the process.
		repcache.Reset()
		tab := g.Run(r)
		if len(tab.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

func BenchmarkFig2Motivation(b *testing.B)       { benchExperiment(b, "fig2") }
func BenchmarkFig4Breakdown(b *testing.B)        { benchExperiment(b, "fig4") }
func BenchmarkTable3Resources(b *testing.B)      { benchExperiment(b, "table3") }
func BenchmarkFig10Throughput(b *testing.B)      { benchExperiment(b, "fig10") }
func BenchmarkFig11BatchSweep(b *testing.B)      { benchExperiment(b, "fig11") }
func BenchmarkFig12aKernels(b *testing.B)        { benchExperiment(b, "fig12a") }
func BenchmarkFig12bModels(b *testing.B)         { benchExperiment(b, "fig12b") }
func BenchmarkFig13SpillSweep(b *testing.B)      { benchExperiment(b, "fig13") }
func BenchmarkFig14OutputLen(b *testing.B)       { benchExperiment(b, "fig14") }
func BenchmarkFig15Ablation(b *testing.B)        { benchExperiment(b, "fig15") }
func BenchmarkFig16aCost(b *testing.B)           { benchExperiment(b, "fig16a") }
func BenchmarkFig16bEndurance(b *testing.B)      { benchExperiment(b, "fig16b") }
func BenchmarkFig17aEnergy(b *testing.B)         { benchExperiment(b, "fig17a") }
func BenchmarkFig17bMultiNode(b *testing.B)      { benchExperiment(b, "fig17b") }
func BenchmarkEstimatorCorrelation(b *testing.B) { benchExperiment(b, "est") }
func BenchmarkISPProjection(b *testing.B)        { benchExperiment(b, "isp") }
func BenchmarkExtFutureCSD(b *testing.B)         { benchExperiment(b, "ext-csd") }
func BenchmarkExtCXL(b *testing.B)               { benchExperiment(b, "ext-cxl") }
func BenchmarkExtFTL(b *testing.B)               { benchExperiment(b, "ext-ftl") }

// BenchmarkFig18cAccuracy runs one task of the accuracy suite per iteration
// (the full five-task suite is exercised by the fig18c experiment and takes
// ~10 s; benchmark the unit of work instead).
func BenchmarkFig18cAccuracy(b *testing.B) {
	task := longbench.Suite()[2] // the 1K-context task
	task.Samples = 10
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := task.Score(int64(i), longbench.Blocked); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Micro-benchmarks of the functional and timing substrates.

func benchBlockedAttention(b *testing.B, seq int) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	q := tensor.RandMat(rng, 1, 128, 1)
	k := tensor.RandMat(rng, seq, 128, 1)
	v := tensor.RandMat(rng, seq, 128, 1)
	b.SetBytes(int64(2 * seq * 128 * 2))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		attention.Blocked(q, k, v, nil, 128)
	}
}

func BenchmarkBlockedAttention4K(b *testing.B) { benchBlockedAttention(b, 4096) }

// BenchmarkBlockedAttention64K exposes kernel scaling with context length:
// ns/op should grow linearly from the 4K case and allocs/op stay flat (all
// scratch comes from the sync.Pool arenas). Runs with the default worker
// count; the Serial/Workers4 pair below is the machine-independent gate.
func BenchmarkBlockedAttention64K(b *testing.B) { benchBlockedAttention(b, 64*1024) }

// benchBlockedAttentionWorkers pins the worker count explicitly so the
// Serial/Workers4 ratio is comparable across machines: same shape, same
// chunk partition, only the concurrency differs (results are bit-identical).
func benchBlockedAttentionWorkers(b *testing.B, seq, dim, workers int) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	q := tensor.RandMat(rng, 1, dim, 1)
	k := tensor.RandMat(rng, seq, dim, 1)
	v := tensor.RandMat(rng, seq, dim, 1)
	b.SetBytes(int64(2 * seq * dim * 2))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		attention.BlockedWorkers(q, k, v, nil, 128, workers)
	}
}

// BenchmarkBlockedAttention64KSerial / ...Workers4 are the parallel-kernel
// regression pair: hilos-bench gates their ns/op ratio at ≥ 2x (decode-shape
// chunk sharding must actually scale), machine-independently.
func BenchmarkBlockedAttention64KSerial(b *testing.B) {
	benchBlockedAttentionWorkers(b, 64*1024, 128, 1)
}
func BenchmarkBlockedAttention64KWorkers4(b *testing.B) {
	benchBlockedAttentionWorkers(b, 64*1024, 128, 4)
}

// BenchmarkBlockedAttention1M is the 1M-token decode shape (head dim 64
// keeps K+V at 512 MB). One op streams the full megatoken K/V range through
// the chunked parallel dataflow.
func BenchmarkBlockedAttention1M(b *testing.B) { benchBlockedAttentionWorkers(b, 1<<20, 64, 4) }

// BenchmarkGQAAttention64K measures the shared-K/V-traversal group kernel:
// 8 query heads, one 64K cache, each K row read once per block for the
// whole group.
func BenchmarkGQAAttention64K(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const seq, dim, group = 64 * 1024, 128, 8
	q := tensor.RandMat(rng, group, dim, 1)
	k := tensor.RandMat(rng, seq, dim, 1)
	v := tensor.RandMat(rng, seq, dim, 1)
	b.SetBytes(int64(2 * seq * dim * 2))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		attention.GQAWorkers(q, k, v, nil, 128, 4)
	}
}

// BenchmarkTopKBlocksAttention64K measures the lossy block-sparse kernel on
// the decode shape: parallel score+pool over 64K tokens, serial selection of
// 64 blocks, attention over the kept 8K tokens.
func BenchmarkTopKBlocksAttention64K(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const seq, dim = 64 * 1024, 128
	q := tensor.RandMat(rng, 1, dim, 1)
	k := tensor.RandMat(rng, seq, dim, 1)
	v := tensor.RandMat(rng, seq, dim, 1)
	b.SetBytes(int64(2 * seq * dim * 2))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		attention.TopKBlocksWorkers(q, k, v, nil, 64, 128, 4)
	}
}

// BenchmarkDot vs BenchmarkDotRef is the striped-lane regression pair:
// hilos-bench floors the 8-lane striped Dot at ≥ 1.3x over the retained
// scalar reference on the head-dimension-scale vectors the kernels feed it.
func benchDot(b *testing.B, dot func(a, c []float32) float32) {
	b.Helper()
	rng := rand.New(rand.NewSource(5))
	const n = 4096
	x := make([]float32, n)
	y := make([]float32, n)
	for i := range x {
		x[i] = float32(rng.NormFloat64())
		y[i] = float32(rng.NormFloat64())
	}
	b.SetBytes(int64(2 * n * 4))
	b.ResetTimer()
	var sink float32
	for i := 0; i < b.N; i++ {
		sink += dot(x, y)
	}
	if math.IsNaN(float64(sink)) {
		b.Fatal("NaN sink")
	}
}

func BenchmarkDot(b *testing.B)    { benchDot(b, tensor.Dot) }
func BenchmarkDotRef(b *testing.B) { benchDot(b, tensor.DotRef) }

// BenchmarkTransposeBlocked vs BenchmarkTransposeRef measures the cache win
// of the 64×64 tiled transpose on a matrix whose columns stride far past L1
// (2048×2048 float32 = 16 MiB).
func benchTranspose(b *testing.B, t func(m tensor.Mat) tensor.Mat) {
	b.Helper()
	rng := rand.New(rand.NewSource(6))
	m := tensor.RandMat(rng, 2048, 2048, 1)
	b.SetBytes(int64(2048 * 2048 * 4))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := t(m); out.Rows != m.Cols {
			b.Fatal("bad shape")
		}
	}
}

func BenchmarkTransposeBlocked(b *testing.B) { benchTranspose(b, tensor.Mat.T) }
func BenchmarkTransposeRef(b *testing.B)     { benchTranspose(b, tensor.Mat.TransposeRef) }

// benchAcceleratorAttentionWorkers pins the worker count for the accel
// parallel-datapath regression pair: same (group × chunk) grid, only the
// concurrency differs (results are bit-identical).
func benchAcceleratorAttentionWorkers(b *testing.B, seq, workers int) {
	b.Helper()
	rng := rand.New(rand.NewSource(2))
	const group, dim = 8, 128
	a, err := accel.New(accel.Config{DGroup: group, HeadDim: dim})
	if err != nil {
		b.Fatal(err)
	}
	q := tensor.RandMat(rng, group, dim, 1)
	k := tensor.RandMat(rng, seq, dim, 1)
	v := tensor.RandMat(rng, seq, dim, 1)
	b.SetBytes(int64(2 * seq * dim * 2))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.AttentionWorkers(q, k, v, nil, tensor.Mat{}, tensor.Mat{}, workers); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAcceleratorAttention16KSerial / ...Workers4 gate the accel
// parallel datapath the same way the Blocked 64K pair gates the attention
// kernels: hilos-bench floors the ns/op ratio at ≥ 4 procs.
func BenchmarkAcceleratorAttention16KSerial(b *testing.B) {
	benchAcceleratorAttentionWorkers(b, 16*1024, 1)
}
func BenchmarkAcceleratorAttention16KWorkers4(b *testing.B) {
	benchAcceleratorAttentionWorkers(b, 16*1024, 4)
}

func BenchmarkAcceleratorAttention4K(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	a, err := accel.New(accel.Config{DGroup: 1, HeadDim: 128})
	if err != nil {
		b.Fatal(err)
	}
	q := tensor.RandMat(rng, 1, 128, 1)
	k := tensor.RandMat(rng, 4096, 128, 1)
	v := tensor.RandMat(rng, 4096, 128, 1)
	b.SetBytes(int64(2 * 4096 * 128 * 2))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Attention(q, k, v, nil, tensor.Mat{}, tensor.Mat{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTwoPassSoftmax(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	x := make([]float32, 32*1024)
	for i := range x {
		x[i] = float32(rng.NormFloat64() * 4)
	}
	b.SetBytes(int64(len(x) * 4))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		attention.SoftmaxTwoPass(x, nil, 128)
	}
}

// naivePartialAddToken is the pre-optimization AddToken retained for the
// micro-benchmark delta: it converted the accumulator through float64 on
// every element of the rescale and accumulate loops.
func naivePartialAddToken(p *attention.Partial, score float32, vrow []float32) {
	s := float64(score)
	if s > p.Stats.M {
		r := math.Exp(p.Stats.M - s)
		for i := range p.Acc {
			p.Acc[i] = float32(float64(p.Acc[i]) * r)
		}
		p.Stats.Z = p.Stats.Z * r
		p.Stats.M = s
	}
	w := math.Exp(s - p.Stats.M)
	p.Stats.Z += w
	for i := range p.Acc {
		p.Acc[i] += float32(w * float64(vrow[i]))
	}
}

func benchPartialTokens(b *testing.B, add func(p *attention.Partial, s float32, vrow []float32)) {
	b.Helper()
	const seq, dv = 4096, 128
	rng := rand.New(rand.NewSource(4))
	scores := make([]float32, seq)
	for i := range scores {
		scores[i] = float32(rng.NormFloat64() * 3)
	}
	v := tensor.RandMat(rng, seq, dv, 1)
	p := attention.NewPartial(dv)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Reset()
		for j, s := range scores {
			add(&p, s, v.Row(j))
		}
	}
}

// BenchmarkPartialAddToken vs BenchmarkPartialAddTokenNaive shows the
// ns-per-token win from hoisting the float64↔float32 conversions out of the
// accumulator loops (4096 tokens × 128 dims per op).
func BenchmarkPartialAddToken(b *testing.B) {
	benchPartialTokens(b, func(p *attention.Partial, s float32, vrow []float32) {
		p.AddToken(s, vrow)
	})
}

func BenchmarkPartialAddTokenNaive(b *testing.B) {
	benchPartialTokens(b, naivePartialAddToken)
}

// BenchmarkPartialAddBlock folds the same tokens through the block-level
// streaming update (one accumulator rescale per 128-token block).
func BenchmarkPartialAddBlock(b *testing.B) {
	const seq, dv, bs = 4096, 128, 128
	rng := rand.New(rand.NewSource(4))
	scores := make([]float32, seq)
	for i := range scores {
		scores[i] = float32(rng.NormFloat64() * 3)
	}
	v := tensor.RandMat(rng, seq, dv, 1)
	p := attention.NewPartial(dv)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Reset()
		for lo := 0; lo < seq; lo += bs {
			p.AddBlock(scores[lo:lo+bs], v, lo)
		}
	}
}

func BenchmarkSimEngineDecodeStep(b *testing.B) {
	tb := device.DefaultTestbed()
	req := pipeline.Request{Model: model.OPT175B, Batch: 16, Context: 131072, OutputLen: 64}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := core.Run(tb, req, core.DefaultOptions(16))
		if rep.OOM {
			b.Fatal(rep.Reason)
		}
	}
}

func BenchmarkBaselineDecodeStep(b *testing.B) {
	tb := device.DefaultTestbed()
	req := pipeline.Request{Model: model.OPT175B, Batch: 16, Context: 131072, OutputLen: 64}
	flex := baseline.FlexSSD(tb)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := flex.Run(tb, req)
		if rep.OOM {
			b.Fatal(rep.Reason)
		}
	}
}

// schedulerWorkload builds the 5000-task two-resource pipeline graph both
// scheduler benchmarks share; run selects the heap event loop or the
// retained O(n²) reference, and timeline toggles the TaskRecord opt-out.
func schedulerWorkload(b *testing.B, run func(e *sim.Engine) sim.Result, timeline bool) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := sim.NewEngine()
		e.RecordTimeline(timeline)
		r1 := e.Resource("a", 10)
		r2 := e.Resource("b", 5)
		var prev *sim.Task
		for l := 0; l < 2500; l++ {
			t1 := e.Task("x", r1, 3, prev)
			prev = e.Task("y", r2, 2, t1)
		}
		run(e)
	}
}

func BenchmarkSchedulerListScheduling(b *testing.B) {
	schedulerWorkload(b, func(e *sim.Engine) sim.Result { return e.Run() }, true)
}

// BenchmarkSchedulerListSchedulingReference measures the retained O(n²)
// scheduler on the same graph; the ratio to BenchmarkSchedulerListScheduling
// is the machine-independent speedup cmd/hilos-bench -bench-check guards.
func BenchmarkSchedulerListSchedulingReference(b *testing.B) {
	schedulerWorkload(b, func(e *sim.Engine) sim.Result { return e.RunReference() }, true)
}

// BenchmarkSchedulerNoTimeline measures the heap scheduler with the
// per-task TaskRecord append opted out.
func BenchmarkSchedulerNoTimeline(b *testing.B) {
	schedulerWorkload(b, func(e *sim.Engine) sim.Result { return e.Run() }, false)
}

// BenchmarkScheduler1M pushes the event-driven scheduler to a 1M-task DAG
// (the per-token granularity of a 1M-token decode timeline): slab-allocated
// tasks (Engine.Grow), timeline recording off. One op builds and schedules
// the full graph; completing at all is the point — the O(n²) reference
// would take hours here.
func BenchmarkScheduler1M(b *testing.B) {
	const pairs = 1 << 19 // 2 tasks per pair = 1,048,576 tasks
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := sim.NewEngine()
		e.RecordTimeline(false)
		e.Grow(2 * pairs)
		r1 := e.Resource("a", 10)
		r2 := e.Resource("b", 5)
		var prev *sim.Task
		for l := 0; l < pairs; l++ {
			t1 := e.Task("x", r1, 3, prev)
			prev = e.Task("y", r2, 2, t1)
		}
		res := e.Run()
		if res.Makespan <= 0 {
			b.Fatal("empty schedule")
		}
	}
}

func BenchmarkEstimatorSweep(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pts := estimator.Sweep()
		if _, err := estimator.Correlation(pts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCycleModelKernelTime(b *testing.B) {
	cm := accel.DefaultCycleModel(5, 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if cm.KernelTime(131072) <= 0 {
			b.Fatal("non-positive kernel time")
		}
	}
}

// --- Cluster scheduling loop with and without the telemetry layer.
// Synthetic constant-cost fleet so the measurement is the event loop and
// instrumentation, not pipeline math. The Off variant is the regression
// gate: telemetry must stay opt-in with near-zero disabled cost, and the
// On/Off ratio is capped by hilos-bench.

func clusterBenchInput(b *testing.B) (cluster.Config, []cluster.Request) {
	b.Helper()
	constRun := func(totalSec float64) cluster.RunFunc {
		return func(req pipeline.Request) pipeline.Report {
			return pipeline.Report{Batch: req.Batch, PrefillSec: totalSec, StepSec: 0}
		}
	}
	cfg := cluster.Config{
		Model: model.OPT30B,
		Fleet: []cluster.Pipeline{
			{Name: "hilos-0", Run: constRun(40)},
			{Name: "hilos-1", Run: constRun(40)},
			{Name: "hilos-2", Run: constRun(40)},
			{Name: "dram-0", Run: constRun(15)},
		},
		Policy:    cluster.LeastLoaded,
		Admission: cluster.Admission{MaxBatch: 8, MaxWaitSec: 20, Preemption: true},
	}
	arrivals, err := workload.BurstyArrivals(11, 4, 512)
	if err != nil {
		b.Fatal(err)
	}
	reqs := make([]cluster.Request, len(arrivals))
	for i, at := range arrivals {
		r := cluster.Request{ID: i, Class: workload.Medium, ArrivalSec: at}
		if i%2 == 0 {
			r.Class = workload.Short
			r.Priority = 1
			r.DeadlineSec = 120
		}
		reqs[i] = r
	}
	return cfg, reqs
}

func benchCluster(b *testing.B, instrument bool) {
	cfg, reqs := clusterBenchInput(b)
	if instrument {
		reg := telemetry.NewRegistry()
		stream := telemetry.NewStream()
		defer stream.Close()
		sub := stream.Subscribe(1024)
		_ = sub
		cfg.Telemetry = cluster.NewTelemetry(reg, stream)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := cluster.Run(cfg, reqs)
		if err != nil {
			b.Fatal(err)
		}
		if s.Completed == 0 {
			b.Fatal("no completions")
		}
	}
}

func BenchmarkClusterTelemetryOff(b *testing.B) { benchCluster(b, false) }
func BenchmarkClusterTelemetryOn(b *testing.B)  { benchCluster(b, true) }
