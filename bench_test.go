package hilos

import (
	"math/rand"
	"testing"

	"repro/internal/accel"
	"repro/internal/attention"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/estimator"
	"repro/internal/experiments"
	"repro/internal/longbench"
	"repro/internal/model"
	"repro/internal/pipeline"
	"repro/internal/sim"
	"repro/internal/tensor"
)

// --- One benchmark per paper table/figure (DESIGN.md §3 index). Each
// regenerates the corresponding experiment end to end; b.N repetitions give
// stable timings of the full harness.

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	g, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	r := experiments.New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab := g.Run(r)
		if len(tab.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

func BenchmarkFig2Motivation(b *testing.B)       { benchExperiment(b, "fig2") }
func BenchmarkFig4Breakdown(b *testing.B)        { benchExperiment(b, "fig4") }
func BenchmarkTable3Resources(b *testing.B)      { benchExperiment(b, "table3") }
func BenchmarkFig10Throughput(b *testing.B)      { benchExperiment(b, "fig10") }
func BenchmarkFig11BatchSweep(b *testing.B)      { benchExperiment(b, "fig11") }
func BenchmarkFig12aKernels(b *testing.B)        { benchExperiment(b, "fig12a") }
func BenchmarkFig12bModels(b *testing.B)         { benchExperiment(b, "fig12b") }
func BenchmarkFig13SpillSweep(b *testing.B)      { benchExperiment(b, "fig13") }
func BenchmarkFig14OutputLen(b *testing.B)       { benchExperiment(b, "fig14") }
func BenchmarkFig15Ablation(b *testing.B)        { benchExperiment(b, "fig15") }
func BenchmarkFig16aCost(b *testing.B)           { benchExperiment(b, "fig16a") }
func BenchmarkFig16bEndurance(b *testing.B)      { benchExperiment(b, "fig16b") }
func BenchmarkFig17aEnergy(b *testing.B)         { benchExperiment(b, "fig17a") }
func BenchmarkFig17bMultiNode(b *testing.B)      { benchExperiment(b, "fig17b") }
func BenchmarkEstimatorCorrelation(b *testing.B) { benchExperiment(b, "est") }
func BenchmarkISPProjection(b *testing.B)        { benchExperiment(b, "isp") }
func BenchmarkExtFutureCSD(b *testing.B)         { benchExperiment(b, "ext-csd") }
func BenchmarkExtCXL(b *testing.B)               { benchExperiment(b, "ext-cxl") }
func BenchmarkExtFTL(b *testing.B)               { benchExperiment(b, "ext-ftl") }

// BenchmarkFig18cAccuracy runs one task of the accuracy suite per iteration
// (the full five-task suite is exercised by the fig18c experiment and takes
// ~10 s; benchmark the unit of work instead).
func BenchmarkFig18cAccuracy(b *testing.B) {
	task := longbench.Suite()[2] // the 1K-context task
	task.Samples = 10
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := task.Score(int64(i), longbench.Blocked); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Micro-benchmarks of the functional and timing substrates.

func BenchmarkBlockedAttention4K(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	q := tensor.RandMat(rng, 1, 128, 1)
	k := tensor.RandMat(rng, 4096, 128, 1)
	v := tensor.RandMat(rng, 4096, 128, 1)
	b.SetBytes(int64(2 * 4096 * 128 * 2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		attention.Blocked(q, k, v, nil, 128)
	}
}

func BenchmarkAcceleratorAttention4K(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	a, err := accel.New(accel.Config{DGroup: 1, HeadDim: 128})
	if err != nil {
		b.Fatal(err)
	}
	q := tensor.RandMat(rng, 1, 128, 1)
	k := tensor.RandMat(rng, 4096, 128, 1)
	v := tensor.RandMat(rng, 4096, 128, 1)
	b.SetBytes(int64(2 * 4096 * 128 * 2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Attention(q, k, v, nil, tensor.Mat{}, tensor.Mat{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTwoPassSoftmax(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	x := make([]float32, 32*1024)
	for i := range x {
		x[i] = float32(rng.NormFloat64() * 4)
	}
	b.SetBytes(int64(len(x) * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		attention.SoftmaxTwoPass(x, nil, 128)
	}
}

func BenchmarkSimEngineDecodeStep(b *testing.B) {
	tb := device.DefaultTestbed()
	req := pipeline.Request{Model: model.OPT175B, Batch: 16, Context: 131072, OutputLen: 64}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := core.Run(tb, req, core.DefaultOptions(16))
		if rep.OOM {
			b.Fatal(rep.Reason)
		}
	}
}

func BenchmarkBaselineDecodeStep(b *testing.B) {
	tb := device.DefaultTestbed()
	req := pipeline.Request{Model: model.OPT175B, Batch: 16, Context: 131072, OutputLen: 64}
	flex := baseline.FlexSSD(tb)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := flex.Run(tb, req)
		if rep.OOM {
			b.Fatal(rep.Reason)
		}
	}
}

func BenchmarkSchedulerListScheduling(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := sim.NewEngine()
		r1 := e.Resource("a", 10)
		r2 := e.Resource("b", 5)
		var prev *sim.Task
		for l := 0; l < 500; l++ {
			t1 := e.Task("x", r1, 3, prev)
			prev = e.Task("y", r2, 2, t1)
		}
		e.Run()
	}
}

func BenchmarkEstimatorSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := estimator.Sweep()
		if _, err := estimator.Correlation(pts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCycleModelKernelTime(b *testing.B) {
	cm := accel.DefaultCycleModel(5, 128)
	for i := 0; i < b.N; i++ {
		if cm.KernelTime(131072) <= 0 {
			b.Fatal("non-positive kernel time")
		}
	}
}
