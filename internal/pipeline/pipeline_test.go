package pipeline

import (
	"testing"

	"repro/internal/device"
	"repro/internal/model"
)

func TestRequestValidate(t *testing.T) {
	ok := Request{Model: model.OPT30B, Batch: 1, Context: 1024, OutputLen: 4}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := ok
	bad.Batch = 0
	if err := bad.Validate(); err == nil {
		t.Error("batch=0 accepted")
	}
	bad = ok
	bad.Model.Heads = 0
	if err := bad.Validate(); err == nil {
		t.Error("invalid model accepted")
	}
}

func TestWeightsOnStorage(t *testing.T) {
	// §6.1: "models exceeding 100B parameters are offloaded to storage".
	if WeightsOnStorage(model.OPT30B) || WeightsOnStorage(model.OPT66B) {
		t.Error("sub-100B model placed on storage")
	}
	if !WeightsOnStorage(model.OPT175B) || !WeightsOnStorage(model.GLaM143B) {
		t.Error("100B+ model not placed on storage")
	}
}

func TestFitBatchDRAM(t *testing.T) {
	tb := device.DefaultTestbed()
	// OPT-66B at 64K: 154 GB/sequence of KV plus 132 GB weights in 333 GB
	// usable — only one sequence fits (Fig. 11: FLEX(DRAM) capacity-bound).
	bs := FitBatchDRAM(tb, model.OPT66B, 65536, 16)
	if bs != 1 {
		t.Errorf("66B@64K DRAM batch = %d, want 1", bs)
	}
	// At 128K not even one sequence fits: the paper's CPU OOM.
	if bs := FitBatchDRAM(tb, model.OPT66B, 131072, 16); bs != 0 {
		t.Errorf("66B@128K DRAM batch = %d, want 0 (CPU OOM)", bs)
	}
	// Short contexts fit the full requested batch.
	if bs := FitBatchDRAM(tb, model.OPT30B, 4096, 16); bs != 16 {
		t.Errorf("30B@4K DRAM batch = %d, want 16", bs)
	}
}

func TestFitBatchDRAMMonotone(t *testing.T) {
	tb := device.DefaultTestbed()
	prev := 1 << 30
	for _, ctx := range []int{8192, 16384, 32768, 65536, 131072} {
		bs := FitBatchDRAM(tb, model.OPT66B, ctx, 64)
		if bs > prev {
			t.Errorf("feasible batch grew with context at %d: %d > %d", ctx, bs, prev)
		}
		prev = bs
	}
}

func TestFitBatchStorage(t *testing.T) {
	tb := device.DefaultTestbed()
	// 4×3.84 TB holds OPT-175B/128K/bs16 KV (~10 TB) plus nothing else big.
	bs := FitBatchStorage(model.OPT175B, 131072, 16, tb.PlainSSD.CapBytes, 4)
	if bs != 16 {
		t.Errorf("175B@128K on 4 SSDs batch = %d, want 16", bs)
	}
	// 256K KV (~20 TB) exceeds the array.
	bs = FitBatchStorage(model.OPT175B, 262144, 16, tb.PlainSSD.CapBytes, 4)
	if bs >= 16 || bs < 1 {
		t.Errorf("175B@256K on 4 SSDs batch = %d, want reduced but ≥ 1", bs)
	}
}

func TestPrefillScales(t *testing.T) {
	tb := device.DefaultTestbed()
	in := PrefillInputs{WeightLoadBW: tb.Topo.GPULink.BW, KVStoreBW: 16.4e9,
		KVStoreBytes: model.OPT30B.KVCacheBytes(16, 16384)}
	t16 := Prefill(tb, model.OPT30B, 16, 16384, in)
	in.KVStoreBytes = model.OPT30B.KVCacheBytes(16, 32768)
	t32 := Prefill(tb, model.OPT30B, 16, 32768, in)
	if t32 <= t16 {
		t.Errorf("prefill not increasing with context: %v vs %v", t16, t32)
	}
	if t16 <= 0 {
		t.Error("prefill time not positive")
	}
}

func TestPrefillChunking(t *testing.T) {
	tb := device.DefaultTestbed()
	// Activations beyond GPU memory force weight reloads: prefill grows
	// superlinearly once chunked.
	in := PrefillInputs{WeightLoadBW: tb.Topo.GPULink.BW}
	small := Prefill(tb, model.OPT175B, 1, 8192, in)
	big := Prefill(tb, model.OPT175B, 16, 131072, in)
	if big < 16*small {
		t.Errorf("chunked long prefill %v not ≥ 16× short %v", big, small)
	}
}

func TestReportHelpers(t *testing.T) {
	r := Report{Batch: 4, StepSec: 2, PrefillSec: 10,
		Breakdown: map[string]float64{LabelLoadKV: 3, LabelCompute: 1}}
	if got := r.DecodeTokPerSec(); got != 2 {
		t.Errorf("throughput = %v, want 2", got)
	}
	if got := r.TotalSec(6); got != 20 {
		t.Errorf("total = %v, want 20", got)
	}
	if got := r.BreakdownShare(LabelLoadKV); got != 0.75 {
		t.Errorf("share = %v, want 0.75", got)
	}
	oom := Report{OOM: true}
	if oom.DecodeTokPerSec() != 0 || oom.TotalSec(10) != 0 {
		t.Error("OOM report produced nonzero metrics")
	}
}
