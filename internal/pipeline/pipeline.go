// Package pipeline provides the shared vocabulary of the timing engines:
// inference requests, per-system reports with stage breakdowns, capacity
// fitting (the "CPU OOM" behaviour of Figures 10-12), and the prefill model
// every system shares (all systems use FlashAttention for prefill, §6.1).
package pipeline

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/model"
	"repro/internal/sim"
)

// Breakdown labels, matching the stacked bars of Figures 4(b) and 11(b).
const (
	LabelLoadWeight = "LoadWeight"
	LabelLoadKV     = "LoadKVCache"
	LabelStoreKV    = "StoreKVCache"
	LabelCompute    = "HostCompute"
	LabelXCache     = "XCache" // HILOS-only: GDS reads + GPU regeneration
)

// Resource classes used for utilization and energy accounting.
const (
	ResGPU       = "GPU"
	ResCPU       = "CPU"
	ResGPULink   = "GPULink"
	ResUplink    = "Uplink"
	ResGDS       = "GDS"
	ResStorRead  = "StorRead"
	ResStorWrite = "StorWrite"
	ResNSP       = "NSP"
)

// Request describes one offline-inference workload point.
type Request struct {
	Model     model.Config
	Batch     int // requested batch size (systems may shrink it to fit)
	Context   int // prompt length s
	OutputLen int // generated tokens n
	// NoTrace asks the engine not to retain the per-task decode timeline
	// (Report.Trace stays nil). Sweeps and cache prewarming that only read
	// scalar results set it to skip the per-task allocation; timing,
	// Breakdown and ResourceBusy are unaffected. Part of the request's
	// identity, so cached traced and untraced reports never alias.
	NoTrace bool
}

// Validate reports malformed requests.
func (r Request) Validate() error {
	if err := r.Model.Validate(); err != nil {
		return err
	}
	if r.Batch < 1 || r.Context < 1 || r.OutputLen < 1 {
		return fmt.Errorf("pipeline: non-positive request %+v", r)
	}
	return nil
}

// Report is the outcome of simulating one system on one request.
type Report struct {
	System  string
	Model   string
	Batch   int // effective batch after capacity fitting (0 when OOM)
	Context int

	OOM    bool
	Reason string // populated when OOM

	PrefillSec float64
	StepSec    float64 // steady-state decoding step latency

	// Breakdown maps stage labels to per-step busy seconds.
	Breakdown map[string]float64
	// ResourceBusy maps resource classes to per-step busy seconds.
	ResourceBusy map[string]float64

	// HostUtil* are the Fig. 4(c) host utilizations in [0,1].
	HostUtilCPU     float64
	HostUtilGPU     float64
	HostUtilDRAMCap float64

	// Write accounting (physical storage bytes) for endurance and §6.6.
	DecodeWriteBytesPerStep float64
	PrefillWriteBytes       float64

	Devices int // storage devices in the configuration

	// Trace holds the scheduled task records of one steady-state decoding
	// step (for Chrome-trace export via internal/trace).
	Trace []sim.TaskRecord
}

// DecodeTokPerSec returns the steady-state decoding throughput.
func (r Report) DecodeTokPerSec() float64 {
	if r.OOM || r.StepSec <= 0 {
		return 0
	}
	return float64(r.Batch) / r.StepSec
}

// TotalSec returns end-to-end latency for generating n output tokens
// (Fig. 14: prefill plus n−1 decode steps).
func (r Report) TotalSec(n int) float64 {
	if r.OOM {
		return 0
	}
	return r.PrefillSec + float64(n-1)*r.StepSec
}

// BreakdownShare returns label busy time over the sum of all labels.
func (r Report) BreakdownShare(label string) float64 {
	var total float64
	for _, v := range r.Breakdown {
		total += v
	}
	if total <= 0 {
		return 0
	}
	return r.Breakdown[label] / total
}

// WeightsOnStorage reports whether a model's weights live on storage rather
// than host DRAM (§6.1: "models exceeding 100B parameters are offloaded to
// storage").
func WeightsOnStorage(m model.Config) bool {
	return m.ParamCount() > 100e9
}

// FitBatchDRAM returns the largest batch ≤ want whose KV cache (plus weights
// when they are DRAM-resident, plus activations) fits the usable host DRAM.
// Returns 0 when even batch 1 does not fit — the paper's "CPU OOM".
func FitBatchDRAM(tb device.Testbed, m model.Config, ctx, want int) int {
	usable := int64(float64(tb.DRAM.Bytes) * tb.DRAMUsableFrac)
	var fixed int64
	if !WeightsOnStorage(m) {
		fixed = m.TotalWeightBytes()
	}
	for bs := want; bs >= 1; bs-- {
		need := fixed + m.KVCacheBytes(bs, ctx) + m.ActivationBytes(bs)
		if need <= usable {
			return bs
		}
	}
	return 0
}

// FitBatchStorage returns the largest batch ≤ want whose KV cache (plus
// weights when storage-resident) fits the aggregate storage capacity.
func FitBatchStorage(m model.Config, ctx, want int, devCap int64, devices int) int {
	total := devCap * int64(devices)
	var fixed int64
	if WeightsOnStorage(m) {
		fixed = m.TotalWeightBytes()
	}
	for bs := want; bs >= 1; bs-- {
		if fixed+m.KVCacheBytes(bs, ctx) <= total {
			return bs
		}
	}
	return 0
}

// PrefillInputs parameterizes the shared prefill model.
type PrefillInputs struct {
	WeightLoadBW float64 // host→GPU effective bandwidth for weights
	WeightSrcBW  float64 // storage read bandwidth when weights are on storage (0 = DRAM-resident)
	KVStoreBW    float64 // bandwidth for writing the prompt KV/X to its home
	KVStoreBytes int64   // bytes written during prefill (KV, or α-mixed X/KV)
}

// Prefill returns the prefill latency: compute-bound FlashAttention on the
// GPU, pipelined against weight streaming and KV writeback. Activations that
// exceed GPU memory force chunked execution with weight reloads (FlexGen's
// block schedule).
func Prefill(tb device.Testbed, m model.Config, bs, s int, in PrefillInputs) float64 {
	compute := m.PrefillFLOPs(bs, s) / tb.GPU.GEMMFLOPS

	actBytes := int64(bs) * int64(s) * int64(m.Hidden) * model.BytesPerElem
	usableGPU := int64(float64(tb.GPU.MemBytes) * 0.6)
	chunks := 1
	if actBytes > usableGPU {
		chunks = int((actBytes + usableGPU - 1) / usableGPU)
	}
	weightBW := in.WeightLoadBW
	if in.WeightSrcBW > 0 && in.WeightSrcBW < weightBW {
		weightBW = in.WeightSrcBW
	}
	weights := float64(m.TotalWeightBytes()) * float64(chunks) / weightBW

	var store float64
	if in.KVStoreBW > 0 {
		store = float64(in.KVStoreBytes) / in.KVStoreBW
	}
	// The three streams pipeline; the slowest dominates.
	t := compute
	if weights > t {
		t = weights
	}
	if store > t {
		t = store
	}
	return t
}
