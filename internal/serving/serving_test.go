package serving

import (
	"testing"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/model"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

func jobsFromTrace(trace []workload.Class) []Job {
	jobs := make([]Job, len(trace))
	for i, c := range trace {
		jobs[i] = Job{ID: i, Class: c}
	}
	return jobs
}

func TestPackByClass(t *testing.T) {
	jobs := []Job{
		{0, workload.Short}, {1, workload.Long}, {2, workload.Short},
		{3, workload.Short}, {4, workload.Long},
	}
	batches, err := PackByClass(jobs, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Short: {0,2},{3}; Long: {1,4} → 3 batches (order: Long < Short).
	if len(batches) != 3 {
		t.Fatalf("got %d batches, want 3", len(batches))
	}
	total := 0
	for _, b := range batches {
		if len(b.Jobs) > 2 {
			t.Errorf("batch exceeds size: %v", b.Jobs)
		}
		for range b.Jobs {
			total++
		}
		for _, id := range b.Jobs {
			if jobs[id].Class.Name != b.Class.Name {
				t.Errorf("job %d class %s in %s batch", id, jobs[id].Class.Name, b.Class.Name)
			}
		}
	}
	if total != len(jobs) {
		t.Errorf("packed %d jobs, want %d", total, len(jobs))
	}
}

func TestPackByClassErrors(t *testing.T) {
	if _, err := PackByClass(nil, 4); err == nil {
		t.Error("empty jobs accepted")
	}
	if _, err := PackByClass([]Job{{0, workload.Short}}, 0); err == nil {
		t.Error("batch size 0 accepted")
	}
}

func TestEvaluateWithFakeEngine(t *testing.T) {
	jobs := jobsFromTrace([]workload.Class{workload.Short, workload.Short, workload.Medium})
	batches, _ := PackByClass(jobs, 2)
	fake := func(req pipeline.Request) pipeline.Report {
		return pipeline.Report{Batch: req.Batch, StepSec: 1, PrefillSec: 10}
	}
	s, err := Evaluate(model.OPT30B, batches, fake)
	if err != nil {
		t.Fatal(err)
	}
	if s.Batches != 2 || s.Jobs != 3 {
		t.Errorf("summary %+v", s)
	}
	// Short batch: 10 + 99 steps; Medium batch: 10 + 349 steps.
	want := (10.0 + 99) + (10 + 349)
	if s.MakespanSec != want {
		t.Errorf("makespan %v, want %v", s.MakespanSec, want)
	}
	if s.OutputTokens != 2*100+350 {
		t.Errorf("tokens %d", s.OutputTokens)
	}
	if s.Throughput() <= 0 {
		t.Error("non-positive throughput")
	}
}

func TestEvaluateShrunkBatchNeedsMorePasses(t *testing.T) {
	jobs := jobsFromTrace([]workload.Class{workload.Short, workload.Short, workload.Short, workload.Short})
	batches, _ := PackByClass(jobs, 4)
	// Engine can only fit half the batch: twice the passes.
	half := func(req pipeline.Request) pipeline.Report {
		return pipeline.Report{Batch: req.Batch / 2, StepSec: 1, PrefillSec: 0}
	}
	s, err := Evaluate(model.OPT30B, batches, half)
	if err != nil {
		t.Fatal(err)
	}
	full := func(req pipeline.Request) pipeline.Report {
		return pipeline.Report{Batch: req.Batch, StepSec: 1, PrefillSec: 0}
	}
	s2, _ := Evaluate(model.OPT30B, batches, full)
	if s.MakespanSec != 2*s2.MakespanSec {
		t.Errorf("shrunk batch makespan %v, want 2× %v", s.MakespanSec, s2.MakespanSec)
	}
}

func TestEvaluateOOM(t *testing.T) {
	jobs := jobsFromTrace([]workload.Class{workload.Long})
	batches, _ := PackByClass(jobs, 1)
	oom := func(pipeline.Request) pipeline.Report { return pipeline.Report{OOM: true} }
	s, err := Evaluate(model.OPT30B, batches, oom)
	if err != nil {
		t.Fatal(err)
	}
	if s.OOMBatches != 1 || s.MakespanSec != 0 {
		t.Errorf("OOM summary %+v", s)
	}
	if _, err := Evaluate(model.OPT30B, nil, oom); err == nil {
		t.Error("empty plan accepted")
	}
	if _, err := Evaluate(model.OPT30B, batches, nil); err == nil {
		t.Error("nil engine accepted")
	}
}

// Integration: HILOS completes the same backlog faster than the FlexGen
// baseline on the real engines.
func TestHILOSFinishesBacklogFaster(t *testing.T) {
	tb := device.DefaultTestbed()
	gen, err := workload.NewGenerator(3, workload.AzureLikeMix())
	if err != nil {
		t.Fatal(err)
	}
	jobs := jobsFromTrace(gen.Trace(64))
	batches, err := PackByClass(jobs, 16)
	if err != nil {
		t.Fatal(err)
	}
	m := model.OPT66B
	flex := func(req pipeline.Request) pipeline.Report { return baseline.FlexSSD(tb).Run(tb, req) }
	hil := func(req pipeline.Request) pipeline.Report { return core.Run(tb, req, core.DefaultOptions(16)) }
	sFlex, err := Evaluate(m, batches, flex)
	if err != nil {
		t.Fatal(err)
	}
	sHil, err := Evaluate(m, batches, hil)
	if err != nil {
		t.Fatal(err)
	}
	if sFlex.OOMBatches != 0 || sHil.OOMBatches != 0 {
		t.Fatalf("unexpected OOM batches: %d / %d", sFlex.OOMBatches, sHil.OOMBatches)
	}
	if sHil.MakespanSec >= sFlex.MakespanSec {
		t.Errorf("HILOS backlog %v s not below FlexGen %v s", sHil.MakespanSec, sFlex.MakespanSec)
	}
	if sHil.OutputTokens != sFlex.OutputTokens {
		t.Error("engines produced different token counts for the same plan")
	}
}
