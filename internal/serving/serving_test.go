package serving

import (
	"testing"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/model"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

func jobsFromTrace(trace []workload.Class) []Job {
	jobs := make([]Job, len(trace))
	for i, c := range trace {
		jobs[i] = Job{ID: i, Class: c}
	}
	return jobs
}

func TestPackByClass(t *testing.T) {
	jobs := []Job{
		{0, workload.Short}, {1, workload.Long}, {2, workload.Short},
		{3, workload.Short}, {4, workload.Long},
	}
	batches, err := PackByClass(jobs, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Short: {0,2},{3}; Long: {1,4} → 3 batches (order: Long < Short).
	if len(batches) != 3 {
		t.Fatalf("got %d batches, want 3", len(batches))
	}
	total := 0
	for _, b := range batches {
		if len(b.Jobs) > 2 {
			t.Errorf("batch exceeds size: %v", b.Jobs)
		}
		for range b.Jobs {
			total++
		}
		for _, id := range b.Jobs {
			if jobs[id].Class.Name != b.Class.Name {
				t.Errorf("job %d class %s in %s batch", id, jobs[id].Class.Name, b.Class.Name)
			}
		}
	}
	if total != len(jobs) {
		t.Errorf("packed %d jobs, want %d", total, len(jobs))
	}
}

func TestPackByClassErrors(t *testing.T) {
	if _, err := PackByClass(nil, 4); err == nil {
		t.Error("empty jobs accepted")
	}
	if _, err := PackByClass([]Job{{0, workload.Short}}, 0); err == nil {
		t.Error("batch size 0 accepted")
	}
}

func TestEvaluateWithFakeEngine(t *testing.T) {
	jobs := jobsFromTrace([]workload.Class{workload.Short, workload.Short, workload.Medium})
	batches, _ := PackByClass(jobs, 2)
	fake := func(req pipeline.Request) pipeline.Report {
		return pipeline.Report{Batch: req.Batch, StepSec: 1, PrefillSec: 10}
	}
	s, err := Evaluate(model.OPT30B, batches, fake)
	if err != nil {
		t.Fatal(err)
	}
	if s.Batches != 2 || s.Jobs != 3 {
		t.Errorf("summary %+v", s)
	}
	// Short batch: 10 + 99 steps; Medium batch: 10 + 349 steps.
	want := (10.0 + 99) + (10 + 349)
	if s.MakespanSec != want {
		t.Errorf("makespan %v, want %v", s.MakespanSec, want)
	}
	if s.OutputTokens != 2*100+350 {
		t.Errorf("tokens %d", s.OutputTokens)
	}
	if s.Throughput() <= 0 {
		t.Error("non-positive throughput")
	}
}

func TestEvaluateShrunkBatchNeedsMorePasses(t *testing.T) {
	jobs := jobsFromTrace([]workload.Class{workload.Short, workload.Short, workload.Short, workload.Short})
	batches, _ := PackByClass(jobs, 4)
	// Engine can only fit half the batch: twice the passes.
	half := func(req pipeline.Request) pipeline.Report {
		return pipeline.Report{Batch: req.Batch / 2, StepSec: 1, PrefillSec: 0}
	}
	s, err := Evaluate(model.OPT30B, batches, half)
	if err != nil {
		t.Fatal(err)
	}
	full := func(req pipeline.Request) pipeline.Report {
		return pipeline.Report{Batch: req.Batch, StepSec: 1, PrefillSec: 0}
	}
	s2, _ := Evaluate(model.OPT30B, batches, full)
	if s.MakespanSec != 2*s2.MakespanSec {
		t.Errorf("shrunk batch makespan %v, want 2× %v", s.MakespanSec, s2.MakespanSec)
	}
}

func TestEvaluateOOM(t *testing.T) {
	jobs := jobsFromTrace([]workload.Class{workload.Long})
	batches, _ := PackByClass(jobs, 1)
	oom := func(pipeline.Request) pipeline.Report { return pipeline.Report{OOM: true} }
	s, err := Evaluate(model.OPT30B, batches, oom)
	if err != nil {
		t.Fatal(err)
	}
	if s.OOMBatches != 1 || s.MakespanSec != 0 {
		t.Errorf("OOM summary %+v", s)
	}
	if _, err := Evaluate(model.OPT30B, nil, oom); err == nil {
		t.Error("empty plan accepted")
	}
	if _, err := Evaluate(model.OPT30B, batches, nil); err == nil {
		t.Error("nil engine accepted")
	}
}

// Integer-pass accounting: a batch of 3 an engine can only fit 2 of runs
// one full pass plus a batch-1 tail pass, each paying prefill again — never
// 1.5 fractional passes. This engine's timing is batch-independent, so both
// passes cost the same; the tail is still a separate simulated pass.
func TestEvaluateIntegerPasses(t *testing.T) {
	jobs := jobsFromTrace([]workload.Class{workload.Short, workload.Short, workload.Short})
	batches, _ := PackByClass(jobs, 3)
	shrink := func(req pipeline.Request) pipeline.Report {
		return pipeline.Report{Batch: 2, StepSec: 1, PrefillSec: 10}
	}
	s, err := Evaluate(model.OPT30B, batches, shrink)
	if err != nil {
		t.Fatal(err)
	}
	// One pass: 10 + 99×1 = 109 s. Two passes: 218 s. Fractional 1.5 passes
	// would give 163.5 s and undercharge the second prefill.
	if want := 2 * 109.0; s.MakespanSec != want {
		t.Errorf("makespan %v, want %v (integer passes with per-pass prefill)", s.MakespanSec, want)
	}
}

// Exact tail-pass accounting (ROADMAP item): when step time scales with the
// running batch, the partial final pass is charged at its own smaller
// shape, not as a full-size pass.
func TestEvaluateExactTailPass(t *testing.T) {
	jobs := jobsFromTrace([]workload.Class{workload.Short, workload.Short, workload.Short})
	batches, _ := PackByClass(jobs, 3)
	shrink := func(req pipeline.Request) pipeline.Report {
		b := req.Batch
		if b > 2 {
			b = 2
		}
		return pipeline.Report{Batch: b, StepSec: float64(b), PrefillSec: 10}
	}
	s, err := Evaluate(model.OPT30B, batches, shrink)
	if err != nil {
		t.Fatal(err)
	}
	// Full pass at batch 2: 10 + 99×2 = 208 s; tail pass at batch 1:
	// 10 + 99×1 = 109 s. Ceil accounting would charge 2×208 = 416 s.
	if want := 208.0 + 109; s.MakespanSec != want {
		t.Errorf("makespan %v, want %v (full pass + exact tail pass)", s.MakespanSec, want)
	}
}

// Failed-work accounting: OOM batches keep their jobs out of OutputTokens
// and the makespan but surface them in FailedJobs/FailedJobIDs.
func TestEvaluateFailedJobs(t *testing.T) {
	jobs := jobsFromTrace([]workload.Class{workload.Short, workload.Short, workload.Long})
	batches, _ := PackByClass(jobs, 2) // Long batch {2}, Short batch {0,1}
	longOOM := func(req pipeline.Request) pipeline.Report {
		if req.Context == workload.Long.Input {
			return pipeline.Report{OOM: true, Reason: "storage OOM"}
		}
		return pipeline.Report{Batch: req.Batch, StepSec: 1, PrefillSec: 1}
	}
	s, err := Evaluate(model.OPT30B, batches, longOOM)
	if err != nil {
		t.Fatal(err)
	}
	if s.Jobs != 3 || s.FailedJobs != 1 || s.CompletedJobs() != 2 {
		t.Errorf("job accounting %+v", s)
	}
	if len(s.FailedJobIDs) != 1 || s.FailedJobIDs[0] != 2 {
		t.Errorf("failed IDs %v, want [2]", s.FailedJobIDs)
	}
	if s.OutputTokens != 2*int64(workload.Short.Output) {
		t.Errorf("tokens %d include failed work", s.OutputTokens)
	}
	// An engine reporting a non-OOM zero batch is equally unrunnable.
	zero := func(pipeline.Request) pipeline.Report { return pipeline.Report{Batch: 0, StepSec: 1} }
	s, err = Evaluate(model.OPT30B, batches, zero)
	if err != nil {
		t.Fatal(err)
	}
	if s.FailedJobs != 3 || s.OOMBatches != 2 {
		t.Errorf("zero-batch reports not treated as failures: %+v", s)
	}
}

// Multi-pipeline scheduling is deterministic: batches go to the
// earliest-idle pipeline in plan order, so the makespan equals the maximum
// pipeline load of that list schedule, run after run, and total tokens are
// unchanged from the serial plan.
func TestEvaluatePipelinesDeterministic(t *testing.T) {
	var classes []workload.Class
	for i := 0; i < 12; i++ {
		classes = append(classes, []workload.Class{workload.Short, workload.Medium, workload.Long}[i%3])
	}
	batches, err := PackByClass(jobsFromTrace(classes), 2)
	if err != nil {
		t.Fatal(err)
	}
	fake := func(req pipeline.Request) pipeline.Report {
		// Distinct per-class durations: TotalSec = prefill + (out-1)*step.
		return pipeline.Report{Batch: req.Batch, StepSec: float64(req.Context) / 1e6, PrefillSec: 5}
	}

	serial, err := Evaluate(model.OPT30B, batches, fake)
	if err != nil {
		t.Fatal(err)
	}

	// Reference list schedule on the serial per-batch durations (the fake
	// engine never shrinks, so each batch is one pass).
	const P = 3
	var load [P]float64
	for _, b := range batches {
		rep := fake(pipeline.Request{Model: model.OPT30B, Batch: len(b.Jobs), Context: b.Class.Input, OutputLen: b.Class.Output})
		p := 0
		for q := 1; q < P; q++ {
			if load[q] < load[p] {
				p = q
			}
		}
		load[p] += rep.TotalSec(b.Class.Output)
	}
	want := 0.0
	for _, l := range load {
		if l > want {
			want = l
		}
	}

	for trial := 0; trial < 5; trial++ {
		s, err := Evaluate(model.OPT30B, batches, fake, WithPipelines(P))
		if err != nil {
			t.Fatal(err)
		}
		if s.MakespanSec != want {
			t.Fatalf("trial %d: makespan %v, want max pipeline load %v", trial, s.MakespanSec, want)
		}
		if s.MakespanSec >= serial.MakespanSec {
			t.Fatalf("%d pipelines no faster than serial: %v vs %v", P, s.MakespanSec, serial.MakespanSec)
		}
		if s.OutputTokens != serial.OutputTokens {
			t.Fatalf("token accounting changed under %d pipelines", P)
		}
		if s.Pipelines != P || len(s.PerPipelineSec) != P {
			t.Fatalf("pipeline attribution missing: %+v", s)
		}
		nb := 0
		for _, n := range s.PerPipelineBatches {
			nb += n
		}
		if nb != s.Batches-s.OOMBatches {
			t.Fatalf("per-pipeline batch counts sum to %d, want %d", nb, s.Batches-s.OOMBatches)
		}
	}

	if _, err := Evaluate(model.OPT30B, batches, fake, WithPipelines(0)); err == nil {
		t.Error("pipelines = 0 accepted")
	}
}

// Integration: HILOS completes the same backlog faster than the FlexGen
// baseline on the real engines.
func TestHILOSFinishesBacklogFaster(t *testing.T) {
	tb := device.DefaultTestbed()
	gen, err := workload.NewGenerator(3, workload.AzureLikeMix())
	if err != nil {
		t.Fatal(err)
	}
	jobs := jobsFromTrace(gen.Trace(64))
	batches, err := PackByClass(jobs, 16)
	if err != nil {
		t.Fatal(err)
	}
	m := model.OPT66B
	flex := func(req pipeline.Request) pipeline.Report { return baseline.FlexSSD(tb).Run(tb, req) }
	hil := func(req pipeline.Request) pipeline.Report { return core.Run(tb, req, core.DefaultOptions(16)) }
	sFlex, err := Evaluate(m, batches, flex)
	if err != nil {
		t.Fatal(err)
	}
	sHil, err := Evaluate(m, batches, hil)
	if err != nil {
		t.Fatal(err)
	}
	if sFlex.OOMBatches != 0 || sHil.OOMBatches != 0 {
		t.Fatalf("unexpected OOM batches: %d / %d", sFlex.OOMBatches, sHil.OOMBatches)
	}
	if sHil.MakespanSec >= sFlex.MakespanSec {
		t.Errorf("HILOS backlog %v s not below FlexGen %v s", sHil.MakespanSec, sFlex.MakespanSec)
	}
	if sHil.OutputTokens != sFlex.OutputTokens {
		t.Error("engines produced different token counts for the same plan")
	}
}
