// Package serving is the offline-inference service layer the paper's
// introduction motivates (benchmarking and large-scale information
// extraction): it packs a trace of requests into fixed-size same-shape
// batches — offline inference tolerates latency, so shape-homogeneous
// batching maximizes weight reuse — and evaluates the plan on any simulated
// engine, producing completion time and token accounting.
package serving

import (
	"fmt"
	"sort"

	"repro/internal/model"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

// Job is one queued request.
type Job struct {
	ID    int
	Class workload.Class
}

// Batch groups same-class jobs executed together.
type Batch struct {
	Class workload.Class
	Jobs  []int // job IDs
}

// PackByClass groups jobs of identical shape into batches of at most
// batchSize, preserving arrival order within a class. Partial tail batches
// are emitted (offline systems run them rather than wait).
func PackByClass(jobs []Job, batchSize int) ([]Batch, error) {
	if batchSize < 1 {
		return nil, fmt.Errorf("serving: batch size must be ≥ 1, got %d", batchSize)
	}
	if len(jobs) == 0 {
		return nil, fmt.Errorf("serving: empty job list")
	}
	// Group by class name, stable.
	byClass := map[string][]Job{}
	var order []string
	for _, j := range jobs {
		if _, seen := byClass[j.Class.Name]; !seen {
			order = append(order, j.Class.Name)
		}
		byClass[j.Class.Name] = append(byClass[j.Class.Name], j)
	}
	sort.Strings(order) // deterministic plan regardless of arrival interleaving

	var out []Batch
	for _, name := range order {
		group := byClass[name]
		for lo := 0; lo < len(group); lo += batchSize {
			hi := lo + batchSize
			if hi > len(group) {
				hi = len(group)
			}
			b := Batch{Class: group[lo].Class}
			for _, j := range group[lo:hi] {
				b.Jobs = append(b.Jobs, j.ID)
			}
			out = append(out, b)
		}
	}
	return out, nil
}

// Engine evaluates one batched request on a simulated system.
type Engine func(pipeline.Request) pipeline.Report

// Summary is the outcome of running a plan.
type Summary struct {
	Batches      int
	Jobs         int
	MakespanSec  float64 // serialized batch execution on one pipeline
	OutputTokens int64
	// PerClassSec attributes makespan to request classes.
	PerClassSec map[string]float64
	// OOMBatches counts batches the engine could not place.
	OOMBatches int
}

// Throughput returns generated tokens per second over the makespan.
func (s Summary) Throughput() float64 {
	if s.MakespanSec <= 0 {
		return 0
	}
	return float64(s.OutputTokens) / s.MakespanSec
}

// Evaluate runs every batch of the plan through the engine, serially (a
// single inference pipeline, the paper's deployment model).
func Evaluate(m model.Config, batches []Batch, run Engine) (Summary, error) {
	if run == nil {
		return Summary{}, fmt.Errorf("serving: nil engine")
	}
	if len(batches) == 0 {
		return Summary{}, fmt.Errorf("serving: empty plan")
	}
	s := Summary{PerClassSec: map[string]float64{}}
	for _, b := range batches {
		req := pipeline.Request{
			Model:     m,
			Batch:     len(b.Jobs),
			Context:   b.Class.Input,
			OutputLen: b.Class.Output,
		}
		rep := run(req)
		s.Batches++
		s.Jobs += len(b.Jobs)
		if rep.OOM {
			s.OOMBatches++
			continue
		}
		// The engine may have shrunk the batch; the remaining jobs need
		// proportionally more passes.
		passes := 1.0
		if rep.Batch < len(b.Jobs) {
			passes = float64(len(b.Jobs)) / float64(rep.Batch)
		}
		sec := rep.TotalSec(b.Class.Output) * passes
		s.MakespanSec += sec
		s.PerClassSec[b.Class.Name] += sec
		s.OutputTokens += int64(len(b.Jobs)) * int64(b.Class.Output)
	}
	return s, nil
}
