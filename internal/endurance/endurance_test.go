package endurance

import (
	"math"
	"testing"

	"repro/internal/model"
	"repro/internal/workload"
)

// Fig. 16(b): HILOS improves endurance by 1.34×–1.47× over the 16-SSD
// baseline across request classes.
func TestHILOSEnduranceGain(t *testing.T) {
	flex := FlexWrites()
	hilos := HILOSWrites(0.5, 16)
	for _, m := range []model.Config{model.OPT30B, model.OPT66B, model.OPT175B} {
		for _, class := range workload.Classes() {
			fb, err := flex.BytesPerRequest(m, class)
			if err != nil {
				t.Fatal(err)
			}
			hb, err := hilos.BytesPerRequest(m, class)
			if err != nil {
				t.Fatal(err)
			}
			gain := fb / hb
			if gain < 1.25 || gain > 1.65 {
				t.Errorf("%s/%s: endurance gain %.2f outside the paper's ≈1.34–1.47 band",
					m.Name, class.Name, gain)
			}
		}
	}
}

// §6.6: increasing c from 16 to 32 yields an additional 1.02×–1.05×.
func TestSpillIntervalEnduranceGain(t *testing.T) {
	c16 := HILOSWrites(0.5, 16)
	c32 := HILOSWrites(0.5, 32)
	var minGain, maxGain = 1e9, 0.0
	for _, m := range []model.Config{model.OPT30B, model.OPT66B, model.OPT175B} {
		for _, class := range workload.Classes() {
			b16, _ := c16.BytesPerRequest(m, class)
			b32, _ := c32.BytesPerRequest(m, class)
			g := b16 / b32
			if g < 1 {
				t.Errorf("%s/%s: c=32 wrote more than c=16", m.Name, class.Name)
			}
			if g < minGain {
				minGain = g
			}
			if g > maxGain {
				maxGain = g
			}
		}
	}
	if maxGain < 1.02 || maxGain > 1.10 {
		t.Errorf("peak c=16→32 gain %.3f, paper reports 1.02–1.05", maxGain)
	}
}

// §6.6: "Even for long requests with the 175B model, our system supports
// over 4.08 million requests" on 16 SmartSSDs.
func TestLongRequests175B(t *testing.T) {
	n, err := ServiceableRequests(model.OPT175B, workload.Long, HILOSWrites(0.5, 16), 16, 7.008)
	if err != nil {
		t.Fatal(err)
	}
	if n < 3.5e6 || n > 5.5e6 {
		t.Errorf("serviceable long/175B requests = %.2fM, paper reports ≈ 4.08M", n/1e6)
	}
}

// Write volume ordering: naive per-entry < coalesced < delayed writeback
// never inverts; more output tokens always cost more.
func TestWriteVolumeMonotonicity(t *testing.T) {
	h := HILOSWrites(0.5, 16)
	small, _ := h.BytesPerRequest(model.OPT66B, workload.Short)
	large, _ := h.BytesPerRequest(model.OPT66B, workload.Long)
	if large <= small {
		t.Error("long request wrote no more than short")
	}
	f := FlexWrites()
	fb, _ := f.BytesPerRequest(model.OPT66B, workload.Short)
	hb, _ := h.BytesPerRequest(model.OPT66B, workload.Short)
	if hb >= fb {
		t.Error("HILOS writes not below FLEX")
	}
}

func TestInvalidClass(t *testing.T) {
	if _, err := FlexWrites().BytesPerRequest(model.OPT30B, workload.Class{}); err == nil {
		t.Error("empty class accepted")
	}
	if _, err := ServiceableRequests(model.OPT30B, workload.Class{}, FlexWrites(), 16, 7.008); err == nil {
		t.Error("ServiceableRequests accepted empty class")
	}
}

func TestPBWBytes(t *testing.T) {
	if PBWBytes(7.008) != 7.008e15 {
		t.Errorf("PBWBytes = %v", PBWBytes(7.008))
	}
}

// Budget boundary semantics: Add crosses exactly once, and a write landing
// precisely on the limit exhausts the budget (the allowance is inclusive).
func TestBudgetExactThreshold(t *testing.T) {
	b := NewBudget(100)
	if b.Add(40) || b.Exhausted() {
		t.Fatal("crossed below the limit")
	}
	if got := b.RemainingBytes(); got != 60 {
		t.Errorf("remaining %g, want 60", got)
	}
	// 40 + 60 lands exactly on the limit: that write exhausts the budget.
	if !b.Add(60) {
		t.Fatal("write landing exactly at the threshold did not cross")
	}
	if !b.Exhausted() || b.RemainingBytes() != 0 {
		t.Errorf("post-threshold state: exhausted=%v remaining=%g", b.Exhausted(), b.RemainingBytes())
	}
	// Crossing reports once; usage keeps accumulating past the boundary.
	if b.Add(5) {
		t.Error("second crossing reported")
	}
	if got := b.UsedBytes(); got != 105 {
		t.Errorf("used %g, want 105", got)
	}
}

// Past the boundary in one oversized write: still a single crossing.
func TestBudgetOvershoot(t *testing.T) {
	b := NewBudget(10)
	if !b.Add(25) {
		t.Fatal("oversized write did not cross")
	}
	if b.Add(1) {
		t.Error("crossing reported twice")
	}
	if b.RemainingBytes() != 0 || b.UsedBytes() != 26 {
		t.Errorf("state after overshoot: remaining=%g used=%g", b.RemainingBytes(), b.UsedBytes())
	}
}

// A budget shared by several pipelines exhausts on their combined volume:
// whichever pipeline's write crosses the array-wide allowance observes the
// crossing, and every sharer sees Exhausted afterwards.
func TestBudgetSharedAcrossPipelines(t *testing.T) {
	shared := NewBudget(100)
	// Pipelines 0 and 1 alternate 30-byte spills: 30, 60, 90, then
	// pipeline 1's fourth spill crosses at 120.
	for i := 0; i < 3; i++ {
		if shared.Add(30) {
			t.Fatalf("crossed on spill %d at %g bytes", i, shared.UsedBytes())
		}
	}
	if !shared.Add(30) {
		t.Fatal("combined volume crossed the shared budget without reporting")
	}
	if !shared.Exhausted() {
		t.Error("sharer does not observe exhaustion")
	}
}

// Nil and device-derived budgets.
func TestBudgetNilAndDevices(t *testing.T) {
	var b *Budget
	if b.Add(1e18) || b.Exhausted() || b.UsedBytes() != 0 {
		t.Error("nil budget is not unlimited")
	}
	if !math.IsInf(b.RemainingBytes(), 1) {
		t.Errorf("nil budget remaining %g, want +Inf", b.RemainingBytes())
	}
	db := DeviceBudget(16, DefaultPBW)
	if want := 16 * PBWBytes(DefaultPBW); db.RemainingBytes() != want {
		t.Errorf("device budget %g, want %g", db.RemainingBytes(), want)
	}
}
