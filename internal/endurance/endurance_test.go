package endurance

import (
	"testing"

	"repro/internal/model"
	"repro/internal/workload"
)

// Fig. 16(b): HILOS improves endurance by 1.34×–1.47× over the 16-SSD
// baseline across request classes.
func TestHILOSEnduranceGain(t *testing.T) {
	flex := FlexWrites()
	hilos := HILOSWrites(0.5, 16)
	for _, m := range []model.Config{model.OPT30B, model.OPT66B, model.OPT175B} {
		for _, class := range workload.Classes() {
			fb, err := flex.BytesPerRequest(m, class)
			if err != nil {
				t.Fatal(err)
			}
			hb, err := hilos.BytesPerRequest(m, class)
			if err != nil {
				t.Fatal(err)
			}
			gain := fb / hb
			if gain < 1.25 || gain > 1.65 {
				t.Errorf("%s/%s: endurance gain %.2f outside the paper's ≈1.34–1.47 band",
					m.Name, class.Name, gain)
			}
		}
	}
}

// §6.6: increasing c from 16 to 32 yields an additional 1.02×–1.05×.
func TestSpillIntervalEnduranceGain(t *testing.T) {
	c16 := HILOSWrites(0.5, 16)
	c32 := HILOSWrites(0.5, 32)
	var minGain, maxGain = 1e9, 0.0
	for _, m := range []model.Config{model.OPT30B, model.OPT66B, model.OPT175B} {
		for _, class := range workload.Classes() {
			b16, _ := c16.BytesPerRequest(m, class)
			b32, _ := c32.BytesPerRequest(m, class)
			g := b16 / b32
			if g < 1 {
				t.Errorf("%s/%s: c=32 wrote more than c=16", m.Name, class.Name)
			}
			if g < minGain {
				minGain = g
			}
			if g > maxGain {
				maxGain = g
			}
		}
	}
	if maxGain < 1.02 || maxGain > 1.10 {
		t.Errorf("peak c=16→32 gain %.3f, paper reports 1.02–1.05", maxGain)
	}
}

// §6.6: "Even for long requests with the 175B model, our system supports
// over 4.08 million requests" on 16 SmartSSDs.
func TestLongRequests175B(t *testing.T) {
	n, err := ServiceableRequests(model.OPT175B, workload.Long, HILOSWrites(0.5, 16), 16, 7.008)
	if err != nil {
		t.Fatal(err)
	}
	if n < 3.5e6 || n > 5.5e6 {
		t.Errorf("serviceable long/175B requests = %.2fM, paper reports ≈ 4.08M", n/1e6)
	}
}

// Write volume ordering: naive per-entry < coalesced < delayed writeback
// never inverts; more output tokens always cost more.
func TestWriteVolumeMonotonicity(t *testing.T) {
	h := HILOSWrites(0.5, 16)
	small, _ := h.BytesPerRequest(model.OPT66B, workload.Short)
	large, _ := h.BytesPerRequest(model.OPT66B, workload.Long)
	if large <= small {
		t.Error("long request wrote no more than short")
	}
	f := FlexWrites()
	fb, _ := f.BytesPerRequest(model.OPT66B, workload.Short)
	hb, _ := h.BytesPerRequest(model.OPT66B, workload.Short)
	if hb >= fb {
		t.Error("HILOS writes not below FLEX")
	}
}

func TestInvalidClass(t *testing.T) {
	if _, err := FlexWrites().BytesPerRequest(model.OPT30B, workload.Class{}); err == nil {
		t.Error("empty class accepted")
	}
	if _, err := ServiceableRequests(model.OPT30B, workload.Class{}, FlexWrites(), 16, 7.008); err == nil {
		t.Error("ServiceableRequests accepted empty class")
	}
}

func TestPBWBytes(t *testing.T) {
	if PBWBytes(7.008) != 7.008e15 {
		t.Errorf("PBWBytes = %v", PBWBytes(7.008))
	}
}
