// Package endurance implements the Fig. 16(b) SSD-endurance analysis: the
// KV cache is write-once read-many, so lifetime is governed by total write
// volume. The model counts prefill writes plus decode-time append writes
// (with the write amplification of each system's commit strategy) and
// divides the array's PBW budget by the per-request volume.
package endurance

import (
	"fmt"
	"math"

	"repro/internal/model"
	"repro/internal/workload"
)

// DefaultPBW is the per-device endurance rating used when a caller has no
// measured value: 7.008 petabytes written per 3.84 TB SmartSSD with 3-month
// retention relaxation, §6.6.
const DefaultPBW = 7.008

// PBWBytes converts the paper's petabytes-written rating to bytes
// (7.008 PBW per 3.84 TB SmartSSD with 3-month retention, §6.6).
func PBWBytes(pbw float64) float64 { return pbw * 1e15 }

// WriteModel describes how a system commits KV state to storage.
type WriteModel struct {
	Name string
	// XAlpha is the X-cache fraction; the α portion stores X (half the KV
	// bytes for MHA) instead of K/V, cutting write volume by ≈ α/2 (§6.6).
	XAlpha float64
	// DecodeWAF is the write amplification of decode-time appends:
	// FLEX commits small entries through the SSD cache (partial
	// coalescing), HILOS spills page-aligned chunks.
	DecodeWAF float64
	// SpillMetaBytes models FTL/log metadata per spill per row; smaller
	// spill intervals pay it more often (the §6.6 c=16→32 gain).
	SpillMetaBytes float64
	SpillInterval  int
}

// FlexWrites is the FLEX(16 PCIe 3.0 SSDs) baseline: every token's K and V
// entries are committed eagerly; the SSD's internal cache coalesces some of
// the sub-page traffic (effective WAF 1.5).
func FlexWrites() WriteModel {
	return WriteModel{Name: "FLEX(16 PCIe 3.0 SSDs)", DecodeWAF: 1.5}
}

// HILOSWrites is the delayed-writeback model with spill interval c and the
// §4.2-chosen X-cache ratio.
func HILOSWrites(alpha float64, c int) WriteModel {
	return WriteModel{
		Name:           fmt.Sprintf("HILOS(c=%d)", c),
		XAlpha:         alpha,
		DecodeWAF:      1,
		SpillMetaBytes: 1024,
		SpillInterval:  c,
	}
}

// BytesPerRequest returns the physical storage writes for one request of
// the given class on the given model.
func (w WriteModel) BytesPerRequest(m model.Config, class workload.Class) (float64, error) {
	if class.Input <= 0 || class.Output <= 0 {
		return 0, fmt.Errorf("endurance: invalid request class %+v", class)
	}
	perTokenKV := float64(m.KVBytesPerTokenLayer()) * float64(m.Layers)
	perTokenX := float64(m.XBytesPerTokenLayer()) * float64(m.Layers)
	// Storage mix: (1−α) of the cache as K/V, α as X.
	perToken := (1-w.XAlpha)*perTokenKV + w.XAlpha*perTokenX

	prefill := float64(class.Input) * perToken // row-wise, page-aligned
	decode := float64(class.Output) * perToken * w.DecodeWAF
	if w.SpillInterval > 0 {
		// Metadata per spill per (KV-head × layer) row group, amortized
		// over the interval.
		rows := float64(m.KVHeads * m.Layers)
		decode += float64(class.Output) / float64(w.SpillInterval) * rows * w.SpillMetaBytes
	}
	return prefill + decode, nil
}

// ServiceableRequests returns the number of requests the array can absorb
// before exhausting its endurance budget (Fig. 16b's y-axis, in requests).
func ServiceableRequests(m model.Config, class workload.Class, w WriteModel, devices int, pbw float64) (float64, error) {
	per, err := w.BytesPerRequest(m, class)
	if err != nil {
		return 0, err
	}
	if per <= 0 {
		return 0, fmt.Errorf("endurance: zero write volume")
	}
	return float64(devices) * PBWBytes(pbw) / per, nil
}

// Budget tracks cumulative flash writes against an endurance limit — the
// live counterpart of ServiceableRequests, consumed by the cluster's
// wear-out fault path. The write that reaches the limit exhausts the
// budget; a budget may be shared (several pipelines Add-ing into one
// array-wide allowance). A nil *Budget is unlimited: Add never exhausts
// it, so the no-wear configuration costs one pointer check.
type Budget struct {
	limit     float64
	used      float64
	exhausted bool
}

// NewBudget returns a budget of the given byte limit (must be > 0).
func NewBudget(limitBytes float64) *Budget {
	return &Budget{limit: limitBytes}
}

// DeviceBudget returns the §6.6 endurance budget of an array: devices ×
// PBWBytes(pbw).
func DeviceBudget(devices int, pbw float64) *Budget {
	return NewBudget(float64(devices) * PBWBytes(pbw))
}

// Add charges bytes against the budget and reports whether this call
// crossed it: true exactly once, on the write that makes cumulative usage
// reach or exceed the limit (writes landing exactly on the boundary
// exhaust it — the budget is an allowance, not a strict bound). Later
// calls keep accumulating but return false; poll Exhausted for state.
func (b *Budget) Add(bytes float64) bool {
	if b == nil || b.limit <= 0 {
		return false
	}
	b.used += bytes
	if !b.exhausted && b.used >= b.limit {
		b.exhausted = true
		return true
	}
	return false
}

// UsedBytes returns the cumulative writes charged so far.
func (b *Budget) UsedBytes() float64 {
	if b == nil {
		return 0
	}
	return b.used
}

// RemainingBytes returns the allowance left before exhaustion (0 once
// exhausted, +Inf for a nil/unlimited budget).
func (b *Budget) RemainingBytes() float64 {
	if b == nil || b.limit <= 0 {
		return math.Inf(1)
	}
	if r := b.limit - b.used; r > 0 {
		return r
	}
	return 0
}

// Exhausted reports whether cumulative writes have reached the limit.
func (b *Budget) Exhausted() bool { return b != nil && b.exhausted }
