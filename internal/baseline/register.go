package baseline

import (
	"repro/internal/device"
	"repro/internal/engine"
	"repro/internal/pipeline"
)

// System identifiers registered by this package — the Fig. 10 / Fig. 17(b)
// comparison systems.
const (
	SysFlexSSD   engine.System = "flex-ssd"
	SysFlexDRAM  engine.System = "flex-dram"
	SysFlex16SSD engine.System = "flex-16ssd"
	SysDSUVM     engine.System = "ds-uvm"
	SysVLLM      engine.System = "vllm"
)

// flexEngine binds a FlexVariant to a testbed as a registry engine.
type flexEngine struct {
	sys  engine.System
	desc string
	tb   device.Testbed
	v    FlexVariant
}

func (e flexEngine) Name() engine.System                      { return e.sys }
func (e flexEngine) Describe() string                         { return e.desc }
func (e flexEngine) Run(req pipeline.Request) pipeline.Report { return e.v.Run(e.tb, req) }

const vllmDesc = "multi-node vLLM: 2×4 RTX A6000, tensor parallel within a node, pipeline parallel across (Fig. 17b)"

// vllmEngine binds the multi-node vLLM model to a testbed.
type vllmEngine struct {
	tb device.Testbed
	c  VLLMConfig
}

func (e vllmEngine) Name() engine.System                      { return SysVLLM }
func (e vllmEngine) Describe() string                         { return vllmDesc }
func (e vllmEngine) Run(req pipeline.Request) pipeline.Report { return e.c.Run(e.tb, req) }

func init() {
	flex := func(sys engine.System, rank int, desc string, mk func(device.Testbed) FlexVariant) {
		engine.Register(engine.Spec{
			System: sys, Rank: rank, Describe: desc,
			New: func(cfg engine.Config) (engine.Engine, error) {
				return flexEngine{sys: sys, desc: desc, tb: cfg.Testbed, v: mk(cfg.Testbed)}, nil
			},
		})
	}
	flex(SysFlexSSD, 10, "FlexGen-style offloading, KV cache on 4 PCIe 4.0 SSDs", FlexSSD)
	flex(SysFlexDRAM, 20, "FlexGen-style offloading, KV cache in host DRAM", FlexDRAM)
	flex(SysFlex16SSD, 30, "FlexGen on the 16-SmartSSD array with FPGAs disabled (shared uplink)", Flex16SSD)
	flex(SysDSUVM, 40, "DeepSpeed ZeRO-Inference with unified virtual memory, KV in DRAM", DeepSpeedUVM)
	engine.Register(engine.Spec{
		System: SysVLLM, Rank: 50, Describe: vllmDesc,
		New: func(cfg engine.Config) (engine.Engine, error) {
			return vllmEngine{tb: cfg.Testbed, c: DefaultVLLM()}, nil
		},
	})
}
