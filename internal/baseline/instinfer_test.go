package baseline

import (
	"testing"

	"repro/internal/device"
	"repro/internal/engine"
	"repro/internal/longbench"
	"repro/internal/model"
	"repro/internal/pipeline"
)

func TestInstInferRegistered(t *testing.T) {
	spec, ok := engine.Lookup(SysInstInfer)
	if !ok {
		t.Fatal("instinfer not registered")
	}
	if spec.Rank <= 50 || spec.Rank >= 60 {
		t.Errorf("rank %d should sit between the baselines (≤50) and HILOS (≥60)", spec.Rank)
	}
	eng, err := engine.New(SysInstInfer, engine.Config{Testbed: device.DefaultTestbed(), Devices: 16})
	if err != nil {
		t.Fatal(err)
	}
	if eng.Name() != SysInstInfer || eng.Describe() == "" {
		t.Errorf("engine identity: %q / %q", eng.Name(), eng.Describe())
	}
}

// The lossy 1/8 retrieval reads an eighth of the KV stream, so InstInfer's
// decoding step must beat the full-cache SSD baseline on long contexts
// while staying slower than nothing — and its report must be complete.
func TestInstInferFasterThanFlexSSDOnLongContext(t *testing.T) {
	tb := device.DefaultTestbed()
	eng, err := engine.New(SysInstInfer, engine.Config{Testbed: tb, Devices: 16})
	if err != nil {
		t.Fatal(err)
	}
	req := pipeline.Request{Model: model.OPT66B, Batch: 16, Context: 64 * 1024, OutputLen: 64}
	rep := eng.Run(req)
	if rep.OOM {
		t.Fatalf("instinfer OOM: %s", rep.Reason)
	}
	if rep.Batch != 16 || rep.StepSec <= 0 || rep.PrefillSec <= 0 {
		t.Fatalf("incomplete report %+v", rep)
	}
	if rep.DecodeWriteBytesPerStep <= 0 {
		t.Error("no write accounting for endurance analysis")
	}
	flex := FlexSSD(tb).Run(tb, req)
	if flex.OOM {
		t.Fatalf("flex-ssd OOM: %s", flex.Reason)
	}
	if rep.StepSec >= flex.StepSec {
		t.Errorf("instinfer step %v s not below flex-ssd %v s despite reading 1/8 of the KV cache",
			rep.StepSec, flex.StepSec)
	}
}

func TestInstInferOOMOnImpossibleRequest(t *testing.T) {
	eng, err := engine.New(SysInstInfer, engine.Config{Testbed: device.DefaultTestbed(), Devices: 1})
	if err != nil {
		t.Fatal(err)
	}
	// One device cannot hold OPT-175B weights plus a long-context KV cache.
	rep := eng.Run(pipeline.Request{Model: model.OPT175B, Batch: 256, Context: 1024 * 1024, OutputLen: 64})
	if !rep.OOM || rep.Reason == "" {
		t.Errorf("expected OOM with reason, got %+v", rep)
	}
	rep = eng.Run(pipeline.Request{Model: model.OPT66B, Batch: 0, Context: 1, OutputLen: 1})
	if !rep.OOM {
		t.Error("invalid request not reported as OOM")
	}
}

// The timing model's 1/8 knob is the accuracy harness's 1/8 knob: lossy
// retrieval must cost accuracy against the exact reference on the
// evidence-sparse tasks — the trade that makes InstInfer a distinct fleet
// tier rather than a free lunch.
func TestInstInferAccuracyTradeoff(t *testing.T) {
	if testing.Short() {
		t.Skip("accuracy scoring is slow")
	}
	task := longbench.Suite()[0]
	task.Samples = 60 // enough to separate exact from 1/8 retrieval
	const seed = 9
	lossy, err := InstInferAccuracy(task, seed)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := task.Score(seed, longbench.Exact)
	if err != nil {
		t.Fatal(err)
	}
	if lossy >= exact {
		t.Errorf("lossy 1/8 retrieval scored %.1f%%, not below exact %.1f%%", lossy, exact)
	}
	if lossy <= 0 {
		t.Errorf("lossy retrieval score %.1f%% degenerate", lossy)
	}
}
