package baseline

import (
	"testing"

	"repro/internal/device"
	"repro/internal/model"
	"repro/internal/pipeline"
)

func req(m model.Config, bs, ctx int) pipeline.Request {
	return pipeline.Request{Model: m, Batch: bs, Context: ctx, OutputLen: 64}
}

func TestFlexSSDBasics(t *testing.T) {
	tb := device.DefaultTestbed()
	r := FlexSSD(tb).Run(tb, req(model.OPT66B, 16, 32768))
	if r.OOM {
		t.Fatalf("unexpected OOM: %s", r.Reason)
	}
	if r.Batch != 16 {
		t.Errorf("batch = %d, want 16", r.Batch)
	}
	if r.DecodeTokPerSec() <= 0 || r.PrefillSec <= 0 {
		t.Error("non-positive throughput or prefill")
	}
	// Fig. 2(b): KV cache I/O dominates (> 50% of busy time) for the
	// SSD-offloaded baseline at long context.
	if share := r.BreakdownShare(pipeline.LabelLoadKV); share < 0.5 {
		t.Errorf("LoadKV share = %.2f, want > 0.5 (Fig. 2b: >60%%)", share)
	}
	if r.DecodeWriteBytesPerStep <= 0 {
		t.Error("no decode write traffic recorded")
	}
}

// FLEX(SSD) throughput saturates with batch (KV I/O bound), while
// per-step latency grows ~linearly (Fig. 11a).
func TestFlexSSDBatchSaturation(t *testing.T) {
	tb := device.DefaultTestbed()
	t4 := FlexSSD(tb).Run(tb, req(model.OPT66B, 4, 32768)).DecodeTokPerSec()
	t16 := FlexSSD(tb).Run(tb, req(model.OPT66B, 16, 32768)).DecodeTokPerSec()
	if t16 > 1.25*t4 {
		t.Errorf("FLEX(SSD) scaled %0.2f× from bs=4 to 16; should saturate", t16/t4)
	}
}

func TestFlexDRAMCapacity(t *testing.T) {
	tb := device.DefaultTestbed()
	// 66B@64K: capacity limits the batch (Fig. 11a).
	r := FlexDRAM(tb).Run(tb, req(model.OPT66B, 16, 65536))
	if r.OOM {
		t.Fatalf("unexpected OOM: %s", r.Reason)
	}
	if r.Batch >= 4 {
		t.Errorf("FLEX(DRAM) batch = %d at 64K, expected capacity-limited < 4", r.Batch)
	}
	// 66B@128K: CPU OOM even at batch 1 (Fig. 10).
	r = FlexDRAM(tb).Run(tb, req(model.OPT66B, 16, 131072))
	if !r.OOM {
		t.Error("FLEX(DRAM) 66B@128K did not OOM")
	}
	if r.DecodeTokPerSec() != 0 {
		t.Error("OOM run reported throughput")
	}
}

// FLEX(DRAM) outperforms FLEX(SSD) where it fits but is dominated by
// weight loading (Fig. 11b).
func TestFlexDRAMBeatsSSDWhenFeasible(t *testing.T) {
	tb := device.DefaultTestbed()
	r := req(model.OPT66B, 16, 32768)
	ssd := FlexSSD(tb).Run(tb, r)
	dram := FlexDRAM(tb).Run(tb, r)
	if dram.DecodeTokPerSec() <= ssd.DecodeTokPerSec() {
		t.Errorf("FLEX(DRAM) %.3f not above FLEX(SSD) %.3f", dram.DecodeTokPerSec(), ssd.DecodeTokPerSec())
	}
	if share := dram.BreakdownShare(pipeline.LabelLoadWeight); share < 0.4 {
		t.Errorf("FLEX(DRAM) LoadWeight share = %.2f, want dominant (Fig. 11b)", share)
	}
}

// Fig. 10: FLEX(16 PCIe 3.0 SSDs) reaches only 0.64×–0.94× of FLEX(SSD)
// because the shared chassis uplink is below the dedicated root ports.
func TestFlex16SSDUnderperforms(t *testing.T) {
	tb := device.DefaultTestbed()
	for _, m := range []model.Config{model.OPT30B, model.OPT66B, model.OPT175B} {
		for _, ctx := range []int{32768, 131072} {
			r := req(m, 16, ctx)
			base := FlexSSD(tb).Run(tb, r).DecodeTokPerSec()
			got := Flex16SSD(tb).Run(tb, r).DecodeTokPerSec()
			ratio := got / base
			if ratio < 0.64 || ratio > 0.94 {
				t.Errorf("%s@%d: 16-SSD ratio %.2f outside the paper's [0.64, 0.94]", m.Name, ctx, ratio)
			}
		}
	}
}

// §6.3: DS+UVM suffers >4× slowdown relative to FLEX(DRAM) on weight-bound
// configurations.
func TestDeepSpeedUVMSlowdown(t *testing.T) {
	tb := device.DefaultTestbed()
	r := req(model.OPT66B, 16, 32768)
	dram := FlexDRAM(tb).Run(tb, r).DecodeTokPerSec()
	uvm := DeepSpeedUVM(tb).Run(tb, r).DecodeTokPerSec()
	if dram/uvm < 4 {
		t.Errorf("DS+UVM slowdown %.2f×, paper reports > 4×", dram/uvm)
	}
}

func TestBaselineDeterminism(t *testing.T) {
	tb := device.DefaultTestbed()
	r := req(model.OPT30B, 8, 16384)
	a := FlexSSD(tb).Run(tb, r)
	b := FlexSSD(tb).Run(tb, r)
	if a.StepSec != b.StepSec || a.PrefillSec != b.PrefillSec {
		t.Error("baseline simulation not deterministic")
	}
}

func TestVLLMFeasibility(t *testing.T) {
	tb := device.DefaultTestbed()
	v := DefaultVLLM()
	// 175B weights (350 GB) fit 8×48 GB only barely; KV is swapped.
	r := v.Run(tb, req(model.OPT175B, 16, 16384))
	if r.OOM {
		t.Fatalf("unexpected OOM: %s", r.Reason)
	}
	if r.Batch >= 16 {
		t.Errorf("vLLM batch = %d, expected swap-limited small batch (§6.6)", r.Batch)
	}
	// A hypothetical 480B model cannot even hold weights.
	big := model.OPT175B
	big.Name, big.Layers = "OPT-480B", 264
	r = v.Run(tb, req(big, 1, 4096))
	if !r.OOM {
		t.Error("oversized model did not OOM on vLLM")
	}
}

func TestVLLMThroughputDecreasesWithContext(t *testing.T) {
	tb := device.DefaultTestbed()
	v := DefaultVLLM()
	t16 := v.Run(tb, req(model.OPT175B, 16, 16384)).DecodeTokPerSec()
	t32 := v.Run(tb, req(model.OPT175B, 16, 32768)).DecodeTokPerSec()
	if t32 >= t16 {
		t.Errorf("vLLM throughput did not fall with context: %.3f vs %.3f", t16, t32)
	}
}

func TestVLLMPrice(t *testing.T) {
	tb := device.DefaultTestbed()
	v := DefaultVLLM()
	want := 2*tb.HostUSD + 8*device.A6000().PriceUSD
	if got := v.PriceUSD(tb); got != want {
		t.Errorf("vLLM price = %v, want %v", got, want)
	}
}

func TestInvalidRequestRejected(t *testing.T) {
	tb := device.DefaultTestbed()
	bad := pipeline.Request{Model: model.OPT30B, Batch: 0, Context: 1024, OutputLen: 1}
	if r := FlexSSD(tb).Run(tb, bad); !r.OOM {
		t.Error("invalid request not rejected by FlexGen engine")
	}
	if r := DefaultVLLM().Run(tb, bad); !r.OOM {
		t.Error("invalid request not rejected by vLLM engine")
	}
}
