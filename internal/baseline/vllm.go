package baseline

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/pipeline"
)

// VLLMConfig describes the distributed multi-GPU deployment of Fig. 17(b):
// two nodes with four RTX A6000 each, tensor parallelism within a node and
// pipeline parallelism across nodes.
type VLLMConfig struct {
	Nodes       int
	GPUsPerNode int
	GPU         device.GPUSpec
}

// DefaultVLLM returns the paper's 2×4×A6000 configuration.
func DefaultVLLM() VLLMConfig {
	return VLLMConfig{Nodes: 2, GPUsPerNode: 4, GPU: device.A6000()}
}

// Name returns the display name used in figures.
func (c VLLMConfig) Name() string {
	return fmt.Sprintf("vLLM(%dx%s)", c.Nodes*c.GPUsPerNode, c.GPU.Name)
}

// Run evaluates the analytical vLLM model. Decode is memory-bound: every
// step streams the active weights and the resident KV through GDDR6; KV that
// does not fit GPU memory is swapped from host DRAM over PCIe (vLLM's paged
// swap), and pipeline parallelism adds an inter-node latency per layer
// boundary crossing.
func (c VLLMConfig) Run(tb device.Testbed, req pipeline.Request) pipeline.Report {
	rep := pipeline.Report{
		System: c.Name(), Model: req.Model.Name, Context: req.Context,
		Devices: 0,
	}
	if err := req.Validate(); err != nil {
		rep.OOM, rep.Reason = true, err.Error()
		return rep
	}
	m := req.Model
	nGPU := c.Nodes * c.GPUsPerNode
	totalMem := int64(float64(nGPU) * float64(c.GPU.MemBytes) * 0.95)
	weights := m.TotalWeightBytes()
	if weights > totalMem {
		rep.OOM, rep.Reason = true, "GPU OOM: weights exceed aggregate GPU memory"
		return rep
	}

	kvPerSeq := m.KVCacheBytes(1, req.Context)
	freeKV := totalMem - weights - m.ActivationBytes(req.Batch)
	bsResident := int(freeKV / kvPerSeq)
	if bsResident < 0 {
		bsResident = 0
	}
	swapBudget := int64(c.Nodes) * tb.SwapSpaceBytes
	bsSwapped := int(swapBudget / kvPerSeq)
	bs := bsResident + bsSwapped
	if bs > req.Batch {
		bs = req.Batch
	}
	if bs < 1 {
		rep.OOM, rep.Reason = true, "GPU OOM: no room for a single sequence's KV cache"
		return rep
	}
	if bsResident > bs {
		bsResident = bs
	}
	rep.Batch = bs

	aggHBM := float64(nGPU) * c.GPU.HBMBW * tb.TPEfficiency

	// Weight streaming through GDDR6 (every step touches active weights).
	tWeights := float64(m.ActiveWeightBytesPerStep()) / aggHBM
	// Resident KV read from GDDR6.
	tKVResident := float64(int64(bsResident)*kvPerSeq) / aggHBM
	// Swapped KV crosses PCIe from host DRAM.
	nSwapped := bs - bsResident
	tSwap := float64(int64(nSwapped)*kvPerSeq) / (float64(c.Nodes) * tb.SwapBW)
	// Pipeline-parallel inter-node latency: one boundary crossing per
	// microbatch, poorly amortized at the small batches this setup allows
	// (§6.6: "bottlenecked by small batches and inter-node communication").
	tComm := tb.InterNodeLat * float64(m.Layers) / 4

	rep.StepSec = tWeights + tKVResident + tSwap + tComm
	rep.Breakdown = map[string]float64{
		pipeline.LabelLoadWeight: tWeights,
		pipeline.LabelLoadKV:     tKVResident + tSwap,
		pipeline.LabelCompute:    tComm,
	}
	rep.ResourceBusy = map[string]float64{pipeline.ResGPU: rep.StepSec}
	rep.HostUtilGPU = 1

	// Prefill: compute-bound on the aggregate GPUs.
	rep.PrefillSec = m.PrefillFLOPs(bs, req.Context) /
		(float64(nGPU) * c.GPU.GEMMFLOPS * tb.TPEfficiency)
	return rep
}

// PriceUSD returns the hardware cost of the deployment (two hosts plus the
// GPUs), used by the §6.6 cost analysis.
func (c VLLMConfig) PriceUSD(tb device.Testbed) float64 {
	return float64(c.Nodes)*tb.HostUSD + float64(c.Nodes*c.GPUsPerNode)*c.GPU.PriceUSD
}
