package baseline

import (
	"fmt"

	"repro/internal/accel"
	"repro/internal/device"
	"repro/internal/engine"
	"repro/internal/longbench"
	"repro/internal/model"
	"repro/internal/pipeline"
	"repro/internal/sim"
)

// SysInstInfer is the InstInfer-style in-storage attention system
// (PAPERS.md): attention runs inside computational SSDs like HILOS's ANS
// path, but the devices fetch only the top-scoring 1/8 of KV blocks
// (lossy top-k retrieval) instead of streaming the full cache. That makes
// it the cheap-but-approximate middle tier of a heterogeneous fleet — far
// less flash traffic than exact NSP attention, at an accuracy cost the
// longbench harness quantifies via the same 1/8 knob.
const SysInstInfer engine.System = "instinfer"

// InstRetrievalRatio is the lossy KV compression ratio: the devices read 1
// of every InstRetrievalRatio cached blocks. It matches
// longbench.LossyOneEighth, so the timing and accuracy models describe the
// same system point.
const InstRetrievalRatio = 8

// InstInferAccuracy scores a retrieval task under the engine's lossy 1/8
// top-k attention — the accuracy half of the speed/accuracy trade the
// engine's Run models the speed half of.
func InstInferAccuracy(t longbench.Task, seed int64) (float64, error) {
	return t.Score(seed, longbench.LossyOneEighth)
}

const instDesc = "InstInfer-style in-storage attention, lossy top-1/8 KV retrieval"

// instEngine binds the InstInfer model to a testbed and device count.
type instEngine struct {
	tb      device.Testbed
	devices int
}

func (e instEngine) Name() engine.System { return SysInstInfer }
func (e instEngine) Describe() string {
	return fmt.Sprintf("%s (%d computational SSDs)", instDesc, e.devices)
}

// Run simulates one decoding step plus prefill. The task graph mirrors the
// HILOS ANS path — per-layer QKV on the GPU, scatter over the uplink,
// attention behind the storage fabric, gather back — with two InstInfer
// twists: the in-storage pass first scans block-granular pooled keys
// (1/RetrievalBlockSize of the cache) to rank blocks, then reads only the
// kept 1/8 of KV; and new KV entries commit synchronously per step (no
// delayed writeback), paying sub-page write amplification.
func (e instEngine) Run(req pipeline.Request) pipeline.Report {
	tb, devices := e.tb, e.devices
	rep := pipeline.Report{
		System: "InstInfer", Model: req.Model.Name, Context: req.Context, Devices: devices,
	}
	if err := req.Validate(); err != nil {
		rep.OOM, rep.Reason = true, err.Error()
		return rep
	}
	m := req.Model

	bs := pipeline.FitBatchStorage(m, req.Context, req.Batch, tb.SmartSSD.SSD.CapBytes, devices)
	if bs == 0 {
		rep.OOM, rep.Reason = true, "storage OOM: KV cache exceeds computational-SSD capacity at batch 1"
		return rep
	}
	rep.Batch = bs

	weightsOnSSD := pipeline.WeightsOnStorage(m)
	hid := float64(m.Hidden)
	kvDim := float64(m.KVHeads * m.HeadDim())
	kvLayerBytes := float64(bs) * float64(req.Context) * float64(m.KVBytesPerTokenLayer())
	newKVBytes := float64(bs) * float64(m.KVBytesPerTokenLayer())
	// Per-(batch, head) row appends of d elements: sub-page chunks.
	entryChunk := int64(m.HeadDim()) * model.BytesPerElem
	waf := tb.SmartSSD.SSD.WriteAmplification(entryChunk)

	e2 := sim.NewEngine()
	e2.RecordTimeline(!req.NoTrace)
	gpu := e2.Resource(pipeline.ResGPU, 1)
	gpuLink := e2.Resource(pipeline.ResGPULink, tb.Topo.GPULink.BW)
	uplink := e2.Resource(pipeline.ResUplink, tb.Topo.StorageUplink.BW)
	flash := e2.Resource(pipeline.ResStorRead, float64(devices)*tb.SmartSSD.InternalReadBW)
	// In-storage compute: the same accelerator cycle model as the NSP
	// devices (Fig. 12a rates), processing only the retrieved fraction.
	cm := accel.DefaultCycleModel(m.DGroup, m.HeadDim())
	kernel := e2.Resource(pipeline.ResNSP, float64(devices)*cm.KernelKVRate(req.Context))
	wbw := float64(devices) * tb.SmartSSD.SSD.WriteBW
	if tb.Topo.StorageUplink.BW < wbw {
		wbw = tb.Topo.StorageUplink.BW
	}
	storWrite := e2.Resource(pipeline.ResStorWrite, wbw)

	var prevMLP *sim.Task
	var commits []*sim.Task
	for l := 0; l < m.Layers; l++ {
		wABytes := float64(m.AttnWeightBytesPerLayer())
		wMBytes := float64(m.MLPActiveWeightBytesPerLayer(l))
		var wA, wM *sim.Task
		if weightsOnSSD {
			sA := e2.Task(pipeline.LabelLoadWeight, uplink, wABytes)
			wA = e2.Task(pipeline.LabelLoadWeight, gpuLink, wABytes, sA)
			sM := e2.Task(pipeline.LabelLoadWeight, uplink, wMBytes)
			wM = e2.Task(pipeline.LabelLoadWeight, gpuLink, wMBytes, sM)
		} else {
			wA = e2.Task(pipeline.LabelLoadWeight, gpuLink, wABytes)
			wM = e2.Task(pipeline.LabelLoadWeight, gpuLink, wMBytes)
		}

		qkv := e2.Task(pipeline.LabelCompute, gpu,
			tb.GPU.ComputeTime(m.ProjFLOPsPerTokenLayer()*float64(bs), wABytes)+tb.OverheadPerLayer/2,
			wA, prevMLP)

		// Scatter the new q/k/v rows to the devices.
		scatterBytes := float64(bs) * (hid + 2*kvDim) * model.BytesPerElem
		scatter := e2.Task(pipeline.LabelLoadKV, uplink, scatterBytes, qkv)

		// New KV entries commit synchronously before attention may read
		// them (InstInfer has no delayed-writeback machinery).
		commit := e2.Task(pipeline.LabelStoreKV, storWrite, newKVBytes*waf, qkv)
		commits = append(commits, commit)

		// Retrieval scoring: scan the block-pooled key summaries — one
		// pooled row per RetrievalBlockSize tokens — then fetch only the
		// winning 1/8 of the cache through the in-storage pipeline.
		poolScan := e2.Task(pipeline.LabelLoadKV, flash,
			kvLayerBytes/float64(longbench.RetrievalBlockSize), scatter, commit)
		keptBytes := kvLayerBytes / InstRetrievalRatio
		flashKV := e2.Task(pipeline.LabelLoadKV, flash, keptBytes, poolScan)
		attn := e2.Task(pipeline.LabelLoadKV, kernel, keptBytes, poolScan)

		// Attention outputs return to the GPU for the MLP.
		gather := e2.Task(pipeline.LabelLoadKV, uplink,
			float64(bs)*hid*model.BytesPerElem, flashKV, attn)

		mlp := e2.Task(pipeline.LabelCompute, gpu,
			tb.GPU.ComputeTime(m.MLPFLOPsPerTokenLayer(l)*float64(bs), wMBytes)+tb.OverheadPerLayer/2,
			gather, wM)
		prevMLP = mlp
	}

	barrier := e2.Barrier("step", append([]*sim.Task{prevMLP}, commits...)...)
	res := e2.Run()

	rep.StepSec = barrier.Finish()
	rep.Breakdown = res.ByLabel
	rep.ResourceBusy = res.ResourceBusy
	rep.Trace = res.Tasks
	rep.HostUtilCPU = res.ResourceBusy[pipeline.ResCPU] / rep.StepSec
	rep.HostUtilGPU = res.ResourceBusy[pipeline.ResGPU] / rep.StepSec
	rep.HostUtilDRAMCap = instDRAMUtil(tb, m)
	rep.DecodeWriteBytesPerStep = newKVBytes * waf * float64(m.Layers)

	// Prefill: FlashAttention on the GPU; the prompt KV streams to the
	// devices row-wise, page-aligned.
	pin := pipeline.PrefillInputs{WeightLoadBW: tb.Topo.GPULink.BW}
	if weightsOnSSD {
		pin.WeightSrcBW = tb.Topo.StorageUplink.BW
	}
	kvTotal := m.KVCacheBytes(bs, req.Context)
	pin.KVStoreBW = wbw
	pin.KVStoreBytes = kvTotal
	rep.PrefillSec = pipeline.Prefill(tb, m, bs, req.Context, pin)
	rep.PrefillWriteBytes = float64(kvTotal)
	return rep
}

func instDRAMUtil(tb device.Testbed, m model.Config) float64 {
	var used int64
	if !pipeline.WeightsOnStorage(m) {
		used = m.TotalWeightBytes()
	}
	u := float64(used) / float64(tb.DRAM.Bytes)
	if u > 1 {
		u = 1
	}
	return u
}

func init() {
	engine.Register(engine.Spec{
		System: SysInstInfer, Rank: 55, Describe: instDesc,
		New: func(cfg engine.Config) (engine.Engine, error) {
			return instEngine{tb: cfg.Testbed, devices: cfg.Devices}, nil
		},
	})
}
