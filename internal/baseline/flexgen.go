// Package baseline implements the comparison systems of §6.1: FlexGen-style
// offloading-based batched inference with the KV cache in host DRAM or on
// SSDs (including the 16-SmartSSD-with-FPGA-disabled configuration),
// DeepSpeed ZeRO-Inference with UVM, and the multi-node vLLM deployment of
// Fig. 17(b). All engines share the discrete-event substrate of
// internal/sim and the report format of internal/pipeline.
package baseline

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/model"
	"repro/internal/pipeline"
	"repro/internal/sim"
)

// KVHome says where a FlexGen variant keeps the KV cache.
type KVHome int

// KV cache placements.
const (
	KVInDRAM KVHome = iota
	KVOnSSD
)

// FlexVariant selects one of the FlexGen-style baselines.
type FlexVariant struct {
	Name   string
	KV     KVHome
	SSD    device.SSDSpec
	NumSSD int
	// SharedUplink caps the aggregate storage bandwidth at the chassis
	// uplink (the FLEX(16 PCIe 3.0 SSDs) configuration of Fig. 10).
	SharedUplink bool
	// UVM derates the host↔GPU link by Testbed.UVMDerate (DS+UVM(DRAM)).
	UVM bool
}

// FlexSSD returns FLEX(SSD): four PM9A3 on dedicated PCIe 4.0 ×4 ports.
func FlexSSD(tb device.Testbed) FlexVariant {
	return FlexVariant{Name: "FLEX(SSD)", KV: KVOnSSD, SSD: tb.PlainSSD, NumSSD: 4}
}

// FlexDRAM returns FLEX(DRAM): KV cache in host memory.
func FlexDRAM(tb device.Testbed) FlexVariant {
	return FlexVariant{Name: "FLEX(DRAM)", KV: KVInDRAM, SSD: tb.PlainSSD, NumSSD: 4}
}

// Flex16SSD returns FLEX(16 PCIe 3.0 SSDs): the SmartSSD array with FPGAs
// disabled, all KV traffic crossing the shared chassis uplink.
func Flex16SSD(tb device.Testbed) FlexVariant {
	return FlexVariant{Name: "FLEX(16 PCIe 3.0 SSDs)", KV: KVOnSSD, SSD: tb.SmartSSD.SSD, NumSSD: 16, SharedUplink: true}
}

// DeepSpeedUVM returns DS+UVM(DRAM): ZeRO-Inference extended with unified
// virtual memory for intermediate activations (§6.1).
func DeepSpeedUVM(tb device.Testbed) FlexVariant {
	return FlexVariant{Name: "DS+UVM(DRAM)", KV: KVInDRAM, SSD: tb.PlainSSD, NumSSD: 4, UVM: true}
}

// aggregateRead returns the variant's aggregate storage read bandwidth.
func (v FlexVariant) aggregateRead(tb device.Testbed) float64 {
	bw := float64(v.NumSSD) * v.SSD.ReadBW
	if v.SharedUplink && tb.Topo.StorageUplink.BW < bw {
		bw = tb.Topo.StorageUplink.BW
	}
	return bw
}

func (v FlexVariant) aggregateWrite(tb device.Testbed) float64 {
	bw := float64(v.NumSSD) * v.SSD.WriteBW
	if v.SharedUplink && tb.Topo.StorageUplink.BW < bw {
		bw = tb.Topo.StorageUplink.BW
	}
	return bw
}

// Run simulates one request on this variant and returns the report.
func (v FlexVariant) Run(tb device.Testbed, req pipeline.Request) pipeline.Report {
	rep := pipeline.Report{
		System: v.Name, Model: req.Model.Name, Context: req.Context, Devices: v.NumSSD,
	}
	if err := req.Validate(); err != nil {
		rep.OOM, rep.Reason = true, err.Error()
		return rep
	}
	m := req.Model

	// Capacity fitting.
	var bs int
	switch v.KV {
	case KVInDRAM:
		bs = pipeline.FitBatchDRAM(tb, m, req.Context, req.Batch)
		if bs == 0 {
			rep.OOM, rep.Reason = true, "CPU OOM: KV cache exceeds host DRAM at batch 1"
			return rep
		}
	case KVOnSSD:
		bs = pipeline.FitBatchStorage(m, req.Context, req.Batch, v.SSD.CapBytes, v.NumSSD)
		if bs == 0 {
			rep.OOM, rep.Reason = true, "storage OOM: KV cache exceeds SSD capacity at batch 1"
			return rep
		}
	}
	rep.Batch = bs

	weightsOnSSD := pipeline.WeightsOnStorage(m)
	linkBW := tb.Topo.GPULink.BW
	if v.UVM {
		linkBW *= tb.UVMDerate
	}

	// --- Decode step task graph ---
	e := sim.NewEngine()
	e.RecordTimeline(!req.NoTrace)
	gpu := e.Resource(pipeline.ResGPU, 1)
	cpu := e.Resource(pipeline.ResCPU, 1)
	gpuLink := e.Resource(pipeline.ResGPULink, linkBW)
	storRead := e.Resource(pipeline.ResStorRead, v.aggregateRead(tb))
	storWrite := e.Resource(pipeline.ResStorWrite, v.aggregateWrite(tb))

	kvLayerBytes := float64(bs) * float64(req.Context) * float64(m.KVBytesPerTokenLayer())
	newKVBytes := float64(bs) * float64(m.KVBytesPerTokenLayer())
	// FlexGen appends per-(batch, head) rows of d elements: sub-page chunks.
	entryChunk := int64(m.HeadDim()) * model.BytesPerElem
	waf := v.SSD.WriteAmplification(entryChunk)

	var prevMLP, prevAttn *sim.Task
	var kvWrites []*sim.Task
	for l := 0; l < m.Layers; l++ {
		// Weight loads (prefetched; resource order pipelines them).
		wABytes := float64(m.AttnWeightBytesPerLayer())
		wMBytes := float64(m.MLPActiveWeightBytesPerLayer(l))
		var wA, wM *sim.Task
		if weightsOnSSD {
			sA := e.Task(pipeline.LabelLoadWeight, storRead, wABytes)
			wA = e.Task(pipeline.LabelLoadWeight, gpuLink, wABytes, sA)
			sM := e.Task(pipeline.LabelLoadWeight, storRead, wMBytes)
			wM = e.Task(pipeline.LabelLoadWeight, gpuLink, wMBytes, sM)
		} else {
			wA = e.Task(pipeline.LabelLoadWeight, gpuLink, wABytes)
			wM = e.Task(pipeline.LabelLoadWeight, gpuLink, wMBytes)
		}

		qkv := e.Task(pipeline.LabelCompute, gpu,
			tb.GPU.ComputeTime(m.ProjFLOPsPerTokenLayer()*float64(bs), wABytes)+tb.OverheadPerLayer/2,
			wA, prevMLP)

		// KV path.
		var attn *sim.Task
		attnSec := kvLayerBytes / tb.CPUAttnBW
		if v.KV == KVOnSSD {
			demand := kvLayerBytes / tb.KVReadDerate
			// The prefetchable fraction streams ahead; the rest is the
			// layer-synchronous portion FlexGen reads on demand.
			kvPre := e.Task(pipeline.LabelLoadKV, storRead, demand*tb.BaselineOverlap)
			kvSync := e.Task(pipeline.LabelLoadKV, storRead, demand*(1-tb.BaselineOverlap), prevAttn)
			attn = e.Task(pipeline.LabelCompute, cpu, attnSec, kvPre, kvSync, qkv)
		} else {
			attn = e.Task(pipeline.LabelCompute, cpu, attnSec, qkv)
		}
		prevAttn = attn

		// Attention output returns to the GPU for the MLP.
		aout := e.Task(pipeline.LabelCompute, gpuLink, float64(bs)*float64(m.Hidden)*model.BytesPerElem, attn)

		mlp := e.Task(pipeline.LabelCompute, gpu,
			tb.GPU.ComputeTime(m.MLPFLOPsPerTokenLayer(l)*float64(bs), wMBytes)+tb.OverheadPerLayer/2,
			aout, wM)
		prevMLP = mlp

		// New KV entries commit to their home before the next step.
		if v.KV == KVOnSSD {
			kvWrites = append(kvWrites,
				e.Task(pipeline.LabelStoreKV, storWrite, newKVBytes*waf, qkv))
		}
	}
	deps := append([]*sim.Task{prevMLP}, kvWrites...)
	barrier := e.Barrier("step", deps...)
	res := e.Run()

	rep.StepSec = barrier.Finish()
	rep.Breakdown = res.ByLabel
	rep.ResourceBusy = res.ResourceBusy
	rep.Trace = res.Tasks
	rep.HostUtilCPU = res.ResourceBusy[pipeline.ResCPU] / rep.StepSec
	rep.HostUtilGPU = res.ResourceBusy[pipeline.ResGPU] / rep.StepSec
	rep.HostUtilDRAMCap = v.dramCapUtil(tb, m, bs, req.Context)
	if v.KV == KVOnSSD {
		rep.DecodeWriteBytesPerStep = newKVBytes * waf * float64(m.Layers)
	}

	// --- Prefill ---
	pin := pipeline.PrefillInputs{WeightLoadBW: linkBW}
	if weightsOnSSD {
		pin.WeightSrcBW = v.aggregateRead(tb)
	}
	kvTotal := m.KVCacheBytes(bs, req.Context)
	if v.KV == KVOnSSD {
		pin.KVStoreBW = v.aggregateWrite(tb)
		pin.KVStoreBytes = kvTotal
		rep.PrefillWriteBytes = float64(kvTotal) // row-wise, page-aligned
	} else {
		pin.KVStoreBW = tb.DRAM.BW
		pin.KVStoreBytes = kvTotal
	}
	rep.PrefillSec = pipeline.Prefill(tb, m, bs, req.Context, pin)
	return rep
}

func (v FlexVariant) dramCapUtil(tb device.Testbed, m model.Config, bs, ctx int) float64 {
	var used int64
	if !pipeline.WeightsOnStorage(m) {
		used += m.TotalWeightBytes()
	}
	if v.KV == KVInDRAM {
		used += m.KVCacheBytes(bs, ctx)
	} else {
		// Working buffers for in-flight KV layers.
		used += 2 * int64(float64(bs)*float64(ctx)*float64(m.KVBytesPerTokenLayer()))
	}
	u := float64(used) / float64(tb.DRAM.Bytes)
	if u > 1 {
		u = 1
	}
	return u
}

// String returns the variant name.
func (v FlexVariant) String() string { return v.Name }

// ErrUnsupported marks configurations a baseline cannot express.
var ErrUnsupported = fmt.Errorf("baseline: unsupported configuration")
