package sched

import (
	"math"
	"testing"
	"testing/quick"
)

func TestOptimalAlphaPaperFormula(t *testing.T) {
	// ρ=2 reduces to α = 2·B_PCI/(B_SSD + B_PCI).
	bSSD, bPCI := 51.2e9, 20e9
	got := OptimalAlpha(2, bSSD, bPCI)
	want := 2 * bPCI / (bSSD + bPCI)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("OptimalAlpha = %v, want %v", got, want)
	}
}

// §6.4: "an approximate bandwidth ratio of B_SSD/B_PCI ≈ 3, where our
// analytical model predicts an optimal α ≈ 50%".
func TestPaperOperatingPoint(t *testing.T) {
	bPCI := 20e9
	bSSD := 3 * bPCI
	a := OptimalAlpha(2, bSSD, bPCI)
	if math.Abs(a-0.5) > 1e-12 {
		t.Errorf("α at B_SSD/B_PCI=3 is %v, want 0.5", a)
	}
	if SnapAlpha(a) != 0.5 {
		t.Errorf("snapped α = %v, want 0.5", SnapAlpha(a))
	}
}

func TestOptimalAlphaBalancesPCIAndSSD(t *testing.T) {
	f := func(r, s, p float64) bool {
		rho := 1.1 + math.Mod(math.Abs(r), 3)
		bSSD := 1e9 + math.Mod(math.Abs(s), 100e9)
		bPCI := 1e9 + math.Mod(math.Abs(p), 100e9)
		a := OptimalAlpha(rho, bSSD, bPCI)
		if a >= 1 { // clamped; balance not reachable
			return true
		}
		in := Inputs{SX: 1e12, Rho: rho, BPCI: bPCI, BSSD: bSSD, CGPU: 1e15, Hidden: 8192}
		tp, ts := in.TPCI(a), in.TSSD(a)
		return math.Abs(tp-ts) <= 1e-9*math.Max(tp, ts)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestGQADisablesXCache(t *testing.T) {
	// ρ < 1: KV is already smaller than X (e.g. Qwen2.5-32B, ρ=0.4).
	if a := OptimalAlpha(0.4, 50e9, 20e9); a != 0 {
		t.Errorf("α = %v for ρ<1, want 0", a)
	}
	in := Inputs{SX: 1e12, Rho: 0.4, BPCI: 20e9, BSSD: 50e9, CGPU: 1e14, Hidden: 5120}
	a, err := Choose(in)
	if err != nil || a != 0 {
		t.Errorf("Choose for GQA = %v, %v; want 0", a, err)
	}
}

func TestSnapAlpha(t *testing.T) {
	cases := map[float64]float64{
		0.02: 0, 0.1: 0.125, 0.2: 0.25, 0.45: 0.5, 0.56: 0.5, 0.7: 0.75, 0.95: 1,
	}
	for in, want := range cases {
		if got := SnapAlpha(in); got != want {
			t.Errorf("SnapAlpha(%v) = %v, want %v", in, got, want)
		}
	}
}

// The chosen candidate must never be worse than any other candidate under
// the cost model — the defining property of Choose.
func TestChooseIsArgmin(t *testing.T) {
	f := func(s, p float64) bool {
		bSSD := 5e9 + math.Mod(math.Abs(s), 100e9)
		bPCI := 5e9 + math.Mod(math.Abs(p), 40e9)
		in := Inputs{SX: 2e12, Rho: 2, BPCI: bPCI, BSSD: bSSD, CGPU: 140e12, Hidden: 12288}
		a, err := Choose(in)
		if err != nil {
			return false
		}
		ta := in.TEffective(a)
		for _, c := range CandidateAlphas {
			if in.TEffective(c) < ta-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// T_GPU stays below T_SSD at the paper's operating point (OPT-66B, s=32K,
// bs=16, 8 SmartSSDs, A100 GEMM rate) — the premise that regeneration is
// effectively hidden behind NSP attention.
func TestRegenerationIsHidden(t *testing.T) {
	// Per-layer X bytes: bs × s × h × 2.
	sx := float64(16) * 32768 * 9216 * 2
	in := Inputs{
		SX:  sx,
		Rho: 2, BPCI: 8.5e9, BSSD: 8 * 3.2e9, // B_SSD/B_PCI ≈ 3 (§6.4)
		CGPU:   270e12, // A100 GEMM-class rate
		Hidden: 9216,
	}
	a, err := Choose(in)
	if err != nil {
		t.Fatal(err)
	}
	if a != 0.5 {
		t.Errorf("chosen α = %v; Fig. 13 finds α=50%% consistently best", a)
	}
	if in.TGPU(a) >= in.TSSD(a) {
		t.Errorf("T_GPU %.3fs not below T_SSD %.3fs at α=%v", in.TGPU(a), in.TSSD(a), a)
	}
}

func TestAlphaZeroIsNoOp(t *testing.T) {
	in := Inputs{SX: 1e12, Rho: 2, BPCI: 20e9, BSSD: 50e9, CGPU: 1e14, Hidden: 8192}
	if in.TPCI(0) != 0 || in.TGPU(0) != 0 {
		t.Error("α=0 has nonzero PCI/GPU cost")
	}
	// All storage traffic is KV at α=0.
	want := in.Rho * in.SX / in.BSSD
	if math.Abs(in.TSSD(0)-want) > 1e-12 {
		t.Errorf("TSSD(0) = %v, want %v", in.TSSD(0), want)
	}
}

func TestValidate(t *testing.T) {
	bad := Inputs{SX: -1, Rho: 2, BPCI: 1, BSSD: 1, CGPU: 1, Hidden: 1}
	if err := bad.Validate(); err == nil {
		t.Error("negative SX accepted")
	}
	if _, err := Choose(bad); err == nil {
		t.Error("Choose accepted invalid inputs")
	}
}
