// Package sched implements the cooperative X-cache scheduler of §4.2: the
// first-order I/O cost model (T_GPU, T_SSD, T_PCI), the closed-form optimal
// X-cache ratio α, and the power-of-two snapping the runtime uses.
package sched

import (
	"fmt"
	"math"
)

// Inputs carries the bandwidths and sizes of the §4.2 cost model for one
// transformer block's decode attention.
type Inputs struct {
	SX     float64 // bytes of the X-cache for the full batch at context s
	Rho    float64 // S_KV / S_X ratio (2 for MHA, 2·KVHeads/Heads in general)
	BPCI   float64 // host interconnect bandwidth (bytes/s) for GDS X reads
	BSSD   float64 // aggregate NSP internal storage bandwidth (bytes/s)
	CGPU   float64 // GPU effective FLOP/s for the regeneration GEMMs
	Hidden int     // hidden dimension h (for the regeneration FLOP count)
}

// Validate reports invalid inputs.
func (in Inputs) Validate() error {
	if in.SX < 0 || in.Rho <= 0 || in.BPCI <= 0 || in.BSSD <= 0 || in.CGPU <= 0 || in.Hidden <= 0 {
		return fmt.Errorf("sched: invalid cost-model inputs %+v", in)
	}
	return nil
}

// TPCI returns the time to stream the α-fraction of the X-cache to the GPU.
func (in Inputs) TPCI(alpha float64) float64 { return alpha * in.SX / in.BPCI }

// TGPU returns the K/V regeneration time: the α-fraction of X (s×h FP16
// elements) is multiplied by Wk and Wv (2 GEMMs, 2 FLOPs per MAC per output
// element over h inputs → 2·h FLOPs per X element per matrix).
func (in Inputs) TGPU(alpha float64) float64 {
	elems := alpha * in.SX / 2 // FP16 elements
	flops := elems * float64(in.Hidden) * 2 * 2
	return flops / in.CGPU
}

// TSSD returns the internal storage read time: the α portion reads X bytes,
// the remainder reads the (ρ× larger) KV bytes.
func (in Inputs) TSSD(alpha float64) float64 {
	return (alpha*in.SX + (1-alpha)*in.Rho*in.SX) / in.BSSD
}

// TEffective returns the pipelined step time max(T_GPU, T_SSD, T_PCI).
func (in Inputs) TEffective(alpha float64) float64 {
	return math.Max(in.TGPU(alpha), math.Max(in.TSSD(alpha), in.TPCI(alpha)))
}

// OptimalAlpha solves T_PCI(α) = T_SSD(α):
//
//	α·S_X/B_PCI = (α·S_X + (1-α)·ρ·S_X)/B_SSD
//	⇒ α = ρ·B_PCI / (B_SSD + (ρ-1)·B_PCI)
//
// which reduces to the paper's α = 2·B_PCI/(B_SSD + B_PCI) for ρ = 2 (MHA).
// When ρ ≤ 1 (GQA models whose KV is no larger than X), X-caching cannot
// reduce storage traffic and the scheduler returns 0.
func OptimalAlpha(rho, bSSD, bPCI float64) float64 {
	if rho <= 1 {
		return 0
	}
	a := rho * bPCI / (bSSD + (rho-1)*bPCI)
	return math.Min(a, 1)
}

// CandidateAlphas is the set of power-of-two ratios the runtime considers
// (the Fig. 13 sweep values).
var CandidateAlphas = []float64{0, 0.125, 0.25, 0.5, 0.75, 1}

// SnapAlpha returns the candidate ratio closest to a (ties snap downward,
// preferring less host-interconnect pressure).
func SnapAlpha(a float64) float64 {
	best, bestDist := CandidateAlphas[0], math.Abs(a-CandidateAlphas[0])
	for _, c := range CandidateAlphas[1:] {
		if d := math.Abs(a - c); d < bestDist {
			best, bestDist = c, d
		}
	}
	return best
}

// Choose runs the full §4.2 procedure: closed-form optimum, snapped to a
// power of two, with a final verification sweep over the candidates using
// the cost model (the analytic optimum can be off a snap boundary; the
// cheapest candidate always wins).
func Choose(in Inputs) (alpha float64, err error) {
	if err := in.Validate(); err != nil {
		return 0, err
	}
	if in.Rho <= 1 {
		return 0, nil
	}
	best := SnapAlpha(OptimalAlpha(in.Rho, in.BSSD, in.BPCI))
	bestT := in.TEffective(best)
	for _, c := range CandidateAlphas {
		if t := in.TEffective(c); t < bestT {
			best, bestT = c, t
		}
	}
	return best, nil
}
