// Package longbench provides the accuracy harness of Fig. 18(c): synthetic
// long-context retrieval tasks standing in for the LongBench datasets (the
// real datasets are not redistributable here). Each task embeds an answer
// as repeated moderate-salience key/value pairs in a long haystack; exact
// attention aggregates the repeated evidence, while lossy top-k retrieval
// (the InstAttention-style 1/8 compression) drops part of it and loses
// accuracy. The HILOS accelerator path is exact, so its score must match
// the FlashAttention reference.
package longbench

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/accel"
	"repro/internal/attention"
	"repro/internal/tensor"
)

// Task is one synthetic retrieval dataset.
type Task struct {
	Name    string
	Seq     int     // haystack length (cached tokens)
	Dim     int     // head dimension
	Vocab   int     // candidate answer values
	Reps    int     // how many times the answer evidence appears
	Signal  float64 // salience of each evidence key (vs unit-noise distractors)
	Samples int     // queries evaluated
}

// Suite returns five tasks mirroring the five LongBench datasets evaluated
// in Fig. 18(c). Reps controls how much redundant evidence exists: fewer
// repetitions make block-granular lossy retrieval more likely to drop all
// of it.
func Suite() []Task {
	return []Task{
		{Name: "synth-qa-2k", Seq: 2048, Dim: 32, Vocab: 16, Reps: 3, Signal: 1.0, Samples: 300},
		{Name: "synth-summ-2k", Seq: 2048, Dim: 32, Vocab: 16, Reps: 4, Signal: 1.0, Samples: 300},
		{Name: "synth-fewshot-1k", Seq: 1024, Dim: 32, Vocab: 16, Reps: 3, Signal: 1.0, Samples: 300},
		{Name: "synth-code-1k", Seq: 1024, Dim: 32, Vocab: 16, Reps: 4, Signal: 1.1, Samples: 300},
		{Name: "synth-multidoc-2k", Seq: 2048, Dim: 32, Vocab: 32, Reps: 3, Signal: 1.05, Samples: 300},
	}
}

// RetrievalBlockSize is the block granularity of the lossy retrieval proxy.
const RetrievalBlockSize = 16

// Method computes one attention output for a query over the cache.
type Method func(q, k, v tensor.Mat) tensor.Mat

// Exact is the FlashAttention-equivalent reference.
func Exact(q, k, v tensor.Mat) tensor.Mat { return attention.Ref(q, k, v, nil) }

// Blocked is the HILOS accelerator functional path (lossless by design).
func Blocked(q, k, v tensor.Mat) tensor.Mat {
	a, err := accel.New(accel.Config{DGroup: 1, HeadDim: q.Cols})
	if err != nil {
		panic(err) // configuration is internal to the harness
	}
	out, err := a.Attention(q, k, v, nil, tensor.Mat{}, tensor.Mat{})
	if err != nil {
		panic(err)
	}
	return out
}

// LossyOneEighth is the InstAttention-style lossy retrieval at the paper's
// default 1/8 compression ratio: block-granular pruning by pooled scores.
func LossyOneEighth(q, k, v tensor.Mat) tensor.Mat {
	keep := k.Rows / RetrievalBlockSize / 8
	return attention.TopKBlocks(q, k, v, nil, keep, RetrievalBlockSize)
}

// Score runs the task and returns the F1 score (equal to accuracy for this
// single-label retrieval task) in percent.
func (t Task) Score(seed int64, m Method) (float64, error) {
	if t.Seq < 8 || t.Dim < 4 || t.Vocab < 2 || t.Reps < 1 || t.Samples < 1 {
		return 0, fmt.Errorf("longbench: degenerate task %+v", t)
	}
	rng := rand.New(rand.NewSource(seed))

	// Value codebook: one embedding per candidate answer, normalized so no
	// codeword is favored by norm alone.
	codebook := tensor.RandMat(rng, t.Vocab, t.Dim, 1)
	for c := 0; c < t.Vocab; c++ {
		normalizeRow(codebook.Row(c))
	}

	correct := 0
	for n := 0; n < t.Samples; n++ {
		answer := rng.Intn(t.Vocab)
		q := tensor.RandMat(rng, 1, t.Dim, 1)
		normalizeRow(q.Row(0)) // fixed query energy keeps evidence salience stable

		k := tensor.RandMat(rng, t.Seq, t.Dim, 1)
		v := tensor.New(t.Seq, t.Dim)
		// Distractor values drawn from the codebook (never the answer).
		for i := 0; i < t.Seq; i++ {
			c := rng.Intn(t.Vocab - 1)
			if c >= answer {
				c++
			}
			copy(v.Row(i), codebook.Row(c))
		}
		// Evidence: Reps positions whose keys lean toward the query and
		// whose values carry the answer. Individually moderate, they win
		// only in aggregate — the regime where lossy top-k retrieval
		// starts dropping evidence.
		for r := 0; r < t.Reps; r++ {
			i := rng.Intn(t.Seq)
			krow := k.Row(i)
			qrow := q.Row(0)
			for j := range krow {
				krow[j] = float32(t.Signal)*qrow[j] + float32(rng.NormFloat64()*0.6)
			}
			copy(v.Row(i), codebook.Row(answer))
		}

		out := m(q, k, v)
		if predict(out.Row(0), codebook) == answer {
			correct++
		}
	}
	return 100 * float64(correct) / float64(t.Samples), nil
}

// normalizeRow rescales a vector to norm √dim (unit average energy).
func normalizeRow(row []float32) {
	var ss float64
	for _, x := range row {
		ss += float64(x) * float64(x)
	}
	if ss == 0 {
		return
	}
	scale := float32(math.Sqrt(float64(len(row)) / ss))
	for i := range row {
		row[i] *= scale
	}
}

// predict returns the codebook row closest (by inner product) to the
// attention output.
func predict(out []float32, codebook tensor.Mat) int {
	best, bi := float32(-1e30), 0
	for c := 0; c < codebook.Rows; c++ {
		if s := tensor.Dot(out, codebook.Row(c)); s > best {
			best, bi = s, c
		}
	}
	return bi
}
