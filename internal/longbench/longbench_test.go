package longbench

import (
	"math"
	"testing"

	"repro/internal/stats"
)

const seed = 42

func TestSuiteShape(t *testing.T) {
	if len(Suite()) != 5 {
		t.Fatalf("suite has %d tasks, want 5 (Fig. 18c evaluates five datasets)", len(Suite()))
	}
}

// Fig. 18(c) core claim: the HILOS accelerator is lossless — identical
// accuracy to the FlashAttention reference on every dataset.
func TestBlockedIsLossless(t *testing.T) {
	for _, task := range Suite() {
		ex, err := task.Score(seed, Exact)
		if err != nil {
			t.Fatal(err)
		}
		bl, err := task.Score(seed, Blocked)
		if err != nil {
			t.Fatal(err)
		}
		if ex != bl {
			t.Errorf("%s: blocked %.1f != exact %.1f (must be lossless)", task.Name, bl, ex)
		}
	}
}

// Fig. 18(c): InstAttention's 1/8 lossy compression degrades accuracy by
// a few percentage points on long-context retrieval (paper: 3.52–5.73%p
// average across LongBench datasets).
func TestLossyDegrades(t *testing.T) {
	var drops []float64
	for _, task := range Suite() {
		ex, err := task.Score(seed, Exact)
		if err != nil {
			t.Fatal(err)
		}
		lo, err := task.Score(seed, LossyOneEighth)
		if err != nil {
			t.Fatal(err)
		}
		drops = append(drops, ex-lo)
	}
	mean := stats.Mean(drops)
	if mean < 1.5 || mean > 9 {
		t.Errorf("average lossy drop = %.2f%%p, paper band ≈ 3.5–5.7%%p", mean)
	}
	// No task may show lossy meaningfully beating exact.
	for i, d := range drops {
		if d < -1.5 {
			t.Errorf("task %d: lossy beats exact by %.1f%%p", i, -d)
		}
	}
}

// Exact attention solves the tasks: high absolute scores.
func TestExactAccuracyHigh(t *testing.T) {
	for _, task := range Suite() {
		ex, err := task.Score(seed, Exact)
		if err != nil {
			t.Fatal(err)
		}
		if ex < 90 {
			t.Errorf("%s: exact score %.1f below 90", task.Name, ex)
		}
	}
}

func TestScoreDeterministic(t *testing.T) {
	task := Suite()[0]
	a, _ := task.Score(7, Exact)
	b, _ := task.Score(7, Exact)
	if a != b {
		t.Error("Score not deterministic for fixed seed")
	}
}

func TestScoreValidation(t *testing.T) {
	bad := Task{Seq: 4, Dim: 2, Vocab: 1, Reps: 0, Samples: 0}
	if _, err := bad.Score(1, Exact); err == nil {
		t.Error("degenerate task accepted")
	}
}

func TestNormalizeRow(t *testing.T) {
	row := []float32{3, 4, 0, 0}
	normalizeRow(row)
	var ss float64
	for _, x := range row {
		ss += float64(x) * float64(x)
	}
	if math.Abs(ss-4) > 1e-5 {
		t.Errorf("normalized energy = %v, want dim=4", ss)
	}
	zero := []float32{0, 0}
	normalizeRow(zero) // must not divide by zero
	if zero[0] != 0 {
		t.Error("zero vector mutated")
	}
}
