package faults

import (
	"reflect"
	"testing"
)

// An empty plan must build an inert injector: no schedule, unit slow
// factors, no transient draws, no wear budgets.
func TestEmptyPlanIsInert(t *testing.T) {
	in, err := New(Plan{Seed: 42}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !in.Empty() {
		t.Error("zero-value plan built a non-empty injector")
	}
	if got := in.FailStops(); len(got) != 0 {
		t.Errorf("scheduled %v from an empty plan", got)
	}
	for p := 0; p < 3; p++ {
		if f := in.SlowFactor(p, 100); f != 1 {
			t.Errorf("pipeline %d slow factor %g, want 1", p, f)
		}
		if in.BatchFails(p) {
			t.Errorf("pipeline %d drew a transient failure with probability 0", p)
		}
		if b := in.WearBudgetBytes(p); b != 0 {
			t.Errorf("pipeline %d wear budget %g, want 0 (unlimited)", p, b)
		}
	}
	var nilInj *Injector
	if !nilInj.Empty() || nilInj.SlowFactor(0, 0) != 1 || nilInj.BatchFails(0) {
		t.Error("nil injector is not inert")
	}
}

// Straggler windows multiply where they overlap and vanish outside.
func TestSlowFactorWindows(t *testing.T) {
	in, err := New(Plan{Events: []Event{
		{Kind: Straggler, Pipeline: 0, AtSec: 10, DurationSec: 20, Factor: 2},
		{Kind: Straggler, Pipeline: 0, AtSec: 25, DurationSec: 10, Factor: 3},
		{Kind: Straggler, Pipeline: 1, AtSec: 0, DurationSec: 5, Factor: 4},
	}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		p    int
		at   float64
		want float64
	}{
		{0, 9.9, 1}, {0, 10, 2}, {0, 24, 2}, {0, 26, 6}, {0, 30, 3}, {0, 35, 1},
		{1, 0, 4}, {1, 5, 1}, {1, 100, 1},
	}
	for _, c := range cases {
		if got := in.SlowFactor(c.p, c.at); got != c.want {
			t.Errorf("SlowFactor(%d, %g) = %g, want %g", c.p, c.at, got, c.want)
		}
	}
	if in.Empty() {
		t.Error("straggler plan reported empty")
	}
}

// Transient draws replay identically per seed, and a per-pipeline event
// overrides the fleet-wide probability.
func TestTransientDrawsDeterministic(t *testing.T) {
	draw := func() []bool {
		in, err := New(Plan{Seed: 7, TransientProb: 0.5,
			Events: []Event{{Kind: Transient, Pipeline: 1, Factor: 0}}}, 2)
		if err != nil {
			t.Fatal(err)
		}
		var out []bool
		for i := 0; i < 64; i++ {
			out = append(out, in.BatchFails(0))
			// Pipeline 1 is overridden to probability 0: never draws, so it
			// must not perturb pipeline 0's stream.
			if in.BatchFails(1) {
				t.Fatal("probability-0 pipeline drew a failure")
			}
		}
		return out
	}
	a, b := draw(), draw()
	if !reflect.DeepEqual(a, b) {
		t.Error("transient draws differ across identical injectors")
	}
	fails := 0
	for _, f := range a {
		if f {
			fails++
		}
	}
	if fails == 0 || fails == len(a) {
		t.Errorf("p=0.5 drew %d/%d failures — degenerate stream", fails, len(a))
	}
}

// Wear budgets: plan-wide default with per-pipeline override.
func TestWearBudgets(t *testing.T) {
	in, err := New(Plan{WearBudgetBytes: 100,
		Events: []Event{{Kind: WearOut, Pipeline: 1, BudgetBytes: 7}}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := in.WearBudgetBytes(0); got != 100 {
		t.Errorf("pipeline 0 budget %g, want plan-wide 100", got)
	}
	if got := in.WearBudgetBytes(1); got != 7 {
		t.Errorf("pipeline 1 budget %g, want override 7", got)
	}
}

// The generated fail-stop schedule is deterministic per seed, sorted by
// time, confined to the horizon, and independent per pipeline.
func TestGenerateFailStops(t *testing.T) {
	a, err := GenerateFailStops(3, 4, 10000, 500, 60)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateFailStops(3, 4, 10000, 500, 60)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("schedules differ across identical seeds")
	}
	if len(a) == 0 {
		t.Fatal("MTBF 500 over a 10000s horizon generated no failures")
	}
	for i, e := range a {
		if e.Kind != FailStop {
			t.Errorf("event %d kind %q", i, e.Kind)
		}
		if e.AtSec < 0 || e.AtSec >= 10000 {
			t.Errorf("event %d at %g outside horizon", i, e.AtSec)
		}
		if i > 0 && a[i-1].AtSec > e.AtSec {
			t.Errorf("schedule not time-sorted at %d", i)
		}
	}
	c, err := GenerateFailStops(4, 4, 10000, 500, 60)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds produced identical schedules")
	}
	// The schedule must round-trip through injector validation.
	if _, err := New(Plan{Events: a}, 4); err != nil {
		t.Errorf("generated schedule rejected: %v", err)
	}
}

func TestValidation(t *testing.T) {
	bad := []Plan{
		{TransientProb: -0.1},
		{TransientProb: 1.5},
		{WearBudgetBytes: -1},
		{Events: []Event{{Kind: "gremlin", Pipeline: 0}}},
		{Events: []Event{{Kind: FailStop, Pipeline: 9}}},
		{Events: []Event{{Kind: FailStop, Pipeline: -1}}},
		{Events: []Event{{Kind: FailStop, Pipeline: 0, AtSec: -3}}},
		{Events: []Event{{Kind: FailStop, Pipeline: 0, DurationSec: -3}}},
		{Events: []Event{{Kind: Straggler, Pipeline: 0, DurationSec: 5, Factor: 0.5}}},
		{Events: []Event{{Kind: Straggler, Pipeline: 0, Factor: 2}}},
		{Events: []Event{{Kind: Transient, Pipeline: 0, Factor: 2}}},
		{Events: []Event{{Kind: WearOut, Pipeline: 0, BudgetBytes: -1}}},
	}
	for i, p := range bad {
		if _, err := New(p, 2); err == nil {
			t.Errorf("plan %d accepted: %+v", i, p)
		}
	}
	if _, err := New(Plan{}, 0); err == nil {
		t.Error("zero-pipeline fleet accepted")
	}
	if _, err := GenerateFailStops(1, 0, 100, 10, 1); err == nil {
		t.Error("zero-pipeline schedule accepted")
	}
	if _, err := GenerateFailStops(1, 1, 100, 0, 1); err == nil {
		t.Error("zero MTBF accepted")
	}
	if _, err := GenerateFailStops(1, 1, 100, 10, -1); err == nil {
		t.Error("negative MTTR accepted")
	}
	if _, err := GenerateFailStops(1, 1, -5, 10, 1); err == nil {
		t.Error("negative horizon accepted")
	}
	for _, k := range Kinds() {
		if !k.Valid() {
			t.Errorf("registered kind %q reports invalid", k)
		}
	}
	if Kind("nope").Valid() {
		t.Error("unknown kind reports valid")
	}
}
