// Package faults is the deterministic fault model of the cluster scheduler:
// a simulated-clock injector that schedules pipeline fail-stop windows,
// transient batch errors, straggler slowdowns and SSD wear-out budgets —
// the failure vocabulary of weeks-long offline batches on cheap
// near-storage hardware, where device loss and gray failures are
// first-class events rather than exceptions.
//
// Everything is deterministic: scheduled events are fixed timestamps,
// transient errors draw from a PRNG seeded through the plan (never the
// wall clock or the global rand source), and slowdown windows are pure
// functions of simulated time. Two runs with the same plan and trace
// observe the same faults in the same order. An empty plan is
// indistinguishable from no injector at all — the cluster's fault-parity
// property test pins that contract bit-for-bit.
//
// The injector only *decides* faults; reacting to them (retries, backoff,
// quarantine, failover, degradation) is the cluster's recovery layer.
package faults

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Kind names one injectable fault class.
type Kind string

// The registered fault kinds.
const (
	// FailStop takes a pipeline down at AtSec and repairs it DurationSec
	// later: in-flight work on the pipeline is killed and queued work must
	// fail over. The crash-and-reboot of a near-storage host.
	FailStop Kind = "fail-stop"
	// Transient is a probabilistic per-batch execution error (a gray
	// failure: the batch burns its execution time, produces nothing, and
	// is eligible for retry). Configured by Plan.TransientProb rather than
	// scheduled events; a Transient Event raises the probability on one
	// pipeline instead.
	Transient Kind = "transient"
	// Straggler multiplies a pipeline's service time by Factor for
	// DurationSec starting at AtSec — the slow-but-alive device that
	// stretches tails without ever failing.
	Straggler Kind = "straggler"
	// WearOut permanently fail-stops a pipeline once its cumulative flash
	// write volume crosses Plan.WearBudgetBytes (or the Event's
	// BudgetBytes override): the endurance budget of §6.6 acted on, not
	// just reported. There is no repair — worn-out flash stays dead.
	WearOut Kind = "wear-out"
)

// Kinds returns the registered fault kinds in documentation order.
func Kinds() []Kind { return []Kind{FailStop, Transient, Straggler, WearOut} }

// Valid reports whether k names a registered fault kind.
func (k Kind) Valid() bool {
	for _, known := range Kinds() {
		if k == known {
			return true
		}
	}
	return false
}

// Event is one scheduled fault on the simulated clock.
type Event struct {
	Kind Kind
	// Pipeline is the fleet index the fault targets.
	Pipeline int
	// AtSec is the injection instant (FailStop, Straggler, Transient).
	AtSec float64
	// DurationSec is the repair window (FailStop) or the slowdown window
	// (Straggler).
	DurationSec float64
	// Factor is the Straggler service-time multiplier (≥ 1), or the
	// per-pipeline transient-error probability for a Transient event.
	Factor float64
	// BudgetBytes overrides Plan.WearBudgetBytes for one pipeline
	// (WearOut events only; 0 keeps the plan-wide budget).
	BudgetBytes float64
}

func (e Event) validate(pipelines int) error {
	if !e.Kind.Valid() {
		return fmt.Errorf("faults: unknown fault kind %q (known: %v)", e.Kind, Kinds())
	}
	if e.Pipeline < 0 || e.Pipeline >= pipelines {
		return fmt.Errorf("faults: %s event targets pipeline %d, fleet has %d", e.Kind, e.Pipeline, pipelines)
	}
	if e.AtSec < 0 || math.IsInf(e.AtSec, 0) || math.IsNaN(e.AtSec) {
		return fmt.Errorf("faults: %s event time %g is not finite and ≥ 0", e.Kind, e.AtSec)
	}
	if e.DurationSec < 0 || math.IsInf(e.DurationSec, 0) || math.IsNaN(e.DurationSec) {
		return fmt.Errorf("faults: %s event duration %g is not finite and ≥ 0", e.Kind, e.DurationSec)
	}
	switch e.Kind {
	case Straggler:
		if e.Factor < 1 || math.IsInf(e.Factor, 0) || math.IsNaN(e.Factor) {
			return fmt.Errorf("faults: straggler factor %g must be finite and ≥ 1", e.Factor)
		}
		if e.DurationSec == 0 {
			return fmt.Errorf("faults: straggler window needs a duration > 0")
		}
	case Transient:
		if e.Factor < 0 || e.Factor > 1 || math.IsNaN(e.Factor) {
			return fmt.Errorf("faults: transient probability %g must be in [0, 1]", e.Factor)
		}
	case WearOut:
		if e.BudgetBytes < 0 || math.IsInf(e.BudgetBytes, 0) || math.IsNaN(e.BudgetBytes) {
			return fmt.Errorf("faults: wear budget %g must be finite and ≥ 0", e.BudgetBytes)
		}
	}
	return nil
}

// Plan describes every fault a run will observe. The zero value schedules
// nothing: an injector built from it is inert and the cluster behaves
// bit-identically to running with no injector at all.
type Plan struct {
	// Seed seeds the injector's private PRNG (transient-error draws). The
	// simulated clock and the workload seed are independent of it.
	Seed int64
	// Events are the scheduled faults (fail-stop and straggler windows,
	// per-pipeline transient probabilities, wear budget overrides).
	Events []Event
	// TransientProb is the fleet-wide probability that one batch execution
	// fails transiently (0 disables; per-pipeline Transient events
	// override).
	TransientProb float64
	// WearBudgetBytes caps every pipeline's cumulative flash writes; the
	// write that crosses the budget permanently fail-stops the pipeline
	// (0 = unlimited). Per-pipeline WearOut events override it.
	WearBudgetBytes float64
}

func (p Plan) validate(pipelines int) error {
	if p.TransientProb < 0 || p.TransientProb > 1 || math.IsNaN(p.TransientProb) {
		return fmt.Errorf("faults: transient probability %g must be in [0, 1]", p.TransientProb)
	}
	if p.WearBudgetBytes < 0 || math.IsInf(p.WearBudgetBytes, 0) || math.IsNaN(p.WearBudgetBytes) {
		return fmt.Errorf("faults: wear budget %g must be finite and ≥ 0", p.WearBudgetBytes)
	}
	for _, e := range p.Events {
		if err := e.validate(pipelines); err != nil {
			return err
		}
	}
	return nil
}

// window is one straggler slowdown interval on a pipeline.
type window struct {
	from, to float64
	factor   float64
}

// Injector is one run's instantiated fault model. It is bound to a fleet
// size and must be used from a single goroutine (the cluster event loop):
// transient draws advance its private PRNG in call order, which is exactly
// what makes them replayable.
type Injector struct {
	rng *rand.Rand

	schedule  []Event // fail-stop events, sorted (AtSec, Pipeline)
	slowdowns [][]window
	transient []float64 // per-pipeline transient probability
	wear      []float64 // per-pipeline wear budget bytes (0 = unlimited)

	empty bool
}

// New builds the injector for a fleet of the given size, validating the
// plan. A zero-value plan yields an inert injector (Empty reports true).
func New(plan Plan, pipelines int) (*Injector, error) {
	if pipelines < 1 {
		return nil, fmt.Errorf("faults: injector needs ≥ 1 pipeline, got %d", pipelines)
	}
	if err := plan.validate(pipelines); err != nil {
		return nil, err
	}
	in := &Injector{
		rng:       rand.New(rand.NewSource(plan.Seed)),
		slowdowns: make([][]window, pipelines),
		transient: make([]float64, pipelines),
		wear:      make([]float64, pipelines),
	}
	for p := range in.transient {
		in.transient[p] = plan.TransientProb
		in.wear[p] = plan.WearBudgetBytes
	}
	for _, e := range plan.Events {
		switch e.Kind {
		case FailStop:
			in.schedule = append(in.schedule, e)
		case Straggler:
			in.slowdowns[e.Pipeline] = append(in.slowdowns[e.Pipeline],
				window{from: e.AtSec, to: e.AtSec + e.DurationSec, factor: e.Factor})
		case Transient:
			in.transient[e.Pipeline] = e.Factor
		case WearOut:
			in.wear[e.Pipeline] = e.BudgetBytes
			if e.BudgetBytes == 0 {
				in.wear[e.Pipeline] = plan.WearBudgetBytes
			}
		}
	}
	sort.SliceStable(in.schedule, func(i, j int) bool {
		if in.schedule[i].AtSec != in.schedule[j].AtSec {
			return in.schedule[i].AtSec < in.schedule[j].AtSec
		}
		return in.schedule[i].Pipeline < in.schedule[j].Pipeline
	})
	for p := range in.slowdowns {
		sort.SliceStable(in.slowdowns[p], func(i, j int) bool {
			return in.slowdowns[p][i].from < in.slowdowns[p][j].from
		})
	}
	in.empty = len(in.schedule) == 0 && in.noSlowdowns() && in.noTransients() && in.noWear()
	return in, nil
}

func (in *Injector) noSlowdowns() bool {
	for _, ws := range in.slowdowns {
		if len(ws) > 0 {
			return false
		}
	}
	return true
}

func (in *Injector) noTransients() bool {
	for _, p := range in.transient {
		if p > 0 {
			return false
		}
	}
	return true
}

func (in *Injector) noWear() bool {
	for _, b := range in.wear {
		if b > 0 {
			return false
		}
	}
	return true
}

// Empty reports whether the injector schedules no fault of any kind. The
// cluster treats an empty injector exactly like a nil one — that identity
// is the fault-parity determinism contract.
func (in *Injector) Empty() bool { return in == nil || in.empty }

// FailStops returns the scheduled fail-stop events sorted by (time,
// pipeline); the slice is shared and must not be mutated.
func (in *Injector) FailStops() []Event {
	if in == nil {
		return nil
	}
	return in.schedule
}

// SlowFactor returns the service-time multiplier for work starting on
// pipeline p at the given simulated instant: the product of every straggler
// window covering it (1 when none do). A pure function of (p, at).
func (in *Injector) SlowFactor(p int, at float64) float64 {
	if in == nil || p < 0 || p >= len(in.slowdowns) {
		return 1
	}
	f := 1.0
	for _, w := range in.slowdowns[p] {
		if at >= w.from && at < w.to {
			f *= w.factor
		}
	}
	return f
}

// HasTransients reports whether any pipeline can fail batches transiently.
func (in *Injector) HasTransients() bool { return in != nil && !in.noTransients() }

// BatchFails draws whether one batch execution on pipeline p errors
// transiently. Draws advance the injector's PRNG, so call order matters —
// the single-goroutine event loop calls it once per committed batch, in
// dispatch order. A zero-probability pipeline never draws, keeping the PRNG
// stream (and therefore every later draw) independent of how much traffic
// healthy pipelines carry.
func (in *Injector) BatchFails(p int) bool {
	if in == nil || p < 0 || p >= len(in.transient) || in.transient[p] <= 0 {
		return false
	}
	return in.rng.Float64() < in.transient[p]
}

// WearBudgetBytes returns pipeline p's cumulative flash-write budget
// (0 = unlimited).
func (in *Injector) WearBudgetBytes(p int) float64 {
	if in == nil || p < 0 || p >= len(in.wear) {
		return 0
	}
	return in.wear[p]
}

// GenerateFailStops draws a deterministic fail-stop schedule for a fleet:
// per pipeline, exponential times between failures with mean mtbfSec and
// repair windows of exponential length with mean mttrSec, over [0,
// horizonSec). The MTBF clock excludes downtime, matching the usual
// definition. Each pipeline draws from its own (seed, pipeline)-derived
// stream, so one pipeline's failure history is independent of fleet size
// reorderings.
func GenerateFailStops(seed int64, pipelines int, horizonSec, mtbfSec, mttrSec float64) ([]Event, error) {
	if pipelines < 1 {
		return nil, fmt.Errorf("faults: schedule needs ≥ 1 pipeline, got %d", pipelines)
	}
	if mtbfSec <= 0 || math.IsInf(mtbfSec, 0) || math.IsNaN(mtbfSec) {
		return nil, fmt.Errorf("faults: MTBF %g must be finite and > 0", mtbfSec)
	}
	if mttrSec < 0 || math.IsInf(mttrSec, 0) || math.IsNaN(mttrSec) {
		return nil, fmt.Errorf("faults: MTTR %g must be finite and ≥ 0", mttrSec)
	}
	if horizonSec < 0 || math.IsInf(horizonSec, 0) || math.IsNaN(horizonSec) {
		return nil, fmt.Errorf("faults: horizon %g must be finite and ≥ 0", horizonSec)
	}
	var events []Event
	for p := 0; p < pipelines; p++ {
		rng := rand.New(rand.NewSource(seed + int64(p)*1_000_003))
		at := 0.0
		for {
			at += rng.ExpFloat64() * mtbfSec
			if at >= horizonSec {
				break
			}
			repair := rng.ExpFloat64() * mttrSec
			events = append(events, Event{Kind: FailStop, Pipeline: p, AtSec: at, DurationSec: repair})
			at += repair
		}
	}
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].AtSec != events[j].AtSec {
			return events[i].AtSec < events[j].AtSec
		}
		return events[i].Pipeline < events[j].Pipeline
	})
	return events, nil
}
