package reflm

import (
	"fmt"

	"repro/internal/accel"
	"repro/internal/attention"
	"repro/internal/tensor"
)

// Generate runs greedy decoding: the prompt is prefilled token by token
// (functional equivalence, not speed, is the goal here) and outLen tokens
// are generated. engine selects the execution path.
func (m *Model) Generate(prompt []int, outLen int, engine Engine) ([]int, error) {
	if len(prompt) == 0 || outLen < 1 {
		return nil, fmt.Errorf("reflm: empty prompt or non-positive output length")
	}
	for _, t := range prompt {
		if t < 0 || t >= m.P.Vocab {
			return nil, fmt.Errorf("reflm: prompt token %d out of vocabulary", t)
		}
	}
	return engine.run(m, prompt, outLen)
}

// Engine is one functional execution path.
type Engine interface {
	Name() string
	run(m *Model, prompt []int, outLen int) ([]int, error)
}

// --- Reference engine: dense KV cache, exact attention ---

// Reference executes the conventional decode path.
type Reference struct{}

// Name identifies the engine.
func (Reference) Name() string { return "reference" }

func (Reference) run(m *Model, prompt []int, outLen int) ([]int, error) {
	p := m.P
	d := p.HeadDim()
	rope := m.newRoPEs()
	// Per layer, per KV head: K and V caches as growing matrices.
	kc := newCaches(p)
	vc := newCaches(p)

	var out []int
	h := make([]float32, p.Hidden)
	process := func(tok, pos int) int {
		copy(h, m.embed.Row(tok))
		for l := 0; l < p.Layers; l++ {
			q, k, v := m.project(l, h, pos, rope)
			for kh := 0; kh < p.KVHeads; kh++ {
				kc[l][kh] = append(kc[l][kh], append([]float32(nil), headSlice(k, kh, d)...))
				vc[l][kh] = append(vc[l][kh], append([]float32(nil), headSlice(v, kh, d)...))
			}
			attnOut := make([]float32, p.Hidden)
			for qh := 0; qh < p.Heads; qh++ {
				kh := qh / p.DGroup()
				km := rowsToMat(kc[l][kh], d)
				vm := rowsToMat(vc[l][kh], d)
				qm := tensor.FromSlice(1, d, append([]float32(nil), headSlice(q, qh, d)...))
				o := attention.Ref(qm, km, vm, nil)
				copy(headSlice(attnOut, qh, d), o.Row(0))
			}
			h = m.mlpAndResidual(l, h, attnOut)
		}
		return argmax(m.logits(h))
	}

	next := 0
	for i, tok := range prompt {
		next = process(tok, i)
	}
	pos := len(prompt)
	for n := 0; n < outLen; n++ {
		out = append(out, next)
		next = process(next, pos)
		pos++
	}
	return out, nil
}

// --- HILOS engine: X-cache split + accelerator attention + writeback ---

// HILOS executes the paper's functional pipeline.
type HILOS struct {
	// Alpha is the X-cache fraction of KV-head groups (rounded to whole
	// heads). 0 disables the X path.
	Alpha float64
	// SpillInterval is the delayed-writeback interval c; buffered entries
	// reach the accelerator as host-precomputed partial scores until
	// spilled. 0 disables buffering (naive commit every step).
	SpillInterval int
}

// Name identifies the engine.
func (e HILOS) Name() string {
	return fmt.Sprintf("hilos(alpha=%.2f,c=%d)", e.Alpha, e.SpillInterval)
}

func (e HILOS) run(m *Model, prompt []int, outLen int) ([]int, error) {
	if e.Alpha < 0 || e.Alpha > 1 {
		return nil, fmt.Errorf("reflm: alpha %v out of [0,1]", e.Alpha)
	}
	p := m.P
	d := p.HeadDim()
	rope := m.newRoPEs()

	// Split KV-head groups: the first nX are X-cache (GPU-regenerated),
	// the rest live on the "devices" (§4.2 partitions batch×head, never
	// sequence).
	nX, _, err := attention.SplitHeads(p.KVHeads, e.Alpha)
	if err != nil {
		return nil, err
	}

	acc, err := accel.New(accel.Config{DGroup: p.DGroup(), HeadDim: d})
	if err != nil {
		return nil, err
	}

	// X-cache: per layer, the pre-projection activations (shared by all
	// X heads of the layer).
	xCache := make([][][]float32, p.Layers)
	// Device-resident committed KV, per layer per device KV head.
	kc := newCaches(p)
	vc := newCaches(p)
	// Host writeback buffers (uncommitted recent entries).
	kBuf := newCaches(p)
	vBuf := newCaches(p)
	buffered := 0

	var out []int
	h := make([]float32, p.Hidden)
	process := func(tok, pos int) (int, error) {
		copy(h, m.embed.Row(tok))
		for l := 0; l < p.Layers; l++ {
			// The X-cache stores the pre-projection activation.
			xCache[l] = append(xCache[l], append([]float32(nil), h...))
			q, k, v := m.project(l, h, pos, rope)
			// Device heads: stage the new entries in host buffers.
			for kh := nX; kh < p.KVHeads; kh++ {
				kBuf[l][kh] = append(kBuf[l][kh], append([]float32(nil), headSlice(k, kh, d)...))
				vBuf[l][kh] = append(vBuf[l][kh], append([]float32(nil), headSlice(v, kh, d)...))
			}

			attnOut := make([]float32, p.Hidden)
			// X-cache heads: regenerate K/V from X on the GPU and attend.
			for kh := 0; kh < nX; kh++ {
				if err := m.xHeadAttention(l, kh, q, xCache[l], rope, attnOut); err != nil {
					return 0, err
				}
			}
			// Device heads: accelerator over committed KV plus host
			// partial scores for the buffered tail (Fig. 6b).
			for kh := nX; kh < p.KVHeads; kh++ {
				if err := m.deviceHeadAttention(acc, l, kh, q, kc, vc, kBuf, vBuf, attnOut); err != nil {
					return 0, err
				}
			}
			h = m.mlpAndResidual(l, h, attnOut)
		}

		// Spill: commit buffered entries to the device cache every c steps
		// (and on c == 0, immediately — the naive path).
		buffered++
		if e.SpillInterval == 0 || buffered >= e.SpillInterval {
			for l := 0; l < p.Layers; l++ {
				for kh := nX; kh < p.KVHeads; kh++ {
					kc[l][kh] = append(kc[l][kh], kBuf[l][kh]...)
					vc[l][kh] = append(vc[l][kh], vBuf[l][kh]...)
					kBuf[l][kh] = nil
					vBuf[l][kh] = nil
				}
			}
			buffered = 0
		}
		return argmax(m.logits(h)), nil
	}

	next := 0
	for i, tok := range prompt {
		n, err := process(tok, i)
		if err != nil {
			return nil, err
		}
		next = n
	}
	pos := len(prompt)
	for n := 0; n < outLen; n++ {
		out = append(out, next)
		nn, err := process(next, pos)
		if err != nil {
			return nil, err
		}
		next = nn
		pos++
	}
	return out, nil
}

// xHeadAttention regenerates K/V for one X-cache KV head from the stored
// activations (re-applying RoPE at the original positions) and attends with
// the blocked GPU kernel.
func (m *Model) xHeadAttention(l, kh int, q []float32, xs [][]float32, rope []*attention.RoPE, attnOut []float32) error {
	p := m.P
	d := p.HeadDim()
	lw := m.layers[l]
	xm := rowsToMat(xs, p.Hidden)
	// Column blocks of Wk/Wv for this KV head.
	wk := colBlock(lw.wk, kh, d)
	wv := colBlock(lw.wv, kh, d)
	k := tensor.MatMul(xm, wk).RoundFP16()
	v := tensor.MatMul(xm, wv).RoundFP16()
	if p.UseRoPE {
		for i := 0; i < k.Rows; i++ {
			rope[l].Apply(k.Row(i), i)
		}
		k.RoundFP16()
	}
	// One GQA call over the group's query rows shares each K/V block
	// traversal across heads; per-head results are bit-identical to the
	// per-head Blocked calls this loop used to make.
	qm := tensor.New(p.DGroup(), d)
	for g := 0; g < p.DGroup(); g++ {
		copy(qm.Row(g), headSlice(q, kh*p.DGroup()+g, d))
	}
	o := attention.GQA(qm, k, v, nil, accel.BlockTokens)
	for g := 0; g < p.DGroup(); g++ {
		copy(headSlice(attnOut, kh*p.DGroup()+g, d), o.Row(g))
	}
	return nil
}

// deviceHeadAttention runs the accelerator for one device KV head: blocked
// attention over the committed cache merged with host-precomputed partial
// scores over the writeback buffer.
func (m *Model) deviceHeadAttention(acc *accel.Accelerator, l, kh int, q []float32,
	kc, vc, kBuf, vBuf [][]rowCache, attnOut []float32) error {

	p := m.P
	d := p.HeadDim()
	km := rowsToMat(kc[l][kh], d)
	vm := rowsToMat(vc[l][kh], d)
	kb := rowsToMat(kBuf[l][kh], d)
	vb := rowsToMat(vBuf[l][kh], d)

	qm := tensor.New(p.DGroup(), d)
	for g := 0; g < p.DGroup(); g++ {
		copy(qm.Row(g), headSlice(q, kh*p.DGroup()+g, d))
	}
	var hostScores tensor.Mat
	if kb.Rows > 0 {
		hostScores = attention.Scores(qm, kb)
	}
	o, err := acc.Attention(qm, km, vm, nil, hostScores, vb)
	if err != nil {
		return err
	}
	for g := 0; g < p.DGroup(); g++ {
		copy(headSlice(attnOut, kh*p.DGroup()+g, d), o.Row(g))
	}
	return nil
}

// --- helpers ---

// rowCache is a growing list of d-length cache rows for one KV head.
type rowCache [][]float32

// newCaches allocates [layers][kvHeads] empty row caches.
func newCaches(p Params) [][]rowCache {
	c := make([][]rowCache, p.Layers)
	for l := range c {
		c[l] = make([]rowCache, p.KVHeads)
	}
	return c
}

// rowsToMat copies a row list into a matrix (rows may be empty).
func rowsToMat(rows [][]float32, cols int) tensor.Mat {
	m := tensor.New(len(rows), cols)
	for i, r := range rows {
		copy(m.Row(i), r)
	}
	return m
}

// colBlock returns columns [h·d, (h+1)·d) of m as a new matrix.
func colBlock(m tensor.Mat, h, d int) tensor.Mat {
	out := tensor.New(m.Rows, d)
	for i := 0; i < m.Rows; i++ {
		copy(out.Row(i), m.Row(i)[h*d:(h+1)*d])
	}
	return out
}
