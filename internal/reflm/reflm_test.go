package reflm

import (
	"math/rand"
	"testing"
)

func smallParams(useRoPE bool) Params {
	return Params{
		Layers: 2, Hidden: 64, Heads: 4, KVHeads: 4, FFN: 128, Vocab: 50,
		UseRoPE: useRoPE,
	}
}

func gqaParams() Params {
	return Params{
		Layers: 2, Hidden: 64, Heads: 4, KVHeads: 2, FFN: 128, Vocab: 50,
		UseRoPE: true,
	}
}

func randPrompt(rng *rand.Rand, n, vocab int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = rng.Intn(vocab)
	}
	return p
}

func TestParamsValidate(t *testing.T) {
	if err := smallParams(true).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := smallParams(false)
	bad.Heads = 3
	if err := bad.Validate(); err == nil {
		t.Error("non-dividing heads accepted")
	}
	bad = smallParams(true)
	bad.Hidden = 68 // head dim 17, odd: RoPE impossible
	bad.Heads = 4
	if err := bad.Validate(); err == nil {
		t.Error("odd head dim with RoPE accepted")
	}
	bad = gqaParams()
	bad.KVHeads = 3
	if err := bad.Validate(); err == nil {
		t.Error("non-dividing KV heads accepted")
	}
}

func TestReferenceDeterministic(t *testing.T) {
	m, err := NewModel(smallParams(false), 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	prompt := randPrompt(rng, 12, m.P.Vocab)
	a, err := m.Generate(prompt, 8, Reference{})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := m.Generate(prompt, 8, Reference{})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("reference decode not deterministic at %d", i)
		}
	}
	if len(a) != 8 {
		t.Fatalf("generated %d tokens, want 8", len(a))
	}
}

// The headline integration property: the full HILOS functional pipeline —
// X-cache regeneration, accelerator attention, delayed writeback — decodes
// the same greedy token stream as the reference engine.
func TestHILOSMatchesReference(t *testing.T) {
	configs := []struct {
		name   string
		params Params
		engine HILOS
	}{
		{"ans-only", smallParams(false), HILOS{Alpha: 0, SpillInterval: 0}},
		{"writeback", smallParams(false), HILOS{Alpha: 0, SpillInterval: 4}},
		{"xcache-half", smallParams(false), HILOS{Alpha: 0.5, SpillInterval: 4}},
		{"xcache-full", smallParams(false), HILOS{Alpha: 1, SpillInterval: 4}},
		{"rope-mix", smallParams(true), HILOS{Alpha: 0.5, SpillInterval: 4}},
		{"gqa", gqaParams(), HILOS{Alpha: 0.5, SpillInterval: 3}},
	}
	for _, cfg := range configs {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			m, err := NewModel(cfg.params, 7)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(11))
			prompt := randPrompt(rng, 10, m.P.Vocab)
			want, err := m.Generate(prompt, 10, Reference{})
			if err != nil {
				t.Fatal(err)
			}
			got, err := m.Generate(prompt, 10, cfg.engine)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("token %d differs: hilos=%d reference=%d (full: %v vs %v)",
						i, got[i], want[i], got, want)
				}
			}
		})
	}
}

// Several seeds: the equivalence is not an artifact of one weight draw.
func TestHILOSMatchesReferenceAcrossSeeds(t *testing.T) {
	for seed := int64(20); seed < 25; seed++ {
		m, err := NewModel(smallParams(true), seed)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed + 100))
		prompt := randPrompt(rng, 8, m.P.Vocab)
		want, err := m.Generate(prompt, 6, Reference{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := m.Generate(prompt, 6, HILOS{Alpha: 0.5, SpillInterval: 4})
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("seed %d token %d: hilos=%v reference=%v", seed, i, got, want)
			}
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	m, _ := NewModel(smallParams(false), 1)
	if _, err := m.Generate(nil, 4, Reference{}); err == nil {
		t.Error("empty prompt accepted")
	}
	if _, err := m.Generate([]int{1}, 0, Reference{}); err == nil {
		t.Error("zero output length accepted")
	}
	if _, err := m.Generate([]int{999}, 4, Reference{}); err == nil {
		t.Error("out-of-vocab token accepted")
	}
	if _, err := m.Generate([]int{1}, 2, HILOS{Alpha: 2}); err == nil {
		t.Error("alpha > 1 accepted")
	}
}

func TestEngineNames(t *testing.T) {
	if (Reference{}).Name() != "reference" {
		t.Error("reference name")
	}
	if (HILOS{Alpha: 0.5, SpillInterval: 4}).Name() != "hilos(alpha=0.50,c=4)" {
		t.Errorf("hilos name = %q", HILOS{Alpha: 0.5, SpillInterval: 4}.Name())
	}
}

func TestNewModelValidates(t *testing.T) {
	bad := smallParams(false)
	bad.Vocab = 1
	if _, err := NewModel(bad, 1); err == nil {
		t.Error("vocab=1 accepted")
	}
}
