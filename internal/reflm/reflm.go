// Package reflm is the functional integration layer: a small decoder-only
// transformer executed end to end through two engines —
//
//   - Reference: conventional decode with a dense KV cache and exact
//     attention; and
//   - HILOS: the paper's full functional pipeline — (batch, head) groups
//     split by the X-cache ratio α (§4.2), the KV portion served by the
//     blocked accelerator with delayed writeback buffers and host-side
//     partial-score precompute (§4.3), the X portion regenerated from
//     stored activations (with RoPE re-applied at original positions) and
//     attended on the "GPU".
//
// Both engines must produce the same greedy token stream; this is the
// repository's analogue of the paper's lm-eval-harness-integrated
// functional verification (§5.1).
package reflm

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/attention"
	"repro/internal/tensor"
)

// Params describes the miniature model architecture.
type Params struct {
	Layers  int
	Hidden  int
	Heads   int
	KVHeads int
	FFN     int
	Vocab   int
	UseRoPE bool
}

// Validate reports inconsistent parameters.
func (p Params) Validate() error {
	switch {
	case p.Layers < 1 || p.Hidden < 1 || p.Heads < 1 || p.KVHeads < 1 || p.FFN < 1 || p.Vocab < 2:
		return fmt.Errorf("reflm: non-positive parameters %+v", p)
	case p.Hidden%p.Heads != 0:
		return fmt.Errorf("reflm: hidden %d not divisible by heads %d", p.Hidden, p.Heads)
	case p.Heads%p.KVHeads != 0:
		return fmt.Errorf("reflm: heads %d not divisible by KV heads %d", p.Heads, p.KVHeads)
	case p.UseRoPE && (p.Hidden/p.Heads)%2 != 0:
		return fmt.Errorf("reflm: RoPE needs an even head dim, got %d", p.Hidden/p.Heads)
	}
	return nil
}

// HeadDim returns the per-head dimension.
func (p Params) HeadDim() int { return p.Hidden / p.Heads }

// DGroup returns query heads per KV head.
func (p Params) DGroup() int { return p.Heads / p.KVHeads }

// layerWeights holds one transformer block's parameters. Per-head
// projection slices view into the full matrices.
type layerWeights struct {
	wq, wk, wv tensor.Mat // hidden × (heads·d) / (kvHeads·d)
	wo         tensor.Mat // hidden × hidden
	w1         tensor.Mat // hidden × ffn
	w2         tensor.Mat // ffn × hidden
}

// Model bundles parameters and weights.
type Model struct {
	P      Params
	embed  tensor.Mat // vocab × hidden
	layers []layerWeights
}

// NewModel draws FP16-quantized random weights.
func NewModel(p Params, seed int64) (*Model, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	sigma := 1 / math.Sqrt(float64(p.Hidden))
	m := &Model{P: p, embed: tensor.RandMat(rng, p.Vocab, p.Hidden, 1).RoundFP16()}
	kvDim := p.KVHeads * p.HeadDim()
	for l := 0; l < p.Layers; l++ {
		m.layers = append(m.layers, layerWeights{
			wq: tensor.RandMat(rng, p.Hidden, p.Hidden, sigma).RoundFP16(),
			wk: tensor.RandMat(rng, p.Hidden, kvDim, sigma).RoundFP16(),
			wv: tensor.RandMat(rng, p.Hidden, kvDim, sigma).RoundFP16(),
			wo: tensor.RandMat(rng, p.Hidden, p.Hidden, sigma).RoundFP16(),
			w1: tensor.RandMat(rng, p.Hidden, p.FFN, sigma).RoundFP16(),
			w2: tensor.RandMat(rng, p.FFN, p.Hidden, sigma).RoundFP16(),
		})
	}
	return m, nil
}

// headSlice returns the column block of a projected row for head h of dim d.
func headSlice(row []float32, h, d int) []float32 { return row[h*d : (h+1)*d] }

// gelu is the tanh-approximation GELU used by the FFN.
func gelu(x float32) float32 {
	const c = 0.7978845608028654 // sqrt(2/pi)
	x64 := float64(x)
	return float32(0.5 * x64 * (1 + math.Tanh(c*(x64+0.044715*x64*x64*x64))))
}

// project computes the q/k/v rows for one input row, applying RoPE at pos.
func (m *Model) project(l int, h []float32, pos int, rope []*attention.RoPE) (q, k, v []float32) {
	lw := m.layers[l]
	hm := tensor.FromSlice(1, len(h), h)
	q = tensor.MatMul(hm, lw.wq).RoundFP16().Row(0)
	k = tensor.MatMul(hm, lw.wk).RoundFP16().Row(0)
	v = tensor.MatMul(hm, lw.wv).RoundFP16().Row(0)
	if m.P.UseRoPE {
		d := m.P.HeadDim()
		for hd := 0; hd < m.P.Heads; hd++ {
			rope[l].Apply(headSlice(q, hd, d), pos)
		}
		for hd := 0; hd < m.P.KVHeads; hd++ {
			rope[l].Apply(headSlice(k, hd, d), pos)
		}
		// RoPE rotates in FP32; the stored copy is FP16.
		tensor.FromSlice(1, len(q), q).RoundFP16()
		tensor.FromSlice(1, len(k), k).RoundFP16()
	}
	return q, k, v
}

// mlpAndResidual finishes a layer: output projection of the concatenated
// attention heads, residual, FFN, residual.
func (m *Model) mlpAndResidual(l int, h, attnOut []float32) []float32 {
	lw := m.layers[l]
	ao := tensor.MatMul(tensor.FromSlice(1, len(attnOut), attnOut), lw.wo).RoundFP16()
	mid := make([]float32, m.P.Hidden)
	for i := range mid {
		mid[i] = h[i] + ao.Row(0)[i]
	}
	up := tensor.MatMul(tensor.FromSlice(1, len(mid), mid), lw.w1).RoundFP16()
	for i := range up.Data {
		up.Data[i] = gelu(up.Data[i])
	}
	down := tensor.MatMul(up, lw.w2).RoundFP16()
	out := make([]float32, m.P.Hidden)
	for i := range out {
		out[i] = mid[i] + down.Row(0)[i]
	}
	return out
}

// logits projects a hidden state onto the vocabulary (tied embeddings).
func (m *Model) logits(h []float32) []float32 {
	return tensor.MatVec(m.embed, h)
}

// argmax returns the greedy token.
func argmax(logits []float32) int {
	best, bi := float32(math.Inf(-1)), 0
	for i, v := range logits {
		if v > best {
			best, bi = v, i
		}
	}
	return bi
}

// newRoPEs returns per-layer RoPE operators (nil slice if disabled).
func (m *Model) newRoPEs() []*attention.RoPE {
	if !m.P.UseRoPE {
		return make([]*attention.RoPE, m.P.Layers)
	}
	out := make([]*attention.RoPE, m.P.Layers)
	for l := range out {
		r, err := attention.NewRoPE(m.P.HeadDim(), 10000)
		if err != nil {
			panic(err) // Params.Validate guarantees an even head dim
		}
		out[l] = r
	}
	return out
}
