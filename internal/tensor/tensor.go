// Package tensor provides the minimal dense linear algebra used by the
// functional attention substrate: row-major float32 matrices, GEMM/GEMV,
// transposition, and FP16 storage quantization.
//
// All accumulation is done in float32 (emulating the accelerator's FP32
// accumulators); storage quantization to FP16 is explicit via RoundFP16,
// mirroring the paper's "native FP16 storage, FP32 intermediate" policy.
package tensor

import (
	"fmt"
	"math/rand"

	"repro/internal/fp16"
)

// Mat is a dense row-major matrix.
type Mat struct {
	Rows, Cols int
	Data       []float32
}

// New returns a zero matrix with the given shape.
func New(rows, cols int) Mat {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative shape %dx%d", rows, cols))
	}
	return Mat{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// FromSlice wraps data (length rows*cols) as a matrix without copying.
func FromSlice(rows, cols int, data []float32) Mat {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: data length %d != %d*%d", len(data), rows, cols))
	}
	return Mat{Rows: rows, Cols: cols, Data: data}
}

// At returns the element at row i, column j.
func (m Mat) At(i, j int) float32 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m Mat) Set(i, j int, v float32) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a slice aliasing the matrix storage.
func (m Mat) Row(i int) []float32 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m Mat) Clone() Mat {
	out := New(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// SliceRows returns the sub-matrix of rows [lo, hi) sharing storage with m.
func (m Mat) SliceRows(lo, hi int) Mat {
	if lo < 0 || hi > m.Rows || lo > hi {
		panic(fmt.Sprintf("tensor: row slice [%d,%d) out of range %d", lo, hi, m.Rows))
	}
	return Mat{Rows: hi - lo, Cols: m.Cols, Data: m.Data[lo*m.Cols : hi*m.Cols]}
}

// transposeTile is the square tile edge of the blocked transpose: 64×64
// float32 source plus destination tiles are 32 KiB together, sized to stay
// L1-resident while the tile is scattered. Transposition is pure data
// movement, so tiling can never change a bit — only the miss rate.
const transposeTile = 64

// T returns the transpose of m as a new matrix. Large matrices transpose
// tile by tile (transposeTile² elements at a time) so both the row-major
// reads and the column-strided writes stay inside one cache tile; the
// result is bit-identical to TransposeRef for every shape.
func (m Mat) T() Mat {
	out := New(m.Cols, m.Rows)
	if m.Rows*m.Cols < transposeTile*transposeTile {
		for i := 0; i < m.Rows; i++ {
			row := m.Row(i)
			for j, v := range row {
				out.Data[j*m.Rows+i] = v
			}
		}
		return out
	}
	for ii := 0; ii < m.Rows; ii += transposeTile {
		ih := ii + transposeTile
		if ih > m.Rows {
			ih = m.Rows
		}
		for jj := 0; jj < m.Cols; jj += transposeTile {
			jh := jj + transposeTile
			if jh > m.Cols {
				jh = m.Cols
			}
			for i := ii; i < ih; i++ {
				row := m.Data[i*m.Cols+jj : i*m.Cols+jh]
				for j, v := range row {
					out.Data[(jj+j)*m.Rows+i] = v
				}
			}
		}
	}
	return out
}

// TransposeRef is the naive row-by-row transpose retained as the golden
// reference for the blocked T; tests pin bit-identity between the two.
func (m Mat) TransposeRef() Mat {
	out := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// matMulDotFlops is the work floor (element multiplications) above which
// MatMul switches from the row-axpy loop to the transposed-operand striped
// path: transpose b once with the blocked T, then compute every output
// element as a striped Dot over two contiguous rows. Below the floor the
// transpose would not amortize; the threshold is a pure function of shape,
// so which path runs never depends on data or worker count.
const matMulDotFlops = 1 << 20

// MatMul returns a·b. Panics on shape mismatch. Products above a fixed work
// floor shard output rows across the kernel worker pool, and large products
// additionally route their inner loops through the cache-blocked transpose
// and the striped Dot (both operands then stream contiguously through the
// 8-lane MAC reduction). Row results are index-owned, so the result is
// bit-identical for any worker count; the small-product path reproduces the
// original serial axpy loop exactly.
//
//lint:allow floataccum GEMM deliberately emulates the accelerator's FP32 accumulators
func MatMul(a, b Mat) Mat {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: matmul shape %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Cols)
	flops := a.Rows * a.Cols * b.Cols
	workers := 1
	if a.Rows > 1 && flops >= matMulParallelFlops {
		workers = DefaultWorkers()
	}
	if a.Rows >= 8 && a.Cols >= 8 && flops >= matMulDotFlops {
		bt := b.T() // blocked transpose: b columns become contiguous rows
		ParallelFor(a.Rows, workers, func(i int) {
			arow := a.Row(i)
			orow := out.Row(i)
			for j := range orow {
				orow[j] = Dot(arow, bt.Row(j))
			}
		})
		return out
	}
	ParallelFor(a.Rows, workers, func(i int) {
		arow := a.Row(i)
		orow := out.Row(i)
		for k := 0; k < a.Cols; k++ {
			av := arow[k]
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j := range orow {
				orow[j] += av * brow[j]
			}
		}
	})
	return out
}

// MatVec returns m·x as a vector of length m.Rows.
func MatVec(m Mat, x []float32) []float32 {
	if m.Cols != len(x) {
		panic(fmt.Sprintf("tensor: matvec shape %dx%d · %d", m.Rows, m.Cols, len(x)))
	}
	out := make([]float32, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = Dot(m.Row(i), x)
	}
	return out
}

// Dot returns the inner product of a and b accumulated in float32, striped
// across eight independent lanes — matching the accelerator's parallel MAC
// lane groups — so the sequential add dependency chain is broken eight ways
// and the loop retires more than one element per add-latency cycle.
//
// Canonical reduction order (part of the numeric contract, documented here
// and tested against DotRef): lane L accumulates the products at indices
// i+L over full 8-element groups in index order; the final fewer-than-8
// tail elements fold sequentially into lane 0 (so lengths < 8 are exactly
// the scalar sequential sum); the lanes then reduce as
// ((s0+s1)+(s2+s3)) + ((s4+s5)+(s6+s7)). The shape is a pure function of
// the input length — never of data or timing — so Dot is deterministic for
// all inputs, NaN and Inf included.
//
//lint:allow floataccum striped lanes model the accelerator's parallel FP32 MACs
func Dot(a, b []float32) float32 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("tensor: dot length %d != %d", len(a), len(b)))
	}
	var s0, s1, s2, s3, s4, s5, s6, s7 float32
	i := 0
	for ; i+8 <= len(a); i += 8 {
		aa, bb := a[i:i+8:i+8], b[i:i+8:i+8]
		s0 += aa[0] * bb[0]
		s1 += aa[1] * bb[1]
		s2 += aa[2] * bb[2]
		s3 += aa[3] * bb[3]
		s4 += aa[4] * bb[4]
		s5 += aa[5] * bb[5]
		s6 += aa[6] * bb[6]
		s7 += aa[7] * bb[7]
	}
	for ; i < len(a); i++ {
		s0 += a[i] * b[i]
	}
	return ((s0 + s1) + (s2 + s3)) + ((s4 + s5) + (s6 + s7))
}

// DotRef is the retained scalar reference for the striped Dot: one
// accumulator, strict index order. Every optimized dot path is
// equivalence-tested against it (bitwise for lengths < 8, where the striped
// tail degenerates to exactly this loop; within FP32 reassociation
// tolerance otherwise), and cmd/hilos-bench floors the striped speedup over
// it.
//
//lint:allow floataccum scalar FP32 chain is the reference the striped lanes are tested against
func DotRef(a, b []float32) float32 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("tensor: dot length %d != %d", len(a), len(b)))
	}
	var s float32
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Scale multiplies every element of m by f in place and returns m.
func (m Mat) Scale(f float32) Mat {
	for i := range m.Data {
		m.Data[i] *= f
	}
	return m
}

// AddTo accumulates src into dst element-wise. Panics on shape mismatch.
//
//lint:allow floataccum element-wise FP32 add matches the residual-path datapath
func AddTo(dst, src Mat) {
	if dst.Rows != src.Rows || dst.Cols != src.Cols {
		panic("tensor: add shape mismatch")
	}
	for i := range dst.Data {
		dst.Data[i] += src.Data[i]
	}
}

// RoundFP16 quantizes every element of m through binary16 in place,
// emulating FP16 tensor storage, and returns m.
func (m Mat) RoundFP16() Mat {
	fp16.RoundSlice(m.Data)
	return m
}

// Rand fills m with values drawn from N(0, sigma) using rng and returns m.
func (m Mat) Rand(rng *rand.Rand, sigma float64) Mat {
	for i := range m.Data {
		m.Data[i] = float32(rng.NormFloat64() * sigma)
	}
	return m
}

// RandMat returns a rows×cols matrix of N(0, sigma) values.
func RandMat(rng *rand.Rand, rows, cols int, sigma float64) Mat {
	return New(rows, cols).Rand(rng, sigma)
}

// MaxAbsDiff returns the largest absolute element-wise difference between a
// and b. Panics on shape mismatch.
func MaxAbsDiff(a, b Mat) float32 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("tensor: diff shape mismatch")
	}
	var m float32
	for i := range a.Data {
		d := a.Data[i] - b.Data[i]
		if d < 0 {
			d = -d
		}
		if d > m {
			m = d
		}
	}
	return m
}

// VStack concatenates matrices with equal column counts by rows.
func VStack(ms ...Mat) Mat {
	if len(ms) == 0 {
		return Mat{}
	}
	cols := ms[0].Cols
	rows := 0
	for _, m := range ms {
		if m.Cols != cols {
			panic("tensor: vstack column mismatch")
		}
		rows += m.Rows
	}
	out := New(rows, cols)
	off := 0
	for _, m := range ms {
		copy(out.Data[off:], m.Data)
		off += len(m.Data)
	}
	return out
}
