package tensor

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// randVec returns an n-length vector of N(0,1) values.
func randVec(rng *rand.Rand, n int) []float32 {
	v := make([]float32, n)
	for i := range v {
		v[i] = float32(rng.NormFloat64())
	}
	return v
}

// TestDotStripedMatchesRefEdgeLanes pins the striped Dot against the
// retained scalar DotRef for every length 0..17 — both remainder classes of
// the 8-wide stripe plus full groups. Lengths below 8 never enter the
// striped loop, so there the contract is bitwise equality; longer lengths
// reassociate and are held to FP32 tolerance.
func TestDotStripedMatchesRefEdgeLanes(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	for n := 0; n <= 17; n++ {
		for rep := 0; rep < 8; rep++ {
			a, b := randVec(rng, n), randVec(rng, n)
			got, want := Dot(a, b), DotRef(a, b)
			if n < 8 {
				if got != want {
					t.Fatalf("n=%d: striped %v != scalar %v (must be bitwise below one stripe)", n, got, want)
				}
				continue
			}
			if d := math.Abs(float64(got) - float64(want)); d > 1e-4*(1+math.Abs(float64(want))) {
				t.Fatalf("n=%d: striped %v vs scalar %v differ by %v", n, got, want, d)
			}
		}
	}
}

// TestDotNaNPropagates: a NaN anywhere in either input must surface as a
// NaN result from both implementations — NaN survives any association.
func TestDotNaNPropagates(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for _, n := range []int{1, 3, 8, 9, 16, 17, 33} {
		for pos := 0; pos < n; pos += 1 + n/4 {
			a, b := randVec(rng, n), randVec(rng, n)
			a[pos] = float32(math.NaN())
			if got := Dot(a, b); !math.IsNaN(float64(got)) {
				t.Fatalf("n=%d pos=%d: striped Dot = %v, want NaN", n, pos, got)
			}
			if got := DotRef(a, b); !math.IsNaN(float64(got)) {
				t.Fatalf("n=%d pos=%d: DotRef = %v, want NaN", n, pos, got)
			}
		}
	}
}

// TestDotInf covers the documented Inf behaviors where both orders agree:
// a single signed overflow dominates (both +Inf), and opposing infinities
// annihilate to NaN under every association.
func TestDotInf(t *testing.T) {
	inf := float32(math.Inf(1))
	ones := func(n int) []float32 {
		v := make([]float32, n)
		for i := range v {
			v[i] = 1
		}
		return v
	}
	for _, n := range []int{2, 8, 11, 16} {
		a := ones(n)
		a[1] = inf
		if got, want := Dot(a, ones(n)), DotRef(a, ones(n)); got != inf || want != inf {
			t.Fatalf("n=%d: single +Inf: striped %v, scalar %v, want +Inf", n, got, want)
		}
		a[0] = -inf
		gotS, gotR := Dot(a, ones(n)), DotRef(a, ones(n))
		if !math.IsNaN(float64(gotS)) || !math.IsNaN(float64(gotR)) {
			t.Fatalf("n=%d: ±Inf pair: striped %v, scalar %v, want NaN", n, gotS, gotR)
		}
	}
}

// TestDotDeterministic: the striped reduction is a pure function of the
// input — repeated calls are bitwise identical even on NaN/Inf vectors.
func TestDotDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	a, b := randVec(rng, 1001), randVec(rng, 1001)
	a[17] = float32(math.Inf(1))
	b[901] = float32(math.NaN())
	first := Dot(a, b)
	for i := 0; i < 10; i++ {
		if got := Dot(a, b); math.Float32bits(got) != math.Float32bits(first) {
			t.Fatalf("run %d: %v differs from first run %v", i, got, first)
		}
	}
}

// TestBlockedTransposeMatchesRef: the tiled T is pure data movement and must
// equal the naive TransposeRef bit-for-bit on every shape class — below the
// tile floor, tile-aligned, ragged in one or both dimensions, and degenerate
// single-row/column shapes.
func TestBlockedTransposeMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	shapes := []struct{ r, c int }{
		{0, 0}, {1, 1}, {1, 65}, {65, 1}, {7, 9},
		{63, 64}, {64, 64}, {64, 65}, {65, 127}, {128, 128},
		{130, 67}, {67, 200}, {256, 31},
	}
	for _, sh := range shapes {
		m := RandMat(rng, sh.r, sh.c, 1)
		got, want := m.T(), m.TransposeRef()
		if got.Rows != want.Rows || got.Cols != want.Cols || !reflect.DeepEqual(got.Data, want.Data) {
			t.Fatalf("%dx%d: blocked transpose differs from reference", sh.r, sh.c)
		}
		back := got.T()
		if !reflect.DeepEqual(back.Data, m.Data) {
			t.Fatalf("%dx%d: (Mᵀ)ᵀ != M", sh.r, sh.c)
		}
	}
}

// TestMatMulDotPathMatchesAxpy: above the routing floor MatMul streams
// through bᵀ and the striped Dot; the result must match the retained axpy
// loop within FP32 reassociation tolerance, and stay bit-identical across
// worker counts (row results are index-owned either way).
func TestMatMulDotPathMatchesAxpy(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	// 64·72·80 = 368640 ≥ matMulDotFlops? No — pick shapes straddling it.
	big := struct{ m, k, n int }{128, 96, 128} // 1.5M flops: dot path
	a := RandMat(rng, big.m, big.k, 1)
	b := RandMat(rng, big.k, big.n, 1)
	got := MatMul(a, b)
	axpy := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow, orow := a.Row(i), axpy.Row(i)
		for k := 0; k < a.Cols; k++ {
			av := arow[k]
			brow := b.Row(k)
			for j := range orow {
				orow[j] += av * brow[j]
			}
		}
	}
	if big.m*big.k*big.n < matMulDotFlops {
		t.Fatalf("test shape below matMulDotFlops; raise it")
	}
	for i := range got.Data {
		if d := math.Abs(float64(got.Data[i]) - float64(axpy.Data[i])); d > 1e-3*(1+math.Abs(float64(axpy.Data[i]))) {
			t.Fatalf("element %d: dot-path %v vs axpy %v", i, got.Data[i], axpy.Data[i])
		}
	}
	// Worker count must never reach a bit.
	old := DefaultWorkers()
	SetWorkers(1)
	serial := MatMul(a, b)
	SetWorkers(4)
	par := MatMul(a, b)
	SetWorkers(old)
	if !reflect.DeepEqual(serial.Data, par.Data) || !reflect.DeepEqual(serial.Data, got.Data) {
		t.Fatal("MatMul differs across worker counts")
	}
}

// FuzzDotStripedEquivalence fuzzes lengths and value classes, asserting the
// striped Dot agrees with the scalar DotRef: bitwise below one stripe,
// within FP32 tolerance for finite data, NaN-for-NaN when NaN is injected,
// and always deterministic call to call. mode selects the value class:
// 0 finite, 1 inject a NaN, 2 inject Infs (where only determinism and NaN
// agreement can be demanded — opposing overflows legally reassociate to
// different non-finite values).
func FuzzDotStripedEquivalence(f *testing.F) {
	f.Add(int64(1), 17, 0)
	f.Add(int64(2), 8, 1)
	f.Add(int64(3), 0, 0)
	f.Add(int64(4), 33, 2)
	f.Add(int64(5), 7, 1)
	f.Fuzz(func(t *testing.T, seed int64, n, mode int) {
		if n < 0 || n > 4096 {
			return
		}
		rng := rand.New(rand.NewSource(seed))
		a, b := randVec(rng, n), randVec(rng, n)
		if n > 0 {
			switch mode % 3 {
			case 1:
				a[rng.Intn(n)] = float32(math.NaN())
			case 2:
				a[rng.Intn(n)] = float32(math.Inf(1 - 2*rng.Intn(2)))
				b[rng.Intn(n)] = float32(math.Inf(1 - 2*rng.Intn(2)))
			}
		}
		got, ref := Dot(a, b), DotRef(a, b)
		if again := Dot(a, b); math.Float32bits(again) != math.Float32bits(got) {
			t.Fatalf("n=%d mode=%d: striped Dot not deterministic", n, mode)
		}
		switch {
		case math.IsNaN(float64(ref)) && n > 0 && mode%3 == 1:
			// NaN input: both must be NaN regardless of association.
			if !math.IsNaN(float64(got)) {
				t.Fatalf("n=%d: ref NaN but striped %v", n, got)
			}
		case math.IsInf(float64(ref), 0) || math.IsNaN(float64(ref)) ||
			math.IsInf(float64(got), 0) || math.IsNaN(float64(got)):
			// Overflow regimes may legally diverge under reassociation;
			// determinism (checked above) is the only portable contract.
		case n < 8:
			if got != ref {
				t.Fatalf("n=%d: striped %v != scalar %v below one stripe", n, got, ref)
			}
		default:
			if d := math.Abs(float64(got) - float64(ref)); d > 1e-3*(1+math.Abs(float64(ref))) {
				t.Fatalf("n=%d: striped %v vs scalar %v differ by %v", n, got, ref, d)
			}
		}
	})
}

// FuzzBlockedTranspose fuzzes shapes around the tile boundary, requiring the
// tiled transpose to be bit-identical to the naive reference.
func FuzzBlockedTranspose(f *testing.F) {
	f.Add(int64(1), 64, 64)
	f.Add(int64(2), 65, 127)
	f.Add(int64(3), 1, 200)
	f.Fuzz(func(t *testing.T, seed int64, rows, cols int) {
		if rows < 0 || cols < 0 || rows > 512 || cols > 512 {
			return
		}
		rng := rand.New(rand.NewSource(seed))
		m := RandMat(rng, rows, cols, 1)
		got, want := m.T(), m.TransposeRef()
		if !reflect.DeepEqual(got.Data, want.Data) {
			t.Fatalf("%dx%d: blocked transpose differs from reference", rows, cols)
		}
	})
}
