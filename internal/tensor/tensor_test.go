package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAtSetRow(t *testing.T) {
	m := New(2, 3)
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Errorf("At(1,2) = %v, want 7", m.At(1, 2))
	}
	if r := m.Row(1); r[2] != 7 {
		t.Errorf("Row(1)[2] = %v, want 7", r[2])
	}
}

func TestMatMulKnown(t *testing.T) {
	a := FromSlice(2, 2, []float32{1, 2, 3, 4})
	b := FromSlice(2, 2, []float32{5, 6, 7, 8})
	got := MatMul(a, b)
	want := []float32{19, 22, 43, 50}
	for i, w := range want {
		if got.Data[i] != w {
			t.Fatalf("MatMul[%d] = %v, want %v", i, got.Data[i], w)
		}
	}
}

func TestMatMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := RandMat(rng, 5, 5, 1)
	id := New(5, 5)
	for i := 0; i < 5; i++ {
		id.Set(i, i, 1)
	}
	if d := MaxAbsDiff(MatMul(a, id), a); d != 0 {
		t.Errorf("A·I differs from A by %v", d)
	}
	if d := MaxAbsDiff(MatMul(id, a), a); d != 0 {
		t.Errorf("I·A differs from A by %v", d)
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := RandMat(rng, 7, 3, 1)
	if d := MaxAbsDiff(m.T().T(), m); d != 0 {
		t.Errorf("(Mᵀ)ᵀ differs from M by %v", d)
	}
}

// (A·B)ᵀ == Bᵀ·Aᵀ, a structural property the online-transpose unit relies on.
func TestTransposeOfProduct(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := RandMat(rng, 4, 6, 1)
	b := RandMat(rng, 6, 5, 1)
	lhs := MatMul(a, b).T()
	rhs := MatMul(b.T(), a.T())
	if d := MaxAbsDiff(lhs, rhs); d > 1e-5 {
		t.Errorf("(AB)ᵀ vs BᵀAᵀ differ by %v", d)
	}
}

func TestMatVecMatchesMatMul(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := RandMat(rng, 6, 4, 1)
	x := RandMat(rng, 4, 1, 1)
	got := MatVec(m, x.Data)
	want := MatMul(m, x)
	for i := range got {
		if got[i] != want.Data[i] {
			t.Fatalf("MatVec[%d] = %v, want %v", i, got[i], want.Data[i])
		}
	}
}

func TestSliceRowsAliases(t *testing.T) {
	m := New(4, 2)
	s := m.SliceRows(1, 3)
	s.Set(0, 0, 9)
	if m.At(1, 0) != 9 {
		t.Error("SliceRows does not alias parent storage")
	}
	if s.Rows != 2 || s.Cols != 2 {
		t.Errorf("SliceRows shape = %dx%d, want 2x2", s.Rows, s.Cols)
	}
}

func TestVStack(t *testing.T) {
	a := FromSlice(1, 2, []float32{1, 2})
	b := FromSlice(2, 2, []float32{3, 4, 5, 6})
	got := VStack(a, b)
	if got.Rows != 3 || got.Cols != 2 {
		t.Fatalf("VStack shape %dx%d", got.Rows, got.Cols)
	}
	want := []float32{1, 2, 3, 4, 5, 6}
	for i, w := range want {
		if got.Data[i] != w {
			t.Fatalf("VStack[%d] = %v, want %v", i, got.Data[i], w)
		}
	}
}

func TestRoundFP16(t *testing.T) {
	m := FromSlice(1, 2, []float32{1.0000001, 3.14159265})
	m.RoundFP16()
	// 1.0000001 is within half an FP16 ULP of 1.
	if m.Data[0] != 1 {
		t.Errorf("RoundFP16 kept %v", m.Data[0])
	}
}

// TestDotUnrollMatchesSequential: the striped Dot must agree with a plain
// float64 sequential accumulation within FP32 reassociation tolerance, for
// lengths spanning every remainder class of the 8-wide stripe.
func TestDotUnrollMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 9, 127, 128, 129, 1000} {
		a := make([]float32, n)
		b := make([]float32, n)
		for i := 0; i < n; i++ {
			a[i] = float32(rng.NormFloat64())
			b[i] = float32(rng.NormFloat64())
		}
		var seq float64
		for i := 0; i < n; i++ {
			seq += float64(a[i]) * float64(b[i])
		}
		got := float64(Dot(a, b))
		if d := math.Abs(got - seq); d > 1e-3*(1+math.Abs(seq)) {
			t.Errorf("n=%d: Dot = %v, sequential = %v (diff %v)", n, got, seq, d)
		}
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Dot did not panic on length mismatch")
		}
	}()
	Dot([]float32{1}, []float32{1, 2})
}

// Distributivity: A·(B+C) == A·B + A·C (exact would need exact arithmetic;
// allow small FP32 tolerance).
func TestMatMulDistributive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := RandMat(rng, 3, 4, 1)
		b := RandMat(rng, 4, 2, 1)
		c := RandMat(rng, 4, 2, 1)
		sum := b.Clone()
		AddTo(sum, c)
		lhs := MatMul(a, sum)
		rhs := MatMul(a, b)
		AddTo(rhs, MatMul(a, c))
		return MaxAbsDiff(lhs, rhs) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestScale(t *testing.T) {
	m := FromSlice(1, 3, []float32{1, 2, 3})
	m.Scale(2)
	if m.Data[0] != 2 || m.Data[2] != 6 {
		t.Errorf("Scale result %v", m.Data)
	}
}
