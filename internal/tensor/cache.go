package tensor

import "sync/atomic"

// This file holds the process-wide cache-geometry knobs the kernel substrate
// reads when it partitions work: a per-worker cache budget (bytes) that the
// attention and accelerator kernels translate into K/V chunk spans, and an
// explicit chunk-token override for tests and calibration sweeps.
//
// Both knobs are part of the numeric contract: the chunk partition decides
// the shape of the fixed reduction tree, so two runs agree bit-for-bit only
// when they agree on budget/override. For exactly that reason the default
// budget is a fixed constant — deliberately NOT probed from the host CPU at
// startup — so results replay identically across machines. Tuning is an
// explicit act (SetCacheBudget / cmd/hilos-bench -tune), never an ambient
// property of whichever box ran the job.

// DefaultCacheBudgetBytes is the default per-worker cache budget: sized to a
// typical per-core L2 slice (1 MiB) so one K/V chunk (K rows + V rows at
// FP32) stays resident while a work item folds it. Derived once at package
// init; see the determinism note above for why it is a constant.
const DefaultCacheBudgetBytes = 1 << 20

// cacheBudget is the active per-worker cache budget in bytes. Zero or
// negative stores are normalized to the default by SetCacheBudget, so loads
// always observe a positive budget.
var cacheBudget atomic.Int64

// chunkTokensPin, when positive, pins the kernel K/V chunk span directly in
// tokens, bypassing the budget-derived sizing. Used by tests (to exercise
// many-chunk dataflows on small inputs without mutating package state
// racily) and by calibration sweeps (cmd/hilos-bench -tune).
var chunkTokensPin atomic.Int64

func init() { cacheBudget.Store(DefaultCacheBudgetBytes) }

// SetCacheBudget sets the per-worker cache budget (bytes) the kernels size
// their K/V chunks against. n ≤ 0 restores DefaultCacheBudgetBytes. The
// budget changes chunk geometry and therefore the fixed reduction tree:
// results remain bit-identical across worker counts for any budget, but two
// runs only match each other bit-for-bit when they use the same budget.
func SetCacheBudget(n int) {
	if n <= 0 {
		n = DefaultCacheBudgetBytes
	}
	cacheBudget.Store(int64(n))
}

// CacheBudget returns the active per-worker cache budget in bytes.
func CacheBudget() int { return int(cacheBudget.Load()) }

// SetChunkTokens pins the kernel K/V chunk span to n tokens, overriding the
// budget-derived sizing; n ≤ 0 restores adaptive sizing. Like the budget,
// the pin is part of the numeric contract and must stay fixed for the
// duration of any bit-level comparison.
func SetChunkTokens(n int) {
	if n < 0 {
		n = 0
	}
	chunkTokensPin.Store(int64(n))
}

// ChunkTokensOverride returns the pinned chunk span in tokens, or 0 when
// adaptive budget-derived sizing is active.
func ChunkTokensOverride() int { return int(chunkTokensPin.Load()) }
