package tensor

import (
	"math/rand"
	"reflect"
	"sync/atomic"
	"testing"
)

// TestParallelForRunsEachIndexOnce: every index in [0, n) runs exactly once,
// for worker counts below, at and above n, including the inline paths.
func TestParallelForRunsEachIndexOnce(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 100, 1000} {
		for _, w := range []int{1, 2, 3, 8, 64} {
			counts := make([]atomic.Int32, n)
			ParallelFor(n, w, func(i int) { counts[i].Add(1) })
			for i := range counts {
				if c := counts[i].Load(); c != 1 {
					t.Fatalf("n=%d workers=%d: index %d ran %d times", n, w, i, c)
				}
			}
		}
	}
}

// TestParallelForNested: a ParallelFor body may itself call ParallelFor
// (e.g. accel's per-group loop invoking a parallel kernel). The caller
// always participates in its own job, so saturation cannot deadlock.
func TestParallelForNested(t *testing.T) {
	var total atomic.Int64
	ParallelFor(8, 8, func(i int) {
		ParallelFor(16, 4, func(j int) { total.Add(1) })
	})
	if got := total.Load(); got != 8*16 {
		t.Fatalf("nested ParallelFor ran %d inner items, want %d", got, 8*16)
	}
}

// TestSetWorkersOverride: SetWorkers pins DefaultWorkers; ≤ 0 restores the
// GOMAXPROCS default.
func TestSetWorkersOverride(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(3)
	if got := DefaultWorkers(); got != 3 {
		t.Fatalf("DefaultWorkers() = %d after SetWorkers(3)", got)
	}
	SetWorkers(0)
	if got := DefaultWorkers(); got < 1 {
		t.Fatalf("DefaultWorkers() = %d after reset", got)
	}
}

// TestMatMulParallelBitIdentical: a product above the parallel work floor
// must be bit-identical across worker counts — row results are index-owned,
// so sharding cannot move a single bit. (The dot-routed path reassociates
// relative to the old axpy loop, so cross-path comparison is a separate,
// tolerance-based test; bit-identity here is strictly worker-count
// invariance of one path.)
func TestMatMulParallelBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	// 160×160 · 160×160 = 4.1M flops > matMulParallelFlops (2.1M).
	a := RandMat(rng, 160, 160, 1)
	b := RandMat(rng, 160, 160, 1)
	if a.Rows*a.Cols*b.Cols < matMulParallelFlops {
		t.Fatalf("test shape below parallel floor")
	}
	defer SetWorkers(0)
	par := MatMul(a, b)
	for _, w := range []int{1, 2, 3, 8} {
		SetWorkers(w)
		if got := MatMul(a, b); !reflect.DeepEqual(par.Data, got.Data) {
			t.Fatalf("MatMul with SetWorkers(%d) diverged", w)
		}
	}
}
