package tensor

import (
	"math/rand"
	"reflect"
	"sync/atomic"
	"testing"
)

// TestParallelForRunsEachIndexOnce: every index in [0, n) runs exactly once,
// for worker counts below, at and above n, including the inline paths.
func TestParallelForRunsEachIndexOnce(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 100, 1000} {
		for _, w := range []int{1, 2, 3, 8, 64} {
			counts := make([]atomic.Int32, n)
			ParallelFor(n, w, func(i int) { counts[i].Add(1) })
			for i := range counts {
				if c := counts[i].Load(); c != 1 {
					t.Fatalf("n=%d workers=%d: index %d ran %d times", n, w, i, c)
				}
			}
		}
	}
}

// TestParallelForNested: a ParallelFor body may itself call ParallelFor
// (e.g. accel's per-group loop invoking a parallel kernel). The caller
// always participates in its own job, so saturation cannot deadlock.
func TestParallelForNested(t *testing.T) {
	var total atomic.Int64
	ParallelFor(8, 8, func(i int) {
		ParallelFor(16, 4, func(j int) { total.Add(1) })
	})
	if got := total.Load(); got != 8*16 {
		t.Fatalf("nested ParallelFor ran %d inner items, want %d", got, 8*16)
	}
}

// TestSetWorkersOverride: SetWorkers pins DefaultWorkers; ≤ 0 restores the
// GOMAXPROCS default.
func TestSetWorkersOverride(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(3)
	if got := DefaultWorkers(); got != 3 {
		t.Fatalf("DefaultWorkers() = %d after SetWorkers(3)", got)
	}
	SetWorkers(0)
	if got := DefaultWorkers(); got < 1 {
		t.Fatalf("DefaultWorkers() = %d after reset", got)
	}
}

// TestMatMulParallelBitIdentical: a product above the parallel work floor
// must be bit-identical to the serial row loop — row results are
// independent, so sharding cannot move a single bit.
func TestMatMulParallelBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	// 160×160 · 160×160 = 4.1M flops > matMulParallelFlops (2.1M).
	a := RandMat(rng, 160, 160, 1)
	b := RandMat(rng, 160, 160, 1)
	if a.Rows*a.Cols*b.Cols < matMulParallelFlops {
		t.Fatalf("test shape below parallel floor")
	}
	par := MatMul(a, b)
	serial := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow, orow := a.Row(i), serial.Row(i)
		for k := 0; k < a.Cols; k++ {
			av := arow[k]
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j := range orow {
				orow[j] += av * brow[j]
			}
		}
	}
	if !reflect.DeepEqual(par.Data, serial.Data) {
		t.Fatalf("parallel MatMul diverged from serial row loop")
	}
	// And the override path: forcing 1 worker must give the same bits.
	defer SetWorkers(0)
	SetWorkers(1)
	one := MatMul(a, b)
	if !reflect.DeepEqual(par.Data, one.Data) {
		t.Fatalf("MatMul with SetWorkers(1) diverged")
	}
}
