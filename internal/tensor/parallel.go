package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// This file implements the process-wide kernel worker pool: a fixed set of
// long-lived goroutines that the parallel kernels (attention row/range
// sharding, the accelerator's per-group dataflow, large GEMMs) borrow for
// the duration of one call. Launching goroutines per call would cost an
// allocation and a scheduler wakeup per worker per op; the pool makes a
// parallel kernel call cost one job descriptor allocation regardless of
// context length or worker count.
//
// Determinism contract: ParallelFor runs fn(i) exactly once for every index,
// on an unspecified goroutine at an unspecified time. Callers keep the
// repository's bit-identical replay invariant by making fn(i) write only
// state owned by item i (index-ordered assembly) and by reducing item
// results in a fixed order afterwards (e.g. attention's fixed-shape
// tree-merge) — never in goroutine completion order.

// workerOverride, when positive, pins the default kernel worker count.
// Zero means "track runtime.GOMAXPROCS at call time".
var workerOverride atomic.Int32

// SetWorkers pins the default worker count used by the parallel kernels
// (attention Blocked/GQA/TopKBlocks, accel.Attention, large MatMul calls).
// n ≤ 0 restores the default of runtime.GOMAXPROCS. Results are bit-identical
// for every worker count; the knob only trades call latency against CPU.
func SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	workerOverride.Store(int32(n))
}

// DefaultWorkers returns the worker count parallel kernels use when the
// caller does not pass one explicitly: the SetWorkers override if set,
// otherwise runtime.GOMAXPROCS.
func DefaultWorkers() int {
	if n := workerOverride.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// job is one ParallelFor invocation: a shared atomic item cursor plus the
// body. Pool workers and the submitting goroutine all drain the same cursor,
// so work balances across whoever is free without affecting which item runs
// which index.
type job struct {
	next atomic.Int64
	n    int
	fn   func(i int)
	wg   sync.WaitGroup
}

// run grabs items off the shared cursor until none remain.
func (j *job) run() {
	for {
		i := int(j.next.Add(1)) - 1
		if i >= j.n {
			return
		}
		j.fn(i)
	}
}

var (
	poolOnce sync.Once
	poolJobs chan *job
)

// startPool launches the long-lived workers. Pool size is the physical CPU
// count; actual concurrency per call is bounded by the workers argument to
// ParallelFor, so an idle pool costs only parked goroutines.
func startPool() {
	n := runtime.NumCPU()
	poolJobs = make(chan *job, 4*n)
	for i := 0; i < n; i++ {
		go func() {
			for j := range poolJobs {
				j.run()
				j.wg.Done()
			}
		}()
	}
}

// ParallelFor runs fn(i) for every i in [0, n) using at most the given
// number of concurrent workers (the calling goroutine included). workers ≤ 1
// or n ≤ 1 runs inline with no synchronization. The caller always
// participates in draining the items, so ParallelFor never deadlocks even
// when invoked from inside another ParallelFor body or when the pool is
// saturated — helpers are opportunistic, progress is the caller's own.
//
// fn must confine its writes to state owned by item i; see the determinism
// contract above.
func ParallelFor(n, workers int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	poolOnce.Do(startPool)
	j := &job{n: n, fn: fn}
	for h := 0; h < workers-1; h++ {
		j.wg.Add(1)
		select {
		case poolJobs <- j:
		default:
			// Pool saturated (e.g. deeply nested calls): skip the helper;
			// the caller's own drain loop below guarantees completion.
			j.wg.Done()
		}
	}
	j.run()
	j.wg.Wait()
}

// matMulParallelFlops is the work floor (element multiplications) above
// which MatMul shards rows across the worker pool. Row results are
// independent, so the parallel product is bit-identical to the serial one.
const matMulParallelFlops = 1 << 21
