package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
)

// SimDeterminism enforces the replay invariant of the simulation packages:
// every figure is a pure function of its inputs, so simulated time must
// never observe the wall clock, process environment or an unseeded entropy
// source, and nothing order-sensitive may be driven by Go's randomized map
// iteration.
//
// Flagged patterns:
//
//   - calls to time.Now / time.Since / time.Until (wall clock);
//   - calls to package-level math/rand functions (the unseeded global
//     source; rand.New(rand.NewSource(seed)) streams are fine);
//   - any use of crypto/rand (hardware entropy);
//   - calls to os.Getenv / os.LookupEnv / os.Environ (environment-dependent
//     behavior in simulation hot paths);
//   - `range` over a map whose body leaks the iteration order: appending to
//     a slice that is not subsequently sorted in the same function, sending
//     on a channel, writing table/CSV/printed output, or accumulating into
//     a floating-point variable declared outside the loop (float addition
//     is not associative, so even a "sum over all values" depends on
//     iteration order in the last bits);
//   - worker-result collection in goroutine completion order: appending a
//     channel receive (`out = append(out, <-ch)`), appending to an outer
//     slice from inside `range` over a channel, or accumulating received
//     floats — the order results arrive depends on the scheduler, so it
//     must never reach a float or an output ordering.
//
// A map-range that appends and then sorts the slice (the collect-sort-walk
// idiom) is deterministic and is not flagged. The sanctioned worker-pool
// shapes likewise pass: index-ordered assembly (`out[i] = f(i)` with one
// owner per slot, as in experiments.pool and tensor.ParallelFor callers)
// and fixed-shape reductions over those slots (attention's tree-merge),
// because neither lets completion order reach a result.
var SimDeterminism = &analysis.Analyzer{
	Name: "simdeterminism",
	Doc: "forbid wall-clock, entropy, map-iteration-order and goroutine-completion-order leaks in simulation and kernel packages\n\n" +
		"The replay invariant — identical inputs produce bit-identical tables — only\n" +
		"holds if no simulation package reads time.Now, the process environment, the\n" +
		"global math/rand source, iterates a map where order can reach an output, or\n" +
		"collects parallel worker results in completion order (index-ordered slots\n" +
		"plus a fixed-order reduction are the sanctioned shape).",
	Packages: []string{"internal/sim", "internal/cluster", "internal/faults", "internal/serving", "internal/experiments", "internal/telemetry", "cmd/hilos-cluster", "internal/attention", "internal/tensor", "internal/accel"},
	Run:      runSimDeterminism,
}

// forbiddenCalls maps qualified function names to the reason they break
// deterministic replay.
var forbiddenCalls = map[string]string{
	"time.Now":     "wall-clock time.Now leaks real time into simulated time",
	"time.Since":   "wall-clock time.Since leaks real time into simulated time",
	"time.Until":   "wall-clock time.Until leaks real time into simulated time",
	"os.Getenv":    "os.Getenv makes simulation output depend on the process environment",
	"os.LookupEnv": "os.LookupEnv makes simulation output depend on the process environment",
	"os.Environ":   "os.Environ makes simulation output depend on the process environment",
}

func runSimDeterminism(pass *analysis.Pass) error {
	info := pass.TypesInfo
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkForbiddenCall(pass, n)
			case *ast.RangeStmt:
				checkMapRange(pass, file, n)
				checkChanRange(pass, file, n)
			case *ast.AssignStmt:
				checkRecvAssign(pass, n)
			case *ast.SelectorExpr:
				// Any reference into crypto/rand is an entropy source.
				if obj := info.Uses[n.Sel]; obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "crypto/rand" {
					pass.Reportf(n.Pos(), "crypto/rand is a non-deterministic entropy source; simulations must use a seeded math/rand.Rand")
				}
			}
			return true
		})
	}
	return nil
}

func checkForbiddenCall(pass *analysis.Pass, call *ast.CallExpr) {
	fn := funcObj(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	name := qualifiedName(fn)
	if reason, ok := forbiddenCalls[name]; ok {
		pass.Reportf(call.Pos(), "%s; derive it from the simulated clock or configuration instead", reason)
		return
	}
	// Package-level math/rand functions draw from the shared global source,
	// which is unseeded (Go ≥1.20 seeds it randomly at startup) and
	// contended; methods on an explicitly seeded *rand.Rand are fine, as are
	// the source constructors themselves.
	if fn.Pkg().Path() == "math/rand" || fn.Pkg().Path() == "math/rand/v2" {
		sig, _ := fn.Type().(*types.Signature)
		if sig == nil || sig.Recv() != nil {
			return
		}
		switch fn.Name() {
		case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
			return
		}
		pass.Reportf(call.Pos(), "%s.%s uses the global math/rand source; use an explicitly seeded rand.New(rand.NewSource(seed)) stream", fn.Pkg().Name(), fn.Name())
	}
}

// checkMapRange flags statements inside a range-over-map body that let the
// randomized iteration order reach an observable result.
func checkMapRange(pass *analysis.Pass, file *ast.File, rng *ast.RangeStmt) {
	info := pass.TypesInfo
	tv, ok := info.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	fn := enclosingFunc(file, rng.Pos())

	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "channel send inside range over map: receivers observe the random iteration order")
		case *ast.AssignStmt:
			checkMapRangeAssign(pass, file, fn, rng, n)
		case *ast.CallExpr:
			checkMapRangeOutput(pass, n)
		}
		return true
	})
}

// checkMapRangeAssign handles the two order-leaking assignment shapes inside
// a map range: append into an outer slice (unless later sorted) and
// floating-point accumulation into an outer variable.
func checkMapRangeAssign(pass *analysis.Pass, file *ast.File, fn *ast.FuncDecl, rng *ast.RangeStmt, as *ast.AssignStmt) {
	info := pass.TypesInfo

	// x op= v accumulation. Integer accumulation commutes exactly; float
	// accumulation does not.
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		lhs := as.Lhs[0]
		if tv, ok := info.Types[lhs]; ok {
			if fl, _ := isFloat(tv.Type); fl && !perKeyUpdate(info, lhs, rng) {
				if obj := rootObj(info, lhs); obj != nil && !declaredWithin(obj, rng) {
					pass.Reportf(as.Pos(), "floating-point accumulation inside range over map depends on iteration order in the last bits; iterate sorted keys instead")
				}
			}
		}
		return
	}

	// dst = append(dst, ...) — the slice records the iteration order unless
	// it is sorted afterwards in the same function.
	for i, rhs := range as.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || !isBuiltinAppend(info, call) {
			continue
		}
		var dst ast.Expr
		if i < len(as.Lhs) {
			dst = as.Lhs[i]
		} else if len(as.Lhs) == 1 {
			dst = as.Lhs[0]
		}
		if dst == nil {
			continue
		}
		obj := rootObj(info, dst)
		if obj == nil || declaredWithin(obj, rng) {
			continue
		}
		if fn != nil && sortedAfter(info, fn, obj, rng.End()) {
			continue // collect-then-sort idiom: deterministic
		}
		pass.Reportf(as.Pos(), "append inside range over map records the random iteration order in %s; sort the slice afterwards or iterate sorted keys", obj.Name())
	}
}

// checkChanRange flags statements inside a range-over-channel body that
// record goroutine completion order: appending to an outer slice (results
// arrive in whatever order workers finish) and floating-point accumulation
// into an outer variable. The collect-then-sort escape applies, as does
// index-ordered assembly (`out[i] = v`, an assignment, never reported).
func checkChanRange(pass *analysis.Pass, file *ast.File, rng *ast.RangeStmt) {
	info := pass.TypesInfo
	tv, ok := info.Types[rng.X]
	if !ok {
		return
	}
	if _, isChan := tv.Type.Underlying().(*types.Chan); !isChan {
		return
	}
	fn := enclosingFunc(file, rng.Pos())

	ast.Inspect(rng.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			lhs := as.Lhs[0]
			if tv, ok := info.Types[lhs]; ok {
				if fl, _ := isFloat(tv.Type); fl && !perKeyUpdate(info, lhs, rng) {
					if obj := rootObj(info, lhs); obj != nil && !declaredWithin(obj, rng) {
						pass.Reportf(as.Pos(), "floating-point accumulation inside range over channel folds worker results in goroutine completion order; write into index-owned slots and reduce in fixed order")
					}
				}
			}
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || !isBuiltinAppend(info, call) {
				continue
			}
			var dst ast.Expr
			if i < len(as.Lhs) {
				dst = as.Lhs[i]
			} else if len(as.Lhs) == 1 {
				dst = as.Lhs[0]
			}
			if dst == nil {
				continue
			}
			obj := rootObj(info, dst)
			if obj == nil || declaredWithin(obj, rng) {
				continue
			}
			if fn != nil && sortedAfter(info, fn, obj, rng.End()) {
				continue
			}
			pass.Reportf(as.Pos(), "append inside range over channel records goroutine completion order in %s; assign into index-owned slots (out[i] = v) or sort afterwards", obj.Name())
		}
		return true
	})
}

// checkRecvAssign flags direct completion-order collection outside channel
// ranges: appending a receive expression (`out = append(out, <-ch)`) and
// floating-point accumulation of a received value (`sum += <-ch`).
func checkRecvAssign(pass *analysis.Pass, as *ast.AssignStmt) {
	info := pass.TypesInfo
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		if len(as.Rhs) == 1 && containsRecv(as.Rhs[0]) {
			if tv, ok := info.Types[as.Lhs[0]]; ok {
				if fl, _ := isFloat(tv.Type); fl {
					pass.Reportf(as.Pos(), "floating-point accumulation of a channel receive folds worker results in goroutine completion order; write into index-owned slots and reduce in fixed order")
				}
			}
		}
		return
	}
	for _, rhs := range as.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || !isBuiltinAppend(info, call) {
			continue
		}
		for _, arg := range call.Args[1:] {
			if containsRecv(arg) {
				pass.Reportf(as.Pos(), "append of a channel receive records goroutine completion order; assign into index-owned slots (out[i] = <-ch only if i is the item's own index) or reduce with a fixed-shape tree")
				break
			}
		}
	}
}

// containsRecv reports whether expr contains a channel receive (<-ch).
func containsRecv(expr ast.Expr) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if u, ok := n.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
			found = true
		}
		return !found
	})
	return found
}

// checkMapRangeOutput flags calls that write human-readable or serialized
// output from inside a map range: fmt print family, and Write* methods
// (io.Writer implementations, strings.Builder, csv.Writer, ...).
func checkMapRangeOutput(pass *analysis.Pass, call *ast.CallExpr) {
	fn := funcObj(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	sig, _ := fn.Type().(*types.Signature)
	if fn.Pkg().Path() == "fmt" && sig != nil && sig.Recv() == nil {
		switch fn.Name() {
		case "Print", "Println", "Printf", "Fprint", "Fprintln", "Fprintf":
			pass.Reportf(call.Pos(), "fmt.%s inside range over map emits rows in random iteration order; sort the keys first", fn.Name())
		}
		return
	}
	if sig != nil && sig.Recv() != nil {
		switch fn.Name() {
		case "Write", "WriteString", "WriteByte", "WriteRune", "WriteAll":
			pass.Reportf(call.Pos(), "%s.%s inside range over map serializes entries in random iteration order; sort the keys first", recvTypeName(sig), fn.Name())
		}
	}
}

func recvTypeName(sig *types.Signature) string {
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return t.String()
}

func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// declaredWithin reports whether obj is declared inside the range statement
// (per-iteration locals cannot leak order across iterations).
func declaredWithin(obj types.Object, rng *ast.RangeStmt) bool {
	return obj.Pos() >= rng.Pos() && obj.Pos() < rng.End()
}

// perKeyUpdate reports whether lhs is an index expression whose index uses
// the range statement's own key or value variable — a per-key update like
// out[k] += v, which commutes across iteration orders.
func perKeyUpdate(info *types.Info, lhs ast.Expr, rng *ast.RangeStmt) bool {
	idx, ok := ast.Unparen(lhs).(*ast.IndexExpr)
	if !ok {
		return false
	}
	for _, kv := range []ast.Expr{rng.Key, rng.Value} {
		id, ok := kv.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj != nil && usesObject(info, idx.Index, obj) {
			return true
		}
	}
	return false
}

// sortedAfter reports whether a sort call referencing obj appears after pos
// in the function body — the "collect into a slice, then sort" idiom.
func sortedAfter(info *types.Info, fn *ast.FuncDecl, obj types.Object, pos token.Pos) bool {
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		callee := funcObj(info, call)
		if callee == nil || callee.Pkg() == nil {
			return true
		}
		switch callee.Pkg().Path() {
		case "sort":
			switch callee.Name() {
			case "Sort", "Stable", "Slice", "SliceStable", "Strings", "Ints", "Float64s":
			default:
				return true
			}
		case "slices":
			switch callee.Name() {
			case "Sort", "SortFunc", "SortStableFunc":
			default:
				return true
			}
		default:
			return true
		}
		for _, arg := range call.Args {
			if usesObject(info, arg, obj) {
				found = true
				break
			}
		}
		return !found
	})
	return found
}
