// Package load type-checks Go packages for the lint analyzers using only
// the standard library: `go list -deps -export` enumerates the packages and
// the compiler export data of their dependencies (drawn from the build
// cache, so the loader works fully offline), target packages are parsed from
// source with comments, and go/types checks them against an importer that
// reads the recorded export files. This replaces golang.org/x/tools/go/
// packages, which the hermetic build environment cannot vendor.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one parsed and type-checked target package.
type Package struct {
	ImportPath string
	Dir        string
	Files      []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
}

// Result bundles the loaded targets with the FileSet their positions
// resolve against.
type Result struct {
	Fset     *token.FileSet
	Packages []*Package
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	CgoFiles   []string
	Export     string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load resolves the patterns (e.g. "./...") relative to dir, type-checks
// every matched non-standard package, and returns them sorted by import
// path. Dependencies are imported from compiler export data, so only the
// matched packages themselves are parsed from source.
func Load(dir string, patterns ...string) (*Result, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-e", "-deps", "-export",
		"-json=ImportPath,Dir,GoFiles,CgoFiles,Export,Standard,DepOnly,Error",
		"--",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint/load: go list %v: %v\n%s", patterns, err, stderr.String())
	}

	exports := map[string]string{}
	var targets []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint/load: decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint/load: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	res := &Result{Fset: fset}
	for _, t := range targets {
		files := make([]*ast.File, 0, len(t.GoFiles)+len(t.CgoFiles))
		for _, name := range append(append([]string{}, t.GoFiles...), t.CgoFiles...) {
			af, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("lint/load: %v", err)
			}
			files = append(files, af)
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
		}
		conf := types.Config{Importer: imp}
		pkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("lint/load: type-checking %s: %v", t.ImportPath, err)
		}
		res.Packages = append(res.Packages, &Package{
			ImportPath: t.ImportPath,
			Dir:        t.Dir,
			Files:      files,
			Types:      pkg,
			TypesInfo:  info,
		})
	}
	return res, nil
}
