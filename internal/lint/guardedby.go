package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"

	"repro/internal/lint/analysis"
)

// GuardedBy verifies `// guarded by <mutex>` annotations: an annotated
// struct field (or package-level variable) may only be read or written in
// functions that acquire the named mutex first.
//
// Annotation forms:
//
//	type cacheState struct {
//		mu sync.Mutex
//		m  map[string]int // guarded by mu
//	}
//
//	var (
//		mu    sync.Mutex
//		cache = map[any]*entry{} // guarded by mu
//	)
//
// The check is intraprocedural and positional: an access is considered
// protected when the enclosing function calls <mutex>.Lock() — or, for
// reads, <mutex>.RLock() — at an earlier source position. Writes under a
// read lock are reported. Composite-literal initialization and package-level
// declarations are construction, not sharing, and are exempt. Functions
// whose contract is "caller holds the lock" document the exception with
// //lint:allow guardedby <reason>.
var GuardedBy = &analysis.Analyzer{
	Name: "guardedby",
	Doc: "verify that fields annotated `// guarded by <mu>` are accessed with the mutex held\n\n" +
		"Shared caches must stay deterministic under -race; the annotation turns the\n" +
		"locking convention into a checked contract.",
	Run: runGuardedBy,
}

// guardedByRe matches only at the start of a comment line, so prose that
// merely mentions the phrase (like the example above) is not an annotation.
var guardedByRe = regexp.MustCompile(`(?m)^\s*guarded by ([A-Za-z_][A-Za-z0-9_]*)`)

// guard links one annotated object to its mutex object.
type guard struct {
	obj   types.Object // the guarded field or variable
	mutex types.Object // the mutex field or variable named in the annotation
	name  string       // mutex name as written, for messages
}

func runGuardedBy(pass *analysis.Pass) error {
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return nil
	}
	for _, file := range pass.Files {
		checkGuardedAccesses(pass, file, guards)
	}
	return nil
}

// collectGuards scans struct fields and package-level var declarations for
// `// guarded by <name>` annotations and resolves the named mutex: a
// sibling field for struct annotations, a package-scope variable otherwise.
func collectGuards(pass *analysis.Pass) map[types.Object]guard {
	info := pass.TypesInfo
	guards := map[types.Object]guard{}

	annotation := func(doc, comment *ast.CommentGroup) string {
		for _, g := range []*ast.CommentGroup{doc, comment} {
			if g == nil {
				continue
			}
			if m := guardedByRe.FindStringSubmatch(g.Text()); m != nil {
				return m[1]
			}
		}
		return ""
	}

	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			// Index sibling fields by name so the annotation can resolve.
			siblings := map[string]types.Object{}
			for _, f := range st.Fields.List {
				for _, name := range f.Names {
					siblings[name.Name] = info.Defs[name]
				}
			}
			for _, f := range st.Fields.List {
				mu := annotation(f.Doc, f.Comment)
				if mu == "" {
					continue
				}
				mobj := siblings[mu]
				if mobj == nil {
					pass.Reportf(f.Pos(), "guarded-by annotation names %q, which is not a field of this struct", mu)
					continue
				}
				for _, name := range f.Names {
					if obj := info.Defs[name]; obj != nil {
						guards[obj] = guard{obj: obj, mutex: mobj, name: mu}
					}
				}
			}
			return true
		})

		for _, d := range file.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				mu := annotation(vs.Doc, vs.Comment)
				if mu == "" && len(gd.Specs) == 1 {
					mu = annotation(gd.Doc, nil)
				}
				if mu == "" {
					continue
				}
				mobj := pass.Pkg.Scope().Lookup(mu)
				if mobj == nil {
					pass.Reportf(vs.Pos(), "guarded-by annotation names %q, which is not declared at package scope", mu)
					continue
				}
				for _, name := range vs.Names {
					if obj := info.Defs[name]; obj != nil {
						guards[obj] = guard{obj: obj, mutex: mobj, name: mu}
					}
				}
			}
		}
	}
	return guards
}

// access is one use of a guarded object.
type access struct {
	pos   token.Pos
	write bool
}

func checkGuardedAccesses(pass *analysis.Pass, file *ast.File, guards map[types.Object]guard) {
	info := pass.TypesInfo

	// writes records positions of identifiers in store position (assignment
	// LHS roots and inc/dec operands), so reads and writes can be told apart.
	writePos := map[token.Pos]bool{}
	// litKeys records identifiers used as composite-literal keys
	// (initialization, exempt) and declaration names.
	exemptPos := map[token.Pos]bool{}
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				markStoreRoot(lhs, writePos)
			}
		case *ast.IncDecStmt:
			markStoreRoot(n.X, writePos)
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					if id, ok := kv.Key.(*ast.Ident); ok {
						exemptPos[id.Pos()] = true
					}
				}
			}
		}
		return true
	})

	report := func(g guard, at token.Pos, write bool) {
		kind := "read"
		if write {
			kind = "written"
		}
		pass.Reportf(at, "%s is guarded by %s but %s without %s held in this function", g.obj.Name(), g.name, kind, g.name)
	}

	check := func(id *ast.Ident, obj types.Object) {
		g, ok := guards[obj]
		if !ok || exemptPos[id.Pos()] {
			return
		}
		fn := enclosingFunc(file, id.Pos())
		if fn == nil {
			return // package-level initialization: construction, not sharing
		}
		write := writePos[id.Pos()]
		if !lockedBefore(info, fn, g.mutex, id.Pos(), write) {
			report(g, id.Pos(), write)
		}
	}

	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if obj := info.Uses[n.Sel]; obj != nil {
				check(n.Sel, obj)
			}
		case *ast.Ident:
			// Plain identifier uses (package-level guarded vars). Selector
			// .Sel idents are visited above; Uses distinguishes them anyway
			// because field objects only appear behind selectors.
			if obj := info.Uses[n]; obj != nil {
				if _, ok := guards[obj]; ok {
					if v, isVar := obj.(*types.Var); isVar && !v.IsField() {
						check(n, obj)
					}
				}
			}
		}
		return true
	})
}

// markStoreRoot records the innermost identifier of an lvalue (x, x.f,
// x.f[i], *x.f ...) as being in write position.
func markStoreRoot(e ast.Expr, writePos map[token.Pos]bool) {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			writePos[x.Sel.Pos()] = true
			return
		case *ast.Ident:
			writePos[x.Pos()] = true
			return
		default:
			return
		}
	}
}

// lockedBefore reports whether fn calls mutex.Lock() — or mutex.RLock() for
// read accesses — at a position before pos.
func lockedBefore(info *types.Info, fn *ast.FuncDecl, mutex types.Object, pos token.Pos, write bool) bool {
	held := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if held {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() >= pos {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		name := sel.Sel.Name
		if name != "Lock" && !(name == "RLock" && !write) {
			return true
		}
		if rootObj(info, sel.X) == mutex {
			held = true
		}
		return !held
	})
	return held
}
