package lint

import (
	"go/ast"
	"go/token"

	"repro/internal/lint/analysis"
)

// FloatAccum enforces the numeric invariant of the attention kernels: long
// reductions accumulate through the float64 Partial/Stats machinery (wide
// running statistics, one conversion at the boundary), never by repeated
// float32 `+=` in a loop, where error grows with sequence length and the
// result depends on the accumulation schedule.
//
// The analyzer flags `+=`/`-=` on a float32 lvalue inside any for/range
// loop. Kernels that model the accelerator's FP32 MAC datapath on purpose
// (tensor.Dot's unrolled lanes, the Partial value accumulator itself)
// declare that intent with a `//lint:allow floataccum <reason>` doc comment,
// which doubles as documentation of the numeric contract.
var FloatAccum = &analysis.Analyzer{
	Name: "floataccum",
	Doc: "forbid raw float32 loop accumulation outside the float64 Partial machinery\n\n" +
		"Per-token softmax statistics and long reductions must accumulate in float64\n" +
		"(attention.Partial / attention.Stats); float32 += in a loop silently loses\n" +
		"precision as context length grows.",
	Packages: []string{"internal/attention", "internal/tensor", "internal/fp16", "internal/accel"},
	Run:      runFloatAccum,
}

func runFloatAccum(pass *analysis.Pass) error {
	info := pass.TypesInfo
	for _, file := range pass.Files {
		// Record the source span of every for/range statement; an
		// accumulation anywhere inside one (body or header) runs repeatedly.
		type span struct{ pos, end token.Pos }
		var loops []span
		ast.Inspect(file, func(n ast.Node) bool {
			switch n.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				loops = append(loops, span{n.Pos(), n.End()})
			}
			return true
		})
		inLoop := func(p token.Pos) bool {
			for _, l := range loops {
				if p >= l.pos && p < l.end {
					return true
				}
			}
			return false
		}
		ast.Inspect(file, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || (as.Tok != token.ADD_ASSIGN && as.Tok != token.SUB_ASSIGN) || !inLoop(as.Pos()) {
				return true
			}
			if tv, ok := info.Types[as.Lhs[0]]; ok {
				if _, is32 := isFloat(tv.Type); is32 {
					pass.Reportf(as.Pos(), "float32 accumulation in a loop; accumulate in float64 (attention.Partial/Stats) and convert once at the boundary, or declare the modeled FP32 datapath with //lint:allow floataccum <reason>")
				}
			}
			return true
		})
	}
	return nil
}
