// Package lint implements hilos-lint: four static analyzers that turn the
// simulator's determinism, numeric and concurrency conventions into
// machine-checked invariants (see the package-level doc.go Invariants
// section at the repository root):
//
//   - simdeterminism — no wall-clock, entropy or map-iteration-order leaks
//     in the simulation packages;
//   - floataccum — no raw float32 loop accumulation in the numeric kernels
//     outside the float64 Partial/Stats machinery;
//   - guardedby — fields annotated `// guarded by <mu>` are only touched
//     with the named mutex held;
//   - heapsafe — priority-ordering fields of indexed-heap items are only
//     mutated on the heap's own maintenance paths.
//
// Deliberate exceptions are annotated in source with
// `//lint:allow <rule> <reason>` (line, declaration or package scope —
// see internal/lint/analysis). The cmd/hilos-lint driver wires the suite
// into CI.
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/lint/analysis"
	"repro/internal/lint/load"
)

// Analyzers returns the hilos-lint suite in documentation order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{SimDeterminism, FloatAccum, GuardedBy, HeapSafe}
}

// ByName returns the analyzer with the given rule name.
func ByName(name string) (*analysis.Analyzer, bool) {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a, true
		}
	}
	return nil, false
}

// Run executes the analyzers over the loaded packages, honoring each
// analyzer's package scope (unless force is set, which the fixture tests
// use) and the //lint:allow suppressions, and returns the surviving
// diagnostics in file/position order.
func Run(res *load.Result, analyzers []*analysis.Analyzer, force bool) ([]analysis.Diagnostic, error) {
	var diags []analysis.Diagnostic
	for _, pkg := range res.Packages {
		var pkgDiags []analysis.Diagnostic
		for _, a := range analyzers {
			if !force && !a.AppliesTo(pkg.ImportPath) {
				continue
			}
			pass := analysis.NewPass(a, res.Fset, pkg.Files, pkg.Types, pkg.TypesInfo, &pkgDiags)
			if err := a.Run(pass); err != nil {
				return nil, err
			}
		}
		allows := analysis.CollectAllows(res.Fset, pkg.Files)
		diags = append(diags, allows.Filter(pkgDiags)...)
	}
	sort.Slice(diags, func(i, j int) bool {
		pi, pj := res.Fset.Position(diags[i].Pos), res.Fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Rule < diags[j].Rule
	})
	return diags, nil
}

// helpers shared by the analyzers

// funcObj resolves a call expression to the *types.Func it invokes, or nil
// for builtins, conversions and indirect calls through variables.
func funcObj(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// qualifiedName returns "pkgpath.Name" for package-level functions and
// "pkgpath.recv.Name" for methods, or "" when the object has no package.
func qualifiedName(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return fn.Pkg().Path() + "." + named.Obj().Name() + "." + fn.Name()
		}
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

// rootObj returns the object anchoring an lvalue or value expression: the
// field object for selector chains, the variable object for plain
// identifiers, unwrapping parens, stars and index expressions.
func rootObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			return info.Uses[x.Sel]
		case *ast.Ident:
			if o := info.Uses[x]; o != nil {
				return o
			}
			return info.Defs[x]
		default:
			return nil
		}
	}
}

// usesObject reports whether the expression subtree references obj.
func usesObject(info *types.Info, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && (info.Uses[id] == obj || info.Defs[id] == obj) {
			found = true
		}
		return !found
	})
	return found
}

// isFloat reports whether the type's core is a floating-point basic type,
// and whether that basic type is exactly float32.
func isFloat(t types.Type) (isFloat, isFloat32 bool) {
	if t == nil {
		return false, false
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false, false
	}
	switch b.Kind() {
	case types.Float32:
		return true, true
	case types.Float64:
		return true, false
	}
	return false, false
}

// enclosingFunc returns the FuncDecl in file containing pos, or nil.
func enclosingFunc(file *ast.File, pos token.Pos) *ast.FuncDecl {
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil && pos >= fd.Pos() && pos < fd.End() {
			return fd
		}
	}
	return nil
}
