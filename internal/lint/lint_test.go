package lint

import (
	"fmt"
	"regexp"
	"sort"
	"strings"
	"testing"

	"repro/internal/lint/analysis"
	"repro/internal/lint/load"
)

// wantRe extracts expectations from fixture comments: `want "regexp"`.
var wantRe = regexp.MustCompile(`want "([^"]+)"`)

// checkFixture loads testdata/src/<dir>, runs the analyzer over it (force
// bypasses the analyzer's package scoping, since fixture import paths contain
// "testdata"), and matches the surviving diagnostics against the fixture's
// `// want "regexp"` comments: every want must be matched by a diagnostic on
// its line, and every diagnostic must be claimed by a want.
func checkFixture(t *testing.T, a *analysis.Analyzer, dir string) {
	t.Helper()
	res, err := load.Load(".", "./testdata/src/"+dir)
	if err != nil {
		t.Fatalf("load fixture %s: %v", dir, err)
	}
	if len(res.Packages) != 1 {
		t.Fatalf("fixture %s loaded %d packages, want 1", dir, len(res.Packages))
	}
	diags, err := Run(res, []*analysis.Analyzer{a}, true)
	if err != nil {
		t.Fatalf("run %s on %s: %v", a.Name, dir, err)
	}

	type key struct {
		file string
		line int
	}
	wants := map[key][]*regexp.Regexp{}
	for _, f := range res.Packages[0].Files {
		for _, g := range f.Comments {
			for _, c := range g.List {
				for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", res.Fset.Position(c.Pos()), m[1], err)
					}
					p := res.Fset.Position(c.Pos())
					wants[key{p.Filename, p.Line}] = append(wants[key{p.Filename, p.Line}], re)
				}
			}
		}
	}

	for _, d := range diags {
		p := res.Fset.Position(d.Pos)
		k := key{p.Filename, p.Line}
		matched := -1
		for i, re := range wants[k] {
			if re.MatchString(d.Message) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("%s: unexpected %s diagnostic: %s", p, d.Rule, d.Message)
			continue
		}
		wants[k] = append(wants[k][:matched], wants[k][matched+1:]...)
	}
	var missed []string
	for k, res := range wants {
		for _, re := range res {
			missed = append(missed, fmt.Sprintf("%s:%d: no diagnostic matching %q", k.file, k.line, re))
		}
	}
	sort.Strings(missed)
	for _, m := range missed {
		t.Error(m)
	}
}

func TestSimDeterminismFixture(t *testing.T) { checkFixture(t, SimDeterminism, "simdet") }

// TestWorkerPoolFixture pins the completion-order checks: collect-as-they-
// finish shapes are flagged, the sanctioned index-ordered-assembly and
// fixed-tree-reduction shapes lint clean with no //lint:allow.
func TestWorkerPoolFixture(t *testing.T) { checkFixture(t, SimDeterminism, "workerpool") }
func TestFloatAccumFixture(t *testing.T) { checkFixture(t, FloatAccum, "floataccum") }
func TestGuardedByFixture(t *testing.T)  { checkFixture(t, GuardedBy, "guardedby") }
func TestHeapSafeFixture(t *testing.T)   { checkFixture(t, HeapSafe, "heapsafe") }

// TestPackageScopeSuppression checks that a //lint:allow in the package doc
// silences the whole package: the fixture contains violations but no wants.
func TestPackageScopeSuppression(t *testing.T) { checkFixture(t, SimDeterminism, "simdetallow") }

// TestAnalyzersOnRepo runs the full suite over the repository the same way
// cmd/hilos-lint does in CI and requires a clean bill: every deliberate
// exception must carry its //lint:allow annotation.
func TestAnalyzersOnRepo(t *testing.T) {
	res, err := load.Load("../..", "./...")
	if err != nil {
		t.Fatalf("load ./...: %v", err)
	}
	diags, err := Run(res, Analyzers(), false)
	if err != nil {
		t.Fatalf("run suite: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s: %s: %s", res.Fset.Position(d.Pos), d.Rule, d.Message)
	}
}

// TestByName pins the driver's rule-name lookup.
func TestByName(t *testing.T) {
	for _, a := range Analyzers() {
		got, ok := ByName(a.Name)
		if !ok || got != a {
			t.Errorf("ByName(%q) = %v, %v", a.Name, got, ok)
		}
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName(nope) unexpectedly found an analyzer")
	}
}

// TestScoping pins the package scoping used when force is off: fixture
// paths under testdata must not leak into a ./... run's analyzer scopes.
func TestScoping(t *testing.T) {
	if SimDeterminism.AppliesTo("repro/internal/sim") != true {
		t.Error("simdeterminism must apply to internal/sim")
	}
	// The parallel kernels joined the scope in PR 8: their worker-pool
	// dataflow must satisfy the completion-order rules directly.
	if !SimDeterminism.AppliesTo("repro/internal/attention") {
		t.Error("simdeterminism must apply to internal/attention")
	}
	if !SimDeterminism.AppliesTo("repro/internal/tensor") {
		t.Error("simdeterminism must apply to internal/tensor")
	}
	if SimDeterminism.AppliesTo("repro/internal/fp16") {
		t.Error("simdeterminism must not apply to internal/fp16")
	}
	if !strings.Contains(FloatAccum.Doc, "float32") {
		t.Error("floataccum doc should explain the float32 rule")
	}
}
