package analysis

import (
	"go/ast"
	"go/token"
	"regexp"
)

// allowRe matches the suppression escape hatch:
//
//	//lint:allow <rule> <reason>
//
// The reason is free text and strongly encouraged (reviews read it), but the
// match only requires the rule name so a missing reason never re-arms a
// deliberately silenced diagnostic.
var allowRe = regexp.MustCompile(`^//lint:allow\s+([a-zA-Z0-9_-]+)(?:\s+(.*))?$`)

// Allows is the set of //lint:allow suppressions collected from one package,
// resolved to three scopes:
//
//   - package: the comment sits in a file's package doc comment (or any
//     comment group attached to the package clause) — the whole package is
//     exempt from the rule;
//   - decl: the comment sits in the doc comment of a top-level declaration —
//     that declaration's source range is exempt;
//   - line: any other comment — the comment's own line and the line directly
//     below it are exempt, so both trailing and preceding placement work.
type Allows struct {
	fset *token.FileSet
	pkg  map[string]bool
	decl []declAllow
	line map[lineKey]bool
}

type declAllow struct {
	rule     string
	pos, end token.Pos
}

type lineKey struct {
	file string
	line int
	rule string
}

// CollectAllows scans the files' comments for //lint:allow directives.
func CollectAllows(fset *token.FileSet, files []*ast.File) *Allows {
	a := &Allows{
		fset: fset,
		pkg:  map[string]bool{},
		line: map[lineKey]bool{},
	}
	for _, f := range files {
		// Doc comments of top-level declarations suppress over the whole
		// declaration; note which groups those are so the comment walk below
		// can classify the rest as line-scoped.
		declDoc := map[*ast.CommentGroup]*declAllow{}
		for _, d := range f.Decls {
			var doc *ast.CommentGroup
			switch d := d.(type) {
			case *ast.FuncDecl:
				doc = d.Doc
			case *ast.GenDecl:
				doc = d.Doc
			}
			if doc != nil {
				declDoc[doc] = &declAllow{pos: d.Pos(), end: d.End()}
			}
		}
		for _, g := range f.Comments {
			for _, c := range g.List {
				m := allowRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				rule := m[1]
				switch {
				case g == f.Doc:
					a.pkg[rule] = true
				case declDoc[g] != nil:
					d := *declDoc[g]
					d.rule = rule
					a.decl = append(a.decl, d)
				default:
					pos := fset.Position(c.Pos())
					a.line[lineKey{pos.Filename, pos.Line, rule}] = true
					a.line[lineKey{pos.Filename, pos.Line + 1, rule}] = true
				}
			}
		}
	}
	return a
}

// Allowed reports whether a diagnostic of the given rule at pos is
// suppressed.
func (a *Allows) Allowed(rule string, pos token.Pos) bool {
	if a.pkg[rule] {
		return true
	}
	for _, d := range a.decl {
		if d.rule == rule && pos >= d.pos && pos < d.end {
			return true
		}
	}
	p := a.fset.Position(pos)
	return a.line[lineKey{p.Filename, p.Line, rule}]
}

// Filter drops suppressed diagnostics.
func (a *Allows) Filter(diags []Diagnostic) []Diagnostic {
	out := diags[:0]
	for _, d := range diags {
		if !a.Allowed(d.Rule, d.Pos) {
			out = append(out, d)
		}
	}
	return out
}
