// Package analysis is a minimal, self-contained re-implementation of the
// golang.org/x/tools/go/analysis vocabulary — Analyzer, Pass, Diagnostic —
// for the repository's custom linters. The build environment is hermetic
// (no module proxy), so the suite cannot depend on x/tools; the subset
// implemented here is exactly what the four hilos-lint analyzers need, with
// the same shape as the upstream API so a future migration is mechanical.
//
// An Analyzer inspects one type-checked package at a time through a Pass and
// reports Diagnostics. Scoping (which packages an analyzer patrols) and
// suppression (//lint:allow comments) are handled by the framework, not by
// each analyzer: Run functions always report every match they see.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one named invariant checker.
type Analyzer struct {
	// Name is the rule identifier used in diagnostics and in
	// //lint:allow <name> suppression comments.
	Name string
	// Doc describes the invariant the analyzer enforces. The first line is
	// the one-line summary shown by `hilos-lint -list`.
	Doc string
	// Packages holds import-path substrings selecting the packages this
	// analyzer patrols by default (e.g. "internal/sim"). Nil means every
	// package. Test harnesses bypass the scope and run analyzers directly.
	Packages []string
	// Run inspects one package and reports diagnostics via pass.Reportf.
	Run func(*Pass) error
}

// AppliesTo reports whether the analyzer's default scope covers the package
// with the given import path.
func (a *Analyzer) AppliesTo(importPath string) bool {
	if len(a.Packages) == 0 {
		return true
	}
	for _, p := range a.Packages {
		if contains(importPath, p) {
			return true
		}
	}
	return false
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// Pass presents one type-checked package to an analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// NewPass assembles a Pass that appends diagnostics to sink.
func NewPass(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, sink *[]Diagnostic) *Pass {
	return &Pass{Analyzer: a, Fset: fset, Files: files, Pkg: pkg, TypesInfo: info, diags: sink}
}

// Reportf records one diagnostic at pos, tagged with the analyzer's name.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     pos,
		Rule:    p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one reported invariant violation.
type Diagnostic struct {
	Pos     token.Pos
	Rule    string
	Message string
}
