package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// HeapSafe protects the ordering invariant of internal/sim's indexed
// min-heaps: once an item sits in a heap, the fields its comparison
// functions read (Task.ready, Task.id, Resource.free, the candidate keys)
// must only change on the heap's own maintenance paths — otherwise the heap
// silently stops being a heap and the scheduler's earliest-start policy
// decays into an arbitrary one.
//
// The analyzer discovers the ordering fields from the package itself: every
// field a comparison function (name starting with "less", or the candidate
// provider "best") selects from its parameters or receiver is
// order-bearing. Mutations are then allowed in two places only:
//
//   - functions declared in the same file as the comparison functions (the
//     heap implementation file, e.g. heap.go), and
//   - elsewhere, assignments that are re-heapified afterwards in the same
//     function — a later call to fix/push/pop/enqueue (any case).
//
// Everything else is reported. Code that predates the heaps and never
// stores items in one (e.g. the retained O(n²) reference scheduler)
// documents that with //lint:allow heapsafe <reason>.
var HeapSafe = &analysis.Analyzer{
	Name: "heapsafe",
	Doc: "forbid mutating heap-ordering fields outside the heap's Fix/Push/Pop paths\n\n" +
		"Mutating a key field of an item inside an indexed min-heap without\n" +
		"re-heapifying breaks the heap invariant silently; the scheduler then runs\n" +
		"tasks in a wrong but plausible order.",
	Packages: []string{"internal/sim"},
	Run:      runHeapSafe,
}

// reheapNames are callee names that restore the heap invariant after a key
// mutation.
var reheapNames = map[string]bool{
	"fix": true, "push": true, "pop": true, "enqueue": true,
	"Fix": true, "Push": true, "Pop": true, "Enqueue": true,
}

func runHeapSafe(pass *analysis.Pass) error {
	fields, implFiles := orderingFields(pass)
	if len(fields) == 0 {
		return nil
	}
	for _, file := range pass.Files {
		fname := pass.Fset.Position(file.Pos()).Filename
		if implFiles[fname] {
			continue // the heap implementation file maintains its own invariant
		}
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkHeapMutations(pass, fd, fields)
		}
	}
	return nil
}

// orderingFields returns the set of field objects read by the package's
// comparison functions, plus the files those functions are declared in.
func orderingFields(pass *analysis.Pass) (map[types.Object]bool, map[string]bool) {
	info := pass.TypesInfo
	fields := map[types.Object]bool{}
	implFiles := map[string]bool{}
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			name := fd.Name.Name
			if !strings.HasPrefix(strings.ToLower(name), "less") && name != "best" {
				continue
			}
			implFiles[pass.Fset.Position(file.Pos()).Filename] = true
			// Parameters and receiver are the compared items.
			params := map[types.Object]bool{}
			if fd.Recv != nil {
				for _, f := range fd.Recv.List {
					for _, n := range f.Names {
						params[info.Defs[n]] = true
					}
				}
			}
			if fd.Type.Params != nil {
				for _, f := range fd.Type.Params.List {
					for _, n := range f.Names {
						params[info.Defs[n]] = true
					}
				}
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				base, ok := ast.Unparen(sel.X).(*ast.Ident)
				if !ok || !params[info.Uses[base]] {
					return true
				}
				if obj := info.Uses[sel.Sel]; obj != nil {
					if v, isVar := obj.(*types.Var); isVar && v.IsField() {
						fields[obj] = true
					}
				}
				return true
			})
		}
	}
	return fields, implFiles
}

func checkHeapMutations(pass *analysis.Pass, fd *ast.FuncDecl, fields map[types.Object]bool) {
	info := pass.TypesInfo
	type mutation struct {
		pos  token.Pos
		name string
	}
	var muts []mutation
	record := func(lhs ast.Expr, pos token.Pos) {
		sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
		if !ok {
			return
		}
		obj := info.Uses[sel.Sel]
		if obj == nil || !fields[obj] {
			return
		}
		muts = append(muts, mutation{pos: pos, name: obj.Name()})
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				record(lhs, n.Pos())
			}
		case *ast.IncDecStmt:
			record(n.X, n.Pos())
		}
		return true
	})
	if len(muts) == 0 {
		return
	}
	// A later re-heapify call in the same function legitimizes every
	// mutation before it (the enqueue/fix pattern Run uses).
	var lastReheap token.Pos = token.NoPos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var name string
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			name = fun.Name
		case *ast.SelectorExpr:
			name = fun.Sel.Name
		}
		if reheapNames[name] && call.Pos() > lastReheap {
			lastReheap = call.Pos()
		}
		return true
	})
	for _, m := range muts {
		if lastReheap != token.NoPos && m.pos < lastReheap {
			continue
		}
		pass.Reportf(m.pos, "heap-ordering field %s mutated outside the heap's Fix/Push/Pop paths; re-heapify after the write or move the mutation into the heap implementation", m.name)
	}
}
