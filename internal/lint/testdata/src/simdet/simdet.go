// Package simdet exercises every pattern the simdeterminism analyzer flags,
// plus the deterministic idioms it must leave alone.
package simdet

import (
	crand "crypto/rand"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"time"
)

func clocks() time.Duration {
	start := time.Now()      // want "wall-clock time\.Now"
	return time.Since(start) // want "wall-clock time\.Since"
}

func env() string {
	return os.Getenv("HILOS_DEBUG") // want "process environment"
}

func globalRand() int {
	return rand.Intn(10) // want "global math/rand source"
}

func hardwareRand() []byte {
	b := make([]byte, 8)
	crand.Read(b) // want "crypto/rand"
	return b
}

// seededRand draws from an explicitly seeded stream: reproducible, allowed.
func seededRand(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

func appendUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "append inside range over map"
	}
	return keys
}

// appendSorted is the collect-then-sort idiom: deterministic, not flagged.
func appendSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sendOrder(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k // want "channel send inside range over map"
	}
}

func printOrder(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want "fmt\.Println inside range over map"
	}
}

func floatSum(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		total += v // want "floating-point accumulation inside range over map"
	}
	return total
}

// intSum commutes exactly; integer accumulation is not flagged.
func intSum(m map[string]int) int {
	var total int
	for _, v := range m {
		total += v
	}
	return total
}

// perKey updates are keyed by the range variable, so the result is
// independent of iteration order.
func perKey(m, out map[string]float64) {
	for k, v := range m {
		out[k] += v
	}
}

// suppressed shows the line-scope escape hatch.
func suppressed() time.Time {
	//lint:allow simdeterminism fixture exercises line-scope suppression
	return time.Now()
}
