// Package heapsafe exercises the heap-ordering-field mutation rule. This
// file plays the role of internal/sim's heap.go: it declares the comparison
// functions, so mutations here are the heap maintaining itself.
package heapsafe

type item struct {
	key int
	id  int
	val string
}

func lessKey(a, b *item) bool {
	if a.key != b.key {
		return a.key < b.key
	}
	return a.id < b.id
}

type pile struct{ items []*item }

func (h *pile) Push(it *item) {
	h.items = append(h.items, it)
}

func (h *pile) Fix(i int) {
	_ = lessKey(h.items[0], h.items[i])
}

// reorder lives in the implementation file, so its direct mutation is fine.
func (h *pile) reorder(it *item, k int) {
	it.key = k
}
