package heapsafe

func retune(it *item, k int) {
	it.key = k // want "heap-ordering field key mutated outside"
}

func retuneID(it *item) {
	it.id++ // want "heap-ordering field id mutated outside"
}

// retuneFixed re-heapifies after the mutation, restoring the invariant.
func retuneFixed(h *pile, it *item, k int) {
	it.key = k
	h.Fix(0)
}

// rename touches a field no comparison function reads.
func rename(it *item, s string) {
	it.val = s
}

// suppressed documents a deliberate out-of-heap mutation.
func suppressed(it *item, k int) {
	it.key = k //lint:allow heapsafe fixture exercises line-scope suppression
}
