// Package workerpool exercises the completion-order checks of the
// simdeterminism analyzer: the forbidden collect-as-they-finish shapes, and
// the sanctioned index-ordered-assembly / fixed-tree-reduction shapes that
// must lint clean without any //lint:allow.
package workerpool

import "sort"

// collectCompletionOrder is the forbidden shape: results append in whatever
// order workers finish, so two runs order (and float-fold) differently.
func collectCompletionOrder(ch chan float64, n int) []float64 {
	var out []float64
	for v := range ch {
		out = append(out, v) // want "append inside range over channel"
	}
	return out
}

// sumCompletionOrder folds floats as they arrive: scheduler-ordered addition.
func sumCompletionOrder(ch chan float64, n int) float64 {
	var sum float64
	for v := range ch {
		sum += v // want "floating-point accumulation inside range over channel"
	}
	return sum
}

// drainRecvAppend is the same defect without a range statement.
func drainRecvAppend(ch chan float64, n int) []float64 {
	var out []float64
	for i := 0; i < n; i++ {
		out = append(out, <-ch) // want "append of a channel receive"
	}
	return out
}

// sumRecv accumulates receives directly: still completion order.
func sumRecv(ch chan float64, n int) float64 {
	var sum float64
	for i := 0; i < n; i++ {
		sum += <-ch // want "floating-point accumulation of a channel receive"
	}
	return sum
}

// indexOrderedAssembly is the sanctioned worker-pool shape: every item
// writes only its own slot, so the assembled slice is a pure function of the
// inputs no matter which worker ran which item when. Not flagged.
func indexOrderedAssembly(work []func() float64) []float64 {
	out := make([]float64, len(work))
	done := make(chan struct{})
	queue := make(chan int)
	go func() {
		for i := range queue {
			out[i] = work[i]()
		}
		close(done)
	}()
	for i := range work {
		queue <- i
	}
	close(queue)
	<-done
	return out
}

// fixedTreeReduce is the sanctioned reduction: index-owned slots combined
// with a stride-doubling tree whose shape depends only on len(parts). Not
// flagged — no channel ever carries a result.
func fixedTreeReduce(parts []float64) float64 {
	for stride := 1; stride < len(parts); stride *= 2 {
		for i := 0; i+stride < len(parts); i += 2 * stride {
			parts[i] += parts[i+stride]
		}
	}
	return parts[0]
}

// collectThenSort restores a deterministic order before anyone reads the
// slice: allowed, same escape as the map-range idiom.
func collectThenSort(ch chan float64, n int) []float64 {
	var out []float64
	for v := range ch {
		out = append(out, v)
	}
	sort.Float64s(out)
	return out
}

// perItemLocal appends into a slice declared inside the loop body: order
// cannot leak across iterations. Not flagged.
func perItemLocal(ch chan []float64) int {
	total := 0
	for vs := range ch {
		var pair []float64
		pair = append(pair, vs...)
		total += len(pair)
	}
	return total
}
