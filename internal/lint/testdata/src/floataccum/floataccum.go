// Package floataccum exercises the float32 loop-accumulation rule.
package floataccum

func sum32(xs []float32) float32 {
	var s float32
	for _, x := range xs {
		s += x // want "float32 accumulation in a loop"
	}
	return s
}

// sum64 accumulates wide and converts once at the boundary: the sanctioned
// pattern.
func sum64(xs []float32) float32 {
	var s float64
	for _, x := range xs {
		s += float64(x)
	}
	return float32(s)
}

// once is straight-line float32 arithmetic, not a loop accumulation.
func once(a, b float32) float32 {
	a += b
	return a
}

func sub32(xs []float32) float32 {
	var s float32
	for i := 0; i < len(xs); i++ {
		s -= xs[i] // want "float32 accumulation in a loop"
	}
	return s
}

// lanes deliberately models an FP32 MAC datapath; the decl-scope allow
// covers every accumulation in the function.
//
//lint:allow floataccum fixture exercises decl-scope suppression
func lanes(xs []float32) float32 {
	var s0, s1 float32
	for i := 0; i+1 < len(xs); i += 2 {
		s0 += xs[i]
		s1 += xs[i+1]
	}
	return s0 + s1
}
