// Package guardedby exercises the `// guarded by <mu>` annotation checker.
package guardedby

import "sync"

type cacheState struct {
	mu sync.Mutex
	n  int // guarded by mu
}

func (c *cacheState) good() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func (c *cacheState) bad() int {
	return c.n // want "n is guarded by mu but read without mu held"
}

func (c *cacheState) badWrite(v int) {
	c.n = v // want "n is guarded by mu but written without mu held"
}

type rw struct {
	mu sync.RWMutex
	m  map[string]int // guarded by mu
}

func (r *rw) read(k string) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.m[k]
}

func (r *rw) write(k string, v int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.m[k] = v
}

// badRLockWrite holds only the read lock across a write.
func (r *rw) badRLockWrite(k string, v int) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	r.m[k] = v // want "m is guarded by mu but written without mu held"
}

// construct builds the struct before it is shared: composite-literal keys
// are initialization, not access.
func construct() *rw {
	return &rw{m: map[string]int{}}
}

var (
	gmu   sync.Mutex
	count int // guarded by gmu
)

func incr() {
	gmu.Lock()
	count++
	gmu.Unlock()
}

func badIncr() {
	count++ // want "count is guarded by gmu but written without gmu held"
}

type broken struct {
	x int // guarded by nope want "not a field of this struct"
}
