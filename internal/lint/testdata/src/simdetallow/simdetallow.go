// Package simdetallow is exempt from simdeterminism wholesale: the
// package-doc suppression below must silence every diagnostic in the file.
//
//lint:allow simdeterminism fixture exercises package-scope suppression
package simdetallow

import "time"

func Now() time.Time { return time.Now() }

func Keys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}
