package fp16

import (
	"math"
	"testing"
	"testing/quick"
)

func TestExactValues(t *testing.T) {
	cases := []struct {
		f    float32
		want Bits
	}{
		{0, 0x0000},
		{float32(math.Copysign(0, -1)), 0x8000},
		{1, 0x3C00},
		{-1, 0xBC00},
		{2, 0x4000},
		{0.5, 0x3800},
		{65504, 0x7BFF},
		{-65504, 0xFBFF},
		{6.103515625e-05, 0x0400},       // smallest normal
		{5.960464477539063e-08, 0x0001}, // smallest subnormal
		{float32(math.Inf(1)), 0x7C00},
		{float32(math.Inf(-1)), 0xFC00},
	}
	for _, c := range cases {
		if got := FromFloat32(c.f); got != c.want {
			t.Errorf("FromFloat32(%g) = %#04x, want %#04x", c.f, got, c.want)
		}
		if !math.IsNaN(float64(c.f)) {
			if back := ToFloat32(c.want); back != c.f {
				t.Errorf("ToFloat32(%#04x) = %g, want %g", c.want, back, c.f)
			}
		}
	}
}

func TestOverflowToInf(t *testing.T) {
	if got := FromFloat32(65520); got != infBits {
		t.Errorf("FromFloat32(65520) = %#04x, want +Inf (%#04x)", got, infBits)
	}
	if got := FromFloat32(1e10); got != infBits {
		t.Errorf("FromFloat32(1e10) = %#04x, want +Inf", got)
	}
	if got := FromFloat32(-1e10); got != infBits|signMask {
		t.Errorf("FromFloat32(-1e10) = %#04x, want -Inf", got)
	}
}

func TestNaNPreserved(t *testing.T) {
	h := FromFloat32(float32(math.NaN()))
	if IsFinite(h) || h&fracMask == 0 {
		t.Errorf("NaN not preserved: %#04x", h)
	}
	if !math.IsNaN(float64(ToFloat32(h))) {
		t.Errorf("ToFloat32(NaN bits) not NaN")
	}
}

func TestUnderflowToZero(t *testing.T) {
	if got := FromFloat32(1e-10); got != 0 {
		t.Errorf("FromFloat32(1e-10) = %#04x, want 0", got)
	}
	if got := FromFloat32(-1e-10); got != signMask {
		t.Errorf("FromFloat32(-1e-10) = %#04x, want -0", got)
	}
}

func TestRoundToNearestEven(t *testing.T) {
	// 1 + 2^-11 is exactly halfway between 1 and 1+2^-10; ties go to even (1).
	f := float32(1) + float32(math.Ldexp(1, -11))
	if got := Round(f); got != 1 {
		t.Errorf("Round(1+2^-11) = %g, want 1 (round to even)", got)
	}
	// 1 + 3*2^-11 is halfway between 1+2^-10 and 1+2^-9; ties to even (1+2^-9).
	f = float32(1) + 3*float32(math.Ldexp(1, -11))
	want := float32(1) + float32(math.Ldexp(1, -9))
	if got := Round(f); got != want {
		t.Errorf("Round(1+3*2^-11) = %g, want %g", got, want)
	}
}

// TestRoundTripProperty checks that every representable half value survives a
// float32 round trip unchanged.
func TestRoundTripProperty(t *testing.T) {
	for b := 0; b < 1<<16; b++ {
		h := Bits(b)
		f := ToFloat32(h)
		if math.IsNaN(float64(f)) {
			continue // NaN payload need not be preserved bit-exactly
		}
		if got := FromFloat32(f); got != h {
			t.Fatalf("round trip %#04x -> %g -> %#04x", h, f, got)
		}
	}
}

// TestRoundIdempotent: quantizing twice equals quantizing once.
func TestRoundIdempotent(t *testing.T) {
	f := func(x float32) bool {
		a := Round(x)
		if math.IsNaN(float64(a)) {
			return math.IsNaN(float64(Round(a)))
		}
		return Round(a) == a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// TestRoundErrorBound: relative quantization error of normal-range values is
// at most one half ULP (2^-11 relative).
func TestRoundErrorBound(t *testing.T) {
	f := func(x float32) bool {
		ax := float64(math.Abs(float64(x)))
		if ax < minNormalF32 || ax > float64(MaxValue) || math.IsNaN(float64(x)) {
			return true
		}
		r := Round(x)
		rel := math.Abs(float64(r)-float64(x)) / ax
		return rel <= float64(Eps)/2+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10000}); err != nil {
		t.Error(err)
	}
}

// TestMonotone: quantization preserves ordering.
func TestMonotone(t *testing.T) {
	f := func(a, b float32) bool {
		if math.IsNaN(float64(a)) || math.IsNaN(float64(b)) {
			return true
		}
		if a > b {
			a, b = b, a
		}
		return Round(a) <= Round(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10000}); err != nil {
		t.Error(err)
	}
}

func TestRoundSlice(t *testing.T) {
	s := []float32{1.0002441, -3.14159, 65504, 0}
	RoundSlice(s)
	for i, v := range s {
		if Round(v) != v {
			t.Errorf("element %d not quantized: %g", i, v)
		}
	}
}
