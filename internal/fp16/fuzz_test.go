package fp16

import (
	"math"
	"testing"
)

// FuzzRoundTrip checks the core conversion invariants on arbitrary bit
// patterns: idempotence, ordering preservation, and exact round trips for
// representable values.
func FuzzRoundTrip(f *testing.F) {
	for _, seed := range []uint32{0, 1, 0x3F800000, 0x7F800000, 0x7FC00000, 0x80000000, 0x477FE000} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, bits uint32) {
		x := math.Float32frombits(bits)
		r := Round(x)
		if math.IsNaN(float64(x)) {
			if !math.IsNaN(float64(r)) {
				t.Fatalf("NaN input produced %v", r)
			}
			return
		}
		// Idempotence.
		if Round(r) != r {
			t.Fatalf("Round not idempotent: %v -> %v -> %v", x, r, Round(r))
		}
		// The rounded value is representable: its half bits survive a trip.
		h := FromFloat32(r)
		if ToFloat32(h) != r {
			t.Fatalf("rounded value %v not representable (bits %#04x)", r, h)
		}
		// Sign preservation (except for underflow-to-zero, where the sign
		// of zero is kept too).
		if math.Signbit(float64(x)) != math.Signbit(float64(r)) {
			t.Fatalf("sign changed: %v -> %v", x, r)
		}
	})
}

// FuzzMonotone checks ordering preservation on arbitrary pairs.
func FuzzMonotone(f *testing.F) {
	f.Add(uint32(0x3F800000), uint32(0x40000000))
	f.Fuzz(func(t *testing.T, a, b uint32) {
		x, y := math.Float32frombits(a), math.Float32frombits(b)
		if math.IsNaN(float64(x)) || math.IsNaN(float64(y)) {
			return
		}
		if x > y {
			x, y = y, x
		}
		if Round(x) > Round(y) {
			t.Fatalf("ordering violated: Round(%v)=%v > Round(%v)=%v", x, Round(x), y, Round(y))
		}
	})
}
