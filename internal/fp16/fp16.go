// Package fp16 emulates IEEE 754 binary16 ("half precision") storage.
//
// The HILOS accelerator stores K/V/X tensors in FP16 and accumulates in FP32
// (§5.4 of the paper). This package provides the conversions used to emulate
// that storage format on top of Go's float32: values are quantized with
// round-to-nearest-even, including subnormals, infinities and NaN.
package fp16

import "math"

// Bits is a raw IEEE 754 binary16 value.
type Bits uint16

const (
	signMask     = 0x8000
	expMask      = 0x7C00
	fracMask     = 0x03FF
	expBias      = 15
	fracBits     = 10
	maxFinite    = 0x7BFF // 65504
	infBits      = 0x7C00
	nanBits      = 0x7E00
	minNormalF32 = 6.103515625e-05 // 2^-14
)

// FromFloat32 converts a float32 to the nearest binary16 value using
// round-to-nearest-even, producing ±Inf on overflow and preserving NaN.
func FromFloat32(f float32) Bits {
	b := math.Float32bits(f)
	sign := Bits(b>>16) & signMask
	exp := int32(b>>23) & 0xFF
	frac := b & 0x7FFFFF

	switch {
	case exp == 0xFF: // Inf or NaN
		if frac != 0 {
			return sign | nanBits
		}
		return sign | infBits
	case exp == 0 && frac == 0: // signed zero
		return sign
	}

	// Unbiased exponent of the float32 value.
	e := exp - 127
	switch {
	case e > 15: // overflow to infinity
		return sign | infBits
	case e >= -14: // normal half range
		// 23-bit fraction -> 10-bit fraction with round-to-nearest-even.
		mant := frac | 0x800000 // implicit leading 1
		shift := uint32(13)
		return roundShift(sign, uint32(e+expBias), mant, shift)
	case e >= -24: // subnormal half range
		mant := frac | 0x800000
		shift := uint32(13 + (-14 - e))
		return roundShift(sign, 0, mant, shift)
	default: // underflow to zero
		return sign
	}
}

// roundShift shifts mant right, applying round-to-nearest-even, and packs the
// result with the given sign and biased exponent. It handles mantissa
// overflow into the exponent (e.g. 0x3FF rounding up).
func roundShift(sign Bits, biasedExp, mant, shift uint32) Bits {
	if shift > 31 {
		return sign
	}
	kept := mant >> shift
	rem := mant & ((1 << shift) - 1)
	half := uint32(1) << (shift - 1)
	if rem > half || (rem == half && kept&1 == 1) {
		kept++
	}
	// kept may now overflow the 11-bit (implicit-1 + 10 fraction) field;
	// the carry propagates cleanly into the exponent because the encoding
	// is monotone.
	v := uint32(sign) | biasedExp<<fracBits
	// For normals, subtract the implicit bit before packing.
	if biasedExp != 0 {
		v += kept - (1 << fracBits)
	} else {
		v += kept
	}
	if v&^uint32(signMask)&0xFFFF >= infBits && biasedExp != 0 {
		return (Bits(v) & signMask) | infBits
	}
	if Bits(v)&expMask == expMask {
		return (Bits(v) & signMask) | infBits
	}
	return Bits(v)
}

// ToFloat32 converts a binary16 value to float32 exactly (binary16 ⊂ binary32).
func ToFloat32(h Bits) float32 {
	sign := uint32(h&signMask) << 16
	exp := uint32(h&expMask) >> fracBits
	frac := uint32(h & fracMask)

	switch {
	case exp == 0x1F: // Inf or NaN
		if frac != 0 {
			return math.Float32frombits(sign | 0x7FC00000 | frac<<13)
		}
		return math.Float32frombits(sign | 0x7F800000)
	case exp == 0:
		if frac == 0 {
			return math.Float32frombits(sign) // signed zero
		}
		// Subnormal half: value = frac * 2^-24.
		return math.Float32frombits(sign) + float32(frac)*float32(math.Ldexp(1, -24))*sgn(sign)
	}
	return math.Float32frombits(sign | (exp+127-expBias)<<23 | frac<<13)
}

func sgn(signBit uint32) float32 {
	if signBit != 0 {
		return -1
	}
	return 1
}

// Round quantizes a float32 through binary16 and back. This is the
// fundamental "stored as FP16" emulation used across the repository.
func Round(f float32) float32 { return ToFloat32(FromFloat32(f)) }

// RoundSlice quantizes every element of s in place and returns s.
func RoundSlice(s []float32) []float32 {
	for i, v := range s {
		s[i] = Round(v)
	}
	return s
}

// IsFinite reports whether h encodes a finite value.
func IsFinite(h Bits) bool { return h&expMask != expMask }

// MaxValue is the largest finite binary16 value (65504).
const MaxValue float32 = 65504

// Eps is the machine epsilon of binary16 (2^-10).
const Eps float32 = 1.0 / 1024
