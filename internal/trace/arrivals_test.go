package trace

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/workload"
)

func TestReadArrivalsCSVTwoColumn(t *testing.T) {
	in := "arrival_sec,class\n0.5,Short\n1.25,Long\n0.75,Medium\n"
	reqs, err := ReadArrivalsCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 3 {
		t.Fatalf("got %d requests, want 3", len(reqs))
	}
	// Sorted by arrival; IDs keep file order.
	if reqs[0].Class.Name != "Short" || reqs[1].Class.Name != "Medium" || reqs[2].Class.Name != "Long" {
		t.Errorf("order %s/%s/%s", reqs[0].Class.Name, reqs[1].Class.Name, reqs[2].Class.Name)
	}
	if reqs[1].ID != 2 || reqs[1].ArrivalSec != 0.75 {
		t.Errorf("medium request %+v, want ID 2 at 0.75s", reqs[1])
	}
	if reqs[0].Class.Input != workload.Short.Input {
		t.Errorf("class not resolved to §6.6 shape: %+v", reqs[0].Class)
	}
}

func TestReadArrivalsCSVFourColumnNoHeader(t *testing.T) {
	in := "0,custom,4096,128\n2.5,custom,4096,128\n"
	reqs, err := ReadArrivalsCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 2 {
		t.Fatalf("got %d requests, want 2", len(reqs))
	}
	if reqs[0].Class.Input != 4096 || reqs[0].Class.Output != 128 || reqs[0].Class.Name != "custom" {
		t.Errorf("custom shape %+v", reqs[0].Class)
	}
}

func TestReadArrivalsCSVErrors(t *testing.T) {
	for name, in := range map[string]string{
		"unknown class":   "0.5,Gigantic\n",
		"bad arrival":     "0.5,Short\nx,Short\n",
		"bad shape":       "0.5,c,0,10\n",
		"field count":     "0.5,Short,256\n",
		"empty":           "",
		"header only":     "arrival_sec,class\n",
		"negative":        "-1,Short\n",
		"non-numeric row": "arrival_sec,class\noops,Short\n",
	} {
		if _, err := ReadArrivalsCSV(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}
}

func TestArrivalsCSVRoundTrip(t *testing.T) {
	g, err := workload.NewGenerator(5, workload.AzureLikeMix())
	if err != nil {
		t.Fatal(err)
	}
	arr, err := workload.PoissonArrivals(5, 3, 50)
	if err != nil {
		t.Fatal(err)
	}
	orig, err := g.TimedTrace(arr)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteArrivalsCSV(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadArrivalsCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(orig) {
		t.Fatalf("round trip %d → %d requests", len(orig), len(back))
	}
	for i := range orig {
		if back[i].ArrivalSec != orig[i].ArrivalSec || back[i].Class != orig[i].Class {
			t.Fatalf("request %d changed in round trip: %+v vs %+v", i, back[i], orig[i])
		}
	}
	if err := WriteArrivalsCSV(&buf, nil); err == nil {
		t.Error("empty write accepted")
	}
}

// Only the exact header WriteArrivalsCSV emits may be skipped: a headerless
// trace whose first record has a corrupt timestamp must error, not silently
// lose a request.
func TestReadArrivalsCSVCorruptFirstRecord(t *testing.T) {
	if _, err := ReadArrivalsCSV(strings.NewReader("1.2.3,Short\n4,Short\n")); err == nil {
		t.Error("corrupt first record silently skipped as header")
	}
	if _, err := ReadArrivalsCSV(strings.NewReader("NaN,Short\n")); err == nil {
		t.Error("NaN arrival accepted")
	}
}
