package trace

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/workload"
)

func TestReadArrivalsCSVTwoColumn(t *testing.T) {
	in := "arrival_sec,class\n0.5,Short\n1.25,Long\n0.75,Medium\n"
	reqs, err := ReadArrivalsCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 3 {
		t.Fatalf("got %d requests, want 3", len(reqs))
	}
	// Sorted by arrival; IDs keep file order.
	if reqs[0].Class.Name != "Short" || reqs[1].Class.Name != "Medium" || reqs[2].Class.Name != "Long" {
		t.Errorf("order %s/%s/%s", reqs[0].Class.Name, reqs[1].Class.Name, reqs[2].Class.Name)
	}
	if reqs[1].ID != 2 || reqs[1].ArrivalSec != 0.75 {
		t.Errorf("medium request %+v, want ID 2 at 0.75s", reqs[1])
	}
	if reqs[0].Class.Input != workload.Short.Input {
		t.Errorf("class not resolved to §6.6 shape: %+v", reqs[0].Class)
	}
}

func TestReadArrivalsCSVFourColumnNoHeader(t *testing.T) {
	in := "0,custom,4096,128\n2.5,custom,4096,128\n"
	reqs, err := ReadArrivalsCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 2 {
		t.Fatalf("got %d requests, want 2", len(reqs))
	}
	if reqs[0].Class.Input != 4096 || reqs[0].Class.Output != 128 || reqs[0].Class.Name != "custom" {
		t.Errorf("custom shape %+v", reqs[0].Class)
	}
}

// The six-column form carries scheduling columns; legacy records in the
// same file (mixed widths) parse as priority-0 no-deadline requests.
func TestReadArrivalsCSVSixColumn(t *testing.T) {
	in := "arrival_sec,class,input_tokens,output_tokens,priority,deadline_sec\n" +
		"0.5,online,256,100,2,15\n" +
		"1.5,offline,8192,350,0,0\n"
	reqs, err := ReadArrivalsCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 2 {
		t.Fatalf("got %d requests, want 2", len(reqs))
	}
	if reqs[0].Priority != 2 || reqs[0].DeadlineSec != 15 {
		t.Errorf("online request scheduling columns %+v", reqs[0])
	}
	if reqs[1].Priority != 0 || reqs[1].DeadlineSec != 0 {
		t.Errorf("offline request scheduling columns %+v", reqs[1])
	}
	if reqs[0].Class.Input != 256 || reqs[1].Class.Output != 350 {
		t.Errorf("shapes lost: %+v / %+v", reqs[0].Class, reqs[1].Class)
	}
}

// Legacy traces (two- and four-column, the pre-scheduling formats) must
// still parse, as priority-0 requests without deadlines.
func TestReadArrivalsCSVLegacyFormats(t *testing.T) {
	for name, in := range map[string]string{
		"two-column":  "0.5,Short\n1.5,Long\n",
		"four-column": "arrival_sec,class,input_tokens,output_tokens\n0.5,c,100,10\n1.5,c,200,20\n",
	} {
		reqs, err := ReadArrivalsCSV(strings.NewReader(in))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i, r := range reqs {
			if r.Priority != 0 || r.DeadlineSec != 0 {
				t.Errorf("%s: request %d gained scheduling metadata: %+v", name, i, r)
			}
		}
	}
}

// The scheduling columns must round-trip: IDs are assigned in file order
// while requests sort by arrival, so the columns must follow the request,
// not the row position.
func TestArrivalsCSVSchedulingRoundTrip(t *testing.T) {
	orig := []workload.TimedRequest{
		{ID: 0, Class: workload.Long, ArrivalSec: 3, Priority: 0, DeadlineSec: 0},
		{ID: 1, Class: workload.Short, ArrivalSec: 1, Priority: 2, DeadlineSec: 7.5},
		{ID: 2, Class: workload.Medium, ArrivalSec: 2, Priority: 1, DeadlineSec: 30},
	}
	var buf bytes.Buffer
	if err := WriteArrivalsCSV(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadArrivalsCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 3 {
		t.Fatalf("round trip %d → %d requests", len(orig), len(back))
	}
	// Writer emits in the given (arrival-sorted would differ) order; reader
	// re-sorts by arrival and assigns IDs in file order.
	byArrival := map[float64]workload.TimedRequest{}
	for _, r := range orig {
		byArrival[r.ArrivalSec] = r
	}
	for _, r := range back {
		want := byArrival[r.ArrivalSec]
		if r.Priority != want.Priority || r.DeadlineSec != want.DeadlineSec || r.Class != want.Class {
			t.Errorf("request at t=%v changed in round trip: %+v vs %+v", r.ArrivalSec, r, want)
		}
	}
}

func TestReadArrivalsCSVErrors(t *testing.T) {
	for name, in := range map[string]string{
		"unknown class":   "0.5,Gigantic\n",
		"bad arrival":     "0.5,Short\nx,Short\n",
		"bad shape":       "0.5,c,0,10\n",
		"field count":     "0.5,Short,256\n",
		"five fields":     "0.5,c,256,100,1\n",
		"bad priority":    "0.5,c,256,100,x,0\n",
		"neg priority":    "0.5,c,256,100,-1,0\n",
		"bad deadline":    "0.5,c,256,100,1,x\n",
		"neg deadline":    "0.5,c,256,100,1,-5\n",
		"inf deadline":    "0.5,c,256,100,1,+Inf\n",
		"empty":           "",
		"header only":     "arrival_sec,class\n",
		"negative":        "-1,Short\n",
		"non-numeric row": "arrival_sec,class\noops,Short\n",
	} {
		if _, err := ReadArrivalsCSV(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}
}

func TestArrivalsCSVRoundTrip(t *testing.T) {
	g, err := workload.NewGenerator(5, workload.AzureLikeMix())
	if err != nil {
		t.Fatal(err)
	}
	arr, err := workload.PoissonArrivals(5, 3, 50)
	if err != nil {
		t.Fatal(err)
	}
	orig, err := g.TimedTrace(arr)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteArrivalsCSV(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadArrivalsCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(orig) {
		t.Fatalf("round trip %d → %d requests", len(orig), len(back))
	}
	for i := range orig {
		if back[i].ArrivalSec != orig[i].ArrivalSec || back[i].Class != orig[i].Class {
			t.Fatalf("request %d changed in round trip: %+v vs %+v", i, back[i], orig[i])
		}
	}
	if err := WriteArrivalsCSV(&buf, nil); err == nil {
		t.Error("empty write accepted")
	}
}

// Only the exact header WriteArrivalsCSV emits may be skipped: a headerless
// trace whose first record has a corrupt timestamp must error, not silently
// lose a request.
func TestReadArrivalsCSVCorruptFirstRecord(t *testing.T) {
	if _, err := ReadArrivalsCSV(strings.NewReader("1.2.3,Short\n4,Short\n")); err == nil {
		t.Error("corrupt first record silently skipped as header")
	}
	if _, err := ReadArrivalsCSV(strings.NewReader("NaN,Short\n")); err == nil {
		t.Error("NaN arrival accepted")
	}
}
