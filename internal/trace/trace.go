// Package trace exports simulated decoding-step schedules as Chrome
// trace-event JSON (load the file at chrome://tracing or in Perfetto to see
// the per-resource timeline of a step — which transfers overlap, where the
// pipeline stalls, which resource binds).
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/sim"
)

// event is one complete ("X" phase) Chrome trace event. Times are in
// microseconds per the trace-event format.
type event struct {
	Name string  `json:"name"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
}

// chromeTrace is the top-level trace file object.
type chromeTrace struct {
	TraceEvents    []event           `json:"traceEvents"`
	DisplayUnit    string            `json:"displayTimeUnit"`
	Metadata       map[string]string `json:"metadata,omitempty"`
	ControllerPids []int             `json:"-"`
}

// WriteChrome serializes task records as Chrome trace JSON. Each resource
// becomes a thread lane; pure-latency tasks land on a "host" lane.
func WriteChrome(w io.Writer, records []sim.TaskRecord, label string) error {
	if len(records) == 0 {
		return fmt.Errorf("trace: no task records")
	}
	// Stable lane assignment: resources sorted by name.
	laneSet := map[string]bool{}
	for _, r := range records {
		laneSet[laneName(r)] = true
	}
	var lanes []string
	for l := range laneSet {
		lanes = append(lanes, l)
	}
	sort.Strings(lanes)
	laneID := make(map[string]int, len(lanes))
	for i, l := range lanes {
		laneID[l] = i + 1
	}

	t := chromeTrace{
		DisplayUnit: "ms",
		Metadata:    map[string]string{"description": label},
	}
	for _, r := range records {
		t.TraceEvents = append(t.TraceEvents, event{
			Name: r.Label,
			Ph:   "X",
			Ts:   r.Start * 1e6,
			Dur:  (r.Finish - r.Start) * 1e6,
			Pid:  1,
			Tid:  laneID[laneName(r)],
		})
	}
	// Thread-name metadata events so lanes display their resource names.
	type nameArgs struct {
		Name string `json:"name"`
	}
	var metaEvents []map[string]any
	for _, l := range lanes {
		metaEvents = append(metaEvents, map[string]any{
			"name": "thread_name", "ph": "M", "pid": 1, "tid": laneID[l],
			"args": nameArgs{Name: l},
		})
	}

	enc := json.NewEncoder(w)
	// Encode as a single object with both event lists merged.
	all := make([]any, 0, len(t.TraceEvents)+len(metaEvents))
	for _, m := range metaEvents {
		all = append(all, m)
	}
	for _, e := range t.TraceEvents {
		all = append(all, e)
	}
	return enc.Encode(map[string]any{
		"traceEvents":     all,
		"displayTimeUnit": t.DisplayUnit,
		"metadata":        t.Metadata,
	})
}

func laneName(r sim.TaskRecord) string {
	if r.Resource == "" {
		return "host"
	}
	return r.Resource
}

// Summary aggregates records per lane: busy time and task count. Useful for
// quick textual inspection without a trace viewer.
func Summary(records []sim.TaskRecord) map[string]LaneStats {
	out := map[string]LaneStats{}
	for _, r := range records {
		s := out[laneName(r)]
		s.Tasks++
		s.Busy += r.Finish - r.Start
		if r.Finish > s.LastFinish {
			s.LastFinish = r.Finish
		}
		out[laneName(r)] = s
	}
	return out
}

// LaneStats summarizes one resource lane.
type LaneStats struct {
	Tasks      int
	Busy       float64
	LastFinish float64
}
