package trace

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"repro/internal/sim"
)

func sampleRecords() []sim.TaskRecord {
	return []sim.TaskRecord{
		{Label: "LoadKV", Resource: "flash", Start: 0, Finish: 0.5},
		{Label: "Compute", Resource: "GPU", Start: 0.5, Finish: 0.7},
		{Label: "join", Resource: "", Start: 0.7, Finish: 0.7},
	}
}

func TestWriteChromeValidJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, sampleRecords(), "test step"); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Metadata    map[string]string
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	// 3 lanes of metadata + 3 task events.
	if len(parsed.TraceEvents) != 6 {
		t.Errorf("got %d events, want 6", len(parsed.TraceEvents))
	}
	if parsed.Metadata["description"] != "test step" {
		t.Errorf("metadata description %q", parsed.Metadata["description"])
	}
	// Durations must be microseconds.
	for _, e := range parsed.TraceEvents {
		if e["ph"] == "X" && e["name"] == "LoadKV" {
			if dur := e["dur"].(float64); math.Abs(dur-0.5e6) > 1 {
				t.Errorf("LoadKV dur = %v µs, want 0.5e6", dur)
			}
		}
	}
}

func TestWriteChromeEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, nil, "x"); err == nil {
		t.Error("empty record list accepted")
	}
}

func TestSummary(t *testing.T) {
	s := Summary(sampleRecords())
	if s["flash"].Tasks != 1 || s["flash"].Busy != 0.5 {
		t.Errorf("flash lane %+v", s["flash"])
	}
	if s["host"].Tasks != 1 {
		t.Errorf("pure-latency task not mapped to host lane: %+v", s)
	}
	if s["GPU"].LastFinish != 0.7 {
		t.Errorf("GPU last finish %v", s["GPU"].LastFinish)
	}
}

// End-to-end: a real sim run exports a well-formed trace.
func TestTraceFromSimRun(t *testing.T) {
	e := sim.NewEngine()
	r := e.Resource("link", 10)
	a := e.Task("xfer", r, 5)
	e.Task("more", r, 5, a)
	res := e.Run()
	if len(res.Tasks) != 2 {
		t.Fatalf("sim recorded %d tasks, want 2", len(res.Tasks))
	}
	var buf bytes.Buffer
	if err := WriteChrome(&buf, res.Tasks, "sim"); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Error("invalid JSON from sim records")
	}
	// Records must be time-consistent.
	for _, rec := range res.Tasks {
		if rec.Finish < rec.Start {
			t.Errorf("record %+v finishes before it starts", rec)
		}
	}
}
