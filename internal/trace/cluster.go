package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/cluster"
)

// WriteClusterChrome serializes a cluster run's batch schedule as Chrome
// trace JSON: one thread lane per fleet pipeline, one complete ("X") event
// per placed batch named by its class, job count and priority, spanning the
// batch's simulated start→finish. Failed batches (no pipeline could place
// them) have no timeline and are counted in the metadata instead. Load the
// file at chrome://tracing or in Perfetto.
func WriteClusterChrome(w io.Writer, s cluster.Summary, label string) error {
	if len(s.Assignments) == 0 {
		return fmt.Errorf("trace: summary has no assignments")
	}

	type nameArgs struct {
		Name string `json:"name"`
	}
	all := make([]any, 0, len(s.Pipelines)+len(s.Assignments))
	for i, ps := range s.Pipelines {
		all = append(all, map[string]any{
			"name": "thread_name", "ph": "M", "pid": 1, "tid": i + 1,
			"args": nameArgs{Name: ps.Name},
		})
	}
	failed := 0
	for _, a := range s.Assignments {
		if a.Pipeline < 0 {
			failed++
			continue
		}
		all = append(all, event{
			Name: fmt.Sprintf("%s×%d p%d", a.Batch.Class.Name, len(a.Batch.JobIDs), a.Batch.Priority),
			Ph:   "X",
			Ts:   a.StartSec * 1e6,
			Dur:  (a.FinishSec - a.StartSec) * 1e6,
			Pid:  1,
			Tid:  a.Pipeline + 1,
		})
	}

	meta := map[string]string{"description": label}
	if failed > 0 {
		meta["failedBatches"] = fmt.Sprintf("%d", failed)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{
		"traceEvents":     all,
		"displayTimeUnit": "ms",
		"metadata":        meta,
	})
}
