package trace

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/workload"
)

var update = flag.Bool("update", false, "rewrite golden files")

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s mismatch\ngot:  %s\nwant: %s", name, got, want)
	}
}

// The Chrome export of a small fixed DAG is byte-stable: lane assignment is
// sorted, event order is schedule order, and encoding/json orders map keys.
func TestWriteChromeGolden(t *testing.T) {
	e := sim.NewEngine()
	gpu := e.Resource("gpu", 1)
	ssd := e.Resource("ssd", 2)
	load := e.Task("load", ssd, 4)
	mm := e.Task("matmul", gpu, 3, load)
	store := e.Task("store", ssd, 2, mm)
	e.Delay("sync", 0.5, store)
	res := e.Run()

	var buf bytes.Buffer
	if err := WriteChrome(&buf, res.Tasks, "golden DAG"); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "chrome_dag.golden.json", buf.Bytes())
}

// The cluster export is a pure function of the Summary: pipelines become
// lanes in fleet order, placed batches become "X" events in dispatch order,
// failed batches are counted in metadata.
func TestWriteClusterChromeGolden(t *testing.T) {
	s := cluster.Summary{
		Pipelines: []cluster.PipelineStats{{Name: "hilos-0"}, {Name: "dram-1"}},
		Assignments: []cluster.Assignment{
			{
				Batch:    cluster.BatchJob{Class: workload.Short, JobIDs: []int{0, 1}, Priority: 1},
				Pipeline: 0, StartSec: 0, FinishSec: 2.5,
			},
			{
				Batch:    cluster.BatchJob{Class: workload.Medium, JobIDs: []int{2}},
				Pipeline: 1, StartSec: 1, FinishSec: 4,
			},
			{
				Batch:    cluster.BatchJob{Class: workload.Long, JobIDs: []int{3}},
				Pipeline: -1, Reason: "OOM everywhere",
			},
		},
	}
	var buf bytes.Buffer
	if err := WriteClusterChrome(&buf, s, "golden cluster"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `"failedBatches":"1"`) {
		t.Errorf("failed batch not counted in metadata: %s", out)
	}
	checkGolden(t, "chrome_cluster.golden.json", buf.Bytes())
}

func TestWriteClusterChromeEmpty(t *testing.T) {
	if err := WriteClusterChrome(&bytes.Buffer{}, cluster.Summary{}, "x"); err == nil {
		t.Fatal("expected error on empty summary")
	}
}
