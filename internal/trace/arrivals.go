package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/workload"
)

// Arrival-trace CSV format, one request per record:
//
//	arrival_sec,class[,input_tokens,output_tokens]
//
// The two-column form resolves class by its §6.6 name (Short/Medium/Long);
// the four-column form carries an explicit request shape, so traces recorded
// from other systems replay without mapping to the built-in classes. A
// header row is skipped when the first field is not numeric.

// ReadArrivalsCSV parses an arrival-trace CSV into timestamped requests,
// sorted by arrival with IDs in file order.
func ReadArrivalsCSV(r io.Reader) ([]workload.TimedRequest, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // validated per record: 2 or 4 fields
	cr.TrimLeadingSpace = true

	var classes []workload.Class
	var arrivals []float64
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: %w", err)
		}
		line++
		if len(rec) != 2 && len(rec) != 4 {
			return nil, fmt.Errorf("trace: record %d has %d fields, want 2 or 4", line, len(rec))
		}
		if line == 1 && rec[0] == "arrival_sec" {
			continue // the header WriteArrivalsCSV emits
		}
		at, err := strconv.ParseFloat(rec[0], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: record %d: bad arrival time %q", line, rec[0])
		}
		var c workload.Class
		if len(rec) == 2 {
			known, ok := workload.ClassByName(rec[1])
			if !ok {
				return nil, fmt.Errorf("trace: record %d: unknown class %q (two-column records must use a §6.6 class name)", line, rec[1])
			}
			c = known
		} else {
			in, err1 := strconv.Atoi(rec[2])
			out, err2 := strconv.Atoi(rec[3])
			if err1 != nil || err2 != nil || in < 1 || out < 1 {
				return nil, fmt.Errorf("trace: record %d: bad request shape %q/%q", line, rec[2], rec[3])
			}
			c = workload.Class{Name: rec[1], Input: in, Output: out}
		}
		classes = append(classes, c)
		arrivals = append(arrivals, at)
	}
	reqs, err := workload.Timed(classes, arrivals)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	return reqs, nil
}

// WriteArrivalsCSV writes requests in the four-column format with a header,
// so written traces round-trip through ReadArrivalsCSV.
func WriteArrivalsCSV(w io.Writer, reqs []workload.TimedRequest) error {
	if len(reqs) == 0 {
		return fmt.Errorf("trace: no requests")
	}
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"arrival_sec", "class", "input_tokens", "output_tokens"}); err != nil {
		return err
	}
	for _, r := range reqs {
		rec := []string{
			strconv.FormatFloat(r.ArrivalSec, 'g', -1, 64),
			r.Class.Name,
			strconv.Itoa(r.Class.Input),
			strconv.Itoa(r.Class.Output),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
