package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"

	"repro/internal/workload"
)

// Arrival-trace CSV format, one request per record:
//
//	arrival_sec,class[,input_tokens,output_tokens[,priority,deadline_sec]]
//
// The two-column form resolves class by its §6.6 name (Short/Medium/Long);
// the four-column form carries an explicit request shape, so traces recorded
// from other systems replay without mapping to the built-in classes; the
// six-column form adds the scheduling columns — an integer priority class
// (higher is more urgent, 0 is the offline default) and a start deadline in
// seconds after arrival (0 = none). Legacy two- and four-column traces parse
// unchanged as priority-0, no-deadline requests. A header row is skipped
// when the first field is not numeric.

// ReadArrivalsCSV parses an arrival-trace CSV into timestamped requests,
// sorted by arrival with IDs in file order.
func ReadArrivalsCSV(r io.Reader) ([]workload.TimedRequest, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // validated per record: 2, 4 or 6 fields
	cr.TrimLeadingSpace = true

	var classes []workload.Class
	var arrivals []float64
	var priorities []int
	var deadlines []float64
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: %w", err)
		}
		line++
		if len(rec) != 2 && len(rec) != 4 && len(rec) != 6 {
			return nil, fmt.Errorf("trace: record %d has %d fields, want 2, 4 or 6", line, len(rec))
		}
		if line == 1 && rec[0] == "arrival_sec" {
			continue // the header WriteArrivalsCSV emits
		}
		at, err := strconv.ParseFloat(rec[0], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: record %d: bad arrival time %q", line, rec[0])
		}
		var c workload.Class
		if len(rec) == 2 {
			known, ok := workload.ClassByName(rec[1])
			if !ok {
				return nil, fmt.Errorf("trace: record %d: unknown class %q (two-column records must use a §6.6 class name)", line, rec[1])
			}
			c = known
		} else {
			in, err1 := strconv.Atoi(rec[2])
			out, err2 := strconv.Atoi(rec[3])
			if err1 != nil || err2 != nil || in < 1 || out < 1 {
				return nil, fmt.Errorf("trace: record %d: bad request shape %q/%q", line, rec[2], rec[3])
			}
			c = workload.Class{Name: rec[1], Input: in, Output: out}
		}
		prio, dl := 0, 0.0
		if len(rec) == 6 {
			prio, err = strconv.Atoi(rec[4])
			if err != nil || prio < 0 {
				return nil, fmt.Errorf("trace: record %d: bad priority %q (want integer ≥ 0)", line, rec[4])
			}
			dl, err = strconv.ParseFloat(rec[5], 64)
			if err != nil || dl < 0 || math.IsInf(dl, 0) || math.IsNaN(dl) {
				return nil, fmt.Errorf("trace: record %d: bad deadline %q (want finite seconds ≥ 0)", line, rec[5])
			}
		}
		classes = append(classes, c)
		arrivals = append(arrivals, at)
		priorities = append(priorities, prio)
		deadlines = append(deadlines, dl)
	}
	reqs, err := workload.Timed(classes, arrivals)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	// Timed sorts by arrival but assigns IDs in file order, so the ID
	// indexes the parallel priority/deadline columns.
	for i := range reqs {
		reqs[i].Priority = priorities[reqs[i].ID]
		reqs[i].DeadlineSec = deadlines[reqs[i].ID]
	}
	return reqs, nil
}

// WriteArrivalsCSV writes requests in the six-column format with a header,
// so written traces round-trip through ReadArrivalsCSV, scheduling columns
// included.
func WriteArrivalsCSV(w io.Writer, reqs []workload.TimedRequest) error {
	if len(reqs) == 0 {
		return fmt.Errorf("trace: no requests")
	}
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"arrival_sec", "class", "input_tokens", "output_tokens", "priority", "deadline_sec"}); err != nil {
		return err
	}
	for _, r := range reqs {
		rec := []string{
			strconv.FormatFloat(r.ArrivalSec, 'g', -1, 64),
			r.Class.Name,
			strconv.Itoa(r.Class.Input),
			strconv.Itoa(r.Class.Output),
			strconv.Itoa(r.Priority),
			strconv.FormatFloat(r.DeadlineSec, 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
