package repcache

import (
	"sync"
	"testing"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/model"
	"repro/internal/pipeline"
)

func req() pipeline.Request {
	return pipeline.Request{Model: model.OPT30B, Batch: 4, Context: 8192, OutputLen: 64}
}

// The cache must return the uncached engine's exact result and collapse
// repeated and concurrent lookups of one point into a single entry.
func TestCoreRunMatchesAndDedupes(t *testing.T) {
	Reset()
	tb := device.DefaultTestbed()
	opt := core.DefaultOptions(8)
	direct := core.Run(tb, req(), opt)

	var wg sync.WaitGroup
	reps := make([]pipeline.Report, 16)
	for i := range reps {
		wg.Add(1)
		go func() {
			defer wg.Done()
			reps[i] = CoreRun(tb, req(), opt)
		}()
	}
	wg.Wait()
	for i, rep := range reps {
		if rep.StepSec != direct.StepSec || rep.PrefillSec != direct.PrefillSec || rep.Batch != direct.Batch {
			t.Fatalf("cached report %d differs from direct run: %+v vs %+v", i, rep, direct)
		}
	}
	if Len() != 1 {
		t.Fatalf("16 identical lookups created %d cache entries, want 1", Len())
	}

	// A different option set is a different point.
	CoreRun(tb, req(), core.DefaultOptions(16))
	if Len() != 2 {
		t.Fatalf("distinct options shared an entry: Len = %d", Len())
	}
}

func TestFlexAndVLLMKeysDistinct(t *testing.T) {
	Reset()
	tb := device.DefaultTestbed()
	a := FlexRun(tb, baseline.FlexSSD(tb), req())
	b := FlexRun(tb, baseline.FlexDRAM(tb), req())
	if a.System == b.System {
		t.Fatalf("different variants collided: %q", a.System)
	}
	FlexRun(tb, baseline.FlexSSD(tb), req()) // hit
	VLLMRun(tb, baseline.DefaultVLLM(), req())
	if Len() != 3 {
		t.Fatalf("cache has %d entries, want 3", Len())
	}
	if got := VLLMRun(tb, baseline.DefaultVLLM(), req()); got.System == "" {
		t.Fatal("vLLM report missing system name")
	}
}
