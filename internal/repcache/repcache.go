// Package repcache is a process-wide memo for simulation reports. Every
// engine in this repository is a pure function of (testbed, request,
// options) — the discrete-event substrate is fully deterministic — so
// identical simulation points across experiment tables, sweep axes and
// repeated benchmark iterations can share one run. It generalizes the
// per-fleet memo of internal/cluster/dispatch.go: where that memo lives for
// one dispatcher and keys on an engine label, this cache lives for the
// process and keys on the complete comparable input of the run.
//
// Cached reports are shared: callers must treat them (including their
// Breakdown/ResourceBusy maps and Trace slice) as immutable, the same
// contract cluster assignments already follow.
package repcache

import (
	"sync"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/pipeline"
)

// coreKey identifies one HILOS core.Run invocation.
type coreKey struct {
	tb  device.Testbed
	req pipeline.Request
	opt core.Options
}

// flexKey identifies one FlexGen-style baseline run.
type flexKey struct {
	tb  device.Testbed
	req pipeline.Request
	v   baseline.FlexVariant
}

// vllmKey identifies one multi-node vLLM baseline run.
type vllmKey struct {
	tb  device.Testbed
	req pipeline.Request
	cfg baseline.VLLMConfig
}

// entry is a singleflight slot: the first caller computes under the entry
// lock, concurrent callers for the same key block on it and share the
// result. done is set only after compute returns, so a panicking compute
// (e.g. a malformed task graph) propagates without poisoning the slot —
// the next caller simply retries.
type entry struct {
	mu   sync.Mutex
	done bool
	rep  pipeline.Report
}

var (
	mu    sync.Mutex
	cache = map[any]*entry{}
)

func memo(key any, compute func() pipeline.Report) pipeline.Report {
	mu.Lock()
	e, ok := cache[key]
	if !ok {
		e = &entry{}
		cache[key] = e
	}
	mu.Unlock()
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.done {
		e.rep = compute()
		e.done = true
	}
	return e.rep
}

// CoreRun is a memoized core.Run.
func CoreRun(tb device.Testbed, req pipeline.Request, opt core.Options) pipeline.Report {
	return memo(coreKey{tb: tb, req: req, opt: opt}, func() pipeline.Report {
		return core.Run(tb, req, opt)
	})
}

// FlexRun is a memoized baseline.FlexVariant.Run.
func FlexRun(tb device.Testbed, v baseline.FlexVariant, req pipeline.Request) pipeline.Report {
	return memo(flexKey{tb: tb, req: req, v: v}, func() pipeline.Report {
		return v.Run(tb, req)
	})
}

// VLLMRun is a memoized baseline.VLLMConfig.Run.
func VLLMRun(tb device.Testbed, cfg baseline.VLLMConfig, req pipeline.Request) pipeline.Report {
	return memo(vllmKey{tb: tb, req: req, cfg: cfg}, func() pipeline.Report {
		return cfg.Run(tb, req)
	})
}

// Len reports the number of distinct simulation points cached.
func Len() int {
	mu.Lock()
	defer mu.Unlock()
	return len(cache)
}

// Reset drops every cached report. It exists for tests that must observe
// cold-cache behavior; production callers never need it.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	cache = map[any]*entry{}
}
