// Package repcache is a process-wide memo for simulation reports. Every
// engine in this repository is a pure function of (testbed, request,
// options) — the discrete-event substrate is fully deterministic — so
// identical simulation points across experiment tables, sweep axes and
// repeated benchmark iterations can share one run. The package-level
// helpers key on the complete comparable input of a run; callers with
// context-relative keys (internal/cluster's dispatcher, whose engine labels
// are only meaningful within one fleet) scope them under a Group.
//
// Cached reports are shared: callers must treat them (including their
// Breakdown/ResourceBusy maps and Trace slice) as immutable, the same
// contract cluster assignments already follow.
package repcache

import (
	"sync"
	"sync/atomic"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/pipeline"
	"repro/internal/telemetry"
)

// cacheMetrics counts memo outcomes: a miss computes, a hit returns a
// finished entry, a coalesced call piggybacks on a compute already in
// flight (singleflight sharing). Held behind an atomic pointer so the
// disabled path costs one load.
type cacheMetrics struct {
	hits      *telemetry.Counter
	misses    *telemetry.Counter
	coalesced *telemetry.Counter
}

var metrics atomic.Pointer[cacheMetrics]

// EnableMetrics wires the cache's hit/miss/singleflight-coalesced counters
// into reg ("repcache.hits", "repcache.misses", "repcache.coalesced"). A
// nil reg disables them again.
func EnableMetrics(reg *telemetry.Registry) {
	if reg == nil {
		metrics.Store(nil)
		return
	}
	metrics.Store(&cacheMetrics{
		hits:      reg.Counter("repcache.hits"),
		misses:    reg.Counter("repcache.misses"),
		coalesced: reg.Counter("repcache.coalesced"),
	})
}

// coreKey identifies one HILOS core.Run invocation.
type coreKey struct {
	tb  device.Testbed
	req pipeline.Request
	opt core.Options
}

// flexKey identifies one FlexGen-style baseline run.
type flexKey struct {
	tb  device.Testbed
	req pipeline.Request
	v   baseline.FlexVariant
}

// vllmKey identifies one multi-node vLLM baseline run.
type vllmKey struct {
	tb  device.Testbed
	req pipeline.Request
	cfg baseline.VLLMConfig
}

// entry is a singleflight slot: the first caller computes under the entry
// lock, concurrent callers for the same key block on it and share the
// result. done is set only after compute returns, so a panicking compute
// (e.g. a malformed task graph) propagates without poisoning the slot —
// the next caller simply retries.
type entry struct {
	mu   sync.Mutex
	done bool            // guarded by mu
	rep  pipeline.Report // guarded by mu
	// ready mirrors done for lock-free metric classification: a creator
	// that finds ready already set counts a hit instead of a coalesced
	// wait. Set only after compute returns (like done), so a panicking
	// compute leaves it clear.
	ready atomic.Bool
}

var (
	mu    sync.Mutex
	cache = map[any]*entry{} // guarded by mu
)

func memo(key any, compute func() pipeline.Report) pipeline.Report {
	mu.Lock()
	e, ok := cache[key]
	if !ok {
		e = &entry{}
		cache[key] = e
	}
	mu.Unlock()
	if m := metrics.Load(); m != nil {
		switch {
		case !ok:
			m.misses.Inc()
		case e.ready.Load():
			m.hits.Inc()
		default:
			// The entry exists but its compute has not finished: this call
			// will block on the entry lock and share the in-flight result.
			// (A compute that panicked and is being retried miscounts as
			// coalesced — acceptable for an approximate counter.)
			m.coalesced.Inc()
		}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.done {
		e.rep = compute()
		e.done = true
		e.ready.Store(true)
	}
	return e.rep
}

// Group is a private namespace over the process cache for callers whose
// keys are only meaningful relative to some local context — e.g. one
// cluster dispatcher's fleet, where the same engine label on two different
// dispatchers names two different engines. Keys from distinct Groups never
// collide; within a Group, Do has the same share-one-run singleflight
// semantics as the package-level memo. Entries live for the process (and
// count into Len / are dropped by Reset) like every other cached report.
type Group struct {
	id uint64
}

// groupKey namespaces a caller-owned key under one Group. The id keeps keys
// from different Groups distinct even when the caller keys are equal.
type groupKey struct {
	id  uint64
	key any
}

var nextGroupID atomic.Uint64

// NewGroup returns a fresh namespace. Each call returns a distinct Group.
func NewGroup() *Group {
	return &Group{id: nextGroupID.Add(1)}
}

// Do returns the memoized report for key within the group, computing it on
// first use. key must be comparable. Concurrent calls for the same key block
// on the first and share its result; distinct keys compute in parallel.
func (g *Group) Do(key any, compute func() pipeline.Report) pipeline.Report {
	return memo(groupKey{id: g.id, key: key}, compute)
}

// CoreRun is a memoized core.Run.
func CoreRun(tb device.Testbed, req pipeline.Request, opt core.Options) pipeline.Report {
	return memo(coreKey{tb: tb, req: req, opt: opt}, func() pipeline.Report {
		return core.Run(tb, req, opt)
	})
}

// FlexRun is a memoized baseline.FlexVariant.Run.
func FlexRun(tb device.Testbed, v baseline.FlexVariant, req pipeline.Request) pipeline.Report {
	return memo(flexKey{tb: tb, req: req, v: v}, func() pipeline.Report {
		return v.Run(tb, req)
	})
}

// VLLMRun is a memoized baseline.VLLMConfig.Run.
func VLLMRun(tb device.Testbed, cfg baseline.VLLMConfig, req pipeline.Request) pipeline.Report {
	return memo(vllmKey{tb: tb, req: req, cfg: cfg}, func() pipeline.Report {
		return cfg.Run(tb, req)
	})
}

// Len reports the number of distinct simulation points cached.
func Len() int {
	mu.Lock()
	defer mu.Unlock()
	return len(cache)
}

// Reset drops every cached report. It exists for tests that must observe
// cold-cache behavior; production callers never need it.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	cache = map[any]*entry{}
}
