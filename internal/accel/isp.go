package accel

// ISPSpec describes the envisioned in-storage-processing device of §7.1
// (Figure 18b): the attention accelerator synthesized as an ASIC inside the
// SSD controller, with direct access to the flash channels and LPDDR5X.
type ISPSpec struct {
	// InternalFlashBW is the aggregate flash-channel bandwidth reachable by
	// the in-controller accelerator (8 channels × 2000 MT/s = 16 GB/s).
	InternalFlashBW float64
	// DRAMBW is the LPDDR5X bandwidth (4 × 16 GB channels, 68 GB/s).
	DRAMBW float64
	// HostLinkBW is the PCIe 4.0 ×4 host link (8 GB/s).
	HostLinkBW float64
	// CapBytes is the NAND capacity (16 TB).
	CapBytes int64
	// AreaMM2 and PowerW are the synthesized accelerator overheads at the
	// 8 nm-scaled node, 300 MHz, d_group = 1 (OpenROAD + CACTI in the
	// paper; an analytical scaling model here).
	AreaMM2 float64
	PowerW  float64
}

// EnvisionedISP returns the §7.1 device parameters.
func EnvisionedISP() ISPSpec {
	return ISPSpec{
		InternalFlashBW: 16e9,
		DRAMBW:          68e9,
		HostLinkBW:      8e9,
		CapBytes:        16e12,
		AreaMM2:         0.47,
		PowerW:          1.13,
	}
}

// EquivalentSmartSSDs returns how many SmartSSDs the ISP device matches on
// each axis: internal storage bandwidth, internal memory bandwidth, and
// host-interconnect bandwidth. §7.1 argues a single ISP unit closely matches
// four SmartSSDs (16 GB/s vs 4×~4 GB/s internal lanes, 8 GB/s vs four ×4
// links, 68 GB/s vs ~52 GB/s aggregate DDR4).
func (i ISPSpec) EquivalentSmartSSDs(perDeviceInternalBW, perDeviceDRAMBW, perDeviceHostBW float64) (storage, memory, host float64) {
	return i.InternalFlashBW / perDeviceInternalBW,
		i.DRAMBW / perDeviceDRAMBW,
		i.HostLinkBW / perDeviceHostBW
}

// ISPCycleModel returns a cycle model for the accelerator inside the ISP
// device: the same pipeline, but fed from LPDDR5X and without the per-block
// OpenCL dispatch overhead of the FPGA platform.
func ISPCycleModel(dGroup, headDim int) CycleModel {
	m := DefaultCycleModel(dGroup, headDim)
	m.DRAMBW = EnvisionedISP().DRAMBW
	m.ClockHz = 300e6
	m.OverheadCycles = 100 // hardwired dispatch, no OpenCL/XRT round trip
	return m
}
