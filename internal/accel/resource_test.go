package accel

import (
	"math"
	"testing"
)

// Table 3 measured rows.
var table3Measured = []Utilization{
	{DGroup: 1, LUTPct: 38.76, FFPct: 28.57, BRAMPct: 51.02, URAMPct: 9.38, DSPPct: 10.06, PeakGFLOPS: 11.9, PowerW: 11.25},
	{DGroup: 4, LUTPct: 56.60, FFPct: 39.70, BRAMPct: 59.30, URAMPct: 9.38, DSPPct: 20.27, PeakGFLOPS: 46.8, PowerW: 15.39},
	{DGroup: 5, LUTPct: 67.40, FFPct: 46.15, BRAMPct: 58.49, URAMPct: 9.38, DSPPct: 27.79, PeakGFLOPS: 56.3, PowerW: 16.08},
}

func relErr(got, want float64) float64 { return math.Abs(got-want) / want }

func TestResourceModelFitsTable3(t *testing.T) {
	rows, err := Table3(128)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("Table3 returned %d rows", len(rows))
	}
	for i, m := range table3Measured {
		got := rows[i]
		checks := []struct {
			name      string
			got, want float64
			tol       float64
		}{
			{"LUT", got.LUTPct, m.LUTPct, 0.06},
			{"FF", got.FFPct, m.FFPct, 0.06},
			{"BRAM", got.BRAMPct, m.BRAMPct, 0.06},
			{"URAM", got.URAMPct, m.URAMPct, 0.001},
			{"DSP", got.DSPPct, m.DSPPct, 0.10},
			{"GFLOPS", got.PeakGFLOPS, m.PeakGFLOPS, 0.05},
			{"Power", got.PowerW, m.PowerW, 0.03},
		}
		for _, c := range checks {
			if relErr(c.got, c.want) > c.tol {
				t.Errorf("d_group=%d %s: model %.2f vs Table 3 %.2f (tol %.0f%%)",
					m.DGroup, c.name, c.got, c.want, c.tol*100)
			}
		}
	}
}

func TestResourceMonotoneInDGroup(t *testing.T) {
	r := DefaultResourceModel(128)
	prev, err := r.Estimate(1)
	if err != nil {
		t.Fatal(err)
	}
	for g := 2; g <= 6; g++ {
		u, err := r.Estimate(g)
		if err != nil {
			t.Fatalf("d_group=%d: %v", g, err)
		}
		if u.LUTPct <= prev.LUTPct || u.DSPPct <= prev.DSPPct || u.PowerW <= prev.PowerW {
			t.Errorf("resources not monotone at d_group=%d", g)
		}
		prev = u
	}
}

func TestMaxDGroupBounded(t *testing.T) {
	r := DefaultResourceModel(128)
	max := r.MaxDGroup()
	// The KU15P runs out of LUTs near d_group ≈ 9-10 under the fit; the
	// platform must support at least the paper's d_group = 5.
	if max < 5 {
		t.Errorf("MaxDGroup = %d, must support the paper's d_group=5", max)
	}
	if max > 16 {
		t.Errorf("MaxDGroup = %d implausibly large for a KU15P", max)
	}
	if _, err := r.Estimate(max + 1); err == nil {
		t.Error("Estimate(max+1) did not fail")
	}
}

func TestEstimateRejectsBadDGroup(t *testing.T) {
	r := DefaultResourceModel(128)
	if _, err := r.Estimate(0); err == nil {
		t.Error("d_group=0 accepted")
	}
}

// §6.2: "a full 16-accelerator deployment consumes approximately 258 W" at
// d_group = 5 — comparable to a single mid-range GPU.
func TestFleetPowerMatchesPaper(t *testing.T) {
	r := DefaultResourceModel(128)
	u, err := r.Estimate(5)
	if err != nil {
		t.Fatal(err)
	}
	fleet := 16 * u.PowerW
	if fleet < 245 || fleet > 270 {
		t.Errorf("16-device power = %.1f W, paper reports ≈ 258 W", fleet)
	}
}

func TestISPProjection(t *testing.T) {
	isp := EnvisionedISP()
	if isp.AreaMM2 != 0.47 || isp.PowerW != 1.13 {
		t.Errorf("ISP area/power %v/%v, want 0.47 mm² / 1.13 W (§7.1)", isp.AreaMM2, isp.PowerW)
	}
	// §7.1: one ISP unit ≈ four SmartSSDs on the storage-bandwidth axis.
	storage, memory, host := isp.EquivalentSmartSSDs(4e9, 19.2e9, 2e9)
	if storage < 3.5 || storage > 4.5 {
		t.Errorf("ISP storage equivalence = %.2f SmartSSDs, want ≈ 4", storage)
	}
	if memory < 3 || host < 3 {
		t.Errorf("ISP memory/host equivalence %.2f/%.2f below ≈ 4", memory, host)
	}
}

func TestISPCycleModelFaster(t *testing.T) {
	fpga := DefaultCycleModel(1, 128)
	isp := ISPCycleModel(1, 128)
	s := 32 * 1024
	if isp.KernelTime(s) >= fpga.KernelTime(s) {
		t.Error("ISP kernel not faster than FPGA kernel despite LPDDR5X")
	}
}
