package accel

import "testing"

// §7.2: scaling the d_group=5 softmax path 4× via DSP parallelization needs
// over 2,000 DSPs — beyond the KU15P.
func TestPCIe5DSPDemandExceedsKU15P(t *testing.T) {
	r := DefaultResourceModel(128)
	dsps, err := DSPsForThroughputScale(r, 5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if dsps <= 2000 {
		t.Errorf("4x d_group=5 needs %.0f DSPs, paper says over 2,000", dsps)
	}
	if FitsKU15PDSPs(dsps) {
		t.Error("demand unexpectedly fits the KU15P")
	}
	// The baseline configuration itself fits.
	base, _ := DSPsForThroughputScale(r, 5, 1)
	if !FitsKU15PDSPs(base) {
		t.Error("baseline d_group=5 does not fit")
	}
}

func TestDSPScaleValidation(t *testing.T) {
	r := DefaultResourceModel(128)
	if _, err := DSPsForThroughputScale(r, 1, 0); err == nil {
		t.Error("zero scale accepted")
	}
}

// Dedicated exponential units raise the softmax throughput without touching
// the GEMV or memory paths.
func TestDedicatedExpUnits(t *testing.T) {
	base := DefaultCycleModel(5, 128)
	fast := base.WithDedicatedExpUnits()
	_, _, smBase, _ := base.UnitCycles()
	_, _, smFast, _ := fast.UnitCycles()
	if smFast*4 != smBase {
		t.Errorf("dedicated exp units: %v vs %v cycles, want 4x reduction", smFast, smBase)
	}
	mem, qk, _, sv := base.UnitCycles()
	memF, qkF, _, svF := fast.UnitCycles()
	if mem != memF || qk != qkF || sv != svF {
		t.Error("dedicated exp units perturbed other pipeline stages")
	}
}

func TestDualClockDomains(t *testing.T) {
	base := DefaultCycleModel(5, 128)
	fast, err := base.WithDualClockDomains(450e6)
	if err != nil {
		t.Fatal(err)
	}
	_, _, smBase, _ := base.UnitCycles()
	_, _, smFast, _ := fast.UnitCycles()
	if smFast >= smBase {
		t.Error("dual clock did not shrink the softmax stage")
	}
	if _, err := base.WithDualClockDomains(100e6); err == nil {
		t.Error("slower softmax domain accepted")
	}
}

// The current SmartSSD saturates its PCIe 3.0 internal path; a naive port
// to a PCIe 5.0-class path would not keep up without the §7.2 refinements,
// while the refined future CSD does.
func TestFutureCSDSaturation(t *testing.T) {
	const s = 32 * 1024
	today := SmartSSDToday()
	ok, err := today.SaturatesInterface(5, 128, s)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("current SmartSSD fails to saturate its PCIe 3.0 internal path")
	}

	// Naive port: same kernel, 4× faster flash, old DRAM — falls short.
	naive := today
	naive.InternalBW = 13.6e9
	ok, err = naive.SaturatesInterface(5, 128, s)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("naive PCIe 5.0 port unexpectedly saturates 13.6 GB/s")
	}

	future := PCIe5CSD()
	ok, err = future.SaturatesInterface(5, 128, s)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		r, _ := future.KernelRate(5, 128, s)
		t.Errorf("refined future CSD reaches only %.1f GB/s of its %.1f GB/s path",
			r/1e9, future.InternalBW/1e9)
	}
}

// The future CSD trades capacity for bandwidth at constant price — the
// "more balanced design" of §7.2.
func TestFutureCSDBalancedTradeoff(t *testing.T) {
	today, future := SmartSSDToday(), PCIe5CSD()
	if future.PriceUSD != today.PriceUSD {
		t.Error("future CSD not at constant cost")
	}
	if future.CapBytes >= today.CapBytes {
		t.Error("future CSD did not give up capacity")
	}
	if future.InternalBW <= today.InternalBW {
		t.Error("future CSD did not gain internal bandwidth")
	}
}
