package accel

import (
	"math"

	"repro/internal/attention"
	"repro/internal/fp16"
	"repro/internal/tensor"
)

// This file implements the parallel functional datapath of the accelerator
// model: AttentionWorkers shards the (query group × K/V chunk) grid across
// the kernel worker pool (tensor.ParallelFor) while staying bit-identical to
// a one-worker run, mirroring the internal/attention dataflow:
//
//   - The chunk partition is a pure function of shape + settings
//     (attention.ChunkSpan at the hardware block size), never of worker
//     count, and every (group, chunk) work item owns its score slice, its
//     per-block stat slots and its chunk accumulator.
//   - Per-group softmax statistics fold serially in block index order —
//     exactly the serial dataflow's association — and chunk accumulators
//     reduce through the same fixed-shape stride-doubling tree the
//     attention kernels use.
//
// attentionSerial retains the original single-pass loop as the golden
// reference; with the chunk span pinned past the sequence length the
// parallel datapath degenerates to it bit-for-bit (one chunk, same fold
// order), which the tests pin.

// accelMinParallelWork is the floor, in group·token units, below which the
// grid runs inline on the calling goroutine: dispatching pool workers for a
// few blocks costs more than it saves. A pure function of shape, so it
// cannot perturb results.
const accelMinParallelWork = 16 * 1024

// roundFP16Rows quantizes m through binary16 in place, sharding row ranges
// across the pool. Quantization is element-wise, so sharding is trivially
// bit-identical to tensor.Mat.RoundFP16.
func roundFP16Rows(m tensor.Mat, workers int) {
	const rowsPerShard = 64
	if m.Rows*m.Cols < accelMinParallelWork || workers <= 1 {
		fp16.RoundSlice(m.Data)
		return
	}
	shards := (m.Rows + rowsPerShard - 1) / rowsPerShard
	tensor.ParallelFor(shards, workers, func(sh int) {
		lo := sh * rowsPerShard
		hi := lo + rowsPerShard
		if hi > m.Rows {
			hi = m.Rows
		}
		fp16.RoundSlice(m.Data[lo*m.Cols : hi*m.Cols])
	})
}

// treeAddVec reduces per-chunk FP32 accumulators with the fixed-shape
// stride-doubling tree: parts[i] absorbs parts[i+stride] element-wise for
// stride 1, 2, 4, …. The combination order depends only on len(parts), so
// goroutine completion order can never reach a bit. Returns parts[0].
//
//lint:allow floataccum fixed-tree FP32 adds mirror the hardware's lane reduction
func treeAddVec(parts [][]float32) []float32 {
	for stride := 1; stride < len(parts); stride *= 2 {
		for i := 0; i+stride < len(parts); i += 2 * stride {
			dst, src := parts[i], parts[i+stride]
			for j := range dst {
				dst[j] += src[j]
			}
		}
	}
	return parts[0]
}

// AttentionWorkers computes Attention with an explicit worker count. The
// padded sequence splits into block-aligned chunks of
// attention.ChunkSpan(HeadDim, BlockTokens) tokens; (group × chunk) work
// items fill index-owned score and block-stat slots (phase 1: query-key
// product + per-block softmax statistics), the per-group statistics fold
// serially in block order, and a second (group × chunk) pass accumulates
// score·V into per-chunk slots that reduce through the fixed tree (phase 2).
// Results are bit-identical for every workers value, 1 included; Attention
// delegates here with the default worker count.
//
//lint:allow floataccum per-chunk score·V slots model the hardware's FP32 accumulators
func (a *Accelerator) AttentionWorkers(q, k, v tensor.Mat, mask []bool, hostScores, hostV tensor.Mat, workers int) (tensor.Mat, error) {
	if err := a.validateAttention(q, k, v, hostScores, hostV); err != nil {
		return tensor.Mat{}, err
	}

	// Storage precision emulation; K/V quantization shards across the pool.
	q = q.Clone().RoundFP16()
	k = k.Clone()
	v = v.Clone()
	roundFP16Rows(k, workers)
	roundFP16Rows(v, workers)

	s := k.Rows
	sPad := PadSequence(s)
	scale := float32(1 / math.Sqrt(float64(a.cfg.HeadDim)))
	nb := (sPad + BlockTokens - 1) / BlockTokens
	span := attention.ChunkSpan(a.cfg.HeadDim, BlockTokens)
	nChunks := (sPad + span - 1) / span
	dg := a.cfg.DGroup
	if dg*sPad < accelMinParallelWork {
		workers = 1
	}

	out := tensor.New(q.Rows, v.Cols)

	// Index-owned slots: per-group score rows (SM-Buf contents, stored
	// FP16), per-block softmax statistics, per-(group, chunk) accumulators.
	scores := make([]float32, dg*sPad)
	blockM := make([]float64, dg*nb)
	blockZ := make([]float64, dg*nb)
	acc := make([][]float32, dg*nChunks)
	for i := range acc {
		acc[i] = make([]float32, v.Cols)
	}

	// Phase 1: query-key product unit + per-block statistics. Chunks are
	// block-aligned, so each block's score slice and stat slot have exactly
	// one writer.
	tensor.ParallelFor(dg*nChunks, workers, func(it int) {
		g, c := it/nChunks, it%nChunks
		clo := c * span
		chi := clo + span
		if chi > sPad {
			chi = sPad
		}
		qrow := q.Row(g)
		for lo := clo; lo < chi; lo += BlockTokens {
			hi := lo + BlockTokens
			if hi > sPad {
				hi = sPad
			}
			blockScores := a.qkBlock(qrow, k, lo, hi, scale)
			fp16.RoundSlice(blockScores)
			copy(scores[g*sPad+lo:g*sPad+hi], blockScores)
			bm := blockMask(mask, lo, hi, s)
			mB, sB := attention.BlockStats(blockScores, bm)
			b := lo / BlockTokens
			blockM[g*nb+b], blockZ[g*nb+b] = mB, sB
		}
	})

	// Per-group serial fold of block statistics in index order — the same
	// association as the serial dataflow — then the host delayed-writeback
	// partial merge, exactly as in attentionSerial.
	stats := make([]attention.Stats, dg)
	partials := make([]attention.Partial, dg)
	for g := 0; g < dg; g++ {
		st := attention.NewStats()
		for b := 0; b < nb; b++ {
			st.UpdateBlock(blockM[g*nb+b], blockZ[g*nb+b])
		}
		if hostScores.Rows > 0 {
			hp := attention.PartialFromScores(hostScores.Row(g), hostV)
			partials[g] = hp
			st.Merge(hp.Stats)
		}
		stats[g] = st
	}

	// Phase 2: softmax normalization + score-value product units. Every
	// chunk accumulates into its own slot with the settled global max.
	tensor.ParallelFor(dg*nChunks, workers, func(it int) {
		g, c := it/nChunks, it%nChunks
		clo := c * span
		chi := clo + span
		if chi > sPad {
			chi = sPad
		}
		st := stats[g]
		arow := acc[it]
		grow := scores[g*sPad : (g+1)*sPad]
		for lo := clo; lo < chi; lo += BlockTokens {
			hi := lo + BlockTokens
			if hi > sPad {
				hi = sPad
			}
			bm := blockMask(mask, lo, hi, s)
			for i := lo; i < hi; i++ {
				x := grow[i]
				if bm != nil && !bm[i-lo] {
					x = attention.MaskValue
				}
				w := float32(math.Exp(float64(x) - st.M))
				if w == 0 || i >= s {
					continue
				}
				vrow := v.Row(i)
				for j := range arow {
					arow[j] += w * vrow[j]
				}
			}
		}
	})

	// Fixed-tree merge per group, then the host partial fold and the global
	// normalization (second pass, line 11).
	for g := 0; g < dg; g++ {
		orow := out.Row(g)
		if nChunks > 0 {
			copy(orow, treeAddVec(acc[g*nChunks:(g+1)*nChunks]))
		}
		st := stats[g]
		if hostScores.Rows > 0 {
			r := float32(math.Exp(partials[g].Stats.M - st.M))
			for j := range orow {
				orow[j] += partials[g].Acc[j] * r
			}
		}
		inv := float32(1 / st.Z)
		for j := range orow {
			orow[j] *= inv
		}
	}
	return out, nil
}
