package accel

import (
	"math/rand"
	"testing"

	"repro/internal/attention"
	"repro/internal/tensor"
)

const tol = 3e-3 // FP16-storage tolerance against the FP32 reference

func newAccel(t *testing.T, dGroup, headDim int) *Accelerator {
	t.Helper()
	a, err := New(Config{DGroup: dGroup, HeadDim: headDim})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// refFP16 computes the reference attention on FP16-quantized inputs,
// mirroring the accelerator's storage precision.
func refFP16(q, k, v tensor.Mat, mask []bool) tensor.Mat {
	return attention.Ref(q.Clone().RoundFP16(), k.Clone().RoundFP16(), v.Clone().RoundFP16(), mask)
}

func TestTransposeBlock(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	b := tensor.RandMat(rng, 128, 64, 1)
	bt := TransposeBlock(b)
	if bt.Rows != 64 || bt.Cols != 128 {
		t.Fatalf("transpose shape %dx%d", bt.Rows, bt.Cols)
	}
	if d := tensor.MaxAbsDiff(TransposeBlock(bt), b); d != 0 {
		t.Errorf("double transpose differs by %v", d)
	}
}

func TestTransposeBlockTooLarge(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("oversized block not rejected")
		}
	}()
	TransposeBlock(tensor.New(129, 10))
}

func TestPadSequence(t *testing.T) {
	cases := map[int]int{1: 32, 32: 32, 33: 64, 128: 128, 1000: 1024}
	for in, want := range cases {
		if got := PadSequence(in); got != want {
			t.Errorf("PadSequence(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestBlocks(t *testing.T) {
	cases := map[int]int{1: 1, 128: 1, 129: 2, 4096: 32}
	for in, want := range cases {
		if got := Blocks(in); got != want {
			t.Errorf("Blocks(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestAttentionMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, s := range []int{1, 31, 128, 129, 500} {
		for _, dg := range []int{1, 4} {
			a := newAccel(t, dg, 64)
			q := tensor.RandMat(rng, dg, 64, 1)
			k := tensor.RandMat(rng, s, 64, 1)
			v := tensor.RandMat(rng, s, 64, 1)
			got, err := a.Attention(q, k, v, nil, tensor.Mat{}, tensor.Mat{})
			if err != nil {
				t.Fatalf("s=%d dg=%d: %v", s, dg, err)
			}
			want := refFP16(q, k, v, nil)
			if d := tensor.MaxAbsDiff(got, want); d > tol {
				t.Errorf("s=%d dg=%d: accelerator differs from reference by %v", s, dg, d)
			}
		}
	}
}

func TestAttentionWithMask(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := 300
	a := newAccel(t, 1, 32)
	q := tensor.RandMat(rng, 1, 32, 1)
	k := tensor.RandMat(rng, s, 32, 1)
	v := tensor.RandMat(rng, s, 32, 1)
	mask := make([]bool, s)
	for i := range mask {
		mask[i] = rng.Intn(3) != 0
	}
	got, err := a.Attention(q, k, v, mask, tensor.Mat{}, tensor.Mat{})
	if err != nil {
		t.Fatal(err)
	}
	want := refFP16(q, k, v, mask)
	if d := tensor.MaxAbsDiff(got, want); d > tol {
		t.Errorf("masked accelerator differs by %v", d)
	}
}

// Delayed writeback on the accelerator: storage-resident KV plus host
// partial scores must equal attention over the concatenated cache.
func TestAttentionWithHostPartial(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	sOld, c := 256, 16
	a := newAccel(t, 1, 64)
	q := tensor.RandMat(rng, 1, 64, 1).RoundFP16()
	k := tensor.RandMat(rng, sOld+c, 64, 1).RoundFP16()
	v := tensor.RandMat(rng, sOld+c, 64, 1).RoundFP16()

	// Host CPU precomputes scaled QKᵀ over the buffered keys (Fig. 6b).
	hostScores := attention.Scores(q, k.SliceRows(sOld, sOld+c))
	hostV := v.SliceRows(sOld, sOld+c)

	got, err := a.Attention(q, k.SliceRows(0, sOld), v.SliceRows(0, sOld), nil, hostScores, hostV)
	if err != nil {
		t.Fatal(err)
	}
	want := refFP16(q, k, v, nil)
	if d := tensor.MaxAbsDiff(got, want); d > tol {
		t.Errorf("host-partial attention differs from full by %v", d)
	}
}

func TestAttentionInputValidation(t *testing.T) {
	a := newAccel(t, 2, 64)
	q := tensor.New(1, 64) // wrong query rows for d_group=2
	k := tensor.New(8, 64)
	v := tensor.New(8, 64)
	if _, err := a.Attention(q, k, v, nil, tensor.Mat{}, tensor.Mat{}); err == nil {
		t.Error("query-row mismatch accepted")
	}
	q = tensor.New(2, 32) // wrong head dim
	if _, err := a.Attention(q, k, v, nil, tensor.Mat{}, tensor.Mat{}); err == nil {
		t.Error("head-dim mismatch accepted")
	}
	q = tensor.New(2, 64)
	v = tensor.New(7, 64)
	if _, err := a.Attention(q, k, v, nil, tensor.Mat{}, tensor.Mat{}); err == nil {
		t.Error("k/v row mismatch accepted")
	}
}

func TestConfigValidate(t *testing.T) {
	if _, err := New(Config{DGroup: 0, HeadDim: 64}); err == nil {
		t.Error("d_group 0 accepted")
	}
	if _, err := New(Config{DGroup: 1, HeadDim: 256}); err == nil {
		t.Error("head dim 256 accepted")
	}
}
