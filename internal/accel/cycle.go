package accel

import "fmt"

// CycleModel is the performance model of the pipelined dataflow. The four
// units of Figure 7 run as a task-level pipeline (the DATAFLOW pragma,
// §5.4), so the steady-state block time is the maximum of the per-unit
// block times; off-chip DRAM is the shared roofline.
//
// Default constants reproduce the paper's implementation (§5.4, §6.2):
// 296.05 MHz clock, 128 MAC lanes per query, exponential units with loop
// unrolling factor 2, 512-bit AXI bursts, DDR4-2400 (19.2 GB/s peak).
type CycleModel struct {
	ClockHz    float64 // accelerator clock
	MACLanes   int     // parallel MACs per query lane (128)
	ExpPerLane float64 // exponentials per cycle per query lane (unroll 2)
	DGroup     int     // query heads sharing the KV stream
	HeadDim    int     // per-head dimension d
	DRAMBW     float64 // off-chip DRAM peak bytes/s
	DRAMEff    float64 // achievable DRAM efficiency for the access pattern
	// OverheadCycles is the fixed per-block control overhead (kernel
	// dispatch, AXI burst setup); it lowers the storage-fetched kernel
	// rates of Fig. 12(a) below the pure pipeline rate of Table 3.
	OverheadCycles float64
	// Overlapped, when true, models the control overhead of block n+1 as
	// hidden under block n's pipeline stages — the per-block steady-state
	// cost becomes max(BlockCycles, OverheadCycles) instead of their sum,
	// matching the parallel functional datapath where dispatch and compute
	// proceed concurrently. Default false: the published figures were
	// produced with serialized overhead, and their goldens pin that mode.
	Overlapped bool
}

// DefaultCycleModel returns the calibrated model for the KU15P SmartSSD
// implementation.
func DefaultCycleModel(dGroup, headDim int) CycleModel {
	return CycleModel{
		ClockHz:        296.05e6,
		MACLanes:       128,
		ExpPerLane:     2,
		DGroup:         dGroup,
		HeadDim:        headDim,
		DRAMBW:         19.2e9,
		DRAMEff:        0.62,
		OverheadCycles: 1200,
	}
}

// Validate reports invalid parameter combinations.
func (m CycleModel) Validate() error {
	switch {
	case m.ClockHz <= 0 || m.DRAMBW <= 0 || m.DRAMEff <= 0 || m.DRAMEff > 1:
		return fmt.Errorf("accel: invalid clock/DRAM parameters")
	case m.MACLanes <= 0 || m.ExpPerLane <= 0 || m.DGroup <= 0 || m.HeadDim <= 0:
		return fmt.Errorf("accel: invalid unit parameters")
	}
	return nil
}

// bytesPerCycle returns effective DRAM bytes moved per accelerator cycle.
func (m CycleModel) bytesPerCycle() float64 {
	return m.DRAMBW * m.DRAMEff / m.ClockHz
}

// KVBytesPerBlock returns the K+V bytes fetched from DRAM per 128-token
// block (shared across the d_group query lanes).
func (m CycleModel) KVBytesPerBlock() float64 {
	return 2 * BlockTokens * float64(m.HeadDim) * 2 // K and V, FP16
}

// blockDRAMBytes returns all DRAM traffic per block: the shared K+V stream
// plus the QKᵀ score spill/reload between the two softmax passes
// (d_group × 128 FP16 scores written then read).
func (m CycleModel) blockDRAMBytes() float64 {
	scores := float64(m.DGroup) * BlockTokens * 2
	return m.KVBytesPerBlock() + 2*scores
}

// blockFLOPs returns the arithmetic per block: QKᵀ and score·V MACs for each
// of the d_group queries plus the softmax exponential/normalization work.
func (m CycleModel) blockFLOPs() float64 {
	macs := 2 * float64(m.DGroup) * 2 * BlockTokens * float64(m.HeadDim) // QK + SV, 2 FLOPs/MAC
	softmax := 5 * float64(m.DGroup) * BlockTokens                       // exp, add, max, exp, div
	return macs + softmax
}

// UnitCycles returns the per-block cycle counts of each pipeline unit in
// steady state: DRAM movement, the two GEMV units, and the two softmax
// passes (exp-unit bound).
func (m CycleModel) UnitCycles() (mem, qk, softmax, sv float64) {
	mem = m.blockDRAMBytes() / m.bytesPerCycle()
	// GEMV: BlockTokens×HeadDim MACs per query, MACLanes per cycle, query
	// lanes in parallel (d_group × 128 MAC units, §4.4).
	qk = BlockTokens * float64(m.HeadDim) / float64(m.MACLanes)
	sv = qk
	// Softmax passes: 2 passes × 128 exponentials per query lane, each lane
	// has ExpPerLane exponential units.
	softmax = 2 * BlockTokens / m.ExpPerLane
	return mem, qk, softmax, sv
}

// BlockCycles returns the steady-state cycles per block (slowest pipeline
// stage) without per-block overhead.
func (m CycleModel) BlockCycles() float64 {
	mem, qk, sm, sv := m.UnitCycles()
	c := mem
	for _, v := range []float64{qk, sm, sv} {
		if v > c {
			c = v
		}
	}
	return c
}

// Blocks returns the number of 128-token blocks for sequence length s after
// AXI padding.
func Blocks(s int) int {
	return (PadSequence(s) + BlockTokens - 1) / BlockTokens
}

// blockCost returns the steady-state per-block cost including control
// overhead: serialized (compute + overhead) by default, or the slower of
// the two when Overlapped hides dispatch under the pipeline.
func (m CycleModel) blockCost() float64 {
	bc := m.BlockCycles()
	if m.Overlapped {
		if m.OverheadCycles > bc {
			return m.OverheadCycles
		}
		return bc
	}
	return bc + m.OverheadCycles
}

// KernelTime returns the time to run one attention pass (d_group queries
// over an s-token KV cache) including per-block overhead and pipeline fill.
func (m CycleModel) KernelTime(s int) float64 {
	if s <= 0 {
		return 0
	}
	nb := float64(Blocks(s))
	_, qk, sm, sv := m.UnitCycles()
	fill := qk + sm + sv // first block traverses all compute stages
	cycles := nb*m.blockCost() + fill
	return cycles / m.ClockHz
}

// SustainedGFLOPS is the steady-state pipeline arithmetic rate with data
// resident in FPGA DRAM and no dispatch overhead — the "Peak Perf." column
// of Table 3.
func (m CycleModel) SustainedGFLOPS() float64 {
	return m.blockFLOPs() / m.BlockCycles() * m.ClockHz / 1e9
}

// KernelKVRate returns the KV-cache consumption rate (bytes/s) of the kernel
// alone at sequence length s — the MHA/GQA series of Fig. 12(a).
func (m CycleModel) KernelKVRate(s int) float64 {
	t := m.KernelTime(s)
	if t == 0 {
		return 0
	}
	return float64(Blocks(s)) * m.KVBytesPerBlock() / t
}

// PipelinedRate returns the end-to-end KV consumption rate when KV data is
// fetched from flash at storageBW and double-buffered into the accelerator:
// the slower of the storage path and the kernel (§6.4: "all kernels deliver
// far more than 3.0 GB/s, well exceeding the SSD's P2P read bandwidth").
func (m CycleModel) PipelinedRate(s int, storageBW float64) float64 {
	kr := m.KernelKVRate(s)
	if storageBW < kr {
		return storageBW
	}
	return kr
}
