package accel

import "fmt"

// This file models the §7.2 discussion: what current CSD platforms lack and
// which architectural refinements would let near-storage attention keep up
// with PCIe 5.0-class storage.

// ExpUnitDSPCost is the DSP budget of one floating-point exponential unit on
// the KU15P (Vitis HLS math library implementation). Derived from the Table 3
// fit: the per-lane DSP increment (≈ 82 DSPs/lane) is dominated by the two
// exponential units plus the MAC slice of a lane.
const ExpUnitDSPCost = 30

// DSPsForThroughputScale returns the DSP count required to scale the softmax
// path of a d_group configuration by the given throughput factor via DSP
// parallelization alone (§7.2: "to match a 4× throughput increase from the
// assumed PCIe 5.0 interface via DSP parallelization, the design would
// require over 2,000 DSPs").
func DSPsForThroughputScale(r ResourceModel, dGroup int, scale float64) (float64, error) {
	if scale <= 0 {
		return 0, fmt.Errorf("accel: non-positive scale %v", scale)
	}
	u, err := r.Estimate(dGroup)
	if err != nil {
		// The baseline configuration itself may not fit; report demand
		// anyway from the unclamped model.
		u = Utilization{DSPPct: r.DSPBase + r.DSPPerLane*float64(dGroup)}
	}
	baseDSPs := u.DSPPct / 100 * KU15PDSPs
	return baseDSPs * scale, nil
}

// FitsKU15PDSPs reports whether a DSP demand fits the platform.
func FitsKU15PDSPs(dsps float64) bool { return dsps <= KU15PDSPs }

// WithDedicatedExpUnits returns a cycle model in which the exponential
// function is a hardened unit rather than a DSP composition (§7.2's first
// proposal: "dedicated units for exponential functions... would
// significantly enhance the viability of CSDs for deep learning"). The
// hardened unit sustains one exponential per cycle per lane pair, i.e. 4×
// the HLS implementation's throughput at a fraction of the DSP cost.
func (m CycleModel) WithDedicatedExpUnits() CycleModel {
	m.ExpPerLane *= 4
	return m
}

// WithDualClockDomains returns a cycle model where the compute-intensive
// softmax logic runs in a faster clock domain while memory-bound GEMV logic
// stays at the base clock (§7.2's second proposal). Because the sim
// expresses unit times in base-clock cycles, the softmax cycle count shrinks
// by the domain ratio.
func (m CycleModel) WithDualClockDomains(softmaxClockHz float64) (CycleModel, error) {
	if softmaxClockHz <= m.ClockHz {
		return m, fmt.Errorf("accel: softmax domain %v Hz not above base %v Hz", softmaxClockHz, m.ClockHz)
	}
	m.ExpPerLane *= softmaxClockHz / m.ClockHz
	return m, nil
}

// FutureCSD describes a §7.2 "more balanced" computational storage device:
// trading unneeded capacity for internal bandwidth and compute.
type FutureCSD struct {
	Name           string
	CapBytes       int64
	InternalBW     float64 // flash→accelerator bytes/s
	DRAMBW         float64 // accelerator off-chip memory bytes/s
	HostLinkBW     float64
	PriceUSD       float64
	DedicatedExp   bool
	SoftmaxClockHz float64 // 0 = single clock domain
	// DispatchOverheadCycles replaces the OpenCL/XRT per-block dispatch
	// cost; a streamlined command path (hardwired queues, as in the §7.1
	// ISP projection) is part of a balanced next-generation design.
	DispatchOverheadCycles float64
}

// SmartSSDToday returns the current-generation device for comparison.
func SmartSSDToday() FutureCSD {
	return FutureCSD{
		Name:                   "SmartSSD (PCIe 3.0)",
		CapBytes:               3840e9,
		InternalBW:             3.4e9,
		DRAMBW:                 19.2e9,
		HostLinkBW:             3.4e9,
		PriceUSD:               2400,
		DispatchOverheadCycles: 1200, // OpenCL/XRT round trips
	}
}

// PCIe5CSD returns a next-generation device with a 4× internal interface
// (§7.2's premise) and the two §7.2 refinements enabled.
func PCIe5CSD() FutureCSD {
	return FutureCSD{
		Name:                   "CSD (PCIe 5.0, dedicated exp, dual clock)",
		CapBytes:               1920e9, // half the capacity: "less capacity, more internal bandwidth"
		InternalBW:             13.6e9, // 4× the PCIe 3.0 path
		DRAMBW:                 68e9,   // LPDDR5X-class
		HostLinkBW:             13.6e9,
		PriceUSD:               2400, // capacity↓ funds bandwidth↑ at constant cost
		DedicatedExp:           true,
		SoftmaxClockHz:         450e6,
		DispatchOverheadCycles: 200, // streamlined command path
	}
}

// KernelRate returns the device's end-to-end attention rate (KV bytes/s) at
// sequence length s for a d_group configuration: the kernel pipeline fed
// from this device's DRAM, bounded by its internal flash path.
func (c FutureCSD) KernelRate(dGroup, headDim, s int) (float64, error) {
	m := DefaultCycleModel(dGroup, headDim)
	m.DRAMBW = c.DRAMBW
	m.OverheadCycles = c.DispatchOverheadCycles
	if c.DedicatedExp {
		m = m.WithDedicatedExpUnits()
	}
	if c.SoftmaxClockHz > 0 {
		var err error
		m, err = m.WithDualClockDomains(c.SoftmaxClockHz)
		if err != nil {
			return 0, err
		}
	}
	return m.PipelinedRate(s, c.InternalBW), nil
}

// SaturatesInterface reports whether the kernel keeps up with the device's
// internal storage path (the §7.2 viability criterion).
func (c FutureCSD) SaturatesInterface(dGroup, headDim, s int) (bool, error) {
	r, err := c.KernelRate(dGroup, headDim, s)
	if err != nil {
		return false, err
	}
	return r >= c.InternalBW*0.999, nil
}
