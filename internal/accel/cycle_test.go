package accel

import (
	"math"
	"testing"
)

// Table 3 "Peak Perf." column: the cycle model must reproduce the measured
// sustained GFLOPS within 5%.
func TestSustainedGFLOPSMatchesTable3(t *testing.T) {
	want := map[int]float64{1: 11.9, 4: 46.8, 5: 56.3}
	for dg, w := range want {
		m := DefaultCycleModel(dg, 128)
		got := m.SustainedGFLOPS()
		if rel := math.Abs(got-w) / w; rel > 0.05 {
			t.Errorf("d_group=%d: sustained %.2f GFLOPS vs Table 3 %.1f (%.1f%% off)", dg, got, w, rel*100)
		}
	}
}

// Fig. 12(a): all kernels deliver far more than 3.0 GB/s, exceeding the
// SmartSSD's ~3.2 GB/s P2P read bandwidth; GQA kernels are slightly slower
// than the d_group=1 kernel due to higher arithmetic intensity.
func TestKernelRatesMatchFig12a(t *testing.T) {
	const s = 32 * 1024
	ssdP2P := 3.2e9
	rate := func(dg int) float64 { return DefaultCycleModel(dg, 128).KernelKVRate(s) }
	mha, gqa4, gqa5 := rate(1), rate(4), rate(5)
	for name, r := range map[string]float64{"MHA": mha, "GQA4": gqa4, "GQA5": gqa5} {
		if r <= 3.0e9 {
			t.Errorf("%s kernel rate %.2f GB/s not above 3.0 GB/s", name, r/1e9)
		}
		if r <= ssdP2P {
			t.Errorf("%s kernel rate %.2f GB/s does not exceed SSD P2P read", name, r/1e9)
		}
		if r > 10e9 {
			t.Errorf("%s kernel rate %.2f GB/s implausibly high for the Fig. 12a axis", name, r/1e9)
		}
	}
	if !(gqa5 <= gqa4 && gqa4 <= mha) {
		t.Errorf("GQA kernels not slightly slower than MHA: mha=%.2f gqa4=%.2f gqa5=%.2f GB/s",
			mha/1e9, gqa4/1e9, gqa5/1e9)
	}
}

// The end-to-end pipelined rate is storage-bound on the SmartSSD.
func TestPipelinedRateStorageBound(t *testing.T) {
	m := DefaultCycleModel(1, 128)
	got := m.PipelinedRate(32*1024, 3.2e9)
	if got != 3.2e9 {
		t.Errorf("pipelined rate %.2f GB/s, want SSD-bound 3.2", got/1e9)
	}
	// With an ISP-class internal path the kernel becomes the limiter.
	fast := m.PipelinedRate(32*1024, 100e9)
	if fast >= 100e9 || fast != m.KernelKVRate(32*1024) {
		t.Errorf("fast-storage rate %.2f GB/s should be kernel-bound", fast/1e9)
	}
}

func TestKernelTimeScalesLinearly(t *testing.T) {
	m := DefaultCycleModel(1, 128)
	t16 := m.KernelTime(16 * 1024)
	t32 := m.KernelTime(32 * 1024)
	ratio := t32 / t16
	if ratio < 1.9 || ratio > 2.1 {
		t.Errorf("kernel time ratio 32K/16K = %.3f, want ≈ 2", ratio)
	}
	if m.KernelTime(0) != 0 {
		t.Error("zero-length kernel time not zero")
	}
}

func TestUnitCyclesMemBound(t *testing.T) {
	m := DefaultCycleModel(1, 128)
	mem, qk, sm, sv := m.UnitCycles()
	if mem <= qk || mem <= sm || mem <= sv {
		t.Errorf("pipeline not DRAM-bound: mem=%.0f qk=%.0f sm=%.0f sv=%.0f", mem, qk, sm, sv)
	}
	if m.BlockCycles() != mem {
		t.Errorf("block cycles %.0f != mem cycles %.0f", m.BlockCycles(), mem)
	}
}

func TestCycleModelValidate(t *testing.T) {
	m := DefaultCycleModel(1, 128)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	m.DRAMEff = 1.5
	if err := m.Validate(); err == nil {
		t.Error("DRAM efficiency > 1 accepted")
	}
	m = DefaultCycleModel(1, 128)
	m.MACLanes = 0
	if err := m.Validate(); err == nil {
		t.Error("zero MAC lanes accepted")
	}
}

// §7.2: softmax dominates as d_group grows; the exponential units eventually
// become the pipeline bottleneck if DRAM gets faster (PCIe 5.0 discussion).
func TestSoftmaxBottleneckAtHighDGroup(t *testing.T) {
	m := DefaultCycleModel(8, 128)
	m.DRAMBW = 100e9 // remove the DRAM roofline
	_, qk, sm, _ := m.UnitCycles()
	if sm <= qk {
		t.Skipf("softmax %0.f cycles vs gemv %0.f; model keeps softmax per-lane constant", sm, qk)
	}
}
