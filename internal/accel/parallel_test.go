package accel

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/tensor"
)

// pinChunk pins the kernel chunk span for the duration of a test body; the
// pin is an atomic, so concurrent parallel tests under -race are safe.
func pinChunk(t *testing.T, tokens int, body func()) {
	t.Helper()
	tensor.SetChunkTokens(tokens)
	defer tensor.SetChunkTokens(0)
	body()
}

func accelEqual(a, b tensor.Mat) bool {
	return a.Rows == b.Rows && a.Cols == b.Cols && reflect.DeepEqual(a.Data, b.Data)
}

// TestAttentionWorkersBitIdentical: the chunk-sharded datapath must produce
// bit-identical output for every worker count, with and without a mask, for
// shapes spanning single-block, ragged-tail, many-chunk and above-work-floor
// grids. The span is pinned to two hardware blocks so even short sequences
// exercise multi-chunk merges.
func TestAttentionWorkersBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(70))
	shapes := []struct{ dg, s, d int }{
		{1, 100, 32},  // sub-block, one chunk
		{2, 300, 16},  // ragged tail, two chunks
		{4, 1000, 64}, // many chunks
		{8, 4096, 16}, // above accelMinParallelWork: pool actually engaged
		{3, 513, 128}, // max head dim, ragged
	}
	pinChunk(t, 2*BlockTokens, func() {
		for _, sh := range shapes {
			acc, err := New(Config{DGroup: sh.dg, HeadDim: sh.d})
			if err != nil {
				t.Fatal(err)
			}
			q := tensor.RandMat(rng, sh.dg, sh.d, 1)
			k := tensor.RandMat(rng, sh.s, sh.d, 1)
			v := tensor.RandMat(rng, sh.s, sh.d, 1)
			var mask []bool
			if sh.s > 200 {
				mask = make([]bool, sh.s)
				for i := range mask {
					mask[i] = rng.Intn(8) != 0
				}
			}
			base, err := acc.AttentionWorkers(q, k, v, mask, tensor.Mat{}, tensor.Mat{}, 1)
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range []int{2, 3, 8} {
				got, err := acc.AttentionWorkers(q, k, v, mask, tensor.Mat{}, tensor.Mat{}, w)
				if err != nil {
					t.Fatal(err)
				}
				if !accelEqual(base, got) {
					t.Fatalf("shape %+v: workers=%d differs from workers=1", sh, w)
				}
			}
		}
	})
}

// TestAttentionWorkersHostPartialBitIdentical: the delayed-writeback merge
// (host partial stats + accumulator fold) happens outside the parallel
// phases and must not break worker-count invariance.
func TestAttentionWorkersHostPartialBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	acc, err := New(Config{DGroup: 4, HeadDim: 32})
	if err != nil {
		t.Fatal(err)
	}
	q := tensor.RandMat(rng, 4, 32, 1)
	k := tensor.RandMat(rng, 700, 32, 1)
	v := tensor.RandMat(rng, 700, 32, 1)
	hostV := tensor.RandMat(rng, 9, 32, 1)
	hostScores := tensor.RandMat(rng, 4, 9, 1)
	pinChunk(t, 2*BlockTokens, func() {
		base, err := acc.AttentionWorkers(q, k, v, nil, hostScores, hostV, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{2, 3, 8} {
			got, err := acc.AttentionWorkers(q, k, v, nil, hostScores, hostV, w)
			if err != nil {
				t.Fatal(err)
			}
			if !accelEqual(base, got) {
				t.Fatalf("host partial: workers=%d differs from workers=1", w)
			}
		}
	})
}

// TestAttentionWorkersOneChunkMatchesSerial: with the span pinned past the
// sequence length the grid collapses to one chunk per group and the parallel
// datapath must reproduce the retained serial reference bit-for-bit — the
// same block fold order, the same single accumulator.
func TestAttentionWorkersOneChunkMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	pinChunk(t, 1<<20, func() {
		for _, sh := range []struct{ dg, s, d int }{
			{1, 300, 64}, {4, 513, 32}, {2, 64, 16},
		} {
			acc, err := New(Config{DGroup: sh.dg, HeadDim: sh.d})
			if err != nil {
				t.Fatal(err)
			}
			q := tensor.RandMat(rng, sh.dg, sh.d, 1)
			k := tensor.RandMat(rng, sh.s, sh.d, 1)
			v := tensor.RandMat(rng, sh.s, sh.d, 1)
			want, err := acc.attentionSerial(q, k, v, nil, tensor.Mat{}, tensor.Mat{})
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range []int{1, 8} {
				got, err := acc.AttentionWorkers(q, k, v, nil, tensor.Mat{}, tensor.Mat{}, w)
				if err != nil {
					t.Fatal(err)
				}
				if !accelEqual(want, got) {
					t.Fatalf("shape %+v workers=%d: one-chunk parallel differs from serial reference", sh, w)
				}
			}
		}
	})
}

// TestTreeAddVecFixedShape: the vector tree reduction must be a pure
// function of the slot count — identical bits on identical inputs — and
// must equal a serial left fold within FP32 tolerance.
func TestTreeAddVecFixedShape(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8, 13} {
		build := func() [][]float32 {
			rs := rand.New(rand.NewSource(int64(n)))
			parts := make([][]float32, n)
			for i := range parts {
				parts[i] = make([]float32, 16)
				for j := range parts[i] {
					parts[i][j] = float32(rs.NormFloat64())
				}
			}
			return parts
		}
		serial := make([]float64, 16)
		for _, p := range build() {
			for j, x := range p {
				serial[j] += float64(x)
			}
		}
		a := treeAddVec(build())
		b := treeAddVec(build())
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("n=%d: treeAddVec not deterministic", n)
		}
		for j := range a {
			if d := float64(a[j]) - serial[j]; d > 1e-4 || d < -1e-4 {
				t.Fatalf("n=%d: tree sum %v vs serial fold %v at %d", n, a[j], serial[j], j)
			}
		}
	}
}

// TestCycleModelOverlapped: overlapped mode hides per-block overhead under
// the pipeline — kernel time never exceeds the serialized mode, collapses to
// it when overhead is zero, and is bounded below by the pure overhead chain
// when dispatch dominates.
func TestCycleModelOverlapped(t *testing.T) {
	const s = 64 * 1024
	m := DefaultCycleModel(8, 128)
	ov := m
	ov.Overlapped = true
	if to, ts := ov.KernelTime(s), m.KernelTime(s); to >= ts {
		t.Fatalf("overlapped time %v not below serialized %v", to, ts)
	}
	zero := m
	zero.OverheadCycles = 0
	zeroOv := zero
	zeroOv.Overlapped = true
	if a, b := zero.KernelTime(s), zeroOv.KernelTime(s); a != b {
		t.Fatalf("zero-overhead: overlapped %v != serialized %v", b, a)
	}
	// When overhead dwarfs compute, the overlapped block cost is exactly the
	// overhead chain.
	big := m
	big.OverheadCycles = 1e9
	big.Overlapped = true
	if got := big.blockCost(); got != 1e9 {
		t.Fatalf("overhead-dominated overlapped blockCost = %v, want 1e9", got)
	}
	// Throughput ordering propagates to the Fig. 12(a) kernel rate.
	if ro, rs := ov.KernelKVRate(s), m.KernelKVRate(s); ro <= rs {
		t.Fatalf("overlapped KV rate %v not above serialized %v", ro, rs)
	}
}

// FuzzAccelParallelEquivalence fuzzes group counts, sequence lengths, head
// dims and chunk spans, asserting multi-worker runs stay bit-identical to
// one-worker runs of the same grid.
func FuzzAccelParallelEquivalence(f *testing.F) {
	f.Add(int64(1), 2, 300, 16, 128)
	f.Add(int64(2), 1, 129, 64, 256)
	f.Add(int64(3), 8, 1024, 8, 384)
	f.Fuzz(func(t *testing.T, seed int64, dg, s, d, chunk int) {
		if dg < 1 || dg > 8 || s < 1 || s > 2048 || d < 1 || d > 128 || chunk < 1 || chunk > 4096 {
			return
		}
		rng := rand.New(rand.NewSource(seed))
		acc, err := New(Config{DGroup: dg, HeadDim: d})
		if err != nil {
			t.Fatal(err)
		}
		q := tensor.RandMat(rng, dg, d, 1)
		k := tensor.RandMat(rng, s, d, 1)
		v := tensor.RandMat(rng, s, d, 1)
		tensor.SetChunkTokens(chunk)
		defer tensor.SetChunkTokens(0)
		base, err := acc.AttentionWorkers(q, k, v, nil, tensor.Mat{}, tensor.Mat{}, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{3, 8} {
			got, err := acc.AttentionWorkers(q, k, v, nil, tensor.Mat{}, tensor.Mat{}, w)
			if err != nil {
				t.Fatal(err)
			}
			if !accelEqual(base, got) {
				t.Fatalf("dg=%d s=%d d=%d chunk=%d: workers=%d diverged", dg, s, d, chunk, w)
			}
		}
	})
}
