// Package accel models the HILOS near-storage attention accelerator (§4.4):
//
//   - a functional model of the four pipeline units of Figure 7 — the
//     query-key product unit with online 128×128 block transpose, the
//     softmax statistics aggregation unit, the softmax normalization unit,
//     and the score–value product unit — operating on FP16-stored data with
//     FP32 accumulation;
//   - a cycle-accurate-in-expectation performance model of the pipelined
//     dataflow (block steady state, DRAM roofline, exponential-unit limits);
//   - the FPGA resource/power model reproducing Table 3; and
//   - the §7.1 ISP ASIC projection.
package accel

import (
	"fmt"
	"math"

	"repro/internal/attention"
	"repro/internal/fp16"
	"repro/internal/tensor"
)

// BlockTokens is the temporal-architecture block size: the accelerator
// processes attention in blocks of 128 tokens (§4.4).
const BlockTokens = 128

// Config describes one accelerator instance.
type Config struct {
	DGroup  int // query heads sharing one KV cache (1 for MHA)
	HeadDim int // per-head dimension d (≤ 128)
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.DGroup < 1 {
		return fmt.Errorf("accel: d_group must be ≥ 1, got %d", c.DGroup)
	}
	if c.HeadDim < 1 || c.HeadDim > 128 {
		return fmt.Errorf("accel: head dim must be in [1,128], got %d", c.HeadDim)
	}
	return nil
}

// Accelerator is the functional model. Its Attention method is bit-faithful
// to the hardware dataflow: blocked K/V consumption, local block transpose,
// two-pass softmax with streaming statistics, and host-precomputed partial
// scores merged for the delayed-writeback path.
type Accelerator struct {
	cfg Config
}

// New returns a functional accelerator model.
func New(cfg Config) (*Accelerator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Accelerator{cfg: cfg}, nil
}

// TransposeBlock performs the online in-place 128×128 block transposition of
// the query-key product unit (Figure 7d): a local square block of K is
// loaded into K-Buf, transposed into KT-Buf, and streamed to the MACs. The
// input block may be smaller than 128×128 at sequence edges.
func TransposeBlock(block tensor.Mat) tensor.Mat {
	if block.Rows > BlockTokens || block.Cols > BlockTokens {
		panic(fmt.Sprintf("accel: block %dx%d exceeds 128x128 buffer", block.Rows, block.Cols))
	}
	return block.T()
}

// PadSequence zero-pads s up to a multiple of 32 to facilitate AXI burst
// transactions (§5.4 "input sequences are zero-padded to multiples of 32").
func PadSequence(s int) int {
	const axiPad = 32
	return (s + axiPad - 1) / axiPad * axiPad
}

// Attention computes exact attention for dGroup query rows sharing the K/V
// cache, using the hardware dataflow. mask marks valid cache positions
// (padding from PadSequence is masked automatically). The optional
// hostScores/hostV carry the delayed-writeback partial inputs: scaled QKᵀ
// scalars precomputed by the host CPU over buffered keys, and the buffered
// value rows (Fig. 6b); pass empty mats when unused.
//
// Inputs are quantized through FP16 (storage precision); accumulation is
// FP32, matching §5.4. The per-block qk/softmax/sv stages shard across the
// kernel worker pool (see AttentionWorkers); results are bit-identical for
// every worker count.
func (a *Accelerator) Attention(q, k, v tensor.Mat, mask []bool, hostScores tensor.Mat, hostV tensor.Mat) (tensor.Mat, error) {
	return a.AttentionWorkers(q, k, v, mask, hostScores, hostV, tensor.DefaultWorkers())
}

// validateAttention checks the shared shape contract of the attention entry
// points.
func (a *Accelerator) validateAttention(q, k, v, hostScores, hostV tensor.Mat) error {
	if q.Rows != a.cfg.DGroup {
		return fmt.Errorf("accel: got %d query rows, configured d_group %d", q.Rows, a.cfg.DGroup)
	}
	if q.Cols != a.cfg.HeadDim || k.Cols != a.cfg.HeadDim {
		return fmt.Errorf("accel: head dim mismatch: q %d, k %d, cfg %d", q.Cols, k.Cols, a.cfg.HeadDim)
	}
	if k.Rows != v.Rows {
		return fmt.Errorf("accel: k rows %d != v rows %d", k.Rows, v.Rows)
	}
	if hostScores.Rows > 0 && (hostScores.Rows != q.Rows || hostScores.Cols != hostV.Rows) {
		return fmt.Errorf("accel: host partial shape mismatch")
	}
	return nil
}

// attentionSerial is the original single-goroutine-per-group dataflow,
// retained as the golden reference for the chunk-sharded AttentionWorkers:
// with the chunk span pinned past the sequence length the parallel datapath
// reduces to exactly this association, which the equivalence tests pin
// bit-for-bit.
//
//lint:allow floataccum score·V and host-partial folds model the hardware's FP32 accumulators
func (a *Accelerator) attentionSerial(q, k, v tensor.Mat, mask []bool, hostScores tensor.Mat, hostV tensor.Mat) (tensor.Mat, error) {
	if err := a.validateAttention(q, k, v, hostScores, hostV); err != nil {
		return tensor.Mat{}, err
	}

	// Storage precision emulation.
	q = q.Clone().RoundFP16()
	k = k.Clone().RoundFP16()
	v = v.Clone().RoundFP16()

	s := k.Rows
	sPad := PadSequence(s)
	scale := float32(1 / math.Sqrt(float64(a.cfg.HeadDim)))

	out := tensor.New(q.Rows, v.Cols)
	for g := 0; g < a.cfg.DGroup; g++ {
		qrow := q.Row(g)

		// Pass over blocks: query-key product unit with online transpose,
		// then softmax statistics aggregation (first pass of Algorithm 1).
		scores := make([]float32, sPad) // SM-Buf contents (stored FP16)
		st := attention.NewStats()
		for lo := 0; lo < sPad; lo += BlockTokens {
			hi := lo + BlockTokens
			if hi > sPad {
				hi = sPad
			}
			blockScores := a.qkBlock(qrow, k, lo, hi, scale)
			// Hardware stores QKᵀ results at FP16 before the softmax reads
			// them back from SM-Buf.
			fp16.RoundSlice(blockScores)
			copy(scores[lo:hi], blockScores)
			bm := blockMask(mask, lo, hi, s)
			mB, sB := attention.BlockStats(blockScores, bm)
			st.UpdateBlock(mB, sB)
		}

		// Merge the host-side delayed-writeback partial (new KV entries
		// buffered in host DRAM; the CPU shipped only QKᵀ scalars + V rows).
		partial := attention.NewPartial(v.Cols)
		if hostScores.Rows > 0 {
			hp := attention.PartialFromScores(hostScores.Row(g), hostV)
			partial.Merge(hp)
			st.Merge(hp.Stats)
		}

		// Second pass: softmax normalization unit + score-value product
		// unit, block by block.
		orow := out.Row(g)
		for lo := 0; lo < sPad; lo += BlockTokens {
			hi := lo + BlockTokens
			if hi > sPad {
				hi = sPad
			}
			bm := blockMask(mask, lo, hi, s)
			for i := lo; i < hi; i++ {
				x := scores[i]
				if bm != nil && !bm[i-lo] {
					x = attention.MaskValue
				}
				w := float32(math.Exp(float64(x) - st.M))
				if w == 0 || i >= s {
					continue
				}
				vrow := v.Row(i)
				for j := range orow {
					orow[j] += w * vrow[j]
				}
			}
		}
		// Fold in the host partial accumulator (already scaled to its own
		// max; rescale to the global max).
		if hostScores.Rows > 0 {
			r := float32(math.Exp(partial.Stats.M - st.M))
			for j := range orow {
				orow[j] += partial.Acc[j] * r
			}
		}
		// Division by the global denominator (second pass, line 11).
		inv := float32(1 / st.Z)
		for j := range orow {
			orow[j] *= inv
		}
	}
	return out, nil
}

// qkBlock is the query-key product unit for one block [lo,hi): it loads the
// K block, performs the local online transpose, and computes scaled q·Kᵀ.
//
//lint:allow floataccum the per-token dot chain is the modeled 128-lane FP32 MAC array
func (a *Accelerator) qkBlock(qrow []float32, k tensor.Mat, lo, hi int, scale float32) []float32 {
	n := hi - lo
	out := make([]float32, n)
	realHi := hi
	if realHi > k.Rows {
		realHi = k.Rows
	}
	if realHi <= lo {
		return out // fully padded block: scores stay 0, masked later
	}
	kBlock := k.SliceRows(lo, realHi)
	kt := TransposeBlock(kBlock) // KT-Buf: d × tokens
	// MAC array: for each token column of KT, dot with q.
	for t := 0; t < kt.Cols; t++ {
		var acc float32
		for dim := 0; dim < kt.Rows; dim++ {
			acc += qrow[dim] * kt.At(dim, t)
		}
		out[t] = acc * scale
	}
	return out
}

// blockMask returns the validity mask slice for block [lo,hi): user-provided
// mask entries for real tokens, false for pad positions ≥ s. Returns nil if
// everything in the block is valid.
func blockMask(mask []bool, lo, hi, s int) []bool {
	if mask == nil && hi <= s {
		return nil
	}
	bm := make([]bool, hi-lo)
	for i := lo; i < hi; i++ {
		switch {
		case i >= s:
			bm[i-lo] = false
		case mask != nil:
			bm[i-lo] = mask[i]
		default:
			bm[i-lo] = true
		}
	}
	return bm
}
