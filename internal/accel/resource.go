package accel

import "fmt"

// KU15P capacities (AMD Kintex UltraScale+ KU15P, the SmartSSD FPGA).
const (
	KU15PLUTs  = 522720
	KU15PFFs   = 1045440
	KU15PBRAMs = 984
	KU15PURAMs = 128
	KU15PDSPs  = 1968
)

// Utilization is an FPGA resource utilization report in percent of KU15P
// capacity, plus the achieved performance and on-chip power — one row of
// Table 3.
type Utilization struct {
	DGroup     int
	LUTPct     float64
	FFPct      float64
	BRAMPct    float64
	URAMPct    float64
	DSPPct     float64
	PeakGFLOPS float64
	PowerW     float64
	ClockMHz   float64
}

// ResourceModel estimates KU15P utilization as a function of d_group. The
// model decomposes the design into a fixed platform/shell portion plus
// per-query-lane increments:
//
//   - LUTs: the GEMV datapath and transposition muxing grow with lanes
//     (§6.2: "GEMV units primarily utilize LUTs to manage complex memory
//     transactions such as transposition").
//   - DSPs: exponential units dominate (§6.2: "the softmax unit utilizes a
//     large fraction of DSP blocks"), growing with lanes.
//   - BRAM: per-lane score/output buffers on top of shared K/V/Kᵀ buffers;
//     the shared buffers dominate, so growth is shallow.
//   - URAM: fixed staging buffers, independent of d_group.
//   - Power: static + PCIe transceivers plus per-lane dynamic power.
//
// Coefficients are least-squares fits to the three measured rows of
// Table 3 and validated against them in tests.
type ResourceModel struct {
	LUTBase, LUTPerLane       float64
	FFBase, FFPerLane         float64
	BRAMBase, BRAMPerLane     float64
	URAMFixed                 float64
	DSPBase, DSPPerLane       float64
	PowerBaseW, PowerPerLaneW float64
	ClockMHz                  float64
	HeadDim                   int
}

// DefaultResourceModel returns the Table 3 fit for the given head dimension.
func DefaultResourceModel(headDim int) ResourceModel {
	return ResourceModel{
		LUTBase: 31.32, LUTPerLane: 6.88,
		FFBase: 24.01, FFPerLane: 4.24,
		BRAMBase: 49.37, BRAMPerLane: 2.07,
		URAMFixed: 9.38,
		DSPBase:   5.40, DSPPerLane: 4.19,
		PowerBaseW: 10.08, PowerPerLaneW: 1.25,
		ClockMHz: 296.05,
		HeadDim:  headDim,
	}
}

// Estimate returns the utilization row for a given d_group. It returns an
// error if the design does not fit the KU15P (any resource > 100%), the
// condition that caps d_group on the SmartSSD platform (§7.2).
func (r ResourceModel) Estimate(dGroup int) (Utilization, error) {
	if dGroup < 1 {
		return Utilization{}, fmt.Errorf("accel: d_group must be ≥ 1, got %d", dGroup)
	}
	g := float64(dGroup)
	u := Utilization{
		DGroup:   dGroup,
		LUTPct:   r.LUTBase + r.LUTPerLane*g,
		FFPct:    r.FFBase + r.FFPerLane*g,
		BRAMPct:  r.BRAMBase + r.BRAMPerLane*g,
		URAMPct:  r.URAMFixed,
		DSPPct:   r.DSPBase + r.DSPPerLane*g,
		PowerW:   r.PowerBaseW + r.PowerPerLaneW*g,
		ClockMHz: r.ClockMHz,
	}
	cm := DefaultCycleModel(dGroup, r.HeadDim)
	u.PeakGFLOPS = cm.SustainedGFLOPS()
	for _, pct := range []float64{u.LUTPct, u.FFPct, u.BRAMPct, u.URAMPct, u.DSPPct} {
		if pct > 100 {
			return u, fmt.Errorf("accel: d_group %d does not fit KU15P (a resource exceeds 100%%)", dGroup)
		}
	}
	return u, nil
}

// MaxDGroup returns the largest d_group that fits the KU15P.
func (r ResourceModel) MaxDGroup() int {
	g := 1
	for {
		if _, err := r.Estimate(g + 1); err != nil {
			return g
		}
		g++
		if g > 128 {
			return g // defensive bound; never reached with sane fits
		}
	}
}

// Table3 returns the three configurations reported in the paper.
func Table3(headDim int) ([]Utilization, error) {
	r := DefaultResourceModel(headDim)
	var rows []Utilization
	for _, g := range []int{1, 4, 5} {
		u, err := r.Estimate(g)
		if err != nil {
			return nil, err
		}
		rows = append(rows, u)
	}
	return rows, nil
}
