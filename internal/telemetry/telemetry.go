// Package telemetry is the zero-dependency observability core of the
// simulation stack: counters, gauges and fixed-bucket histograms registered
// per subsystem in a Registry, plus a bounded subscriber-based event Stream
// (stream.go) and an HTTP live-stats handler over both (http.go).
//
// The package is built for instrumenting deterministic discrete-event
// loops, which imposes two contracts:
//
//   - Timestamps come from the simulated clock. Nothing here reads the wall
//     clock; every Event carries the simulated time its producer stamped it
//     with, so telemetry-enabled runs replay bit-identically. (The one
//     place wall time legitimately appears — slaving a replay to real time
//     at the serving boundary — lives in the caller, behind an annotated
//     //lint:allow.)
//   - Instrumentation must never perturb the hot loop. Every metric method
//     is safe on a nil receiver (a disabled sink costs one pointer check),
//     counters and gauges are single atomics, and Stream.Publish never
//     blocks: a subscriber whose buffer is full loses the event and its
//     drop counter increments instead.
//
// Metric names are flat dotted strings ("cluster.arrivals",
// "repcache.hits"); Snapshot serializes every registered metric to JSON
// with deterministically ordered keys.
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sync"
	"sync/atomic"
)

// Counter is a monotone event count. The zero value is usable; all methods
// are safe on a nil receiver (no-ops), so disabled instrumentation costs a
// pointer check.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (n may be negative only for correction at finalization; live
// counters should stay monotone).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value float metric (queue depth, simulated clock, busy
// seconds). The zero value is usable; all methods are nil-safe no-ops.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add atomically adds delta to the stored value.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the stored value (0 on a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets. Bounds are inclusive
// upper bounds in ascending order; observations above the last bound land
// in an implicit overflow bucket. The zero value is not usable — construct
// through Registry.Histogram — but all methods are nil-safe no-ops.
type Histogram struct {
	bounds []float64 // immutable after construction

	mu     sync.Mutex
	counts []int64 // guarded by mu; len(bounds)+1, last is overflow
	sum    float64 // guarded by mu
	n      int64   // guarded by mu
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	h.n++
	h.mu.Unlock()
}

// Count returns the number of observations (0 on a nil receiver).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// snapshot copies the histogram state under its lock.
func (h *Histogram) snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	return HistogramSnapshot{
		Bounds: h.bounds,
		Counts: append([]int64(nil), h.counts...),
		Count:  h.n,
		Sum:    h.sum,
	}
}

// Registry holds one subsystem family of named metrics. Metrics are
// get-or-create: instrumented code asks for a name once and holds the
// pointer. A nil *Registry hands out nil metrics, so an entirely disabled
// telemetry configuration needs no branches at the instrumentation sites.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter   // guarded by mu
	gauges     map[string]*Gauge     // guarded by mu
	histograms map[string]*Histogram // guarded by mu
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use. Returns nil
// on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil on a
// nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// bounds on first use (bounds must be ascending). Later calls return the
// existing histogram regardless of bounds. Returns nil on a nil registry;
// panics on unsorted bounds — a programmer error at an instrumentation
// site, not a data condition.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.histograms[name]
	if h == nil {
		for i := 1; i < len(bounds); i++ {
			if bounds[i] <= bounds[i-1] {
				panic(fmt.Sprintf("telemetry: histogram %q bounds not ascending: %v", name, bounds))
			}
		}
		h = &Histogram{
			bounds: append([]float64(nil), bounds...),
			counts: make([]int64, len(bounds)+1),
		}
		r.histograms[name] = h
	}
	return h
}

// HistogramSnapshot is one histogram's state at snapshot time. Counts has
// one entry per bound plus a final overflow bucket.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
}

// Snapshot is a point-in-time copy of every registered metric. Maps JSON-
// marshal with sorted keys, so the encoding is deterministic for a given
// metric state.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies the current value of every metric. A nil registry yields
// the zero Snapshot.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]float64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.histograms) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.histograms))
		for name, h := range r.histograms {
			s.Histograms[name] = h.snapshot()
		}
	}
	return s
}

// WriteJSON serializes the snapshot as indented JSON. encoding/json sorts
// map keys, so the byte output is a deterministic function of the metrics.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
