package telemetry

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestNilSafety(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter value")
	}
	var g *Gauge
	g.Set(1)
	g.Add(2)
	if g.Value() != 0 {
		t.Fatal("nil gauge value")
	}
	var h *Histogram
	h.Observe(1)
	if h.Count() != 0 {
		t.Fatal("nil histogram count")
	}
	var r *Registry
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x", nil) != nil {
		t.Fatal("nil registry must hand out nil metrics")
	}
	if s := r.Snapshot(); s.Counters != nil || s.Gauges != nil || s.Histograms != nil {
		t.Fatal("nil registry snapshot not zero")
	}
	var st *Stream
	st.Publish(Event{Kind: "x"})
	st.Close()
	if st.Stats() != (StreamStats{}) {
		t.Fatal("nil stream stats")
	}
	sub := st.Subscribe(4)
	if _, ok := <-sub.Events(); ok {
		t.Fatal("nil-stream subscriber channel must be closed")
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("a")
	c1.Add(3)
	if c2 := r.Counter("a"); c2 != c1 || c2.Value() != 3 {
		t.Fatal("counter not shared by name")
	}
	g := r.Gauge("depth")
	g.Set(2)
	g.Add(-0.5)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
	h := r.Histogram("lat", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 100, 1000} {
		h.Observe(v)
	}
	snap := h.snapshot()
	// buckets: ≤1, ≤10, ≤100, overflow
	want := []int64{2, 1, 1, 1}
	for i, w := range want {
		if snap.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, snap.Counts[i], w, snap.Counts)
		}
	}
	if snap.Count != 5 || snap.Sum != 1106.5 {
		t.Fatalf("count/sum = %d/%v", snap.Count, snap.Sum)
	}
}

func TestHistogramBadBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on unsorted bounds")
		}
	}()
	NewRegistry().Histogram("bad", []float64{2, 1})
}

func TestSnapshotJSONDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Counter("b").Add(2)
	r.Counter("a").Inc()
	r.Gauge("z").Set(1.25)
	r.Histogram("h", []float64{1}).Observe(0.5)
	var b1, b2 strings.Builder
	if err := r.Snapshot().WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := r.Snapshot().WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Fatal("snapshot JSON not deterministic")
	}
	if !strings.Contains(b1.String(), `"a": 1`) {
		t.Fatalf("unexpected snapshot: %s", b1.String())
	}
}

func TestStreamFanOutAndDrops(t *testing.T) {
	s := NewStream()
	big := s.Subscribe(8)
	tiny := s.Subscribe(1)
	for i := 0; i < 5; i++ {
		s.Publish(Event{TSec: float64(i), Kind: "tick"})
	}
	if got := big.Dropped(); got != 0 {
		t.Fatalf("big dropped %d", got)
	}
	// tiny buffered 1 and dropped the other 4.
	if got := tiny.Dropped(); got != 4 {
		t.Fatalf("tiny dropped %d, want 4", got)
	}
	st := s.Stats()
	if st.Published != 5 || st.Subscribers != 2 || st.Dropped != 4 {
		t.Fatalf("stats = %+v", st)
	}
	s.Close()
	s.Publish(Event{Kind: "late"}) // no-op after close
	n := 0
	for e := range big.Events() {
		if e.Kind != "tick" {
			t.Fatalf("unexpected event %+v", e)
		}
		n++
	}
	if n != 5 {
		t.Fatalf("big received %d events, want 5", n)
	}
}

func TestSubscriberCloseConcurrentWithPublish(t *testing.T) {
	s := NewStream()
	subs := make([]*Subscriber, 16)
	for i := range subs {
		subs[i] = s.Subscribe(2)
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 1000; i++ {
			s.Publish(Event{TSec: float64(i)})
		}
	}()
	go func() {
		defer wg.Done()
		for _, sub := range subs {
			sub.Close()
		}
	}()
	wg.Wait()
	s.Close()
}

func TestHTTPMetrics(t *testing.T) {
	r := NewRegistry()
	r.Counter("cluster.arrivals").Add(7)
	s := NewStream()
	sub := s.Subscribe(1)
	s.Publish(Event{TSec: 1, Kind: "a"})
	s.Publish(Event{TSec: 2, Kind: "b"}) // dropped: buffer 1
	defer sub.Close()

	srv := httptest.NewServer(Handler(r, s))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Metrics Snapshot    `json:"metrics"`
		Stream  StreamStats `json:"stream"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Metrics.Counters["cluster.arrivals"] != 7 {
		t.Fatalf("metrics = %+v", body.Metrics)
	}
	if body.Stream.Published != 2 || body.Stream.Dropped != 1 {
		t.Fatalf("stream stats = %+v (drop accounting)", body.Stream)
	}
}

func TestHTTPEvents(t *testing.T) {
	s := NewStream()
	srv := httptest.NewServer(Handler(nil, s))
	defer srv.Close()

	type result struct {
		events []Event
		err    error
	}
	done := make(chan result, 1)
	go func() {
		resp, err := srv.Client().Get(srv.URL + "/events?max=3")
		if err != nil {
			done <- result{err: err}
			return
		}
		defer resp.Body.Close()
		var got []Event
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			var e Event
			if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
				done <- result{err: err}
				return
			}
			got = append(got, e)
		}
		done <- result{events: got, err: sc.Err()}
	}()

	// Publish until the client has connected and consumed its three events.
	// Publish is lossy by design, so keep publishing until the handler is
	// subscribed and served; the client stops at max=3.
	for {
		select {
		case res := <-done:
			if res.err != nil && res.err != io.EOF {
				t.Fatal(res.err)
			}
			if len(res.events) != 3 {
				t.Fatalf("got %d events, want 3: %+v", len(res.events), res.events)
			}
			for _, e := range res.events {
				if e.Kind != "tick" || e.TSec != 42 {
					t.Fatalf("bad event %+v", e)
				}
			}
			return
		default:
			s.Publish(Event{TSec: 42, Kind: "tick"})
		}
	}
}

func TestHTTPEventsEndsOnStreamClose(t *testing.T) {
	s := NewStream()
	srv := httptest.NewServer(Handler(nil, s))
	defer srv.Close()

	done := make(chan int, 1)
	go func() {
		resp, err := srv.Client().Get(srv.URL + "/events")
		if err != nil {
			done <- -1
			return
		}
		defer resp.Body.Close()
		n := 0
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			n++
		}
		done <- n
	}()

	// Give the handler a moment to subscribe by publishing until at least
	// one event lands in a subscriber, then close: the response must end.
	for s.Stats().Subscribers == 0 {
		s.Publish(Event{Kind: "warm"})
	}
	s.Publish(Event{TSec: 1, Kind: "tick"})
	s.Close()
	if n := <-done; n < 0 {
		t.Fatal("request failed")
	}
}
