package telemetry

import (
	"sync"
	"sync/atomic"
)

// Event is one simulated-clock observation published by an instrumented
// subsystem. TSec is the simulated time of the producing event — wall time
// never appears here. The remaining fields are a flat union across
// subsystems; unused ones stay zero and are elided from JSON.
type Event struct {
	TSec      float64 `json:"t"`
	Kind      string  `json:"kind"`
	Subsystem string  `json:"sub,omitempty"`
	Pipeline  string  `json:"pipeline,omitempty"`
	Class     string  `json:"class,omitempty"`
	Priority  int     `json:"priority,omitempty"`
	Jobs      int     `json:"jobs,omitempty"`
	Resource  string  `json:"res,omitempty"`
	Value     float64 `json:"value,omitempty"`
	Detail    string  `json:"detail,omitempty"`
}

// Stream fans events out to bounded subscribers. Publish never blocks: a
// subscriber whose buffer is full loses the event and its drop counter
// increments. A nil *Stream is a valid disabled sink (Publish is a single
// pointer check), so hot loops instrument unconditionally.
//
// Subscribers are held in a slice, not a map, so fan-out order is the
// deterministic subscription order.
type Stream struct {
	mu        sync.Mutex
	subs      []*Subscriber // guarded by mu
	closed    bool          // guarded by mu
	published atomic.Int64
}

// NewStream returns an empty stream.
func NewStream() *Stream {
	return &Stream{}
}

// Subscriber receives a copy of every published event that fits in its
// buffer. Events the buffer cannot hold are counted in Dropped, never
// delivered late.
type Subscriber struct {
	ch      chan Event
	dropped atomic.Int64
	stream  *Stream

	mu     sync.Mutex
	closed bool // guarded by mu
}

// Subscribe registers a new subscriber with the given buffer capacity
// (minimum 1). On a nil or closed stream the returned subscriber's channel
// is already closed, so range loops over Events() terminate immediately.
func (s *Stream) Subscribe(buf int) *Subscriber {
	if buf < 1 {
		buf = 1
	}
	sub := &Subscriber{ch: make(chan Event, buf), stream: s}
	if s == nil {
		sub.Close()
		return sub
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		sub.mu.Lock()
		sub.closed = true
		sub.mu.Unlock()
		close(sub.ch)
		return sub
	}
	s.subs = append(s.subs, sub)
	return sub
}

// Publish delivers e to every subscriber that has buffer room and counts a
// drop for each one that does not. It never blocks and is a no-op on a nil
// or closed stream.
func (s *Stream) Publish(e Event) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.published.Add(1)
	for _, sub := range s.subs {
		select {
		case sub.ch <- e:
		default:
			sub.dropped.Add(1)
		}
	}
}

// Close terminates the stream: every subscriber channel is closed after
// draining what was already buffered, and later Publish calls become
// no-ops. Safe to call more than once; a no-op on nil.
func (s *Stream) Close() {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	for _, sub := range s.subs {
		sub.mu.Lock()
		if !sub.closed {
			sub.closed = true
			close(sub.ch)
		}
		sub.mu.Unlock()
	}
	s.subs = nil
}

// StreamStats is the aggregate accounting of a stream.
type StreamStats struct {
	Published   int64 `json:"published"`
	Subscribers int   `json:"subscribers"`
	Dropped     int64 `json:"dropped"`
}

// Stats reports totals: events published, live subscribers, and drops
// summed over live subscribers. Zero on a nil stream.
func (s *Stream) Stats() StreamStats {
	if s == nil {
		return StreamStats{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st := StreamStats{
		Published:   s.published.Load(),
		Subscribers: len(s.subs),
	}
	for _, sub := range s.subs {
		st.Dropped += sub.dropped.Load()
	}
	return st
}

// Events is the receive side of the subscription. The channel closes when
// the stream closes or the subscriber unsubscribes.
func (sub *Subscriber) Events() <-chan Event {
	return sub.ch
}

// Dropped returns how many events this subscriber has lost to a full
// buffer.
func (sub *Subscriber) Dropped() int64 {
	return sub.dropped.Load()
}

// Close unsubscribes: the stream stops delivering to this subscriber and
// the Events channel closes after its buffered events drain. Safe to call
// more than once.
func (sub *Subscriber) Close() {
	st := sub.stream
	if st != nil {
		st.mu.Lock()
		for i, other := range st.subs {
			if other == sub {
				st.subs = append(st.subs[:i], st.subs[i+1:]...)
				break
			}
		}
		st.mu.Unlock()
	}
	sub.mu.Lock()
	defer sub.mu.Unlock()
	if !sub.closed {
		sub.closed = true
		close(sub.ch)
	}
}
