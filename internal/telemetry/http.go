package telemetry

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// Handler serves live stats over HTTP:
//
//	GET /metrics  — one JSON document: {"metrics": Snapshot, "stream": StreamStats}
//	GET /events   — newline-delimited JSON, one Event per line, streamed as
//	                published. Ends when the client disconnects, the stream
//	                closes, or ?max=N events have been sent. ?buf=N sizes
//	                the subscriber buffer (default 1024); events beyond the
//	                buffer are dropped, never buffered unboundedly.
//
// Either argument may be nil: a nil registry yields empty metrics, a nil
// stream yields an /events endpoint that returns immediately. The handler
// reads no clocks — timestamps in the payload are the simulated times the
// producers stamped.
func Handler(reg *Registry, stream *Stream) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(struct {
			Metrics Snapshot    `json:"metrics"`
			Stream  StreamStats `json:"stream"`
		}{reg.Snapshot(), stream.Stats()})
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		max := 0 // 0 = unlimited
		if v := r.URL.Query().Get("max"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				http.Error(w, "bad max", http.StatusBadRequest)
				return
			}
			max = n
		}
		buf := 1024
		if v := r.URL.Query().Get("buf"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n < 1 {
				http.Error(w, "bad buf", http.StatusBadRequest)
				return
			}
			buf = n
		}
		sub := stream.Subscribe(buf)
		defer sub.Close()
		w.Header().Set("Content-Type", "application/x-ndjson")
		flusher, _ := w.(http.Flusher)
		enc := json.NewEncoder(w)
		sent := 0
		for {
			select {
			case <-r.Context().Done():
				return
			case e, ok := <-sub.Events():
				if !ok {
					return
				}
				if err := enc.Encode(e); err != nil {
					return
				}
				if flusher != nil {
					flusher.Flush()
				}
				sent++
				if max > 0 && sent >= max {
					return
				}
			}
		}
	})
	return mux
}
