package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// TimedRequest is one request with an arrival timestamp — the unit of work
// the cluster admission layer operates on. Offline backlogs are the special
// case where every arrival is 0.
type TimedRequest struct {
	ID         int
	Class      Class
	ArrivalSec float64
}

// PoissonArrivals returns n arrival timestamps of a homogeneous Poisson
// process with the given mean rate (requests/second): exponential
// inter-arrival gaps drawn from a seeded source, so the same seed always
// yields the same trace. The first arrival is the first gap, not 0.
func PoissonArrivals(seed int64, ratePerSec float64, n int) ([]float64, error) {
	if ratePerSec <= 0 {
		return nil, fmt.Errorf("workload: arrival rate must be positive, got %g", ratePerSec)
	}
	if n < 1 {
		return nil, fmt.Errorf("workload: arrival count must be ≥ 1, got %d", n)
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	t := 0.0
	for i := range out {
		t += rng.ExpFloat64() / ratePerSec
		out[i] = t
	}
	return out, nil
}

// UniformArrivals returns n arrival timestamps at a constant rate
// (requests/second): deterministic 1/rate spacing starting at 1/rate. It is
// the zero-variance reference process for the Poisson generator.
func UniformArrivals(ratePerSec float64, n int) ([]float64, error) {
	if ratePerSec <= 0 {
		return nil, fmt.Errorf("workload: arrival rate must be positive, got %g", ratePerSec)
	}
	if n < 1 {
		return nil, fmt.Errorf("workload: arrival count must be ≥ 1, got %d", n)
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(i+1) / ratePerSec
	}
	return out, nil
}

// Timed pairs a class trace with arrival timestamps (replaying a recorded
// trace, or attaching a generated arrival process to a generated mix).
// Timestamps must be non-negative; the result is sorted by arrival with IDs
// assigned in the original trace order, so replays are deterministic.
func Timed(classes []Class, arrivals []float64) ([]TimedRequest, error) {
	if len(classes) == 0 {
		return nil, fmt.Errorf("workload: empty trace")
	}
	if len(classes) != len(arrivals) {
		return nil, fmt.Errorf("workload: %d classes but %d arrival times", len(classes), len(arrivals))
	}
	out := make([]TimedRequest, len(classes))
	for i, c := range classes {
		if arrivals[i] < 0 || math.IsInf(arrivals[i], 0) || math.IsNaN(arrivals[i]) {
			return nil, fmt.Errorf("workload: arrival time %g for request %d is not finite and ≥ 0", arrivals[i], i)
		}
		out[i] = TimedRequest{ID: i, Class: c, ArrivalSec: arrivals[i]}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].ArrivalSec < out[j].ArrivalSec })
	return out, nil
}

// TimedTrace draws len(arrivals) request classes from the generator's mix
// and attaches the arrival timestamps — the one-call path from (seed, mix,
// arrival process) to a cluster-ready trace.
func (g *Generator) TimedTrace(arrivals []float64) ([]TimedRequest, error) {
	return Timed(g.Trace(len(arrivals)), arrivals)
}

// ClassByName resolves one of the §6.6 request classes ("Short", "Medium",
// "Long") for trace parsers.
func ClassByName(name string) (Class, bool) {
	for _, c := range Classes() {
		if c.Name == name {
			return c, true
		}
	}
	return Class{}, false
}
