package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// TimedRequest is one request with an arrival timestamp — the unit of work
// the cluster admission layer operates on. Offline backlogs are the special
// case where every arrival is 0, every priority is 0 and no deadline is set.
type TimedRequest struct {
	ID         int
	Class      Class
	ArrivalSec float64
	// Priority ranks scheduling urgency; higher values are served first.
	// 0 is the offline default, so untagged traces behave exactly as
	// before priorities existed.
	Priority int
	// DeadlineSec is the request's queueing budget: it should start
	// executing within DeadlineSec of its arrival. 0 means no deadline
	// (pure offline work). The scheduler treats deadlines as preemption
	// triggers, not admission guarantees — a missed deadline is reported,
	// never dropped.
	DeadlineSec float64
}

// StartDeadline returns the absolute time by which the request should start,
// or +Inf when it carries no deadline.
func (r TimedRequest) StartDeadline() float64 {
	if r.DeadlineSec <= 0 {
		return math.Inf(1)
	}
	return r.ArrivalSec + r.DeadlineSec
}

// PoissonArrivals returns n arrival timestamps of a homogeneous Poisson
// process with the given mean rate (requests/second): exponential
// inter-arrival gaps drawn from a seeded source, so the same seed always
// yields the same trace. The first arrival is the first gap, not 0.
func PoissonArrivals(seed int64, ratePerSec float64, n int) ([]float64, error) {
	if ratePerSec <= 0 {
		return nil, fmt.Errorf("workload: arrival rate must be positive, got %g", ratePerSec)
	}
	if n < 1 {
		return nil, fmt.Errorf("workload: arrival count must be ≥ 1, got %d", n)
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	t := 0.0
	for i := range out {
		t += rng.ExpFloat64() / ratePerSec
		out[i] = t
	}
	return out, nil
}

// UniformArrivals returns n arrival timestamps at a constant rate
// (requests/second): deterministic 1/rate spacing starting at 1/rate. It is
// the zero-variance reference process for the Poisson generator.
func UniformArrivals(ratePerSec float64, n int) ([]float64, error) {
	if ratePerSec <= 0 {
		return nil, fmt.Errorf("workload: arrival rate must be positive, got %g", ratePerSec)
	}
	if n < 1 {
		return nil, fmt.Errorf("workload: arrival count must be ≥ 1, got %d", n)
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(i+1) / ratePerSec
	}
	return out, nil
}

// MMPPArrivals returns n arrival timestamps of a two-state Markov-modulated
// Poisson process: the process alternates between a quiet state (rate
// quietRate, mean sojourn meanQuietSec) and a burst state (rate burstRate,
// mean sojourn meanBurstSec), with exponentially distributed sojourn times.
// It starts in the quiet state. The same seed always yields the same trace,
// so bursty-workload studies are reproducible run to run.
func MMPPArrivals(seed int64, quietRate, burstRate, meanQuietSec, meanBurstSec float64, n int) ([]float64, error) {
	if quietRate <= 0 || burstRate <= 0 {
		return nil, fmt.Errorf("workload: MMPP rates must be positive, got %g and %g", quietRate, burstRate)
	}
	if meanQuietSec <= 0 || meanBurstSec <= 0 {
		return nil, fmt.Errorf("workload: MMPP mean sojourns must be positive, got %g and %g", meanQuietSec, meanBurstSec)
	}
	if n < 1 {
		return nil, fmt.Errorf("workload: arrival count must be ≥ 1, got %d", n)
	}
	rng := rand.New(rand.NewSource(seed))
	rate := [2]float64{quietRate, burstRate}
	mean := [2]float64{meanQuietSec, meanBurstSec}
	state := 0
	t := 0.0
	left := rng.ExpFloat64() * mean[state] // time left in the current state
	out := make([]float64, 0, n)
	for len(out) < n {
		gap := rng.ExpFloat64() / rate[state]
		if gap < left {
			t += gap
			left -= gap
			out = append(out, t)
			continue
		}
		// The state flips before the next arrival: advance to the switch
		// point and redraw (both distributions are memoryless, so
		// discarding the stale gap preserves the process).
		t += left
		state = 1 - state
		left = rng.ExpFloat64() * mean[state]
	}
	return out, nil
}

// BurstyArrivals returns n arrivals of a day-night-style bursty process with
// the given long-run mean rate: a two-state MMPP spending 80% of its time in
// a quiet state at rate/4 and 20% in bursts at 4×rate (mean burst 10/rate
// seconds, mean quiet spell 40/rate), so the time-averaged rate equals
// ratePerSec while individual bursts arrive an order of magnitude faster
// than the quiet floor. Deterministic per seed.
func BurstyArrivals(seed int64, ratePerSec float64, n int) ([]float64, error) {
	if ratePerSec <= 0 {
		return nil, fmt.Errorf("workload: arrival rate must be positive, got %g", ratePerSec)
	}
	return MMPPArrivals(seed, ratePerSec/4, 4*ratePerSec, 40/ratePerSec, 10/ratePerSec, n)
}

// Timed pairs a class trace with arrival timestamps (replaying a recorded
// trace, or attaching a generated arrival process to a generated mix).
// Timestamps must be non-negative; the result is sorted by arrival with IDs
// assigned in the original trace order, so replays are deterministic.
func Timed(classes []Class, arrivals []float64) ([]TimedRequest, error) {
	if len(classes) == 0 {
		return nil, fmt.Errorf("workload: empty trace")
	}
	if len(classes) != len(arrivals) {
		return nil, fmt.Errorf("workload: %d classes but %d arrival times", len(classes), len(arrivals))
	}
	out := make([]TimedRequest, len(classes))
	for i, c := range classes {
		if arrivals[i] < 0 || math.IsInf(arrivals[i], 0) || math.IsNaN(arrivals[i]) {
			return nil, fmt.Errorf("workload: arrival time %g for request %d is not finite and ≥ 0", arrivals[i], i)
		}
		out[i] = TimedRequest{ID: i, Class: c, ArrivalSec: arrivals[i]}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].ArrivalSec < out[j].ArrivalSec })
	return out, nil
}

// TimedTrace draws len(arrivals) request classes from the generator's mix
// and attaches the arrival timestamps — the one-call path from (seed, mix,
// arrival process) to a cluster-ready trace.
func (g *Generator) TimedTrace(arrivals []float64) ([]TimedRequest, error) {
	return Timed(g.Trace(len(arrivals)), arrivals)
}

// ClassByName resolves one of the §6.6 request classes ("Short", "Medium",
// "Long") for trace parsers.
func ClassByName(name string) (Class, bool) {
	for _, c := range Classes() {
		if c.Name == name {
			return c, true
		}
	}
	return Class{}, false
}
