// Package workload provides the request classes and generators used by the
// evaluation: the Azure-trace-derived Short/Medium/Long classes of the
// endurance study (§6.6, citing [84]) and a deterministic mixed-trace
// generator for the offline-batch examples.
package workload

import (
	"fmt"
	"math/rand"
)

// Class is a request shape: prompt length and generated length.
type Class struct {
	Name   string
	Input  int
	Output int
}

// The §6.6 request classes (I = input tokens, O = output tokens).
var (
	Short  = Class{Name: "Short", Input: 256, Output: 100}
	Medium = Class{Name: "Medium", Input: 1024, Output: 350}
	Long   = Class{Name: "Long", Input: 8192, Output: 350}
)

// Classes returns the endurance-study classes in figure order.
func Classes() []Class { return []Class{Short, Medium, Long} }

// Mix is a probability mix over classes.
type Mix struct {
	Class  Class
	Weight float64
}

// AzureLikeMix approximates production offline traffic: mostly short
// requests with a long-context tail.
func AzureLikeMix() []Mix {
	return []Mix{
		{Short, 0.60},
		{Medium, 0.30},
		{Long, 0.10},
	}
}

// Generator draws request classes from a mix, deterministically per seed.
type Generator struct {
	rng *rand.Rand
	mix []Mix
	sum float64
}

// NewGenerator validates the mix and returns a generator.
func NewGenerator(seed int64, mix []Mix) (*Generator, error) {
	if len(mix) == 0 {
		return nil, fmt.Errorf("workload: empty mix")
	}
	var sum float64
	for _, m := range mix {
		if m.Weight < 0 {
			return nil, fmt.Errorf("workload: negative weight for %s", m.Class.Name)
		}
		sum += m.Weight
	}
	if sum <= 0 {
		return nil, fmt.Errorf("workload: zero total weight")
	}
	return &Generator{rng: rand.New(rand.NewSource(seed)), mix: mix, sum: sum}, nil
}

// Next draws the next request class.
func (g *Generator) Next() Class {
	x := g.rng.Float64() * g.sum
	for _, m := range g.mix {
		if x < m.Weight {
			return m.Class
		}
		x -= m.Weight
	}
	return g.mix[len(g.mix)-1].Class
}

// Trace draws n requests.
func (g *Generator) Trace(n int) []Class {
	out := make([]Class, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// TotalTokens sums input and output tokens over a trace.
func TotalTokens(trace []Class) (in, out int) {
	for _, c := range trace {
		in += c.Input
		out += c.Output
	}
	return in, out
}
