package workload

import (
	"math"
	"testing"
)

// Seeded determinism: the same seed must reproduce the identical arrival
// sequence; a different seed must not.
func TestPoissonArrivalsDeterministic(t *testing.T) {
	a, err := PoissonArrivals(42, 2.0, 500)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PoissonArrivals(42, 2.0, 500)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("arrival %d differs between identically seeded runs: %v vs %v", i, a[i], b[i])
		}
	}
	c, _ := PoissonArrivals(43, 2.0, 500)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}

// Rate correctness: the empirical rate n/span of a long Poisson trace must
// be within a few percent of the requested rate, and arrivals must be
// strictly increasing and positive.
func TestPoissonArrivalsRate(t *testing.T) {
	const rate, n = 4.0, 20000
	a, err := PoissonArrivals(7, rate, n)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for i, x := range a {
		if x <= prev {
			t.Fatalf("arrival %d not strictly increasing: %v after %v", i, x, prev)
		}
		prev = x
	}
	got := float64(n) / a[n-1]
	if rel := math.Abs(got-rate) / rate; rel > 0.05 {
		t.Errorf("empirical rate %.3f req/s, want %.3f ±5%%", got, rate)
	}
}

func TestUniformArrivals(t *testing.T) {
	a, err := UniformArrivals(2.0, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.5, 1.0, 1.5, 2.0}
	for i := range want {
		if math.Abs(a[i]-want[i]) > 1e-12 {
			t.Errorf("arrival %d = %v, want %v", i, a[i], want[i])
		}
	}
}

// Bursty arrivals: deterministic per seed, strictly increasing, with the
// requested long-run mean rate but markedly more inter-arrival variance
// than a Poisson process (CV > 1 is the definition of bursty).
func TestBurstyArrivals(t *testing.T) {
	const rate, n = 2.0, 20000
	a, err := BurstyArrivals(9, rate, n)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BurstyArrivals(9, rate, n)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("arrival %d differs between identically seeded runs", i)
		}
		if a[i] <= prev {
			t.Fatalf("arrival %d not strictly increasing: %v after %v", i, a[i], prev)
		}
		prev = a[i]
	}
	got := float64(n) / a[n-1]
	if rel := math.Abs(got-rate) / rate; rel > 0.15 {
		t.Errorf("empirical rate %.3f req/s, want %.3f ±15%%", got, rate)
	}
	// Coefficient of variation of inter-arrival gaps: 1 for Poisson,
	// substantially above 1 for a two-state MMPP with a 16× rate ratio.
	var sum, sumSq float64
	gaps := make([]float64, n)
	last := 0.0
	for i, x := range a {
		gaps[i] = x - last
		last = x
		sum += gaps[i]
	}
	mean := sum / float64(n)
	for _, g := range gaps {
		sumSq += (g - mean) * (g - mean)
	}
	cv := math.Sqrt(sumSq/float64(n)) / mean
	if cv < 1.2 {
		t.Errorf("inter-arrival CV %.3f, want > 1.2 (burstier than Poisson)", cv)
	}
}

func TestMMPPArrivalsErrors(t *testing.T) {
	if _, err := MMPPArrivals(1, 0, 1, 1, 1, 10); err == nil {
		t.Error("zero quiet rate accepted")
	}
	if _, err := MMPPArrivals(1, 1, -1, 1, 1, 10); err == nil {
		t.Error("negative burst rate accepted")
	}
	if _, err := MMPPArrivals(1, 1, 1, 0, 1, 10); err == nil {
		t.Error("zero sojourn accepted")
	}
	if _, err := MMPPArrivals(1, 1, 1, 1, 1, 0); err == nil {
		t.Error("zero count accepted")
	}
	if _, err := BurstyArrivals(1, 0, 10); err == nil {
		t.Error("zero rate accepted")
	}
}

// The deadline helper: absolute start deadline, or +Inf when unset.
func TestStartDeadline(t *testing.T) {
	r := TimedRequest{ArrivalSec: 5, DeadlineSec: 10}
	if got := r.StartDeadline(); got != 15 {
		t.Errorf("start deadline %v, want 15", got)
	}
	if got := (TimedRequest{ArrivalSec: 5}).StartDeadline(); !math.IsInf(got, 1) {
		t.Errorf("unset deadline %v, want +Inf", got)
	}
}

func TestArrivalErrors(t *testing.T) {
	if _, err := PoissonArrivals(1, 0, 10); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := PoissonArrivals(1, 1, 0); err == nil {
		t.Error("zero count accepted")
	}
	if _, err := UniformArrivals(-1, 10); err == nil {
		t.Error("negative rate accepted")
	}
	if _, err := Timed([]Class{Short}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Timed([]Class{Short}, []float64{-1}); err == nil {
		t.Error("negative arrival accepted")
	}
	if _, err := Timed(nil, nil); err == nil {
		t.Error("empty trace accepted")
	}
}

// TimedTrace must attach timestamps to a mix draw deterministically and
// keep the result sorted by arrival.
func TestTimedTrace(t *testing.T) {
	g, err := NewGenerator(3, AzureLikeMix())
	if err != nil {
		t.Fatal(err)
	}
	arr, err := PoissonArrivals(3, 1.0, 200)
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := g.TimedTrace(arr)
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 200 {
		t.Fatalf("got %d requests, want 200", len(reqs))
	}
	seen := map[int]bool{}
	prev := -1.0
	for _, r := range reqs {
		if r.ArrivalSec < prev {
			t.Fatal("requests not sorted by arrival")
		}
		prev = r.ArrivalSec
		if seen[r.ID] {
			t.Fatalf("duplicate request ID %d", r.ID)
		}
		seen[r.ID] = true
		if _, ok := ClassByName(r.Class.Name); !ok {
			t.Fatalf("unknown class %q in trace", r.Class.Name)
		}
	}
}

func TestClassByName(t *testing.T) {
	for _, c := range Classes() {
		got, ok := ClassByName(c.Name)
		if !ok || got != c {
			t.Errorf("ClassByName(%q) = %+v, %v", c.Name, got, ok)
		}
	}
	if _, ok := ClassByName("nope"); ok {
		t.Error("unknown class resolved")
	}
}

func TestTimedRejectsNonFinite(t *testing.T) {
	if _, err := Timed([]Class{Short}, []float64{math.NaN()}); err == nil {
		t.Error("NaN arrival accepted")
	}
	if _, err := Timed([]Class{Short}, []float64{math.Inf(1)}); err == nil {
		t.Error("infinite arrival accepted")
	}
}
