package workload

import (
	"math"
	"testing"
)

func TestClassesMatchPaper(t *testing.T) {
	// §6.6: Small (I:256/O:100), Medium (I:1K/O:350), Long (I:8K/O:350).
	if Short.Input != 256 || Short.Output != 100 {
		t.Errorf("Short = %+v", Short)
	}
	if Medium.Input != 1024 || Medium.Output != 350 {
		t.Errorf("Medium = %+v", Medium)
	}
	if Long.Input != 8192 || Long.Output != 350 {
		t.Errorf("Long = %+v", Long)
	}
	if len(Classes()) != 3 {
		t.Errorf("Classes() returned %d entries", len(Classes()))
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	g1, err := NewGenerator(7, AzureLikeMix())
	if err != nil {
		t.Fatal(err)
	}
	g2, _ := NewGenerator(7, AzureLikeMix())
	a, b := g1.Trace(100), g2.Trace(100)
	for i := range a {
		if a[i].Name != b[i].Name {
			t.Fatalf("traces diverge at %d", i)
		}
	}
}

func TestGeneratorMixProportions(t *testing.T) {
	g, _ := NewGenerator(1, AzureLikeMix())
	counts := map[string]int{}
	n := 20000
	for _, c := range g.Trace(n) {
		counts[c.Name]++
	}
	for _, m := range AzureLikeMix() {
		got := float64(counts[m.Class.Name]) / float64(n)
		if math.Abs(got-m.Weight) > 0.02 {
			t.Errorf("%s frequency %.3f, want ≈ %.2f", m.Class.Name, got, m.Weight)
		}
	}
}

func TestGeneratorErrors(t *testing.T) {
	if _, err := NewGenerator(1, nil); err == nil {
		t.Error("empty mix accepted")
	}
	if _, err := NewGenerator(1, []Mix{{Short, -1}}); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := NewGenerator(1, []Mix{{Short, 0}}); err == nil {
		t.Error("zero total weight accepted")
	}
}

func TestTotalTokens(t *testing.T) {
	in, out := TotalTokens([]Class{Short, Long})
	if in != 256+8192 || out != 100+350 {
		t.Errorf("TotalTokens = %d, %d", in, out)
	}
}
