package kvcache

import (
	"testing"

	"repro/internal/device"
	"repro/internal/model"
)

func mustPlan(t *testing.T, m model.Config, bs, s, dev int, alpha float64) Placement {
	t.Helper()
	p, err := Plan(m, bs, s, dev, alpha)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPlanBasics(t *testing.T) {
	p := mustPlan(t, model.OPT175B, 16, 128*1024, 16, 0.5)
	if p.TotalGroups != 16*96 {
		t.Errorf("groups = %d, want 1536", p.TotalGroups)
	}
	if p.XGroups != 768 || p.KVGroups != 768 {
		t.Errorf("alpha split = %d/%d, want 768/768", p.XGroups, p.KVGroups)
	}
	// α=0.5 on MHA: X bytes must be half the KV bytes for the same groups.
	if p.XBytesTotal*2 != p.KVBytesTotal {
		t.Errorf("X bytes %d not half of KV bytes %d for MHA α=0.5", p.XBytesTotal, p.KVBytesTotal)
	}
}

func TestAlphaZeroAndOne(t *testing.T) {
	p0 := mustPlan(t, model.OPT66B, 4, 32768, 8, 0)
	if p0.XGroups != 0 || p0.XBytesTotal != 0 {
		t.Error("alpha=0 still allocates X-cache")
	}
	p1 := mustPlan(t, model.OPT66B, 4, 32768, 8, 1)
	if p1.KVGroups != 0 || p1.KVBytesTotal != 0 {
		t.Error("alpha=1 still allocates KV cache")
	}
	// X-cache totals are half KV totals for MHA (the endurance benefit).
	if p1.XBytesTotal*2 != p0.KVBytesTotal {
		t.Errorf("full X %d vs full KV %d: want 1:2", p1.XBytesTotal, p0.KVBytesTotal)
	}
}

// Fig. 2(a) anchor: 175B bs=16 s=128K pure-KV placement is ≈ 10 TB and fits
// 16 SmartSSDs but not 4.
func TestCapacityFeasibility(t *testing.T) {
	tb := device.DefaultTestbed()
	p := mustPlan(t, model.OPT175B, 16, 128*1024, 16, 0)
	if !p.Fits(tb.SmartSSD.SSD.CapBytes) {
		t.Error("175B/128K/bs16 should fit 16 SmartSSDs")
	}
	// 4 SmartSSDs (15.4 TB) hold the 128K cache but not 256K (~20 TB).
	p4 := mustPlan(t, model.OPT175B, 16, 256*1024, 4, 0)
	if p4.Fits(tb.SmartSSD.SSD.CapBytes) {
		t.Error("175B/256K/bs16 should not fit 4 SmartSSDs")
	}
}

// §7.2: per-device footprint stays below 600 GB under peak workloads,
// leaving the 3.84 TB capacity underused.
func TestPerDeviceFootprintMatchesSec72(t *testing.T) {
	p := mustPlan(t, model.OPT175B, 16, 128*1024, 16, 0.5)
	gb := float64(p.BytesPerDev) / 1e9
	if gb > 700 {
		t.Errorf("per-device footprint %.0f GB, paper reports < 600 GB", gb)
	}
}

func TestRowAlignment(t *testing.T) {
	// §4.3: row granularity s×d exceeds 4 KiB for long contexts.
	p := mustPlan(t, model.OPT175B, 1, 16, 1, 0) // 16 tokens × 128 dims × 2B = 4 KiB
	if !p.RowAligned(4096) {
		t.Error("16-token row should meet the 4 KiB granularity exactly")
	}
	pShort := mustPlan(t, model.OPT175B, 1, 8, 1, 0)
	if pShort.RowAligned(4096) {
		t.Error("8-token row should be below 4 KiB")
	}
}

func TestDeviceGroupsPartition(t *testing.T) {
	p := mustPlan(t, model.OPT66B, 4, 1024, 16, 0)
	seen := make(map[int]bool)
	for d := 0; d < p.Devices; d++ {
		for _, g := range p.DeviceGroups(d) {
			if seen[g] {
				t.Fatalf("group %d assigned twice", g)
			}
			seen[g] = true
		}
	}
	if len(seen) != p.TotalGroups {
		t.Errorf("assigned %d groups, want %d", len(seen), p.TotalGroups)
	}
	if p.DeviceGroups(-1) != nil || p.DeviceGroups(16) != nil {
		t.Error("out-of-range device returned groups")
	}
}

func TestLoadImbalance(t *testing.T) {
	// 4 batch × 72 heads = 288 groups over 16 devices: perfectly balanced.
	p := mustPlan(t, model.OPT66B, 4, 1024, 16, 0)
	if li := p.LoadImbalance(); li != 1 {
		t.Errorf("imbalance = %v, want 1", li)
	}
	// 1 batch × 8 KV heads over 16 devices: half the devices idle.
	p = mustPlan(t, model.Qwen2532B, 1, 1024, 16, 0)
	if li := p.LoadImbalance(); li <= 1 {
		t.Errorf("expected imbalance > 1 for 8 groups on 16 devices, got %v", li)
	}
}

func TestPlanErrors(t *testing.T) {
	if _, err := Plan(model.OPT30B, 0, 1024, 4, 0); err == nil {
		t.Error("batch=0 accepted")
	}
	if _, err := Plan(model.OPT30B, 1, 1024, 4, 1.5); err == nil {
		t.Error("alpha=1.5 accepted")
	}
	bad := model.OPT30B
	bad.DGroup = 3
	if _, err := Plan(bad, 1, 1024, 4, 0); err == nil {
		t.Error("invalid model accepted")
	}
}
