// Package kvcache plans KV-cache and X-cache placement for HILOS: the
// row-wise (b×h×s×d) layout of §4.3, partitioning of (batch, KV-head) groups
// across NSP devices along the batch and head dimensions (§4.1), and
// capacity feasibility checks.
package kvcache

import (
	"fmt"

	"repro/internal/model"
)

// Placement describes where each (batch, KV-head) group's cache lives and
// how big everything is for a given batch and maximum sequence length.
type Placement struct {
	Model   model.Config
	Batch   int
	MaxSeq  int
	Devices int
	Alpha   float64 // fraction of groups kept as X-cache (GPU-recomputed)

	// Derived quantities.
	TotalGroups  int   // batch × KV heads
	XGroups      int   // groups handled via X-cache
	KVGroups     int   // groups handled by NSP attention
	KVBytesTotal int64 // storage for the KV portion
	XBytesTotal  int64 // storage for the X portion
	BytesPerDev  int64 // storage footprint on the busiest device
	GroupsPerDev int   // groups assigned to the busiest device
	RowBytes     int64 // contiguous bytes of one (seq, head) K row: s×d×2
}

// Plan computes a placement. It returns an error when the configuration is
// inconsistent; capacity checking against a device size is separate (Fits).
func Plan(m model.Config, batch, maxSeq, devices int, alpha float64) (Placement, error) {
	if err := m.Validate(); err != nil {
		return Placement{}, err
	}
	if batch <= 0 || maxSeq <= 0 || devices <= 0 {
		return Placement{}, fmt.Errorf("kvcache: non-positive batch/seq/devices")
	}
	if alpha < 0 || alpha > 1 {
		return Placement{}, fmt.Errorf("kvcache: alpha %v out of [0,1]", alpha)
	}
	p := Placement{
		Model: m, Batch: batch, MaxSeq: maxSeq, Devices: devices, Alpha: alpha,
		TotalGroups: batch * m.KVHeads,
	}
	p.XGroups = int(float64(p.TotalGroups)*alpha + 0.5)
	p.KVGroups = p.TotalGroups - p.XGroups

	perGroupKV := int64(maxSeq) * int64(m.Layers) * (2 * int64(m.HeadDim()) * model.BytesPerElem)
	// The X-cache stores the full hidden activation per token; it is shared
	// by all KV heads of a batch element, so account it per batch-share.
	perGroupX := int64(maxSeq) * int64(m.Layers) * int64(m.Hidden) * model.BytesPerElem / int64(m.KVHeads)

	p.KVBytesTotal = int64(p.KVGroups) * perGroupKV
	p.XBytesTotal = int64(p.XGroups) * perGroupX
	p.GroupsPerDev = ceilDiv(p.TotalGroups, devices)
	// Worst-case device holds GroupsPerDev of the larger per-group footprint.
	perGroupWorst := perGroupKV
	if perGroupX > perGroupWorst {
		perGroupWorst = perGroupX
	}
	p.BytesPerDev = int64(p.GroupsPerDev) * perGroupWorst
	p.RowBytes = int64(maxSeq) * int64(m.HeadDim()) * model.BytesPerElem
	return p, nil
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// TotalBytes returns the combined storage footprint.
func (p Placement) TotalBytes() int64 { return p.KVBytesTotal + p.XBytesTotal }

// Fits reports whether the placement fits n devices of the given capacity.
func (p Placement) Fits(devCapBytes int64) bool {
	return p.BytesPerDev <= devCapBytes && p.TotalBytes() <= devCapBytes*int64(p.Devices)
}

// RowAligned reports whether one K row meets the SSD access granularity
// (§4.3: "the minimum access granularity (s×d) typically exceeds 4 KiB",
// which is what keeps row-wise reads at full SSD bandwidth).
func (p Placement) RowAligned(pageBytes int64) bool {
	return p.RowBytes >= pageBytes
}

// DeviceGroups returns the (batch, KV-head) group indices assigned to device
// dev under round-robin distribution along batch then head (§4.1: attention
// parallelized along batch and head dimensions).
func (p Placement) DeviceGroups(dev int) []int {
	if dev < 0 || dev >= p.Devices {
		return nil
	}
	var gs []int
	for g := dev; g < p.TotalGroups; g += p.Devices {
		gs = append(gs, g)
	}
	return gs
}

// LoadImbalance returns max/mean group count across devices (1 = perfectly
// balanced). Batched inference provides enough parallelism that this stays
// near 1 for the paper's configurations.
func (p Placement) LoadImbalance() float64 {
	base := p.TotalGroups / p.Devices
	if base == 0 {
		return float64(p.Devices) // degenerate: fewer groups than devices
	}
	return float64(ceilDiv(p.TotalGroups, p.Devices)) / (float64(p.TotalGroups) / float64(p.Devices))
}
