package cost

import (
	"testing"

	"repro/internal/device"
)

// §6.6 bill of materials: $15,000 host + $7,000 A100 + 4×$400 SSDs for the
// baseline; the HILOS configuration adds a $10,000 chassis and sixteen
// $2,400 SmartSSDs, replacing the conventional SSDs.
func TestPricesMatchPaper(t *testing.T) {
	tb := device.DefaultTestbed()
	flex := FlexSystem(device.A100()).PriceUSD(tb)
	if flex != 15000+7000+4*400 {
		t.Errorf("FLEX price = %v, want 23600", flex)
	}
	hilos := HILOSSystem(device.A100(), 16).PriceUSD(tb)
	if hilos != 15000+7000+10000+16*2400 {
		t.Errorf("HILOS-16 price = %v, want 70400", hilos)
	}
	h100 := FlexSystem(device.H100()).PriceUSD(tb)
	if h100 != 15000+30000+1600 {
		t.Errorf("H100 FLEX price = %v, want 46600", h100)
	}
}

func TestEfficiency(t *testing.T) {
	if e := Efficiency(10, 20000); e != 0.0005 {
		t.Errorf("efficiency = %v", e)
	}
	if e := Efficiency(10, 0); e != 0 {
		t.Errorf("zero-price efficiency = %v, want 0", e)
	}
}

func TestRelative(t *testing.T) {
	if Relative(3, 2) != 1.5 || Relative(1, 0) != 0 {
		t.Error("Relative broken")
	}
}

// The H100 upgrade costs more than the full 16-SmartSSD HILOS add-on buys
// in throughput terms: HILOS must price below the H100 swap plus SSDs when
// compared per §6.6 (sanity: HILOS-4 is cheaper than the H100 baseline).
func TestHILOS4CheaperThanH100Upgrade(t *testing.T) {
	tb := device.DefaultTestbed()
	h4 := HILOSSystem(device.A100(), 4).PriceUSD(tb)
	h100 := FlexSystem(device.H100()).PriceUSD(tb)
	if h4 >= h100 {
		t.Errorf("HILOS-4 ($%v) not cheaper than H100 baseline ($%v)", h4, h100)
	}
}

func TestMultiHostPricing(t *testing.T) {
	tb := device.DefaultTestbed()
	s := System{Name: "2node", GPU: device.A6000(), Hosts: 2, ExtraGPUs: 7}
	want := 2*tb.HostUSD + 8*device.A6000().PriceUSD
	if got := s.PriceUSD(tb); got != want {
		t.Errorf("multi-node price = %v, want %v", got, want)
	}
}
