// Package cost implements the §6.6 cost-effectiveness analysis (Fig. 16a):
// hardware bills of materials for each system and throughput-per-dollar.
package cost

import (
	"fmt"

	"repro/internal/device"
)

// System identifies a hardware configuration for pricing.
type System struct {
	Name      string
	GPU       device.GPUSpec
	PlainSSDs int // conventional PCIe 4.0 SSDs
	SmartSSDs int // NSP devices (implies the PCIe expansion chassis)
	Hosts     int // server count (multi-node systems)
	ExtraGPUs int // GPUs beyond the first (multi-node systems)
}

// FlexSystem prices the baseline server: host + one GPU + four PM9A3.
func FlexSystem(gpu device.GPUSpec) System {
	return System{Name: "FLEX", GPU: gpu, PlainSSDs: 4, Hosts: 1}
}

// HILOSSystem prices the NSP configuration: host + GPU + chassis + N
// SmartSSDs (the chassis replaces the conventional SSDs, §6.6).
func HILOSSystem(gpu device.GPUSpec, devices int) System {
	return System{Name: fmt.Sprintf("HILOS-%d", devices), GPU: gpu, SmartSSDs: devices, Hosts: 1}
}

// PriceUSD returns the system's total hardware price.
func (s System) PriceUSD(tb device.Testbed) float64 {
	p := float64(max(s.Hosts, 1)) * tb.HostUSD
	p += float64(1+s.ExtraGPUs) * s.GPU.PriceUSD
	p += float64(s.PlainSSDs) * tb.PlainSSD.PriceUSD
	if s.SmartSSDs > 0 {
		p += tb.ChassisUSD + float64(s.SmartSSDs)*tb.SmartSSD.PriceUSD
	}
	return p
}

// Efficiency returns tokens per second per dollar.
func Efficiency(tokPerSec, priceUSD float64) float64 {
	if priceUSD <= 0 {
		return 0
	}
	return tokPerSec / priceUSD
}

// Relative returns a/b, guarding against division by zero.
func Relative(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
