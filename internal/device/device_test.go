package device

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultTestbedValid(t *testing.T) {
	if err := DefaultTestbed().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGPURoofline(t *testing.T) {
	g := A100()
	// Compute-bound op: time set by FLOPs.
	tc := g.ComputeTime(g.EffFLOPS, 0)
	if math.Abs(tc-1) > 1e-9 {
		t.Errorf("compute-bound time = %v, want 1", tc)
	}
	// Memory-bound op: time set by bytes.
	tm := g.ComputeTime(1, g.HBMBW)
	if math.Abs(tm-1) > 1e-9 {
		t.Errorf("memory-bound time = %v, want 1", tm)
	}
	// Roofline is the max of the two.
	if got := g.ComputeTime(g.EffFLOPS, 2*g.HBMBW); math.Abs(got-2) > 1e-9 {
		t.Errorf("roofline time = %v, want 2", got)
	}
}

func TestEffectiveWriteBW(t *testing.T) {
	s := DefaultTestbed().PlainSSD
	// Page-aligned writes see full bandwidth.
	if bw := s.EffectiveWriteBW(s.PageBytes); bw != s.WriteBW {
		t.Errorf("page write BW = %v, want %v", bw, s.WriteBW)
	}
	if bw := s.EffectiveWriteBW(16 * s.PageBytes); bw != s.WriteBW {
		t.Errorf("large write BW = %v, want %v", bw, s.WriteBW)
	}
	// A 256-byte KV entry into 4 KiB pages wastes 15/16 of the bandwidth
	// (the §4.3 motivation for delayed writeback).
	got := s.EffectiveWriteBW(256)
	want := s.WriteBW / 16
	if math.Abs(got-want)/want > 1e-9 {
		t.Errorf("256B write BW = %v, want %v", got, want)
	}
}

func TestWriteAmplification(t *testing.T) {
	s := DefaultTestbed().PlainSSD
	if w := s.WriteAmplification(256); w != 16 {
		t.Errorf("WAF(256) = %v, want 16", w)
	}
	if w := s.WriteAmplification(4096); w != 1 {
		t.Errorf("WAF(4096) = %v, want 1", w)
	}
	if w := s.WriteAmplification(0); w != 1 {
		t.Errorf("WAF(0) = %v, want 1", w)
	}
}

// Effective write bandwidth is monotone non-decreasing in chunk size and
// never exceeds the sequential rate.
func TestEffectiveWriteBWMonotone(t *testing.T) {
	s := DefaultTestbed().PlainSSD
	f := func(a, b uint16) bool {
		x, y := int64(a), int64(b)
		if x > y {
			x, y = y, x
		}
		bx, by := s.EffectiveWriteBW(x), s.EffectiveWriteBW(y)
		return bx <= by+1e-9 && by <= s.WriteBW+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestTestbedCalibrationShape(t *testing.T) {
	tb := DefaultTestbed()
	// The paper's FLEX(16 PCIe 3.0 SSDs) underperforms FLEX(4 PCIe 4.0)
	// because the chassis uplink is below the dedicated aggregate.
	dedicated := 4 * tb.PlainSSD.ReadBW
	if tb.Topo.StorageUplink.BW >= dedicated {
		t.Errorf("chassis uplink %v not below 4×PM9A3 %v; Fig. 10's 16-SSD baseline shape would invert", tb.Topo.StorageUplink.BW, dedicated)
	}
	// 16 SmartSSD internal paths must exceed both (the NSP advantage).
	internal := 16 * tb.SmartSSD.InternalReadBW
	if internal <= dedicated {
		t.Errorf("16×internal %v not above 4×PM9A3 %v", internal, dedicated)
	}
}

func TestValidateCatchesBadValues(t *testing.T) {
	tb := DefaultTestbed()
	tb.KVReadDerate = 0
	if err := tb.Validate(); err == nil {
		t.Error("zero derate accepted")
	}
	tb = DefaultTestbed()
	tb.BaselineOverlap = 1
	if err := tb.Validate(); err == nil {
		t.Error("overlap=1 accepted")
	}
	tb = DefaultTestbed()
	tb.GPU.EffFLOPS = 0
	if err := tb.Validate(); err == nil {
		t.Error("zero GPU rate accepted")
	}
}

func TestGPUPresets(t *testing.T) {
	if H100().EffFLOPS <= A100().EffFLOPS {
		t.Error("H100 not faster than A100")
	}
	if A6000().MemBytes != 48*GiB {
		t.Error("A6000 memory wrong")
	}
	if A100().PriceUSD != 7000 || H100().PriceUSD != 30000 {
		t.Error("GPU prices do not match §6.6")
	}
}
