// Package device models the hardware of the paper's testbed (Table 1):
// GPUs, the host CPU and DRAM, conventional NVMe SSDs, SmartSSD NSP devices,
// and the PCIe topology of Figure 3. Each spec carries the calibration
// constants (effective bandwidths, power draws) used by the timing engines;
// every constant cites its source in DefaultTestbed.
package device

import "fmt"

// GiB and friends express capacities.
const (
	KiB = int64(1) << 10
	MiB = int64(1) << 20
	GiB = int64(1) << 30
	TiB = int64(1) << 40
)

// GPUSpec models a GPU as a roofline: effective FP16 FLOP rate plus HBM
// bandwidth, with a memory capacity used for feasibility checks.
type GPUSpec struct {
	Name     string
	EffFLOPS float64 // effective FP16 FLOP/s for mixed decode kernels
	// GEMMFLOPS is the rate sustained on large dense GEMMs (the X-cache
	// K/V regeneration path), which reach far higher MFU than decode-step
	// kernels.
	GEMMFLOPS  float64
	HBMBW      float64 // bytes/s
	MemBytes   int64
	BusyPowerW float64
	IdlePowerW float64
	PriceUSD   float64
}

// ComputeTime returns the roofline time for an op with the given FLOPs and
// bytes moved through HBM.
func (g GPUSpec) ComputeTime(flops, bytes float64) float64 {
	t := flops / g.EffFLOPS
	if m := bytes / g.HBMBW; m > t {
		t = m
	}
	return t
}

// CPUSpec models the host CPU. Decode attention on the CPU is DRAM-bandwidth
// bound (the paper's baselines offload attention to the CPU during decoding).
type CPUSpec struct {
	Name       string
	EffFLOPS   float64 // effective FP32 FLOP/s for GEMV-like kernels
	BusyPowerW float64
	IdlePowerW float64
}

// DRAMSpec models host memory.
type DRAMSpec struct {
	Bytes  int64
	BW     float64 // bytes/s
	PowerW float64
}

// SSDSpec models an NVMe SSD with page-granular writes.
type SSDSpec struct {
	Name      string
	CapBytes  int64
	ReadBW    float64 // bytes/s sequential
	WriteBW   float64 // bytes/s sequential
	PageBytes int64   // NAND page size (write granularity)
	ReadLat   float64 // seconds, per-command latency
	WriteLat  float64 // seconds, per-command latency
	PowerW    float64
	PBW       float64 // endurance: petabytes written
	PriceUSD  float64
}

// EffectiveWriteBW returns the achievable write bandwidth for chunks of the
// given size: sub-page writes waste the remainder of each NAND page
// (write amplification), so bandwidth scales with chunk/page until the
// chunk reaches the page size (§4.3).
func (s SSDSpec) EffectiveWriteBW(chunkBytes int64) float64 {
	if chunkBytes <= 0 {
		return s.WriteBW
	}
	if chunkBytes >= s.PageBytes {
		return s.WriteBW
	}
	return s.WriteBW * float64(chunkBytes) / float64(s.PageBytes)
}

// WriteAmplification returns the physical/logical write ratio for chunks of
// the given size.
func (s SSDSpec) WriteAmplification(chunkBytes int64) float64 {
	if chunkBytes <= 0 || chunkBytes >= s.PageBytes {
		return 1
	}
	return float64(s.PageBytes) / float64(chunkBytes)
}

// SmartSSDSpec models a Samsung SmartSSD: an SSD plus an FPGA behind a
// private internal PCIe switch (Figure 18a). InternalReadBW/InternalWriteBW
// are the P2P flash↔FPGA-DRAM rates that never touch the host interconnect.
type SmartSSDSpec struct {
	SSD             SSDSpec
	InternalReadBW  float64 // bytes/s, flash → FPGA DRAM (P2P)
	InternalWriteBW float64 // bytes/s, FPGA DRAM → flash (P2P)
	FPGADRAMBW      float64 // bytes/s, FPGA off-chip DRAM
	FPGADRAMBytes   int64
	AccelPowerW     float64 // on-chip power at d_group=1 (Table 3); scaled by accel model
	PriceUSD        float64
}

// LinkSpec is a PCIe link or switch uplink with an effective bandwidth.
type LinkSpec struct {
	Name string
	BW   float64 // bytes/s effective (protocol overhead already applied)
}

// Topology captures the two storage attachments of Figure 3:
// conventional SSDs on dedicated root ports vs. NSP devices behind a shared
// expansion-chassis uplink.
type Topology struct {
	GPULink       LinkSpec // host ↔ GPU (PCIe 4.0 ×16)
	StorageUplink LinkSpec // host ↔ storage array aggregate (chassis uplink for NSP)
	PerDeviceLink LinkSpec // host ↔ one storage device
	// GDSLink is the effective GPUDirect Storage path from the NSP array to
	// GPU memory (X-cache reads, §4.2). GDS traverses the chassis switch and
	// the root complex, sustaining far less than raw PCIe: the paper's
	// B_SSD/B_PCI ≈ 3 at 8 SmartSSDs (25.6 GB/s) implies ≈ 8.5 GB/s.
	GDSLink LinkSpec
}

// Testbed bundles the full hardware configuration of Table 1.
type Testbed struct {
	GPU        GPUSpec
	CPU        CPUSpec
	DRAM       DRAMSpec
	PlainSSD   SSDSpec      // SAMSUNG PM9A3
	SmartSSD   SmartSSDSpec // SAMSUNG SmartSSD
	Topo       Topology
	HostUSD    float64 // host server price
	ChassisUSD float64 // PCIe expansion chassis price

	// Calibration knobs (documented in DefaultTestbed).
	KVReadDerate     float64 // baseline KV reads pay a layout/transpose penalty
	BaselineOverlap  float64 // fraction of KV I/O the baseline overlaps with compute
	UVMDerate        float64 // UVM paging efficiency for DS+UVM baseline
	InterNodeLat     float64 // seconds per pipeline stage hop (vLLM multi-node)
	TPEfficiency     float64 // tensor-parallel scaling efficiency per node
	CPUAttnBW        float64 // effective KV bytes/s of CPU decode attention
	DRAMUsableFrac   float64 // fraction of host DRAM usable for weights+KV
	SwapBW           float64 // effective host↔GPU KV swap bandwidth (vLLM)
	SwapSpaceBytes   int64   // KV swap budget per node (vLLM)
	OverheadPerLayer float64 // framework dispatch overhead per layer per step

	// XRT / writeback path constants (§4.3, §7.3).
	XRTOpLat     float64 // host-side latency per XRT DMA/write operation
	XRTStagingBW float64 // effective BW of small host→FPGA-DRAM staging DMAs
	SyncWriteLat float64 // latency of one synchronous sub-page SSD write
}

// A100 is the default evaluation GPU.
func A100() GPUSpec {
	return GPUSpec{
		Name:       "A100-40GB",
		EffFLOPS:   140e12, // 312 TFLOPS peak FP16 × ~0.45 achievable MFU
		GEMMFLOPS:  270e12, // large dense GEMMs sustain ~85% MFU
		HBMBW:      1.40e12,
		MemBytes:   40 * GiB,
		BusyPowerW: 250, IdlePowerW: 60,
		PriceUSD: 7000, // §6.6 cost analysis
	}
}

// H100 is the upgraded GPU used in the cost study (§6.6).
func H100() GPUSpec {
	return GPUSpec{
		Name:       "H100-80GB",
		EffFLOPS:   330e12,
		GEMMFLOPS:  640e12,
		HBMBW:      1.90e12,
		MemBytes:   80 * GiB,
		BusyPowerW: 350, IdlePowerW: 70,
		PriceUSD: 30000,
	}
}

// A6000 is the GPU of the multi-node vLLM baseline (§6.6, Fig. 17b).
func A6000() GPUSpec {
	return GPUSpec{
		Name:       "RTX-A6000-48GB",
		EffFLOPS:   60e12,
		GEMMFLOPS:  120e12,
		HBMBW:      0.70e12, // GDDR6 768 GB/s peak
		MemBytes:   48 * GiB,
		BusyPowerW: 300, IdlePowerW: 30,
		PriceUSD: 4500,
	}
}

// DefaultTestbed returns the Table 1 configuration. Constants and their
// provenance:
//
//   - PM9A3: 6.9 GB/s read, 4.1 GB/s write (paper §6.1), 4 KiB page,
//     13 W datasheet power, 7.008 PBW endurance (§6.6), $400 (§6.6).
//   - SmartSSD: PCIe 3.0 ×4 internal P2P ≈ 3.2 GB/s effective read
//     (Fig. 12a shows kernels exceeding the ~3.2 GB/s SSD P2P read rate),
//     2.0 GB/s P2P write, 4 GB DDR4-2400 at 19.2 GB/s, $2,400 (§6.6).
//   - GPU link: PCIe 4.0 ×16, 25 GB/s effective of 32 GB/s raw.
//   - Storage uplink: the H3 Falcon chassis shares one ×16 uplink across
//     all 16 SmartSSDs; 20 GB/s effective. This reproduces the paper's
//     observation that FLEX(16 PCIe 3.0 SSDs) reaches only 0.64–0.94× of
//     FLEX(4 PCIe 4.0 SSDs): 20 GB/s uplink vs 27.6 GB/s dedicated ports.
//   - Host: 16×32 GB DDR4-3200 (512 GB) at ≈200 GB/s, $15,000 server,
//     $10,000 chassis (§6.6).
//   - KVReadDerate 0.55: FlexGen's CPU attention reads K in transposed
//     order, paying random-access and layout-conversion penalties on top of
//     sequential bandwidth (§4.4 "layout conflict"; Fig. 4b).
//   - BaselineOverlap 0.35: FlexGen overlaps prefetch with compute only
//     across adjacent layers; most KV I/O sits on the critical path
//     (Fig. 2b shows >60% of time in KV transfers).
//   - UVMDerate 0.22: DS+UVM pays page-fault round trips; the paper reports
//     >4× slowdown vs FLEX(DRAM).
//   - GPU link 16 GB/s: the framework-effective host→device copy rate
//     (staging through pageable buffers), not raw PCIe 4.0 ×16.
//   - CPUAttnBW 22 GB/s: effective KV consumption of CPU decode attention
//     (Fig. 4c shows the baseline near-saturating the CPU, i.e. it is
//     compute/threading bound well below the 200 GB/s DRAM stream rate).
//   - DRAMUsableFrac 0.65: pinned I/O buffers, weight double-buffers and
//     fragmentation shrink the DRAM available for weights+KV.
//   - SwapBW/SwapSpaceBytes: vLLM's paged-KV host swap path (Fig. 17b).
//   - OverheadPerLayer 1 ms: per-layer framework dispatch on the GPU.
func DefaultTestbed() Testbed {
	pm9a3 := SSDSpec{
		Name:     "PM9A3-3.84TB",
		CapBytes: 3840 * 1000 * 1000 * 1000,
		ReadBW:   6.9e9, WriteBW: 4.1e9,
		PageBytes: 4 * KiB,
		ReadLat:   80e-6, WriteLat: 30e-6,
		PowerW: 13, PBW: 7.008, PriceUSD: 400,
	}
	smartSSDBase := SSDSpec{
		Name:     "SmartSSD-3.84TB",
		CapBytes: 3840 * 1000 * 1000 * 1000,
		ReadBW:   3.2e9, WriteBW: 2.0e9, // host-visible PCIe 3.0 ×4
		PageBytes: 4 * KiB,
		ReadLat:   90e-6, WriteLat: 35e-6,
		PowerW: 10, PBW: 7.008, PriceUSD: 2400,
	}
	return Testbed{
		GPU:      A100(),
		CPU:      CPUSpec{Name: "Xeon-Gold-6342", EffFLOPS: 1.2e12, BusyPowerW: 230, IdlePowerW: 105},
		DRAM:     DRAMSpec{Bytes: 512 * GiB, BW: 200e9, PowerW: 40},
		PlainSSD: pm9a3,
		SmartSSD: SmartSSDSpec{
			SSD:             smartSSDBase,
			InternalReadBW:  3.4e9,
			InternalWriteBW: 2.0e9,
			FPGADRAMBW:      19.2e9,
			FPGADRAMBytes:   4 * GiB,
			AccelPowerW:     11.25, // Table 3, d_group = 1
			PriceUSD:        2400,
		},
		Topo: Topology{
			GPULink:       LinkSpec{Name: "pcie4x16-gpu", BW: 16e9},
			StorageUplink: LinkSpec{Name: "chassis-uplink", BW: 20e9},
			PerDeviceLink: LinkSpec{Name: "pcie4x4", BW: 7.0e9},
			GDSLink:       LinkSpec{Name: "gds-path", BW: 8.5e9},
		},
		HostUSD: 15000, ChassisUSD: 10000,
		KVReadDerate:     0.55,
		BaselineOverlap:  0.35,
		UVMDerate:        0.22,
		InterNodeLat:     1.2e-3,
		TPEfficiency:     0.78,
		CPUAttnBW:        22e9,
		DRAMUsableFrac:   0.65,
		SwapBW:           12e9,
		SwapSpaceBytes:   332 * GiB,
		OverheadPerLayer: 1.0e-3,
		// §7.3: "Physical memory isolation in PCIe-based environments
		// necessitates explicit DMA orchestration via XRT... reducing
		// throughput by over 30% when scaling c from 4 KiB (c=16) to
		// 16 KiB (c=64)". Per-op XRT latency penalizes frequent small
		// spills (low c); the staging bandwidth of small host→FPGA DMAs
		// penalizes large buffered transfers (high c). Together they give
		// Fig. 13's optimum at c=16.
		XRTOpLat:     4e-3,
		XRTStagingBW: 0.04e9,
		// Synchronous sub-page writes (naive Fig. 6a path): NVMe write +
		// FTL read-modify-write + sync round trip.
		SyncWriteLat: 1e-3,
	}
}

// Validate checks a testbed for physically meaningless values.
func (t Testbed) Validate() error {
	checks := []struct {
		ok  bool
		msg string
	}{
		{t.GPU.EffFLOPS > 0 && t.GPU.HBMBW > 0, "GPU rates must be positive"},
		{t.CPU.EffFLOPS > 0, "CPU rate must be positive"},
		{t.DRAM.Bytes > 0 && t.DRAM.BW > 0, "DRAM must be positive"},
		{t.PlainSSD.ReadBW > 0 && t.PlainSSD.WriteBW > 0, "SSD rates must be positive"},
		{t.SmartSSD.InternalReadBW > 0, "SmartSSD internal BW must be positive"},
		{t.Topo.GPULink.BW > 0 && t.Topo.StorageUplink.BW > 0, "links must be positive"},
		{t.KVReadDerate > 0 && t.KVReadDerate <= 1, "KVReadDerate must be in (0,1]"},
		{t.BaselineOverlap >= 0 && t.BaselineOverlap < 1, "BaselineOverlap must be in [0,1)"},
		{t.UVMDerate > 0 && t.UVMDerate <= 1, "UVMDerate must be in (0,1]"},
	}
	for _, c := range checks {
		if !c.ok {
			return fmt.Errorf("device: %s", c.msg)
		}
	}
	return nil
}
