// Package model defines the LLM configurations evaluated in the paper
// (Table 2) and the derived size/compute arithmetic used everywhere else:
// weight footprints, KV-cache and X-cache bytes per token, and per-layer
// FLOP counts for the projection, attention and MLP stages.
//
// All storage sizes assume FP16 (2 bytes/element), the paper's default.
package model

import "fmt"

// BytesPerElem is the storage width of model tensors (FP16).
const BytesPerElem = 2

// Config describes a decoder-only transformer, following Table 2.
type Config struct {
	Name         string
	Layers       int
	Hidden       int
	Intermediate int
	Heads        int // query heads
	KVHeads      int // key/value heads (== Heads for MHA)
	DGroup       int // query heads per KV head (GQA group size)

	// Mixture-of-experts parameters; Experts == 0 means dense.
	Experts       int
	ActiveExperts int
	// MoEEveryOther marks architectures (GLaM) where only alternate layers
	// are MoE; the rest use a dense FFN.
	MoEEveryOther bool

	// MLPMatrices is the number of FFN weight matrices per expert:
	// 2 for GELU-style (OPT, GLaM), 3 for SwiGLU (Qwen, Mixtral).
	MLPMatrices int
}

// Validate reports configuration inconsistencies.
func (c Config) Validate() error {
	switch {
	case c.Layers <= 0 || c.Hidden <= 0 || c.Heads <= 0 || c.KVHeads <= 0:
		return fmt.Errorf("model %s: non-positive dimensions", c.Name)
	case c.Hidden%c.Heads != 0:
		return fmt.Errorf("model %s: hidden %d not divisible by heads %d", c.Name, c.Hidden, c.Heads)
	case c.Heads%c.KVHeads != 0:
		return fmt.Errorf("model %s: heads %d not divisible by KV heads %d", c.Name, c.Heads, c.KVHeads)
	case c.DGroup != c.Heads/c.KVHeads:
		return fmt.Errorf("model %s: d_group %d != heads/KV heads %d", c.Name, c.DGroup, c.Heads/c.KVHeads)
	case c.MLPMatrices != 2 && c.MLPMatrices != 3:
		return fmt.Errorf("model %s: MLPMatrices must be 2 or 3", c.Name)
	case c.Experts > 0 && (c.ActiveExperts <= 0 || c.ActiveExperts > c.Experts):
		return fmt.Errorf("model %s: active experts %d out of range", c.Name, c.ActiveExperts)
	}
	return nil
}

// HeadDim returns the per-head hidden dimension d.
func (c Config) HeadDim() int { return c.Hidden / c.Heads }

// IsMHA reports whether the model uses standard multi-head attention.
func (c Config) IsMHA() bool { return c.KVHeads == c.Heads }

// IsMoE reports whether the model has mixture-of-experts FFN layers.
func (c Config) IsMoE() bool { return c.Experts > 0 }

// moeLayers returns how many of the layers are MoE layers.
func (c Config) moeLayers() int {
	if !c.IsMoE() {
		return 0
	}
	if c.MoEEveryOther {
		return c.Layers / 2
	}
	return c.Layers
}

// AttnWeightBytesPerLayer returns the FP16 bytes of the attention projection
// weights (Wq, Wk, Wv, Wo) of one layer.
func (c Config) AttnWeightBytesPerLayer() int64 {
	h := int64(c.Hidden)
	kvDim := int64(c.KVHeads * c.HeadDim())
	params := h*h + 2*h*kvDim + h*h // Wq + (Wk,Wv) + Wo
	return params * BytesPerElem
}

// ffnExpertParams returns the parameter count of a single FFN expert.
func (c Config) ffnExpertParams() int64 {
	return int64(c.MLPMatrices) * int64(c.Hidden) * int64(c.Intermediate)
}

// MLPWeightBytesPerLayer returns the FP16 bytes of all FFN weights stored
// for one layer (all experts for MoE layers).
func (c Config) MLPWeightBytesPerLayer(layer int) int64 {
	if c.IsMoE() && (!c.MoEEveryOther || layer%2 == 1) {
		return int64(c.Experts) * c.ffnExpertParams() * BytesPerElem
	}
	return c.ffnExpertParams() * BytesPerElem
}

// MLPActiveWeightBytesPerLayer returns the FFN weight bytes that must be
// loaded to the GPU per decoding step for one layer (active experts only).
func (c Config) MLPActiveWeightBytesPerLayer(layer int) int64 {
	if c.IsMoE() && (!c.MoEEveryOther || layer%2 == 1) {
		return int64(c.ActiveExperts) * c.ffnExpertParams() * BytesPerElem
	}
	return c.ffnExpertParams() * BytesPerElem
}

// TotalWeightBytes returns the FP16 footprint of all transformer weights.
func (c Config) TotalWeightBytes() int64 {
	var total int64
	for l := 0; l < c.Layers; l++ {
		total += c.AttnWeightBytesPerLayer() + c.MLPWeightBytesPerLayer(l)
	}
	return total
}

// ActiveWeightBytesPerStep returns the weight bytes touched per decoding
// step across all layers (MoE loads only active experts).
func (c Config) ActiveWeightBytesPerStep() int64 {
	var total int64
	for l := 0; l < c.Layers; l++ {
		total += c.AttnWeightBytesPerLayer() + c.MLPActiveWeightBytesPerLayer(l)
	}
	return total
}

// ParamCount returns the approximate parameter count (transformer blocks
// only; embeddings excluded, matching how model names are usually derived).
func (c Config) ParamCount() int64 { return c.TotalWeightBytes() / BytesPerElem }

// KVBytesPerTokenLayer returns the K+V cache bytes for one token in one
// layer for a single sequence.
func (c Config) KVBytesPerTokenLayer() int64 {
	return 2 * int64(c.KVHeads*c.HeadDim()) * BytesPerElem
}

// XBytesPerTokenLayer returns the pre-projection activation (X-cache) bytes
// for one token in one layer for a single sequence.
func (c Config) XBytesPerTokenLayer() int64 {
	return int64(c.Hidden) * BytesPerElem
}

// KVToXRatio returns ρ = S_KV / S_X. For MHA ρ = 2 (X-cache halves storage,
// §4.2); for GQA ρ can fall below 1, in which case the cache scheduler
// disables X-cache.
func (c Config) KVToXRatio() float64 {
	return float64(c.KVBytesPerTokenLayer()) / float64(c.XBytesPerTokenLayer())
}

// KVCacheBytes returns the total KV footprint for batch bs at context s.
func (c Config) KVCacheBytes(bs, s int) int64 {
	return int64(bs) * int64(s) * int64(c.Layers) * c.KVBytesPerTokenLayer()
}

// XCacheBytes returns the total X-cache footprint for batch bs at context s.
func (c Config) XCacheBytes(bs, s int) int64 {
	return int64(bs) * int64(s) * int64(c.Layers) * c.XBytesPerTokenLayer()
}

// ActivationBytes approximates per-step intermediate activation residency
// (hidden + intermediate states for the live batch).
func (c Config) ActivationBytes(bs int) int64 {
	return int64(bs) * int64(c.Hidden+c.Intermediate) * BytesPerElem * 2
}

// --- FLOP counts (multiply-accumulate = 2 FLOPs) ---

// ProjFLOPsPerTokenLayer returns QKV+output projection FLOPs for one token.
func (c Config) ProjFLOPsPerTokenLayer() float64 {
	h := float64(c.Hidden)
	kvDim := float64(c.KVHeads * c.HeadDim())
	return 2 * (h*h + 2*h*kvDim + h*h)
}

// MLPFLOPsPerTokenLayer returns FFN FLOPs for one token in one layer
// (active experts for MoE).
func (c Config) MLPFLOPsPerTokenLayer(layer int) float64 {
	e := 1.0
	if c.IsMoE() && (!c.MoEEveryOther || layer%2 == 1) {
		e = float64(c.ActiveExperts)
	}
	return e * 2 * float64(c.MLPMatrices) * float64(c.Hidden) * float64(c.Intermediate)
}

// AttnFLOPsPerTokenLayer returns decode attention FLOPs for one new token
// attending to s cached tokens in one layer: QKᵀ plus score·V.
func (c Config) AttnFLOPsPerTokenLayer(s int) float64 {
	return 4 * float64(c.Heads*c.HeadDim()) * float64(s)
}

// DecodeFLOPsPerToken returns all FLOPs to decode one token at context s.
func (c Config) DecodeFLOPsPerToken(s int) float64 {
	var f float64
	for l := 0; l < c.Layers; l++ {
		f += c.ProjFLOPsPerTokenLayer() + c.MLPFLOPsPerTokenLayer(l) + c.AttnFLOPsPerTokenLayer(s)
	}
	return f
}

// PrefillFLOPs returns the FLOPs to prefill a batch of bs sequences of
// length s (quadratic attention term included).
func (c Config) PrefillFLOPs(bs, s int) float64 {
	var f float64
	for l := 0; l < c.Layers; l++ {
		linear := (c.ProjFLOPsPerTokenLayer() + c.MLPFLOPsPerTokenLayer(l)) * float64(s)
		attn := 2 * float64(c.Heads*c.HeadDim()) * float64(s) * float64(s) // causal ≈ s²/2 each for QKᵀ and SV
		f += linear + attn
	}
	return f * float64(bs)
}
