package model

import (
	"math"
	"testing"
)

func TestPresetsValidate(t *testing.T) {
	for _, c := range All() {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
	}
}

// Parameter counts must land near the names (transformer blocks dominate).
func TestParamCountsMatchNames(t *testing.T) {
	want := map[string]float64{
		"OPT-30B":      30e9,
		"OPT-66B":      66e9,
		"OPT-175B":     175e9,
		"Qwen2.5-32B":  32e9,
		"Mixtral-8x7B": 46.7e9, // the 8x7B naming counts ~47B total params
		"GLaM-143B":    143e9,
	}
	for _, c := range All() {
		got := float64(c.ParamCount())
		w := want[c.Name]
		rel := math.Abs(got-w) / w
		if rel > 0.15 {
			t.Errorf("%s: param count %.3g vs expected %.3g (%.0f%% off)", c.Name, got, w, rel*100)
		}
	}
}

func TestHeadDims(t *testing.T) {
	want := map[string]int{
		"OPT-30B": 112, "OPT-66B": 128, "OPT-175B": 128,
		"Qwen2.5-32B": 128, "Mixtral-8x7B": 128, "GLaM-143B": 128,
	}
	for _, c := range All() {
		if c.HeadDim() != want[c.Name] {
			t.Errorf("%s: head dim %d, want %d", c.Name, c.HeadDim(), want[c.Name])
		}
	}
}

// Figure 2(a): OPT-175B at bs=16, s=128K has a KV cache near 10 TB, far
// beyond the 512 GB host DRAM.
func TestKVFootprintMatchesFig2(t *testing.T) {
	kv := OPT175B.KVCacheBytes(16, 128*1024)
	tb := float64(kv) / 1e12
	if tb < 8 || tb > 12 {
		t.Errorf("OPT-175B bs=16 s=128K KV = %.2f TB, expected ≈ 10 TB", tb)
	}
	if kv < 512<<30 {
		t.Error("KV cache unexpectedly fits in host DRAM")
	}
}

// KV entry per head per token is 256 bytes for d=128 models (cited in §4.3
// when motivating the 16-step spill interval against 4 KiB pages).
func TestKVEntryBytesPerHead(t *testing.T) {
	c := OPT175B
	perHead := c.KVBytesPerTokenLayer() / int64(c.KVHeads)
	if perHead != 2*128*2 {
		t.Errorf("per-head KV entry = %d bytes, want 512 (K+V) — paper cites 256 per tensor", perHead)
	}
}

func TestKVToXRatio(t *testing.T) {
	if r := OPT175B.KVToXRatio(); r != 2 {
		t.Errorf("MHA KV/X ratio = %v, want 2", r)
	}
	// GQA: KV is smaller than X, so X-cache loses its advantage.
	if r := Qwen2532B.KVToXRatio(); r >= 1 {
		t.Errorf("Qwen GQA KV/X ratio = %v, want < 1", r)
	}
	if r := Mixtral8x7B.KVToXRatio(); r >= 1 {
		t.Errorf("Mixtral GQA KV/X ratio = %v, want < 1", r)
	}
}

func TestMoEWeightAccounting(t *testing.T) {
	c := GLaM143B
	// Alternate layers are MoE: stored FFN weights differ between layers.
	dense := c.MLPWeightBytesPerLayer(0)
	moe := c.MLPWeightBytesPerLayer(1)
	if moe != int64(c.Experts)*dense {
		t.Errorf("MoE layer stores %d, want %d× dense layer %d", moe, c.Experts, dense)
	}
	// Active loading only touches 2 experts.
	if got := c.MLPActiveWeightBytesPerLayer(1); got != int64(c.ActiveExperts)*dense {
		t.Errorf("active MoE load %d, want %d", got, int64(c.ActiveExperts)*dense)
	}
	// Per-step active bytes must be far below total weights.
	if c.ActiveWeightBytesPerStep() >= c.TotalWeightBytes() {
		t.Error("active weights not smaller than total for MoE model")
	}
	// Dense models touch all weights every step.
	if OPT66B.ActiveWeightBytesPerStep() != OPT66B.TotalWeightBytes() {
		t.Error("dense model active weights != total")
	}
}

func TestFLOPMonotonicity(t *testing.T) {
	if OPT66B.DecodeFLOPsPerToken(32768) <= OPT66B.DecodeFLOPsPerToken(16384) {
		t.Error("decode FLOPs not increasing with context")
	}
	if OPT66B.PrefillFLOPs(2, 16384) <= OPT66B.PrefillFLOPs(1, 16384) {
		t.Error("prefill FLOPs not increasing with batch")
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	bad := OPT30B
	bad.DGroup = 2
	if err := bad.Validate(); err == nil {
		t.Error("wrong d_group accepted")
	}
	bad = OPT30B
	bad.Heads = 63
	if err := bad.Validate(); err == nil {
		t.Error("non-dividing heads accepted")
	}
	bad = Mixtral8x7B
	bad.ActiveExperts = 9
	if err := bad.Validate(); err == nil {
		t.Error("too many active experts accepted")
	}
}

func TestByName(t *testing.T) {
	c, err := ByName("OPT-66B")
	if err != nil || c.Layers != 64 {
		t.Errorf("ByName(OPT-66B) = %+v, %v", c, err)
	}
	if _, err := ByName("GPT-5"); err == nil {
		t.Error("unknown model accepted")
	}
}

// The KV:weight ratio drives Figure 12(b)'s observation that MoE/GQA models
// favor FLEX(DRAM) slightly: their KV per weight byte is lower than MHA OPT.
func TestKVToWeightRatioOrdering(t *testing.T) {
	ratio := func(c Config) float64 {
		return float64(c.KVCacheBytes(16, 65536)) / float64(c.TotalWeightBytes())
	}
	if ratio(Qwen2532B) >= ratio(OPT66B) {
		t.Errorf("GQA model KV:weight %.2f not below MHA %.2f", ratio(Qwen2532B), ratio(OPT66B))
	}
}
