package model

import "fmt"

// Preset model configurations from Table 2 of the paper.
var (
	// OPT30B is OPT-30B: 48 layers, MHA.
	OPT30B = Config{
		Name: "OPT-30B", Layers: 48, Hidden: 7168, Intermediate: 28672,
		Heads: 64, KVHeads: 64, DGroup: 1, MLPMatrices: 2,
	}
	// OPT66B is OPT-66B: 64 layers, MHA.
	OPT66B = Config{
		Name: "OPT-66B", Layers: 64, Hidden: 9216, Intermediate: 36864,
		Heads: 72, KVHeads: 72, DGroup: 1, MLPMatrices: 2,
	}
	// OPT175B is OPT-175B: 96 layers, MHA; the paper's flagship workload.
	OPT175B = Config{
		Name: "OPT-175B", Layers: 96, Hidden: 12288, Intermediate: 49152,
		Heads: 96, KVHeads: 96, DGroup: 1, MLPMatrices: 2,
	}
	// Qwen2532B is Qwen2.5-32B: dense with GQA (d_group = 5).
	Qwen2532B = Config{
		Name: "Qwen2.5-32B", Layers: 64, Hidden: 5120, Intermediate: 27648,
		Heads: 40, KVHeads: 8, DGroup: 5, MLPMatrices: 3,
	}
	// Mixtral8x7B is Mixtral-8×7B: MoE (8 experts, 2 active) with GQA.
	Mixtral8x7B = Config{
		Name: "Mixtral-8x7B", Layers: 32, Hidden: 4096, Intermediate: 14336,
		Heads: 32, KVHeads: 8, DGroup: 4,
		Experts: 8, ActiveExperts: 2, MLPMatrices: 3,
	}
	// GLaM143B is GLaM-143B: MoE (64 experts on alternate layers, 2 active)
	// with MHA.
	GLaM143B = Config{
		Name: "GLaM-143B", Layers: 32, Hidden: 4096, Intermediate: 16384,
		Heads: 32, KVHeads: 32, DGroup: 1,
		Experts: 64, ActiveExperts: 2, MoEEveryOther: true, MLPMatrices: 2,
	}
)

// All returns every preset configuration in Table 2 order.
func All() []Config {
	return []Config{OPT30B, OPT66B, OPT175B, Qwen2532B, Mixtral8x7B, GLaM143B}
}

// ByName returns the preset with the given name.
func ByName(name string) (Config, error) {
	for _, c := range All() {
		if c.Name == name {
			return c, nil
		}
	}
	return Config{}, fmt.Errorf("model: unknown model %q", name)
}
