// Package experiments regenerates every table and figure of the paper's
// evaluation (§3, §6, §7). Each generator returns a Table whose rows mirror
// the series the paper plots; cmd/hilos-bench prints them and
// EXPERIMENTS.md records paper-vs-measured shape comparisons.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/device"
)

// Table is one regenerated artifact.
type Table struct {
	ID      string // e.g. "fig10"
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string // shape expectations from the paper
}

// String renders the table with aligned columns.
func (t Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Runner evaluates experiments on a testbed.
type Runner struct {
	TB device.Testbed
}

// New returns a Runner on the default Table 1 testbed.
func New() Runner { return Runner{TB: device.DefaultTestbed()} }

// Generator produces one table.
type Generator struct {
	ID   string
	Name string
	Run  func(Runner) Table
}

// Registry lists every experiment in paper order.
func Registry() []Generator {
	return []Generator{
		{"fig2", "Motivation: memory footprint and time breakdown", Runner.Fig2},
		{"fig4", "ANS latency breakdown and host utilization", Runner.Fig4},
		{"table3", "FPGA resource utilization and performance", Runner.Table3},
		{"fig10", "Main throughput comparison", Runner.Fig10},
		{"fig11", "Batch size sensitivity", Runner.Fig11},
		{"fig12a", "Kernel microbenchmark", Runner.Fig12a},
		{"fig12b", "Model architecture sensitivity", Runner.Fig12b},
		{"fig13", "Spill interval and X-cache ratio sensitivity", Runner.Fig13},
		{"fig14", "Output length sensitivity", Runner.Fig14},
		{"fig15", "Ablation study", Runner.Fig15},
		{"fig16a", "Cost effectiveness", Runner.Fig16a},
		{"fig16b", "SSD endurance", Runner.Fig16b},
		{"fig17a", "Energy consumption breakdown", Runner.Fig17a},
		{"fig17b", "Multi-node vLLM comparison", Runner.Fig17b},
		{"fig18c", "Accuracy on long-context retrieval", Runner.Fig18c},
		{"est", "Performance estimator validation (§5.1)", Runner.Estimator},
		{"isp", "ISP projection (§7.1)", Runner.ISP},
		{"ext-csd", "Future CSD designs (§7.2)", Runner.ExtCSD},
		{"ext-cxl", "CXL-based writeback (§7.3)", Runner.ExtCXL},
		{"ext-ftl", "FTL mapping granularity (§7.2)", Runner.ExtFTL},
	}
}

// IDs returns all experiment identifiers, sorted.
func IDs() []string {
	var ids []string
	for _, g := range Registry() {
		ids = append(ids, g.ID)
	}
	sort.Strings(ids)
	return ids
}

// ByID returns the generator with the given ID.
func ByID(id string) (Generator, error) {
	for _, g := range Registry() {
		if g.ID == id {
			return g, nil
		}
	}
	return Generator{}, fmt.Errorf("experiments: unknown experiment %q (known: %s)", id, strings.Join(IDs(), ", "))
}

// helpers shared by generators

func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

func clampShare(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func ratioOrOOM(v, base float64, oom bool) string {
	if oom {
		return "OOM"
	}
	if base == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2fx", v/base)
}
