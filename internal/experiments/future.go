package experiments

import (
	"fmt"

	"repro/internal/accel"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/repcache"
)

// ExtCSD regenerates the §7.2 future-CSD analysis: whether the attention
// kernel keeps up with PCIe 5.0-class internal storage, the DSP demand of
// naive scaling, and the refined balanced design.
func (r Runner) ExtCSD() Table {
	t := Table{
		ID:      "ext-csd",
		Title:   "Future CSD designs (§7.2), d_group=5 kernel at s=32K",
		Headers: []string{"device", "internal BW (GB/s)", "kernel rate (GB/s)", "saturates?"},
		Notes: []string{
			"paper: 4x DSP parallelization would need over 2,000 DSPs (KU15P has 1,968)",
			"paper: dedicated exponential units and dual clock domains restore viability",
		},
	}
	const s = 32 * 1024
	naive := accel.SmartSSDToday()
	naive.Name = "naive PCIe 5.0 port"
	naive.InternalBW = 13.6e9
	for _, dev := range []accel.FutureCSD{accel.SmartSSDToday(), naive, accel.PCIe5CSD()} {
		rate, err := dev.KernelRate(5, 128, s)
		if err != nil {
			t.Notes = append(t.Notes, "error: "+err.Error())
			continue
		}
		ok, err := dev.SaturatesInterface(5, 128, s)
		if err != nil {
			t.Notes = append(t.Notes, "error: "+err.Error())
			continue
		}
		sat := "no"
		if ok {
			sat = "yes"
		}
		t.Rows = append(t.Rows, []string{dev.Name, f2(dev.InternalBW / 1e9), f2(rate / 1e9), sat})
	}
	rm := accel.DefaultResourceModel(128)
	if dsps, err := accel.DSPsForThroughputScale(rm, 5, 4); err == nil {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"DSP demand for 4x d_group=5 via parallelization: %.0f of %d available", dsps, accel.KU15PDSPs))
	}
	return t
}

// ExtCXL regenerates the §7.3 analysis: the spill-interval penalty of the
// PCIe platform's explicit DMA orchestration disappears under CXL.mem.
func (r Runner) ExtCXL() Table {
	t := Table{
		ID:      "ext-cxl",
		Title:   "PCIe (XRT DMA) vs CXL.mem writeback orchestration, OPT-66B, 8 SmartSSDs, α=50%",
		Headers: []string{"platform", "c=16", "c=32", "c=64", "c=64 vs c=16"},
		Notes: []string{
			"paper: throughput drops >30% scaling c from 4 KiB (c=16) to 16 KiB (c=64) on PCIe",
			"paper: CXL.mem eliminates explicit copies and DMA management",
		},
	}
	run := func(cxl bool, c int) float64 {
		rep := repcache.CoreRun(r.TB, request(model.OPT66B, 16, 32768), core.Options{
			Devices: 8, XCache: true, DelayedWriteback: true,
			Alpha: 0.5, SpillInterval: c, CXL: cxl,
		})
		return rep.DecodeTokPerSec()
	}
	var points []func() group
	for _, p := range []struct {
		name string
		cxl  bool
	}{{"PCIe + XRT", false}, {"CXL.mem", true}} {
		points = append(points, func() group {
			t16, t32, t64 := run(p.cxl, 16), run(p.cxl, 32), run(p.cxl, 64)
			return group{rows: [][]string{{
				p.name, f3(t16), f3(t32), f3(t64), pct(t64/t16 - 1),
			}}}
		})
	}
	t.addPoints(points)
	return t
}
