package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/ftl"
)

// ExtFTL regenerates the §7.2 FTL analysis: mapping-table DRAM footprint at
// both granularities for a 3.84 TB device, and measured write amplification
// of each mapping under HILOS's sequential KV pattern versus random
// small-write workloads.
func (r Runner) ExtFTL() Table {
	t := Table{
		ID:    "ext-ftl",
		Title: "FTL mapping granularity (§7.2): table DRAM and measured WAF",
		Headers: []string{"mapping", "table DRAM (3.84TB dev)", "WAF sequential KV",
			"WAF random 4KiB"},
		Notes: []string{
			"paper: block-level mappings free DRAM for bandwidth; viable because HILOS",
			"       keeps KV reads and writes sequential (write-back mechanism, §4.3)",
		},
	}
	const devCap = int64(3840e9)
	for _, m := range []ftl.Mapping{ftl.PageLevel, ftl.BlockLevel} {
		cfg := ftl.DefaultConfig(m)
		cfg.CapBytes = 32 << 20 // small slice; WAF is capacity-invariant

		seq, err := ftl.New(cfg)
		if err != nil {
			t.Notes = append(t.Notes, "error: "+err.Error())
			continue
		}
		// Prefill + two wrap-around spill passes: the HILOS pattern.
		for pass := 0; pass < 3; pass++ {
			if err := seq.SequentialFill(); err != nil {
				t.Notes = append(t.Notes, "error: "+err.Error())
				break
			}
		}

		rnd, err := ftl.New(cfg)
		if err != nil {
			t.Notes = append(t.Notes, "error: "+err.Error())
			continue
		}
		if err := rnd.SequentialFill(); err == nil {
			_ = rnd.RandomOverwrite(rand.New(rand.NewSource(1)), 2000)
		}

		table := ftl.MappingTableBytes(devCap, cfg.PageBytes, cfg.PagesPerBlock, m, cfg.MapEntryBytes)
		t.Rows = append(t.Rows, []string{
			m.String(),
			fmt.Sprintf("%.0f MB", float64(table)/1e6),
			f2(seq.WAF()),
			f2(rnd.WAF()),
		})
	}
	return t
}
