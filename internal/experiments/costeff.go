package experiments

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/device"
	"repro/internal/endurance"
	"repro/internal/energy"
	"repro/internal/model"
	"repro/internal/repcache"
	"repro/internal/workload"
)

// Fig16a regenerates the cost-effectiveness study: tokens/s/$ normalized to
// FLEX(SSD), across GPUs and models.
func (r Runner) Fig16a() Table {
	t := Table{
		ID:      "fig16a",
		Title:   "Cost efficiency (tok/s/$) normalized to FLEX(SSD) on the same GPU",
		Headers: []string{"GPU", "model", "s", "FLEX(SSD)", "FLEX(DRAM)", "HILOS(4)", "HILOS(8)", "HILOS(16)"},
		Notes: []string{
			"paper: HILOS up to 2.02x on 66B; FLEX(DRAM) 1.53x when DRAM suffices; 1.68x on 175B",
			"paper: H100 upgrade gives 1.39x speed but worse cost efficiency than HILOS",
		},
	}
	var points []func() group
	for _, gpu := range []device.GPUSpec{device.A100(), device.H100()} {
		tb := r.TB
		tb.GPU = gpu
		for _, m := range []model.Config{model.OPT66B, model.OPT175B} {
			for _, s := range []int{16384, 32768} {
				points = append(points, func() group {
					req := request(m, 16, s)
					flexPrice := cost.FlexSystem(gpu).PriceUSD(tb)
					base := cost.Efficiency(repcache.FlexRun(tb, baseline.FlexSSD(tb), req).DecodeTokPerSec(), flexPrice)
					row := []string{gpu.Name, m.Name, fmt.Sprintf("%dK", s/1024), "1.00x"}
					dram := repcache.FlexRun(tb, baseline.FlexDRAM(tb), req)
					row = append(row, ratioOrOOM(cost.Efficiency(dram.DecodeTokPerSec(), flexPrice), base, dram.OOM))
					for _, n := range []int{4, 8, 16} {
						h := repcache.CoreRun(tb, req, core.DefaultOptions(n))
						eff := cost.Efficiency(h.DecodeTokPerSec(), cost.HILOSSystem(gpu, n).PriceUSD(tb))
						row = append(row, ratioOrOOM(eff, base, h.OOM))
					}
					return group{rows: [][]string{row}}
				})
			}
		}
	}
	t.addPoints(points)
	return t
}

// Fig16b regenerates the endurance study: total serviceable requests for 16
// devices across request classes and model sizes.
func (r Runner) Fig16b() Table {
	t := Table{
		ID:      "fig16b",
		Title:   "Total serviceable requests (millions), 16 devices, 7.008 PBW each",
		Headers: []string{"class", "model", "FLEX(16 SSDs)", "HILOS c=16", "HILOS c=32", "gain", "c16→c32"},
		Notes: []string{
			"paper: HILOS improves endurance 1.34-1.47x; c 16→32 adds 1.02-1.05x",
			"paper: >4.08M long requests on the 175B model",
		},
	}
	flex := endurance.FlexWrites()
	h16 := endurance.HILOSWrites(0.5, 16)
	h32 := endurance.HILOSWrites(0.5, 32)
	var points []func() group
	for _, class := range workload.Classes() {
		for _, m := range []model.Config{model.OPT30B, model.OPT66B, model.OPT175B} {
			points = append(points, func() group {
				nf, err := endurance.ServiceableRequests(m, class, flex, 16, r.TB.SmartSSD.SSD.PBW)
				if err != nil {
					return group{notes: []string{"error: " + err.Error()}}
				}
				n16, _ := endurance.ServiceableRequests(m, class, h16, 16, r.TB.SmartSSD.SSD.PBW)
				n32, _ := endurance.ServiceableRequests(m, class, h32, 16, r.TB.SmartSSD.SSD.PBW)
				return group{rows: [][]string{{
					class.Name, m.Name,
					f2(nf / 1e6), f2(n16 / 1e6), f2(n32 / 1e6),
					f2(n16 / nf), f2(n32 / n16),
				}}}
			})
		}
	}
	t.addPoints(points)
	return t
}

// Fig17a regenerates the energy-consumption breakdown per generated token.
func (r Runner) Fig17a() Table {
	t := Table{
		ID:      "fig17a",
		Title:   "Energy per generated token (J), by component",
		Headers: []string{"model", "system", "CPU", "DRAM", "GPU", "SSD", "total", "vs FLEX(SSD)"},
		Notes: []string{
			"paper: FLEX(SSD) worst; HILOS cuts energy up to 85% despite higher SSD power",
		},
	}
	var points []func() group
	for _, m := range []model.Config{model.OPT30B, model.OPT66B, model.OPT175B} {
		points = append(points, func() group {
			req := request(m, 16, 32768)
			var baseTotal float64
			type sys struct {
				name string
				run  func() (energy.Breakdown, error)
			}
			systems := []sys{
				{"FLEX(SSD)", func() (energy.Breakdown, error) {
					rep := repcache.FlexRun(r.TB, baseline.FlexSSD(r.TB), req)
					return energy.PerToken(r.TB, rep, energy.Config{Storage: energy.PlainSSDs, Devices: 4})
				}},
				{"FLEX(DRAM)", func() (energy.Breakdown, error) {
					rep := repcache.FlexRun(r.TB, baseline.FlexDRAM(r.TB), req)
					return energy.PerToken(r.TB, rep, energy.Config{Storage: energy.PlainSSDs, Devices: 4})
				}},
			}
			for _, n := range []int{4, 8, 16} {
				systems = append(systems, sys{fmt.Sprintf("HILOS(%d SSDs)", n), func() (energy.Breakdown, error) {
					rep := repcache.CoreRun(r.TB, req, core.DefaultOptions(n))
					return energy.PerToken(r.TB, rep, energy.Config{
						Storage: energy.SmartSSDs, Devices: n, AccelPowerW: r.TB.SmartSSD.AccelPowerW,
					})
				}})
			}
			var g group
			for i, s := range systems {
				b, err := s.run()
				if err != nil {
					g.rows = append(g.rows, []string{m.Name, s.name, "-", "-", "-", "-", "OOM", "-"})
					continue
				}
				if i == 0 {
					baseTotal = b.Total()
				}
				g.rows = append(g.rows, []string{
					m.Name, s.name,
					f2(b.CPU), f2(b.DRAM), f2(b.GPU), f2(b.SSD), f2(b.Total()),
					pct(b.Total() / baseTotal),
				})
			}
			return g
		})
	}
	t.addPoints(points)
	return t
}

// Fig17b regenerates the multi-node vLLM comparison on OPT-175B.
func (r Runner) Fig17b() Table {
	t := Table{
		ID:      "fig17b",
		Title:   "OPT-175B total throughput (tok/s) vs multi-node vLLM",
		Headers: []string{"s", "FLEX(SSD)", "FLEX(DRAM)", "vLLM(8xA6000)", "HILOS(16)", "HILOS/vLLM"},
		Notes: []string{
			"paper: HILOS 1.64-1.81x over the 2-node 8-GPU vLLM deployment",
		},
	}
	v := baseline.DefaultVLLM()
	var points []func() group
	for _, s := range []int{16384, 32768} {
		points = append(points, func() group {
			req := request(model.OPT175B, 16, s)
			fs := repcache.FlexRun(r.TB, baseline.FlexSSD(r.TB), req)
			fd := repcache.FlexRun(r.TB, baseline.FlexDRAM(r.TB), req)
			vl := repcache.VLLMRun(r.TB, v, req)
			h := repcache.CoreRun(r.TB, req, core.DefaultOptions(16))
			fdCell := "OOM"
			if !fd.OOM {
				fdCell = f3(fd.DecodeTokPerSec())
			}
			ratio := "-"
			if vl.DecodeTokPerSec() > 0 {
				ratio = f2(h.DecodeTokPerSec() / vl.DecodeTokPerSec())
			}
			return group{rows: [][]string{{
				fmt.Sprintf("%dK", s/1024),
				f3(fs.DecodeTokPerSec()), fdCell,
				f3(vl.DecodeTokPerSec()), f3(h.DecodeTokPerSec()), ratio,
			}}}
		})
	}
	t.addPoints(points)
	return t
}
