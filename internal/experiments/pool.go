package experiments

import (
	"runtime"
	"sync"
)

// workers bounds the experiment worker pool. The determinism test pins it
// to 1 to prove index-ordered assembly makes the parallel runner's tables
// byte-identical to a sequential run.
var workers = runtime.GOMAXPROCS(0)

// group is the output of one independent sweep point of a generator: the
// table rows it contributes plus any notes it appended (infeasibility
// errors, measured aggregates).
type group struct {
	rows  [][]string
	notes []string
}

// addPoints evaluates the points via runPoints and appends their rows and
// notes to the table, so no generator can accidentally drop a point's
// notes (error paths and measured aggregates ride along with the rows).
func (t *Table) addPoints(points []func() group) {
	rows, notes := runPoints(points)
	t.Rows = append(t.Rows, rows...)
	t.Notes = append(t.Notes, notes...)
}

// runPoints evaluates every point on a bounded worker pool and assembles
// the results strictly in point order, so the table is identical to what a
// sequential loop over the points would have produced. Points must be
// independent of each other; shared simulations dedupe in repcache rather
// than through evaluation order.
func runPoints(points []func() group) ([][]string, []string) {
	out := make([]group, len(points))
	w := workers
	if w > len(points) {
		w = len(points)
	}
	if w <= 1 {
		for i, fn := range points {
			out[i] = fn()
		}
	} else {
		var wg sync.WaitGroup
		queue := make(chan int)
		for n := 0; n < w; n++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range queue {
					out[i] = points[i]()
				}
			}()
		}
		for i := range points {
			queue <- i
		}
		close(queue)
		wg.Wait()
	}
	var rows [][]string
	var notes []string
	for _, g := range out {
		rows = append(rows, g.rows...)
		notes = append(notes, g.notes...)
	}
	return rows, notes
}
