package experiments

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/repcache"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"fig2", "fig4", "table3", "fig10", "fig11", "fig12a", "fig12b",
		"fig13", "fig14", "fig15", "fig16a", "fig16b", "fig17a", "fig17b",
		"fig18c", "est", "isp", "ext-csd", "ext-cxl", "ext-ftl"}
	got := map[string]bool{}
	for _, g := range Registry() {
		got[g.ID] = true
	}
	for _, id := range want {
		if !got[id] {
			t.Errorf("experiment %s missing from registry", id)
		}
	}
	if len(Registry()) != len(want) {
		t.Errorf("registry has %d entries, want %d", len(Registry()), len(want))
	}
}

func TestByID(t *testing.T) {
	g, err := ByID("fig10")
	if err != nil || g.ID != "fig10" {
		t.Errorf("ByID(fig10) = %+v, %v", g, err)
	}
	if _, err := ByID("fig99"); err == nil {
		t.Error("unknown ID accepted")
	}
}

// Every experiment (except the slow accuracy one, covered in longbench
// tests) must produce a non-empty, well-formed table.
func TestAllGeneratorsProduceRows(t *testing.T) {
	r := New()
	for _, g := range Registry() {
		if g.ID == "fig18c" {
			continue // exercised by TestFig18cShape and the longbench suite
		}
		tab := g.Run(r)
		if tab.ID != g.ID {
			t.Errorf("%s: table ID %q mismatched", g.ID, tab.ID)
		}
		if len(tab.Rows) == 0 {
			t.Errorf("%s: no rows", g.ID)
		}
		for i, row := range tab.Rows {
			if len(row) != len(tab.Headers) {
				t.Errorf("%s row %d: %d cells for %d headers", g.ID, i, len(row), len(tab.Headers))
			}
		}
		if !strings.Contains(tab.String(), tab.Title) {
			t.Errorf("%s: String() missing title", g.ID)
		}
	}
}

// Fig. 2 shape: the KV I/O share exceeds 60% at long context and large
// batch, and the footprint reaches terabytes.
func TestFig2Shape(t *testing.T) {
	tab := New().Fig2()
	last := tab.Rows[len(tab.Rows)-1] // s=128K, bs=16
	share, err := strconv.ParseFloat(strings.TrimSuffix(last[5], "%"), 64)
	if err != nil {
		t.Fatal(err)
	}
	if share < 60 {
		t.Errorf("KV I/O share at 128K/bs16 = %.1f%%, paper reports > 60%%", share)
	}
	total, _ := strconv.ParseFloat(last[4], 64)
	if total < 5 {
		t.Errorf("total footprint %.1f TB, expected terabyte scale", total)
	}
}

// Fig. 10 shape: HILOS(16) column always reports a speedup above 4x.
func TestFig10Shape(t *testing.T) {
	tab := New().Fig10()
	for _, row := range tab.Rows {
		cell := strings.TrimSuffix(row[len(row)-1], "x")
		v, err := strconv.ParseFloat(cell, 64)
		if err != nil {
			t.Fatalf("unparseable HILOS(16) cell %q", row[len(row)-1])
		}
		if v < 4 {
			t.Errorf("%s %s: HILOS(16) = %.2fx, want > 4x", row[0], row[1], v)
		}
	}
}

// Fig. 18c: generated on a smaller budget here; shape assertions live in
// the longbench package tests. This checks table plumbing only.
func TestFig18cShape(t *testing.T) {
	if testing.Short() {
		t.Skip("accuracy suite is slow")
	}
	tab := New().Fig18c()
	if len(tab.Rows) != 5 {
		t.Fatalf("fig18c has %d rows, want 5", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if row[1] != row[2] {
			t.Errorf("%s: HILOS (%s) differs from FlashAttention (%s)", row[0], row[2], row[1])
		}
	}
}

// TestParallelRunnerByteIdentical: the worker-pool runner must assemble
// tables byte-identical to a sequential evaluation, from a cold report
// cache in both configurations. A representative slice of converted
// generators keeps the double evaluation affordable.
func TestParallelRunnerByteIdentical(t *testing.T) {
	r := New()
	gens := []struct {
		id  string
		run func(Runner) Table
	}{
		{"fig2", Runner.Fig2},
		{"fig11", Runner.Fig11},
		{"fig16b", Runner.Fig16b},
		{"ext-cxl", Runner.ExtCXL},
	}
	render := func(w int) map[string]string {
		old := workers
		workers = w
		defer func() { workers = old }()
		repcache.Reset()
		out := map[string]string{}
		for _, g := range gens {
			out[g.id] = g.run(r).String()
		}
		return out
	}
	seq := render(1)
	par := render(8)
	for _, g := range gens {
		if seq[g.id] != par[g.id] {
			t.Errorf("%s: parallel table differs from sequential:\n--- sequential ---\n%s--- parallel ---\n%s",
				g.id, seq[g.id], par[g.id])
		}
	}
	// And the parallel runner must be deterministic across repeated runs.
	again := render(8)
	for _, g := range gens {
		if par[g.id] != again[g.id] {
			t.Errorf("%s: parallel runner nondeterministic across runs", g.id)
		}
	}
}

// TestRunPointsOrdering: runPoints must concatenate rows and notes in point
// order regardless of worker count.
func TestRunPointsOrdering(t *testing.T) {
	var points []func() group
	for i := 0; i < 37; i++ {
		points = append(points, func() group {
			return group{
				rows:  [][]string{{strconv.Itoa(i)}},
				notes: []string{"n" + strconv.Itoa(i)},
			}
		})
	}
	for _, w := range []int{1, 3, 16} {
		old := workers
		workers = w
		rows, notes := runPoints(points)
		workers = old
		if len(rows) != 37 || len(notes) != 37 {
			t.Fatalf("workers=%d: %d rows, %d notes", w, len(rows), len(notes))
		}
		for i := range rows {
			if rows[i][0] != strconv.Itoa(i) || notes[i] != "n"+strconv.Itoa(i) {
				t.Fatalf("workers=%d: out-of-order assembly at %d: row %q note %q",
					w, i, rows[i][0], notes[i])
			}
		}
	}
}

func TestTableString(t *testing.T) {
	tab := Table{ID: "x", Title: "T", Headers: []string{"a", "bb"}, Rows: [][]string{{"1", "2"}}, Notes: []string{"n"}}
	s := tab.String()
	for _, want := range []string{"== x: T ==", "a", "bb", "note: n"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}
