package experiments

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/pipeline"
	"repro/internal/repcache"
)

// request builds a sweep point. Sweeps only read scalar report fields, so
// per-task timelines are not retained (NoTrace).
func request(m model.Config, bs, ctx int) pipeline.Request {
	return pipeline.Request{Model: m, Batch: bs, Context: ctx, OutputLen: 64, NoTrace: true}
}

// The perf generators evaluate their sweep points on the experiments worker
// pool (pool.go): each point simulates independently through the process-wide
// report cache and the table is assembled in point order, so the output is
// byte-identical to the sequential loops these replaced.

// Fig2 reproduces the §3 motivational study: OPT-175B memory footprint
// breakdown and the execution-time breakdown of the SSD-offloading system
// across context lengths and batch sizes.
func (r Runner) Fig2() Table {
	m := model.OPT175B
	t := Table{
		ID:    "fig2",
		Title: "OPT-175B footprint and FLEX(SSD) time breakdown",
		Headers: []string{"s", "bs", "KV(TB)", "Weights(TB)", "Total(TB)",
			"KV I/O share", "Weight share", "Other share", "batch speedup"},
		Notes: []string{
			"paper: KV cache dominates footprint at TB scale, far beyond 512 GB DRAM",
			"paper: KV cache transfers consume over 60% of execution time at long context",
		},
	}
	flex := baseline.FlexSSD(r.TB)
	var points []func() group
	for _, s := range []int{8192, 32768, 131072} {
		points = append(points, func() group {
			base := repcache.FlexRun(r.TB, flex, request(m, 1, s))
			var g group
			for _, bs := range []int{1, 4, 16} {
				rep := repcache.FlexRun(r.TB, flex, request(m, bs, s))
				kvTB := float64(m.KVCacheBytes(bs, s)) / 1e12
				wTB := float64(m.TotalWeightBytes()) / 1e12
				// Fig. 2(b) attributes wall-clock time: the share of the step
				// each transfer class keeps the system busy.
				kvShare := clampShare(rep.Breakdown[pipeline.LabelLoadKV] / rep.StepSec)
				wShare := clampShare(rep.Breakdown[pipeline.LabelLoadWeight] / rep.StepSec)
				if kvShare+wShare > 1 {
					wShare = 1 - kvShare
				}
				speedup := rep.DecodeTokPerSec() / base.DecodeTokPerSec()
				g.rows = append(g.rows, []string{
					fmt.Sprintf("%dK", s/1024), fmt.Sprint(bs),
					f2(kvTB), f2(wTB), f2(kvTB + wTB),
					pct(kvShare), pct(wShare), pct(1 - kvShare - wShare),
					f2(speedup),
				})
			}
			return g
		})
	}
	t.addPoints(points)
	return t
}

// fig4 compares the decoding-stage breakdown and host utilization of the
// baseline against attention-near-storage (Fig. 4b, 4c).
func (r Runner) Fig4() Table {
	t := Table{
		ID:    "fig4",
		Title: "OPT-66B decode breakdown and host utilization: baseline vs ANS",
		Headers: []string{"system", "s", "LoadWeight", "LoadKV", "StoreKV", "Compute",
			"CPU util", "GPU util", "DRAM cap"},
		Notes: []string{
			"paper: with ANS the internal storage I/O dominates end-to-end latency",
			"paper: ANS leaves host resources < 20% utilized",
		},
	}
	var points []func() group
	for _, s := range []int{16384, 32768} {
		points = append(points, func() group {
			req := request(model.OPT66B, 16, s)
			base := repcache.FlexRun(r.TB, baseline.FlexSSD(r.TB), req)
			ans := repcache.CoreRun(r.TB, req, core.Options{Devices: 8}) // ANS only
			var g group
			for _, row := range []struct {
				name string
				rep  pipeline.Report
			}{{"Baseline(SSD+CPU)", base}, {"ANS", ans}} {
				g.rows = append(g.rows, []string{
					row.name, fmt.Sprintf("%dK", s/1024),
					pct(row.rep.BreakdownShare(pipeline.LabelLoadWeight)),
					pct(row.rep.BreakdownShare(pipeline.LabelLoadKV)),
					pct(row.rep.BreakdownShare(pipeline.LabelStoreKV)),
					pct(row.rep.BreakdownShare(pipeline.LabelCompute) + row.rep.BreakdownShare(pipeline.LabelXCache)),
					pct(row.rep.HostUtilCPU), pct(row.rep.HostUtilGPU), pct(row.rep.HostUtilDRAMCap),
				})
			}
			return g
		})
	}
	t.addPoints(points)
	return t
}

// fig10 is the headline throughput comparison over models, context lengths
// and all seven systems, normalized to FLEX(SSD).
func (r Runner) Fig10() Table {
	t := Table{
		ID:    "fig10",
		Title: "Decoding throughput normalized to FLEX(SSD), bs=16",
		Headers: []string{"model", "s", "FLEX(SSD) tok/s", "FLEX(16 SSDs)", "DS+UVM",
			"FLEX(DRAM)", "HILOS(4)", "HILOS(8)", "HILOS(16)"},
		Notes: []string{
			"paper: FLEX(16 PCIe 3.0 SSDs) reaches 0.64-0.94x of FLEX(SSD)",
			"paper: DS+UVM is >4x slower than FLEX(DRAM)",
			"paper: HILOS(16) reaches 5.3-7.8x where FLEX(DRAM) OOMs",
		},
	}
	var points []func() group
	for _, m := range []model.Config{model.OPT30B, model.OPT66B, model.OPT175B} {
		for _, s := range []int{32768, 65536, 131072} {
			points = append(points, func() group {
				req := request(m, 16, s)
				base := repcache.FlexRun(r.TB, baseline.FlexSSD(r.TB), req)
				b := base.DecodeTokPerSec()
				cell := func(rep pipeline.Report) string {
					return ratioOrOOM(rep.DecodeTokPerSec(), b, rep.OOM)
				}
				return group{rows: [][]string{{
					m.Name, fmt.Sprintf("%dK", s/1024), f3(b),
					cell(repcache.FlexRun(r.TB, baseline.Flex16SSD(r.TB), req)),
					cell(repcache.FlexRun(r.TB, baseline.DeepSpeedUVM(r.TB), req)),
					cell(repcache.FlexRun(r.TB, baseline.FlexDRAM(r.TB), req)),
					cell(repcache.CoreRun(r.TB, req, core.DefaultOptions(4))),
					cell(repcache.CoreRun(r.TB, req, core.DefaultOptions(8))),
					cell(repcache.CoreRun(r.TB, req, core.DefaultOptions(16))),
				}}}
			})
		}
	}
	t.addPoints(points)
	return t
}

// fig11 sweeps batch size on OPT-66B and reports the per-layer breakdown.
func (r Runner) Fig11() Table {
	t := Table{
		ID:    "fig11",
		Title: "OPT-66B batch sensitivity (tok/s) and FLEX breakdown shares",
		Headers: []string{"s", "bs", "FLEX(SSD)", "FLEX(DRAM)", "HILOS(16)",
			"FLEX(SSD) LoadKV", "FLEX(DRAM) LoadWeight"},
		Notes: []string{
			"paper: FLEX(DRAM) capped at small batches; FLEX(SSD) saturates on KV I/O; HILOS scales to bs=16",
		},
	}
	var points []func() group
	for _, s := range []int{32768, 65536} {
		for _, bs := range []int{1, 2, 4, 8, 16} {
			points = append(points, func() group {
				req := request(model.OPT66B, bs, s)
				fs := repcache.FlexRun(r.TB, baseline.FlexSSD(r.TB), req)
				fd := repcache.FlexRun(r.TB, baseline.FlexDRAM(r.TB), req)
				h := repcache.CoreRun(r.TB, req, core.DefaultOptions(16))
				fdCell, fdShare := "OOM", "-"
				if !fd.OOM {
					if fd.Batch < bs {
						fdCell = fmt.Sprintf("%.3f (bs=%d)", fd.DecodeTokPerSec(), fd.Batch)
					} else {
						fdCell = f3(fd.DecodeTokPerSec())
					}
					fdShare = pct(fd.BreakdownShare(pipeline.LabelLoadWeight))
				}
				return group{rows: [][]string{{
					fmt.Sprintf("%dK", s/1024), fmt.Sprint(bs),
					f3(fs.DecodeTokPerSec()), fdCell, f3(h.DecodeTokPerSec()),
					pct(fs.BreakdownShare(pipeline.LabelLoadKV)), fdShare,
				}}}
			})
		}
	}
	t.addPoints(points)
	return t
}

// fig12b evaluates GQA and MoE architectures across context lengths.
func (r Runner) Fig12b() Table {
	t := Table{
		ID:      "fig12b",
		Title:   "Model-type sensitivity, normalized to FLEX(SSD), bs=16",
		Headers: []string{"model", "s", "FLEX(SSD) tok/s", "FLEX(DRAM)", "HILOS(16)"},
		Notes: []string{
			"paper: 1.16-3.36x over the baselines; gap widens with context length",
			"paper: lower KV-to-weight ratio of MoE/GQA slightly favors FLEX(DRAM)",
		},
	}
	cases := []struct {
		m    model.Config
		ctxs []int
	}{
		{model.Qwen2532B, []int{32768, 65536, 98304, 131072, 262144}},
		{model.Mixtral8x7B, []int{32768, 65536, 98304, 131072, 196608}},
		{model.GLaM143B, []int{32768, 65536, 98304, 131072, 196608}},
	}
	var points []func() group
	for _, c := range cases {
		for _, s := range c.ctxs {
			points = append(points, func() group {
				req := request(c.m, 16, s)
				base := repcache.FlexRun(r.TB, baseline.FlexSSD(r.TB), req)
				b := base.DecodeTokPerSec()
				fd := repcache.FlexRun(r.TB, baseline.FlexDRAM(r.TB), req)
				h := repcache.CoreRun(r.TB, req, core.DefaultOptions(16))
				return group{rows: [][]string{{
					c.m.Name, fmt.Sprintf("%dK", s/1024), f3(b),
					ratioOrOOM(fd.DecodeTokPerSec(), b, fd.OOM),
					ratioOrOOM(h.DecodeTokPerSec(), b, h.OOM),
				}}}
			})
		}
	}
	t.addPoints(points)
	return t
}

// fig13 sweeps spill interval against X-cache ratio for two model sizes.
func (r Runner) Fig13() Table {
	t := Table{
		ID:      "fig13",
		Title:   "Decoding throughput (tok/s) vs spill interval c and ratio α, 8 SmartSSDs, s=32K",
		Headers: []string{"model", "alpha", "c=2", "c=4", "c=8", "c=16", "c=32", "c=64"},
		Notes: []string{
			"paper: α=50% consistently best; c=16 best for all α (4 KiB page alignment)",
		},
	}
	var points []func() group
	for _, m := range []model.Config{model.OPT30B, model.OPT66B} {
		for _, alpha := range []float64{0, 0.125, 0.25, 0.5, 0.75} {
			points = append(points, func() group {
				row := []string{m.Name, pct(alpha)}
				for _, c := range []int{2, 4, 8, 16, 32, 64} {
					rep := repcache.CoreRun(r.TB, request(m, 16, 32768), core.Options{
						Devices: 8, XCache: alpha > 0, DelayedWriteback: true,
						Alpha: alpha, SpillInterval: c,
					})
					row = append(row, f3(rep.DecodeTokPerSec()))
				}
				return group{rows: [][]string{row}}
			})
		}
	}
	t.addPoints(points)
	return t
}

// fig14 breaks total execution time into prefill and decode across output
// lengths.
func (r Runner) Fig14() Table {
	t := Table{
		ID:      "fig14",
		Title:   "Total latency (s) by output length: FLEX(SSD) vs HILOS(8)",
		Headers: []string{"model", "s", "n", "FLEX prefill", "FLEX total", "HILOS prefill", "HILOS total", "speedup"},
		Notes: []string{
			"paper: speedup grows with output length (up to 6.08x) as prefill amortizes",
		},
	}
	var points []func() group
	for _, m := range []model.Config{model.OPT30B, model.OPT66B} {
		for _, s := range []int{16384, 32768} {
			points = append(points, func() group {
				req := request(m, 16, s)
				f := repcache.FlexRun(r.TB, baseline.FlexSSD(r.TB), req)
				h := repcache.CoreRun(r.TB, req, core.DefaultOptions(8))
				var g group
				for _, n := range []int{16, 32, 64, 128} {
					g.rows = append(g.rows, []string{
						m.Name, fmt.Sprintf("%dK", s/1024), fmt.Sprint(n),
						f2(f.PrefillSec), f2(f.TotalSec(n)),
						f2(h.PrefillSec), f2(h.TotalSec(n)),
						f2(f.TotalSec(n) / h.TotalSec(n)),
					})
				}
				return g
			})
		}
	}
	t.addPoints(points)
	return t
}

// fig15 is the ablation: ANS, +WB, +X, +WB+X over FLEX(SSD).
func (r Runner) Fig15() Table {
	t := Table{
		ID:      "fig15",
		Title:   "Ablation, normalized to FLEX(SSD), 8 SmartSSDs",
		Headers: []string{"model", "bs", "s", "ANS", "ANS+WB", "ANS+X", "ANS+WB+X"},
		Notes: []string{
			"paper: ANS up to 3.39x; +WB adds up to 1.32x; +X adds up to 1.64x",
			"paper: benefits scale with longer contexts and larger batches",
		},
	}
	type cfg struct {
		xc, wb bool
	}
	variants := []cfg{{false, false}, {false, true}, {true, false}, {true, true}}
	var points []func() group
	for _, m := range []model.Config{model.OPT30B, model.OPT66B, model.GLaM143B} {
		for _, bs := range []int{16, 32} {
			for _, s := range []int{16384, 32768, 65536} {
				points = append(points, func() group {
					req := request(m, bs, s)
					base := repcache.FlexRun(r.TB, baseline.FlexSSD(r.TB), req).DecodeTokPerSec()
					row := []string{m.Name, fmt.Sprint(bs), fmt.Sprintf("%dK", s/1024)}
					for _, v := range variants {
						rep := repcache.CoreRun(r.TB, req, core.Options{
							Devices: 8, XCache: v.xc, DelayedWriteback: v.wb, Alpha: -1,
						})
						row = append(row, ratioOrOOM(rep.DecodeTokPerSec(), base, rep.OOM))
					}
					return group{rows: [][]string{row}}
				})
			}
		}
	}
	t.addPoints(points)
	return t
}
