package experiments

import (
	"repro/internal/longbench"
	"repro/internal/stats"
)

// Fig18c regenerates the accuracy comparison: FlashAttention (exact), the
// HILOS accelerator (lossless by design) and InstAttention-style 1/8 lossy
// retrieval, on the synthetic long-context retrieval suite. The five tasks
// are independent, so they score concurrently on the worker pool; rows,
// notes and the measured-drop aggregate assemble in suite order.
func (r Runner) Fig18c() Table {
	t := Table{
		ID:      "fig18c",
		Title:   "F1 on long-context retrieval: exact vs HILOS vs lossy 1/8",
		Headers: []string{"dataset", "FlashAttention", "HILOS", "InstAttention-1/8", "drop (%p)"},
		Notes: []string{
			"paper: 1/8 lossy compression degrades accuracy by 3.52-5.73%p on LongBench",
			"paper: the HILOS accelerator is lossless vs FlashAttention",
		},
	}
	const seed = 42
	suite := longbench.Suite()
	dropAt := make([]float64, len(suite))
	hasDrop := make([]bool, len(suite))
	var points []func() group
	for i, task := range suite {
		points = append(points, func() group {
			exact, err := task.Score(seed, longbench.Exact)
			if err != nil {
				return group{notes: []string{"error: " + err.Error()}}
			}
			hilos, err := task.Score(seed, longbench.Blocked)
			if err != nil {
				return group{notes: []string{"error: " + err.Error()}}
			}
			lossy, err := task.Score(seed, longbench.LossyOneEighth)
			if err != nil {
				return group{notes: []string{"error: " + err.Error()}}
			}
			dropAt[i], hasDrop[i] = exact-lossy, true
			return group{rows: [][]string{{
				task.Name, f2(exact), f2(hilos), f2(lossy), f2(exact - lossy),
			}}}
		})
	}
	t.addPoints(points)
	var drops []float64
	for i, ok := range hasDrop {
		if ok {
			drops = append(drops, dropAt[i])
		}
	}
	if len(drops) > 0 {
		t.Notes = append(t.Notes, "measured average lossy drop: "+f2(stats.Mean(drops))+"%p")
	}
	return t
}
