package experiments

import (
	"repro/internal/longbench"
	"repro/internal/stats"
)

// Fig18c regenerates the accuracy comparison: FlashAttention (exact), the
// HILOS accelerator (lossless by design) and InstAttention-style 1/8 lossy
// retrieval, on the synthetic long-context retrieval suite.
func (r Runner) Fig18c() Table {
	t := Table{
		ID:      "fig18c",
		Title:   "F1 on long-context retrieval: exact vs HILOS vs lossy 1/8",
		Headers: []string{"dataset", "FlashAttention", "HILOS", "InstAttention-1/8", "drop (%p)"},
		Notes: []string{
			"paper: 1/8 lossy compression degrades accuracy by 3.52-5.73%p on LongBench",
			"paper: the HILOS accelerator is lossless vs FlashAttention",
		},
	}
	const seed = 42
	var drops []float64
	for _, task := range longbench.Suite() {
		exact, err := task.Score(seed, longbench.Exact)
		if err != nil {
			t.Notes = append(t.Notes, "error: "+err.Error())
			continue
		}
		hilos, err := task.Score(seed, longbench.Blocked)
		if err != nil {
			t.Notes = append(t.Notes, "error: "+err.Error())
			continue
		}
		lossy, err := task.Score(seed, longbench.LossyOneEighth)
		if err != nil {
			t.Notes = append(t.Notes, "error: "+err.Error())
			continue
		}
		drops = append(drops, exact-lossy)
		t.Rows = append(t.Rows, []string{
			task.Name, f2(exact), f2(hilos), f2(lossy), f2(exact - lossy),
		})
	}
	if len(drops) > 0 {
		t.Notes = append(t.Notes, "measured average lossy drop: "+f2(stats.Mean(drops))+"%p")
	}
	return t
}
