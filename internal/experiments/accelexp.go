package experiments

import (
	"fmt"

	"repro/internal/accel"
	"repro/internal/estimator"
)

// Table3 regenerates the FPGA resource/performance/power table.
func (r Runner) Table3() Table {
	t := Table{
		ID:      "table3",
		Title:   "KU15P resource utilization and achieved performance",
		Headers: []string{"d_group", "LUT", "FF", "BRAM", "URAM", "DSP", "Peak GFLOPS", "Power (W)", "Clock (MHz)"},
		Notes: []string{
			"paper Table 3: d=1: 38.76/28.57/51.02/9.38/10.06, 11.9 GFLOPS, 11.25 W",
			"paper Table 3: d=4: 56.60/39.70/59.30/9.38/20.27, 46.8 GFLOPS, 15.39 W",
			"paper Table 3: d=5: 67.40/46.15/58.49/9.38/27.79, 56.3 GFLOPS, 16.08 W",
		},
	}
	rows, err := accel.Table3(128)
	if err != nil {
		t.Notes = append(t.Notes, "error: "+err.Error())
		return t
	}
	for _, u := range rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(u.DGroup),
			f2(u.LUTPct) + "%", f2(u.FFPct) + "%", f2(u.BRAMPct) + "%",
			f2(u.URAMPct) + "%", f2(u.DSPPct) + "%",
			f2(u.PeakGFLOPS), f2(u.PowerW), f2(u.ClockMHz),
		})
	}
	rm := accel.DefaultResourceModel(128)
	t.Notes = append(t.Notes, fmt.Sprintf("largest d_group fitting the KU15P: %d", rm.MaxDGroup()))
	return t
}

// Fig12a regenerates the kernel microbenchmark: SSD P2P read rate vs the
// attention kernels' KV consumption rates.
func (r Runner) Fig12a() Table {
	t := Table{
		ID:      "fig12a",
		Title:   "Kernel microbenchmark at s=32K (GB/s)",
		Headers: []string{"series", "rate (GB/s)"},
		Notes: []string{
			"paper: all kernels deliver far more than 3.0 GB/s, exceeding SSD P2P read",
			"paper: GQA kernels slightly below the d_group=1 kernel",
		},
	}
	const s = 32 * 1024
	t.Rows = append(t.Rows, []string{"SSD P2P read", f2(r.TB.SmartSSD.InternalReadBW / 1e9)})
	for _, cfg := range []struct {
		name string
		dg   int
	}{{"MHA (d_group=1)", 1}, {"GQA (d_group=4)", 4}, {"GQA (d_group=5)", 5}} {
		cm := accel.DefaultCycleModel(cfg.dg, 128)
		t.Rows = append(t.Rows, []string{cfg.name, f2(cm.KernelKVRate(s) / 1e9)})
	}
	return t
}

// Estimator regenerates the §5.1 validation: estimator vs cycle-model
// throughput and the Pearson correlation.
func (r Runner) Estimator() Table {
	t := Table{
		ID:      "est",
		Title:   "Performance estimator validation (§5.1)",
		Headers: []string{"d_group", "s", "estimated (ms)", "measured (ms)", "est/meas"},
		Notes:   []string{"paper: Pearson r = 0.93 across 4K-32K for the three kernels"},
	}
	pts := estimator.Sweep()
	for _, p := range pts {
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(p.DGroup), fmt.Sprintf("%dK", p.Seq/1024),
			f3(p.Estimated * 1e3), f3(p.Measured * 1e3),
			f2(p.Estimated / p.Measured),
		})
	}
	if rho, err := estimator.Correlation(pts); err == nil {
		t.Notes = append(t.Notes, fmt.Sprintf("measured Pearson r = %.3f", rho))
	} else {
		t.Notes = append(t.Notes, "correlation error: "+err.Error())
	}
	return t
}

// ISP regenerates the §7.1 projection: the envisioned in-storage-processing
// device versus SmartSSDs.
func (r Runner) ISP() Table {
	isp := accel.EnvisionedISP()
	t := Table{
		ID:      "isp",
		Title:   "ISP projection (§7.1)",
		Headers: []string{"metric", "value"},
		Notes: []string{
			"paper: one PCIe 4.0 ISP unit closely matches four SmartSSDs",
			"paper: 0.47 mm² and 1.13 W at the scaled 8 nm node, 300 MHz",
		},
	}
	st, mem, host := isp.EquivalentSmartSSDs(
		4e9, // per-SmartSSD internal lane budget of Fig. 18a (~16 GB/s per 4 devices)
		r.TB.SmartSSD.FPGADRAMBW,
		2e9, // per-SmartSSD share of the host interconnect
	)
	t.Rows = append(t.Rows,
		[]string{"accelerator area (mm², 8nm)", f2(isp.AreaMM2)},
		[]string{"accelerator power (W)", f2(isp.PowerW)},
		[]string{"internal flash BW (GB/s)", f2(isp.InternalFlashBW / 1e9)},
		[]string{"LPDDR5X BW (GB/s)", f2(isp.DRAMBW / 1e9)},
		[]string{"host link BW (GB/s)", f2(isp.HostLinkBW / 1e9)},
		[]string{"SmartSSD equivalence (storage)", f2(st)},
		[]string{"SmartSSD equivalence (memory)", f2(mem)},
		[]string{"SmartSSD equivalence (host)", f2(host)},
	)
	// Kernel comparison: the ISP accelerator fed by LPDDR5X vs the FPGA.
	fpga := accel.DefaultCycleModel(1, 128)
	ispCM := accel.ISPCycleModel(1, 128)
	const s = 32 * 1024
	t.Rows = append(t.Rows,
		[]string{"FPGA kernel rate @32K (GB/s)", f2(fpga.KernelKVRate(s) / 1e9)},
		[]string{"ISP kernel rate @32K (GB/s)", f2(ispCM.KernelKVRate(s) / 1e9)},
		[]string{"ISP end-to-end rate vs 16 GB/s flash", f2(ispCM.PipelinedRate(s, accel.EnvisionedISP().InternalFlashBW) / 1e9)},
	)
	return t
}
