package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	if m := Mean([]float64{1, 2, 3, 4}); m != 2.5 {
		t.Errorf("Mean = %v, want 2.5", m)
	}
	if m := Mean(nil); m != 0 {
		t.Errorf("Mean(nil) = %v, want 0", m)
	}
}

func TestStdDev(t *testing.T) {
	if s := StdDev([]float64{2, 2, 2}); s != 0 {
		t.Errorf("StdDev of constant = %v, want 0", s)
	}
	if s := StdDev([]float64{1, -1}); !almost(s, 1, 1e-12) {
		t.Errorf("StdDev = %v, want 1", s)
	}
}

func TestPearsonPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{10, 20, 30, 40, 50}
	r, err := Pearson(xs, ys)
	if err != nil || !almost(r, 1, 1e-12) {
		t.Errorf("Pearson = %v, %v; want 1", r, err)
	}
	for i := range ys {
		ys[i] = -ys[i]
	}
	r, err = Pearson(xs, ys)
	if err != nil || !almost(r, -1, 1e-12) {
		t.Errorf("Pearson anti = %v, %v; want -1", r, err)
	}
}

func TestPearsonErrors(t *testing.T) {
	if _, err := Pearson([]float64{1}, []float64{1, 2}); err != ErrMismatch {
		t.Errorf("mismatch error not returned: %v", err)
	}
	if _, err := Pearson([]float64{1, 1}, []float64{1, 2}); err == nil {
		t.Error("zero variance not detected")
	}
	if _, err := Pearson([]float64{1}, []float64{2}); err == nil {
		t.Error("single sample not rejected")
	}
}

// Pearson is invariant to affine rescaling of either variable.
func TestPearsonAffineInvariance(t *testing.T) {
	f := func(a, b float64) bool {
		scale := math.Mod(math.Abs(a), 10) + 0.5
		shift := math.Mod(b, 100)
		xs := []float64{1, 3, 2, 8, 5, 7}
		ys := []float64{2, 5, 3, 9, 6, 10}
		r1, err1 := Pearson(xs, ys)
		zs := make([]float64, len(ys))
		for i, y := range ys {
			zs[i] = scale*y + shift
		}
		r2, err2 := Pearson(xs, zs)
		return err1 == nil && err2 == nil && almost(r1, r2, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 4}); !almost(g, 2, 1e-12) {
		t.Errorf("GeoMean = %v, want 2", g)
	}
	if g := GeoMean([]float64{2, -1}); !math.IsNaN(g) {
		t.Errorf("GeoMean with nonpositive = %v, want NaN", g)
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 7, 2})
	if lo != -1 || hi != 7 {
		t.Errorf("MinMax = %v, %v", lo, hi)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3} // sorted: 1 2 3 4 5
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {20, 1}, {40, 2}, {50, 3}, {95, 5}, {99, 5}, {100, 5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); got != c.want {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	// Input must not be mutated.
	if xs[0] != 5 {
		t.Error("Percentile sorted its input in place")
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("empty sample percentile = %v, want 0", got)
	}
	if got := Percentile([]float64{7}, 99); got != 7 {
		t.Errorf("singleton p99 = %v, want 7", got)
	}
}
