// Package stats provides the small statistical helpers used by the
// evaluation harness: means, Pearson correlation (for the §5.1 estimator
// validation) and geometric means for speedup summaries.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrMismatch is returned when paired-sample inputs differ in length.
var ErrMismatch = errors.New("stats: sample lengths differ")

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Pearson returns the Pearson correlation coefficient of the paired samples
// (xs[i], ys[i]). It returns ErrMismatch if the lengths differ and an error
// if either sample has zero variance.
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, ErrMismatch
	}
	if len(xs) < 2 {
		return 0, errors.New("stats: need at least two samples")
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, errors.New("stats: zero variance sample")
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// GeoMean returns the geometric mean of xs. All values must be positive.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs by the
// nearest-rank method on a sorted copy: the smallest value with at least
// p% of the sample at or below it. Returns 0 for an empty sample.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// MinMax returns the smallest and largest values in xs.
func MinMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}
