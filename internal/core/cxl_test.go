package core

import (
	"testing"

	"repro/internal/device"
	"repro/internal/model"
)

// §7.3: CXL.mem removes the XRT DMA orchestration, so throughput no longer
// degrades with the spill interval and always at least matches the PCIe
// platform.
func TestCXLRemovesSpillPenalty(t *testing.T) {
	tb := device.DefaultTestbed()
	run := func(cxl bool, c int) float64 {
		return Run(tb, req(model.OPT66B, 16, 32768), Options{
			Devices: 8, XCache: true, DelayedWriteback: true,
			Alpha: 0.5, SpillInterval: c, CXL: cxl,
		}).DecodeTokPerSec()
	}
	// PCIe loses throughput from c=16 to c=64; CXL must not.
	pciLoss := 1 - run(false, 64)/run(false, 16)
	cxlLoss := 1 - run(true, 64)/run(true, 16)
	if pciLoss < 0.05 {
		t.Errorf("PCIe c=16→64 loss only %.1f%%; penalty model broken", pciLoss*100)
	}
	if cxlLoss > 0.01 {
		t.Errorf("CXL c=16→64 loss %.1f%%, want ≈ 0", cxlLoss*100)
	}
	// CXL is at least as fast at every interval.
	for _, c := range []int{2, 16, 64} {
		if run(true, c) < run(false, c) {
			t.Errorf("c=%d: CXL slower than PCIe", c)
		}
	}
}

// CXL only affects the writeback orchestration: with the naive commit path
// (no delayed writeback) the flag must leave results unchanged.
func TestCXLOnlyAffectsWritebackPath(t *testing.T) {
	tb := device.DefaultTestbed()
	r := req(model.OPT30B, 16, 16384)
	plain := Run(tb, r, Options{Devices: 8, CXL: false})
	cxl := Run(tb, r, Options{Devices: 8, CXL: true})
	if plain.StepSec != cxl.StepSec {
		t.Errorf("CXL changed the naive path: %v vs %v", plain.StepSec, cxl.StepSec)
	}
}
