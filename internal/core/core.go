// Package core implements the HILOS system (§4): attention near storage on
// SmartSSD-class NSP devices, cooperative X-cache execution between the GPU
// and the devices, and delayed KV-cache writeback. The engine builds a
// per-decoding-step task graph on the discrete-event substrate and returns
// the same report format as the baselines, enabling the paper's ablation
// (Fig. 15) via the Options toggles.
package core

import (
	"fmt"

	"repro/internal/accel"
	"repro/internal/device"
	"repro/internal/kvcache"
	"repro/internal/model"
	"repro/internal/pipeline"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/writeback"
)

// Options configures a HILOS instance.
type Options struct {
	// Devices is the number of SmartSSDs (the paper evaluates 4, 8, 16;
	// default 8).
	Devices int
	// XCache enables cooperative X-cache execution (§4.2).
	XCache bool
	// DelayedWriteback enables the §4.3 writeback path; when false, new KV
	// entries commit synchronously before each attention (the naive
	// approach of Fig. 6a).
	DelayedWriteback bool
	// Alpha fixes the X-cache ratio; negative means "choose automatically"
	// via the §4.2 cost model. Ignored when XCache is false.
	Alpha float64
	// SpillInterval is the writeback spill interval c (default 16).
	SpillInterval int
	// CXL models the §7.3 architecture: CXL.mem provides a unified address
	// space between host and accelerator memory, eliminating the explicit
	// XRT DMA staging and spill orchestration of the PCIe platform. Only
	// the writeback-path overheads change; bandwidths stay as configured.
	CXL bool
}

// DefaultOptions returns the full HILOS configuration used in Fig. 10.
func DefaultOptions(devices int) Options {
	return Options{
		Devices:          devices,
		XCache:           true,
		DelayedWriteback: true,
		Alpha:            -1,
		SpillInterval:    16,
	}
}

// Name returns the figure label for this configuration.
func (o Options) Name() string {
	switch {
	case o.XCache && o.DelayedWriteback:
		return fmt.Sprintf("HILOS (%d SmartSSDs)", o.Devices)
	case o.XCache:
		return "ANS+X"
	case o.DelayedWriteback:
		return "ANS+WB"
	default:
		return "ANS"
	}
}

func (o Options) normalize() Options {
	if o.Devices <= 0 {
		o.Devices = 8
	}
	if o.SpillInterval <= 0 {
		o.SpillInterval = 16
	}
	if !o.XCache {
		o.Alpha = 0
	}
	return o
}

// ChooseAlpha runs the §4.2 cache scheduler for a concrete workload point.
func ChooseAlpha(tb device.Testbed, m model.Config, bs, ctx, devices int) (float64, error) {
	in := sched.Inputs{
		SX:     float64(bs) * float64(ctx) * float64(m.XBytesPerTokenLayer()),
		Rho:    m.KVToXRatio(),
		BPCI:   tb.Topo.GDSLink.BW,
		BSSD:   float64(devices) * tb.SmartSSD.InternalReadBW,
		CGPU:   tb.GPU.GEMMFLOPS,
		Hidden: m.Hidden,
	}
	return sched.Choose(in)
}

// Run simulates one request on HILOS and returns the report.
func Run(tb device.Testbed, req pipeline.Request, opt Options) pipeline.Report {
	opt = opt.normalize()
	rep := pipeline.Report{
		System: opt.Name(), Model: req.Model.Name, Context: req.Context, Devices: opt.Devices,
	}
	if err := req.Validate(); err != nil {
		rep.OOM, rep.Reason = true, err.Error()
		return rep
	}
	m := req.Model

	// α selection (before capacity fitting: α shapes the footprint).
	alpha := opt.Alpha
	if opt.XCache && alpha < 0 {
		a, err := ChooseAlpha(tb, m, req.Batch, req.Context, opt.Devices)
		if err != nil {
			rep.OOM, rep.Reason = true, err.Error()
			return rep
		}
		alpha = a
	}

	// Capacity fitting: weights (when storage-resident) plus the mixed
	// X/KV placement must fit the SmartSSD array.
	bs := req.Batch
	var plan kvcache.Placement
	for ; bs >= 1; bs-- {
		p, err := kvcache.Plan(m, bs, req.Context+req.OutputLen, opt.Devices, alpha)
		if err != nil {
			rep.OOM, rep.Reason = true, err.Error()
			return rep
		}
		var fixed int64
		if pipeline.WeightsOnStorage(m) {
			fixed = m.TotalWeightBytes()
		}
		if fixed+p.TotalBytes() <= tb.SmartSSD.SSD.CapBytes*int64(opt.Devices) {
			plan = p
			break
		}
	}
	if bs < 1 {
		rep.OOM, rep.Reason = true, "storage OOM: cache exceeds SmartSSD array capacity at batch 1"
		return rep
	}
	rep.Batch = bs

	step, bd, busy, writes, rec := decodeStep(tb, m, bs, req.Context, alpha, opt, !req.NoTrace)
	rep.StepSec = step
	rep.Breakdown = bd
	rep.ResourceBusy = busy
	rep.DecodeWriteBytesPerStep = writes
	rep.Trace = rec
	rep.HostUtilCPU = busy[pipeline.ResCPU] / step
	rep.HostUtilGPU = busy[pipeline.ResGPU] / step
	rep.HostUtilDRAMCap = hostDRAMUtil(tb, m, bs, opt)

	// Prefill: FlashAttention on the GPU; the prompt cache (α as X, 1−α as
	// KV) streams to the devices through the uplink in row-wise chunks.
	storeBytes := int64(float64(plan.KVBytesTotal)*float64(req.Context)/float64(req.Context+req.OutputLen)) +
		int64(float64(plan.XBytesTotal)*float64(req.Context)/float64(req.Context+req.OutputLen))
	storeBW := float64(opt.Devices) * tb.SmartSSD.SSD.WriteBW
	if tb.Topo.StorageUplink.BW < storeBW {
		storeBW = tb.Topo.StorageUplink.BW
	}
	pin := pipeline.PrefillInputs{
		WeightLoadBW: tb.Topo.GPULink.BW,
		KVStoreBW:    storeBW,
		KVStoreBytes: storeBytes,
	}
	if pipeline.WeightsOnStorage(m) {
		pin.WeightSrcBW = tb.Topo.StorageUplink.BW
	}
	rep.PrefillSec = pipeline.Prefill(tb, m, bs, req.Context, pin)
	rep.PrefillWriteBytes = float64(storeBytes)
	return rep
}

// decodeStep builds and schedules the steady-state decoding step graph.
// record=false skips timeline retention (Request.NoTrace).
func decodeStep(tb device.Testbed, m model.Config, bs, ctx int, alpha float64, opt Options, record bool) (
	stepSec float64, breakdown, busy map[string]float64, physWrites float64, records []sim.TaskRecord) {

	e := sim.NewEngine()
	e.RecordTimeline(record)
	gpu := e.Resource(pipeline.ResGPU, 1)
	cpu := e.Resource(pipeline.ResCPU, 1)
	gpuLink := e.Resource(pipeline.ResGPULink, tb.Topo.GPULink.BW)
	uplink := e.Resource(pipeline.ResUplink, tb.Topo.StorageUplink.BW)
	gds := e.Resource(pipeline.ResGDS, tb.Topo.GDSLink.BW)

	// The NSP storage path is three pipelined resources: the aggregate
	// flash internal bandwidth (serving both the (1−α) KV stream to the
	// accelerators and the α X stream to the GPU — the T_SSD term of §4.2),
	// the accelerator kernels (Fig. 12a rates, never the binder on
	// SmartSSDs), and the GDS path to GPU memory.
	cm := accel.DefaultCycleModel(m.DGroup, m.HeadDim())
	flash := e.Resource(pipeline.ResStorRead, float64(opt.Devices)*tb.SmartSSD.InternalReadBW)
	kernel := e.Resource(pipeline.ResNSP, float64(opt.Devices)*cm.KernelKVRate(ctx))
	// Host→device writes: bounded by the devices' host-visible write rate
	// and the shared uplink.
	wbw := float64(opt.Devices) * tb.SmartSSD.SSD.WriteBW
	if tb.Topo.StorageUplink.BW < wbw {
		wbw = tb.Topo.StorageUplink.BW
	}
	nspWrite := e.Resource(pipeline.ResStorWrite, wbw)

	weightsOnSSD := pipeline.WeightsOnStorage(m)
	hid := float64(m.Hidden)
	kvDim := float64(m.KVHeads * m.HeadDim())
	kvLayerBytes := float64(bs) * float64(ctx) * float64(m.KVBytesPerTokenLayer())
	xLayerBytes := float64(bs) * float64(ctx) * float64(m.XBytesPerTokenLayer())
	newKVBytes := float64(bs) * float64(m.KVBytesPerTokenLayer())
	newXBytes := float64(bs) * float64(m.XBytesPerTokenLayer())

	// Writeback accounting (per K or V row appends of d×2 bytes).
	wbCfg := writeback.Config{
		SpillInterval: opt.SpillInterval,
		Rows:          bs * m.KVHeads * m.Layers,
		EntryBytes:    2 * int64(m.HeadDim()) * model.BytesPerElem,
		PageBytes:     tb.SmartSSD.SSD.PageBytes,
	}

	var prevMLP *sim.Task
	var commits []*sim.Task
	for l := 0; l < m.Layers; l++ {
		wABytes := float64(m.AttnWeightBytesPerLayer())
		wMBytes := float64(m.MLPActiveWeightBytesPerLayer(l))
		var wA, wM *sim.Task
		if weightsOnSSD {
			sA := e.Task(pipeline.LabelLoadWeight, uplink, wABytes)
			wA = e.Task(pipeline.LabelLoadWeight, gpuLink, wABytes, sA)
			sM := e.Task(pipeline.LabelLoadWeight, uplink, wMBytes)
			wM = e.Task(pipeline.LabelLoadWeight, gpuLink, wMBytes, sM)
		} else {
			wA = e.Task(pipeline.LabelLoadWeight, gpuLink, wABytes)
			wM = e.Task(pipeline.LabelLoadWeight, gpuLink, wMBytes)
		}

		qkv := e.Task(pipeline.LabelCompute, gpu,
			tb.GPU.ComputeTime(m.ProjFLOPsPerTokenLayer()*float64(bs), wABytes)+tb.OverheadPerLayer/2,
			wA, prevMLP)

		// Host-side writeback orchestration on the per-layer dispatch loop
		// (§7.3): XRT DMA staging and spill/commit issue serialize with the
		// layer's kernel launches, for every α.
		var dispatchCost float64
		switch {
		case opt.DelayedWriteback && opt.CXL:
			// §7.3: CXL.mem's unified address space removes the explicit
			// staging copies and per-op DMA issue; only a small coherence
			// cost per layer remains.
			dispatchCost = 50e-6
		case opt.DelayedWriteback:
			c := float64(opt.SpillInterval)
			avgBuffered := c / 2
			// Buffered V rows and QKᵀ scalars re-staged into FPGA DRAM
			// every step until spilled (§4.3): small XRT DMAs.
			staged := (1 - alpha) * float64(bs) * avgBuffered *
				(kvDim + float64(m.Heads)) * model.BytesPerElem
			// Amortized spill issue cost: one XRT write op per (batch,
			// KV-head) row per device queue, every c steps.
			rowsPerDev := (1 - alpha) * float64(bs*m.KVHeads) / float64(opt.Devices)
			dispatchCost = staged/tb.XRTStagingBW + rowsPerDev*tb.XRTOpLat/c
		case (1 - alpha) > 0:
			// Naive Fig. 6a path: one synchronous sub-page write per
			// (batch, KV-head) row for K and V before attention may run.
			opsPerDev := (1 - alpha) * float64(2*bs*m.KVHeads) / float64(opt.Devices)
			dispatchCost = opsPerDev * tb.SyncWriteLat
		}
		disp := e.Delay(pipeline.LabelStoreKV, dispatchCost, qkv)

		// Scatter the new q/k/v (and, with writeback, the precomputed
		// partial QKᵀ scalars plus the buffered V entries) to the devices.
		scatterBytes := (1 - alpha) * float64(bs) * (hid + 2*kvDim) * model.BytesPerElem
		scatter := e.Task(pipeline.LabelLoadKV, uplink, scatterBytes, disp)

		// Without delayed writeback the committed bytes also occupy the
		// write path with full sub-page amplification.
		ansDeps := []*sim.Task{scatter}
		if !opt.DelayedWriteback && (1-alpha) > 0 {
			phys := (1 - alpha) * newKVBytes * wbCfg.NaiveWAF()
			commit := e.Task(pipeline.LabelStoreKV, nspWrite, phys, disp)
			ansDeps = append(ansDeps, commit)
			commits = append(commits, commit)
		}

		// Host CPU precompute of buffered-token partial scores (§4.3).
		var cpuPartial *sim.Task
		if opt.DelayedWriteback {
			flops := (1 - alpha) * float64(bs*m.Heads) * float64(opt.SpillInterval) * 2 * float64(m.HeadDim())
			cpuPartial = e.Task(pipeline.LabelCompute, cpu, flops/tb.CPU.EffFLOPS, qkv)
		}

		// NSP attention: the KV stream flows flash→FPGA-DRAM→accelerator as
		// one pipeline; the two shadow tasks charge each resource its load
		// while the barrier takes the slower of the two.
		flashKV := e.Task(pipeline.LabelLoadKV, flash, (1-alpha)*kvLayerBytes, ansDeps...)
		ansC := e.Task(pipeline.LabelLoadKV, kernel, (1-alpha)*kvLayerBytes, ansDeps...)
		gather := e.Task(pipeline.LabelLoadKV, uplink, (1-alpha)*float64(bs)*hid*model.BytesPerElem, flashKV, ansC)

		// Cooperative X-cache: the α X stream reads the same flash, crosses
		// the GDS path, and is consumed chunk-pipelined by the GPU
		// regeneration+attention kernel (its latency "effectively hidden",
		// §4.2). All three run in parallel once the layer is dispatched.
		var xFlash, xGDS, xTask *sim.Task
		if alpha > 0 {
			xFlash = e.Task(pipeline.LabelXCache, flash, alpha*xLayerBytes, disp)
			xGDS = e.Task(pipeline.LabelXCache, gds, alpha*xLayerBytes, disp)
			regenFLOPs := alpha * float64(bs) * float64(ctx) * 4 * hid * kvDim
			attnFLOPs := alpha * float64(bs) * m.AttnFLOPsPerTokenLayer(ctx)
			hbmBytes := alpha * float64(bs) * float64(ctx) * (hid + 2*kvDim) * model.BytesPerElem
			sec := regenFLOPs/tb.GPU.GEMMFLOPS + attnFLOPs/tb.GPU.EffFLOPS
			if mem := hbmBytes / tb.GPU.HBMBW; mem > sec {
				sec = mem
			}
			xTask = e.Task(pipeline.LabelXCache, gpu, sec, disp)
		}

		join := e.Barrier("attn-join", gather, xFlash, xGDS, xTask, cpuPartial)
		mlp := e.Task(pipeline.LabelCompute, gpu,
			tb.GPU.ComputeTime(m.MLPFLOPsPerTokenLayer(l)*float64(bs), wMBytes)+tb.OverheadPerLayer/2,
			join, wM)
		prevMLP = mlp
	}

	// Delayed writeback: amortized page-aligned spills off the critical path.
	if opt.DelayedWriteback {
		perStep := ((1-alpha)*newKVBytes + alpha*newXBytes) * float64(m.Layers) * wbCfg.SteadyStateWAF()
		e.Task(pipeline.LabelStoreKV, nspWrite, perStep)
		physWrites = perStep
	} else {
		physWrites = (1 - alpha) * newKVBytes * float64(m.Layers) * wbCfg.NaiveWAF()
		// α portion's new X entries still spill page-buffered.
		physWrites += alpha * newXBytes * float64(m.Layers)
	}

	barrier := e.Barrier("step", append([]*sim.Task{prevMLP}, commits...)...)
	res := e.Run()
	return barrier.Finish(), res.ByLabel, res.ResourceBusy, physWrites, res.Tasks
}

func hostDRAMUtil(tb device.Testbed, m model.Config, bs int, opt Options) float64 {
	var used int64
	if !pipeline.WeightsOnStorage(m) {
		used = m.TotalWeightBytes()
	}
	// Writeback buffers: c steps of KV entries.
	used += int64(opt.SpillInterval) * int64(bs) * m.KVBytesPerTokenLayer() * int64(m.Layers)
	u := float64(used) / float64(tb.DRAM.Bytes)
	if u > 1 {
		u = 1
	}
	return u
}
