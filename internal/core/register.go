package core

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/engine"
	"repro/internal/pipeline"
)

// System identifiers registered by this package — full HILOS and the
// Fig. 15 ablation ladder.
const (
	SysHILOS    engine.System = "hilos"
	SysHILOSANS engine.System = "hilos-ans"
	SysHILOSWB  engine.System = "hilos-wb"
	SysHILOSX   engine.System = "hilos-x"
)

// hilosEngine binds one HILOS configuration to a testbed as a registry
// engine.
type hilosEngine struct {
	sys  engine.System
	desc string
	tb   device.Testbed
	opt  Options
}

func (e hilosEngine) Name() engine.System                      { return e.sys }
func (e hilosEngine) Describe() string                         { return e.desc }
func (e hilosEngine) Run(req pipeline.Request) pipeline.Report { return Run(e.tb, req, e.opt) }

func init() {
	reg := func(sys engine.System, rank int, desc string, mk func(engine.Config) Options) {
		engine.Register(engine.Spec{
			System: sys, Rank: rank, Describe: desc,
			New: func(cfg engine.Config) (engine.Engine, error) {
				return hilosEngine{
					sys:  sys,
					desc: fmt.Sprintf("%s (%d SmartSSDs)", desc, cfg.Devices),
					tb:   cfg.Testbed,
					opt:  mk(cfg),
				}, nil
			},
		})
	}
	reg(SysHILOS, 60, "full HILOS: attention near storage + X-cache + delayed writeback (§4)",
		func(cfg engine.Config) Options {
			return Options{
				Devices: cfg.Devices, XCache: true, DelayedWriteback: true,
				Alpha: cfg.Alpha, SpillInterval: cfg.SpillInterval,
			}
		})
	reg(SysHILOSANS, 70, "ablation: attention near storage only (Fig. 15 ANS)",
		func(cfg engine.Config) Options {
			return Options{Devices: cfg.Devices}
		})
	reg(SysHILOSWB, 80, "ablation: ANS + delayed KV-cache writeback (Fig. 15 ANS+WB)",
		func(cfg engine.Config) Options {
			return Options{Devices: cfg.Devices, DelayedWriteback: true, SpillInterval: cfg.SpillInterval}
		})
	reg(SysHILOSX, 90, "ablation: ANS + cooperative X-cache execution (Fig. 15 ANS+X)",
		func(cfg engine.Config) Options {
			return Options{Devices: cfg.Devices, XCache: true, Alpha: cfg.Alpha}
		})
}
