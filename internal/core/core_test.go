package core

import (
	"testing"

	"repro/internal/baseline"
	"repro/internal/device"
	"repro/internal/model"
	"repro/internal/pipeline"
)

func req(m model.Config, bs, ctx int) pipeline.Request {
	return pipeline.Request{Model: m, Batch: bs, Context: ctx, OutputLen: 64}
}

func TestRunBasics(t *testing.T) {
	tb := device.DefaultTestbed()
	r := Run(tb, req(model.OPT66B, 16, 32768), DefaultOptions(8))
	if r.OOM {
		t.Fatalf("unexpected OOM: %s", r.Reason)
	}
	if r.Batch != 16 || r.Devices != 8 {
		t.Errorf("batch/devices = %d/%d", r.Batch, r.Devices)
	}
	if r.DecodeTokPerSec() <= 0 || r.PrefillSec <= 0 {
		t.Error("non-positive metrics")
	}
	if r.DecodeWriteBytesPerStep <= 0 {
		t.Error("no write accounting")
	}
}

// Fig. 10: HILOS beats FLEX(SSD) at every device count, scaling with
// devices; at long contexts HILOS(16) lands in the paper's 5.3–7.8× band.
func TestFig10Speedups(t *testing.T) {
	tb := device.DefaultTestbed()
	for _, m := range []model.Config{model.OPT66B, model.OPT175B} {
		r := req(m, 16, 131072)
		base := baseline.FlexSSD(tb).Run(tb, r).DecodeTokPerSec()
		prev := base
		for _, n := range []int{4, 8, 16} {
			got := Run(tb, r, DefaultOptions(n)).DecodeTokPerSec()
			if got <= prev {
				t.Errorf("%s: HILOS(%d) %.4f not above previous %.4f", m.Name, n, got, prev)
			}
			prev = got
		}
		ratio := prev / base
		if ratio < 5.0 || ratio > 8.0 {
			t.Errorf("%s@128K: HILOS(16) = %.2f× FLEX(SSD), paper band is 5.3–7.8×", m.Name, ratio)
		}
	}
}

// Fig. 11(a): HILOS scales effectively up to batch 16 while the baselines
// are capacity- or I/O-bound.
func TestBatchScaling(t *testing.T) {
	tb := device.DefaultTestbed()
	t1 := Run(tb, req(model.OPT66B, 1, 32768), DefaultOptions(16)).DecodeTokPerSec()
	t8 := Run(tb, req(model.OPT66B, 8, 32768), DefaultOptions(16)).DecodeTokPerSec()
	if t8 < 4*t1 {
		t.Errorf("HILOS batch scaling 1→8 only %.2f×, want ≥ 4×", t8/t1)
	}
}

// Fig. 15 ablation ordering: ANS < ANS+WB < ANS+X < ANS+WB+X, all above
// FLEX(SSD).
func TestAblationOrdering(t *testing.T) {
	tb := device.DefaultTestbed()
	for _, m := range []model.Config{model.OPT30B, model.OPT66B, model.GLaM143B} {
		r := req(m, 16, 65536)
		base := baseline.FlexSSD(tb).Run(tb, r).DecodeTokPerSec()
		ans := Run(tb, r, Options{Devices: 8, Alpha: -1}).DecodeTokPerSec()
		wb := Run(tb, r, Options{Devices: 8, DelayedWriteback: true, Alpha: -1}).DecodeTokPerSec()
		x := Run(tb, r, Options{Devices: 8, XCache: true, Alpha: -1}).DecodeTokPerSec()
		both := Run(tb, r, Options{Devices: 8, XCache: true, DelayedWriteback: true, Alpha: -1}).DecodeTokPerSec()
		if !(base < ans && ans < wb && wb < x && x < both) {
			t.Errorf("%s ablation not ordered: base=%.3f ans=%.3f wb=%.3f x=%.3f both=%.3f",
				m.Name, base, ans, wb, x, both)
		}
	}
}

// Fig. 13: throughput peaks at spill interval c=16 for every α, and α=50%
// is the best ratio at the default 8-device configuration.
func TestSpillIntervalOptimum(t *testing.T) {
	tb := device.DefaultTestbed()
	run := func(alpha float64, c int) float64 {
		return Run(tb, req(model.OPT30B, 16, 32768), Options{
			Devices: 8, XCache: alpha > 0, DelayedWriteback: true,
			Alpha: alpha, SpillInterval: c,
		}).DecodeTokPerSec()
	}
	for _, alpha := range []float64{0, 0.25, 0.5, 0.75} {
		best := run(alpha, 16)
		for _, c := range []int{2, 4, 64} {
			if got := run(alpha, c); got > best {
				t.Errorf("α=%.2f: c=%d (%.3f) beats c=16 (%.3f)", alpha, c, got, best)
			}
		}
	}
	if run(0.5, 16) <= run(0.25, 16) || run(0.5, 16) <= run(0.75, 16) {
		t.Error("α=50% is not the best ratio at the default configuration")
	}
}

// §7.3: scaling c from 16 to 64 loses meaningful throughput to XRT DMA
// orchestration overhead.
func TestLargeSpillIntervalPenalty(t *testing.T) {
	tb := device.DefaultTestbed()
	run := func(c int) float64 {
		return Run(tb, req(model.OPT30B, 16, 32768), Options{
			Devices: 8, XCache: true, DelayedWriteback: true, Alpha: 0.5, SpillInterval: c,
		}).DecodeTokPerSec()
	}
	loss := 1 - run(64)/run(16)
	if loss < 0.05 {
		t.Errorf("c=16→64 loss = %.1f%%, paper reports a pronounced drop", loss*100)
	}
}

// §4.2/Fig. 4(c): after offloading, the host stays underutilized.
func TestHostUnderutilized(t *testing.T) {
	tb := device.DefaultTestbed()
	r := Run(tb, req(model.OPT66B, 16, 32768), Options{Devices: 8}) // ANS only
	if r.HostUtilCPU > 0.2 || r.HostUtilGPU > 0.2 {
		t.Errorf("host util CPU=%.2f GPU=%.2f, paper reports < 20%%", r.HostUtilCPU, r.HostUtilGPU)
	}
	base := baseline.FlexSSD(tb).Run(tb, req(model.OPT66B, 16, 32768))
	if base.HostUtilCPU <= r.HostUtilCPU {
		t.Error("baseline CPU utilization not above HILOS")
	}
}

// X-cache halves the storage footprint of its portion (MHA): decode write
// traffic falls versus pure ANS+WB.
func TestXCacheReducesWrites(t *testing.T) {
	tb := device.DefaultTestbed()
	r := req(model.OPT66B, 16, 32768)
	wb := Run(tb, r, Options{Devices: 8, DelayedWriteback: true})
	both := Run(tb, r, Options{Devices: 8, DelayedWriteback: true, XCache: true, Alpha: 0.5})
	if both.DecodeWriteBytesPerStep >= wb.DecodeWriteBytesPerStep {
		t.Errorf("X-cache writes %.0f not below KV-only %.0f",
			both.DecodeWriteBytesPerStep, wb.DecodeWriteBytesPerStep)
	}
}

// GQA models (ρ < 1) must auto-disable the X-cache.
func TestGQADisablesXCache(t *testing.T) {
	tb := device.DefaultTestbed()
	a, err := ChooseAlpha(tb, model.Qwen2532B, 16, 32768, 16)
	if err != nil || a != 0 {
		t.Errorf("Qwen α = %v, %v; want 0", a, err)
	}
	a, err = ChooseAlpha(tb, model.OPT66B, 16, 32768, 8)
	if err != nil || a != 0.5 {
		t.Errorf("OPT-66B α at 8 devices = %v, %v; want 0.5 (§6.4)", a, err)
	}
}

func TestCapacityOOM(t *testing.T) {
	tb := device.DefaultTestbed()
	// Pure ANS (no X-cache halving): 175B@256K KV (~20 TB) exceeds four
	// SmartSSDs, so the batch shrinks.
	r := Run(tb, req(model.OPT175B, 16, 262144), Options{Devices: 4, DelayedWriteback: true})
	if r.OOM {
		t.Fatalf("unexpected hard OOM: %s", r.Reason)
	}
	if r.Batch >= 16 {
		t.Errorf("ANS batch = %d, expected capacity-shrunk < 16", r.Batch)
	}
	// With X-cache at α=0.75 the same workload fits at full batch — the
	// §6.6 storage-footprint benefit of caching X instead of K/V.
	rx := Run(tb, req(model.OPT175B, 16, 262144), Options{Devices: 4, XCache: true, DelayedWriteback: true, Alpha: 0.75})
	if rx.OOM || rx.Batch != 16 {
		t.Errorf("X-cache run batch = %d (OOM=%v), want 16", rx.Batch, rx.OOM)
	}
}

func TestOptionsNameAndNormalize(t *testing.T) {
	if DefaultOptions(16).Name() != "HILOS (16 SmartSSDs)" {
		t.Errorf("name = %q", DefaultOptions(16).Name())
	}
	if (Options{}).Name() != "ANS" {
		t.Errorf("ANS name = %q", (Options{}).Name())
	}
	n := (Options{}).normalize()
	if n.Devices != 8 || n.SpillInterval != 16 || n.Alpha != 0 {
		t.Errorf("normalize = %+v", n)
	}
}

func TestDeterminism(t *testing.T) {
	tb := device.DefaultTestbed()
	a := Run(tb, req(model.OPT66B, 16, 32768), DefaultOptions(8))
	b := Run(tb, req(model.OPT66B, 16, 32768), DefaultOptions(8))
	if a.StepSec != b.StepSec {
		t.Error("HILOS simulation not deterministic")
	}
}

// Fig. 14: longer outputs amortize prefill, raising effective speedup.
func TestOutputLengthAmortization(t *testing.T) {
	tb := device.DefaultTestbed()
	r := req(model.OPT30B, 16, 16384)
	h := Run(tb, r, DefaultOptions(8))
	f := baseline.FlexSSD(tb).Run(tb, r)
	sp16 := f.TotalSec(16) / h.TotalSec(16)
	sp128 := f.TotalSec(128) / h.TotalSec(128)
	if sp128 <= sp16 {
		t.Errorf("speedup did not grow with output length: %.2f vs %.2f", sp16, sp128)
	}
}
