package attention

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Projections holds a layer's attention projection weights for one head
// group. Shapes: Wq, Wk, Wv are hidden×d (column blocks of the full
// projection matrices).
type Projections struct {
	Wq, Wk, Wv tensor.Mat
}

// ProjectQKV computes Q = X·Wq, K = X·Wk, V = X·Wv (Equation 1). Results are
// quantized through FP16 to emulate storage precision, matching what the
// accelerator reads back from flash.
func ProjectQKV(x tensor.Mat, p Projections) (q, k, v tensor.Mat) {
	q = tensor.MatMul(x, p.Wq).RoundFP16()
	k = tensor.MatMul(x, p.Wk).RoundFP16()
	v = tensor.MatMul(x, p.Wv).RoundFP16()
	return q, k, v
}

// RegenerateKV recomputes K and V from the cached pre-projection activations
// X (the cooperative X-cache, §4.2). Because X is stored in FP16, the
// regenerated tensors equal the originally stored K/V exactly when the
// projection is performed with the same arithmetic.
func RegenerateKV(x tensor.Mat, p Projections) (k, v tensor.Mat) {
	k = tensor.MatMul(x, p.Wk).RoundFP16()
	v = tensor.MatMul(x, p.Wv).RoundFP16()
	return k, v
}

// XCacheAttend computes attention for one head where the historical context
// is stored as X (pre-projection activations) rather than K/V: it regenerates
// K and V on the "GPU" and then attends. The output is bit-identical to
// attending over the stored K/V produced by ProjectQKV from the same X.
func XCacheAttend(q, x tensor.Mat, p Projections, mask []bool, blockSize int) tensor.Mat {
	k, v := RegenerateKV(x, p)
	return Blocked(q, k, v, mask, blockSize)
}

// SplitHeads partitions the batch×head dimension for cooperative execution:
// given n total (batch, head) pairs and an X-cache ratio alpha, it returns
// how many pairs the GPU handles via X-cache (nX) and how many stay on the
// NSP devices (nKV). alpha partitions batch and head dimensions, never the
// sequence dimension (§4.2).
func SplitHeads(n int, alpha float64) (nX, nKV int, err error) {
	if alpha < 0 || alpha > 1 {
		return 0, 0, fmt.Errorf("attention: alpha %v out of [0,1]", alpha)
	}
	nX = int(float64(n)*alpha + 0.5)
	if nX > n {
		nX = n
	}
	return nX, n - nX, nil
}

// DelayedWriteback models the §4.3 decode-time split for a single query:
//
//   - kOld/vOld: the KV prefix already committed to storage, processed by the
//     NSP accelerator.
//   - kBuf/vBuf: recent tokens still buffered in host memory. The host CPU
//     precomputes their scaled QKᵀ scores and ships only the scalars plus the
//     buffered V rows to the accelerator (Fig. 6b).
//
// The accelerator merges both partials into the exact attention output over
// the concatenated cache.
func DelayedWriteback(q tensor.Mat, kOld, vOld, kBuf, vBuf tensor.Mat, mask []bool, blockSize int) tensor.Mat {
	if q.Rows != 1 {
		// The decode path issues one query per (batch, head) pair.
		out := tensor.New(q.Rows, vOld.Cols)
		for i := 0; i < q.Rows; i++ {
			r := DelayedWriteback(q.SliceRows(i, i+1), kOld, vOld, kBuf, vBuf, mask, blockSize)
			copy(out.Row(i), r.Row(0))
		}
		return out
	}
	// Storage-side partial (accelerator).
	pStore := partialOverRange(q.Row(0), kOld, vOld, mask, 0, blockSize)
	// Host-side partial from precomputed scores (CPU precompute of QKᵀ).
	scores := Scores(q, kBuf)
	bufScores := scores.Row(0)
	if mask != nil {
		for i := range bufScores {
			bufScores[i] = applyMask(bufScores[i], mask, kOld.Rows+i)
		}
	}
	pBuf := PartialFromScores(bufScores, vBuf)
	pStore.Merge(pBuf)
	out := tensor.New(1, vOld.Cols)
	copy(out.Row(0), pStore.Finalize())
	return out
}

// partialOverRange computes the un-normalized partial for one query over all
// rows of k/v, applying mask entries offset..offset+k.Rows.
func partialOverRange(qrow []float32, k, v tensor.Mat, mask []bool, offset, blockSize int) Partial {
	if blockSize <= 0 {
		blockSize = 128
	}
	d := len(qrow)
	scale := float32(1 / math.Sqrt(float64(d)))
	p := NewPartial(v.Cols)
	for ki := 0; ki < k.Rows; ki++ {
		s := tensor.Dot(qrow, k.Row(ki)) * scale
		p.AddToken(applyMask(s, mask, offset+ki), v.Row(ki))
	}
	return p
}
