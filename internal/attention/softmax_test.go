package attention

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randVec(rng *rand.Rand, n int, sigma float64) []float32 {
	v := make([]float32, n)
	for i := range v {
		v[i] = float32(rng.NormFloat64() * sigma)
	}
	return v
}

func maxAbsDiff32(a, b []float32) float64 {
	var m float64
	for i := range a {
		d := math.Abs(float64(a[i]) - float64(b[i]))
		if d > m {
			m = d
		}
	}
	return m
}

func TestSoftmaxRefSumsToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 17, 256} {
		p := SoftmaxRef(randVec(rng, n, 3))
		var s float64
		for _, v := range p {
			s += float64(v)
		}
		if math.Abs(s-1) > 1e-5 {
			t.Errorf("n=%d: softmax sums to %v", n, s)
		}
	}
}

// Algorithm 1 (two-pass) must match the three-pass reference for every block
// size, including blocks that do not divide the length.
func TestTwoPassMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 5, 127, 128, 129, 1000} {
		x := randVec(rng, n, 5)
		want := SoftmaxRef(x)
		for _, bs := range []int{1, 7, 128, 4096} {
			got := SoftmaxTwoPass(x, nil, bs)
			if d := maxAbsDiff32(got, want); d > 1e-6 {
				t.Errorf("n=%d bs=%d: two-pass differs by %v", n, bs, d)
			}
		}
	}
}

// Softmax is shift-invariant: softmax(x + c) == softmax(x).
func TestSoftmaxShiftInvariance(t *testing.T) {
	f := func(seed int64, shift float32) bool {
		if math.IsNaN(float64(shift)) || math.Abs(float64(shift)) > 50 {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		x := randVec(rng, 64, 2)
		y := make([]float32, len(x))
		for i := range x {
			y[i] = x[i] + shift
		}
		return maxAbsDiff32(SoftmaxTwoPass(x, nil, 16), SoftmaxTwoPass(y, nil, 16)) < 1e-5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSoftmaxNumericalStability(t *testing.T) {
	// Large inputs must not overflow thanks to the max subtraction.
	x := []float32{1e4, 1e4 - 1, 0}
	for _, p := range [][]float32{SoftmaxRef(x), SoftmaxTwoPass(x, nil, 2)} {
		for i, v := range p {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				t.Fatalf("element %d not finite: %v", i, v)
			}
		}
		if p[0] <= p[1] || p[1] <= p[2] {
			t.Errorf("ordering not preserved: %v", p)
		}
	}
}

func TestSoftmaxMasking(t *testing.T) {
	x := []float32{1, 100, 2}
	mask := []bool{true, false, true}
	p := SoftmaxTwoPass(x, mask, 2)
	if p[1] > 1e-6 {
		t.Errorf("masked element weight %v, want ~0", p[1])
	}
	// Remaining mass matches softmax over the unmasked elements.
	ref := SoftmaxRef([]float32{1, 2})
	if math.Abs(float64(p[0]-ref[0])) > 1e-4 || math.Abs(float64(p[2]-ref[1])) > 1e-4 {
		t.Errorf("masked softmax %v vs ref %v", p, ref)
	}
}

func TestStatsUpdateMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := randVec(rng, 300, 4)
	// Direct global stats.
	var gm float64 = math.Inf(-1)
	for _, v := range x {
		if float64(v) > gm {
			gm = float64(v)
		}
	}
	var gz float64
	for _, v := range x {
		gz += math.Exp(float64(v) - gm)
	}
	// Streaming over uneven blocks.
	st := NewStats()
	for lo := 0; lo < len(x); lo += 37 {
		hi := lo + 37
		if hi > len(x) {
			hi = len(x)
		}
		mB, sB := BlockStats(x[lo:hi], nil)
		st.UpdateBlock(mB, sB)
	}
	if st.M != gm {
		t.Errorf("streaming max %v != %v", st.M, gm)
	}
	if math.Abs(st.Z-gz)/gz > 1e-12 {
		t.Errorf("streaming Z %v != %v", st.Z, gz)
	}
}

func TestStatsMergeCommutative(t *testing.T) {
	f := func(m1, z1, m2, z2 float64) bool {
		if math.IsNaN(m1) || math.IsNaN(m2) || z1 < 0 || z2 < 0 {
			return true
		}
		m1, m2 = math.Mod(m1, 100), math.Mod(m2, 100)
		z1, z2 = math.Mod(math.Abs(z1), 1e6)+1e-9, math.Mod(math.Abs(z2), 1e6)+1e-9
		a := Stats{M: m1, Z: z1}
		a.Merge(Stats{M: m2, Z: z2})
		b := Stats{M: m2, Z: z2}
		b.Merge(Stats{M: m1, Z: z1})
		return math.Abs(a.M-b.M) < 1e-12 && math.Abs(a.Z-b.Z) <= 1e-9*math.Abs(a.Z)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestFullyMaskedBlock(t *testing.T) {
	mB, sB := BlockStats([]float32{5, 6}, []bool{false, false})
	st := NewStats()
	st.UpdateBlock(mB, sB)
	// MaskValue keeps the block finite but negligible once real data arrives.
	st.UpdateBlock(0, 1)
	if math.Abs(st.Z-1) > 1e-6 {
		t.Errorf("masked block contaminated stats: Z=%v", st.Z)
	}
}
