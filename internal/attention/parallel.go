package attention

import (
	"math"
	"sync"

	"repro/internal/tensor"
)

// This file implements the parallel block dataflow of the attention kernels:
// Blocked, GQA and TopKBlocks shard their work across the kernel worker pool
// (tensor.ParallelFor) while staying bit-identical to a serial run for every
// worker count. Two invariants make that hold:
//
//   - Partitioning is a pure function of shape + settings. The K/V range is
//     split into block-aligned chunks of ChunkSpan(headDim, blockSize)
//     tokens regardless of how many workers will run them, and the
//     (query row × chunk) work items each own one Partial slot —
//     index-ordered assembly, never a shared accumulator.
//   - Reduction order is fixed. Chunk partials merge through a fixed-shape
//     binary tree (treeMerge): parts[i] absorbs parts[i+stride] for stride
//     1, 2, 4, …, a combination order determined by the chunk count alone.
//     Goroutine completion order can therefore never reach a float32 bit.
//
// Worker scratch (score buffers, per-row top-k state) and the per-call chunk
// partials are drawn from sync.Pool arenas, so steady-state calls allocate
// only the output matrix and one job descriptor.

// minParallelWork is the floor, in query-row·token units, below which the
// kernels run their (identical) dataflow inline: borrowing pool workers for
// a few thousand dot products costs more than it saves. The cutoff is a
// pure function of shape, so it cannot perturb results.
const minParallelWork = 16 * 1024

// Chunk-span clamp. Below minChunkTokens the merge tree is deeper than the
// fold work it saves; above maxChunkTokens the (row × chunk) grid stops
// load-balancing long contexts.
const (
	minChunkTokens = 256
	maxChunkTokens = 65536
)

// ChunkSpan returns the K/V chunk length, in tokens, used for range
// sharding: the largest block-aligned span whose K rows plus V rows at FP32
// fit the process-wide cache budget (tensor.CacheBudget), clamped to
// [minChunkTokens, maxChunkTokens] and rounded down to a blockSize multiple
// (at least one block). A positive tensor.SetChunkTokens pin bypasses the
// budget-derived sizing — tests and cmd/hilos-bench -tune use it to sweep
// spans directly.
//
// The span is a pure function of (headDim, blockSize) and the two settings.
// Worker count is deliberately NOT an input: the chunk partition shapes the
// fixed merge tree, so admitting workers would break the bit-identity of
// parallel results across worker counts — the invariant the whole dataflow
// is built around.
func ChunkSpan(headDim, blockSize int) int {
	if blockSize <= 0 {
		blockSize = 128
	}
	target := tensor.ChunkTokensOverride()
	if target <= 0 {
		if headDim <= 0 {
			headDim = 1
		}
		// Per token resident per fold: one K row + one V row at FP32.
		target = tensor.CacheBudget() / (2 * headDim * 4)
		if target < minChunkTokens {
			target = minChunkTokens
		}
		if target > maxChunkTokens {
			target = maxChunkTokens
		}
	}
	if blockSize >= target {
		return blockSize
	}
	return target / blockSize * blockSize
}

// chunkCountFor returns the number of K/V range chunks for kRows tokens at
// the given span.
func chunkCountFor(kRows, span int) int {
	return (kRows + span - 1) / span
}

// lane is per-worker scratch: a block score buffer for the chunk kernels and
// the full-range score/selection state for per-row top-k. Lanes live in a
// sync.Pool arena and are fully overwritten before every read, so reuse can
// never leak state between calls.
type lane struct {
	block      []float32 // ≥ rows·blockSize score scratch for one K/V block
	scores     []float32 // ≥ kRows full-range scores (top-k row path)
	blockScore []float32 // ≥ nBlocks pooled block scores (top-k row path)
	part       Partial   // per-row partial (top-k row path)
}

var lanePool = sync.Pool{New: func() any { return new(lane) }}

func getLane() *lane  { return lanePool.Get().(*lane) }
func putLane(l *lane) { lanePool.Put(l) }

// growF ensures a float32 scratch slice has exactly length n.
func growF(s []float32, n int) []float32 {
	if cap(s) < n {
		return make([]float32, n)
	}
	return s[:n]
}

// mergeScratch holds one call's chunk partials — one Partial per
// (query row × chunk) work item — between the parallel fill phase and the
// serial tree-merge. Pooled so steady-state calls reuse both the slice and
// every accumulator.
type mergeScratch struct {
	parts []Partial
}

var mergePool = sync.Pool{New: func() any { return new(mergeScratch) }}

// getMerge returns a scratch with n identity partials of value dimension dv.
func getMerge(n, dv int) *mergeScratch {
	ms := mergePool.Get().(*mergeScratch)
	if cap(ms.parts) < n {
		ms.parts = make([]Partial, n)
	} else {
		ms.parts = ms.parts[:n]
	}
	for i := range ms.parts {
		p := &ms.parts[i]
		p.Acc = growF(p.Acc, dv)
		p.Reset()
	}
	return ms
}

func putMerge(ms *mergeScratch) { mergePool.Put(ms) }

// treeMerge reduces chunk partials with a fixed-shape binary tree: parts[i]
// absorbs parts[i+stride] for stride 1, 2, 4, …. The float32 combination
// order is a pure function of len(parts) — never of which goroutine
// finished first — which is what keeps parallel results bit-identical to a
// one-worker run. Returns the root (parts[0]).
func treeMerge(parts []Partial) *Partial {
	for stride := 1; stride < len(parts); stride *= 2 {
		for i := 0; i+stride < len(parts); i += 2 * stride {
			parts[i].Merge(parts[i+stride])
		}
	}
	return &parts[0]
}

// chunkPartial folds K/V rows [lo, hi) into p for one query row, walking the
// range in blockSize blocks exactly as the serial Blocked loop does: scores
// for one block into blk, then one Partial.AddBlock (≤ 1 accumulator rescale
// per block).
func chunkPartial(p *Partial, qrow []float32, k, v tensor.Mat, mask []bool, scale float32, blockSize, lo, hi int, blk []float32) {
	for bl := lo; bl < hi; bl += blockSize {
		bh := bl + blockSize
		if bh > hi {
			bh = hi
		}
		s := blk[:bh-bl]
		for ki := bl; ki < bh; ki++ {
			s[ki-bl] = applyMask(tensor.Dot(qrow, k.Row(ki))*scale, mask, ki)
		}
		p.AddBlock(s, v, bl)
	}
}

// BlockedWorkers computes Blocked attention with an explicit worker count.
// Query rows and block-aligned K/V chunks form a (row × chunk) work grid;
// each item computes one chunk partial, and each row's partials reduce
// through the fixed tree. Results are bit-identical for every workers value
// (1 included); Blocked delegates here with the default worker count.
func BlockedWorkers(q, k, v tensor.Mat, mask []bool, blockSize, workers int) tensor.Mat {
	if blockSize <= 0 {
		blockSize = 128
	}
	scale := float32(1 / math.Sqrt(float64(q.Cols)))
	out := tensor.New(q.Rows, v.Cols)
	if k.Rows == 0 || q.Rows == 0 {
		return out
	}
	// Read the span once per call: the partition must stay coherent even if
	// a knob changes concurrently (both knob reads happen inside ChunkSpan).
	span := ChunkSpan(q.Cols, blockSize)
	nChunks := chunkCountFor(k.Rows, span)
	if q.Rows*k.Rows < minParallelWork {
		workers = 1
	}
	ms := getMerge(q.Rows*nChunks, v.Cols)
	tensor.ParallelFor(q.Rows*nChunks, workers, func(it int) {
		qi, c := it/nChunks, it%nChunks
		lo := c * span
		hi := lo + span
		if hi > k.Rows {
			hi = k.Rows
		}
		ln := getLane()
		ln.block = growF(ln.block, blockSize)
		chunkPartial(&ms.parts[it], q.Row(qi), k, v, mask, scale, blockSize, lo, hi, ln.block)
		putLane(ln)
	})
	for qi := 0; qi < q.Rows; qi++ {
		p := treeMerge(ms.parts[qi*nChunks : (qi+1)*nChunks])
		p.FinalizeInto(out.Row(qi))
	}
	putMerge(ms)
	return out
}

// GQAWorkers computes grouped-query attention with an explicit worker count.
// Unlike BlockedWorkers' (row × chunk) grid, the work item here is one K/V
// chunk shared by the whole group: each K row is read once per block and
// scored against every query head before the per-(head, chunk) partials are
// folded — the host-side analogue of the accelerator broadcasting one K/V
// stream to dGroup×128 MAC lanes. Per-head numerics are identical to
// BlockedWorkers (same blocks, same fold order, same tree), so GQA outputs
// are bit-identical to per-head Blocked outputs for every worker count.
func GQAWorkers(q, k, v tensor.Mat, mask []bool, blockSize, workers int) tensor.Mat {
	if blockSize <= 0 {
		blockSize = 128
	}
	rows := q.Rows
	scale := float32(1 / math.Sqrt(float64(q.Cols)))
	out := tensor.New(rows, v.Cols)
	if k.Rows == 0 || rows == 0 {
		return out
	}
	span := ChunkSpan(q.Cols, blockSize)
	nChunks := chunkCountFor(k.Rows, span)
	if rows*k.Rows < minParallelWork {
		workers = 1
	}
	ms := getMerge(rows*nChunks, v.Cols)
	tensor.ParallelFor(nChunks, workers, func(c int) {
		lo := c * span
		hi := lo + span
		if hi > k.Rows {
			hi = k.Rows
		}
		ln := getLane()
		ln.block = growF(ln.block, rows*blockSize)
		for bl := lo; bl < hi; bl += blockSize {
			bh := bl + blockSize
			if bh > hi {
				bh = hi
			}
			w := bh - bl
			buf := ln.block[:rows*w]
			// One pass over the K block scores all heads: krow stays hot
			// across the group, the shared-traversal half of GQA.
			for ki := bl; ki < bh; ki++ {
				krow := k.Row(ki)
				for g := 0; g < rows; g++ {
					buf[g*w+ki-bl] = applyMask(tensor.Dot(q.Row(g), krow)*scale, mask, ki)
				}
			}
			for g := 0; g < rows; g++ {
				ms.parts[g*nChunks+c].AddBlock(buf[g*w:(g+1)*w], v, bl)
			}
		}
		putLane(ln)
	})
	for g := 0; g < rows; g++ {
		p := treeMerge(ms.parts[g*nChunks : (g+1)*nChunks])
		p.FinalizeInto(out.Row(g))
	}
	putMerge(ms)
	return out
}

// topKBlocksRow runs the full serial per-row TopKBlocks dataflow for one
// query row using lane-local scratch: score every cached token, mean-pool
// blocks in float64, select keepBlocks deterministically, attend over the
// kept blocks in selection order.
func topKBlocksRow(ln *lane, qrow []float32, k, v tensor.Mat, mask []bool, scale float32, keepBlocks, blockSize, nBlocks int, orow []float32) {
	scores := ln.scores
	blockScore := ln.blockScore
	for ki := 0; ki < k.Rows; ki++ {
		scores[ki] = applyMask(tensor.Dot(qrow, k.Row(ki))*scale, mask, ki)
	}
	for b := 0; b < nBlocks; b++ {
		lo, hi := b*blockSize, (b+1)*blockSize
		if hi > k.Rows {
			hi = k.Rows
		}
		blockScore[b] = poolBlock(scores, lo, hi)
	}
	keep := topKIndices(blockScore, keepBlocks)
	p := &ln.part
	p.Acc = growF(p.Acc, v.Cols)
	p.Reset()
	for _, b := range keep {
		lo, hi := b*blockSize, (b+1)*blockSize
		if hi > k.Rows {
			hi = k.Rows
		}
		p.AddBlock(scores[lo:hi], v, lo)
	}
	p.FinalizeInto(orow)
}

// poolBlock mean-pools scores[lo:hi] in float64 so block ranking does not
// depend on float32 rounding of the partial sums (hilos-lint: floataccum).
func poolBlock(scores []float32, lo, hi int) float32 {
	var sum float64
	for i := lo; i < hi; i++ {
		sum += float64(scores[i])
	}
	return float32(sum / float64(hi-lo))
}

// TopKBlocksWorkers computes lossy block-sparse attention with an explicit
// worker count. Multi-row calls shard query rows (each row runs the full
// serial dataflow on lane scratch); the single-row decode shape instead
// parallelizes the score+pool phase over block-aligned chunks — every score
// and pooled block mean lands in an index-owned slot — and keeps the
// selection and kept-block attention serial, in deterministic selection
// order. Both dataflows produce bit-identical results to a one-worker run.
func TopKBlocksWorkers(q, k, v tensor.Mat, mask []bool, keepBlocks, blockSize, workers int) tensor.Mat {
	if blockSize <= 0 {
		blockSize = 16
	}
	scale := float32(1 / math.Sqrt(float64(q.Cols)))
	nBlocks := (k.Rows + blockSize - 1) / blockSize
	out := tensor.New(q.Rows, v.Cols)
	if k.Rows == 0 || q.Rows == 0 {
		return out
	}
	if q.Rows*k.Rows < minParallelWork {
		workers = 1
	}
	if q.Rows > 1 {
		tensor.ParallelFor(q.Rows, workers, func(qi int) {
			ln := getLane()
			ln.scores = growF(ln.scores, k.Rows)
			ln.blockScore = growF(ln.blockScore, nBlocks)
			topKBlocksRow(ln, q.Row(qi), k, v, mask, scale, keepBlocks, blockSize, nBlocks, out.Row(qi))
			putLane(ln)
		})
		return out
	}

	// Single query row: phase 1 (scores + pooled block means) in parallel
	// over chunks, phases 2–3 (selection, kept-block attention) serial.
	qrow := q.Row(0)
	span := ChunkSpan(q.Cols, blockSize)
	nChunks := chunkCountFor(k.Rows, span)
	ln := getLane()
	ln.scores = growF(ln.scores, k.Rows)
	ln.blockScore = growF(ln.blockScore, nBlocks)
	scores, blockScore := ln.scores, ln.blockScore
	tensor.ParallelFor(nChunks, workers, func(c int) {
		lo := c * span
		hi := lo + span
		if hi > k.Rows {
			hi = k.Rows
		}
		for ki := lo; ki < hi; ki++ {
			scores[ki] = applyMask(tensor.Dot(qrow, k.Row(ki))*scale, mask, ki)
		}
		// Chunks are block-aligned, so every block [blo, bhi) lies in
		// exactly one chunk and its pooled mean has a single writer.
		for b := lo / blockSize; b*blockSize < hi; b++ {
			blo, bhi := b*blockSize, (b+1)*blockSize
			if bhi > k.Rows {
				bhi = k.Rows
			}
			blockScore[b] = poolBlock(scores, blo, bhi)
		}
	})
	keep := topKIndices(blockScore, keepBlocks)
	p := &ln.part
	p.Acc = growF(p.Acc, v.Cols)
	p.Reset()
	for _, b := range keep {
		lo, hi := b*blockSize, (b+1)*blockSize
		if hi > k.Rows {
			hi = k.Rows
		}
		p.AddBlock(scores[lo:hi], v, lo)
	}
	p.FinalizeInto(out.Row(0))
	putLane(ln)
	return out
}
