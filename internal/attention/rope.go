package attention

import (
	"fmt"
	"math"
)

// RoPE applies rotary position embeddings (the paper's positional embedding
// in step B of the prefill procedure; §6.4 notes that X-cache regeneration
// must re-apply RoPE to regenerated keys, with the trigonometric tables
// cached so the overhead stays negligible [83]).
//
// For a vector of even dimension d at position p, dimension pair (2i, 2i+1)
// is rotated by angle p·base^(−2i/d).
type RoPE struct {
	dim  int
	base float64

	// cos/sin tables per position, extended lazily and reused across steps
	// (the "efficient caching strategy").
	cos [][]float32
	sin [][]float32
}

// NewRoPE returns a RoPE operator for head dimension dim (must be even).
func NewRoPE(dim int, base float64) (*RoPE, error) {
	if dim <= 0 || dim%2 != 0 {
		return nil, fmt.Errorf("attention: RoPE dim must be positive and even, got %d", dim)
	}
	if base <= 1 {
		return nil, fmt.Errorf("attention: RoPE base must exceed 1, got %v", base)
	}
	return &RoPE{dim: dim, base: base}, nil
}

// ensure extends the cached tables to cover position p.
func (r *RoPE) ensure(p int) {
	for len(r.cos) <= p {
		pos := len(r.cos)
		half := r.dim / 2
		c := make([]float32, half)
		s := make([]float32, half)
		for i := 0; i < half; i++ {
			theta := float64(pos) * math.Pow(r.base, -2*float64(i)/float64(r.dim))
			c[i] = float32(math.Cos(theta))
			s[i] = float32(math.Sin(theta))
		}
		r.cos = append(r.cos, c)
		r.sin = append(r.sin, s)
	}
}

// Apply rotates vec (length dim) in place for position pos.
func (r *RoPE) Apply(vec []float32, pos int) {
	if len(vec) != r.dim {
		panic(fmt.Sprintf("attention: RoPE vector length %d != dim %d", len(vec), r.dim))
	}
	if pos < 0 {
		panic(fmt.Sprintf("attention: negative RoPE position %d", pos))
	}
	r.ensure(pos)
	c, s := r.cos[pos], r.sin[pos]
	for i := 0; i < r.dim/2; i++ {
		a, b := vec[2*i], vec[2*i+1]
		vec[2*i] = a*c[i] - b*s[i]
		vec[2*i+1] = a*s[i] + b*c[i]
	}
}

// CachedPositions returns how many positions the trig tables cover; the
// X-cache regeneration path reuses them instead of recomputing (§6.4).
func (r *RoPE) CachedPositions() int { return len(r.cos) }
