package attention

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Ref computes exact multi-head attention for a single head:
// softmax(q·Kᵀ/√d)·V for each query row of q. K and V have one row per
// cached token; mask (optional, len == K.Rows) marks valid positions.
// This is the golden reference every optimized path is tested against.
func Ref(q, k, v tensor.Mat, mask []bool) tensor.Mat {
	d := q.Cols
	if k.Cols != d {
		panic(fmt.Sprintf("attention: q dim %d != k dim %d", d, k.Cols))
	}
	if k.Rows != v.Rows {
		panic(fmt.Sprintf("attention: k rows %d != v rows %d", k.Rows, v.Rows))
	}
	scale := float32(1 / math.Sqrt(float64(d)))
	out := tensor.New(q.Rows, v.Cols)
	scores := make([]float32, k.Rows)
	for qi := 0; qi < q.Rows; qi++ {
		qrow := q.Row(qi)
		for ki := 0; ki < k.Rows; ki++ {
			s := tensor.Dot(qrow, k.Row(ki)) * scale
			scores[ki] = applyMask(s, mask, ki)
		}
		p := SoftmaxRef(scores)
		orow := out.Row(qi)
		for ki, w := range p {
			if w == 0 {
				continue
			}
			vrow := v.Row(ki)
			for j := range orow {
				orow[j] += w * vrow[j]
			}
		}
	}
	return out
}

// Scores returns the scaled q·Kᵀ score matrix (one row per query) without
// softmax. Used by the delayed-writeback host precompute (§4.3), where the
// CPU computes partial QKᵀ products over the buffered keys.
func Scores(q, k tensor.Mat) tensor.Mat {
	d := q.Cols
	scale := float32(1 / math.Sqrt(float64(d)))
	out := tensor.New(q.Rows, k.Rows)
	for qi := 0; qi < q.Rows; qi++ {
		qrow := q.Row(qi)
		orow := out.Row(qi)
		for ki := 0; ki < k.Rows; ki++ {
			orow[ki] = tensor.Dot(qrow, k.Row(ki)) * scale
		}
	}
	return out
}

// Partial is an un-normalized attention partial result: for one query, the
// running softmax statistics plus the weighted value accumulator
// acc = Σ exp(score_i − M)·v_i. Two Partials over disjoint token ranges can
// be merged into the exact full-range result; this identity is what lets the
// delayed-writeback path split attention between the NSP accelerator
// (storage-resident tokens) and the host (buffered tokens).
type Partial struct {
	Stats Stats
	Acc   []float32 // length = value dimension
}

// NewPartial returns an identity partial for value dimension dv.
func NewPartial(dv int) Partial {
	return Partial{Stats: NewStats(), Acc: make([]float32, dv)}
}

// AddToken folds one (score, value-row) pair into the partial.
func (p *Partial) AddToken(score float32, vrow []float32) {
	s := float64(score)
	if s > p.Stats.M {
		r := math.Exp(p.Stats.M - s)
		for i := range p.Acc {
			p.Acc[i] = float32(float64(p.Acc[i]) * r)
		}
		p.Stats.Z = p.Stats.Z * r
		p.Stats.M = s
	}
	w := math.Exp(s - p.Stats.M)
	p.Stats.Z += w
	for i := range p.Acc {
		p.Acc[i] += float32(w * float64(vrow[i]))
	}
}

// Merge folds another partial (over a disjoint token range) into p.
func (p *Partial) Merge(o Partial) {
	if len(p.Acc) != len(o.Acc) {
		panic("attention: partial dim mismatch")
	}
	if math.IsInf(o.Stats.M, -1) {
		return
	}
	if o.Stats.M > p.Stats.M {
		r := math.Exp(p.Stats.M - o.Stats.M)
		for i := range p.Acc {
			p.Acc[i] = float32(float64(p.Acc[i])*r + float64(o.Acc[i]))
		}
		p.Stats.Z = p.Stats.Z*r + o.Stats.Z
		p.Stats.M = o.Stats.M
	} else {
		r := math.Exp(o.Stats.M - p.Stats.M)
		for i := range p.Acc {
			p.Acc[i] += float32(float64(o.Acc[i]) * r)
		}
		p.Stats.Z += o.Stats.Z * r
	}
}

// Finalize returns the normalized attention output acc/Z.
func (p Partial) Finalize() []float32 {
	out := make([]float32, len(p.Acc))
	if p.Stats.Z == 0 {
		return out
	}
	for i, a := range p.Acc {
		out[i] = float32(float64(a) / p.Stats.Z)
	}
	return out
}

// PartialFromScores builds a partial for one query from precomputed scaled
// scores and the corresponding value rows (the host side of the delayed
// writeback, Fig. 6b steps 2-4).
func PartialFromScores(scores []float32, v tensor.Mat) Partial {
	if len(scores) != v.Rows {
		panic("attention: scores/value length mismatch")
	}
	p := NewPartial(v.Cols)
	for i, s := range scores {
		p.AddToken(s, v.Row(i))
	}
	return p
}

// Blocked computes attention with the accelerator's streaming block dataflow:
// K/V are consumed in blocks of blockSize tokens, per-block statistics are
// folded via the streaming update unit, and the value accumulator is rescaled
// online. Output matches Ref within FP32 tolerance for any blockSize ≥ 1.
func Blocked(q, k, v tensor.Mat, mask []bool, blockSize int) tensor.Mat {
	if blockSize <= 0 {
		blockSize = 128
	}
	d := q.Cols
	scale := float32(1 / math.Sqrt(float64(d)))
	out := tensor.New(q.Rows, v.Cols)
	for qi := 0; qi < q.Rows; qi++ {
		qrow := q.Row(qi)
		p := NewPartial(v.Cols)
		for lo := 0; lo < k.Rows; lo += blockSize {
			hi := lo + blockSize
			if hi > k.Rows {
				hi = k.Rows
			}
			for ki := lo; ki < hi; ki++ {
				s := tensor.Dot(qrow, k.Row(ki)) * scale
				p.AddToken(applyMask(s, mask, ki), v.Row(ki))
			}
		}
		copy(out.Row(qi), p.Finalize())
	}
	return out
}

// GQA computes grouped-query attention: dGroup query heads share one K/V
// cache. q holds dGroup query rows (one per head in the group); the shared
// k/v cache is read once, matching the accelerator's broadcast to
// dGroup×128 MAC units. Output has dGroup rows.
func GQA(q, k, v tensor.Mat, mask []bool, blockSize int) tensor.Mat {
	// Functionally GQA over a shared cache is per-query attention; the
	// sharing matters for the memory system, which the cycle model captures.
	return Blocked(q, k, v, mask, blockSize)
}

// TopK computes lossy sparse attention retaining only the kTop
// highest-scoring cached tokens per query (the InstAttention-style lossy KV
// retrieval proxy used in Fig. 18c). kTop ≥ k.Rows degenerates to exact.
func TopK(q, k, v tensor.Mat, mask []bool, kTop int) tensor.Mat {
	d := q.Cols
	scale := float32(1 / math.Sqrt(float64(d)))
	out := tensor.New(q.Rows, v.Cols)
	for qi := 0; qi < q.Rows; qi++ {
		qrow := q.Row(qi)
		scores := make([]float32, k.Rows)
		for ki := 0; ki < k.Rows; ki++ {
			scores[ki] = applyMask(tensor.Dot(qrow, k.Row(ki))*scale, mask, ki)
		}
		keep := topKIndices(scores, kTop)
		p := NewPartial(v.Cols)
		for _, ki := range keep {
			p.AddToken(scores[ki], v.Row(ki))
		}
		copy(out.Row(qi), p.Finalize())
	}
	return out
}

// TopKBlocks computes lossy sparse attention with block-granular KV
// retrieval: the cache is split into blocks of blockSize tokens, each block
// is ranked by its mean score (the pooled metadata a sparse-retrieval
// engine keeps instead of exact per-token scores), and only the keepBlocks
// highest-ranked blocks participate in attention. This is the
// InstAttention-style lossy compression proxy of Fig. 18(c): evidence
// sitting in low-pooled-score blocks is silently dropped.
func TopKBlocks(q, k, v tensor.Mat, mask []bool, keepBlocks, blockSize int) tensor.Mat {
	if blockSize <= 0 {
		blockSize = 16
	}
	d := q.Cols
	scale := float32(1 / math.Sqrt(float64(d)))
	nBlocks := (k.Rows + blockSize - 1) / blockSize
	out := tensor.New(q.Rows, v.Cols)
	for qi := 0; qi < q.Rows; qi++ {
		qrow := q.Row(qi)
		scores := make([]float32, k.Rows)
		for ki := 0; ki < k.Rows; ki++ {
			scores[ki] = applyMask(tensor.Dot(qrow, k.Row(ki))*scale, mask, ki)
		}
		blockScore := make([]float32, nBlocks)
		for b := 0; b < nBlocks; b++ {
			lo, hi := b*blockSize, (b+1)*blockSize
			if hi > k.Rows {
				hi = k.Rows
			}
			var sum float32
			for i := lo; i < hi; i++ {
				sum += scores[i]
			}
			blockScore[b] = sum / float32(hi-lo)
		}
		keep := topKIndices(blockScore, keepBlocks)
		p := NewPartial(v.Cols)
		for _, b := range keep {
			lo, hi := b*blockSize, (b+1)*blockSize
			if hi > k.Rows {
				hi = k.Rows
			}
			for i := lo; i < hi; i++ {
				p.AddToken(scores[i], v.Row(i))
			}
		}
		copy(out.Row(qi), p.Finalize())
	}
	return out
}

// topKIndices returns the indices of the k largest scores (k clamped to
// len(scores)) via selection over a copy; order of returned indices is
// unspecified.
func topKIndices(scores []float32, k int) []int {
	if k >= len(scores) {
		idx := make([]int, len(scores))
		for i := range idx {
			idx[i] = i
		}
		return idx
	}
	if k <= 0 {
		return nil
	}
	// Simple O(n·k) selection: adequate for test-scale sequences.
	keep := make([]int, 0, k)
	used := make([]bool, len(scores))
	for n := 0; n < k; n++ {
		best, bi := float32(math.Inf(-1)), -1
		for i, s := range scores {
			if !used[i] && s > best {
				best, bi = s, i
			}
		}
		used[bi] = true
		keep = append(keep, bi)
	}
	return keep
}
