package attention

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/tensor"
)

// Ref computes exact multi-head attention for a single head:
// softmax(q·Kᵀ/√d)·V for each query row of q. K and V have one row per
// cached token; mask (optional, len == K.Rows) marks valid positions.
// This is the golden reference every optimized path is tested against.
//
//lint:allow floataccum reference kernel deliberately models the FP32 accumulator datapath
func Ref(q, k, v tensor.Mat, mask []bool) tensor.Mat {
	d := q.Cols
	if k.Cols != d {
		panic(fmt.Sprintf("attention: q dim %d != k dim %d", d, k.Cols))
	}
	if k.Rows != v.Rows {
		panic(fmt.Sprintf("attention: k rows %d != v rows %d", k.Rows, v.Rows))
	}
	scale := float32(1 / math.Sqrt(float64(d)))
	out := tensor.New(q.Rows, v.Cols)
	scores := make([]float32, k.Rows)
	for qi := 0; qi < q.Rows; qi++ {
		qrow := q.Row(qi)
		for ki := 0; ki < k.Rows; ki++ {
			s := tensor.Dot(qrow, k.Row(ki)) * scale
			scores[ki] = applyMask(s, mask, ki)
		}
		p := SoftmaxRef(scores)
		orow := out.Row(qi)
		for ki, w := range p {
			if w == 0 {
				continue
			}
			vrow := v.Row(ki)
			for j := range orow {
				orow[j] += w * vrow[j]
			}
		}
	}
	return out
}

// Scores returns the scaled q·Kᵀ score matrix (one row per query) without
// softmax. Used by the delayed-writeback host precompute (§4.3), where the
// CPU computes partial QKᵀ products over the buffered keys.
func Scores(q, k tensor.Mat) tensor.Mat {
	d := q.Cols
	scale := float32(1 / math.Sqrt(float64(d)))
	out := tensor.New(q.Rows, k.Rows)
	for qi := 0; qi < q.Rows; qi++ {
		qrow := q.Row(qi)
		orow := out.Row(qi)
		for ki := 0; ki < k.Rows; ki++ {
			orow[ki] = tensor.Dot(qrow, k.Row(ki)) * scale
		}
	}
	return out
}

// Partial is an un-normalized attention partial result: for one query, the
// running softmax statistics plus the weighted value accumulator
// acc = Σ exp(score_i − M)·v_i. Two Partials over disjoint token ranges can
// be merged into the exact full-range result; this identity is what lets the
// delayed-writeback path split attention between the NSP accelerator
// (storage-resident tokens) and the host (buffered tokens).
type Partial struct {
	Stats Stats
	Acc   []float32 // length = value dimension
}

// NewPartial returns an identity partial for value dimension dv.
func NewPartial(dv int) Partial {
	return Partial{Stats: NewStats(), Acc: make([]float32, dv)}
}

// Reset returns the partial to the identity state, keeping its accumulator
// storage so one Partial can serve many query rows without reallocating.
func (p *Partial) Reset() {
	p.Stats = NewStats()
	for i := range p.Acc {
		p.Acc[i] = 0
	}
}

// AddToken folds one (score, value-row) pair into the partial. The running
// statistics stay in float64 (matching the streaming update unit's wide
// internal registers); the accumulator arithmetic is pure float32, with the
// rescale and weight converted once per call rather than once per element.
//
//lint:allow floataccum the Partial accumulator itself is the modeled FP32 MAC array
func (p *Partial) AddToken(score float32, vrow []float32) {
	s := float64(score)
	if s > p.Stats.M {
		r := math.Exp(p.Stats.M - s)
		r32 := float32(r)
		for i := range p.Acc {
			p.Acc[i] *= r32
		}
		p.Stats.Z = p.Stats.Z * r
		p.Stats.M = s
	}
	w := math.Exp(s - p.Stats.M)
	p.Stats.Z += w
	w32 := float32(w)
	for i := range p.Acc {
		p.Acc[i] += w32 * vrow[i]
	}
}

// AddBlock folds a whole block of pre-masked scores and the matching value
// rows v[lo:lo+len(scores)] into the partial. This is the accelerator's
// true block dataflow (§5.4): the block's local statistics (the same
// (mB, sB) pair BlockStats produces, reduced inline here so the local
// weights need only one exponential pass) are folded into the running
// statistics exactly as Stats.UpdateBlock does, the accumulator is rescaled
// at most once per block (instead of once per token as repeated AddToken
// calls would), and every weighted value row is then accumulated against
// the settled running maximum.
//
//lint:allow floataccum the Partial accumulator itself is the modeled FP32 MAC array
func (p *Partial) AddBlock(scores []float32, v tensor.Mat, lo int) {
	if len(scores) == 0 {
		return
	}
	// Local block reduction (Algorithm 1 lines 3-4): block maximum, then
	// one exponential per element relative to it.
	mB := math.Inf(-1)
	for _, s := range scores {
		if x := float64(s); x > mB {
			mB = x
		}
	}
	// Streaming fold (Algorithm 1 lines 5-9), with the accumulator rescale
	// hoisted to at most one pass per block.
	rescale := 1.0 // exp(mB − M) once the running maximum has settled
	if mB > p.Stats.M {
		r := math.Exp(p.Stats.M - mB)
		r32 := float32(r)
		for i := range p.Acc {
			p.Acc[i] *= r32
		}
		p.Stats.Z = p.Stats.Z * r
		p.Stats.M = mB
	} else {
		rescale = math.Exp(mB - p.Stats.M)
	}
	r32 := float32(rescale)
	var sB float64
	for j, s := range scores {
		wl := math.Exp(float64(s) - mB)
		sB += wl
		w32 := float32(wl) * r32
		if w32 == 0 {
			continue
		}
		vrow := v.Row(lo + j)
		for i := range p.Acc {
			p.Acc[i] += w32 * vrow[i]
		}
	}
	p.Stats.Z += sB * rescale
}

// Merge folds another partial (over a disjoint token range) into p.
//
//lint:allow floataccum the Partial accumulator itself is the modeled FP32 MAC array
func (p *Partial) Merge(o Partial) {
	if len(p.Acc) != len(o.Acc) {
		panic("attention: partial dim mismatch")
	}
	if math.IsInf(o.Stats.M, -1) {
		return
	}
	if o.Stats.M > p.Stats.M {
		r := math.Exp(p.Stats.M - o.Stats.M)
		r32 := float32(r)
		for i := range p.Acc {
			p.Acc[i] = p.Acc[i]*r32 + o.Acc[i]
		}
		p.Stats.Z = p.Stats.Z*r + o.Stats.Z
		p.Stats.M = o.Stats.M
	} else {
		r := math.Exp(o.Stats.M - p.Stats.M)
		r32 := float32(r)
		for i := range p.Acc {
			p.Acc[i] += o.Acc[i] * r32
		}
		p.Stats.Z += o.Stats.Z * r
	}
}

// Finalize returns the normalized attention output acc/Z.
func (p Partial) Finalize() []float32 {
	out := make([]float32, len(p.Acc))
	p.FinalizeInto(out)
	return out
}

// FinalizeInto writes the normalized attention output acc/Z into dst,
// avoiding Finalize's allocation on reused output rows. The division is
// hoisted to one float64 reciprocal applied across the accumulator.
func (p Partial) FinalizeInto(dst []float32) {
	if p.Stats.Z == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	inv := 1 / p.Stats.Z
	for i, a := range p.Acc {
		dst[i] = float32(float64(a) * inv)
	}
}

// PartialFromScores builds a partial for one query from precomputed scaled
// scores and the corresponding value rows (the host side of the delayed
// writeback, Fig. 6b steps 2-4).
func PartialFromScores(scores []float32, v tensor.Mat) Partial {
	if len(scores) != v.Rows {
		panic("attention: scores/value length mismatch")
	}
	p := NewPartial(v.Cols)
	for i, s := range scores {
		p.AddToken(s, v.Row(i))
	}
	return p
}

// Blocked computes attention with the accelerator's streaming block dataflow:
// K/V are consumed in blocks of blockSize tokens, each block's local softmax
// statistics are folded via the streaming update unit, and the value
// accumulator is rescaled at most once per block (the true flash-attention
// dataflow of §5.4, not a per-token rescale). Work is sharded across the
// kernel worker pool as (query row × K/V chunk) items with scratch drawn
// from sync.Pool arenas; results are bit-identical for every worker count
// (see parallel.go). Output matches Ref within FP32 tolerance for any
// blockSize ≥ 1.
func Blocked(q, k, v tensor.Mat, mask []bool, blockSize int) tensor.Mat {
	return BlockedWorkers(q, k, v, mask, blockSize, tensor.DefaultWorkers())
}

// GQA computes grouped-query attention: dGroup query heads share one K/V
// cache. q holds dGroup query rows (one per head in the group); each K/V
// block is read once and scored against every head in the group, matching
// the accelerator's broadcast to dGroup×128 MAC units. Output has dGroup
// rows, bit-identical to per-head Blocked calls.
func GQA(q, k, v tensor.Mat, mask []bool, blockSize int) tensor.Mat {
	return GQAWorkers(q, k, v, mask, blockSize, tensor.DefaultWorkers())
}

// TopK computes lossy sparse attention retaining only the kTop
// highest-scoring cached tokens per query (the InstAttention-style lossy KV
// retrieval proxy used in Fig. 18c). kTop ≥ k.Rows degenerates to exact.
func TopK(q, k, v tensor.Mat, mask []bool, kTop int) tensor.Mat {
	d := q.Cols
	scale := float32(1 / math.Sqrt(float64(d)))
	out := tensor.New(q.Rows, v.Cols)
	scores := make([]float32, k.Rows) // scratch shared across query rows
	p := NewPartial(v.Cols)
	for qi := 0; qi < q.Rows; qi++ {
		qrow := q.Row(qi)
		for ki := 0; ki < k.Rows; ki++ {
			scores[ki] = applyMask(tensor.Dot(qrow, k.Row(ki))*scale, mask, ki)
		}
		keep := topKIndices(scores, kTop)
		p.Reset()
		for _, ki := range keep {
			p.AddToken(scores[ki], v.Row(ki))
		}
		p.FinalizeInto(out.Row(qi))
	}
	return out
}

// TopKBlocks computes lossy sparse attention with block-granular KV
// retrieval: the cache is split into blocks of blockSize tokens, each block
// is ranked by its mean score (the pooled metadata a sparse-retrieval
// engine keeps instead of exact per-token scores), and only the keepBlocks
// highest-ranked blocks participate in attention. This is the
// InstAttention-style lossy compression proxy of Fig. 18(c): evidence
// sitting in low-pooled-score blocks is silently dropped. Query rows (or,
// for single-row decode shapes, the score+pool phase) run on the kernel
// worker pool; block selection stays serial and deterministic, and results
// are bit-identical for every worker count (see parallel.go).
func TopKBlocks(q, k, v tensor.Mat, mask []bool, keepBlocks, blockSize int) tensor.Mat {
	return TopKBlocksWorkers(q, k, v, mask, keepBlocks, blockSize, tensor.DefaultWorkers())
}

// topKIndices returns the indices of the k largest scores (k clamped to
// len(scores)), ordered by descending score with earlier indices first
// among ties — the same order the old O(n·k) repeated-selection scan
// produced. Selection runs over a bounded min-heap of size k: the heap
// root is always the weakest kept candidate (lowest score; among equal
// scores, the highest index), so a full scan costs O(n log k).
func topKIndices(scores []float32, k int) []int {
	if k >= len(scores) {
		// The degenerate keep-everything case must still honor the order
		// contract (descending score, ascending index among ties) — callers
		// fold values in selection order, so the order is part of the
		// numeric result.
		idx := make([]int, len(scores))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool {
			ia, ib := idx[a], idx[b]
			return scores[ia] > scores[ib] || (scores[ia] == scores[ib] && ia < ib)
		})
		return idx
	}
	if k <= 0 {
		return nil
	}
	h := make([]int, 0, k)
	// weaker orders candidates by (score asc, index desc): h[0] is the
	// first candidate a better score should evict.
	weaker := func(a, b int) bool {
		return scores[a] < scores[b] || (scores[a] == scores[b] && a > b)
	}
	sift := func(i, n int) {
		for {
			l, r := 2*i+1, 2*i+2
			m := i
			if l < n && weaker(h[l], h[m]) {
				m = l
			}
			if r < n && weaker(h[r], h[m]) {
				m = r
			}
			if m == i {
				return
			}
			h[i], h[m] = h[m], h[i]
			i = m
		}
	}
	for i := range scores {
		if len(h) < k {
			h = append(h, i)
			for c := len(h) - 1; c > 0; {
				p := (c - 1) / 2
				if !weaker(h[c], h[p]) {
					break
				}
				h[c], h[p] = h[p], h[c]
				c = p
			}
		} else if weaker(h[0], i) {
			h[0] = i
			sift(0, k)
		}
	}
	// Heap-sort into the selection order of the old implementation:
	// descending score, ascending index among ties (weakest sinks last).
	for n := len(h) - 1; n > 0; n-- {
		h[0], h[n] = h[n], h[0]
		sift(0, n)
	}
	return h
}
