package attention

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

const tol = 2e-4 // FP32 accumulation tolerance between algorithm variants

func randQKV(rng *rand.Rand, nq, s, d, dv int) (q, k, v tensor.Mat) {
	q = tensor.RandMat(rng, nq, d, 1)
	k = tensor.RandMat(rng, s, d, 1)
	v = tensor.RandMat(rng, s, dv, 1)
	return q, k, v
}

func TestBlockedMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, s := range []int{1, 3, 127, 128, 129, 400} {
		q, k, v := randQKV(rng, 2, s, 32, 32)
		want := Ref(q, k, v, nil)
		for _, bs := range []int{1, 16, 128} {
			got := Blocked(q, k, v, nil, bs)
			if d := tensor.MaxAbsDiff(got, want); d > tol {
				t.Errorf("s=%d bs=%d: blocked differs from ref by %v", s, bs, d)
			}
		}
	}
}

func TestBlockedWithMask(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s := 200
	q, k, v := randQKV(rng, 1, s, 16, 16)
	mask := make([]bool, s)
	for i := range mask {
		mask[i] = rng.Intn(4) != 0 // ~25% padding
	}
	want := Ref(q, k, v, mask)
	got := Blocked(q, k, v, mask, 64)
	if d := tensor.MaxAbsDiff(got, want); d > tol {
		t.Errorf("masked blocked differs from ref by %v", d)
	}
}

// Attention output is a convex combination of value rows: each output
// coordinate lies within [min, max] of the corresponding value column.
func TestAttentionConvexity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q, k, v := randQKV(rng, 1, 50, 8, 4)
		out := Blocked(q, k, v, nil, 16)
		for j := 0; j < v.Cols; j++ {
			lo, hi := float32(math.Inf(1)), float32(math.Inf(-1))
			for i := 0; i < v.Rows; i++ {
				x := v.At(i, j)
				if x < lo {
					lo = x
				}
				if x > hi {
					hi = x
				}
			}
			o := out.At(0, j)
			if o < lo-1e-4 || o > hi+1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// With a single cached token, attention returns that token's value exactly.
func TestSingleTokenIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	q, k, v := randQKV(rng, 3, 1, 8, 5)
	out := Ref(q, k, v, nil)
	for i := 0; i < 3; i++ {
		for j := 0; j < 5; j++ {
			if math.Abs(float64(out.At(i, j)-v.At(0, j))) > 1e-6 {
				t.Fatalf("single-token attention not identity at (%d,%d)", i, j)
			}
		}
	}
}

func TestPartialMergeEqualsWhole(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	q, k, v := randQKV(rng, 1, 300, 16, 16)
	whole := partialOverRange(q.Row(0), k, v, nil, 0, 0)
	// Split at arbitrary points and merge.
	for _, cut := range []int{1, 100, 299} {
		a := partialOverRange(q.Row(0), k.SliceRows(0, cut), v.SliceRows(0, cut), nil, 0, 0)
		b := partialOverRange(q.Row(0), k.SliceRows(cut, 300), v.SliceRows(cut, 300), nil, cut, 0)
		a.Merge(b)
		fa, fw := a.Finalize(), whole.Finalize()
		for i := range fa {
			if math.Abs(float64(fa[i]-fw[i])) > tol {
				t.Fatalf("cut=%d: merged partial differs at %d: %v vs %v", cut, i, fa[i], fw[i])
			}
		}
	}
}

func TestPartialMergeEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	q, k, v := randQKV(rng, 1, 10, 8, 8)
	p := partialOverRange(q.Row(0), k, v, nil, 0, 0)
	before := p.Finalize()
	p.Merge(NewPartial(8)) // identity merge
	after := p.Finalize()
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("identity merge changed result")
		}
	}
}

func TestDelayedWritebackExact(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	sOld, sBuf := 256, 16 // spill interval c=16 worth of buffered tokens
	q := tensor.RandMat(rng, 1, 32, 1)
	k := tensor.RandMat(rng, sOld+sBuf, 32, 1)
	v := tensor.RandMat(rng, sOld+sBuf, 32, 1)
	want := Ref(q, k, v, nil)
	got := DelayedWriteback(q,
		k.SliceRows(0, sOld), v.SliceRows(0, sOld),
		k.SliceRows(sOld, sOld+sBuf), v.SliceRows(sOld, sOld+sBuf),
		nil, 128)
	if d := tensor.MaxAbsDiff(got, want); d > tol {
		t.Errorf("delayed writeback differs from full attention by %v", d)
	}
}

func TestDelayedWritebackMultiQueryAndMask(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	sOld, sBuf := 100, 8
	q := tensor.RandMat(rng, 3, 16, 1)
	k := tensor.RandMat(rng, sOld+sBuf, 16, 1)
	v := tensor.RandMat(rng, sOld+sBuf, 16, 1)
	mask := make([]bool, sOld+sBuf)
	for i := range mask {
		mask[i] = i%7 != 0
	}
	want := Ref(q, k, v, mask)
	got := DelayedWriteback(q,
		k.SliceRows(0, sOld), v.SliceRows(0, sOld),
		k.SliceRows(sOld, sOld+sBuf), v.SliceRows(sOld, sOld+sBuf),
		mask, 64)
	if d := tensor.MaxAbsDiff(got, want); d > tol {
		t.Errorf("masked multi-query writeback differs by %v", d)
	}
}

func TestTopKDegeneratesToExact(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	q, k, v := randQKV(rng, 2, 64, 16, 16)
	want := Ref(q, k, v, nil)
	got := TopK(q, k, v, nil, 64)
	if d := tensor.MaxAbsDiff(got, want); d > tol {
		t.Errorf("full top-k differs from exact by %v", d)
	}
}

func TestTopKIsLossy(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	q, k, v := randQKV(rng, 1, 256, 16, 16)
	exact := Ref(q, k, v, nil)
	lossy := TopK(q, k, v, nil, 256/8) // the paper's 1/8 compression
	if d := tensor.MaxAbsDiff(lossy, exact); d == 0 {
		t.Error("1/8 top-k produced bit-identical output on random data; expected loss")
	}
}

func TestGQAMatchesPerQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	dGroup := 5
	q, k, v := randQKV(rng, dGroup, 100, 16, 16)
	want := Ref(q, k, v, nil)
	got := GQA(q, k, v, nil, 128)
	if d := tensor.MaxAbsDiff(got, want); d > tol {
		t.Errorf("GQA differs from per-query reference by %v", d)
	}
}

func TestScoresMatchRefWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	q, k, v := randQKV(rng, 1, 30, 8, 8)
	sc := Scores(q, k)
	p := SoftmaxRef(sc.Row(0))
	// Reconstruct attention from scores and compare with Ref.
	out := make([]float32, v.Cols)
	for i, w := range p {
		for j := range out {
			out[j] += w * v.At(i, j)
		}
	}
	want := Ref(q, k, v, nil)
	for j := range out {
		if math.Abs(float64(out[j]-want.At(0, j))) > tol {
			t.Fatalf("score-reconstructed attention differs at %d", j)
		}
	}
}

func TestSplitHeads(t *testing.T) {
	nX, nKV, err := SplitHeads(1536, 0.5) // bs=16 × 96 heads, α=50%
	if err != nil || nX != 768 || nKV != 768 {
		t.Errorf("SplitHeads(1536, 0.5) = %d, %d, %v", nX, nKV, err)
	}
	if _, _, err := SplitHeads(10, 1.5); err == nil {
		t.Error("alpha > 1 not rejected")
	}
	nX, nKV, _ = SplitHeads(10, 0)
	if nX != 0 || nKV != 10 {
		t.Errorf("alpha=0 split = %d, %d", nX, nKV)
	}
}

func TestXCacheAttendMatchesKVPath(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	s, h, d := 64, 24, 8
	x := tensor.RandMat(rng, s, h, 1).RoundFP16()
	p := Projections{
		Wq: tensor.RandMat(rng, h, d, 0.3).RoundFP16(),
		Wk: tensor.RandMat(rng, h, d, 0.3).RoundFP16(),
		Wv: tensor.RandMat(rng, h, d, 0.3).RoundFP16(),
	}
	_, k, v := ProjectQKV(x, p)
	q := tensor.RandMat(rng, 1, d, 1)
	viaKV := Blocked(q, k, v, nil, 32)
	viaX := XCacheAttend(q, x, p, nil, 32)
	if d := tensor.MaxAbsDiff(viaKV, viaX); d != 0 {
		t.Errorf("X-cache path differs from KV path by %v (must be exact)", d)
	}
}

func TestTopKBlocksKeepAllIsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	q, k, v := randQKV(rng, 2, 128, 16, 16)
	want := Ref(q, k, v, nil)
	got := TopKBlocks(q, k, v, nil, 8, 16) // all 8 blocks kept
	if d := tensor.MaxAbsDiff(got, want); d > tol {
		t.Errorf("full block retention differs from exact by %v", d)
	}
}

func TestTopKBlocksDropsLowScoringBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	d := 16
	q := tensor.RandMat(rng, 1, d, 1)
	// Two blocks: the first leans toward q, the second away from it.
	k := tensor.New(32, d)
	v := tensor.RandMat(rng, 32, d, 1)
	for i := 0; i < 16; i++ {
		copy(k.Row(i), q.Row(0))
	}
	for i := 16; i < 32; i++ {
		for j := 0; j < d; j++ {
			k.Set(i, j, -q.At(0, j))
		}
	}
	// Keeping one block must reproduce attention over the first block only.
	got := TopKBlocks(q, k, v, nil, 1, 16)
	want := Ref(q, k.SliceRows(0, 16), v.SliceRows(0, 16), nil)
	if diff := tensor.MaxAbsDiff(got, want); diff > tol {
		t.Errorf("kept-block attention differs by %v", diff)
	}
}

func TestTopKBlocksRaggedTail(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	// 40 tokens with block size 16: the last block has 8 tokens; block
	// means must not be skewed by the shorter tail.
	q, k, v := randQKV(rng, 1, 40, 8, 8)
	got := TopKBlocks(q, k, v, nil, 3, 16) // keep everything
	want := Ref(q, k, v, nil)
	if d := tensor.MaxAbsDiff(got, want); d > tol {
		t.Errorf("ragged-tail full retention differs by %v", d)
	}
}

func TestTopKBlocksMask(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	q, k, v := randQKV(rng, 1, 64, 8, 8)
	mask := make([]bool, 64)
	for i := range mask {
		mask[i] = i < 48 // last block fully padded
	}
	got := TopKBlocks(q, k, v, mask, 3, 16)
	want := Ref(q, k.SliceRows(0, 48), v.SliceRows(0, 48), nil)
	if d := tensor.MaxAbsDiff(got, want); d > tol {
		t.Errorf("masked block retention differs by %v", d)
	}
}
