package attention

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// topKIndicesSelect is the original O(n·k) repeated-selection implementation,
// retained as the behavioral reference for the bounded-heap rewrite. The
// selection loop is the order contract: descending score, ascending index
// among ties, for every k including the k ≥ len(scores) degenerate case.
func topKIndicesSelect(scores []float32, k int) []int {
	if k > len(scores) {
		k = len(scores)
	}
	if k <= 0 {
		return nil
	}
	keep := make([]int, 0, k)
	used := make([]bool, len(scores))
	for n := 0; n < k; n++ {
		best, bi := float32(math.Inf(-1)), -1
		for i, s := range scores {
			if !used[i] && s > best {
				best, bi = s, i
			}
		}
		used[bi] = true
		keep = append(keep, bi)
	}
	return keep
}

// TestTopKIndicesMatchesSelection: on random score vectors — including
// heavily quantized ones that force score ties — the heap selection must
// reproduce the old repeated-selection output exactly, order included
// (descending score, earliest index among equals).
func TestTopKIndicesMatchesSelection(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(200)
		scores := make([]float32, n)
		quant := rng.Intn(3) == 0 // every third trial: few distinct values
		for i := range scores {
			if quant {
				scores[i] = float32(rng.Intn(4))
			} else {
				scores[i] = float32(rng.NormFloat64())
			}
		}
		for _, k := range []int{0, 1, n / 3, n - 1, n, n + 5} {
			got := topKIndices(scores, k)
			want := topKIndicesSelect(scores, k)
			if len(got) != len(want) {
				t.Fatalf("trial %d n=%d k=%d: %d indices, want %d", trial, n, k, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("trial %d n=%d k=%d: index %d = %d, want %d (got %v want %v)",
						trial, n, k, i, got[i], want[i], got, want)
				}
			}
		}
	}
}

// TestTopKIndicesOrderContract pins the documented order — descending
// score, ascending index among ties — directly (not just vs the reference),
// with special weight on the k ≥ len(scores) fast path, which used to
// return ascending index order in violation of the contract.
func TestTopKIndicesOrderContract(t *testing.T) {
	scores := []float32{1, 3, 2, 3, 0, 2, 3}
	cases := []struct {
		k    int
		want []int
	}{
		{k: 2, want: []int{1, 3}},
		{k: 5, want: []int{1, 3, 6, 2, 5}},
		{k: 7, want: []int{1, 3, 6, 2, 5, 0, 4}},  // k == len: full descending order
		{k: 12, want: []int{1, 3, 6, 2, 5, 0, 4}}, // k > len: same
	}
	for _, c := range cases {
		got := topKIndices(scores, c.k)
		if len(got) != len(c.want) {
			t.Fatalf("k=%d: got %v, want %v", c.k, got, c.want)
		}
		for i := range c.want {
			if got[i] != c.want[i] {
				t.Fatalf("k=%d: got %v, want %v", c.k, got, c.want)
			}
		}
	}
	// All-ties input: contract degenerates to ascending index order.
	ties := []float32{5, 5, 5, 5}
	got := topKIndices(ties, 99)
	for i, g := range got {
		if g != i {
			t.Fatalf("all-ties order: got %v", got)
		}
	}
}

// TestAddBlockMatchesAddToken: folding a block at once (one accumulator
// rescale) must agree with token-by-token folding within FP32 tolerance,
// across block splits and score magnitudes.
func TestAddBlockMatchesAddToken(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 50; trial++ {
		s, dv := 1+rng.Intn(300), 1+rng.Intn(32)
		scores := make([]float32, s)
		for i := range scores {
			scores[i] = float32(rng.NormFloat64() * 8)
		}
		v := tensor.RandMat(rng, s, dv, 1)

		tok := NewPartial(dv)
		for i, sc := range scores {
			tok.AddToken(sc, v.Row(i))
		}
		blk := NewPartial(dv)
		bs := 1 + rng.Intn(64)
		for lo := 0; lo < s; lo += bs {
			hi := lo + bs
			if hi > s {
				hi = s
			}
			blk.AddBlock(scores[lo:hi], v, lo)
		}
		ft, fb := tok.Finalize(), blk.Finalize()
		for i := range ft {
			if d := math.Abs(float64(ft[i]) - float64(fb[i])); d > tol {
				t.Fatalf("trial %d s=%d bs=%d: output %d differs by %v", trial, s, bs, i, d)
			}
		}
	}
}

// TestAddBlockEmptyAndReset: an empty block is the identity, and Reset
// returns a used partial to the identity.
func TestAddBlockEmptyAndReset(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	v := tensor.RandMat(rng, 4, 8, 1)
	p := NewPartial(8)
	p.AddBlock(nil, v, 0)
	if !math.IsInf(p.Stats.M, -1) || p.Stats.Z != 0 {
		t.Fatalf("empty block changed stats: %+v", p.Stats)
	}
	p.AddBlock([]float32{1, 2}, v, 0)
	p.Reset()
	if !math.IsInf(p.Stats.M, -1) || p.Stats.Z != 0 {
		t.Fatalf("Reset left stats %+v", p.Stats)
	}
	for i, a := range p.Acc {
		if a != 0 {
			t.Fatalf("Reset left Acc[%d] = %v", i, a)
		}
	}
}

// TestFinalizeIntoMatchesFinalize covers the allocation-free finalize path.
func TestFinalizeIntoMatchesFinalize(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	v := tensor.RandMat(rng, 10, 6, 1)
	p := NewPartial(6)
	for i := 0; i < 10; i++ {
		p.AddToken(float32(rng.NormFloat64()), v.Row(i))
	}
	dst := []float32{9, 9, 9, 9, 9, 9}
	p.FinalizeInto(dst)
	want := p.Finalize()
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("FinalizeInto[%d] = %v, Finalize = %v", i, dst[i], want[i])
		}
	}
	// Zero-statistics partial must clear dst, not keep stale values.
	empty := NewPartial(6)
	empty.FinalizeInto(dst)
	for i := range dst {
		if dst[i] != 0 {
			t.Fatalf("empty FinalizeInto left dst[%d] = %v", i, dst[i])
		}
	}
}
