package attention

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/tensor"
)

// withChunkTokens pins the K/V chunk span so small test inputs exercise
// many-chunk dataflows (chunk partials + tree merge), restoring adaptive
// sizing afterwards. The pin goes through tensor.SetChunkTokens — an atomic,
// so concurrent parallel tests under -race never see a torn write. The
// partition is part of the numeric contract, so every comparison inside body
// sees the same value.
func withChunkTokens(t *testing.T, n int, body func()) {
	t.Helper()
	tensor.SetChunkTokens(n)
	defer tensor.SetChunkTokens(0)
	body()
}

// matsEqual reports bit-identity (reflect.DeepEqual on the backing data).
func matsEqual(a, b tensor.Mat) bool {
	return a.Rows == b.Rows && a.Cols == b.Cols && reflect.DeepEqual(a.Data, b.Data)
}

var workerCounts = []int{1, 2, 3, 8}

// TestBlockedWorkersBitIdentical: for shapes spanning prefill (many rows),
// decode (one row, long context), ragged tails and tiny blocks, every worker
// count must produce bit-identical output — the fixed-shape tree merge and
// index-owned partials make the result a pure function of shape.
func TestBlockedWorkersBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	shapes := []struct{ rows, s, d, bs int }{
		{1, 1000, 32, 64},  // decode: 1 row, many chunks
		{1, 37, 16, 8},     // ragged tail
		{7, 300, 24, 32},   // prefill: rows × chunks grid
		{16, 64, 16, 128},  // blockSize > context
		{3, 513, 8, 1},     // blockSize 1
		{2, 4096, 16, 128}, // above minParallelWork with default chunks
	}
	withChunkTokens(t, 128, func() {
		for _, sh := range shapes {
			q := tensor.RandMat(rng, sh.rows, sh.d, 1)
			k := tensor.RandMat(rng, sh.s, sh.d, 1)
			v := tensor.RandMat(rng, sh.s, sh.d, 1)
			var mask []bool
			if sh.s > 10 {
				mask = make([]bool, sh.s)
				for i := range mask {
					mask[i] = rng.Intn(8) != 0
				}
			}
			base := BlockedWorkers(q, k, v, mask, sh.bs, 1)
			for _, w := range workerCounts[1:] {
				got := BlockedWorkers(q, k, v, mask, sh.bs, w)
				if !matsEqual(base, got) {
					t.Fatalf("shape %+v: workers=%d differs from workers=1", sh, w)
				}
			}
			// Sanity anchor: parallel output still matches the exact reference.
			ref := Ref(q, k, v, mask)
			if d := tensor.MaxAbsDiff(base, ref); d > tol {
				t.Fatalf("shape %+v: parallel differs from Ref by %v", sh, d)
			}
		}
	})
}

// TestGQAWorkersBitIdenticalToBlocked: the shared-K/V-traversal GQA dataflow
// must be bitwise equal to per-head BlockedWorkers (same blocks, same fold
// order, same tree) for every worker count.
func TestGQAWorkersBitIdenticalToBlocked(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	withChunkTokens(t, 96, func() {
		for _, sh := range []struct{ rows, s, d, bs int }{
			{4, 500, 16, 32},
			{8, 63, 8, 16},
			{1, 700, 32, 64},
		} {
			q := tensor.RandMat(rng, sh.rows, sh.d, 1)
			k := tensor.RandMat(rng, sh.s, sh.d, 1)
			v := tensor.RandMat(rng, sh.s, sh.d, 1)
			blocked := BlockedWorkers(q, k, v, nil, sh.bs, 1)
			for _, w := range workerCounts {
				got := GQAWorkers(q, k, v, nil, sh.bs, w)
				if !matsEqual(blocked, got) {
					t.Fatalf("shape %+v: GQA workers=%d differs from Blocked", sh, w)
				}
			}
		}
	})
}

// TestTopKBlocksWorkersBitIdentical covers both parallel dataflows: the
// multi-row row shard and the single-row chunked score+pool phase.
func TestTopKBlocksWorkersBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	withChunkTokens(t, 64, func() {
		for _, sh := range []struct{ rows, s, d, keep, bs int }{
			{1, 800, 16, 5, 16}, // decode: chunked phase 1
			{1, 801, 16, 3, 16}, // ragged tail
			{6, 400, 16, 4, 32}, // row shard
			{3, 100, 8, 99, 16}, // keep-everything degenerate
		} {
			q := tensor.RandMat(rng, sh.rows, sh.d, 1)
			k := tensor.RandMat(rng, sh.s, sh.d, 1)
			v := tensor.RandMat(rng, sh.s, sh.d, 1)
			base := TopKBlocksWorkers(q, k, v, nil, sh.keep, sh.bs, 1)
			for _, w := range workerCounts[1:] {
				got := TopKBlocksWorkers(q, k, v, nil, sh.keep, sh.bs, w)
				if !matsEqual(base, got) {
					t.Fatalf("shape %+v: workers=%d differs from workers=1", sh, w)
				}
			}
		}
	})
}

// TestChunkPartitionPureFunctionOfShape: the chunk grid may depend on shape
// and the cache-budget settings only — never on worker count — and must
// tile the token range exactly for every (headDim, blockSize) pair.
func TestChunkPartitionPureFunctionOfShape(t *testing.T) {
	for _, d := range []int{1, 8, 64, 128, 4096} {
		for _, bs := range []int{1, 16, 128, 4096, 100000} {
			span := ChunkSpan(d, bs)
			if span < bs || span%bs != 0 {
				t.Fatalf("headDim %d blockSize %d: span %d not a positive multiple", d, bs, span)
			}
			for _, kRows := range []int{1, bs, bs + 1, 3*span - 1, 3 * span} {
				n := chunkCountFor(kRows, span)
				if (n-1)*span >= kRows || n*span < kRows {
					t.Fatalf("headDim %d blockSize %d kRows %d: %d chunks of span %d do not tile", d, bs, kRows, n, span)
				}
			}
		}
	}
}

// TestChunkSpanTracksCacheBudget: the adaptive span scales with the budget
// and inversely with head dimension, stays inside the clamp, and yields to
// an explicit pin.
func TestChunkSpanTracksCacheBudget(t *testing.T) {
	defer tensor.SetCacheBudget(0)
	defer tensor.SetChunkTokens(0)

	tensor.SetCacheBudget(1 << 20) // default: 1 MiB
	if got := ChunkSpan(64, 128); got != 2048 {
		t.Fatalf("1 MiB / d=64: span %d, want 2048 (budget/(2·64·4) rounded to 128)", got)
	}
	if got := ChunkSpan(128, 128); got != 1024 {
		t.Fatalf("1 MiB / d=128: span %d, want 1024", got)
	}
	tensor.SetCacheBudget(4 << 20)
	if got := ChunkSpan(64, 128); got != 8192 {
		t.Fatalf("4 MiB / d=64: span %d, want 8192", got)
	}
	// Clamp floor: a tiny budget cannot shrink the span below minChunkTokens.
	tensor.SetCacheBudget(1024)
	if got := ChunkSpan(64, 128); got != minChunkTokens {
		t.Fatalf("1 KiB budget: span %d, want clamp floor %d", got, minChunkTokens)
	}
	// Clamp ceiling: a huge budget cannot blow past maxChunkTokens.
	tensor.SetCacheBudget(1 << 30)
	if got := ChunkSpan(1, 128); got != maxChunkTokens {
		t.Fatalf("1 GiB budget: span %d, want clamp ceiling %d", got, maxChunkTokens)
	}
	// An explicit pin bypasses the budget entirely.
	tensor.SetChunkTokens(600)
	if got := ChunkSpan(64, 128); got != 512 {
		t.Fatalf("pin 600: span %d, want 512 (block-aligned)", got)
	}
}

// TestTreeMergeFixedShape: the tree reduction must equal a left-to-right
// serial fold of the same per-chunk partials... not bitwise (that is exactly
// the point of fixing the shape), but within FP32 tolerance — and repeated
// runs over the same parts layout must be bitwise stable.
func TestTreeMergeMatchesSerialFold(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for _, nChunks := range []int{1, 2, 3, 5, 8, 13} {
		s, dv := nChunks*20, 8
		k := tensor.RandMat(rng, s, dv, 1)
		v := tensor.RandMat(rng, s, dv, 1)
		q := tensor.RandMat(rng, 1, dv, 1)
		build := func() []Partial {
			parts := make([]Partial, nChunks)
			for c := range parts {
				parts[c] = NewPartial(dv)
				blk := make([]float32, 20)
				chunkPartial(&parts[c], q.Row(0), k, v, nil, 0.25, 20, c*20, (c+1)*20, blk)
			}
			return parts
		}
		serial := build()
		whole := &serial[0]
		for i := 1; i < len(serial); i++ {
			whole.Merge(serial[i])
		}
		tree1 := treeMerge(build())
		tree2 := treeMerge(build())
		if !reflect.DeepEqual(tree1.Acc, tree2.Acc) || tree1.Stats != tree2.Stats {
			t.Fatalf("nChunks=%d: tree merge not deterministic", nChunks)
		}
		f1, f2 := whole.Finalize(), tree1.Finalize()
		for i := range f1 {
			if d := math.Abs(float64(f1[i]) - float64(f2[i])); d > tol {
				t.Fatalf("nChunks=%d: tree vs serial fold differ at %d by %v", nChunks, i, d)
			}
		}
	}
}

// FuzzParallelBlockedEquivalence fuzzes shapes, block sizes and chunk
// lengths, asserting multi-worker Blocked and GQA stay bit-identical to
// their one-worker runs.
func FuzzParallelBlockedEquivalence(f *testing.F) {
	f.Add(int64(1), 1, 300, 32, 40)
	f.Add(int64(2), 5, 100, 16, 16)
	f.Add(int64(3), 2, 65, 1, 7)
	f.Fuzz(func(t *testing.T, seed int64, rows, s, bs, chunk int) {
		if rows < 1 || rows > 8 || s < 1 || s > 1024 || bs < 1 || bs > 256 || chunk < 1 || chunk > 512 {
			return
		}
		rng := rand.New(rand.NewSource(seed))
		q := tensor.RandMat(rng, rows, 16, 1)
		k := tensor.RandMat(rng, s, 16, 1)
		v := tensor.RandMat(rng, s, 16, 1)
		tensor.SetChunkTokens(chunk)
		defer tensor.SetChunkTokens(0)
		base := BlockedWorkers(q, k, v, nil, bs, 1)
		gbase := GQAWorkers(q, k, v, nil, bs, 1)
		for _, w := range []int{2, 3, 8} {
			if got := BlockedWorkers(q, k, v, nil, bs, w); !matsEqual(base, got) {
				t.Fatalf("rows=%d s=%d bs=%d chunk=%d: Blocked workers=%d diverged", rows, s, bs, chunk, w)
			}
			if got := GQAWorkers(q, k, v, nil, bs, w); !matsEqual(gbase, got) {
				t.Fatalf("rows=%d s=%d bs=%d chunk=%d: GQA workers=%d diverged", rows, s, bs, chunk, w)
			}
		}
		if !matsEqual(base, gbase) {
			t.Fatalf("rows=%d s=%d bs=%d chunk=%d: GQA diverged from Blocked", rows, s, bs, chunk)
		}
	})
}
