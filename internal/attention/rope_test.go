package attention

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

func TestRoPEValidation(t *testing.T) {
	if _, err := NewRoPE(7, 10000); err == nil {
		t.Error("odd dim accepted")
	}
	if _, err := NewRoPE(0, 10000); err == nil {
		t.Error("zero dim accepted")
	}
	if _, err := NewRoPE(8, 1); err == nil {
		t.Error("base 1 accepted")
	}
}

// Rotation preserves the vector norm (it is a block-diagonal rotation).
func TestRoPENormPreserving(t *testing.T) {
	r, err := NewRoPE(16, 10000)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for pos := 0; pos < 50; pos += 7 {
		v := make([]float32, 16)
		for i := range v {
			v[i] = float32(rng.NormFloat64())
		}
		var before float64
		for _, x := range v {
			before += float64(x) * float64(x)
		}
		r.Apply(v, pos)
		var after float64
		for _, x := range v {
			after += float64(x) * float64(x)
		}
		if math.Abs(before-after) > 1e-4*before {
			t.Errorf("pos %d: norm changed %v -> %v", pos, before, after)
		}
	}
}

// Position 0 is the identity rotation.
func TestRoPEPositionZeroIdentity(t *testing.T) {
	r, _ := NewRoPE(8, 10000)
	v := []float32{1, 2, 3, 4, 5, 6, 7, 8}
	want := append([]float32(nil), v...)
	r.Apply(v, 0)
	for i := range v {
		if v[i] != want[i] {
			t.Fatalf("position 0 not identity at %d", i)
		}
	}
}

// The defining property: q·k after RoPE depends only on the relative
// position — rotating both by the same offset leaves the score unchanged.
func TestRoPERelativePositionInvariance(t *testing.T) {
	r, _ := NewRoPE(32, 10000)
	rng := rand.New(rand.NewSource(2))
	q := make([]float32, 32)
	k := make([]float32, 32)
	for i := range q {
		q[i] = float32(rng.NormFloat64())
		k[i] = float32(rng.NormFloat64())
	}
	score := func(pq, pk int) float64 {
		qq := append([]float32(nil), q...)
		kk := append([]float32(nil), k...)
		r.Apply(qq, pq)
		r.Apply(kk, pk)
		return float64(tensor.Dot(qq, kk))
	}
	base := score(10, 3)
	for _, off := range []int{1, 17, 100} {
		if got := score(10+off, 3+off); math.Abs(got-base) > 1e-3 {
			t.Errorf("offset %d: score %v vs %v (relative invariance violated)", off, got, base)
		}
	}
}

// X-cache regeneration re-applies RoPE at the original token positions and
// must reproduce the stored rotated keys exactly.
func TestRoPERegenerationMatchesStored(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d, s, h := 16, 40, 32
	r, _ := NewRoPE(d, 10000)
	x := tensor.RandMat(rng, s, h, 1).RoundFP16()
	wk := tensor.RandMat(rng, h, d, 0.3).RoundFP16()

	// Stored path: project then rotate per position, quantize to FP16.
	stored := tensor.MatMul(x, wk)
	for i := 0; i < s; i++ {
		r.Apply(stored.Row(i), i)
	}
	stored.RoundFP16()

	// Regeneration path (same arithmetic, fresh RoPE instance to prove the
	// tables are deterministic).
	r2, _ := NewRoPE(d, 10000)
	regen := tensor.MatMul(x, wk)
	for i := 0; i < s; i++ {
		r2.Apply(regen.Row(i), i)
	}
	regen.RoundFP16()

	if diff := tensor.MaxAbsDiff(stored, regen); diff != 0 {
		t.Errorf("regenerated RoPE keys differ from stored by %v (must be exact)", diff)
	}
}

func TestRoPETableCaching(t *testing.T) {
	r, _ := NewRoPE(8, 10000)
	v := make([]float32, 8)
	r.Apply(v, 9)
	if got := r.CachedPositions(); got != 10 {
		t.Errorf("cached positions = %d, want 10", got)
	}
	r.Apply(v, 3) // must not shrink or extend
	if got := r.CachedPositions(); got != 10 {
		t.Errorf("cached positions after reuse = %d, want 10", got)
	}
}

func TestRoPEApplyPanics(t *testing.T) {
	r, _ := NewRoPE(8, 10000)
	defer func() {
		if recover() == nil {
			t.Error("wrong-length vector accepted")
		}
	}()
	r.Apply(make([]float32, 4), 0)
}
