package attention

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// FuzzTwoPassSoftmax checks the Algorithm 1 implementation against the
// three-pass reference on fuzzed shapes and block sizes.
func FuzzTwoPassSoftmax(f *testing.F) {
	f.Add(int64(1), 64, 16)
	f.Add(int64(2), 1, 1)
	f.Add(int64(3), 257, 128)
	f.Fuzz(func(t *testing.T, seed int64, n, bs int) {
		if n < 1 || n > 2048 || bs < 1 || bs > 4096 {
			return
		}
		rng := rand.New(rand.NewSource(seed))
		x := make([]float32, n)
		for i := range x {
			x[i] = float32(rng.NormFloat64() * 10)
		}
		got := SoftmaxTwoPass(x, nil, bs)
		want := SoftmaxRef(x)
		var sum float64
		for i := range got {
			if d := math.Abs(float64(got[i]) - float64(want[i])); d > 1e-5 {
				t.Fatalf("n=%d bs=%d: element %d differs by %v", n, bs, i, d)
			}
			sum += float64(got[i])
		}
		if math.Abs(sum-1) > 1e-4 {
			t.Fatalf("softmax sums to %v", sum)
		}
	})
}

// FuzzPartialMerge checks that splitting attention at any cut point and
// merging partials reproduces whole-range attention.
func FuzzPartialMerge(f *testing.F) {
	f.Add(int64(1), 100, 37)
	f.Add(int64(2), 2, 1)
	f.Fuzz(func(t *testing.T, seed int64, s, cut int) {
		if s < 2 || s > 512 || cut < 1 || cut >= s {
			return
		}
		rng := rand.New(rand.NewSource(seed))
		q := tensor.RandMat(rng, 1, 16, 1)
		k := tensor.RandMat(rng, s, 16, 1)
		v := tensor.RandMat(rng, s, 16, 1)
		whole := partialOverRange(q.Row(0), k, v, nil, 0, 0)
		a := partialOverRange(q.Row(0), k.SliceRows(0, cut), v.SliceRows(0, cut), nil, 0, 0)
		b := partialOverRange(q.Row(0), k.SliceRows(cut, s), v.SliceRows(cut, s), nil, cut, 0)
		a.Merge(b)
		fa, fw := a.Finalize(), whole.Finalize()
		for i := range fa {
			if d := math.Abs(float64(fa[i]) - float64(fw[i])); d > 1e-3 {
				t.Fatalf("s=%d cut=%d: merged differs at %d by %v", s, cut, i, d)
			}
		}
	})
}
