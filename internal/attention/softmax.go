// Package attention implements the attention algorithms of the paper's
// functional substrate: reference (3-pass) softmax attention, the HILOS
// accelerator's two-pass online softmax (Algorithm 1), blocked attention
// matching the accelerator dataflow, grouped-query attention, X-cache
// regeneration, the delayed-writeback partial-score merge, and a lossy top-k
// attention used as an InstAttention proxy (Fig. 18c).
package attention

import (
	"math"
)

// MaskValue is the constant assigned to padding positions before softmax
// (§5.4: "a masking module assigns a constant value of −10⁴ to padding
// tokens").
const MaskValue float32 = -1e4

// SoftmaxRef computes softmax(x) with the standard numerically stable
// three-pass method (max, sum of exponentials, normalize). The result is
// written to a new slice.
func SoftmaxRef(x []float32) []float32 {
	out := make([]float32, len(x))
	if len(x) == 0 {
		return out
	}
	m := x[0]
	for _, v := range x[1:] {
		if v > m {
			m = v
		}
	}
	var z float64
	for _, v := range x {
		z += math.Exp(float64(v - m))
	}
	for i, v := range x {
		out[i] = float32(math.Exp(float64(v-m)) / z)
	}
	return out
}

// Stats holds the running softmax statistics maintained by the streaming
// update unit (Algorithm 1 lines 5-9): the running maximum m and the running
// rescaled sum of exponentials Z.
type Stats struct {
	M float64 // running maximum
	Z float64 // running sum of exp(x - M)
}

// NewStats returns the identity statistics (M = -Inf, Z = 0).
func NewStats() Stats { return Stats{M: math.Inf(-1), Z: 0} }

// UpdateBlock folds a block's local statistics (local max mB, local sum sB of
// exp(x - mB)) into the running statistics, exactly as the hardware streaming
// update unit does.
func (s *Stats) UpdateBlock(mB, sB float64) {
	switch {
	case math.IsInf(mB, -1):
		// Fully masked block contributes nothing.
	case mB > s.M:
		s.Z = s.Z*math.Exp(s.M-mB) + sB
		s.M = mB
	default:
		s.Z += sB * math.Exp(mB-s.M)
	}
}

// Merge folds another Stats value into s; used by the delayed-writeback path
// to combine storage-side and host-side partial attention.
func (s *Stats) Merge(o Stats) { s.UpdateBlock(o.M, o.Z) }

// BlockStats computes the local maximum and local sum of exponentials of a
// block (Algorithm 1 lines 3-4). Masked elements (mask[i]==false) are
// replaced with MaskValue before the reduction, matching the hardware MASK
// module. mask may be nil, meaning all valid.
func BlockStats(block []float32, mask []bool) (mB, sB float64) {
	mB = math.Inf(-1)
	for i, v := range block {
		x := float64(applyMask(v, mask, i))
		if x > mB {
			mB = x
		}
	}
	if math.IsInf(mB, -1) {
		return mB, 0
	}
	for i, v := range block {
		x := float64(applyMask(v, mask, i))
		sB += math.Exp(x - mB)
	}
	return mB, sB
}

func applyMask(v float32, mask []bool, i int) float32 {
	if mask != nil && !mask[i] {
		return MaskValue
	}
	return v
}

// SoftmaxTwoPass computes softmax(x) with the accelerator's two-pass method
// (Algorithm 1): a first streaming pass over blocks of blockSize elements
// computing global statistics, and a second element-wise normalization pass.
// mask may be nil.
func SoftmaxTwoPass(x []float32, mask []bool, blockSize int) []float32 {
	if blockSize <= 0 {
		blockSize = 128
	}
	st := NewStats()
	for lo := 0; lo < len(x); lo += blockSize {
		hi := lo + blockSize
		if hi > len(x) {
			hi = len(x)
		}
		var bm []bool
		if mask != nil {
			bm = mask[lo:hi]
		}
		mB, sB := BlockStats(x[lo:hi], bm)
		st.UpdateBlock(mB, sB)
	}
	out := make([]float32, len(x))
	for i, v := range x {
		xv := float64(applyMask(v, mask, i))
		out[i] = float32(math.Exp(xv-st.M) / st.Z)
	}
	return out
}
