// Package engine defines the pluggable inference-engine abstraction the
// public API is built on: an Engine is one simulated inference system bound
// to a concrete hardware point, and a process-wide registry maps System
// identifiers to self-registering engine factories. Adding a backend (an
// InstInfer-style in-storage attention engine, a new baseline, a future CSD
// generation) is one file that calls Register from init — no switch in the
// facade to edit.
package engine

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/device"
	"repro/internal/pipeline"
)

// System identifies a simulated inference system ("flex-ssd", "hilos", ...).
type System string

// AlphaAuto selects the §4.2 cache scheduler's closed-form α at run time.
// Any negative Alpha in a Config means automatic selection.
const AlphaAuto = -1.0

// Engine is one inference system bound to a testbed and device
// configuration. Engines are immutable after construction and safe for
// concurrent use — the multi-pipeline backlog scheduler calls Run from
// several goroutines.
type Engine interface {
	// Name returns the registry identifier this engine resolves from.
	Name() System
	// Describe returns a one-line human-readable configuration summary.
	Describe() string
	// Run simulates one batched request and returns its report. Infeasible
	// configurations are reported in Report.OOM, never as a panic.
	Run(pipeline.Request) pipeline.Report
}

// Config is the hardware point an engine factory binds to. The zero value
// is not usable (the testbed must validate); New normalizes the remaining
// fields to the paper defaults.
type Config struct {
	// Testbed is the Table 1 hardware description.
	Testbed device.Testbed
	// Devices is the SmartSSD count for NSP engines (≤0 = default 8).
	// Baselines with fixed storage topologies ignore it.
	Devices int
	// Alpha is the X-cache ratio in [0,1]; negative = automatic (§4.2).
	Alpha float64
	// SpillInterval is the delayed-writeback spill interval c (≤0 = 16).
	SpillInterval int
}

func (c Config) normalize() Config {
	if c.Devices <= 0 {
		c.Devices = 8
	}
	if c.SpillInterval <= 0 {
		c.SpillInterval = 16
	}
	if c.Alpha < 0 {
		c.Alpha = AlphaAuto
	}
	return c
}

// Validate reports unusable configurations.
func (c Config) Validate() error {
	if err := c.Testbed.Validate(); err != nil {
		return err
	}
	if c.Alpha > 1 {
		return fmt.Errorf("engine: X-cache ratio α must be in [0,1] or negative for automatic, got %g", c.Alpha)
	}
	return nil
}

// Factory constructs an Engine for a normalized, validated Config.
type Factory func(Config) (Engine, error)

// Spec describes one registrable system.
type Spec struct {
	// System is the registry identifier.
	System System
	// Rank orders Systems() output; the paper's Fig. 10 systems use ranks
	// 10-90. Rank 0 appends after all ranked systems in registration order.
	Rank int
	// Describe is the one-line summary reported by Engine.Describe.
	Describe string
	// New builds the engine.
	New Factory
}

var (
	mu       sync.RWMutex
	registry = map[System]Spec{} // guarded by mu
)

// Register adds a system to the registry. It panics on an empty identifier,
// a nil factory, or a duplicate registration — all programmer errors in an
// init function, mirroring database/sql.Register.
func Register(s Spec) {
	mu.Lock()
	defer mu.Unlock()
	if s.System == "" {
		panic("engine: Register with empty system identifier")
	}
	if s.New == nil {
		panic(fmt.Sprintf("engine: Register(%q) with nil factory", s.System))
	}
	if _, dup := registry[s.System]; dup {
		panic(fmt.Sprintf("engine: Register(%q) called twice", s.System))
	}
	if s.Rank == 0 {
		s.Rank = 1000 + len(registry)
	}
	registry[s.System] = s
}

// Lookup returns the registered spec for a system.
func Lookup(sys System) (Spec, bool) {
	mu.RLock()
	defer mu.RUnlock()
	s, ok := registry[sys]
	return s, ok
}

// New resolves a system through the registry and constructs its engine for
// the given configuration.
func New(sys System, cfg Config) (Engine, error) {
	spec, ok := Lookup(sys)
	if !ok {
		return nil, fmt.Errorf("engine: unknown system %q (known: %v)", sys, Systems())
	}
	cfg = cfg.normalize()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return spec.New(cfg)
}

// Systems returns every registered identifier in rank order (ties break by
// name), so the paper's Fig. 10 ordering is stable regardless of package
// initialization order.
func Systems() []System {
	mu.RLock()
	specs := make([]Spec, 0, len(registry))
	for _, s := range registry {
		specs = append(specs, s)
	}
	mu.RUnlock()
	sort.Slice(specs, func(i, j int) bool {
		if specs[i].Rank != specs[j].Rank {
			return specs[i].Rank < specs[j].Rank
		}
		return specs[i].System < specs[j].System
	})
	out := make([]System, len(specs))
	for i, s := range specs {
		out[i] = s.System
	}
	return out
}
