package engine

import (
	"strings"
	"testing"

	"repro/internal/device"
	"repro/internal/pipeline"
)

type fakeEngine struct {
	sys System
	cfg Config
}

func (f fakeEngine) Name() System     { return f.sys }
func (f fakeEngine) Describe() string { return "fake engine for registry tests" }
func (f fakeEngine) Run(pipeline.Request) pipeline.Report {
	return pipeline.Report{System: string(f.sys), Batch: 1, StepSec: 1}
}

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", name)
		}
	}()
	fn()
}

func TestRegisterValidation(t *testing.T) {
	mustPanic(t, "empty system", func() {
		Register(Spec{System: "", New: func(Config) (Engine, error) { return nil, nil }})
	})
	mustPanic(t, "nil factory", func() {
		Register(Spec{System: "test-nil-factory"})
	})
}

func TestRegisterDuplicatePanics(t *testing.T) {
	spec := Spec{
		System:   "test-dup",
		Describe: "duplicate registration probe",
		New:      func(cfg Config) (Engine, error) { return fakeEngine{sys: "test-dup", cfg: cfg}, nil },
	}
	Register(spec)
	mustPanic(t, "duplicate registration", func() { Register(spec) })
}

func TestNewUnknownSystem(t *testing.T) {
	_, err := New("no-such-system", Config{Testbed: device.DefaultTestbed()})
	if err == nil || !strings.Contains(err.Error(), "unknown system") {
		t.Fatalf("unknown system resolved: %v", err)
	}
}

func TestNewNormalizesAndValidates(t *testing.T) {
	var got Config
	Register(Spec{
		System:   "test-probe",
		Describe: "config normalization probe",
		New: func(cfg Config) (Engine, error) {
			got = cfg
			return fakeEngine{sys: "test-probe", cfg: cfg}, nil
		},
	})

	eng, err := New("test-probe", Config{Testbed: device.DefaultTestbed(), Alpha: -0.25})
	if err != nil {
		t.Fatal(err)
	}
	if got.Devices != 8 || got.SpillInterval != 16 || got.Alpha != AlphaAuto {
		t.Errorf("config not normalized to paper defaults: %+v", got)
	}
	if eng.Name() != "test-probe" || eng.Describe() == "" {
		t.Errorf("engine identity wrong: %q / %q", eng.Name(), eng.Describe())
	}

	// Invalid testbed and out-of-range α are rejected before the factory runs.
	if _, err := New("test-probe", Config{}); err == nil {
		t.Error("zero-value testbed accepted")
	}
	if _, err := New("test-probe", Config{Testbed: device.DefaultTestbed(), Alpha: 1.5}); err == nil {
		t.Error("α > 1 accepted")
	}
}

func TestSystemsOrdering(t *testing.T) {
	Register(Spec{
		System: "test-ranked", Rank: 5, Describe: "ranked probe",
		New: func(cfg Config) (Engine, error) { return fakeEngine{sys: "test-ranked", cfg: cfg}, nil },
	})
	all := Systems()
	if len(all) == 0 || all[0] != "test-ranked" {
		t.Errorf("rank 5 system not first: %v", all)
	}
	// Unranked registrations (rank 0) append after every ranked system.
	if len(all) > 1 {
		last := all[len(all)-1]
		if spec, ok := Lookup(last); !ok || spec.Rank < 1000 {
			t.Errorf("last system %q should be an unranked append, rank %d", last, spec.Rank)
		}
	}
}
