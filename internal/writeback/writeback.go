// Package writeback implements the delayed KV cache writeback manager of
// §4.3: newly generated KV entries are staged in host-memory buffers and
// spilled to storage in page-aligned chunks every SpillInterval decoding
// steps, keeping storage write latency off the critical path and avoiding
// sub-page write amplification.
package writeback

import "fmt"

// Config parameterizes the manager for one model/batch configuration.
type Config struct {
	SpillInterval int   // c: decoding steps between spills (paper default 16)
	Rows          int   // independent append streams: batch × KV heads × layers
	EntryBytes    int64 // bytes appended per row per step (d×2 per tensor ×2 for K+V)
	PageBytes     int64 // SSD NAND page size (4 KiB)
}

// Validate reports invalid configurations.
func (c Config) Validate() error {
	if c.SpillInterval < 1 || c.Rows < 1 || c.EntryBytes < 1 || c.PageBytes < 1 {
		return fmt.Errorf("writeback: non-positive config %+v", c)
	}
	return nil
}

// Manager tracks buffered tokens and accumulates write statistics. The zero
// value is not usable; construct with New.
type Manager struct {
	cfg      Config
	buffered int // decoding steps currently buffered

	logicalBytes  int64 // application bytes destined for storage
	physicalBytes int64 // bytes actually written after page rounding
	spills        int   // spill operations issued
}

// New returns a manager for the given configuration.
func New(cfg Config) (*Manager, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Manager{cfg: cfg}, nil
}

// Spill describes one flush of the host-side buffers to storage.
type Spill struct {
	Steps         int   // buffered decoding steps flushed
	LogicalBytes  int64 // useful bytes across all rows
	PhysicalBytes int64 // after rounding each row's chunk up to a page
	ChunkBytes    int64 // contiguous bytes appended per row
}

// Append records one decoding step's new KV entries. When the buffer reaches
// the spill interval it returns the spill operation to issue (asynchronously,
// off the critical path) and true; otherwise it returns false.
func (m *Manager) Append() (Spill, bool) {
	m.buffered++
	if m.buffered < m.cfg.SpillInterval {
		return Spill{}, false
	}
	return m.flush(), true
}

// Flush forces a spill of whatever is buffered (e.g. at sequence end).
// It reports false if nothing was buffered.
func (m *Manager) Flush() (Spill, bool) {
	if m.buffered == 0 {
		return Spill{}, false
	}
	return m.flush(), true
}

func (m *Manager) flush() Spill {
	steps := m.buffered
	m.buffered = 0
	chunk := int64(steps) * m.cfg.EntryBytes
	phys := roundUp(chunk, m.cfg.PageBytes)
	s := Spill{
		Steps:         steps,
		LogicalBytes:  chunk * int64(m.cfg.Rows),
		PhysicalBytes: phys * int64(m.cfg.Rows),
		ChunkBytes:    chunk,
	}
	m.logicalBytes += s.LogicalBytes
	m.physicalBytes += s.PhysicalBytes
	m.spills++
	return s
}

func roundUp(v, to int64) int64 { return (v + to - 1) / to * to }

// Buffered returns the number of decoding steps currently staged in host
// memory.
func (m *Manager) Buffered() int { return m.buffered }

// BufferBytes returns the host-memory footprint of the staged entries.
func (m *Manager) BufferBytes() int64 {
	return int64(m.buffered) * m.cfg.EntryBytes * int64(m.cfg.Rows)
}

// Stats returns cumulative logical bytes, physical bytes and spill count.
func (m *Manager) Stats() (logical, physical int64, spills int) {
	return m.logicalBytes, m.physicalBytes, m.spills
}

// WAF returns the cumulative write amplification factor (physical/logical);
// 1 when nothing has been written.
func (m *Manager) WAF() float64 {
	if m.logicalBytes == 0 {
		return 1
	}
	return float64(m.physicalBytes) / float64(m.logicalBytes)
}

// NaiveWAF returns the write amplification of the §4.3 naive approach that
// commits every per-step entry directly: each EntryBytes write occupies at
// least one page.
func (c Config) NaiveWAF() float64 {
	phys := roundUp(c.EntryBytes, c.PageBytes)
	return float64(phys) / float64(c.EntryBytes)
}

// SteadyStateWAF returns the write amplification when spilling every
// SpillInterval steps, without running a simulation.
func (c Config) SteadyStateWAF() float64 {
	chunk := int64(c.SpillInterval) * c.EntryBytes
	return float64(roundUp(chunk, c.PageBytes)) / float64(chunk)
}
