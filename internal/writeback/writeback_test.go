package writeback

import (
	"testing"
	"testing/quick"
)

// paperCfg is the §4.3 setting: 256-byte KV entries per head per tensor
// (d=128, FP16, K+V = 512 B per step per row), 4 KiB pages, spill c=16.
func paperCfg() Config {
	return Config{SpillInterval: 16, Rows: 96, EntryBytes: 512, PageBytes: 4096}
}

func TestSpillAtInterval(t *testing.T) {
	m, err := New(paperCfg())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 15; i++ {
		if _, ok := m.Append(); ok {
			t.Fatalf("spill issued at step %d, before interval", i+1)
		}
	}
	s, ok := m.Append()
	if !ok {
		t.Fatal("no spill at the interval")
	}
	if s.Steps != 16 {
		t.Errorf("spill covers %d steps, want 16", s.Steps)
	}
	if m.Buffered() != 0 {
		t.Errorf("buffer not drained: %d", m.Buffered())
	}
}

// With c=16 and 512-byte entries the chunk is exactly two pages: WAF = 1.
// This is why the paper finds c=16 aligned with the 4 KiB page optimal.
func TestSpillIntervalSixteenIsPageAligned(t *testing.T) {
	c := paperCfg()
	if waf := c.SteadyStateWAF(); waf != 1 {
		t.Errorf("c=16 steady-state WAF = %v, want 1", waf)
	}
	// K-only rows (256 B per step, the paper's per-tensor number): c=16
	// gives exactly one 4 KiB page.
	c.EntryBytes = 256
	if waf := c.SteadyStateWAF(); waf != 1 {
		t.Errorf("256B entries, c=16: WAF = %v, want 1", waf)
	}
}

func TestNaiveWAFMatchesPaper(t *testing.T) {
	c := paperCfg()
	c.EntryBytes = 256
	// "each KV entry (256 bytes) is far smaller than the SSD page size
	// (4 KiB), leading to poor write performance": 16× amplification.
	if waf := c.NaiveWAF(); waf != 16 {
		t.Errorf("naive WAF = %v, want 16", waf)
	}
}

func TestDelayedBeatsNaive(t *testing.T) {
	for _, ci := range []int{2, 4, 8, 16, 32, 64} {
		c := paperCfg()
		c.SpillInterval = ci
		if c.SteadyStateWAF() > c.NaiveWAF() {
			t.Errorf("c=%d: delayed WAF %v worse than naive %v", ci, c.SteadyStateWAF(), c.NaiveWAF())
		}
	}
}

// WAF is non-increasing in the spill interval (larger chunks waste less).
func TestWAFMonotoneInInterval(t *testing.T) {
	c := paperCfg()
	prev := c.NaiveWAF()
	for ci := 1; ci <= 64; ci *= 2 {
		c.SpillInterval = ci
		w := c.SteadyStateWAF()
		if w > prev+1e-12 {
			t.Errorf("WAF increased at c=%d: %v > %v", ci, w, prev)
		}
		prev = w
	}
}

func TestFlushPartial(t *testing.T) {
	m, _ := New(paperCfg())
	for i := 0; i < 5; i++ {
		m.Append()
	}
	s, ok := m.Flush()
	if !ok || s.Steps != 5 {
		t.Fatalf("flush = %+v, %v; want 5 steps", s, ok)
	}
	if _, ok := m.Flush(); ok {
		t.Error("empty flush reported a spill")
	}
}

func TestAccountingConsistency(t *testing.T) {
	m, _ := New(paperCfg())
	totalSteps := 100
	var spilledSteps int
	for i := 0; i < totalSteps; i++ {
		if s, ok := m.Append(); ok {
			spilledSteps += s.Steps
		}
	}
	if s, ok := m.Flush(); ok {
		spilledSteps += s.Steps
	}
	if spilledSteps != totalSteps {
		t.Errorf("spilled %d steps, want %d", spilledSteps, totalSteps)
	}
	logical, physical, _ := m.Stats()
	wantLogical := int64(totalSteps) * 512 * 96
	if logical != wantLogical {
		t.Errorf("logical bytes %d, want %d", logical, wantLogical)
	}
	if physical < logical {
		t.Errorf("physical %d below logical %d", physical, logical)
	}
}

func TestBufferBytes(t *testing.T) {
	m, _ := New(paperCfg())
	m.Append()
	m.Append()
	if got := m.BufferBytes(); got != 2*512*96 {
		t.Errorf("buffer bytes = %d, want %d", got, 2*512*96)
	}
}

// Physical bytes always equal logical rounded up per spill chunk; the WAF
// never drops below 1.
func TestWAFAtLeastOne(t *testing.T) {
	f := func(interval, entry uint8) bool {
		c := Config{
			SpillInterval: int(interval%64) + 1,
			Rows:          4,
			EntryBytes:    int64(entry%200) + 1,
			PageBytes:     4096,
		}
		m, err := New(c)
		if err != nil {
			return false
		}
		for i := 0; i < 70; i++ {
			m.Append()
		}
		m.Flush()
		return m.WAF() >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestValidate(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("zero config accepted")
	}
	if _, err := New(Config{SpillInterval: 0, Rows: 1, EntryBytes: 1, PageBytes: 1}); err == nil {
		t.Error("zero interval accepted")
	}
}
