// Package estimator implements the §5.1 performance estimator: a simple
// closed-form prediction of accelerator kernel time from HLS-reported cycle
// counts and clock frequency, validated against the detailed cycle model
// (our stand-in for measured hardware) via Pearson correlation. The paper
// reports r = 0.93 across sequence lengths 4K–32K for the three kernels of
// Table 3.
package estimator

import (
	"fmt"

	"repro/internal/accel"
	"repro/internal/stats"
)

// Estimate predicts the kernel execution time for one attention pass of
// dGroup queries over s cached tokens, the way the §5.1 estimator does:
// from HLS-reported per-block cycle counts and the nominal clock. What HLS
// reports captures the pipeline structure (unit cycle counts, fill) but not
// the runtime: the OpenCL/XRT dispatch overhead per block is invisible to
// it, and the DRAM controller efficiency is taken at its datasheet-style
// nominal value rather than the measured one.
func Estimate(dGroup, headDim, s int) float64 {
	hls := accel.CycleModel{
		ClockHz:        300e6, // nominal target clock
		MACLanes:       128,
		ExpPerLane:     2,
		DGroup:         dGroup,
		HeadDim:        headDim,
		DRAMBW:         19.2e9,
		DRAMEff:        0.70, // nominal assumption, vs 0.62 measured
		OverheadCycles: 0,    // runtime dispatch is invisible to HLS
	}
	return hls.KernelTime(s)
}

// Point is one (kernel, sequence length) validation sample.
type Point struct {
	DGroup    int
	Seq       int
	Estimated float64 // estimator seconds
	Measured  float64 // cycle-model seconds (hardware stand-in)
}

// Sweep evaluates estimator and cycle model across the paper's validation
// grid: the Table 3 kernels × sequence lengths 4K..32K.
func Sweep() []Point {
	var pts []Point
	for _, dg := range []int{1, 4, 5} {
		for s := 4096; s <= 32768; s *= 2 {
			cm := accel.DefaultCycleModel(dg, 128)
			pts = append(pts, Point{
				DGroup:    dg,
				Seq:       s,
				Estimated: Estimate(dg, 128, s),
				Measured:  cm.KernelTime(s),
			})
		}
	}
	return pts
}

// Correlation returns the Pearson correlation between estimated and
// measured kernel throughputs over the validation sweep. Correlating
// throughput (rather than raw time, which is trivially dominated by the
// linear dependence on s) exposes the estimator's model error the way the
// paper's validation does.
func Correlation(pts []Point) (float64, error) {
	if len(pts) == 0 {
		return 0, fmt.Errorf("estimator: empty sweep")
	}
	est := make([]float64, len(pts))
	meas := make([]float64, len(pts))
	for i, p := range pts {
		if p.Estimated <= 0 || p.Measured <= 0 {
			return 0, fmt.Errorf("estimator: non-positive time at point %d", i)
		}
		kvBytes := 2 * float64(p.Seq) * 128 * 2
		est[i] = kvBytes / p.Estimated
		meas[i] = kvBytes / p.Measured
	}
	return stats.Pearson(est, meas)
}
