package estimator

import (
	"testing"
)

func TestSweepCoverage(t *testing.T) {
	pts := Sweep()
	// 3 kernels × 4 sequence lengths (4K, 8K, 16K, 32K).
	if len(pts) != 12 {
		t.Fatalf("sweep has %d points, want 12", len(pts))
	}
	seen := map[int]bool{}
	for _, p := range pts {
		seen[p.DGroup] = true
		if p.Estimated <= 0 || p.Measured <= 0 {
			t.Errorf("non-positive time at d_group=%d s=%d", p.DGroup, p.Seq)
		}
	}
	for _, dg := range []int{1, 4, 5} {
		if !seen[dg] {
			t.Errorf("kernel d_group=%d missing from sweep", dg)
		}
	}
}

// The estimator is optimistic (nominal DRAM efficiency, no dispatch
// overhead), so it must always under-predict the measured time.
func TestEstimatorOptimistic(t *testing.T) {
	for _, p := range Sweep() {
		if p.Estimated >= p.Measured {
			t.Errorf("d_group=%d s=%d: estimate %.3gs not below measured %.3gs",
				p.DGroup, p.Seq, p.Estimated, p.Measured)
		}
	}
}

// §5.1: the estimator achieves a high Pearson correlation with measured
// throughput (the paper reports r = 0.93 on hardware).
func TestCorrelationHigh(t *testing.T) {
	r, err := Correlation(Sweep())
	if err != nil {
		t.Fatal(err)
	}
	if r < 0.9 {
		t.Errorf("Pearson r = %.3f, want ≥ 0.9 (paper: 0.93)", r)
	}
	if r > 1.0001 {
		t.Errorf("Pearson r = %.3f out of range", r)
	}
}

func TestCorrelationErrors(t *testing.T) {
	if _, err := Correlation(nil); err == nil {
		t.Error("empty sweep accepted")
	}
	bad := []Point{{DGroup: 1, Seq: 4096, Estimated: 0, Measured: 1}}
	if _, err := Correlation(bad); err == nil {
		t.Error("zero estimate accepted")
	}
}

func TestEstimateScalesWithSequence(t *testing.T) {
	e4 := Estimate(1, 128, 4096)
	e8 := Estimate(1, 128, 8192)
	ratio := e8 / e4
	if ratio < 1.9 || ratio > 2.1 {
		t.Errorf("estimate ratio 8K/4K = %.3f, want ≈ 2", ratio)
	}
}
