// Package ftl is a small flash-translation-layer simulator backing the
// §7.2 argument: "higher internal bandwidth could be achieved through
// lightweight SSD mechanisms, such as coarse-grained block-level FTL
// mappings instead of DRAM-intensive page-level mappings... particularly
// effective because our design ensures sequential KV cache accesses for
// both reads and writes".
//
// The simulator implements a log-structured FTL with greedy garbage
// collection and two mapping granularities. It measures the two quantities
// the argument rests on: the DRAM footprint of the mapping table, and the
// write amplification each access pattern induces under each mapping.
package ftl

import (
	"fmt"
	"math/rand"
)

// Mapping selects the translation granularity.
type Mapping int

// Mapping granularities.
const (
	// PageLevel maps every 4 KiB page independently (flexible, DRAM-heavy).
	PageLevel Mapping = iota
	// BlockLevel maps whole erase blocks (cheap table, but sub-block
	// overwrites force a read-modify-write of the entire block).
	BlockLevel
)

// String names the mapping.
func (m Mapping) String() string {
	if m == BlockLevel {
		return "block-level"
	}
	return "page-level"
}

// Config sizes the simulated device.
type Config struct {
	CapBytes      int64
	PageBytes     int64
	PagesPerBlock int
	// Overprovision is the spare-capacity fraction hidden from the host
	// (enterprise SSDs: ~7–28%).
	Overprovision float64
	Mapping       Mapping
	// MapEntryBytes is the DRAM cost per mapping entry.
	MapEntryBytes int64
}

// DefaultConfig models a small slice of a 3.84 TB SmartSSD (simulating the
// full device would need gigabytes of host memory; WAF behaviour is
// capacity-invariant for a fixed overprovision ratio).
func DefaultConfig(mapping Mapping) Config {
	return Config{
		CapBytes:      256 << 20, // 256 MiB slice
		PageBytes:     4 << 10,
		PagesPerBlock: 64,
		Overprovision: 0.07,
		Mapping:       mapping,
		MapEntryBytes: 4,
	}
}

// Validate reports inconsistent configurations.
func (c Config) Validate() error {
	switch {
	case c.CapBytes <= 0 || c.PageBytes <= 0 || c.PagesPerBlock <= 0:
		return fmt.Errorf("ftl: non-positive geometry %+v", c)
	case c.Overprovision < 0 || c.Overprovision >= 1:
		return fmt.Errorf("ftl: overprovision %v out of [0,1)", c.Overprovision)
	case c.MapEntryBytes <= 0:
		return fmt.Errorf("ftl: non-positive map entry size")
	}
	return nil
}

// MappingTableBytes returns the DRAM footprint of the translation table for
// a device of the given capacity — the §7.2 "DRAM-intensive" comparison.
// It is a pure function of the geometry, independent of the simulated slice.
func MappingTableBytes(capBytes, pageBytes int64, pagesPerBlock int, m Mapping, entryBytes int64) int64 {
	switch m {
	case BlockLevel:
		blockBytes := pageBytes * int64(pagesPerBlock)
		return (capBytes + blockBytes - 1) / blockBytes * entryBytes
	default:
		return (capBytes + pageBytes - 1) / pageBytes * entryBytes
	}
}

// Device is the simulated FTL state.
type Device struct {
	cfg Config

	logicalPages int // host-visible pages
	totalPages   int // physical pages incl. overprovision
	pagesPerBlk  int

	// l2p maps logical page → physical page (-1 = unwritten).
	l2p []int
	// pageState: 0 free, 1 valid, 2 invalid.
	pageState []byte
	// owner maps physical page → logical page (for GC relocation).
	owner []int
	// blockValid counts valid pages per block.
	blockValid []int
	// programmed counts programmed (valid or invalid) pages per block; a
	// block with programmed == 0 sits in the free pool.
	programmed []int

	openBlock int // block currently receiving writes
	nextPage  int // next page index within the open block
	freeBlks  []int

	// seqNext tracks, per logical block, the next expected page of an
	// in-flight sequential rewrite (block-level mapping absorbs sequential
	// overwrites into a replacement block, like hybrid log-block FTLs);
	// -1 when no rewrite is in flight.
	seqNext []int

	hostWrites  int64 // pages the host asked to write
	flashWrites int64 // pages physically programmed (incl. GC and RMW)
	erases      int64
}

// New returns an empty device.
func New(cfg Config) (*Device, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	logical := int(cfg.CapBytes / cfg.PageBytes)
	total := int(float64(logical) * (1 + cfg.Overprovision))
	// Round up to whole blocks.
	blocks := (total + cfg.PagesPerBlock - 1) / cfg.PagesPerBlock
	total = blocks * cfg.PagesPerBlock
	d := &Device{
		cfg:          cfg,
		logicalPages: logical,
		totalPages:   total,
		pagesPerBlk:  cfg.PagesPerBlock,
		l2p:          make([]int, logical),
		pageState:    make([]byte, total),
		owner:        make([]int, total),
		blockValid:   make([]int, blocks),
		programmed:   make([]int, blocks),
	}
	for i := range d.l2p {
		d.l2p[i] = -1
	}
	for i := range d.owner {
		d.owner[i] = -1
	}
	d.seqNext = make([]int, (logical+cfg.PagesPerBlock-1)/cfg.PagesPerBlock)
	for i := range d.seqNext {
		d.seqNext[i] = -1
	}
	for b := blocks - 1; b >= 1; b-- {
		d.freeBlks = append(d.freeBlks, b)
	}
	d.openBlock = 0
	return d, nil
}

// WritePage writes one logical page. Under block-level mapping, overwriting
// a page that is not the sequential successor of the block's write point
// forces a read-modify-write of the whole block (the §7.2 trade-off).
func (d *Device) WritePage(lp int) error {
	if lp < 0 || lp >= d.logicalPages {
		return fmt.Errorf("ftl: logical page %d out of range %d", lp, d.logicalPages)
	}
	d.hostWrites++
	if d.cfg.Mapping == BlockLevel && d.l2p[lp] >= 0 {
		lblk := lp / d.pagesPerBlk
		switch {
		case lp%d.pagesPerBlk == 0:
			// Sequential rewrite begins: open a replacement log block.
			d.seqNext[lblk] = lp + 1
			d.program(lp)
		case d.seqNext[lblk] == lp:
			// Sequential rewrite continues.
			d.seqNext[lblk] = lp + 1
			d.program(lp)
		default:
			// Random overwrite: relocate the whole logical block.
			d.seqNext[lblk] = -1
			return d.blockRMW(lp)
		}
		return nil
	}
	d.program(lp)
	return nil
}

// WriteRange writes a contiguous logical byte range (page-aligned demand is
// rounded up), the access pattern of HILOS's row-wise spills.
func (d *Device) WriteRange(offsetBytes, lenBytes int64) error {
	if lenBytes <= 0 {
		return fmt.Errorf("ftl: non-positive write length")
	}
	start := offsetBytes / d.cfg.PageBytes
	end := (offsetBytes + lenBytes + d.cfg.PageBytes - 1) / d.cfg.PageBytes
	for lp := start; lp < end; lp++ {
		if err := d.WritePage(int(lp % int64(d.logicalPages))); err != nil {
			return err
		}
	}
	return nil
}

// program appends the logical page to the open block, garbage-collecting
// when no free space remains.
func (d *Device) program(lp int) {
	if d.nextPage == d.pagesPerBlk {
		d.advanceBlock()
	}
	pp := d.openBlock*d.pagesPerBlk + d.nextPage
	d.nextPage++
	// Invalidate the previous location.
	if old := d.l2p[lp]; old >= 0 {
		d.pageState[old] = 2
		d.blockValid[old/d.pagesPerBlk]--
	}
	d.pageState[pp] = 1
	d.owner[pp] = lp
	d.l2p[lp] = pp
	d.blockValid[d.openBlock]++
	d.programmed[d.openBlock]++
	d.flashWrites++
}

// advanceBlock opens a fresh block, running greedy GC until the free pool
// has a block (relocations during GC may themselves consume freed blocks).
func (d *Device) advanceBlock() {
	for len(d.freeBlks) == 0 {
		d.collect()
	}
	n := len(d.freeBlks) - 1
	d.openBlock = d.freeBlks[n]
	d.freeBlks = d.freeBlks[:n]
	d.nextPage = 0
}

// collect erases the programmed block with the fewest valid pages,
// relocating its valid pages via the freed space.
func (d *Device) collect() {
	victim, best := -1, 1<<30
	for b := range d.blockValid {
		if b == d.openBlock || d.programmed[b] == 0 {
			continue
		}
		if d.blockValid[b] < best {
			victim, best = b, d.blockValid[b]
		}
	}
	if victim < 0 {
		panic("ftl: no GC victim (device sized too small)")
	}
	if best == d.pagesPerBlk {
		panic("ftl: GC cannot make progress; increase overprovisioning")
	}
	// Relocate valid pages: they are appended after the erase returns the
	// block to the pool, so first gather them.
	var live []int
	for i := 0; i < d.pagesPerBlk; i++ {
		pp := victim*d.pagesPerBlk + i
		if d.pageState[pp] == 1 {
			live = append(live, d.owner[pp])
		}
		d.pageState[pp] = 0
		d.owner[pp] = -1
	}
	d.blockValid[victim] = 0
	d.programmed[victim] = 0
	d.erases++
	d.freeBlks = append(d.freeBlks, victim)
	for _, lp := range live {
		// Relocation writes are flash writes but not host writes.
		d.l2p[lp] = -1 // avoid double-invalidation (old page already freed)
		d.program(lp)
	}
}

// blockRMW rewrites the whole logical block containing lp (block-level
// mapping overwrite path).
func (d *Device) blockRMW(lp int) error {
	blkStart := lp / d.pagesPerBlk * d.pagesPerBlk
	for i := 0; i < d.pagesPerBlk; i++ {
		tgt := blkStart + i
		if tgt >= d.logicalPages {
			break
		}
		if d.l2p[tgt] >= 0 || tgt == lp {
			d.program(tgt)
		}
	}
	return nil
}

// WAF returns flash writes over host writes (≥ 1 once data was written).
func (d *Device) WAF() float64 {
	if d.hostWrites == 0 {
		return 1
	}
	return float64(d.flashWrites) / float64(d.hostWrites)
}

// Stats returns host writes, flash writes and erase counts (pages/blocks).
func (d *Device) Stats() (host, flash, erases int64) {
	return d.hostWrites, d.flashWrites, d.erases
}

// SequentialFill writes the whole logical space once in order — the HILOS
// prefill / spill pattern.
func (d *Device) SequentialFill() error {
	for lp := 0; lp < d.logicalPages; lp++ {
		if err := d.WritePage(lp); err != nil {
			return err
		}
	}
	return nil
}

// RandomOverwrite performs n single-page overwrites at uniformly random
// logical addresses — the pathological pattern block mapping cannot absorb.
func (d *Device) RandomOverwrite(rng *rand.Rand, n int) error {
	for i := 0; i < n; i++ {
		if err := d.WritePage(rng.Intn(d.logicalPages)); err != nil {
			return err
		}
	}
	return nil
}
