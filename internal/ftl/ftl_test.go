package ftl

import (
	"math/rand"
	"testing"
)

func newDevice(t *testing.T, m Mapping) *Device {
	t.Helper()
	cfg := DefaultConfig(m)
	cfg.CapBytes = 16 << 20 // 16 MiB slice keeps tests fast
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestConfigValidate(t *testing.T) {
	bad := DefaultConfig(PageLevel)
	bad.Overprovision = 1
	if err := bad.Validate(); err == nil {
		t.Error("overprovision=1 accepted")
	}
	bad = DefaultConfig(PageLevel)
	bad.PageBytes = 0
	if _, err := New(bad); err == nil {
		t.Error("zero page size accepted")
	}
}

// §7.2: the block-level table is PagesPerBlock× smaller — for a 3.84 TB
// device with 4 KiB pages and 4 B entries, 3.84 GB vs 15 MB of mapping DRAM
// at 1 MiB blocks.
func TestMappingTableFootprint(t *testing.T) {
	capBytes := int64(3840e9)
	page := MappingTableBytes(capBytes, 4096, 256, PageLevel, 4)
	block := MappingTableBytes(capBytes, 4096, 256, BlockLevel, 4)
	if page/block < 200 {
		t.Errorf("page table %d only %dx block table %d, want ≈ 256x", page, page/block, block)
	}
	if page < 3_000_000_000 {
		t.Errorf("page-level table %d bytes; expected multi-GB for a 3.84 TB device", page)
	}
}

// Sequential writes induce no garbage collection: WAF stays 1 under both
// mappings — the property HILOS's row-wise spills rely on.
func TestSequentialWAFIsOne(t *testing.T) {
	for _, m := range []Mapping{PageLevel, BlockLevel} {
		d := newDevice(t, m)
		if err := d.SequentialFill(); err != nil {
			t.Fatal(err)
		}
		if waf := d.WAF(); waf != 1 {
			t.Errorf("%s sequential WAF = %v, want 1", m, waf)
		}
	}
}

// Repeated sequential rewrites (append-only logs wrapping around) stay
// cheap under page-level mapping: the GC victims are fully invalid.
func TestSequentialRewriteCheapPageLevel(t *testing.T) {
	d := newDevice(t, PageLevel)
	for pass := 0; pass < 3; pass++ {
		if err := d.SequentialFill(); err != nil {
			t.Fatal(err)
		}
	}
	if waf := d.WAF(); waf > 1.2 {
		t.Errorf("page-level sequential rewrite WAF = %v, want ≈ 1", waf)
	}
}

// Random single-page overwrites on a full device: page-level mapping pays
// moderate GC amplification; block-level mapping pays the full
// read-modify-write of each block (≈ PagesPerBlock×).
func TestRandomOverwriteAmplification(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	dp := newDevice(t, PageLevel)
	if err := dp.SequentialFill(); err != nil {
		t.Fatal(err)
	}
	if err := dp.RandomOverwrite(rng, 4000); err != nil {
		t.Fatal(err)
	}
	pageWAF := dp.WAF()

	rng = rand.New(rand.NewSource(1))
	db := newDevice(t, BlockLevel)
	if err := db.SequentialFill(); err != nil {
		t.Fatal(err)
	}
	if err := db.RandomOverwrite(rng, 800); err != nil {
		t.Fatal(err)
	}
	blockWAF := db.WAF()

	if pageWAF <= 1.1 {
		t.Errorf("page-level random WAF = %v; GC should amplify", pageWAF)
	}
	if pageWAF > 12 {
		t.Errorf("page-level random WAF = %v implausibly high", pageWAF)
	}
	if blockWAF < 3*pageWAF {
		t.Errorf("block-level random WAF %v not far above page-level %v", blockWAF, pageWAF)
	}
}

// The paper's conclusion: under HILOS's sequential access, block-level
// mapping is as good as page-level — so a CSD can spend its DRAM on
// bandwidth instead of mapping tables.
func TestBlockMappingViableForSequentialKV(t *testing.T) {
	d := newDevice(t, BlockLevel)
	// Three full sequential passes emulate prefill + wrap-around spills.
	for pass := 0; pass < 3; pass++ {
		if err := d.SequentialFill(); err != nil {
			t.Fatal(err)
		}
	}
	if waf := d.WAF(); waf > 1.2 {
		t.Errorf("block-level sequential WAF = %v, want ≈ 1", waf)
	}
}

func TestWriteRange(t *testing.T) {
	d := newDevice(t, PageLevel)
	if err := d.WriteRange(0, 64<<10); err != nil { // 16 pages
		t.Fatal(err)
	}
	host, flash, _ := d.Stats()
	if host != 16 || flash != 16 {
		t.Errorf("WriteRange stats host=%d flash=%d, want 16/16", host, flash)
	}
	if err := d.WriteRange(0, 0); err == nil {
		t.Error("zero-length range accepted")
	}
}

func TestWritePageBounds(t *testing.T) {
	d := newDevice(t, PageLevel)
	if err := d.WritePage(-1); err == nil {
		t.Error("negative page accepted")
	}
	if err := d.WritePage(1 << 30); err == nil {
		t.Error("out-of-range page accepted")
	}
}

func TestErasesAccumulate(t *testing.T) {
	d := newDevice(t, PageLevel)
	for pass := 0; pass < 2; pass++ {
		if err := d.SequentialFill(); err != nil {
			t.Fatal(err)
		}
	}
	_, _, erases := d.Stats()
	if erases == 0 {
		t.Error("no erases after overwriting the device")
	}
}
