package cluster

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"repro/internal/device"
	"repro/internal/energy"
	"repro/internal/model"
	"repro/internal/pipeline"
	"repro/internal/repcache"
	"repro/internal/workload"
)

// RunFunc simulates one batched request on a pipeline's engine. It must be
// a pure function of the request (engine.Engine.Run qualifies): report
// prewarming calls it from several goroutines.
type RunFunc func(pipeline.Request) pipeline.Report

// EnergyConfig selects the Fig. 17(a) power integration for one pipeline's
// attribution: the testbed supplies component powers, Model the storage
// kind/device count/GPU count.
type EnergyConfig struct {
	Testbed device.Testbed
	Model   energy.Config
}

// Pipeline is one member of a (possibly heterogeneous) fleet: an engine
// bound to a hardware point, plus the cost and energy metadata the
// dispatcher attributes work with.
type Pipeline struct {
	// Name labels the pipeline in summaries and assignments.
	Name string
	// Run evaluates one batch on the pipeline's engine.
	Run RunFunc
	// USDPerHour is the amortized hardware rate charged while the pipeline
	// executes batches; cheapest-feasible dispatch minimizes it × exec time.
	// Zero-cost pipelines make cheapest-feasible fall back to least-loaded
	// order through its tie-break.
	USDPerHour float64
	// Energy enables per-pipeline energy attribution (nil = skip).
	Energy *EnergyConfig
	// EngineID groups pipelines that share one engine (same Run behavior):
	// report simulations memoize across all pipelines with the same
	// non-empty EngineID, so N identical hosts simulate each batch shape
	// once, not N times. Empty means a private memo for this fleet member.
	EngineID string
	// Lossy marks an approximating tier (e.g. InstInfer-style sparse
	// attention): work landing here when every exact pipeline is down or
	// quarantined is counted as degraded service in the Summary. Purely
	// an accounting label — placement treats lossy pipelines like any
	// other fleet member.
	Lossy bool
}

// Policy selects how a released batch picks a pipeline.
type Policy string

// Dispatch policies. All consider only pipelines whose engine can place the
// batch (no OOM); a batch no pipeline can place fails as a unit.
const (
	// LeastLoaded assigns to the earliest-available pipeline (ties: lowest
	// index) — the classic list schedule, and exactly the homogeneous
	// multi-pipeline semantics of serving.Evaluate.
	LeastLoaded Policy = "least-loaded"
	// CheapestFeasible assigns to the pipeline with the lowest dollar cost
	// for the batch (amortized $/h × execution seconds; ties: earliest
	// available, then lowest index) — the VM-selection-style policy that
	// routes each batch to the cheapest adequate backend.
	CheapestFeasible Policy = "cheapest-feasible"
	// FastestETA assigns to the pipeline that finishes the batch earliest
	// (max(release, free) + execution; ties: lowest index), trading cost for
	// completion time.
	FastestETA Policy = "fastest-eta"
)

// Policies returns the dispatch policies in documentation order.
func Policies() []Policy { return []Policy{LeastLoaded, CheapestFeasible, FastestETA} }

func (p Policy) valid() bool {
	switch p {
	case LeastLoaded, CheapestFeasible, FastestETA:
		return true
	}
	return false
}

// BatchJob is one formed batch released to the dispatcher at ReleaseSec.
// Arrivals carries the member requests' arrival times for queueing-delay
// accounting; nil means every member arrived at ReleaseSec. Deadlines
// carries each member's absolute start deadline (0 = none) and Priority the
// batch's priority class — zero values reproduce the pre-priority behavior.
type BatchJob struct {
	Class      workload.Class
	JobIDs     []int
	Arrivals   []float64
	Deadlines  []float64
	Priority   int
	ReleaseSec float64
	// Attempt counts recovery re-dispatches after fault-failed attempts
	// (0 = first attempt); the event loop's retry path maintains it.
	Attempt int
}

// Assignment is the dispatch outcome for one batch — with faults enabled,
// for one *attempt* of a batch: a batch the injector fails mid-flight
// yields an Aborted assignment per consumed attempt plus either a
// completing assignment (a later retry succeeded) or a Pipeline == -1
// terminal failure (the retry budget ran out).
type Assignment struct {
	Batch BatchJob
	// Pipeline is the fleet index the batch ran on; -1 when no pipeline
	// could place it (the batch failed, Reason says why).
	Pipeline int
	Reason   string
	// Aborted marks an attempt a fault consumed without completing it: the
	// pipeline's time, dollars and (prorated) flash writes were spent, but
	// no member job finished here. Reason says what killed it.
	Aborted bool
	// StartSec/FinishSec bound the batch's execution on the simulated clock;
	// StartSec − ReleaseSec is time spent waiting for the pipeline.
	StartSec  float64
	FinishSec float64
	// Report is the engine's report at the batch's full size (the effective
	// batch may be smaller; extra passes including an exact tail pass are
	// already folded into FinishSec).
	Report pipeline.Report
}

// ExecSec returns the batch's execution time.
func (a Assignment) ExecSec() float64 { return a.FinishSec - a.StartSec }

// repKey memoizes engine reports per (engine, request shape, batch size):
// engines are pure, so identical batch shapes share one simulation — across
// pipelines too, when they declare a common EngineID. Keys are scoped to the
// dispatcher's repcache.Group, so an EngineID names an engine only within
// one fleet and two dispatchers never share (or collide on) reports.
type repKey struct {
	eng     string
	in, out int
	size    int
}

// dispatcher is the policy layer shared by the event loop (trace-driven
// admission, Run) and Dispatch (pre-formed plans, serving.Evaluate's path).
// It is single-goroutine after prewarming, which keeps assignment
// deterministic. Report memoization is delegated to a private
// repcache.Group, whose per-key singleflight also serializes the prewarm
// workers on identical shapes.
type dispatcher struct {
	m      model.Config
	fleet  []Pipeline
	policy Policy
	freeAt []float64
	engKey []string // memo group per fleet index
	group  *repcache.Group

	// Recovery hooks, installed only when a fault injector is active (nil
	// otherwise, which keeps the fault-free arithmetic bit-identical to a
	// build without them). availAt returns the earliest instant a pipeline
	// accepts new work (+Inf = permanently failed); slowAt returns the
	// straggler service-time multiplier in effect at a given instant.
	availAt func(p int) float64
	slowAt  func(p int, at float64) float64
}

func newDispatcher(m model.Config, fleet []Pipeline, policy Policy) (*dispatcher, error) {
	if len(fleet) == 0 {
		return nil, fmt.Errorf("cluster: empty fleet")
	}
	for i, p := range fleet {
		if p.Run == nil {
			return nil, fmt.Errorf("cluster: pipeline %d (%s) has no engine", i, p.Name)
		}
		if p.USDPerHour < 0 {
			return nil, fmt.Errorf("cluster: pipeline %d (%s) has negative rate %g $/h", i, p.Name, p.USDPerHour)
		}
	}
	if !policy.valid() {
		return nil, fmt.Errorf("cluster: unknown dispatch policy %q (known: %v)", policy, Policies())
	}
	engKey := make([]string, len(fleet))
	for i, p := range fleet {
		if p.EngineID != "" {
			engKey[i] = p.EngineID
		} else {
			engKey[i] = fmt.Sprintf("#%d", i)
		}
	}
	return &dispatcher{
		m:      m,
		fleet:  fleet,
		policy: policy,
		freeAt: make([]float64, len(fleet)),
		engKey: engKey,
		group:  repcache.NewGroup(),
	}, nil
}

// shapeKey is the memo key for one batch shape on pipeline p's engine.
func (d *dispatcher) shapeKey(p int, c workload.Class, size int) repKey {
	return repKey{eng: d.engKey[p], in: c.Input, out: c.Output, size: size}
}

func (d *dispatcher) report(p int, c workload.Class, size int) pipeline.Report {
	return d.group.Do(d.shapeKey(p, c, size), func() pipeline.Report {
		// Scheduling reads only scalar timing/capacity fields; skip the
		// per-task timeline so prewarming a fleet doesn't retain one
		// timeline per (pipeline, class, size) shape.
		return d.fleet[p].Run(pipeline.Request{Model: d.m, Batch: size, Context: c.Input, OutputLen: c.Output, NoTrace: true})
	})
}

// prewarmShape names one (pipeline, class, size) combination to simulate.
type prewarmShape struct {
	p    int
	c    workload.Class
	size int
}

// prewarm simulates the given combinations on a worker pool before the
// sequential event loop starts; the loop then runs entirely on memoized
// reports for those shapes. Shapes deduplicate by memo key, so pipelines
// sharing an EngineID simulate each shape once; the group's singleflight
// makes a concurrent duplicate harmless anyway. Results are identical with
// or without prewarming — it only moves pure computations off the loop.
func (d *dispatcher) prewarm(shapes []prewarmShape) {
	var todo []prewarmShape
	seen := map[repKey]bool{}
	for _, s := range shapes {
		if s.size < 1 {
			continue
		}
		k := d.shapeKey(s.p, s.c, s.size)
		if seen[k] {
			continue
		}
		seen[k] = true
		todo = append(todo, s)
	}
	if len(todo) == 0 {
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(todo) {
		workers = len(todo)
	}
	queue := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range queue {
				s := todo[i]
				d.report(s.p, s.c, s.size)
			}
		}()
	}
	for i := range todo {
		queue <- i
	}
	close(queue)
	wg.Wait()
}

// execSec returns the execution time for n jobs given the engine's
// (possibly shrunken) report: ⌊n/batch⌋ full passes at the effective batch,
// plus the remainder as a smaller tail pass simulated at its exact size —
// not rounded up to a full-size pass (the ROADMAP's per-pass batch-shrink
// item). A tail the engine shrinks again is charged integral passes at the
// tail report's effective batch; an infeasible tail report (which a
// monotone engine never produces) falls back to one full-size pass.
func (d *dispatcher) execSec(p int, c workload.Class, n int, rep pipeline.Report) float64 {
	full := n / rep.Batch
	tail := n % rep.Batch
	sec := float64(full) * rep.TotalSec(c.Output)
	if tail > 0 {
		tr := d.report(p, c, tail)
		if tr.OOM || tr.Batch < 1 {
			sec += rep.TotalSec(c.Output)
		} else {
			passes := (tail + tr.Batch - 1) / tr.Batch
			sec += float64(passes) * tr.TotalSec(c.Output)
		}
	}
	return sec
}

// placement is a planned (not yet committed) pipeline choice for one batch.
// p is -1 when no pipeline could take the batch; reason then says why.
// degraded marks a pick that landed on a lossy tier only because every
// exact (non-lossy) candidate was down or quarantined.
type placement struct {
	p        int
	rep      pipeline.Report
	sec      float64
	start    float64
	reason   string
	degraded bool
}

// avail returns when pipeline p next accepts work (0 without recovery
// hooks: always available).
func (d *dispatcher) avail(p int) float64 {
	if d.availAt == nil {
		return 0
	}
	return d.availAt(p)
}

// slow returns the straggler multiplier for pipeline p at the given instant
// (1 without recovery hooks).
func (d *dispatcher) slow(p int, at float64) float64 {
	if d.slowAt == nil {
		return 1
	}
	return d.slowAt(p, at)
}

// pick is the one policy-scoring loop behind plan and planIdle: it ranks
// every pipeline that can place the batch (and, with idleOnly, is free at
// now) without committing anything. feasible reports whether any fleet
// member that has not permanently failed — busy, down, or quarantined
// included — could ever place the batch. nextAvail is the earliest
// re-admission instant among capacity-feasible pipelines that are
// temporarily out of service (+Inf when none is): when pl.p == -1 with
// feasible == true, retrying the plan at nextAvail makes progress.
func (d *dispatcher) pick(b BatchJob, idleOnly bool, now float64) (pl placement, feasible bool, nextAvail float64) {
	n := len(b.JobIDs)
	best := -1
	var bestRep pipeline.Report
	var bestSec, bestKey, bestTie, bestStart float64
	var firstReason, deadReason string
	nextAvail = math.Inf(1)
	exactCandidate, exactBlocked := false, false
	for p := range d.fleet {
		rep := d.report(p, b.Class, n)
		if rep.OOM || rep.Batch < 1 {
			if firstReason == "" {
				firstReason = rep.Reason
			}
			continue
		}
		avail := d.avail(p)
		if math.IsInf(avail, 1) {
			// Permanently failed (wear-out): can never place anything again.
			if deadReason == "" {
				deadReason = fmt.Sprintf("pipeline %s permanently failed", d.fleet[p].Name)
			}
			if !d.fleet[p].Lossy {
				exactBlocked = true
			}
			continue
		}
		feasible = true
		if avail > now {
			// Down or quarantined: no new work until re-admission.
			if avail < nextAvail {
				nextAvail = avail
			}
			if !d.fleet[p].Lossy {
				exactBlocked = true
			}
			continue
		}
		if idleOnly && d.freeAt[p] > now {
			continue // busy: continuous batching never queues behind it
		}
		if !d.fleet[p].Lossy {
			exactCandidate = true
		}
		start := b.ReleaseSec
		if d.freeAt[p] > start {
			start = d.freeAt[p]
		}
		sec := d.execSec(p, b.Class, n, rep) * d.slow(p, start)
		var key, tie float64
		switch d.policy {
		case LeastLoaded:
			key, tie = d.freeAt[p], 0
		case CheapestFeasible:
			key, tie = d.fleet[p].USDPerHour/3600*sec, d.freeAt[p]
		case FastestETA:
			key, tie = start+sec, 0
		}
		if best < 0 || key < bestKey || (key == bestKey && tie < bestTie) {
			best, bestRep, bestSec, bestKey, bestTie, bestStart = p, rep, sec, key, tie, start
		}
	}
	if best < 0 {
		reason := firstReason
		if reason == "" {
			reason = deadReason
		}
		if reason == "" {
			reason = "no feasible pipeline"
		}
		return placement{p: -1, reason: reason}, feasible, nextAvail
	}
	pl = placement{p: best, rep: bestRep, sec: bestSec, start: bestStart}
	// Degraded service: the pick landed on a lossy tier while every exact
	// pipeline that could serve this batch is down, quarantined, or worn
	// out.
	pl.degraded = d.fleet[best].Lossy && !exactCandidate && exactBlocked
	return pl, true, nextAvail
}

// plan picks a pipeline for the batch per the policy without committing it:
// the pipeline clocks are untouched until commit. Failed plans (p == -1)
// carry the first engine's refusal reason; feasible and nextAvail follow
// pick's contract for the recovery layer's deferral decision.
func (d *dispatcher) plan(b BatchJob, now float64) (placement, bool, float64) {
	return d.pick(b, false, now)
}

// planIdle picks a pipeline among those idle at now (freeAt ≤ now) — the
// continuous-batching variant, where batches are never queued ahead on a
// busy pipeline. feasible == false means the batch fails as a unit; true
// with p == -1 means "wait for a pipeline-free (or repair) event".
func (d *dispatcher) planIdle(b BatchJob, now float64) (placement, bool, float64) {
	return d.pick(b, true, now)
}

// commit advances the chosen pipeline's clock and materializes the
// assignment. Plans must be committed before any further planning.
func (d *dispatcher) commit(b BatchJob, pl placement) Assignment {
	d.freeAt[pl.p] = pl.start + pl.sec
	return Assignment{
		Batch: b, Pipeline: pl.p,
		StartSec: pl.start, FinishSec: pl.start + pl.sec,
		Report: pl.rep,
	}
}

// assign picks a pipeline for the batch per the policy, advances that
// pipeline's clock, and returns the assignment. Failed batches leave every
// clock untouched.
func (d *dispatcher) assign(b BatchJob) Assignment {
	pl, _, _ := d.plan(b, 0)
	if pl.p < 0 {
		return Assignment{Batch: b, Pipeline: -1, Reason: pl.reason}
	}
	return d.commit(b, pl)
}

// Dispatch assigns pre-formed batches to fleet pipelines in slice order
// under the policy and returns one assignment per batch. It is the
// policy core behind both the trace-driven cluster (Run forms batches via
// the event loop first) and serving.Evaluate (whose offline plan is the
// special case of identical pipelines and all-zero release times).
func Dispatch(m model.Config, batches []BatchJob, fleet []Pipeline, policy Policy) ([]Assignment, error) {
	if len(batches) == 0 {
		return nil, fmt.Errorf("cluster: empty plan")
	}
	d, err := newDispatcher(m, fleet, policy)
	if err != nil {
		return nil, err
	}
	for i, b := range batches {
		if len(b.JobIDs) == 0 {
			return nil, fmt.Errorf("cluster: batch %d is empty", i)
		}
	}
	var shapes []prewarmShape
	for _, b := range batches {
		for p := range fleet {
			shapes = append(shapes, prewarmShape{p: p, c: b.Class, size: len(b.JobIDs)})
		}
	}
	d.prewarm(shapes)
	out := make([]Assignment, len(batches))
	for i, b := range batches {
		out[i] = d.assign(b)
	}
	return out, nil
}
