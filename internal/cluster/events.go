package cluster

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/endurance"
	"repro/internal/faults"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

// slot is one dispatched batch on the event loop's schedule. In
// close-at-admission mode slots queue up on a pipeline's chain and may be
// evicted (preempted at the batch boundary) before they start; in
// continuous-batching mode a slot starts the instant it is formed. Failed
// slots (pipe == -1) record batches no pipeline could ever place — or, with
// retries enabled, batches whose recovery budget ran out.
//
// The fault machinery adds attempt outcomes: an aborted slot consumed its
// pipeline (a transient batch error, or a fail-stop killing it mid-run —
// writeFrac says how much of its flash writes landed) but completed no
// work; its batch's retry or terminal failure is recorded separately.
type slot struct {
	b       BatchJob
	rep     placementReport
	pipe    int
	reason  string
	start   float64
	finish  float64
	evicted bool

	aborted   bool
	transient bool    // this attempt draws a transient batch error at finish
	done      bool    // completion already processed (evDone dedup)
	degraded  bool    // served by a lossy tier for lack of a healthy exact one
	writeFrac float64 // fraction of the attempt's flash writes performed
}

// placementReport bundles what commit needs to (re)compute a slot's timing.
type placementReport struct {
	rep     pipeline.Report
	execSec float64
}

// eventLoop is the unified scheduling core behind Run: a simulated-clock
// discrete-event loop over arrival / wait-timeout / deadline /
// pipeline-free events and per-priority-class queues. With every extension
// disabled it reproduces the close-at-admission, run-to-completion
// scheduler exactly, event for event.
type eventLoop struct {
	cfg    Config
	d      *dispatcher
	events eventHeap
	seq    int
	now    float64

	queues map[queueKey]*classQueue

	// chains[p] holds the live slots on pipeline p, in execution order: the
	// running slot (immovable) and, in close-at-admission mode, an
	// unstarted suffix that preemption may evict and re-enqueue. Finished
	// slots are pruned as the clock advances; floors[p] keeps the pruned
	// prefix's finish time as the rescheduling baseline.
	chains [][]*slot
	floors []float64
	// order records every dispatch decision in the order it was made;
	// evicted slots are filtered out of the final Summary but keep the
	// dispatch order of everything else stable.
	order []*slot

	rejected []int
	tally    preemptTally

	// Recovery layer, active only with a non-empty fault injector: inj is
	// nil otherwise and every fault path below is skipped, leaving the
	// loop's behavior bit-identical to a fault-free build.
	inj    *faults.Injector
	retry  RetryPolicy
	health []pipeHealth
	ft     faultTally
	// pendingRetries holds failed-over and retried batches awaiting an
	// idle pipeline in continuous mode; they dispatch ahead of the queues
	// (they are the oldest admitted work). Whatever is still here when the
	// event heap drains fails terminally — no batch is silently lost.
	pendingRetries []BatchJob
}

// preemptTally counts batch-boundary evictions.
type preemptTally struct {
	batches int
	jobs    int
	byPrio  map[int]int
}

func (l *eventLoop) push(e event) {
	e.seq = l.seq
	l.seq++
	l.events.push(e)
}

// run drains the event heap: the whole simulation, arrivals to final flush.
func (l *eventLoop) run() {
	for l.events.Len() > 0 {
		e := l.events.pop()
		if l.cfg.Pace != nil && e.at > l.now {
			l.cfg.Pace(e.at)
		}
		l.now = e.at
		l.cfg.Telemetry.tick(l.now)
		l.compact()
		switch e.kind {
		case evArrival:
			l.arrive(e.req)
		case evTimeout:
			l.fireTimeout(e)
		case evDeadline:
			l.fireDeadline(e)
		case evDone:
			l.fireDone(e)
		case evFault:
			l.injectFault(e.pipe, e.fault)
		case evRepair:
			l.fireRepair(e)
		case evRetry:
			l.redispatch(e.b)
		case evFree:
			l.tryDispatch()
		}
	}
}

// compact prunes finished slots (finish ≤ now) from the pipeline chains, so
// the backlog and preemption scans stay proportional to the live schedule,
// not the whole history. Slot finishes are non-decreasing along a chain, so
// the finished work is always a prefix; its last finish becomes the floor.
func (l *eventLoop) compact() {
	for p, chain := range l.chains {
		i := 0
		for i < len(chain) && chain[i].finish <= l.now {
			l.floors[p] = chain[i].finish
			i++
		}
		if i > 0 {
			l.chains[p] = chain[i:]
		}
	}
}

// backlog counts admitted-but-unstarted jobs of priority ≥ minPrio: queued
// requests plus jobs in unstarted slots. Without preemption minPrio is 0,
// which counts everything — the original backlog-cap semantics.
func (l *eventLoop) backlog(minPrio int) int {
	n := 0
	for _, q := range l.queues {
		if q.key.priority >= minPrio {
			n += len(q.reqs)
		}
	}
	for _, chain := range l.chains {
		for _, s := range chain {
			if s.start > l.now && s.b.Priority >= minPrio {
				n += len(s.b.JobIDs)
			}
		}
	}
	return n
}

// arrive admits one request: backlog cap, queue insertion, batch closure on
// fill (close-at-admission mode) or a dispatch attempt (continuous mode).
func (l *eventLoop) arrive(r Request) {
	if cap := l.cfg.Admission.MaxBacklog; cap > 0 {
		// With preemption, a request only competes for backlog space with
		// work of its own priority or above: online arrivals are no longer
		// rejected just because offline work is queued — the offline tier
		// absorbs the overload by waiting instead.
		minPrio := 0
		if l.cfg.Admission.Preemption {
			minPrio = r.Priority
		}
		if l.backlog(minPrio) >= cap {
			l.rejected = append(l.rejected, r.ID)
			l.cfg.Telemetry.onReject(r)
			return
		}
	}
	k := queueKey{priority: r.Priority, class: r.Class}
	q := l.queues[k]
	if q == nil {
		q = &classQueue{key: k}
		l.queues[k] = q
	}
	if len(q.reqs) == 0 {
		l.push(event{at: r.ArrivalSec + l.cfg.Admission.MaxWaitSec, kind: evTimeout, key: k,
			dl: r.ArrivalSec + l.cfg.Admission.MaxWaitSec})
	}
	q.reqs = append(q.reqs, r)
	l.cfg.Telemetry.onArrival(r)
	l.cfg.Telemetry.onQueueDepth(k, len(q.reqs))
	if l.cfg.Admission.Preemption && r.DeadlineSec > 0 {
		l.push(event{at: r.StartDeadline(), kind: evDeadline, req: r})
	}
	if l.cfg.Admission.ContinuousBatching {
		l.tryDispatch()
	} else if len(q.reqs) >= l.cfg.Admission.MaxBatch {
		l.closeQueue(q, r.ArrivalSec)
	}
}

// fireTimeout handles a max-wait expiry. Stale events — the queue already
// closed, or refilled with a later head — are skipped: the armed deadline
// no longer matches.
func (l *eventLoop) fireTimeout(e event) {
	q := l.queues[e.key]
	if q == nil || len(q.reqs) == 0 || q.waitDeadline(l.cfg.Admission.MaxWaitSec) != e.dl {
		return
	}
	if l.cfg.Admission.ContinuousBatching {
		l.tryDispatch()
		return
	}
	l.closeQueue(q, e.dl)
}

// fireDeadline handles a start-deadline expiry (preemption mode only): if
// the request is still waiting in its queue, its partial batch closes right
// now and dispatches with deadline-aware placement, instead of waiting out
// the max-wait timer behind offline work.
func (l *eventLoop) fireDeadline(e event) {
	q := l.queues[queueKey{priority: e.req.Priority, class: e.req.Class}]
	if q == nil {
		return
	}
	waiting := false
	for _, r := range q.reqs {
		if r.ID == e.req.ID {
			waiting = true
			break
		}
	}
	if !waiting {
		return // already batched (and possibly already running)
	}
	if l.cfg.Admission.ContinuousBatching {
		l.tryDispatch() // the queue is ripe now via its min start deadline
		return
	}
	l.closeQueue(q, l.now)
}

// makeBatch forms a BatchJob from requests of one queue.
func makeBatch(k queueKey, reqs []Request, release float64) BatchJob {
	b := BatchJob{Class: k.class, Priority: k.priority, ReleaseSec: release}
	for _, r := range reqs {
		b.JobIDs = append(b.JobIDs, r.ID)
		b.Arrivals = append(b.Arrivals, r.ArrivalSec)
		if r.DeadlineSec > 0 {
			b.Deadlines = append(b.Deadlines, r.ArrivalSec+r.DeadlineSec)
		} else {
			b.Deadlines = append(b.Deadlines, 0)
		}
	}
	return b
}

// minDeadline is the batch's earliest member start deadline, or +Inf.
func minDeadline(b BatchJob) float64 {
	min := math.Inf(1)
	for _, d := range b.Deadlines {
		if d > 0 && d < min {
			min = d
		}
	}
	return min
}

// closeQueue forms a batch from everything waiting in q, releases it at the
// given time, and places it (close-at-admission mode).
func (l *eventLoop) closeQueue(q *classQueue, release float64) {
	b := makeBatch(q.key, q.reqs, release)
	q.reqs = nil
	l.cfg.Telemetry.onQueueDepth(q.key, 0)
	l.place(b)
}

// commitSlot materializes a planned placement as a schedule slot. With a
// fault injector active it also draws the attempt's transient-error fate
// (at commit, in dispatch order — single-goroutine, so the PRNG stream is
// deterministic) and arms a completion event carrying the finish it was
// armed for, so preemption-shifted slots invalidate stale completions.
func (l *eventLoop) commitSlot(b BatchJob, pl placement) *slot {
	s := &slot{
		b: b, rep: placementReport{rep: pl.rep, execSec: pl.sec},
		pipe: pl.p, start: pl.start, finish: pl.start + pl.sec,
		degraded: pl.degraded, writeFrac: 1,
	}
	l.d.freeAt[pl.p] = s.finish
	l.chains[pl.p] = append(l.chains[pl.p], s)
	l.order = append(l.order, s)
	l.cfg.Telemetry.onDispatch(l.now, s, l.cfg.Fleet[pl.p].Name)
	if l.inj != nil {
		s.transient = l.inj.BatchFails(pl.p)
		if pl.degraded {
			l.ft.degradedB++
			l.ft.degradedJ += len(b.JobIDs)
			l.cfg.Telemetry.onDegrade(l.now, s, l.cfg.Fleet[pl.p].Name)
		}
		l.push(event{at: s.finish, kind: evDone, s: s, dl: s.finish})
	}
	return s
}

// failSlot records a batch no pipeline could place.
func (l *eventLoop) failSlot(b BatchJob, reason string) {
	l.order = append(l.order, &slot{b: b, pipe: -1, reason: reason})
	l.cfg.Telemetry.onFail(l.now, b, reason)
}

// place dispatches a closed batch (close-at-admission mode). Under
// preemption, a batch that would miss its earliest member deadline on the
// policy's pick instead takes the pipeline where it can start soonest after
// evicting strictly-lower-priority unstarted slots; evicted batches are
// re-enqueued, never dropped.
func (l *eventLoop) place(b BatchJob) {
	pl, feasible, nextAvail := l.d.plan(b, l.now)
	if pl.p >= 0 && l.cfg.Admission.Preemption && minDeadline(b) < pl.start {
		if p, est := l.bestPreemptive(b); p >= 0 && est < pl.start {
			l.preemptInto(p, b)
			return
		}
	}
	l.finishPlacement(b, pl, feasible, nextAvail)
}

// placePlain dispatches without the preemption escalation — used for
// re-dispatching evicted batches, so one eviction cannot cascade.
func (l *eventLoop) placePlain(b BatchJob) {
	pl, feasible, nextAvail := l.d.plan(b, l.now)
	l.finishPlacement(b, pl, feasible, nextAvail)
}

// finishPlacement settles a plan (close-at-admission mode): commit it,
// or — when every pipeline that could serve the batch is temporarily down
// or quarantined — defer to the earliest re-admission instant instead of
// failing work the fleet will soon be able to run. Only a batch no pipeline
// can ever place fails terminally.
func (l *eventLoop) finishPlacement(b BatchJob, pl placement, feasible bool, nextAvail float64) {
	switch {
	case pl.p >= 0:
		l.commitSlot(b, pl)
	case feasible && !math.IsInf(nextAvail, 1):
		l.push(event{at: nextAvail, kind: evRetry, b: b})
	default:
		l.failSlot(b, pl.reason)
	}
}

// bestPreemptive returns the feasible pipeline on which b would start
// earliest if every strictly-lower-priority unstarted slot there were
// evicted, with that start time. Started slots never move: preemption acts
// only at batch boundaries.
func (l *eventLoop) bestPreemptive(b BatchJob) (int, float64) {
	n := len(b.JobIDs)
	best, bestStart := -1, math.Inf(1)
	for p := range l.d.fleet {
		rep := l.d.report(p, b.Class, n)
		if rep.OOM || rep.Batch < 1 {
			continue
		}
		if l.d.avail(p) > l.now {
			continue // down, quarantined, or worn out: nothing to preempt into
		}
		prevFinish := l.floors[p]
		for _, s := range l.chains[p] {
			switch {
			case s.start <= l.now:
				prevFinish = s.finish // started: immovable
			case s.b.Priority >= b.Priority:
				st := math.Max(s.b.ReleaseSec, prevFinish) // survivor, shifted up
				prevFinish = st + s.rep.execSec
			}
			// Strictly-lower-priority unstarted slots would be evicted.
		}
		if est := math.Max(b.ReleaseSec, prevFinish); est < bestStart {
			best, bestStart = p, est
		}
	}
	return best, bestStart
}

// preemptInto evicts every strictly-lower-priority unstarted slot on
// pipeline p, re-times the survivors, places b at the end of the compacted
// chain, and re-dispatches the evicted batches at the current instant —
// work is displaced, never lost.
func (l *eventLoop) preemptInto(p int, b BatchJob) {
	var kept, evicted []*slot
	for _, s := range l.chains[p] {
		if s.start > l.now && s.b.Priority < b.Priority {
			s.evicted = true
			evicted = append(evicted, s)
		} else {
			kept = append(kept, s)
		}
	}
	l.chains[p] = kept
	l.recompute(p)

	n := len(b.JobIDs)
	rep := l.d.report(p, b.Class, n)
	start := math.Max(b.ReleaseSec, l.d.freeAt[p])
	sec := l.d.execSec(p, b.Class, n, rep) * l.d.slow(p, start)
	l.commitSlot(b, placement{p: p, rep: rep, sec: sec, start: start})

	for _, ev := range evicted {
		l.tally.batches++
		l.tally.jobs += len(ev.b.JobIDs)
		l.tally.byPrio[ev.b.Priority] += len(ev.b.JobIDs)
		l.cfg.Telemetry.onPreempt(l.now, ev, b.Priority, l.cfg.Fleet[p].Name)
	}
	for _, ev := range evicted {
		nb := ev.b
		nb.ReleaseSec = l.now
		l.placePlain(nb)
	}
}

// recompute re-times pipeline p's unstarted suffix after an eviction:
// survivors shift up to max(their release, predecessor finish), and the
// pipeline clock tracks the new chain end. With faults active each shifted
// slot re-arms its completion event for the new finish; the events armed
// for the old finish go stale (their dl no longer matches) and a done flag
// dedups the case where two armings land on the same instant.
func (l *eventLoop) recompute(p int) {
	prevFinish := l.floors[p]
	for _, s := range l.chains[p] {
		if s.start <= l.now {
			prevFinish = s.finish
			continue
		}
		old := s.finish
		s.start = math.Max(s.b.ReleaseSec, prevFinish)
		s.finish = s.start + s.rep.execSec
		prevFinish = s.finish
		if l.inj != nil && s.finish != old {
			l.push(event{at: s.finish, kind: evDone, s: s, dl: s.finish})
		}
	}
	l.d.freeAt[p] = prevFinish
}

// slotWriteBytes is the flash write volume of one attempt at full
// completion — assignmentWriteBytes' twin on the loop's slot form, used to
// charge wear budgets as writes land.
func slotWriteBytes(s *slot) float64 {
	rep := s.rep.rep
	if rep.Batch < 1 {
		return 0
	}
	n := len(s.b.JobIDs)
	passes := float64((n + rep.Batch - 1) / rep.Batch)
	steps := s.b.Class.Output - 1
	if steps < 0 {
		steps = 0
	}
	return passes * (rep.PrefillWriteBytes + rep.DecodeWriteBytesPerStep*float64(steps))
}

// fireDone settles one attempt at its finish (faults active only): charge
// the attempt's flash writes against the pipeline's wear budget, then
// resolve its transient-error fate. Stale events — the slot was evicted,
// killed, or re-timed by preemption — are skipped; the done flag dedups
// re-armed events that landed on the same finish.
func (l *eventLoop) fireDone(e event) {
	s := e.s
	if s.done || s.evicted || s.aborted || s.finish != e.dl {
		return
	}
	s.done = true
	p := s.pipe
	if l.health[p].wear.Add(slotWriteBytes(s)) {
		// This attempt's writes crossed the endurance budget: the pipeline
		// retires permanently, effective now (the completion boundary).
		l.injectFault(p, faults.Event{Kind: faults.WearOut, Pipeline: p, AtSec: l.now})
	}
	if s.transient {
		s.aborted = true
		s.reason = "transient batch error"
		l.noteFailure(p)
		l.failAttempt(p, s.b, "transient batch error")
		return
	}
	l.health[p].consecFails = 0
}

// injectFault applies one injected fault to pipeline p: a wear-out retires
// it permanently, a fail-stop takes it down for the event's repair window
// (with the repair re-admission scheduled). The running slot dies on the
// spot — its flash writes prorated by run fraction, its batch routed into
// the retry path — and queued-ahead work fails over immediately.
func (l *eventLoop) injectFault(p int, fe faults.Event) {
	h := &l.health[p]
	if math.IsInf(h.downUntil, 1) {
		return // already permanently retired
	}
	if fe.Kind == faults.WearOut {
		h.downUntil = math.Inf(1)
		h.wearOut = true
	} else {
		if h.downUntil > l.now {
			return // overlapping fail-stop: the pipeline is already down
		}
		h.downUntil = l.now + fe.DurationSec
		l.push(event{at: h.downUntil, kind: evRepair, pipe: p})
	}
	h.faults++
	l.ft.faults++
	l.cfg.Telemetry.onFault(l.now, l.cfg.Fleet[p].Name, fe)
	for _, s := range l.chains[p] {
		if s.aborted || s.evicted || s.start > l.now || s.finish <= l.now {
			continue
		}
		frac := 0.0
		if s.finish > s.start {
			frac = (l.now - s.start) / (s.finish - s.start)
		}
		s.aborted = true
		s.writeFrac = frac
		s.finish = l.now
		s.reason = "killed by " + string(fe.Kind)
		if h.wear.Add(frac * slotWriteBytes(s)) {
			// The partial writes themselves exhausted the budget: the
			// repair window becomes moot — the device is worn out.
			h.downUntil = math.Inf(1)
			h.wearOut = true
		}
		l.failAttempt(p, s.b, "killed by "+string(fe.Kind))
	}
	l.evictUnstarted(p, string(fe.Kind))
}

// fireRepair re-admits pipeline p when its downtime and quarantine have
// both passed (a repair armed for a window that was later superseded — or
// for a pipeline that wore out permanently in the meantime — is stale and
// skipped), then offers it the waiting work.
func (l *eventLoop) fireRepair(e event) {
	p := e.pipe
	h := &l.health[p]
	if h.downUntil > l.now || h.quarUntil > l.now {
		return
	}
	h.consecFails = 0
	l.cfg.Telemetry.onRepair(l.now, l.cfg.Fleet[p].Name)
	l.tryDispatch()
}

// failAttempt routes one failed attempt of a batch: re-dispatch after
// deterministic exponential backoff while the retry budget lasts, terminal
// failure once it is exhausted. Backoff is never jittered — replays are
// bit-identical.
func (l *eventLoop) failAttempt(p int, b BatchJob, reason string) {
	attempt := b.Attempt + 1
	if attempt > l.retry.MaxRetries {
		l.failSlot(b, reason+" (retries exhausted)")
		return
	}
	nb := b
	nb.Attempt = attempt
	nb.ReleaseSec = l.now + l.retry.backoffSec(attempt)
	l.ft.retryBatches++
	l.ft.retryJobs += len(nb.JobIDs)
	l.cfg.Telemetry.onRetry(l.now, nb, reason, l.cfg.Fleet[p].Name)
	l.push(event{at: nb.ReleaseSec, kind: evRetry, b: nb})
}

// noteFailure advances pipeline p's circuit breaker after a failed attempt:
// at FailureThreshold consecutive failures the pipeline is quarantined for
// QuarantineSec, its queued-ahead work fails over, and a re-admission is
// scheduled. Runs before the failed batch's own retry is armed, so even a
// zero-backoff retry sees the quarantine.
func (l *eventLoop) noteFailure(p int) {
	h := &l.health[p]
	h.consecFails++
	if l.retry.FailureThreshold <= 0 || h.consecFails < l.retry.FailureThreshold {
		return
	}
	if h.downUntil > l.now || h.quarUntil > l.now {
		return // already out of service
	}
	h.consecFails = 0
	h.quarUntil = l.now + l.retry.QuarantineSec
	h.quarantines++
	l.ft.quarantines++
	l.cfg.Telemetry.onQuarantine(l.now, l.cfg.Fleet[p].Name, l.retry.QuarantineSec)
	l.evictUnstarted(p, "quarantine")
	l.push(event{at: h.quarUntil, kind: evRepair, pipe: p})
}

// evictUnstarted fails pipeline p's queued-ahead (unstarted) slots over to
// the rest of the fleet: each is evicted and re-dispatched at the current
// instant, exactly like a preemption eviction — displaced, never lost. The
// chain is re-timed unconditionally, which also rewinds the pipeline clock
// after a kill truncated the running slot.
func (l *eventLoop) evictUnstarted(p int, cause string) {
	var kept, evicted []*slot
	for _, s := range l.chains[p] {
		if s.start > l.now {
			s.evicted = true
			evicted = append(evicted, s)
		} else {
			kept = append(kept, s)
		}
	}
	l.chains[p] = kept
	l.recompute(p)
	for _, ev := range evicted {
		l.ft.failedOverB++
		l.ft.failedOverJ += len(ev.b.JobIDs)
		l.cfg.Telemetry.onFailover(l.now, ev, cause, l.cfg.Fleet[p].Name)
	}
	for _, ev := range evicted {
		nb := ev.b
		nb.ReleaseSec = l.now
		l.redispatch(nb)
	}
}

// redispatch places recovered work (a retry whose backoff expired, or a
// failed-over batch): continuous mode parks it on the pendingRetries list
// — drained ahead of the queues at the next dispatch opportunity — while
// close-at-admission mode re-plans immediately, deferring again if the
// whole fleet is still out of service.
func (l *eventLoop) redispatch(b BatchJob) {
	if b.ReleaseSec < l.now {
		// Recovered work re-releases at the instant it re-enters dispatch:
		// a batch deferred past its backoff expiry must not be backdated to
		// a start while its pipeline was still down.
		b.ReleaseSec = l.now
	}
	if l.cfg.Admission.ContinuousBatching {
		l.pendingRetries = append(l.pendingRetries, b)
		l.tryDispatch()
		return
	}
	l.placePlain(b)
}

// ripe reports whether a queue may dispatch now (continuous mode): a full
// batch is waiting, the oldest member's max wait expired, or — under
// preemption — a member's start deadline arrived.
func (l *eventLoop) ripe(q *classQueue) bool {
	if len(q.reqs) >= l.cfg.Admission.MaxBatch {
		return true
	}
	if q.waitDeadline(l.cfg.Admission.MaxWaitSec) <= l.now {
		return true
	}
	return l.cfg.Admission.Preemption && q.minStartDeadline() <= l.now
}

// ripeQueues returns the dispatchable queues in scheduling order: priority
// first, then oldest waiting head, then class key order.
func (l *eventLoop) ripeQueues() []*classQueue {
	var qs []*classQueue
	for _, q := range l.queues {
		if len(q.reqs) > 0 && l.ripe(q) {
			qs = append(qs, q)
		}
	}
	sort.Slice(qs, func(i, j int) bool {
		a, b := qs[i], qs[j]
		if a.key.priority != b.key.priority {
			return a.key.priority > b.key.priority
		}
		if a.reqs[0].ArrivalSec != b.reqs[0].ArrivalSec {
			return a.reqs[0].ArrivalSec < b.reqs[0].ArrivalSec
		}
		return a.key.cmp(b.key) < 0
	})
	return qs
}

// tryDispatch is the continuous-batching scheduler: while an idle pipeline
// can take a ripe queue's batch, re-pack up to MaxBatch of its oldest
// requests and start them immediately. Batches are therefore formed at
// dispatch time — a pipeline freeing early picks up whatever has queued
// since, instead of a stale admission-time batch.
func (l *eventLoop) tryDispatch() {
	if !l.cfg.Admission.ContinuousBatching {
		return
	}
	for {
		if l.dispatchRetry() {
			continue
		}
		placed := false
		for _, q := range l.ripeQueues() {
			n := len(q.reqs)
			if n > l.cfg.Admission.MaxBatch {
				n = l.cfg.Admission.MaxBatch
			}
			b := makeBatch(q.key, q.reqs[:n], l.now)
			pl, feasible, _ := l.d.planIdle(b, l.now)
			if pl.p < 0 {
				if feasible {
					continue // every feasible pipeline is busy or down: wait for a free/repair event
				}
				l.takeFromQueue(q, n)
				l.failSlot(b, pl.reason)
				placed = true
				break
			}
			l.takeFromQueue(q, n)
			s := l.commitSlot(b, pl)
			l.push(event{at: s.finish, kind: evFree})
			placed = true
			break
		}
		if !placed {
			return
		}
	}
}

// dispatchRetry tries to place one batch off the pendingRetries list
// (continuous mode): recovered work dispatches ahead of the queues because
// it is the oldest admitted work. A batch no fleet member can ever serve
// again fails terminally; one that is merely waiting on busy or recovering
// pipelines stays parked for the next free/repair event.
func (l *eventLoop) dispatchRetry() bool {
	for i, b := range l.pendingRetries {
		if b.ReleaseSec < l.now {
			b.ReleaseSec = l.now // parked since an earlier instant: re-release now
		}
		pl, feasible, _ := l.d.planIdle(b, l.now)
		if pl.p < 0 {
			if feasible {
				continue
			}
			l.pendingRetries = append(l.pendingRetries[:i], l.pendingRetries[i+1:]...)
			l.failSlot(b, pl.reason)
			return true
		}
		l.pendingRetries = append(l.pendingRetries[:i], l.pendingRetries[i+1:]...)
		s := l.commitSlot(b, pl)
		l.push(event{at: s.finish, kind: evFree})
		return true
	}
	return false
}

// takeFromQueue removes the queue's n oldest requests and re-arms its
// max-wait timer for the new head.
func (l *eventLoop) takeFromQueue(q *classQueue, n int) {
	q.reqs = append([]Request(nil), q.reqs[n:]...)
	l.cfg.Telemetry.onQueueDepth(q.key, len(q.reqs))
	if len(q.reqs) > 0 {
		dl := q.waitDeadline(l.cfg.Admission.MaxWaitSec)
		at := dl
		if at < l.now {
			at = l.now
		}
		l.push(event{at: at, kind: evTimeout, key: q.key, dl: dl})
	}
}

// Run drains a timestamped trace through the fleet: the full discrete-event
// loop of arrivals, per-priority-class queues, batch formation (at admission
// or, with continuous batching, at dispatch) and policy placement, with
// deadline-aware preemption when enabled. Requests are processed in arrival
// order (ties by ID); expired wait timeouts fire, in deadline order, before
// any later arrival is admitted, and remaining queues flush at their
// deadlines after the trace ends. The result is identical run to run.
func Run(cfg Config, reqs []Request) (Summary, error) {
	if err := cfg.Admission.validate(); err != nil {
		return Summary{}, err
	}
	if err := cfg.Retry.validate(); err != nil {
		return Summary{}, err
	}
	if len(reqs) == 0 {
		return Summary{}, fmt.Errorf("cluster: empty trace")
	}
	d, err := newDispatcher(cfg.Model, cfg.Fleet, cfg.Policy)
	if err != nil {
		return Summary{}, err
	}
	// An injector with nothing to inject is dropped entirely: every fault
	// path below keys off inj != nil, so the empty-injector run is the
	// fault-free run, bit for bit.
	inj := cfg.Faults
	if inj.Empty() {
		inj = nil
	}

	sorted := make([]Request, len(reqs))
	copy(sorted, reqs)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].ArrivalSec != sorted[j].ArrivalSec {
			return sorted[i].ArrivalSec < sorted[j].ArrivalSec
		}
		return sorted[i].ID < sorted[j].ID
	})
	for _, r := range sorted {
		if r.ArrivalSec < 0 || math.IsInf(r.ArrivalSec, 0) || math.IsNaN(r.ArrivalSec) {
			return Summary{}, fmt.Errorf("cluster: arrival time %g for request %d is not finite and ≥ 0", r.ArrivalSec, r.ID)
		}
		if r.Priority < 0 {
			return Summary{}, fmt.Errorf("cluster: priority %d for request %d is negative", r.Priority, r.ID)
		}
		if r.DeadlineSec < 0 || math.IsInf(r.DeadlineSec, 0) || math.IsNaN(r.DeadlineSec) {
			return Summary{}, fmt.Errorf("cluster: deadline %g for request %d is not finite and ≥ 0", r.DeadlineSec, r.ID)
		}
	}

	// Prewarm the dominant shapes (every distinct class shape at the target
	// batch size on every pipeline) concurrently; odd tail sizes simulate
	// lazily on the event loop.
	var shapes []prewarmShape
	seenClass := map[workload.Class]bool{}
	for _, r := range sorted {
		if seenClass[r.Class] {
			continue
		}
		seenClass[r.Class] = true
		for p := range cfg.Fleet {
			shapes = append(shapes, prewarmShape{p: p, c: r.Class, size: cfg.Admission.MaxBatch})
		}
	}
	d.prewarm(shapes)

	l := &eventLoop{
		cfg:    cfg,
		d:      d,
		queues: map[queueKey]*classQueue{},
		chains: make([][]*slot, len(cfg.Fleet)),
		floors: make([]float64, len(cfg.Fleet)),
		tally:  preemptTally{byPrio: map[int]int{}},
		inj:    inj,
		retry:  cfg.Retry,
		health: make([]pipeHealth, len(cfg.Fleet)),
	}
	for _, r := range sorted {
		l.push(event{at: r.ArrivalSec, kind: evArrival, req: r})
	}
	if inj != nil {
		d.availAt = l.availAt
		d.slowAt = inj.SlowFactor
		for p := range l.health {
			if budget := inj.WearBudgetBytes(p); budget > 0 {
				l.health[p].wear = endurance.NewBudget(budget)
			}
		}
		for _, fe := range inj.FailStops() {
			if fe.Pipeline >= len(cfg.Fleet) {
				return Summary{}, fmt.Errorf("cluster: fault schedule targets pipeline %d of a %d-pipeline fleet", fe.Pipeline, len(cfg.Fleet))
			}
			l.push(event{at: fe.AtSec, kind: evFault, pipe: fe.Pipeline, fault: fe})
		}
	}
	l.run()
	// Job conservation's backstop: recovered work still parked when the
	// event heap drains means no pipeline will ever serve it — fail it
	// terminally rather than lose it silently.
	for _, b := range l.pendingRetries {
		l.failSlot(b, "no healthy pipeline before trace end")
	}
	l.pendingRetries = nil

	asgs := make([]Assignment, 0, len(l.order))
	fracs := make([]float64, 0, len(l.order))
	for _, s := range l.order {
		if s.evicted {
			continue
		}
		if s.pipe < 0 {
			asgs = append(asgs, Assignment{Batch: s.b, Pipeline: -1, Reason: s.reason})
			fracs = append(fracs, 0)
			continue
		}
		asgs = append(asgs, Assignment{
			Batch: s.b, Pipeline: s.pipe,
			StartSec: s.start, FinishSec: s.finish,
			Report:  s.rep.rep,
			Aborted: s.aborted, Reason: s.reason,
		})
		fracs = append(fracs, s.writeFrac)
	}
	return summarize(cfg, sorted, asgs, l.rejected, sorted[0].ArrivalSec, l.tally, l.ft, l.health, fracs), nil
}
