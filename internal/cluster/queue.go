package cluster

import (
	"container/heap"
	"math"

	"repro/internal/faults"
	"repro/internal/workload"
)

// queueKey identifies one admission queue: a priority class over one request
// shape. Queues key on the full class shape, not just the name, because a
// replayed trace may reuse one label for different request shapes, and
// merging those into one batch would simulate them at the wrong shape.
type queueKey struct {
	priority int
	class    workload.Class
}

// cmp orders keys for deterministic scheduling: higher priority first, then
// class name, then shape. With a single priority class this degenerates to
// the pre-priority ordering (name, input, output).
func (k queueKey) cmp(o queueKey) int {
	switch {
	case k.priority != o.priority:
		if k.priority > o.priority {
			return -1
		}
		return 1
	case k.class.Name != o.class.Name:
		if k.class.Name < o.class.Name {
			return -1
		}
		return 1
	case k.class.Input != o.class.Input:
		if k.class.Input < o.class.Input {
			return -1
		}
		return 1
	case k.class.Output != o.class.Output:
		if k.class.Output < o.class.Output {
			return -1
		}
		return 1
	}
	return 0
}

// classQueue is one per-priority-per-shape admission queue, FIFO in arrival
// order.
type classQueue struct {
	key  queueKey
	reqs []Request
}

// waitDeadline is when the oldest member's max-wait timeout fires.
func (q *classQueue) waitDeadline(maxWait float64) float64 {
	return q.reqs[0].ArrivalSec + maxWait
}

// minStartDeadline is the earliest absolute start deadline among queued
// members, or +Inf when none carries one.
func (q *classQueue) minStartDeadline() float64 {
	min := math.Inf(1)
	for _, r := range q.reqs {
		if d := r.StartDeadline(); d < min {
			min = d
		}
	}
	return min
}

// Event kinds, in pop order at equal timestamps. Arrivals precede timeouts
// so a request arriving at a queue's exact wait deadline still joins its
// batch (the pre-event-loop admission semantics); deadline events follow.
// The fault-machinery kinds (all absent without an injector) order so that
// at one instant a batch finishing exactly when a fault fires still
// completes (done before fault), a repair precedes any retry armed for the
// repair instant (the retried batch sees the pipeline healthy), and
// pipeline-free dispatch runs last, over settled health state.
const (
	evArrival = iota
	evTimeout
	evDeadline
	evDone   // a committed slot reaches its finish (armed only with faults)
	evFault  // an injected fail-stop or wear-out fires
	evRepair // a pipeline re-admits (repair window or quarantine expiry)
	evRetry  // a failed batch's backoff expired: re-place it
	evFree
)

// event is one entry on the simulated-clock event heap.
type event struct {
	at   float64
	kind int
	seq  int     // creation order: the final deterministic tie-break
	req  Request // evArrival, evDeadline: the request involved
	key  queueKey
	dl   float64 // evTimeout/evDone: the deadline/finish the event was armed for

	pipe  int          // evFault, evRepair: the pipeline involved
	fault faults.Event // evFault: the injected fault
	b     BatchJob     // evRetry: the batch to re-place
	s     *slot        // evDone: the slot whose finish this narrates
}

// eventHeap is a min-heap over (time, kind, queue order, sequence).
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	a, b := h[i], h[j]
	if a.at != b.at {
		return a.at < b.at
	}
	if a.kind != b.kind {
		return a.kind < b.kind
	}
	if a.kind == evTimeout {
		// Simultaneous timeouts fire in queue order, matching the old
		// fireExpired tie-break on the class shape key.
		if c := a.key.cmp(b.key); c != 0 {
			return c < 0
		}
	}
	return a.seq < b.seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h *eventHeap) push(e event) { heap.Push(h, e) }
func (h *eventHeap) pop() event   { return heap.Pop(h).(event) }
