// Package cluster is the trace-driven service layer over heterogeneous
// engine fleets: a discrete-event, simulated-clock dispatcher that admits
// timestamped requests into per-class queues, packs batches under a
// max-batch/max-wait admission policy (batcher-style timeout semantics),
// and assigns each batch to one pipeline of a fleet whose members may be
// backed by *different* registered engines (e.g. two HILOS hosts, a DRAM
// baseline, and an InstInfer tier) under a pluggable cost-aware policy.
//
// The offline backlog of internal/serving is the degenerate trace — every
// request arrives at time zero over identical pipelines — so
// serving.Evaluate delegates to this package's Dispatch core: there is one
// scheduling implementation, not two.
//
// Everything is deterministic under -race: engine simulations are pure and
// prewarmed on a worker pool, while admission and assignment run on a
// single goroutine against the simulated clock.
package cluster

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/energy"
	"repro/internal/model"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Request is one timestamped inference request.
type Request = workload.TimedRequest

// Admission is the batch-formation policy: a per-class batch closes when it
// reaches MaxBatch requests or when its oldest member has waited MaxWaitSec
// (whichever comes first), and new arrivals are rejected while the admitted
// backlog holds MaxBacklog or more not-yet-started requests.
type Admission struct {
	// MaxBatch is the target batch size (≥ 1).
	MaxBatch int
	// MaxWaitSec is how long the oldest queued request may wait before its
	// partial batch is released anyway. 0 releases a batch at the first
	// arrival instant that leaves it partial; offline studies use a large
	// value so batches always fill.
	MaxWaitSec float64
	// MaxBacklog caps admitted-but-unstarted requests (queued plus assigned
	// to a pipeline that has not begun them). Arrivals beyond the cap are
	// rejected — the knob that makes online/offline mixes studyable. 0
	// means unbounded (pure offline admission).
	MaxBacklog int
}

func (a Admission) validate() error {
	if a.MaxBatch < 1 {
		return fmt.Errorf("cluster: admission max batch must be ≥ 1, got %d", a.MaxBatch)
	}
	if a.MaxWaitSec < 0 || math.IsInf(a.MaxWaitSec, 0) || math.IsNaN(a.MaxWaitSec) {
		return fmt.Errorf("cluster: admission max wait must be finite and ≥ 0, got %g", a.MaxWaitSec)
	}
	if a.MaxBacklog < 0 {
		return fmt.Errorf("cluster: admission max backlog must be ≥ 0, got %d", a.MaxBacklog)
	}
	return nil
}

// Config describes one cluster evaluation.
type Config struct {
	Model     model.Config
	Fleet     []Pipeline
	Policy    Policy
	Admission Admission
}

// PipelineStats attributes completed work to one fleet member.
type PipelineStats struct {
	Name    string
	Batches int
	Jobs    int
	// BusySec is total execution time on this pipeline; Utilization is
	// BusySec over the cluster makespan.
	BusySec      float64
	Utilization  float64
	OutputTokens int64
	// CostUSD is the amortized hardware dollars charged for BusySec.
	CostUSD float64
	// EnergyJ integrates the Fig. 17(a) model over the pipeline's completed
	// work (0 when the pipeline has no energy config).
	EnergyJ float64
	// EnergyErr records the first energy-integration failure (e.g. a
	// misconfigured EnergyConfig), so a 0 EnergyJ is never silently wrong.
	EnergyErr string
}

// Summary is the outcome of draining a timestamped trace through a fleet.
type Summary struct {
	Policy Policy

	// Requests counts the input trace; Admitted + Rejected == Requests, and
	// Admitted == Completed + Failed.
	Requests  int
	Admitted  int
	Completed int

	// RejectedJobs were turned away at admission (backlog cap); FailedJobs
	// were admitted but no pipeline could place their batch.
	RejectedJobs   int
	RejectedJobIDs []int
	FailedBatches  int
	FailedJobs     int
	FailedJobIDs   []int

	Batches int
	// MakespanSec is the time from the first arrival to the completion of
	// the last batch, so traces whose timestamps carry an offset (e.g.
	// seconds-of-day recordings) do not dilute throughput or utilization.
	// Assignment Start/FinishSec stay on the absolute trace clock.
	MakespanSec  float64
	OutputTokens int64

	// Queueing delay — batch execution start minus request arrival — over
	// completed requests.
	DelayMeanSec float64
	DelayP50Sec  float64
	DelayP95Sec  float64
	DelayP99Sec  float64

	// PerClassSec attributes execution seconds to request classes.
	PerClassSec map[string]float64
	// Pipelines attributes work, cost and energy per fleet member.
	Pipelines []PipelineStats
	// Assignments records every batch's routing decision, in dispatch
	// order, for policy comparisons.
	Assignments []Assignment

	// TotalCostUSD and TotalEnergyJ sum the per-pipeline attributions.
	TotalCostUSD float64
	TotalEnergyJ float64
}

// Throughput returns output tokens per second over the makespan.
func (s Summary) Throughput() float64 {
	if s.MakespanSec <= 0 {
		return 0
	}
	return float64(s.OutputTokens) / s.MakespanSec
}

// classQueue is one per-class admission queue.
type classQueue struct {
	class workload.Class
	reqs  []Request
}

func (q *classQueue) deadline(maxWait float64) float64 {
	return q.reqs[0].ArrivalSec + maxWait
}

// unstarted tracks jobs assigned to a pipeline that has not begun them, for
// the backlog cap.
type unstarted struct {
	startSec float64
	jobs     int
}

// Run drains a timestamped trace through the fleet: the full discrete-event
// loop of arrivals, per-class queues, batch closure (full or timed out) and
// immediate policy dispatch. Requests are processed in arrival order (ties
// by ID); expired batch timeouts fire, in deadline order, before any later
// arrival is admitted, and remaining queues flush at their deadlines after
// the trace ends. The result is identical run to run.
func Run(cfg Config, reqs []Request) (Summary, error) {
	if err := cfg.Admission.validate(); err != nil {
		return Summary{}, err
	}
	if len(reqs) == 0 {
		return Summary{}, fmt.Errorf("cluster: empty trace")
	}
	d, err := newDispatcher(cfg.Model, cfg.Fleet, cfg.Policy)
	if err != nil {
		return Summary{}, err
	}

	sorted := make([]Request, len(reqs))
	copy(sorted, reqs)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].ArrivalSec != sorted[j].ArrivalSec {
			return sorted[i].ArrivalSec < sorted[j].ArrivalSec
		}
		return sorted[i].ID < sorted[j].ID
	})
	for _, r := range sorted {
		if r.ArrivalSec < 0 || math.IsInf(r.ArrivalSec, 0) || math.IsNaN(r.ArrivalSec) {
			return Summary{}, fmt.Errorf("cluster: arrival time %g for request %d is not finite and ≥ 0", r.ArrivalSec, r.ID)
		}
	}

	// Prewarm the dominant shapes (every distinct class shape at the target
	// batch size on every pipeline) concurrently; odd tail sizes simulate
	// lazily on the event loop.
	var shapes []prewarmShape
	seenClass := map[workload.Class]bool{}
	for _, r := range sorted {
		if seenClass[r.Class] {
			continue
		}
		seenClass[r.Class] = true
		for p := range cfg.Fleet {
			shapes = append(shapes, prewarmShape{p: p, c: r.Class, size: cfg.Admission.MaxBatch})
		}
	}
	d.prewarm(shapes)

	// Queues key on the full class shape, not just the name: a replayed
	// trace may reuse one label for different request shapes, and merging
	// those into one batch would simulate them at the wrong shape.
	queues := map[workload.Class]*classQueue{}
	var queued int
	var pendingStarts []unstarted
	var asgs []Assignment
	var rejected []int

	// closeQueue forms a batch from everything waiting in q, releases it at
	// the given time, and dispatches it immediately.
	closeQueue := func(q *classQueue, release float64) {
		b := BatchJob{Class: q.class, ReleaseSec: release}
		for _, r := range q.reqs {
			b.JobIDs = append(b.JobIDs, r.ID)
			b.Arrivals = append(b.Arrivals, r.ArrivalSec)
		}
		queued -= len(q.reqs)
		q.reqs = nil
		a := d.assign(b)
		if a.Pipeline >= 0 {
			pendingStarts = append(pendingStarts, unstarted{startSec: a.StartSec, jobs: len(b.JobIDs)})
		}
		asgs = append(asgs, a)
	}

	// fireExpired closes, in deadline order (ties by class shape), every
	// queue whose timeout lands strictly before now. An arrival at exactly
	// the deadline still joins its batch.
	fireExpired := func(now float64) {
		for {
			var pick *classQueue
			for _, key := range sortedQueueKeys(queues) {
				q := queues[key]
				if len(q.reqs) == 0 {
					continue
				}
				if dl := q.deadline(cfg.Admission.MaxWaitSec); dl < now {
					if pick == nil || dl < pick.deadline(cfg.Admission.MaxWaitSec) {
						pick = q
					}
				}
			}
			if pick == nil {
				return
			}
			closeQueue(pick, pick.deadline(cfg.Admission.MaxWaitSec))
		}
	}

	backlogAt := func(now float64) int {
		kept := pendingStarts[:0]
		n := 0
		for _, u := range pendingStarts {
			if u.startSec > now {
				kept = append(kept, u)
				n += u.jobs
			}
		}
		pendingStarts = kept
		return n + queued
	}

	for _, r := range sorted {
		fireExpired(r.ArrivalSec)
		if cfg.Admission.MaxBacklog > 0 && backlogAt(r.ArrivalSec) >= cfg.Admission.MaxBacklog {
			rejected = append(rejected, r.ID)
			continue
		}
		q := queues[r.Class]
		if q == nil {
			q = &classQueue{class: r.Class}
			queues[r.Class] = q
		}
		q.reqs = append(q.reqs, r)
		queued++
		if len(q.reqs) >= cfg.Admission.MaxBatch {
			closeQueue(q, r.ArrivalSec)
		}
	}
	// Trace exhausted: remaining partial batches flush when their timeouts
	// fire, exactly as they would with no further arrivals.
	fireExpired(math.Inf(1))

	return summarize(cfg, len(reqs), asgs, rejected, sorted[0].ArrivalSec), nil
}

func sortedQueueKeys(qs map[workload.Class]*classQueue) []workload.Class {
	keys := make([]workload.Class, 0, len(qs))
	for k := range qs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Name != keys[j].Name {
			return keys[i].Name < keys[j].Name
		}
		if keys[i].Input != keys[j].Input {
			return keys[i].Input < keys[j].Input
		}
		return keys[i].Output < keys[j].Output
	})
	return keys
}

// summarize folds assignments into the Summary, attributing time, tokens,
// cost and energy per pipeline and computing queueing-delay percentiles.
// startSec is the trace's first arrival; the makespan measures from it.
func summarize(cfg Config, requests int, asgs []Assignment, rejected []int, startSec float64) Summary {
	s := Summary{
		Policy:         cfg.Policy,
		Requests:       requests,
		RejectedJobs:   len(rejected),
		RejectedJobIDs: rejected,
		PerClassSec:    map[string]float64{},
		Pipelines:      make([]PipelineStats, len(cfg.Fleet)),
		Assignments:    asgs,
	}
	for i, p := range cfg.Fleet {
		s.Pipelines[i].Name = p.Name
	}
	var delays []float64
	for _, a := range asgs {
		s.Batches++
		n := len(a.Batch.JobIDs)
		if a.Pipeline < 0 {
			s.FailedBatches++
			s.FailedJobs += n
			s.FailedJobIDs = append(s.FailedJobIDs, a.Batch.JobIDs...)
			continue
		}
		ps := &s.Pipelines[a.Pipeline]
		ps.Batches++
		ps.Jobs += n
		sec := a.ExecSec()
		ps.BusySec += sec
		toks := int64(n) * int64(a.Batch.Class.Output)
		ps.OutputTokens += toks
		s.OutputTokens += toks
		s.PerClassSec[a.Batch.Class.Name] += sec
		p := cfg.Fleet[a.Pipeline]
		ps.CostUSD += p.USDPerHour / 3600 * sec
		if p.Energy != nil {
			eb, err := energy.PerToken(p.Energy.Testbed, a.Report, p.Energy.Model)
			if err != nil {
				if ps.EnergyErr == "" {
					ps.EnergyErr = err.Error()
				}
			} else {
				ps.EnergyJ += eb.Total() * float64(toks)
			}
		}
		if fin := a.FinishSec - startSec; fin > s.MakespanSec {
			s.MakespanSec = fin
		}
		for i := range a.Batch.JobIDs {
			arr := a.Batch.ReleaseSec
			if a.Batch.Arrivals != nil {
				arr = a.Batch.Arrivals[i]
			}
			delays = append(delays, a.StartSec-arr)
		}
	}
	s.Admitted = s.Requests - s.RejectedJobs
	s.Completed = s.Admitted - s.FailedJobs
	for i := range s.Pipelines {
		ps := &s.Pipelines[i]
		if s.MakespanSec > 0 {
			ps.Utilization = ps.BusySec / s.MakespanSec
		}
		s.TotalCostUSD += ps.CostUSD
		s.TotalEnergyJ += ps.EnergyJ
	}
	s.DelayMeanSec = stats.Mean(delays)
	s.DelayP50Sec = stats.Percentile(delays, 50)
	s.DelayP95Sec = stats.Percentile(delays, 95)
	s.DelayP99Sec = stats.Percentile(delays, 99)
	return s
}
