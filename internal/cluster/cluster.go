// Package cluster is the trace-driven service layer over heterogeneous
// engine fleets: an event-driven, simulated-clock scheduler that admits
// timestamped requests into per-priority-class queues and drains them
// through a fleet whose members may be backed by *different* registered
// engines (e.g. two HILOS hosts, a DRAM baseline, and an InstInfer tier)
// under a pluggable cost-aware policy.
//
// The core is one discrete-event loop (events.go) over request arrival,
// batch wait-timeout, request start-deadline, and pipeline-free events —
// layered over per-priority queues (queue.go) and the policy/placement
// layer (dispatch.go). A deterministic fault injector (Config.Faults, see
// internal/faults) adds completion, fault, repair, and retry events plus a
// self-healing recovery layer (health.go): bounded retries with
// exponential backoff, per-pipeline circuit breakers, failover of queued
// work, and graceful degradation to lossy tiers. Two admission extensions
// change how batches meet pipelines:
//
//   - Continuous batching re-forms batches at dispatch time: work waits in
//     its queue until a pipeline is actually free, and the freed pipeline
//     re-packs up to MaxBatch of the oldest waiting requests — not the
//     stale batch that happened to close at admission.
//   - Deadline-aware preemption lets online priority classes displace
//     queued offline work: a batch that would miss its start deadline takes
//     the pipeline where it starts soonest after evicting
//     strictly-lower-priority *unstarted* batches, which are re-enqueued
//     and re-run — never dropped. Preemption acts only at batch boundaries;
//     running work always completes.
//
// With both extensions disabled the loop reproduces the original
// close-at-admission, run-to-completion scheduler event for event, so pure
// offline studies are unchanged. The offline backlog of internal/serving is
// the degenerate trace — every request arrives at time zero, priority 0,
// over identical pipelines — and serving.Evaluate delegates to this
// package's Dispatch core: there is one scheduling implementation, not two.
//
// Everything is deterministic under -race: engine simulations are pure and
// prewarmed on a worker pool, while admission, eviction and placement run
// on a single goroutine against the simulated clock.
package cluster

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/endurance"
	"repro/internal/energy"
	"repro/internal/faults"
	"repro/internal/model"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Request is one timestamped inference request.
type Request = workload.TimedRequest

// Admission is the batch-formation policy: a per-priority-class batch
// closes when it reaches MaxBatch requests or when its oldest member has
// waited MaxWaitSec (whichever comes first), and new arrivals are rejected
// while the admitted backlog holds MaxBacklog or more not-yet-started
// requests. ContinuousBatching and Preemption select the event-driven
// scheduling extensions; both default off, which reproduces the
// close-at-admission scheduler exactly.
type Admission struct {
	// MaxBatch is the target batch size (≥ 1).
	MaxBatch int
	// MaxWaitSec is how long the oldest queued request may wait before its
	// partial batch is released anyway. 0 releases a batch at the first
	// arrival instant that leaves it partial; offline studies use a large
	// value so batches always fill.
	MaxWaitSec float64
	// MaxBacklog caps admitted-but-unstarted requests (queued plus assigned
	// to a pipeline that has not begun them). Arrivals beyond the cap are
	// rejected — unless Preemption is on, in which case an arrival competes
	// only with work of its own priority and above, so online requests are
	// never rejected because offline work is queued. 0 means unbounded
	// (pure offline admission).
	MaxBacklog int
	// ContinuousBatching re-forms batches at dispatch time: requests wait
	// in their queue until a pipeline is free, which then re-packs up to
	// MaxBatch of the oldest eligible requests. Off, batches close at
	// admission and queue ahead on the policy's pick.
	ContinuousBatching bool
	// Preemption enables deadline-aware displacement: requests carrying a
	// DeadlineSec force their partial batch out when the deadline arrives,
	// and a batch that would miss its earliest member deadline evicts
	// strictly-lower-priority unstarted batches (re-enqueued, never
	// dropped) from the pipeline where it can start soonest. Off, deadlines
	// are advisory — misses are reported but never change the schedule.
	// With ContinuousBatching there are no unstarted batches to evict, so
	// preemption reduces to deadline-triggered dispatch eligibility plus
	// the priority ordering of the queues.
	Preemption bool
}

func (a Admission) validate() error {
	if a.MaxBatch < 1 {
		return fmt.Errorf("cluster: admission max batch must be ≥ 1, got %d", a.MaxBatch)
	}
	if a.MaxWaitSec < 0 || math.IsInf(a.MaxWaitSec, 0) || math.IsNaN(a.MaxWaitSec) {
		return fmt.Errorf("cluster: admission max wait must be finite and ≥ 0, got %g", a.MaxWaitSec)
	}
	if a.MaxBacklog < 0 {
		return fmt.Errorf("cluster: admission max backlog must be ≥ 0, got %d", a.MaxBacklog)
	}
	return nil
}

// Config describes one cluster evaluation.
type Config struct {
	Model     model.Config
	Fleet     []Pipeline
	Policy    Policy
	Admission Admission

	// Telemetry, when non-nil, streams per-event metrics and events out of
	// the loop (see NewTelemetry). It never feeds back into scheduling:
	// runs with and without it produce bit-identical Summaries.
	Telemetry *Telemetry
	// Pace, when non-nil, is called with the simulated time of each event
	// before the event executes — the hook where a replay is slaved to the
	// wall clock at the serving boundary. It must not mutate scheduling
	// state; the loop's outcome is independent of how long Pace blocks.
	Pace func(simSec float64)

	// Faults, when non-nil, injects deterministic failures into the run:
	// fail-stop windows, transient batch errors, straggler slowdowns, and
	// wear-out retirement (see internal/faults). Everything is driven by
	// the plan's seed and the simulated clock — never wall time — so a
	// faulted run replays bit-identically. An injector with nothing
	// scheduled is equivalent to nil: the Summary is bit-identical to a
	// fault-free run.
	Faults *faults.Injector
	// Retry is the recovery policy for fault-failed work. The zero value
	// makes every failed attempt terminal; DefaultRetryPolicy() enables
	// bounded retries with exponential backoff and the per-pipeline
	// circuit breaker. Ignored without Faults — nothing fails mid-flight.
	Retry RetryPolicy
}

// PipelineStats attributes completed work to one fleet member.
type PipelineStats struct {
	Name    string
	Batches int
	Jobs    int
	// BusySec is total execution time on this pipeline; Utilization is
	// BusySec over the cluster makespan.
	BusySec      float64
	Utilization  float64
	OutputTokens int64
	// CostUSD is the amortized hardware dollars charged for BusySec.
	CostUSD float64
	// EnergyJ integrates the Fig. 17(a) model over the pipeline's completed
	// work (0 when the pipeline has no energy config).
	EnergyJ float64
	// EnergyErr records the first energy-integration failure (e.g. a
	// misconfigured EnergyConfig), so a 0 EnergyJ is never silently wrong.
	EnergyErr string
	// WriteBytes is the physical flash bytes written executing this
	// pipeline's completed work (prefill KV spills plus per-step decode
	// writeback, from the engine's Report write accounting; 0 for
	// DRAM-resident engines).
	WriteBytes float64
	// WearPct is WriteBytes as a percentage of the pipeline's total §6.6
	// endurance budget (Devices × endurance.DefaultPBW petabytes written);
	// 0 when the engine reports no flash devices.
	WearPct float64
	// WritePressureBps is the average write bandwidth demanded while busy
	// (WriteBytes / BusySec) — the writeback pressure the FTL must absorb.
	WritePressureBps float64
	// Faults counts injected faults that fired on this pipeline
	// (fail-stops and wear-outs); Quarantines counts circuit-breaker
	// trips; WearOut reports permanent retirement after the pipeline's
	// cumulative writes crossed its endurance budget.
	Faults      int
	Quarantines int
	WearOut     bool
}

// PriorityStats attributes scheduling outcomes to one priority class.
type PriorityStats struct {
	// Priority is the class (higher is more urgent; 0 is offline).
	Priority int
	// Requests counts trace members of this priority; Admitted excludes
	// backlog rejections; Completed excludes failed batches.
	Requests  int
	Admitted  int
	Completed int

	// Queueing delay — batch execution start minus request arrival — over
	// this priority's completed requests.
	DelayMeanSec float64
	DelayP50Sec  float64
	DelayP95Sec  float64
	DelayP99Sec  float64

	// PreemptedJobs counts evictions of this priority's jobs from an
	// unstarted batch (each was re-enqueued and re-ran).
	PreemptedJobs int
	// DeadlineMisses counts completed requests that started after their
	// deadline.
	DeadlineMisses int
}

// Summary is the outcome of draining a timestamped trace through a fleet.
type Summary struct {
	Policy Policy

	// Requests counts the input trace; Admitted + Rejected == Requests, and
	// Admitted == Completed + Failed.
	Requests  int
	Admitted  int
	Completed int

	// RejectedJobs were turned away at admission (backlog cap); FailedJobs
	// were admitted but failed terminally — no pipeline could place their
	// batch, or (with faults) its retry budget ran out. FailedJobIDs is
	// deduplicated: a job that fails, retries, and fails again appears
	// exactly once, and FailedJobs == len(FailedJobIDs) counts distinct
	// jobs, so Admitted == Completed + FailedJobs always balances.
	RejectedJobs   int
	RejectedJobIDs []int
	FailedBatches  int
	FailedJobs     int
	FailedJobIDs   []int

	// RetriedBatches/RetriedJobs count fault-failed attempts that were
	// re-dispatched under the retry policy (a batch retried twice counts
	// twice). Retried work that eventually completes is in Completed;
	// only retry-budget exhaustion moves it to Failed.
	RetriedBatches int
	RetriedJobs    int
	// FailedOverBatches/FailedOverJobs count queued-ahead batches evicted
	// from a failing or quarantined pipeline and re-dispatched elsewhere
	// (displaced, never lost — the fault-path analog of preemption).
	FailedOverBatches int
	FailedOverJobs    int
	// FaultsInjected counts injector faults that fired (fail-stops and
	// wear-outs); Quarantines counts circuit-breaker trips across the
	// fleet.
	FaultsInjected int
	Quarantines    int
	// DegradedBatches/DegradedJobs count work a lossy tier served while
	// every exact pipeline was down or quarantined — the graceful
	// degradation path. Degraded jobs complete and count in Completed.
	DegradedBatches int
	DegradedJobs    int

	// Batches counts settled batch outcomes (completions and terminal
	// failures). Fault-aborted attempts appear in Assignments but not
	// here — their batch settles exactly once.
	Batches int
	// MakespanSec is the time from the first arrival to the completion of
	// the last batch, so traces whose timestamps carry an offset (e.g.
	// seconds-of-day recordings) do not dilute throughput or utilization.
	// Assignment Start/FinishSec stay on the absolute trace clock.
	MakespanSec  float64
	OutputTokens int64

	// Queueing delay — batch execution start minus request arrival — over
	// completed requests.
	DelayMeanSec float64
	DelayP50Sec  float64
	DelayP95Sec  float64
	DelayP99Sec  float64

	// PreemptedBatches/PreemptedJobs count batch-boundary evictions: work
	// displaced by a higher-priority deadline and re-enqueued. Preempted
	// jobs still complete (they are not failures), so they appear in
	// Completed too.
	PreemptedBatches int
	PreemptedJobs    int
	// DeadlineMisses counts completed requests that started after their
	// arrival + DeadlineSec budget.
	DeadlineMisses int

	// PerClassSec attributes execution seconds to request classes,
	// including seconds burned by fault-aborted attempts.
	PerClassSec map[string]float64
	// PerPriority attributes scheduling outcomes per priority class, most
	// urgent first. Single-priority (pure offline) traces have one entry.
	PerPriority []PriorityStats
	// Pipelines attributes work, cost and energy per fleet member.
	Pipelines []PipelineStats
	// Assignments records every batch's routing decision, in dispatch
	// order, for policy comparisons. Evicted (preempted) batches are not
	// listed; their re-dispatches are.
	Assignments []Assignment

	// TotalCostUSD and TotalEnergyJ sum the per-pipeline attributions.
	TotalCostUSD float64
	TotalEnergyJ float64
	// TotalWriteBytes sums per-pipeline flash write volume — endurance
	// next to latency and cost in the same run output.
	TotalWriteBytes float64
}

// Throughput returns output tokens per second over the makespan.
func (s Summary) Throughput() float64 {
	if s.MakespanSec <= 0 {
		return 0
	}
	return float64(s.OutputTokens) / s.MakespanSec
}

// PriorityByClass returns the stats entry for one priority class.
func (s Summary) PriorityByClass(priority int) (PriorityStats, bool) {
	for _, ps := range s.PerPriority {
		if ps.Priority == priority {
			return ps, true
		}
	}
	return PriorityStats{}, false
}

// summarize folds assignments into the Summary, attributing time, tokens,
// cost and energy per pipeline and queueing delay per priority class.
// startSec is the trace's first arrival; the makespan measures from it.
// fracs parallels asgs with each attempt's performed-write fraction (1
// except for attempts a fail-stop killed mid-run); healths carries the
// recovery layer's per-pipeline end state.
func summarize(cfg Config, reqs []Request, asgs []Assignment, rejected []int, startSec float64, tally preemptTally, ft faultTally, healths []pipeHealth, fracs []float64) Summary {
	s := Summary{
		Policy:            cfg.Policy,
		Requests:          len(reqs),
		RejectedJobs:      len(rejected),
		RejectedJobIDs:    rejected,
		PreemptedBatches:  tally.batches,
		PreemptedJobs:     tally.jobs,
		RetriedBatches:    ft.retryBatches,
		RetriedJobs:       ft.retryJobs,
		FailedOverBatches: ft.failedOverB,
		FailedOverJobs:    ft.failedOverJ,
		FaultsInjected:    ft.faults,
		Quarantines:       ft.quarantines,
		DegradedBatches:   ft.degradedB,
		DegradedJobs:      ft.degradedJ,
		PerClassSec:       map[string]float64{},
		Pipelines:         make([]PipelineStats, len(cfg.Fleet)),
		Assignments:       asgs,
	}
	for i, p := range cfg.Fleet {
		s.Pipelines[i].Name = p.Name
		if i < len(healths) {
			s.Pipelines[i].Faults = healths[i].faults
			s.Pipelines[i].Quarantines = healths[i].quarantines
			s.Pipelines[i].WearOut = healths[i].wearOut
		}
	}

	prioOf := make(map[int]int, len(reqs))
	perPrio := map[int]*PriorityStats{}
	prioStats := func(prio int) *PriorityStats {
		ps := perPrio[prio]
		if ps == nil {
			ps = &PriorityStats{Priority: prio}
			perPrio[prio] = ps
		}
		return ps
	}
	for _, r := range reqs {
		prioOf[r.ID] = r.Priority
		ps := prioStats(r.Priority)
		ps.Requests++
		ps.Admitted++
	}
	for _, id := range rejected {
		prioStats(prioOf[id]).Admitted--
	}
	for prio, jobs := range tally.byPrio {
		prioStats(prio).PreemptedJobs = jobs
	}

	var delays []float64
	prioDelays := map[int][]float64{}
	devices := make([]int, len(cfg.Fleet))
	seenFailed := map[int]bool{}
	for ai, a := range asgs {
		n := len(a.Batch.JobIDs)
		if a.Pipeline < 0 {
			// Terminal failure. IDs are deduplicated defensively: a job
			// must fail terminally at most once (fail-retry-fail is one
			// failure), and FailedJobs counts distinct jobs so the
			// Admitted == Completed + FailedJobs balance holds.
			s.Batches++
			s.FailedBatches++
			for _, id := range a.Batch.JobIDs {
				if seenFailed[id] {
					continue
				}
				seenFailed[id] = true
				s.FailedJobs++
				s.FailedJobIDs = append(s.FailedJobIDs, id)
			}
			continue
		}
		ps := &s.Pipelines[a.Pipeline]
		sec := a.ExecSec()
		p := cfg.Fleet[a.Pipeline]
		if a.Aborted {
			// A fault-consumed attempt: the pipeline's time, dollars and
			// (prorated) flash writes were spent on this class, but no job
			// completed here — the batch's outcome is a later assignment.
			ps.BusySec += sec
			s.PerClassSec[a.Batch.Class.Name] += sec
			ps.WriteBytes += assignmentWriteBytes(a) * fracs[ai]
			if a.Report.Devices > devices[a.Pipeline] {
				devices[a.Pipeline] = a.Report.Devices
			}
			ps.CostUSD += p.USDPerHour / 3600 * sec
			if fin := a.FinishSec - startSec; fin > s.MakespanSec {
				s.MakespanSec = fin
			}
			continue
		}
		s.Batches++
		ps.Batches++
		ps.Jobs += n
		ps.BusySec += sec
		toks := int64(n) * int64(a.Batch.Class.Output)
		ps.OutputTokens += toks
		s.OutputTokens += toks
		s.PerClassSec[a.Batch.Class.Name] += sec
		ps.WriteBytes += assignmentWriteBytes(a)
		if a.Report.Devices > devices[a.Pipeline] {
			devices[a.Pipeline] = a.Report.Devices
		}
		ps.CostUSD += p.USDPerHour / 3600 * sec
		if p.Energy != nil {
			eb, err := energy.PerToken(p.Energy.Testbed, a.Report, p.Energy.Model)
			if err != nil {
				if ps.EnergyErr == "" {
					ps.EnergyErr = err.Error()
				}
			} else {
				ps.EnergyJ += eb.Total() * float64(toks)
			}
		}
		if fin := a.FinishSec - startSec; fin > s.MakespanSec {
			s.MakespanSec = fin
		}
		pst := prioStats(a.Batch.Priority)
		pst.Completed += n
		for i := range a.Batch.JobIDs {
			arr := a.Batch.ReleaseSec
			if a.Batch.Arrivals != nil {
				arr = a.Batch.Arrivals[i]
			}
			delay := a.StartSec - arr
			delays = append(delays, delay)
			prioDelays[a.Batch.Priority] = append(prioDelays[a.Batch.Priority], delay)
			if a.Batch.Deadlines != nil && a.Batch.Deadlines[i] > 0 && a.StartSec > a.Batch.Deadlines[i] {
				pst.DeadlineMisses++
				s.DeadlineMisses++
			}
		}
	}
	s.Admitted = s.Requests - s.RejectedJobs
	s.Completed = s.Admitted - s.FailedJobs
	// IDs accumulate in scheduling order (rejections by arrival, failures
	// by dispatch); emit them sorted so consumers and golden files see one
	// canonical order.
	sort.Ints(s.RejectedJobIDs)
	sort.Ints(s.FailedJobIDs)
	for i := range s.Pipelines {
		ps := &s.Pipelines[i]
		if s.MakespanSec > 0 {
			ps.Utilization = ps.BusySec / s.MakespanSec
		}
		if ps.BusySec > 0 {
			ps.WritePressureBps = ps.WriteBytes / ps.BusySec
		}
		if devices[i] > 0 {
			ps.WearPct = 100 * ps.WriteBytes / (float64(devices[i]) * endurance.PBWBytes(endurance.DefaultPBW))
		}
		s.TotalCostUSD += ps.CostUSD
		s.TotalEnergyJ += ps.EnergyJ
		s.TotalWriteBytes += ps.WriteBytes
	}
	s.DelayMeanSec = stats.Mean(delays)
	s.DelayP50Sec = stats.Percentile(delays, 50)
	s.DelayP95Sec = stats.Percentile(delays, 95)
	s.DelayP99Sec = stats.Percentile(delays, 99)

	prios := make([]int, 0, len(perPrio))
	for prio := range perPrio {
		prios = append(prios, prio)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(prios)))
	for _, prio := range prios {
		ps := perPrio[prio]
		d := prioDelays[prio]
		ps.DelayMeanSec = stats.Mean(d)
		ps.DelayP50Sec = stats.Percentile(d, 50)
		ps.DelayP95Sec = stats.Percentile(d, 95)
		ps.DelayP99Sec = stats.Percentile(d, 99)
		s.PerPriority = append(s.PerPriority, *ps)
	}
	cfg.Telemetry.finalize(s)
	return s
}

// assignmentWriteBytes estimates the physical flash bytes written executing
// one assignment from its engine report's write accounting: ceil(n/batch)
// passes, each writing the prefill KV spill plus the per-step decode
// writeback over the class's decode steps. The tail pass is charged at the
// full-size report's rate, consistent with execSec's pass accounting.
func assignmentWriteBytes(a Assignment) float64 {
	rep := a.Report
	if rep.Batch < 1 {
		return 0
	}
	n := len(a.Batch.JobIDs)
	passes := float64((n + rep.Batch - 1) / rep.Batch)
	steps := a.Batch.Class.Output - 1
	if steps < 0 {
		steps = 0
	}
	return passes * (rep.PrefillWriteBytes + rep.DecodeWriteBytesPerStep*float64(steps))
}
