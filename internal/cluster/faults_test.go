package cluster

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/faults"
	"repro/internal/model"
)

// faultFleet is telemetryFleet plus a lossy InstInfer-style backup tier —
// the degradation target when the exact pipelines are out of service.
func faultFleet() []Pipeline {
	fl := telemetryFleet()
	return append(fl, Pipeline{Name: "lossy", Run: constEngine(3), Lossy: true})
}

func mustInjector(t *testing.T, plan faults.Plan, pipelines int) *faults.Injector {
	t.Helper()
	in, err := faults.New(plan, pipelines)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// A fail-stop kills the running batch mid-flight; the batch retries after
// backoff, defers while the pipeline is down, and completes after repair.
// The aborted attempt's flash writes are prorated by its run fraction.
func TestFailStopKillsAndRetries(t *testing.T) {
	fleet := telemetryFleet()[1:] // just "slow": flashy(5) with write accounting
	cfg := Config{
		Model:     model.OPT30B,
		Fleet:     fleet,
		Policy:    LeastLoaded,
		Admission: Admission{MaxBatch: 1, MaxWaitSec: 0},
		Faults: mustInjector(t, faults.Plan{Events: []faults.Event{
			{Kind: faults.FailStop, Pipeline: 0, AtSec: 2.5, DurationSec: 20},
		}}, 1),
		Retry: DefaultRetryPolicy(),
	}
	s, err := Run(cfg, shortReqs(0))
	if err != nil {
		t.Fatal(err)
	}
	if s.Completed != 1 || s.FailedJobs != 0 {
		t.Fatalf("completed %d failed %d, want 1/0: %+v", s.Completed, s.FailedJobs, s)
	}
	if s.FaultsInjected != 1 || s.RetriedBatches != 1 || s.RetriedJobs != 1 {
		t.Errorf("faults %d retriedBatches %d retriedJobs %d, want 1/1/1",
			s.FaultsInjected, s.RetriedBatches, s.RetriedJobs)
	}
	if len(s.Assignments) != 2 {
		t.Fatalf("assignments %+v", s.Assignments)
	}
	killed, redo := s.Assignments[0], s.Assignments[1]
	if !killed.Aborted || killed.StartSec != 0 || killed.FinishSec != 2.5 {
		t.Errorf("killed attempt %+v", killed)
	}
	if killed.Reason != "killed by fail-stop" {
		t.Errorf("killed reason %q", killed.Reason)
	}
	// Backoff expires at 3.5 while the pipeline is down until 22.5, so the
	// retry defers to the repair instant and runs 22.5 → 27.5.
	if redo.Aborted || redo.StartSec != 22.5 || redo.FinishSec != 27.5 {
		t.Errorf("retried attempt %+v", redo)
	}
	if redo.Batch.Attempt != 1 {
		t.Errorf("retry attempt count %d, want 1", redo.Batch.Attempt)
	}
	// Writes: the killed attempt ran half its service time, so it charges
	// half a batch's volume; the successful retry charges a full one.
	perBatch := 1e9 + 1e6*99
	if want := 1.5 * perBatch; s.Pipelines[0].WriteBytes != want {
		t.Errorf("WriteBytes = %g, want %g", s.Pipelines[0].WriteBytes, want)
	}
	if s.Pipelines[0].Faults != 1 {
		t.Errorf("pipeline fault count %d, want 1", s.Pipelines[0].Faults)
	}
	if s.MakespanSec != 27.5 {
		t.Errorf("makespan %g, want 27.5", s.MakespanSec)
	}
}

// Transient errors exhaust the retry budget: fail-retry-fail settles as ONE
// terminal failure — the job appears once in FailedJobIDs (the dedupe
// guard), conservation balances, and the circuit breaker trips along the
// way.
func TestRetriesExhaustTerminalOnce(t *testing.T) {
	cfg := Config{
		Model:     model.OPT30B,
		Fleet:     []Pipeline{{Name: "p0", Run: constEngine(2)}},
		Policy:    LeastLoaded,
		Admission: Admission{MaxBatch: 1, MaxWaitSec: 0},
		Faults:    mustInjector(t, faults.Plan{Seed: 1, TransientProb: 1}, 1),
		Retry:     DefaultRetryPolicy(), // 3 retries, threshold 3
	}
	cfg.Retry.MaxRetries = 2
	s, err := Run(cfg, shortReqs(0))
	if err != nil {
		t.Fatal(err)
	}
	if s.Completed != 0 || s.FailedJobs != 1 || s.FailedBatches != 1 {
		t.Fatalf("completed %d failedJobs %d failedBatches %d, want 0/1/1",
			s.Completed, s.FailedJobs, s.FailedBatches)
	}
	if !reflect.DeepEqual(s.FailedJobIDs, []int{0}) {
		t.Errorf("FailedJobIDs = %v, want [0] exactly once", s.FailedJobIDs)
	}
	if s.Admitted != s.Completed+s.FailedJobs {
		t.Errorf("conservation broken: admitted %d, completed %d + failed %d",
			s.Admitted, s.Completed, s.FailedJobs)
	}
	// Initial attempt + 2 retries, all aborted; the settled outcome is the
	// single terminal failure.
	if s.RetriedBatches != 2 || s.Batches != 1 {
		t.Errorf("retriedBatches %d batches %d, want 2/1", s.RetriedBatches, s.Batches)
	}
	aborted := 0
	for _, a := range s.Assignments {
		if a.Aborted {
			aborted++
		}
	}
	if aborted != 3 {
		t.Errorf("aborted attempts %d, want 3", aborted)
	}
	// Three consecutive failures on one pipeline trip the breaker.
	if s.Quarantines != 1 || s.Pipelines[0].Quarantines != 1 {
		t.Errorf("quarantines %d/%d, want 1", s.Quarantines, s.Pipelines[0].Quarantines)
	}
}

// A straggler window stretches service time by its factor; no failures, no
// retries — just a slower pipeline while the window is open.
func TestStragglerStretchesService(t *testing.T) {
	cfg := Config{
		Model:     model.OPT30B,
		Fleet:     []Pipeline{{Name: "p0", Run: constEngine(2)}},
		Policy:    LeastLoaded,
		Admission: Admission{MaxBatch: 1, MaxWaitSec: 0},
		Faults: mustInjector(t, faults.Plan{Events: []faults.Event{
			{Kind: faults.Straggler, Pipeline: 0, AtSec: 0, DurationSec: 10, Factor: 3},
		}}, 1),
	}
	s, err := Run(cfg, shortReqs(0, 50))
	if err != nil {
		t.Fatal(err)
	}
	if s.Completed != 2 || s.FaultsInjected != 0 {
		t.Fatalf("summary %+v", s)
	}
	// First batch starts inside the window: 2 s × 3. Second starts at 50,
	// after it closed: native speed.
	if a := s.Assignments[0]; a.ExecSec() != 6 {
		t.Errorf("in-window exec %g, want 6", a.ExecSec())
	}
	if a := s.Assignments[1]; a.ExecSec() != 2 {
		t.Errorf("post-window exec %g, want 2", a.ExecSec())
	}
}

// Wear-out: the write that crosses a pipeline's endurance budget retires it
// permanently, and later work degrades to the lossy tier — counted as
// degraded service.
func TestWearOutDegradesToLossyTier(t *testing.T) {
	fleet := []Pipeline{telemetryFleet()[1]} // "slow": flashy(5)
	fleet = append(fleet, Pipeline{Name: "lossy", Run: constEngine(4), Lossy: true})
	perBatch := 1e9 + 1e6*99
	cfg := Config{
		Model:     model.OPT30B,
		Fleet:     fleet,
		Policy:    LeastLoaded,
		Admission: Admission{MaxBatch: 1, MaxWaitSec: 0},
		Faults:    mustInjector(t, faults.Plan{WearBudgetBytes: perBatch * 0.9}, 2),
		Retry:     DefaultRetryPolicy(),
	}
	s, err := Run(cfg, shortReqs(0, 20, 40))
	if err != nil {
		t.Fatal(err)
	}
	if s.Completed != 3 || s.FailedJobs != 0 {
		t.Fatalf("summary %+v", s)
	}
	slow, lossy := s.Pipelines[0], s.Pipelines[1]
	if !slow.WearOut || slow.Faults != 1 {
		t.Errorf("exact tier not retired: %+v", slow)
	}
	if slow.Batches != 1 {
		t.Errorf("exact tier ran %d batches after wear-out, want 1 total", slow.Batches)
	}
	if lossy.Batches != 2 {
		t.Errorf("lossy tier batches %d, want 2", lossy.Batches)
	}
	if s.DegradedBatches != 2 || s.DegradedJobs != 2 {
		t.Errorf("degraded %d batches / %d jobs, want 2/2", s.DegradedBatches, s.DegradedJobs)
	}
	if s.FaultsInjected != 1 {
		t.Errorf("FaultsInjected %d, want 1 (the wear-out)", s.FaultsInjected)
	}
}

// Work arriving while the whole fleet is down defers — it neither fails nor
// vanishes — and runs once the pipeline is repaired.
func TestAllDownDefersUntilRepair(t *testing.T) {
	cfg := Config{
		Model:     model.OPT30B,
		Fleet:     []Pipeline{{Name: "p0", Run: constEngine(2)}},
		Policy:    LeastLoaded,
		Admission: Admission{MaxBatch: 1, MaxWaitSec: 0},
		Faults: mustInjector(t, faults.Plan{Events: []faults.Event{
			{Kind: faults.FailStop, Pipeline: 0, AtSec: 1, DurationSec: 30},
		}}, 1),
		Retry: DefaultRetryPolicy(),
	}
	s, err := Run(cfg, shortReqs(5))
	if err != nil {
		t.Fatal(err)
	}
	if s.Completed != 1 || s.FailedJobs != 0 || s.RetriedBatches != 0 {
		t.Fatalf("summary %+v", s)
	}
	a := s.Assignments[0]
	if a.StartSec != 31 || a.FinishSec != 33 {
		t.Errorf("deferred batch ran %g→%g, want 31→33 (repair instant)", a.StartSec, a.FinishSec)
	}
}

// Quarantined pipelines hand queued-ahead work to the rest of the fleet
// (failover), and are re-admitted when the quarantine expires.
func TestQuarantineFailsOverQueuedWork(t *testing.T) {
	// Pipeline 0 fails every batch transiently; pipeline 1 is clean and
	// slower. Close-at-admission queues work ahead on pipeline 0; once its
	// breaker trips, the queued-ahead slots must move to pipeline 1.
	cfg := Config{
		Model:  model.OPT30B,
		Fleet:  faultFleet(), // fast, slow(flashy), lossy
		Policy: LeastLoaded,
		Admission: Admission{
			MaxBatch: 1, MaxWaitSec: 0,
		},
		Faults: mustInjector(t, faults.Plan{Seed: 5,
			Events: []faults.Event{{Kind: faults.Transient, Pipeline: 0, Factor: 1}}}, 3),
		Retry: DefaultRetryPolicy(),
	}
	reqs := shortReqs(0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9)
	s, err := Run(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if s.Quarantines == 0 {
		t.Fatal("always-failing pipeline never quarantined")
	}
	if s.Completed+s.FailedJobs != s.Admitted {
		t.Fatalf("conservation broken: %+v", s)
	}
	// The clean pipelines absorbed the failed-over and retried work.
	if s.Pipelines[1].Jobs+s.Pipelines[2].Jobs != s.Completed {
		t.Errorf("completions not on healthy tiers: %+v", s.Pipelines)
	}
	if s.Pipelines[0].Jobs != 0 {
		t.Errorf("failing pipeline completed %d jobs, want 0", s.Pipelines[0].Jobs)
	}
}

// Invariant 1 (fault parity): an injector with zero scheduled faults
// produces a Summary bit-identical to no injector at all, across admission
// configurations — the determinism contract of the recovery layer.
func FuzzFaultParity(f *testing.F) {
	f.Add(int64(1), 12, 3, 4.0, 0, 0)
	f.Add(int64(42), 24, 4, 6.0, 8, 1)  // preemption
	f.Add(int64(7), 24, 2, 2.0, 6, 2)   // continuous batching
	f.Add(int64(99), 32, 4, 10.0, 5, 3) // both
	f.Add(int64(-3), 1, 1, 0.0, 1, 3)   // degenerate single-request trace
	f.Fuzz(func(t *testing.T, seed int64, n, maxBatch int, waitSec float64, backlog, flags int) {
		if n < 1 {
			n = 1
		}
		if n > 64 {
			n = 64
		}
		if maxBatch < 1 {
			maxBatch = 1
		}
		if maxBatch > 8 {
			maxBatch = 8
		}
		if waitSec < 0 || waitSec > 1e6 {
			waitSec = 5
		}
		if backlog < 0 {
			backlog = 0
		}
		if backlog > 64 {
			backlog = 64
		}
		cfg := Config{
			Model:  model.OPT30B,
			Fleet:  faultFleet(),
			Policy: LeastLoaded,
			Admission: Admission{
				MaxBatch:           maxBatch,
				MaxWaitSec:         waitSec,
				MaxBacklog:         backlog,
				Preemption:         flags&1 != 0,
				ContinuousBatching: flags&2 != 0,
			},
			Retry: DefaultRetryPolicy(),
		}
		reqs := parityTrace(seed, n)

		off, err := Run(cfg, reqs)
		if err != nil {
			t.Fatal(err)
		}

		empty, err := faults.New(faults.Plan{Seed: seed}, len(cfg.Fleet))
		if err != nil {
			t.Fatal(err)
		}
		cfg.Faults = empty
		on, err := Run(cfg, reqs)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(off, on) {
			t.Fatalf("empty injector changed the Summary:\noff: %+v\non:  %+v", off, on)
		}
	})
}

// Invariant 2 (job conservation): under arbitrary fail-stop schedules,
// transient error rates, stragglers and wear budgets, every admitted job
// settles exactly once — completed, terminally failed, or rejected. No job
// is lost, none is double-counted.
func FuzzJobConservation(f *testing.F) {
	f.Add(int64(1), 24, 3, 0, 300.0, 20.0, 0.1, 0.0)
	f.Add(int64(9), 32, 2, 1, 120.0, 40.0, 0.4, 6e9) // preemption + wear
	f.Add(int64(5), 40, 4, 2, 60.0, 10.0, 0.2, 0.0)  // continuous, frequent faults
	f.Add(int64(77), 48, 4, 3, 90.0, 30.0, 0.8, 3e9) // both, hostile error rate
	f.Add(int64(-8), 8, 1, 4, 500.0, 5.0, 0.0, 1e8)  // tiny wear budget, no transients
	f.Fuzz(func(t *testing.T, seed int64, n, maxBatch, flags int, mtbf, mttr, transProb, wearBudget float64) {
		if n < 1 {
			n = 1
		}
		if n > 48 {
			n = 48
		}
		if maxBatch < 1 {
			maxBatch = 1
		}
		if maxBatch > 6 {
			maxBatch = 6
		}
		if mtbf < 30 || mtbf > 1e4 || math.IsNaN(mtbf) {
			mtbf = 200
		}
		if mttr < 1 || mttr > 500 || math.IsNaN(mttr) {
			mttr = 25
		}
		if transProb < 0 || transProb > 0.9 || math.IsNaN(transProb) {
			transProb = 0.25
		}
		if wearBudget < 0 || wearBudget > 1e14 || math.IsNaN(wearBudget) {
			wearBudget = 0
		}
		if wearBudget > 0 && wearBudget < 1e8 {
			wearBudget = 1e8
		}
		fleet := faultFleet()
		reqs := parityTrace(seed, n)
		horizon := reqs[len(reqs)-1].ArrivalSec + 100

		schedule, err := faults.GenerateFailStops(seed, len(fleet), horizon, mtbf, mttr)
		if err != nil {
			t.Fatal(err)
		}
		events := append(schedule, faults.Event{
			Kind: faults.Straggler, Pipeline: 1, AtSec: 0, DurationSec: horizon / 2, Factor: 2,
		})
		inj, err := faults.New(faults.Plan{
			Seed:            seed,
			Events:          events,
			TransientProb:   transProb,
			WearBudgetBytes: wearBudget,
		}, len(fleet))
		if err != nil {
			t.Fatal(err)
		}

		retry := DefaultRetryPolicy()
		retry.MaxRetries = (flags >> 3) & 3
		cfg := Config{
			Model:  model.OPT30B,
			Fleet:  fleet,
			Policy: Policies()[((flags>>5)%3+3)%3],
			Admission: Admission{
				MaxBatch:           maxBatch,
				MaxWaitSec:         3,
				MaxBacklog:         24,
				Preemption:         flags&1 != 0,
				ContinuousBatching: flags&2 != 0,
			},
			Faults: inj,
			Retry:  retry,
		}
		s, err := Run(cfg, reqs)
		if err != nil {
			t.Fatal(err)
		}

		if s.Requests != n || s.Admitted != s.Requests-s.RejectedJobs {
			t.Fatalf("admission bookkeeping: %+v", s)
		}
		if s.Completed != s.Admitted-s.FailedJobs {
			t.Fatalf("completion bookkeeping: %+v", s)
		}

		// Every trace job settles exactly once across the three outcomes.
		settled := map[int]int{}
		for _, a := range s.Assignments {
			if a.Pipeline < 0 || a.Aborted {
				continue
			}
			for _, id := range a.Batch.JobIDs {
				settled[id]++
			}
		}
		if len(settled) != s.Completed {
			t.Fatalf("completed assignments cover %d jobs, Summary says %d", len(settled), s.Completed)
		}
		for _, id := range s.FailedJobIDs {
			settled[id]++
		}
		for _, id := range s.RejectedJobIDs {
			settled[id]++
		}
		for _, r := range reqs {
			switch settled[r.ID] {
			case 0:
				t.Fatalf("job %d lost: neither completed, failed, nor rejected\n%+v", r.ID, s)
			case 1:
				// settled exactly once
			default:
				t.Fatalf("job %d settled %d times\n%+v", r.ID, settled[r.ID], s)
			}
		}
		if !(s.MakespanSec >= 0) || math.IsInf(s.MakespanSec, 0) {
			t.Fatalf("makespan %g not finite", s.MakespanSec)
		}
	})
}
