package cluster

import (
	"fmt"

	"repro/internal/faults"
	"repro/internal/telemetry"
)

// Telemetry is the cluster loop's instrumentation sink: a thin wrapper
// binding the generic telemetry.Registry/Stream to the scheduler's event
// vocabulary. All timestamps are simulated-clock seconds and nothing here
// feeds back into scheduling, so a telemetry-enabled run produces a
// bit-identical Summary to a disabled one. A nil *Telemetry is fully
// disabled: every method is a nil-receiver no-op costing one pointer check
// in the hot loop.
//
// Two kinds of metrics coexist:
//
//   - Live, monotone counters and events emitted as the loop executes
//     (arrivals, rejections, dispatches, preemptions, queue depths, the
//     simulated clock). Dispatch counts include batches that are later
//     evicted and re-dispatched — they narrate the schedule as it unfolds.
//   - End-state metrics finalized from the Summary (completed jobs,
//     deadline misses, failures, delay histogram, per-pipeline
//     utilization/wear): preemption can shift an unstarted slot's start
//     time after its dispatch, so these are only exact once the schedule
//     settles. Finalized metrics match the Summary's fields exactly.
type Telemetry struct {
	reg    *telemetry.Registry
	stream *telemetry.Stream

	arrivals   *telemetry.Counter
	rejections *telemetry.Counter
	dispBatch  *telemetry.Counter
	dispJobs   *telemetry.Counter
	preBatch   *telemetry.Counter
	preJobs    *telemetry.Counter
	faultsC    *telemetry.Counter
	repairs    *telemetry.Counter
	retryBatch *telemetry.Counter
	retryJobs  *telemetry.Counter
	quarC      *telemetry.Counter
	foBatch    *telemetry.Counter
	foJobs     *telemetry.Counter
	degBatch   *telemetry.Counter
	degJobs    *telemetry.Counter
	clock      *telemetry.Gauge

	queueDepth map[queueKey]*telemetry.Gauge
}

// NewTelemetry binds a cluster telemetry sink to a registry and/or an event
// stream; either may be nil. Returns nil when both are, which is the fully
// disabled configuration.
func NewTelemetry(reg *telemetry.Registry, stream *telemetry.Stream) *Telemetry {
	if reg == nil && stream == nil {
		return nil
	}
	return &Telemetry{
		reg:        reg,
		stream:     stream,
		arrivals:   reg.Counter("cluster.arrivals"),
		rejections: reg.Counter("cluster.rejections"),
		dispBatch:  reg.Counter("cluster.dispatched_batches"),
		dispJobs:   reg.Counter("cluster.dispatched_jobs"),
		preBatch:   reg.Counter("cluster.preempted_batches"),
		preJobs:    reg.Counter("cluster.preempted_jobs"),
		faultsC:    reg.Counter("cluster.faults_injected"),
		repairs:    reg.Counter("cluster.repairs"),
		retryBatch: reg.Counter("cluster.retried_batches"),
		retryJobs:  reg.Counter("cluster.retried_jobs"),
		quarC:      reg.Counter("cluster.quarantines"),
		foBatch:    reg.Counter("cluster.failed_over_batches"),
		foJobs:     reg.Counter("cluster.failed_over_jobs"),
		degBatch:   reg.Counter("cluster.degraded_batches"),
		degJobs:    reg.Counter("cluster.degraded_jobs"),
		clock:      reg.Gauge("cluster.sim_clock_sec"),
		queueDepth: map[queueKey]*telemetry.Gauge{},
	}
}

// Registry returns the bound metrics registry (nil when disabled).
func (t *Telemetry) Registry() *telemetry.Registry {
	if t == nil {
		return nil
	}
	return t.reg
}

// Stream returns the bound event stream (nil when disabled).
func (t *Telemetry) Stream() *telemetry.Stream {
	if t == nil {
		return nil
	}
	return t.stream
}

// tick records the simulated clock advancing to now.
func (t *Telemetry) tick(now float64) {
	if t == nil {
		return
	}
	t.clock.Set(now)
}

// onArrival records one admitted request.
func (t *Telemetry) onArrival(r Request) {
	if t == nil {
		return
	}
	t.arrivals.Inc()
	t.stream.Publish(telemetry.Event{
		TSec: r.ArrivalSec, Kind: "arrival", Subsystem: "cluster",
		Class: r.Class.Name, Priority: r.Priority, Jobs: 1,
	})
}

// onReject records one backlog-cap rejection.
func (t *Telemetry) onReject(r Request) {
	if t == nil {
		return
	}
	t.rejections.Inc()
	t.stream.Publish(telemetry.Event{
		TSec: r.ArrivalSec, Kind: "reject", Subsystem: "cluster",
		Class: r.Class.Name, Priority: r.Priority, Jobs: 1,
	})
}

// onQueueDepth records a queue's depth after it changed.
func (t *Telemetry) onQueueDepth(k queueKey, depth int) {
	if t == nil {
		return
	}
	g := t.queueDepth[k]
	if g == nil {
		g = t.reg.Gauge(fmt.Sprintf("cluster.queue_depth.p%d.%s", k.priority, k.class.Name))
		t.queueDepth[k] = g
	}
	g.Set(float64(depth))
}

// onDispatch records a slot committed onto a pipeline's chain. The slot may
// later be evicted by preemption; dispatch counters narrate scheduling
// decisions, not completions.
func (t *Telemetry) onDispatch(now float64, s *slot, pipeName string) {
	if t == nil {
		return
	}
	t.dispBatch.Inc()
	t.dispJobs.Add(int64(len(s.b.JobIDs)))
	t.stream.Publish(telemetry.Event{
		TSec: now, Kind: "dispatch", Subsystem: "cluster",
		Pipeline: pipeName, Class: s.b.Class.Name, Priority: s.b.Priority,
		Jobs: len(s.b.JobIDs), Value: s.finish - s.start,
		Detail: fmt.Sprintf("start=%g", s.start),
	})
}

// onFail records a batch no pipeline could place.
func (t *Telemetry) onFail(now float64, b BatchJob, reason string) {
	if t == nil {
		return
	}
	t.stream.Publish(telemetry.Event{
		TSec: now, Kind: "fail", Subsystem: "cluster",
		Class: b.Class.Name, Priority: b.Priority, Jobs: len(b.JobIDs),
		Detail: reason,
	})
}

// onPreempt records one evicted (and re-enqueued) slot.
func (t *Telemetry) onPreempt(now float64, ev *slot, byPriority int, pipeName string) {
	if t == nil {
		return
	}
	t.preBatch.Inc()
	t.preJobs.Add(int64(len(ev.b.JobIDs)))
	t.stream.Publish(telemetry.Event{
		TSec: now, Kind: "preempt", Subsystem: "cluster",
		Pipeline: pipeName, Class: ev.b.Class.Name, Priority: ev.b.Priority,
		Jobs: len(ev.b.JobIDs), Detail: fmt.Sprintf("by_priority=%d", byPriority),
	})
}

// onFault records one injected fault firing on a pipeline.
func (t *Telemetry) onFault(now float64, pipeName string, fe faults.Event) {
	if t == nil {
		return
	}
	t.faultsC.Inc()
	t.stream.Publish(telemetry.Event{
		TSec: now, Kind: "fault", Subsystem: "cluster",
		Pipeline: pipeName, Value: fe.DurationSec,
		Detail: string(fe.Kind),
	})
}

// onRepair records a pipeline's re-admission after downtime or quarantine.
func (t *Telemetry) onRepair(now float64, pipeName string) {
	if t == nil {
		return
	}
	t.repairs.Inc()
	t.stream.Publish(telemetry.Event{
		TSec: now, Kind: "repair", Subsystem: "cluster", Pipeline: pipeName,
	})
}

// onRetry records one failed attempt re-entering dispatch after backoff.
func (t *Telemetry) onRetry(now float64, b BatchJob, reason, pipeName string) {
	if t == nil {
		return
	}
	t.retryBatch.Inc()
	t.retryJobs.Add(int64(len(b.JobIDs)))
	t.stream.Publish(telemetry.Event{
		TSec: now, Kind: "retry", Subsystem: "cluster",
		Pipeline: pipeName, Class: b.Class.Name, Priority: b.Priority,
		Jobs: len(b.JobIDs), Value: b.ReleaseSec - now,
		Detail: fmt.Sprintf("attempt=%d %s", b.Attempt, reason),
	})
}

// onQuarantine records a circuit-breaker trip.
func (t *Telemetry) onQuarantine(now float64, pipeName string, durSec float64) {
	if t == nil {
		return
	}
	t.quarC.Inc()
	t.stream.Publish(telemetry.Event{
		TSec: now, Kind: "quarantine", Subsystem: "cluster",
		Pipeline: pipeName, Value: durSec,
	})
}

// onFailover records one queued-ahead slot evicted from a failing pipeline
// and re-dispatched elsewhere.
func (t *Telemetry) onFailover(now float64, ev *slot, cause, pipeName string) {
	if t == nil {
		return
	}
	t.foBatch.Inc()
	t.foJobs.Add(int64(len(ev.b.JobIDs)))
	t.stream.Publish(telemetry.Event{
		TSec: now, Kind: "failover", Subsystem: "cluster",
		Pipeline: pipeName, Class: ev.b.Class.Name, Priority: ev.b.Priority,
		Jobs: len(ev.b.JobIDs), Detail: cause,
	})
}

// onDegrade records a batch landing on a lossy tier because every exact
// pipeline was out of service.
func (t *Telemetry) onDegrade(now float64, s *slot, pipeName string) {
	if t == nil {
		return
	}
	t.degBatch.Inc()
	t.degJobs.Add(int64(len(s.b.JobIDs)))
	t.stream.Publish(telemetry.Event{
		TSec: now, Kind: "degrade", Subsystem: "cluster",
		Pipeline: pipeName, Class: s.b.Class.Name, Priority: s.b.Priority,
		Jobs: len(s.b.JobIDs),
	})
}

// delayBounds buckets queueing delay in seconds, log-spaced from sub-second
// to hours.
var delayBounds = []float64{0.1, 0.5, 1, 5, 10, 30, 60, 120, 300, 600, 1800, 3600}

// finalize publishes the settled end-state of a run: counters and gauges
// whose exact values depend on the final schedule (preemption shifts
// unstarted slot starts after dispatch). Every value is copied from the
// Summary, so metrics and Summary can never disagree.
func (t *Telemetry) finalize(s Summary) {
	if t == nil {
		return
	}
	t.reg.Counter("cluster.completed_jobs").Add(int64(s.Completed))
	t.reg.Counter("cluster.failed_batches").Add(int64(s.FailedBatches))
	t.reg.Counter("cluster.failed_jobs").Add(int64(s.FailedJobs))
	t.reg.Counter("cluster.deadline_misses").Add(int64(s.DeadlineMisses))
	t.reg.Gauge("cluster.makespan_sec").Set(s.MakespanSec)
	t.reg.Gauge("cluster.total_write_bytes").Add(s.TotalWriteBytes)

	h := t.reg.Histogram("cluster.delay_sec", delayBounds)
	for _, a := range s.Assignments {
		if a.Pipeline < 0 {
			continue
		}
		for i := range a.Batch.JobIDs {
			arr := a.Batch.ReleaseSec
			if a.Batch.Arrivals != nil {
				arr = a.Batch.Arrivals[i]
			}
			h.Observe(a.StartSec - arr)
		}
	}

	for _, ps := range s.Pipelines {
		prefix := "cluster.pipeline." + ps.Name
		t.reg.Gauge(prefix + ".busy_sec").Set(ps.BusySec)
		t.reg.Gauge(prefix + ".utilization").Set(ps.Utilization)
		t.reg.Gauge(prefix + ".write_bytes").Set(ps.WriteBytes)
		t.reg.Gauge(prefix + ".wear_pct").Set(ps.WearPct)
		t.reg.Gauge(prefix + ".write_pressure_bps").Set(ps.WritePressureBps)
		if ps.WearOut {
			t.reg.Gauge(prefix + ".worn_out").Set(1)
		}
	}
}
