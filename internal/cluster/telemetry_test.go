package cluster

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/model"
	"repro/internal/pipeline"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// telemetryFleet is a two-tier synthetic fleet with flash write accounting
// on the slow tier.
func telemetryFleet() []Pipeline {
	flashy := func(totalSec float64) RunFunc {
		return func(req pipeline.Request) pipeline.Report {
			rep := constEngine(totalSec)(req)
			rep.PrefillWriteBytes = 1e9
			rep.DecodeWriteBytesPerStep = 1e6
			rep.Devices = 4
			return rep
		}
	}
	return []Pipeline{
		{Name: "fast", Run: constEngine(2)},
		{Name: "slow", Run: flashy(5)},
	}
}

// parityTrace builds a deterministic pseudo-random mixed trace: two
// classes, two priorities, deadlines on the urgent tier.
func parityTrace(seed int64, n int) []Request {
	rng := rand.New(rand.NewSource(seed))
	reqs := make([]Request, n)
	at := 0.0
	for i := range reqs {
		at += rng.Float64() * 3
		r := Request{ID: i, Class: workload.Short, ArrivalSec: at}
		if rng.Intn(2) == 0 {
			r.Class = workload.Medium
		} else {
			r.Priority = 1
			r.DeadlineSec = 1 + rng.Float64()*20
		}
		reqs[i] = r
	}
	return reqs
}

// FuzzClusterTelemetryParity asserts the determinism contract of the
// telemetry layer: attaching a registry, an event stream, and a lossy
// subscriber must leave the Summary bit-identical to a run with telemetry
// disabled, across admission configurations including preemption and
// continuous batching.
func FuzzClusterTelemetryParity(f *testing.F) {
	f.Add(int64(1), 12, 3, 4.0, 0, 0)
	f.Add(int64(42), 24, 4, 6.0, 8, 1)  // preemption
	f.Add(int64(7), 24, 2, 2.0, 6, 2)   // continuous batching
	f.Add(int64(99), 32, 4, 10.0, 5, 3) // both
	f.Add(int64(-3), 1, 1, 0.0, 1, 3)   // degenerate single-request trace
	f.Fuzz(func(t *testing.T, seed int64, n, maxBatch int, waitSec float64, backlog, flags int) {
		if n < 1 {
			n = 1
		}
		if n > 64 {
			n = 64
		}
		if maxBatch < 1 {
			maxBatch = 1
		}
		if maxBatch > 8 {
			maxBatch = 8
		}
		if waitSec < 0 || waitSec > 1e6 {
			waitSec = 5
		}
		if backlog < 0 {
			backlog = 0
		}
		if backlog > 64 {
			backlog = 64
		}
		cfg := Config{
			Model:  model.OPT30B,
			Fleet:  telemetryFleet(),
			Policy: LeastLoaded,
			Admission: Admission{
				MaxBatch:           maxBatch,
				MaxWaitSec:         waitSec,
				MaxBacklog:         backlog,
				Preemption:         flags&1 != 0,
				ContinuousBatching: flags&2 != 0,
			},
		}
		reqs := parityTrace(seed, n)

		plain, err := Run(cfg, reqs)
		if err != nil {
			t.Fatal(err)
		}

		reg := telemetry.NewRegistry()
		stream := telemetry.NewStream()
		sub := stream.Subscribe(1) // tiny buffer: exercise the drop path
		defer stream.Close()
		cfg.Telemetry = NewTelemetry(reg, stream)
		instrumented, err := Run(cfg, reqs)
		if err != nil {
			t.Fatal(err)
		}
		_ = sub

		if !reflect.DeepEqual(plain, instrumented) {
			t.Fatalf("telemetry changed the Summary:\noff: %+v\non:  %+v", plain, instrumented)
		}
	})
}

// Live counters must agree with the Summary where the schedule cannot shift
// them, and finalize must copy the settled end-state exactly.
func TestTelemetryCountersMatchSummary(t *testing.T) {
	reg := telemetry.NewRegistry()
	stream := telemetry.NewStream()
	sub := stream.Subscribe(1024)
	cfg := Config{
		Model:     model.OPT30B,
		Fleet:     telemetryFleet(),
		Policy:    LeastLoaded,
		Admission: Admission{MaxBatch: 4, MaxWaitSec: 5, MaxBacklog: 6},
		Telemetry: NewTelemetry(reg, stream),
	}
	reqs := parityTrace(3, 40)
	s, err := Run(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	stream.Close()

	snap := reg.Snapshot()
	if got := snap.Counters["cluster.arrivals"]; got != int64(s.Admitted) {
		t.Errorf("arrivals counter %d, Summary.Admitted %d", got, s.Admitted)
	}
	if got := snap.Counters["cluster.rejections"]; got != int64(s.RejectedJobs) {
		t.Errorf("rejections counter %d, Summary.RejectedJobs %d", got, s.RejectedJobs)
	}
	if got := snap.Counters["cluster.completed_jobs"]; got != int64(s.Completed) {
		t.Errorf("completed counter %d, Summary.Completed %d", got, s.Completed)
	}
	if got := snap.Counters["cluster.deadline_misses"]; got != int64(s.DeadlineMisses) {
		t.Errorf("deadline miss counter %d, Summary %d", got, s.DeadlineMisses)
	}
	if got := snap.Gauges["cluster.makespan_sec"]; got != s.MakespanSec {
		t.Errorf("makespan gauge %g, Summary %g", got, s.MakespanSec)
	}
	if h, ok := snap.Histograms["cluster.delay_sec"]; !ok || h.Count != int64(s.Completed) {
		t.Errorf("delay histogram count %d, want %d completions", h.Count, s.Completed)
	}
	for _, ps := range s.Pipelines {
		if got := snap.Gauges["cluster.pipeline."+ps.Name+".busy_sec"]; got != ps.BusySec {
			t.Errorf("pipeline %s busy gauge %g, Summary %g", ps.Name, got, ps.BusySec)
		}
	}

	// The stream narrated the run: arrival events for every admitted
	// request, dispatch events for every committed batch.
	var arrivals, dispatches int
	for e := range sub.Events() {
		switch e.Kind {
		case "arrival":
			arrivals++
		case "dispatch":
			dispatches++
		}
	}
	if arrivals+int(sub.Dropped()) < s.Admitted {
		t.Errorf("stream saw %d arrivals (+%d dropped), Summary admitted %d", arrivals, sub.Dropped(), s.Admitted)
	}
	if dispatches == 0 && s.Batches > s.FailedBatches {
		t.Error("no dispatch events for a run with completed batches")
	}
}

// Wear and writeback pressure surface in the Summary (satellite: endurance
// next to latency and cost in the same run output).
func TestSummaryWearAccounting(t *testing.T) {
	cfg := Config{
		Model:     model.OPT30B,
		Fleet:     telemetryFleet(),
		Policy:    LeastLoaded,
		Admission: Admission{MaxBatch: 2, MaxWaitSec: 1},
	}
	s, err := Run(cfg, shortReqs(0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7))
	if err != nil {
		t.Fatal(err)
	}
	var fast, slow *PipelineStats
	for i := range s.Pipelines {
		switch s.Pipelines[i].Name {
		case "fast":
			fast = &s.Pipelines[i]
		case "slow":
			slow = &s.Pipelines[i]
		}
	}
	if fast.WriteBytes != 0 || fast.WearPct != 0 {
		t.Errorf("DRAM tier reports wear: %+v", fast)
	}
	if slow.Jobs > 0 {
		// Short class: 100 output tokens → 99 decode steps per pass.
		perBatch := 1e9 + 1e6*99
		if want := float64(slow.Batches) * perBatch; slow.WriteBytes != want {
			t.Errorf("slow WriteBytes = %g, want %g", slow.WriteBytes, want)
		}
		if slow.WearPct <= 0 {
			t.Errorf("slow WearPct = %g, want > 0", slow.WearPct)
		}
		if want := slow.WriteBytes / slow.BusySec; slow.WritePressureBps != want {
			t.Errorf("slow WritePressureBps = %g, want %g", slow.WritePressureBps, want)
		}
	}
	if s.TotalWriteBytes != fast.WriteBytes+slow.WriteBytes {
		t.Errorf("TotalWriteBytes = %g", s.TotalWriteBytes)
	}
}

// Rejected and failed job IDs must come out sorted regardless of the order
// the scheduler produced them.
func TestSummaryIDsSorted(t *testing.T) {
	cfg := Config{
		Model:     model.OPT30B,
		Fleet:     []Pipeline{{Name: "p0", Run: constEngine(50)}},
		Policy:    LeastLoaded,
		Admission: Admission{MaxBatch: 1, MaxWaitSec: 0, MaxBacklog: 2},
	}
	// IDs arrive out of numeric order at distinct times; the backlog cap
	// rejects the later ones.
	reqs := []Request{
		{ID: 9, Class: workload.Short, ArrivalSec: 0},
		{ID: 5, Class: workload.Short, ArrivalSec: 1},
		{ID: 7, Class: workload.Short, ArrivalSec: 2},
		{ID: 2, Class: workload.Short, ArrivalSec: 3},
	}
	s, err := Run(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(s.RejectedJobIDs); i++ {
		if s.RejectedJobIDs[i-1] > s.RejectedJobIDs[i] {
			t.Fatalf("RejectedJobIDs not sorted: %v", s.RejectedJobIDs)
		}
	}
	for i := 1; i < len(s.FailedJobIDs); i++ {
		if s.FailedJobIDs[i-1] > s.FailedJobIDs[i] {
			t.Fatalf("FailedJobIDs not sorted: %v", s.FailedJobIDs)
		}
	}
}
