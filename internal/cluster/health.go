package cluster

import (
	"fmt"
	"math"

	"repro/internal/endurance"
)

// RetryPolicy governs how the event loop recovers work that an injected
// fault failed: how many times a batch may retry, how its backoff grows,
// and when a repeatedly-failing pipeline is quarantined. It is consulted
// only when a fault injector is configured — without one nothing ever
// fails mid-flight, so the policy is inert.
//
// The zero value disables retries entirely (every failed attempt is
// terminal) and never quarantines; DefaultRetryPolicy returns the
// recommended starting point.
type RetryPolicy struct {
	// MaxRetries bounds re-dispatch attempts per batch after its first
	// failure. 0 means failed attempts are terminal.
	MaxRetries int
	// BackoffSec is the delay before the first retry; attempt k waits
	// BackoffSec × 2^(k−1), capped at BackoffMaxSec. Both are simulated
	// seconds — backoff is deterministic, never jittered, so replays are
	// bit-identical.
	BackoffSec    float64
	BackoffMaxSec float64
	// FailureThreshold trips the per-pipeline circuit breaker: after this
	// many consecutive failed attempts on one pipeline it is quarantined
	// for QuarantineSec (its queued-ahead work fails over to other
	// pipelines immediately). ≤ 0 disables quarantine.
	FailureThreshold int
	QuarantineSec    float64
}

// DefaultRetryPolicy is the recommended recovery configuration: 3 retries
// with 1 s → 60 s exponential backoff, and a 120 s quarantine after 3
// consecutive failures on one pipeline.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxRetries:       3,
		BackoffSec:       1,
		BackoffMaxSec:    60,
		FailureThreshold: 3,
		QuarantineSec:    120,
	}
}

func (rp RetryPolicy) validate() error {
	if rp.MaxRetries < 0 {
		return fmt.Errorf("cluster: retry policy max retries must be ≥ 0, got %d", rp.MaxRetries)
	}
	for _, v := range []struct {
		name string
		sec  float64
	}{
		{"backoff", rp.BackoffSec},
		{"backoff cap", rp.BackoffMaxSec},
		{"quarantine", rp.QuarantineSec},
	} {
		if v.sec < 0 || math.IsInf(v.sec, 0) || math.IsNaN(v.sec) {
			return fmt.Errorf("cluster: retry policy %s must be finite and ≥ 0, got %g", v.name, v.sec)
		}
	}
	return nil
}

// backoffSec returns the deterministic delay before retry attempt k ≥ 1:
// BackoffSec doubling per attempt, capped at BackoffMaxSec.
func (rp RetryPolicy) backoffSec(attempt int) float64 {
	if rp.BackoffSec <= 0 {
		return 0
	}
	d := rp.BackoffSec
	for i := 1; i < attempt; i++ {
		d *= 2
		if rp.BackoffMaxSec > 0 && d >= rp.BackoffMaxSec {
			return rp.BackoffMaxSec
		}
	}
	if rp.BackoffMaxSec > 0 && d > rp.BackoffMaxSec {
		return rp.BackoffMaxSec
	}
	return d
}

// pipeHealth is the recovery layer's per-pipeline state: fault downtime,
// circuit-breaker quarantine, and the wear budget whose exhaustion retires
// the pipeline permanently. The zero value is a healthy pipeline with
// unlimited endurance, which is exactly the injector-off configuration.
type pipeHealth struct {
	// downUntil is when the current fail-stop window ends (+Inf once the
	// pipeline wore out — permanent).
	downUntil float64
	// quarUntil is when the current circuit-breaker quarantine ends.
	quarUntil float64
	// consecFails counts consecutive failed attempts since the last
	// success or re-admission; reaching RetryPolicy.FailureThreshold trips
	// the breaker.
	consecFails int
	// wear is the pipeline's endurance allowance (nil = unlimited).
	wear *endurance.Budget

	faults      int
	quarantines int
	wearOut     bool
}

// availAt returns the earliest instant pipeline p accepts new work: now (or
// earlier) when healthy, the later of its downtime/quarantine ends while out
// of service, +Inf once permanently worn out.
func (l *eventLoop) availAt(p int) float64 {
	h := &l.health[p]
	a := h.downUntil
	if h.quarUntil > a {
		a = h.quarUntil
	}
	return a
}

// faultTally accumulates the recovery layer's run-wide counters.
type faultTally struct {
	faults       int // injected faults that fired (fail-stop + wear-out)
	retryBatches int
	retryJobs    int
	failedOverB  int // batches evicted from a failing pipeline and re-dispatched
	failedOverJ  int
	quarantines  int
	degradedB    int // batches served lossily for lack of a healthy exact tier
	degradedJ    int
}
