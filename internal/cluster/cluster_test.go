package cluster

import (
	"math"
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/energy"
	"repro/internal/model"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

// constEngine completes any batch in totalSec (prefill-only report), never
// shrinking or OOMing.
func constEngine(totalSec float64) RunFunc {
	return func(req pipeline.Request) pipeline.Report {
		return pipeline.Report{Batch: req.Batch, PrefillSec: totalSec, StepSec: 0}
	}
}

func shortReqs(arrivals ...float64) []Request {
	out := make([]Request, len(arrivals))
	for i, t := range arrivals {
		out[i] = Request{ID: i, Class: workload.Short, ArrivalSec: t}
	}
	return out
}

// Admission semantics: a batch closes the instant it fills (release = that
// arrival), a partial batch closes at its oldest member's timeout, and the
// drain after the last arrival fires remaining timeouts.
func TestRunAdmissionTimeouts(t *testing.T) {
	cfg := Config{
		Model:     model.OPT30B,
		Fleet:     []Pipeline{{Name: "p0", Run: constEngine(2)}},
		Policy:    LeastLoaded,
		Admission: Admission{MaxBatch: 2, MaxWaitSec: 10},
	}
	s, err := Run(cfg, shortReqs(0, 1, 5))
	if err != nil {
		t.Fatal(err)
	}
	if s.Batches != 2 || s.FailedBatches != 0 || s.RejectedJobs != 0 {
		t.Fatalf("summary %+v", s)
	}
	a0, a1 := s.Assignments[0], s.Assignments[1]
	// Batch {0,1} fills at t=1 and runs 1→3.
	if a0.Batch.ReleaseSec != 1 || a0.StartSec != 1 || a0.FinishSec != 3 {
		t.Errorf("full batch timing %+v", a0)
	}
	// Batch {2} times out at 5+10=15 during the drain and runs 15→17.
	if a1.Batch.ReleaseSec != 15 || a1.StartSec != 15 || a1.FinishSec != 17 {
		t.Errorf("timeout batch timing %+v", a1)
	}
	if s.MakespanSec != 17 {
		t.Errorf("makespan %v, want 17", s.MakespanSec)
	}
	// Delays: job0 waits 1, job1 waits 0, job2 waits exactly MaxWaitSec.
	if s.DelayP50Sec != 1 || s.DelayP99Sec != 10 {
		t.Errorf("delay percentiles p50=%v p99=%v, want 1 and 10", s.DelayP50Sec, s.DelayP99Sec)
	}
	if got, want := s.DelayMeanSec, 11.0/3; math.Abs(got-want) > 1e-12 {
		t.Errorf("mean delay %v, want %v", got, want)
	}
	if s.OutputTokens != 3*int64(workload.Short.Output) {
		t.Errorf("tokens %d", s.OutputTokens)
	}
}

// A timeout must fire — at its deadline, not the observing arrival's time —
// before a later arrival is processed.
func TestRunTimeoutFiresBeforeLaterArrival(t *testing.T) {
	cfg := Config{
		Model:     model.OPT30B,
		Fleet:     []Pipeline{{Name: "p0", Run: constEngine(1)}},
		Policy:    LeastLoaded,
		Admission: Admission{MaxBatch: 4, MaxWaitSec: 2},
	}
	s, err := Run(cfg, shortReqs(0, 1, 10))
	if err != nil {
		t.Fatal(err)
	}
	if s.Batches != 2 {
		t.Fatalf("got %d batches, want 2: %+v", s.Batches, s.Assignments)
	}
	if r := s.Assignments[0].Batch.ReleaseSec; r != 2 {
		t.Errorf("first batch released at %v, want deadline 2", r)
	}
	if got := s.Assignments[0].Batch.JobIDs; len(got) != 2 {
		t.Errorf("first batch jobs %v, want {0,1}", got)
	}
	if r := s.Assignments[1].Batch.ReleaseSec; r != 12 {
		t.Errorf("drained batch released at %v, want 12", r)
	}
}

// The three policies make different, explainable choices on a fleet with a
// fast-expensive and a slow-cheap pipeline.
func TestPoliciesDiffer(t *testing.T) {
	fleet := []Pipeline{
		{Name: "fast-expensive", Run: constEngine(1), USDPerHour: 3600}, // $1/s
		{Name: "slow-cheap", Run: constEngine(4), USDPerHour: 360},      // $0.1/s
	}
	reqs := shortReqs(0, 0, 0, 0, 0, 0)
	adm := Admission{MaxBatch: 2, MaxWaitSec: 1}
	run := func(p Policy) Summary {
		s, err := Run(Config{Model: model.OPT30B, Fleet: fleet, Policy: p, Admission: adm}, reqs)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	ll := run(LeastLoaded)
	// Batches at release 0: p0 (tie→0, finish 1), p1 (0<1, finish 4), p0
	// again (1<4, finish 2).
	if ll.Pipelines[0].Batches != 2 || ll.Pipelines[1].Batches != 1 {
		t.Errorf("least-loaded split %d/%d, want 2/1", ll.Pipelines[0].Batches, ll.Pipelines[1].Batches)
	}
	if ll.MakespanSec != 4 {
		t.Errorf("least-loaded makespan %v, want 4", ll.MakespanSec)
	}

	cf := run(CheapestFeasible)
	// $0.40/batch on slow-cheap always beats $1.00 on fast-expensive.
	if cf.Pipelines[0].Batches != 0 || cf.Pipelines[1].Batches != 3 {
		t.Errorf("cheapest-feasible split %d/%d, want 0/3", cf.Pipelines[0].Batches, cf.Pipelines[1].Batches)
	}
	if cf.MakespanSec != 12 {
		t.Errorf("cheapest-feasible makespan %v, want 12", cf.MakespanSec)
	}
	if math.Abs(cf.TotalCostUSD-1.2) > 1e-9 || math.Abs(ll.TotalCostUSD-2.4) > 1e-9 {
		t.Errorf("costs cheapest=%v least-loaded=%v, want 1.2 and 2.4", cf.TotalCostUSD, ll.TotalCostUSD)
	}

	fe := run(FastestETA)
	// Queueing on the fast pipeline still beats 4 s on the slow one.
	if fe.Pipelines[0].Batches != 3 || fe.MakespanSec != 3 {
		t.Errorf("fastest-eta split %d batches on fast, makespan %v; want 3 and 3",
			fe.Pipelines[0].Batches, fe.MakespanSec)
	}
}

// Dispatch skips pipelines that cannot place a batch; a batch no pipeline
// can place fails as a unit with the engine's reason.
func TestFeasibilityRouting(t *testing.T) {
	longOnly := func(req pipeline.Request) pipeline.Report {
		if req.Context < workload.Long.Input {
			return pipeline.Report{OOM: true, Reason: "too small to bother"}
		}
		return pipeline.Report{Batch: req.Batch, PrefillSec: 1}
	}
	shortOnly := func(req pipeline.Request) pipeline.Report {
		if req.Context > workload.Short.Input {
			return pipeline.Report{OOM: true, Reason: "storage OOM"}
		}
		return pipeline.Report{Batch: req.Batch, PrefillSec: 1}
	}
	fleet := []Pipeline{{Name: "long", Run: longOnly}, {Name: "short", Run: shortOnly}}
	reqs := []Request{
		{ID: 0, Class: workload.Short, ArrivalSec: 0},
		{ID: 1, Class: workload.Long, ArrivalSec: 0},
		{ID: 2, Class: workload.Medium, ArrivalSec: 0}, // nobody can run it
	}
	s, err := Run(Config{
		Model: model.OPT30B, Fleet: fleet, Policy: LeastLoaded,
		Admission: Admission{MaxBatch: 1, MaxWaitSec: 0},
	}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if s.FailedBatches != 1 || s.FailedJobs != 1 || len(s.FailedJobIDs) != 1 || s.FailedJobIDs[0] != 2 {
		t.Fatalf("failed-work accounting %+v", s)
	}
	if s.Completed != 2 {
		t.Errorf("completed %d, want 2", s.Completed)
	}
	for _, a := range s.Assignments {
		if a.Pipeline < 0 {
			if a.Reason == "" {
				t.Error("failed batch lost its reason")
			}
			continue
		}
		want := "short"
		if a.Batch.Class.Name == workload.Long.Name {
			want = "long"
		}
		if fleet[a.Pipeline].Name != want {
			t.Errorf("%s batch routed to %s", a.Batch.Class.Name, fleet[a.Pipeline].Name)
		}
	}
}

// The backlog cap rejects arrivals while admitted-but-unstarted work is at
// the cap, and rejected requests never reach a pipeline.
func TestRunBacklogRejection(t *testing.T) {
	s, err := Run(Config{
		Model:     model.OPT30B,
		Fleet:     []Pipeline{{Name: "slow", Run: constEngine(100)}},
		Policy:    LeastLoaded,
		Admission: Admission{MaxBatch: 1, MaxWaitSec: 0, MaxBacklog: 2},
	}, shortReqs(0, 1, 2, 3, 4, 5))
	if err != nil {
		t.Fatal(err)
	}
	// r0 starts immediately; r1 and r2 queue behind it (starts 100, 200);
	// r3..r5 arrive with two unstarted requests in the system and bounce.
	if s.RejectedJobs != 3 || !reflect.DeepEqual(s.RejectedJobIDs, []int{3, 4, 5}) {
		t.Fatalf("rejected %v", s.RejectedJobIDs)
	}
	if s.Admitted != 3 || s.Completed != 3 || s.Batches != 3 {
		t.Errorf("admission accounting %+v", s)
	}
	if s.OutputTokens != 3*int64(workload.Short.Output) {
		t.Errorf("rejected work generated tokens: %d", s.OutputTokens)
	}
}

// Cost and energy attribution: busy seconds × amortized rate, and the
// Fig. 17(a) integration over completed tokens.
func TestAttribution(t *testing.T) {
	tb := device.DefaultTestbed()
	eng := func(req pipeline.Request) pipeline.Report {
		return pipeline.Report{Batch: req.Batch, PrefillSec: 0, StepSec: 0.01}
	}
	fleet := []Pipeline{{
		Name: "p0", Run: eng, USDPerHour: 7.2,
		Energy: &EnergyConfig{Testbed: tb, Model: energy.Config{Storage: energy.PlainSSDs, Devices: 4}},
	}}
	s, err := Run(Config{
		Model: model.OPT30B, Fleet: fleet, Policy: CheapestFeasible,
		Admission: Admission{MaxBatch: 4, MaxWaitSec: 0},
	}, shortReqs(0, 0, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	ps := s.Pipelines[0]
	if ps.Jobs != 4 || ps.BusySec <= 0 {
		t.Fatalf("pipeline stats %+v", ps)
	}
	wantCost := 7.2 / 3600 * ps.BusySec
	if math.Abs(ps.CostUSD-wantCost) > 1e-12 {
		t.Errorf("cost %v, want %v", ps.CostUSD, wantCost)
	}
	if ps.EnergyJ <= 0 {
		t.Error("energy attribution missing")
	}
	if s.TotalCostUSD != ps.CostUSD || s.TotalEnergyJ != ps.EnergyJ {
		t.Error("totals disagree with per-pipeline sums")
	}
	if ps.Utilization <= 0 || ps.Utilization > 1 {
		t.Errorf("utilization %v out of range", ps.Utilization)
	}
}

// Determinism on real engines: a mixed HILOS + DRAM-baseline fleet over a
// Poisson trace must produce byte-identical summaries run after run (the
// -race CI job exercises the prewarming pool).
func TestRunDeterministicRealEngines(t *testing.T) {
	tb := device.DefaultTestbed()
	fleet := []Pipeline{
		{Name: "hilos-0", Run: func(r pipeline.Request) pipeline.Report { return core.Run(tb, r, core.DefaultOptions(8)) }, USDPerHour: 2.0},
		{Name: "hilos-1", Run: func(r pipeline.Request) pipeline.Report { return core.Run(tb, r, core.DefaultOptions(8)) }, USDPerHour: 2.0},
		{Name: "flex-dram", Run: func(r pipeline.Request) pipeline.Report { return baseline.FlexDRAM(tb).Run(tb, r) }, USDPerHour: 0.9},
	}
	g, err := workload.NewGenerator(11, workload.AzureLikeMix())
	if err != nil {
		t.Fatal(err)
	}
	arr, err := workload.PoissonArrivals(11, 0.5, 36)
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := g.TimedTrace(arr)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Model: model.OPT30B, Fleet: fleet, Policy: CheapestFeasible,
		Admission: Admission{MaxBatch: 8, MaxWaitSec: 60},
	}
	base, err := Run(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if base.Completed == 0 || base.MakespanSec <= 0 {
		t.Fatalf("degenerate baseline summary %+v", base)
	}
	for trial := 0; trial < 3; trial++ {
		s, err := Run(cfg, reqs)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(s, base) {
			t.Fatalf("trial %d: summary differs from first run", trial)
		}
	}
}

// Validation errors.
func TestRunErrors(t *testing.T) {
	okFleet := []Pipeline{{Name: "p", Run: constEngine(1)}}
	okAdm := Admission{MaxBatch: 1}
	cases := map[string]Config{
		"empty fleet":   {Model: model.OPT30B, Policy: LeastLoaded, Admission: okAdm},
		"nil engine":    {Model: model.OPT30B, Fleet: []Pipeline{{Name: "p"}}, Policy: LeastLoaded, Admission: okAdm},
		"bad policy":    {Model: model.OPT30B, Fleet: okFleet, Policy: "vibes", Admission: okAdm},
		"bad batch":     {Model: model.OPT30B, Fleet: okFleet, Policy: LeastLoaded},
		"negative wait": {Model: model.OPT30B, Fleet: okFleet, Policy: LeastLoaded, Admission: Admission{MaxBatch: 1, MaxWaitSec: -1}},
		"negative rate": {Model: model.OPT30B, Fleet: []Pipeline{{Name: "p", Run: constEngine(1), USDPerHour: -1}}, Policy: LeastLoaded, Admission: okAdm},
	}
	for name, cfg := range cases {
		if _, err := Run(cfg, shortReqs(0)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	ok := Config{Model: model.OPT30B, Fleet: okFleet, Policy: LeastLoaded, Admission: okAdm}
	if _, err := Run(ok, nil); err == nil {
		t.Error("empty trace accepted")
	}
	if _, err := Run(ok, []Request{{ID: 0, Class: workload.Short, ArrivalSec: -2}}); err == nil {
		t.Error("negative arrival accepted")
	}
	if _, err := Dispatch(model.OPT30B, nil, okFleet, LeastLoaded); err == nil {
		t.Error("empty plan accepted")
	}
	if _, err := Dispatch(model.OPT30B, []BatchJob{{Class: workload.Short}}, okFleet, LeastLoaded); err == nil {
		t.Error("empty batch accepted")
	}
}

// The exact-tail-pass accounting: 5 jobs on an engine that fits 2 run two
// full passes plus one batch-1 tail pass at the tail's own (cheaper) cost.
func TestDispatchExactTailPass(t *testing.T) {
	shrink := func(req pipeline.Request) pipeline.Report {
		b := req.Batch
		if b > 2 {
			b = 2
		}
		// Step time scales with the running batch.
		return pipeline.Report{Batch: b, PrefillSec: 10, StepSec: float64(b)}
	}
	batches := []BatchJob{{Class: workload.Short, JobIDs: []int{0, 1, 2, 3, 4}}}
	asgs, err := Dispatch(model.OPT30B, batches, []Pipeline{{Name: "p", Run: shrink}}, LeastLoaded)
	if err != nil {
		t.Fatal(err)
	}
	// Full pass at batch 2: 10 + 99×2 = 208 s, twice; tail pass at batch 1:
	// 10 + 99×1 = 109 s. The old ceil accounting would charge 3×208.
	if want := 2*208.0 + 109; asgs[0].ExecSec() != want {
		t.Errorf("exec %v, want %v (two full passes + exact tail pass)", asgs[0].ExecSec(), want)
	}
}

func BenchmarkClusterDispatch(b *testing.B) {
	tb := device.DefaultTestbed()
	fleet := []Pipeline{
		{Name: "hilos", Run: func(r pipeline.Request) pipeline.Report { return core.Run(tb, r, core.DefaultOptions(8)) }},
		{Name: "flex-dram", Run: func(r pipeline.Request) pipeline.Report { return baseline.FlexDRAM(tb).Run(tb, r) }},
	}
	g, _ := workload.NewGenerator(1, workload.AzureLikeMix())
	arr, _ := workload.PoissonArrivals(1, 1, 48)
	reqs, _ := g.TimedTrace(arr)
	cfg := Config{
		Model: model.OPT30B, Fleet: fleet, Policy: CheapestFeasible,
		Admission: Admission{MaxBatch: 8, MaxWaitSec: 30},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg, reqs); err != nil {
			b.Fatal(err)
		}
	}
}

// Requests sharing a class name but not a shape must not merge into one
// batch: each shape gets its own queue and is simulated at its own shape
// (a replayed foreign trace may reuse labels).
func TestRunShapeConflictingClasses(t *testing.T) {
	a := workload.Class{Name: "req", Input: 100, Output: 10}
	b := workload.Class{Name: "req", Input: 4000, Output: 500}
	reqs := []Request{
		{ID: 0, Class: a, ArrivalSec: 0},
		{ID: 1, Class: b, ArrivalSec: 0},
	}
	var shapes []int
	spy := func(req pipeline.Request) pipeline.Report {
		shapes = append(shapes, req.Context)
		return pipeline.Report{Batch: req.Batch, PrefillSec: 1}
	}
	s, err := Run(Config{
		Model: model.OPT30B, Fleet: []Pipeline{{Name: "p", Run: spy}}, Policy: LeastLoaded,
		Admission: Admission{MaxBatch: 4, MaxWaitSec: 0},
	}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if s.Batches != 2 {
		t.Fatalf("shapes merged into %d batch(es): %+v", s.Batches, s.Assignments)
	}
	if s.OutputTokens != 10+500 {
		t.Errorf("tokens %d, want 510 (each request at its own shape)", s.OutputTokens)
	}
	seen := map[int]bool{}
	for _, c := range shapes {
		seen[c] = true
	}
	if !seen[100] || !seen[4000] {
		t.Errorf("engine saw contexts %v, want both 100 and 4000", shapes)
	}
}

// The makespan measures from the first arrival, so a trace with an absolute
// time offset (e.g. seconds-of-day) reports the same makespan, throughput
// and utilization as the same trace starting at zero.
func TestRunMakespanIgnoresTraceOffset(t *testing.T) {
	cfg := Config{
		Model:     model.OPT30B,
		Fleet:     []Pipeline{{Name: "p", Run: constEngine(3)}},
		Policy:    LeastLoaded,
		Admission: Admission{MaxBatch: 2, MaxWaitSec: 5},
	}
	base, err := Run(cfg, shortReqs(0, 1, 2, 3))
	if err != nil {
		t.Fatal(err)
	}
	const offset = 43200.0
	shifted := shortReqs(0+offset, 1+offset, 2+offset, 3+offset)
	moved, err := Run(cfg, shifted)
	if err != nil {
		t.Fatal(err)
	}
	if moved.MakespanSec != base.MakespanSec {
		t.Errorf("offset trace makespan %v, want %v", moved.MakespanSec, base.MakespanSec)
	}
	if moved.Throughput() != base.Throughput() {
		t.Errorf("offset trace throughput %v, want %v", moved.Throughput(), base.Throughput())
	}
	if moved.Pipelines[0].Utilization != base.Pipelines[0].Utilization {
		t.Errorf("offset trace utilization %v, want %v",
			moved.Pipelines[0].Utilization, base.Pipelines[0].Utilization)
	}
	// Assignments stay on the absolute clock.
	if moved.Assignments[0].StartSec < offset {
		t.Errorf("assignment start %v lost the trace offset", moved.Assignments[0].StartSec)
	}
}

// A failing energy integration must be surfaced, not silently reported as
// zero joules.
func TestEnergyErrorSurfaced(t *testing.T) {
	fleet := []Pipeline{{
		Name: "p", Run: constEngine(1),
		Energy: &EnergyConfig{Testbed: device.DefaultTestbed(), Model: energy.Config{Storage: 99}},
	}}
	s, err := Run(Config{
		Model: model.OPT30B, Fleet: fleet, Policy: LeastLoaded,
		Admission: Admission{MaxBatch: 1, MaxWaitSec: 0},
	}, shortReqs(0))
	if err != nil {
		t.Fatal(err)
	}
	if s.Pipelines[0].EnergyErr == "" {
		t.Error("energy integration failure not surfaced in PipelineStats.EnergyErr")
	}
	if s.Pipelines[0].EnergyJ != 0 {
		t.Errorf("failed integration still accumulated %v J", s.Pipelines[0].EnergyJ)
	}
}

// Pipelines declaring a shared EngineID memoize simulations across the
// fleet: two identical hosts simulate each batch shape once, not twice.
func TestSharedEngineIDMemoizesAcrossPipelines(t *testing.T) {
	var calls atomic.Int64
	counting := func(req pipeline.Request) pipeline.Report {
		calls.Add(1)
		return pipeline.Report{Batch: req.Batch, PrefillSec: 1}
	}
	fleet := []Pipeline{
		{Name: "a", Run: counting, EngineID: "shared"},
		{Name: "b", Run: counting, EngineID: "shared"},
	}
	batches := []BatchJob{
		{Class: workload.Short, JobIDs: []int{0, 1}},
		{Class: workload.Short, JobIDs: []int{2, 3}},
		{Class: workload.Long, JobIDs: []int{4, 5}},
	}
	if _, err := Dispatch(model.OPT30B, batches, fleet, LeastLoaded); err != nil {
		t.Fatal(err)
	}
	// Two distinct shapes (Short×2, Long×2), one simulation each.
	if got := calls.Load(); got != 2 {
		t.Errorf("%d engine simulations, want 2 (shared EngineID must memoize across pipelines)", got)
	}

	// Without EngineID, each pipeline keeps a private memo.
	calls.Store(0)
	private := []Pipeline{{Name: "a", Run: counting}, {Name: "b", Run: counting}}
	if _, err := Dispatch(model.OPT30B, batches, private, LeastLoaded); err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 4 {
		t.Errorf("%d engine simulations, want 4 (private memos per pipeline)", got)
	}
}

// Non-finite admission waits and arrival times must be rejected up front:
// an infinite or NaN deadline can never fire, which would silently drop
// requests while still counting them as completed.
func TestRunRejectsNonFiniteInputs(t *testing.T) {
	ok := Config{
		Model: model.OPT30B, Fleet: []Pipeline{{Name: "p", Run: constEngine(1)}},
		Policy: LeastLoaded, Admission: Admission{MaxBatch: 8},
	}
	bad := ok
	bad.Admission.MaxWaitSec = math.Inf(1)
	if _, err := Run(bad, shortReqs(0, 1, 2)); err == nil {
		t.Error("infinite max wait accepted")
	}
	bad.Admission.MaxWaitSec = math.NaN()
	if _, err := Run(bad, shortReqs(0, 1, 2)); err == nil {
		t.Error("NaN max wait accepted")
	}
	if _, err := Run(ok, shortReqs(0, math.NaN())); err == nil {
		t.Error("NaN arrival accepted")
	}
	if _, err := Run(ok, shortReqs(0, math.Inf(1))); err == nil {
		t.Error("infinite arrival accepted")
	}
}
