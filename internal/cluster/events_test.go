package cluster

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/model"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

// Continuous batching re-forms batches at dispatch time: requests that
// queue while the only pipeline is busy are re-packed into one batch up to
// MaxBatch when it frees, instead of dispatching the singleton batches that
// closed at admission.
func TestContinuousBatchingRePacksOnFree(t *testing.T) {
	adm := Admission{MaxBatch: 4, MaxWaitSec: 0}
	reqs := shortReqs(0, 1, 2, 3, 4)
	legacy, err := Run(Config{
		Model: model.OPT30B, Fleet: []Pipeline{{Name: "p", Run: constEngine(10)}},
		Policy: LeastLoaded, Admission: adm,
	}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	// Close-at-admission with MaxWait 0: five singleton batches, each
	// queueing behind the previous 10-second run.
	if legacy.Batches != 5 {
		t.Fatalf("legacy batches %d, want 5", legacy.Batches)
	}

	adm.ContinuousBatching = true
	cont, err := Run(Config{
		Model: model.OPT30B, Fleet: []Pipeline{{Name: "p", Run: constEngine(10)}},
		Policy: LeastLoaded, Admission: adm,
	}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	// Continuous: request 0 starts immediately; 1..4 accumulate and the
	// freed pipeline re-packs all four into one batch at t=10.
	if cont.Batches != 2 {
		t.Fatalf("continuous batches %d, want 2: %+v", cont.Batches, cont.Assignments)
	}
	second := cont.Assignments[1]
	if len(second.Batch.JobIDs) != 4 || second.StartSec != 10 {
		t.Errorf("re-packed batch %+v, want 4 jobs starting at 10", second)
	}
	if cont.Completed != 5 || cont.OutputTokens != legacy.OutputTokens {
		t.Errorf("continuous completed %d jobs, %d tokens; want 5 and %d",
			cont.Completed, cont.OutputTokens, legacy.OutputTokens)
	}
	// Re-packing strictly reduces makespan here: one tail batch instead of
	// four serial singletons.
	if cont.MakespanSec >= legacy.MakespanSec {
		t.Errorf("continuous makespan %v not below legacy %v", cont.MakespanSec, legacy.MakespanSec)
	}
}

// A re-packed batch respects MaxBatch: a backlog larger than MaxBatch
// drains in MaxBatch-sized waves, oldest first.
func TestContinuousBatchingRespectsMaxBatch(t *testing.T) {
	s, err := Run(Config{
		Model: model.OPT30B, Fleet: []Pipeline{{Name: "p", Run: constEngine(10)}},
		Policy:    LeastLoaded,
		Admission: Admission{MaxBatch: 2, MaxWaitSec: 0, ContinuousBatching: true},
	}, shortReqs(0, 1, 2, 3, 4))
	if err != nil {
		t.Fatal(err)
	}
	if s.Batches != 3 {
		t.Fatalf("batches %d, want 3 (1, then 2+2 waves): %+v", s.Batches, s.Assignments)
	}
	if got := s.Assignments[1].Batch.JobIDs; !reflect.DeepEqual(got, []int{1, 2}) {
		t.Errorf("first wave %v, want oldest two {1,2}", got)
	}
	if s.Assignments[1].StartSec != 10 || s.Assignments[2].StartSec != 20 {
		t.Errorf("wave starts %v/%v, want 10/20", s.Assignments[1].StartSec, s.Assignments[2].StartSec)
	}
}

// Priority classes in continuous mode: when a pipeline frees, the ripest
// high-priority queue dispatches before older low-priority work.
func TestContinuousBatchingPriorityOrder(t *testing.T) {
	reqs := []Request{
		{ID: 0, Class: workload.Short, ArrivalSec: 0},              // takes the pipeline
		{ID: 1, Class: workload.Medium, ArrivalSec: 1},             // offline, queues first
		{ID: 2, Class: workload.Short, ArrivalSec: 2, Priority: 1}, // online, queues later
		{ID: 3, Class: workload.Medium, ArrivalSec: 3},             // offline
	}
	s, err := Run(Config{
		Model: model.OPT30B, Fleet: []Pipeline{{Name: "p", Run: constEngine(10)}},
		Policy:    LeastLoaded,
		Admission: Admission{MaxBatch: 4, MaxWaitSec: 0, ContinuousBatching: true},
	}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if s.Batches != 3 {
		t.Fatalf("batches %d: %+v", s.Batches, s.Assignments)
	}
	// At t=10 the online queue wins despite arriving after the offline one.
	if got := s.Assignments[1].Batch; got.Priority != 1 || got.JobIDs[0] != 2 {
		t.Errorf("freed pipeline served %+v first, want online request 2", got)
	}
	if got := s.Assignments[2].Batch; got.Priority != 0 || len(got.JobIDs) != 2 {
		t.Errorf("offline wave %+v, want requests {1,3}", got)
	}
	online, ok := s.PriorityByClass(1)
	if !ok || online.Completed != 1 {
		t.Fatalf("per-priority stats missing online class: %+v", s.PerPriority)
	}
	offline, _ := s.PriorityByClass(0)
	if online.DelayP99Sec >= offline.DelayP99Sec {
		t.Errorf("online p99 %v not below offline %v", online.DelayP99Sec, offline.DelayP99Sec)
	}
}

// Preemption invariants: an online batch that would miss its deadline
// evicts the unstarted offline batch (re-enqueued, re-run exactly once,
// never dropped), while the running batch always completes.
func TestPreemptionEvictsUnstartedBatchOnly(t *testing.T) {
	reqs := []Request{
		{ID: 0, Class: workload.Short, ArrivalSec: 0},                              // starts 0–10: immovable
		{ID: 1, Class: workload.Short, ArrivalSec: 0},                              // pending 10–20: evictable
		{ID: 2, Class: workload.Short, ArrivalSec: 2, Priority: 1, DeadlineSec: 5}, // online, deadline t=7
	}
	s, err := Run(Config{
		Model: model.OPT30B, Fleet: []Pipeline{{Name: "p", Run: constEngine(10)}},
		Policy:    LeastLoaded,
		Admission: Admission{MaxBatch: 1, MaxWaitSec: 0, Preemption: true},
	}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if s.PreemptedBatches != 1 || s.PreemptedJobs != 1 {
		t.Fatalf("preemption counts %d/%d, want 1/1", s.PreemptedBatches, s.PreemptedJobs)
	}
	// No work lost: all three jobs complete, each exactly once.
	if s.Completed != 3 || s.FailedJobs != 0 || s.RejectedJobs != 0 {
		t.Fatalf("accounting %+v", s)
	}
	runs := map[int]int{}
	for _, a := range s.Assignments {
		for _, id := range a.Batch.JobIDs {
			runs[id]++
		}
	}
	for id, n := range runs {
		if n != 1 {
			t.Errorf("job %d ran %d times, want exactly once", id, n)
		}
	}
	// The online batch takes the batch boundary at t=10 (the running batch
	// is never interrupted); the evicted offline job re-runs after it.
	var online, evictee Assignment
	for _, a := range s.Assignments {
		switch a.Batch.JobIDs[0] {
		case 2:
			online = a
		case 1:
			evictee = a
		}
	}
	if online.StartSec != 10 {
		t.Errorf("online start %v, want 10 (the first batch boundary)", online.StartSec)
	}
	if evictee.StartSec != 20 {
		t.Errorf("evicted job restarted at %v, want 20 (after the online batch)", evictee.StartSec)
	}
	// t=10 is still past the t=7 deadline: the miss must be reported.
	if s.DeadlineMisses != 1 {
		t.Errorf("deadline misses %d, want 1", s.DeadlineMisses)
	}
	offline, _ := s.PriorityByClass(0)
	if offline.PreemptedJobs != 1 {
		t.Errorf("offline preempted-jobs %d, want 1", offline.PreemptedJobs)
	}
}

// A deadline expiry forces a waiting partial batch out ahead of its
// max-wait timer when preemption is on; off, the deadline is advisory and
// only the miss is reported.
func TestDeadlineForcesPartialBatch(t *testing.T) {
	reqs := []Request{{ID: 0, Class: workload.Short, ArrivalSec: 0, Priority: 1, DeadlineSec: 5}}
	cfg := Config{
		Model: model.OPT30B, Fleet: []Pipeline{{Name: "p", Run: constEngine(1)}},
		Policy:    LeastLoaded,
		Admission: Admission{MaxBatch: 8, MaxWaitSec: 100},
	}
	base, err := Run(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if base.Assignments[0].StartSec != 100 || base.DeadlineMisses != 1 {
		t.Errorf("advisory run start %v misses %d, want 100 and 1",
			base.Assignments[0].StartSec, base.DeadlineMisses)
	}
	cfg.Admission.Preemption = true
	pre, err := Run(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if pre.Assignments[0].StartSec != 5 || pre.DeadlineMisses != 0 {
		t.Errorf("preemptive run start %v misses %d, want 5 and 0",
			pre.Assignments[0].StartSec, pre.DeadlineMisses)
	}
}

// With preemption, the backlog cap stops rejecting higher-priority
// arrivals: they compete only with their own class and above, and the
// queued offline work absorbs the wait instead.
func TestPreemptionBacklogBypass(t *testing.T) {
	reqs := []Request{
		{ID: 0, Class: workload.Short, ArrivalSec: 0},
		{ID: 1, Class: workload.Short, ArrivalSec: 1},
		{ID: 2, Class: workload.Short, ArrivalSec: 2},
		{ID: 3, Class: workload.Short, ArrivalSec: 3},                               // offline at the cap: rejected
		{ID: 4, Class: workload.Short, ArrivalSec: 4, Priority: 1, DeadlineSec: 60}, // online: admitted
	}
	cfg := Config{
		Model: model.OPT30B, Fleet: []Pipeline{{Name: "slow", Run: constEngine(100)}},
		Policy:    LeastLoaded,
		Admission: Admission{MaxBatch: 1, MaxWaitSec: 0, MaxBacklog: 2},
	}
	base, err := Run(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base.RejectedJobIDs, []int{3, 4}) {
		t.Fatalf("FIFO rejects %v, want both late arrivals {3,4}", base.RejectedJobIDs)
	}
	cfg.Admission.Preemption = true
	pre, err := Run(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pre.RejectedJobIDs, []int{3}) {
		t.Fatalf("preemptive run rejects %v, want only the offline arrival {3}", pre.RejectedJobIDs)
	}
	online, ok := pre.PriorityByClass(1)
	if !ok || online.Admitted != 1 || online.Completed != 1 {
		t.Errorf("online class not admitted/completed: %+v", pre.PerPriority)
	}
}

// The scheduling extensions must not disturb a priority-less trace: with
// preemption on but nothing carrying a deadline or priority, the schedule
// is identical to the baseline event loop's.
func TestPreemptionNoopWithoutDeadlines(t *testing.T) {
	cfg := Config{
		Model: model.OPT30B, Fleet: []Pipeline{{Name: "p", Run: constEngine(3)}},
		Policy:    LeastLoaded,
		Admission: Admission{MaxBatch: 2, MaxWaitSec: 5},
	}
	reqs := shortReqs(0, 1, 2, 3, 7)
	base, err := Run(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Admission.Preemption = true
	pre, err := Run(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base.Assignments, pre.Assignments) {
		t.Error("preemption changed a deadline-free schedule")
	}
}

// Determinism on real engines with every extension on: a mixed
// online/offline trace over a heterogeneous fleet with preemption and
// continuous batching must produce byte-identical summaries run after run
// (the -race CI job exercises the prewarming pool under this loop too).
func TestRunDeterministicPreemptionContinuous(t *testing.T) {
	tb := device.DefaultTestbed()
	fleet := []Pipeline{
		{Name: "hilos-0", Run: func(r pipeline.Request) pipeline.Report { return core.Run(tb, r, core.DefaultOptions(8)) }, USDPerHour: 2.0, EngineID: "hilos8"},
		{Name: "hilos-1", Run: func(r pipeline.Request) pipeline.Report { return core.Run(tb, r, core.DefaultOptions(8)) }, USDPerHour: 2.0, EngineID: "hilos8"},
		{Name: "flex-dram", Run: func(r pipeline.Request) pipeline.Report { return baseline.FlexDRAM(tb).Run(tb, r) }, USDPerHour: 0.9},
	}
	g, err := workload.NewGenerator(13, workload.AzureLikeMix())
	if err != nil {
		t.Fatal(err)
	}
	arr, err := workload.BurstyArrivals(13, 0.6, 40)
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := g.TimedTrace(arr)
	if err != nil {
		t.Fatal(err)
	}
	// Stamp the short requests as the online class.
	for i := range reqs {
		if reqs[i].Class.Name == workload.Short.Name {
			reqs[i].Priority = 1
			reqs[i].DeadlineSec = 45
		}
	}
	for _, adm := range []Admission{
		{MaxBatch: 8, MaxWaitSec: 60, Preemption: true},
		{MaxBatch: 8, MaxWaitSec: 60, ContinuousBatching: true},
		{MaxBatch: 8, MaxWaitSec: 60, Preemption: true, ContinuousBatching: true},
	} {
		cfg := Config{Model: model.OPT30B, Fleet: fleet, Policy: CheapestFeasible, Admission: adm}
		base, err := Run(cfg, reqs)
		if err != nil {
			t.Fatal(err)
		}
		if base.Completed == 0 || base.MakespanSec <= 0 {
			t.Fatalf("degenerate summary %+v", base)
		}
		if got := base.Completed + base.FailedJobs + base.RejectedJobs; got != len(reqs) {
			t.Fatalf("accounting leak: %d of %d requests accounted", got, len(reqs))
		}
		for trial := 0; trial < 3; trial++ {
			s, err := Run(cfg, reqs)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(s, base) {
				t.Fatalf("admission %+v trial %d: summary differs from first run", adm, trial)
			}
		}
	}
}

// Per-priority stats must partition the totals exactly.
func TestPerPriorityPartition(t *testing.T) {
	reqs := []Request{
		{ID: 0, Class: workload.Short, ArrivalSec: 0},
		{ID: 1, Class: workload.Medium, ArrivalSec: 1, Priority: 1, DeadlineSec: 100},
		{ID: 2, Class: workload.Short, ArrivalSec: 2, Priority: 2, DeadlineSec: 50},
		{ID: 3, Class: workload.Long, ArrivalSec: 3},
	}
	s, err := Run(Config{
		Model: model.OPT30B, Fleet: []Pipeline{{Name: "p", Run: constEngine(2)}},
		Policy:    LeastLoaded,
		Admission: Admission{MaxBatch: 2, MaxWaitSec: 5, Preemption: true},
	}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.PerPriority) != 3 {
		t.Fatalf("priority classes %d, want 3: %+v", len(s.PerPriority), s.PerPriority)
	}
	for i := 1; i < len(s.PerPriority); i++ {
		if s.PerPriority[i-1].Priority <= s.PerPriority[i].Priority {
			t.Errorf("PerPriority not sorted most-urgent-first: %+v", s.PerPriority)
		}
	}
	var requests, admitted, completed int
	for _, ps := range s.PerPriority {
		requests += ps.Requests
		admitted += ps.Admitted
		completed += ps.Completed
		if ps.DelayP50Sec > ps.DelayP99Sec {
			t.Errorf("priority %d percentiles not monotone: %+v", ps.Priority, ps)
		}
	}
	if requests != s.Requests || admitted != s.Admitted || completed != s.Completed {
		t.Errorf("per-priority partition %d/%d/%d, want %d/%d/%d",
			requests, admitted, completed, s.Requests, s.Admitted, s.Completed)
	}
}

// Invalid scheduling metadata is rejected up front.
func TestRunRejectsBadSchedulingMetadata(t *testing.T) {
	cfg := Config{
		Model: model.OPT30B, Fleet: []Pipeline{{Name: "p", Run: constEngine(1)}},
		Policy: LeastLoaded, Admission: Admission{MaxBatch: 1},
	}
	if _, err := Run(cfg, []Request{{ID: 0, Class: workload.Short, Priority: -1}}); err == nil {
		t.Error("negative priority accepted")
	}
	if _, err := Run(cfg, []Request{{ID: 0, Class: workload.Short, DeadlineSec: -1}}); err == nil {
		t.Error("negative deadline accepted")
	}
	if _, err := Run(cfg, []Request{{ID: 0, Class: workload.Short, DeadlineSec: math.Inf(1)}}); err == nil {
		t.Error("infinite deadline accepted")
	}
}
