package energy

import (
	"testing"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/model"
	"repro/internal/pipeline"
)

func TestPerTokenComponents(t *testing.T) {
	tb := device.DefaultTestbed()
	rep := pipeline.Report{
		Batch: 2, StepSec: 10,
		ResourceBusy: map[string]float64{pipeline.ResCPU: 4, pipeline.ResGPU: 1},
	}
	b, err := PerToken(tb, rep, Config{Storage: PlainSSDs, Devices: 4})
	if err != nil {
		t.Fatal(err)
	}
	wantCPU := (4*tb.CPU.BusyPowerW + 6*tb.CPU.IdlePowerW) / 2
	if b.CPU != wantCPU {
		t.Errorf("CPU energy = %v, want %v", b.CPU, wantCPU)
	}
	wantSSD := 4 * tb.PlainSSD.PowerW * 10 / 2
	if b.SSD != wantSSD {
		t.Errorf("SSD energy = %v, want %v", b.SSD, wantSSD)
	}
	if b.Total() <= 0 {
		t.Error("total energy not positive")
	}
}

func TestPerTokenErrors(t *testing.T) {
	tb := device.DefaultTestbed()
	if _, err := PerToken(tb, pipeline.Report{OOM: true}, Config{}); err == nil {
		t.Error("OOM report accepted")
	}
	rep := pipeline.Report{Batch: 1, StepSec: 1, ResourceBusy: map[string]float64{}}
	if _, err := PerToken(tb, rep, Config{Storage: StorageKind(9)}); err == nil {
		t.Error("unknown storage kind accepted")
	}
}

// Fig. 17(a): FLEX(SSD) has the worst energy per token (low throughput
// keeps everything powered long); HILOS is far more efficient despite the
// SmartSSDs drawing more power than plain SSDs (§6.6: up to 85% reduction).
func TestHILOSMoreEfficientThanFlexSSD(t *testing.T) {
	tb := device.DefaultTestbed()
	req := pipeline.Request{Model: model.OPT66B, Batch: 16, Context: 65536, OutputLen: 64}

	flex := baseline.FlexSSD(tb).Run(tb, req)
	eFlex, err := PerToken(tb, flex, Config{Storage: PlainSSDs, Devices: 4})
	if err != nil {
		t.Fatal(err)
	}
	hilos := core.Run(tb, req, core.DefaultOptions(16))
	eHILOS, err := PerToken(tb, hilos, Config{Storage: SmartSSDs, Devices: 16, AccelPowerW: tb.SmartSSD.AccelPowerW})
	if err != nil {
		t.Fatal(err)
	}
	saving := 1 - eHILOS.Total()/eFlex.Total()
	if saving < 0.5 {
		t.Errorf("HILOS energy saving = %.0f%%, paper reports up to 85%%", saving*100)
	}
	if saving > 0.95 {
		t.Errorf("HILOS energy saving = %.0f%% implausibly high", saving*100)
	}
}

func TestClamp(t *testing.T) {
	if clamp(-1, 0, 10) != 0 || clamp(11, 0, 10) != 10 || clamp(5, 0, 10) != 5 {
		t.Error("clamp broken")
	}
}

func TestGPUCountScaling(t *testing.T) {
	tb := device.DefaultTestbed()
	rep := pipeline.Report{Batch: 1, StepSec: 1,
		ResourceBusy: map[string]float64{pipeline.ResGPU: 1}}
	one, _ := PerToken(tb, rep, Config{Storage: NoSSD, GPUCount: 1})
	eight, _ := PerToken(tb, rep, Config{Storage: NoSSD, GPUCount: 8})
	if eight.GPU != 8*one.GPU {
		t.Errorf("GPU energy did not scale with count: %v vs %v", eight.GPU, one.GPU)
	}
}
