// Package energy implements the Fig. 17(a) energy model: per-component
// energy (CPU, DRAM, GPU, SSD) integrated over the simulated decoding step,
// using busy/idle power states for the compute devices and constant power
// for memory and storage — mirroring the paper's NVML/RAPL/expansion-board
// measurement methodology (§6.6).
package energy

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/pipeline"
)

// Breakdown is the per-token energy split in joules.
type Breakdown struct {
	CPU  float64
	DRAM float64
	GPU  float64
	SSD  float64
}

// Total returns the summed energy per token.
func (b Breakdown) Total() float64 { return b.CPU + b.DRAM + b.GPU + b.SSD }

// StorageKind distinguishes the storage power model of a configuration.
type StorageKind int

// Storage kinds.
const (
	PlainSSDs StorageKind = iota // PM9A3 datasheet power (§6.6)
	SmartSSDs                    // SSD power + accelerator on-chip power
	NoSSD                        // vLLM-style all-GPU systems
)

// Config parameterizes the energy integration for one system.
type Config struct {
	Storage     StorageKind
	Devices     int
	AccelPowerW float64 // per-device accelerator power (Table 3), SmartSSDs only
	GPUCount    int     // defaults to 1
}

// PerToken integrates component power over one decoding step of the report
// and divides by the effective batch, yielding joules per generated token.
func PerToken(tb device.Testbed, rep pipeline.Report, cfg Config) (Breakdown, error) {
	if rep.OOM || rep.StepSec <= 0 || rep.Batch <= 0 {
		return Breakdown{}, fmt.Errorf("energy: report has no successful decode step")
	}
	if cfg.GPUCount <= 0 {
		cfg.GPUCount = 1
	}
	step := rep.StepSec

	cpuBusy := clamp(rep.ResourceBusy[pipeline.ResCPU], 0, step)
	gpuBusy := clamp(rep.ResourceBusy[pipeline.ResGPU], 0, step)

	var b Breakdown
	b.CPU = cpuBusy*tb.CPU.BusyPowerW + (step-cpuBusy)*tb.CPU.IdlePowerW
	b.GPU = float64(cfg.GPUCount) * (gpuBusy*tb.GPU.BusyPowerW + (step-gpuBusy)*tb.GPU.IdlePowerW)
	b.DRAM = tb.DRAM.PowerW * step

	switch cfg.Storage {
	case PlainSSDs:
		b.SSD = float64(cfg.Devices) * tb.PlainSSD.PowerW * step
	case SmartSSDs:
		b.SSD = float64(cfg.Devices) * (tb.SmartSSD.SSD.PowerW + cfg.AccelPowerW) * step
	case NoSSD:
		b.SSD = 0
	default:
		return Breakdown{}, fmt.Errorf("energy: unknown storage kind %d", cfg.Storage)
	}

	inv := 1 / float64(rep.Batch)
	b.CPU *= inv
	b.DRAM *= inv
	b.GPU *= inv
	b.SSD *= inv
	return b, nil
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
