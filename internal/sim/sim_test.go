package sim

import (
	"math"
	"math/rand"
	"testing"
)

func TestSingleTask(t *testing.T) {
	e := NewEngine()
	r := e.Resource("link", 100) // 100 B/s
	e.Task("xfer", r, 50)
	res := e.Run()
	if res.Makespan != 0.5 {
		t.Errorf("makespan = %v, want 0.5", res.Makespan)
	}
	if res.ByLabel["xfer"] != 0.5 {
		t.Errorf("label time = %v, want 0.5", res.ByLabel["xfer"])
	}
	if u := res.Utilization("link"); u != 1 {
		t.Errorf("utilization = %v, want 1", u)
	}
}

func TestSerialContention(t *testing.T) {
	e := NewEngine()
	r := e.Resource("ssd", 10)
	e.Task("a", r, 10)
	e.Task("b", r, 10)
	res := e.Run()
	if res.Makespan != 2 {
		t.Errorf("two contending tasks: makespan = %v, want 2", res.Makespan)
	}
}

func TestParallelResources(t *testing.T) {
	e := NewEngine()
	r1 := e.Resource("ssd0", 10)
	r2 := e.Resource("ssd1", 10)
	e.Task("a", r1, 10)
	e.Task("b", r2, 10)
	res := e.Run()
	if res.Makespan != 1 {
		t.Errorf("independent resources: makespan = %v, want 1", res.Makespan)
	}
}

func TestDependencyChain(t *testing.T) {
	e := NewEngine()
	r := e.Resource("gpu", 1)
	a := e.Task("a", r, 1)
	b := e.Task("b", r, 2, a)
	c := e.Delay("c", 0.5, b)
	res := e.Run()
	if res.Makespan != 3.5 {
		t.Errorf("chain makespan = %v, want 3.5", res.Makespan)
	}
	if c.Start() != 3 || c.Finish() != 3.5 {
		t.Errorf("delay scheduled at [%v,%v], want [3,3.5]", c.Start(), c.Finish())
	}
}

func TestPipelineOverlap(t *testing.T) {
	// Two-stage pipeline over 3 items: stage1 on r1 (1s each), stage2 on r2
	// (1s each). Perfect pipelining gives makespan 4, not 6.
	e := NewEngine()
	r1 := e.Resource("s1", 1)
	r2 := e.Resource("s2", 1)
	var prev *Task
	for i := 0; i < 3; i++ {
		a := e.Task("stage1", r1, 1)
		prev = e.Task("stage2", r2, 1, a)
	}
	res := e.Run()
	if res.Makespan != 4 {
		t.Errorf("pipeline makespan = %v, want 4", res.Makespan)
	}
	_ = prev
}

func TestBarrierJoins(t *testing.T) {
	e := NewEngine()
	r1 := e.Resource("a", 1)
	r2 := e.Resource("b", 1)
	t1 := e.Task("x", r1, 1)
	t2 := e.Task("y", r2, 3)
	bar := e.Barrier("join", t1, t2)
	e.Delay("after", 1, bar)
	res := e.Run()
	if res.Makespan != 4 {
		t.Errorf("barrier makespan = %v, want 4", res.Makespan)
	}
}

func TestNilDepsIgnored(t *testing.T) {
	e := NewEngine()
	r := e.Resource("r", 1)
	e.Task("a", r, 1, nil, nil)
	res := e.Run()
	if res.Makespan != 1 {
		t.Errorf("makespan = %v, want 1", res.Makespan)
	}
}

func TestMakespanAtLeastCriticalPath(t *testing.T) {
	// Random DAGs: resource-constrained makespan >= dependency critical path,
	// and >= max per-resource total demand / rate.
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		nres := 2 + rng.Intn(3)
		rs := make([]*Resource, nres)
		for i := range rs {
			rs[i] = e.Resource("r", 1+rng.Float64()*9)
		}
		var tasks []*Task
		perRes := make([]float64, nres)
		for i := 0; i < 40; i++ {
			var deps []*Task
			for _, prev := range tasks {
				if rng.Float64() < 0.05 {
					deps = append(deps, prev)
				}
			}
			ri := rng.Intn(nres)
			demand := rng.Float64() * 10
			perRes[ri] += demand / rs[ri].Rate
			tasks = append(tasks, e.Task("t", rs[ri], demand, deps...))
		}
		cp := e.CriticalPath()
		res := e.Run()
		if res.Makespan < cp-1e-9 {
			t.Fatalf("seed %d: makespan %v < critical path %v", seed, res.Makespan, cp)
		}
		for i, load := range perRes {
			if res.Makespan < load-1e-9 {
				t.Fatalf("seed %d: makespan %v < resource %d load %v", seed, res.Makespan, i, load)
			}
			if rs[i].Busy() > res.Makespan+1e-9 {
				t.Fatalf("seed %d: resource busy %v exceeds makespan %v", seed, rs[i].Busy(), res.Makespan)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	build := func() Result {
		e := NewEngine()
		r1 := e.Resource("a", 2)
		r2 := e.Resource("b", 3)
		var last *Task
		for i := 0; i < 20; i++ {
			t1 := e.Task("l1", r1, float64(i%5)+1, last)
			last = e.Task("l2", r2, float64(i%3)+1, t1)
		}
		return e.Run()
	}
	a, b := build(), build()
	if a.Makespan != b.Makespan {
		t.Errorf("nondeterministic makespan: %v vs %v", a.Makespan, b.Makespan)
	}
	for k, v := range a.ByLabel {
		if b.ByLabel[k] != v {
			t.Errorf("nondeterministic label %q: %v vs %v", k, v, b.ByLabel[k])
		}
	}
}

func TestLabelShare(t *testing.T) {
	e := NewEngine()
	r := e.Resource("r", 1)
	e.Task("a", r, 3)
	e.Task("b", r, 1)
	res := e.Run()
	if s := res.LabelShare("a"); math.Abs(s-0.75) > 1e-12 {
		t.Errorf("share(a) = %v, want 0.75", s)
	}
}

func TestRunTwicePanics(t *testing.T) {
	e := NewEngine()
	e.Run()
	defer func() {
		if recover() == nil {
			t.Error("second Run did not panic")
		}
	}()
	e.Run()
}

func TestZeroRatePanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("zero-rate resource not rejected")
		}
	}()
	e.Resource("bad", 0)
}
