package sim

import (
	"sync/atomic"

	"repro/internal/telemetry"
)

// Telemetry is the sim engine's instrumentation sink. When attached, every
// scheduled task increments Tasks and (if Stream is set) publishes a "task"
// event stamped with the task's simulated finish time, and each resource's
// final busy time accumulates into a per-resource gauge and a
// "resource_busy" event at end of run. Emission order is the deterministic
// schedule order, timestamps are simulated seconds, and nothing feeds back
// into scheduling — Results are bit-identical with telemetry on or off.
type Telemetry struct {
	// Subsystem labels the events of this sink (e.g. "sim" or an engine
	// name) so one stream can multiplex several simulations.
	Subsystem string
	// Tasks counts scheduled tasks. Nil disables the counter.
	Tasks *telemetry.Counter
	// BusySec accumulates resource busy seconds across runs. Nil disables.
	BusySec *telemetry.Gauge
	// Stream receives per-task and per-resource events. Nil disables.
	Stream *telemetry.Stream
}

// defaultTel is the process-wide sink engines fall back to when none was
// attached with SetTelemetry. Construction sites (core, baselines,
// repcache) are spread across packages, so a process-wide default is how
// cmd-level tooling turns sim telemetry on without threading a handle
// through every engine constructor.
var defaultTel atomic.Pointer[Telemetry]

// EnableTelemetry installs the process-wide default sink built from reg
// and/or stream (either may be nil; both nil uninstalls). It applies to
// engines whose Run starts after the call.
func EnableTelemetry(reg *telemetry.Registry, stream *telemetry.Stream) {
	if reg == nil && stream == nil {
		defaultTel.Store(nil)
		return
	}
	defaultTel.Store(&Telemetry{
		Subsystem: "sim",
		Tasks:     reg.Counter("sim.tasks_scheduled"),
		BusySec:   reg.Gauge("sim.resource_busy_sec"),
		Stream:    stream,
	})
}

// SetTelemetry attaches an explicit sink to this engine, overriding the
// process-wide default (nil reverts to the default).
func (e *Engine) SetTelemetry(t *Telemetry) { e.tel = t }

// telemetrySink resolves the effective sink once per Run.
func (e *Engine) telemetrySink() *Telemetry {
	if e.tel != nil {
		return e.tel
	}
	return defaultTel.Load()
}

// observeTask records one scheduled task.
func (tel *Telemetry) observeTask(t *Task) {
	tel.Tasks.Inc()
	if tel.Stream == nil {
		return
	}
	resName := ""
	if t.Res != nil {
		resName = t.Res.Name
	}
	tel.Stream.Publish(telemetry.Event{
		TSec: float64(t.finish), Kind: "task", Subsystem: tel.Subsystem,
		Resource: resName, Value: float64(t.finish - t.start), Detail: t.Label,
	})
}

// observeRun records the per-resource busy totals of a finished run, in
// resource registration order.
func (tel *Telemetry) observeRun(e *Engine, makespan Time) {
	for _, r := range e.resources {
		tel.BusySec.Add(float64(r.busy))
		if tel.Stream != nil {
			tel.Stream.Publish(telemetry.Event{
				TSec: float64(makespan), Kind: "resource_busy", Subsystem: tel.Subsystem,
				Resource: r.Name, Value: float64(r.busy),
			})
		}
	}
}
