package sim

// This file implements Run, the event-driven replacement for the O(n²)
// rescanning list scheduler retained as RunReference. The policy is
// identical — among all ready tasks, run the one with the earliest possible
// start time, ties broken by creation id — but the ready set is maintained
// incrementally:
//
//   - dependency counting makes a task ready the moment its last dependency
//     finishes (its ready time is the running max of dependency finishes);
//   - each resource keeps two min-heaps of its ready tasks: "waiting"
//     (ready time still ahead of the resource's free time, ordered by
//     (ready, id)) and "runnable" (startable the instant the resource
//     frees, ordered by id alone — they all share start == free);
//   - a global indexed min-heap of resources, ordered by each resource's
//     best candidate (start, id), yields the next task in O(log R).
//
// Whenever a resource's free time advances, its waiting heap drains into
// runnable. All start/finish arithmetic matches RunReference operation for
// operation, so the two schedulers produce bit-identical Results.

// taskHeap is a binary min-heap of tasks under an externally chosen order.
type taskHeap []*Task

// lessReady orders by (ready, id): the waiting heap and the pure-latency
// pseudo-resource, whose tasks start exactly at their ready time.
func lessReady(a, b *Task) bool {
	return a.ready < b.ready || (a.ready == b.ready && a.id < b.id)
}

// lessID orders by id alone: the runnable heap, where every task would
// start at the resource's shared free time.
func lessID(a, b *Task) bool { return a.id < b.id }

func (h *taskHeap) push(t *Task, less func(a, b *Task) bool) {
	*h = append(*h, t)
	s := *h
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !less(s[i], s[p]) {
			break
		}
		s[i], s[p] = s[p], s[i]
		i = p
	}
}

func (h *taskHeap) pop(less func(a, b *Task) bool) *Task {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = nil
	s = s[:n]
	*h = s
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && less(s[l], s[m]) {
			m = l
		}
		if r < n && less(s[r], s[m]) {
			m = r
		}
		if m == i {
			break
		}
		s[i], s[m] = s[m], s[i]
		i = m
	}
	return top
}

// candidate is a resource's best (start, id) offer, or ok=false when it has
// no ready tasks.
type candidate struct {
	start Time
	id    int
}

func (c candidate) less(o candidate) bool {
	return c.start < o.start || (c.start == o.start && c.id < o.id)
}

// runQueues resets the scheduling state of every resource this run can
// touch and returns the pseudo-resource standing in for "no resource":
// pure-latency tasks contend with nothing, so their start is exactly their
// ready time and free stays 0. Using a Resource value lets the candidate
// heap treat both kinds uniformly.
func (e *Engine) runQueues() *Resource {
	nilRes := &Resource{pos: -1}
	seen := map[*Resource]bool{nilRes: true}
	add := func(r *Resource) {
		if r != nil && !seen[r] {
			seen[r] = true
			r.waiting, r.runnable, r.pos = nil, nil, -1
		}
	}
	for _, r := range e.resources {
		add(r)
	}
	for _, t := range e.tasks {
		add(t.Res) // tasks may target resources owned by another engine
	}
	return nilRes
}

// best returns the resource's current candidate. The runnable heap wins
// when non-empty: all its tasks would start at free, which can never exceed
// the waiting heap's earliest ready time (waiting holds only ready > free).
func best(r *Resource) (candidate, bool) {
	if len(r.runnable) > 0 {
		return candidate{start: r.free, id: r.runnable[0].id}, true
	}
	if len(r.waiting) > 0 {
		return candidate{start: r.waiting[0].ready, id: r.waiting[0].id}, true
	}
	return candidate{}, false
}

// resHeap is an indexed min-heap of resources keyed by their candidate;
// each resource tracks its slot in pos so candidates can be re-keyed in
// O(log R) when heaps underneath them change.
type resHeap struct {
	rs    []*Resource
	cands []candidate
}

func (h *resHeap) swap(i, j int) {
	h.rs[i], h.rs[j] = h.rs[j], h.rs[i]
	h.cands[i], h.cands[j] = h.cands[j], h.cands[i]
	h.rs[i].pos, h.rs[j].pos = i, j
}

func (h *resHeap) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !h.cands[i].less(h.cands[p]) {
			break
		}
		h.swap(i, p)
		i = p
	}
}

func (h *resHeap) down(i int) {
	n := len(h.rs)
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && h.cands[l].less(h.cands[m]) {
			m = l
		}
		if r < n && h.cands[r].less(h.cands[m]) {
			m = r
		}
		if m == i {
			break
		}
		h.swap(i, m)
		i = m
	}
}

// fix re-evaluates r's candidate and inserts, re-keys, or removes it.
func (h *resHeap) fix(r *Resource) {
	c, ok := best(r)
	switch {
	case ok && r.pos >= 0: // re-key in place
		h.cands[r.pos] = c
		h.up(r.pos)
		h.down(r.pos)
	case ok: // insert
		r.pos = len(h.rs)
		h.rs = append(h.rs, r)
		h.cands = append(h.cands, c)
		h.up(r.pos)
	case r.pos >= 0: // remove
		i := r.pos
		n := len(h.rs) - 1
		h.swap(i, n)
		h.rs[n] = nil
		h.rs, h.cands = h.rs[:n], h.cands[:n]
		r.pos = -1
		if i < n {
			h.up(i)
			h.down(i)
		}
	}
}

// Run schedules every task and returns the simulation result. Run may be
// called once per Engine; it panics on dependency cycles. It implements the
// same earliest-start policy as RunReference (bit-identical Results) in
// O((n+m)·log n) for n tasks and m dependency edges.
func (e *Engine) Run() Result {
	if e.ran {
		panic("sim: Run called twice")
	}
	e.ran = true
	tel := e.telemetrySink()

	nilRes := e.runQueues()
	var rh resHeap

	// Dependency counting. A dependency that already finished under another
	// engine's Run contributes its finish time to ready; an unfinished
	// foreign dependency can never fire, which the cycle check catches.
	enqueue := func(t *Task) {
		r := t.Res
		if r == nil {
			r = nilRes
		}
		if t.Res != nil && t.ready <= r.free {
			r.runnable.push(t, lessID)
		} else {
			r.waiting.push(t, lessReady)
		}
		rh.fix(r)
	}
	for _, t := range e.tasks {
		t.succ, t.waiting, t.ready = nil, 0, 0
	}
	for _, t := range e.tasks {
		for _, d := range t.deps {
			if d.done {
				if d.finish > t.ready {
					t.ready = d.finish
				}
			} else {
				d.succ = append(d.succ, t)
				t.waiting++
			}
		}
	}
	for _, t := range e.tasks {
		if t.waiting == 0 {
			enqueue(t)
		}
	}

	res := Result{
		ByLabel:      make(map[string]Time),
		ResourceBusy: make(map[string]Time),
	}
	for scheduled := 0; scheduled < len(e.tasks); scheduled++ {
		if len(rh.rs) == 0 {
			panic("sim: dependency cycle or unschedulable task")
		}
		r := rh.rs[0]
		start := rh.cands[0].start
		var t *Task
		if len(r.runnable) > 0 {
			t = r.runnable.pop(lessID)
		} else {
			t = r.waiting.pop(lessReady)
		}

		dur := t.Fixed
		if t.Res != nil {
			dur += t.Demand / t.Res.Rate
		}
		t.start = start
		t.finish = start + dur
		t.done = true
		if t.Res != nil {
			t.Res.free = t.finish
			t.Res.busy += dur
			// The free advance may promote waiting tasks to runnable.
			for len(r.waiting) > 0 && r.waiting[0].ready <= r.free {
				r.runnable.push(r.waiting.pop(lessReady), lessID)
			}
		}
		rh.fix(r)

		res.ByLabel[t.Label] += dur
		if t.finish > res.Makespan {
			res.Makespan = t.finish
		}
		if !e.noRecords {
			resName := ""
			if t.Res != nil {
				resName = t.Res.Name
			}
			res.Tasks = append(res.Tasks, TaskRecord{
				Label: t.Label, Resource: resName, Start: t.start, Finish: t.finish,
			})
		}
		if tel != nil {
			tel.observeTask(t)
		}

		for _, s := range t.succ {
			if t.finish > s.ready {
				s.ready = t.finish
			}
			if s.waiting--; s.waiting == 0 {
				enqueue(s)
			}
		}
		t.succ = nil
	}
	for _, r := range e.resources {
		res.ResourceBusy[r.Name] = r.busy
	}
	if tel != nil {
		tel.observeRun(e, res.Makespan)
	}
	return res
}
