// Package sim provides a deterministic resource-constrained task scheduler —
// the discrete-event timing substrate for all HILOS experiments.
//
// A simulated operation is a Task with dependencies, an optional target
// Resource and a demand expressed in that resource's units (bytes for links
// and storage, FLOPs for compute). Resources serialize their tasks in ready
// order, which models contention exactly in the bandwidth-saturated regime
// that dominates offloading-based inference. Dependency edges express
// pipelining and overlap (e.g. next-layer weight prefetch overlapping
// current-layer compute).
//
// The scheduler is a global earliest-start list scheduler: at every step the
// ready task that can start earliest runs next on its resource. Ties break on
// creation order, making every simulation fully deterministic.
//
// Run implements that policy as a dependency-counting event loop over
// indexed min-heaps (O((n+m)·log n) for n tasks and m edges); RunReference
// retains the original O(n²) rescanning list scheduler. Both produce
// bit-identical Results — a property the equivalence tests fuzz on random
// DAGs — so Run is a pure performance upgrade.
package sim

import (
	"fmt"
	"sort"
)

// Time is simulated time in seconds.
type Time = float64

// Resource models a serially shared hardware resource: a PCIe link, an SSD
// channel, a GPU, a CPU, an accelerator. Rate is in units/second.
type Resource struct {
	Name string
	Rate float64 // demand units per second; must be > 0

	free Time // next instant the resource is available
	busy Time // accumulated busy time

	// Event-loop scheduling state (see heap.go). waiting holds ready tasks
	// whose dependency-ready time is still ahead of free, ordered by
	// (ready, id); runnable holds tasks that could start the moment the
	// resource frees up, ordered by id. pos is this resource's slot in the
	// global candidate heap (-1 when absent).
	waiting  taskHeap
	runnable taskHeap
	pos      int
}

// Busy returns the total time this resource spent executing tasks.
func (r *Resource) Busy() Time { return r.busy }

// Task is a unit of simulated work.
type Task struct {
	Label  string    // breakdown category, e.g. "LoadKVCache"
	Res    *Resource // nil for pure-latency tasks (unlimited parallelism)
	Demand float64   // units of Res consumed
	Fixed  Time      // fixed latency added to the service time

	id            int
	deps          []*Task
	start, finish Time
	done          bool

	// Event-loop scheduling state (see heap.go).
	succ    []*Task // dependents discovered during Run
	waiting int     // unfinished dependencies
	ready   Time    // max finish over completed dependencies
}

// Start returns the scheduled start time. Valid after Engine.Run.
func (t *Task) Start() Time { return t.start }

// Finish returns the scheduled completion time. Valid after Engine.Run.
func (t *Task) Finish() Time { return t.finish }

// Duration returns the service time of the task.
func (t *Task) Duration() Time { return t.finish - t.start }

// Engine accumulates resources and tasks and schedules them.
type Engine struct {
	resources []*Resource
	tasks     []*Task
	ran       bool
	noRecords bool
	tel       *Telemetry

	// slab is preallocated task storage (see Grow). Tasks hold pointers into
	// it, so a slab is never resized — Grow replaces it wholesale and Task
	// falls back to individual allocation once it is consumed.
	slab     []Task
	slabNext int
}

// NewEngine returns an empty simulation.
func NewEngine() *Engine { return &Engine{} }

// RecordTimeline controls whether Run appends a TaskRecord per scheduled
// task to Result.Tasks (the default). Large simulations whose timelines
// nobody reads can opt out to skip the per-task allocation; Makespan,
// ByLabel and ResourceBusy are unaffected.
func (e *Engine) RecordTimeline(on bool) { e.noRecords = !on }

// Resource registers a resource with the given service rate (units/second).
func (e *Engine) Resource(name string, rate float64) *Resource {
	if rate <= 0 {
		panic(fmt.Sprintf("sim: resource %q rate must be positive, got %g", name, rate))
	}
	r := &Resource{Name: name, Rate: rate}
	e.resources = append(e.resources, r)
	return r
}

// Grow preallocates storage for the next n Task/Delay/Barrier calls in one
// slab, cutting task construction to a slab index bump. Million-task DAGs
// (the 1M-token decode timelines the scheduler benchmarks exercise) spend
// more time in the allocator than the scheduler without it. Growing again
// replaces the slab; tasks already handed out keep pointing into the old
// one. Scheduling results are identical with or without Grow.
func (e *Engine) Grow(n int) {
	if n <= 0 {
		return
	}
	e.slab = make([]Task, n)
	e.slabNext = 0
}

// Task adds a task that consumes demand units of r after all deps finish.
// Nil deps are ignored, which simplifies conditional pipeline construction.
func (e *Engine) Task(label string, r *Resource, demand float64, deps ...*Task) *Task {
	if demand < 0 {
		panic(fmt.Sprintf("sim: negative demand %g for %q", demand, label))
	}
	var t *Task
	if e.slabNext < len(e.slab) {
		t = &e.slab[e.slabNext]
		e.slabNext++
		*t = Task{Label: label, Res: r, Demand: demand, id: len(e.tasks)}
	} else {
		t = &Task{Label: label, Res: r, Demand: demand, id: len(e.tasks)}
	}
	for _, d := range deps {
		if d != nil {
			t.deps = append(t.deps, d)
		}
	}
	e.tasks = append(e.tasks, t)
	return t
}

// Delay adds a pure-latency task (no resource contention) of duration d.
func (e *Engine) Delay(label string, d Time, deps ...*Task) *Task {
	t := e.Task(label, nil, 0, deps...)
	t.Fixed = d
	return t
}

// Barrier adds a zero-duration task depending on all deps; use it to join
// fan-out stages.
func (e *Engine) Barrier(label string, deps ...*Task) *Task {
	return e.Task(label, nil, 0, deps...)
}

// TaskRecord is one scheduled task, for timeline export and debugging.
type TaskRecord struct {
	Label    string
	Resource string // "" for pure-latency tasks
	Start    Time
	Finish   Time
}

// Result summarizes a completed simulation.
type Result struct {
	Makespan Time
	// ByLabel is the total busy time attributed to each task label,
	// summed over all resources (pure-latency tasks included).
	ByLabel map[string]Time
	// ResourceBusy maps resource name to accumulated busy time.
	ResourceBusy map[string]Time
	// Tasks records every scheduled task in scheduling order.
	Tasks []TaskRecord
}

// Utilization returns busy/makespan for the named resource, in [0,1].
func (r Result) Utilization(name string) float64 {
	if r.Makespan <= 0 {
		return 0
	}
	return r.ResourceBusy[name] / r.Makespan
}

// LabelShare returns label busy time as a fraction of the sum over all
// labels, matching the stacked-percentage breakdowns in the paper's figures.
// The total is summed over sorted keys: float addition is not associative,
// so summing in map iteration order would make the last bits of the share
// vary between runs (caught by hilos-lint's simdeterminism rule).
func (r Result) LabelShare(label string) float64 {
	labels := make([]string, 0, len(r.ByLabel))
	for l := range r.ByLabel {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	var total Time
	for _, l := range labels {
		total += r.ByLabel[l]
	}
	if total <= 0 {
		return 0
	}
	return r.ByLabel[label] / total
}

// RunReference schedules every task with the original O(n²) list scheduler:
// every step rescans all pending tasks for the one that can start earliest.
// It is retained verbatim as the behavioral reference for Run — the
// equivalence tests assert both produce identical Results on random DAGs —
// and as the baseline the scheduler benchmarks measure speedups against.
// Like Run, it may be called once per Engine and panics on cycles.
//
//lint:allow heapsafe predates the heaps and never stores tasks in one; Res.free is its own bookkeeping
func (e *Engine) RunReference() Result {
	if e.ran {
		panic("sim: Run called twice")
	}
	e.ran = true
	tel := e.telemetrySink()

	pending := make([]*Task, len(e.tasks))
	copy(pending, e.tasks)
	// Stable order by id so tie-breaks are deterministic.
	sort.Slice(pending, func(i, j int) bool { return pending[i].id < pending[j].id })

	res := Result{
		ByLabel:      make(map[string]Time),
		ResourceBusy: make(map[string]Time),
	}
	remaining := len(pending)
	for remaining > 0 {
		best := -1
		var bestStart Time
		for i, t := range pending {
			if t == nil || !depsDone(t) {
				continue
			}
			s := readyTime(t)
			if t.Res != nil && t.Res.free > s {
				s = t.Res.free
			}
			if best == -1 || s < bestStart {
				best, bestStart = i, s
			}
		}
		if best == -1 {
			panic("sim: dependency cycle or unschedulable task")
		}
		t := pending[best]
		pending[best] = nil
		remaining--

		dur := t.Fixed
		if t.Res != nil {
			dur += t.Demand / t.Res.Rate
		}
		t.start = bestStart
		t.finish = bestStart + dur
		t.done = true
		if t.Res != nil {
			t.Res.free = t.finish
			t.Res.busy += dur
		}
		res.ByLabel[t.Label] += dur
		if t.finish > res.Makespan {
			res.Makespan = t.finish
		}
		if !e.noRecords {
			resName := ""
			if t.Res != nil {
				resName = t.Res.Name
			}
			res.Tasks = append(res.Tasks, TaskRecord{
				Label: t.Label, Resource: resName, Start: t.start, Finish: t.finish,
			})
		}
		if tel != nil {
			tel.observeTask(t)
		}
	}
	for _, r := range e.resources {
		res.ResourceBusy[r.Name] = r.busy
	}
	if tel != nil {
		tel.observeRun(e, res.Makespan)
	}
	return res
}

func depsDone(t *Task) bool {
	for _, d := range t.deps {
		if !d.done {
			return false
		}
	}
	return true
}

func readyTime(t *Task) Time {
	var r Time
	for _, d := range t.deps {
		if d.finish > r {
			r = d.finish
		}
	}
	return r
}

// CriticalPath returns the longest dependency-only path length (ignoring
// resource contention); Run's makespan can never be shorter. Useful as a
// test invariant.
func (e *Engine) CriticalPath() Time {
	memo := make(map[*Task]Time, len(e.tasks))
	var longest func(t *Task) Time
	longest = func(t *Task) Time {
		if v, ok := memo[t]; ok {
			return v
		}
		var in Time
		for _, d := range t.deps {
			if l := longest(d); l > in {
				in = l
			}
		}
		dur := t.Fixed
		if t.Res != nil {
			dur += t.Demand / t.Res.Rate
		}
		v := in + dur
		memo[t] = v
		return v
	}
	var cp Time
	for _, t := range e.tasks {
		if l := longest(t); l > cp {
			cp = l
		}
	}
	return cp
}
