package sim

import (
	"math/rand"
	"testing"
)

// buildRandomDAG constructs one random simulation on e, exercising every
// task flavor the engines use: resource tasks with fixed latency adders,
// zero-duration barriers, nil-resource delays, nil deps, and fan-in/fan-out
// edges. The construction is a pure function of rng's stream, so two
// engines built from equal seeds hold identical graphs.
func buildRandomDAG(e *Engine, rng *rand.Rand, nTasks int) []*Task {
	nres := 1 + rng.Intn(4)
	rs := make([]*Resource, nres)
	for i := range rs {
		rs[i] = e.Resource("r", 0.5+rng.Float64()*9.5)
	}
	var tasks []*Task
	for i := 0; i < nTasks; i++ {
		var deps []*Task
		// Sparse random back-edges, biased toward recent tasks so deep
		// chains and wide fan-outs both occur.
		for _, prev := range tasks {
			if rng.Float64() < 0.08 {
				deps = append(deps, prev)
			}
		}
		if len(tasks) > 0 && rng.Float64() < 0.5 {
			deps = append(deps, tasks[rng.Intn(len(tasks))])
		}
		if rng.Float64() < 0.1 {
			deps = append(deps, nil) // nil deps must be ignored
		}
		switch rng.Intn(10) {
		case 0: // zero-duration barrier joining the deps
			tasks = append(tasks, e.Barrier("barrier", deps...))
		case 1: // pure-latency delay (nil resource)
			tasks = append(tasks, e.Delay("delay", rng.Float64()*3, deps...))
		case 2: // zero-demand resource task
			tasks = append(tasks, e.Task("zero", rs[rng.Intn(nres)], 0, deps...))
		default:
			t := e.Task("work", rs[rng.Intn(nres)], rng.Float64()*10, deps...)
			if rng.Intn(3) == 0 {
				t.Fixed = rng.Float64() * 0.5
			}
			tasks = append(tasks, t)
		}
	}
	return tasks
}

// checkEquivalent runs the heap scheduler and the retained reference
// scheduler on identically built engines and requires bit-identical
// results: Makespan, ByLabel, ResourceBusy, the scheduling-order timeline,
// and every task's start/finish.
func checkEquivalent(t *testing.T, seed int64, nTasks int) {
	t.Helper()
	eNew, eRef := NewEngine(), NewEngine()
	tasksNew := buildRandomDAG(eNew, rand.New(rand.NewSource(seed)), nTasks)
	tasksRef := buildRandomDAG(eRef, rand.New(rand.NewSource(seed)), nTasks)

	rNew := eNew.Run()
	rRef := eRef.RunReference()

	if rNew.Makespan != rRef.Makespan {
		t.Fatalf("seed %d: makespan %v (heap) != %v (reference)", seed, rNew.Makespan, rRef.Makespan)
	}
	if len(rNew.ByLabel) != len(rRef.ByLabel) {
		t.Fatalf("seed %d: ByLabel sizes differ: %d vs %d", seed, len(rNew.ByLabel), len(rRef.ByLabel))
	}
	for k, v := range rRef.ByLabel {
		if rNew.ByLabel[k] != v {
			t.Fatalf("seed %d: ByLabel[%q] = %v (heap) != %v (reference)", seed, k, rNew.ByLabel[k], v)
		}
	}
	for k, v := range rRef.ResourceBusy {
		if rNew.ResourceBusy[k] != v {
			t.Fatalf("seed %d: ResourceBusy[%q] = %v (heap) != %v (reference)", seed, k, rNew.ResourceBusy[k], v)
		}
	}
	if len(rNew.Tasks) != len(rRef.Tasks) {
		t.Fatalf("seed %d: timeline lengths differ: %d vs %d", seed, len(rNew.Tasks), len(rRef.Tasks))
	}
	for i := range rRef.Tasks {
		if rNew.Tasks[i] != rRef.Tasks[i] {
			t.Fatalf("seed %d: timeline[%d] = %+v (heap) != %+v (reference)",
				seed, i, rNew.Tasks[i], rRef.Tasks[i])
		}
	}
	for i := range tasksRef {
		if tasksNew[i].Start() != tasksRef[i].Start() || tasksNew[i].Finish() != tasksRef[i].Finish() {
			t.Fatalf("seed %d: task %d scheduled [%v,%v] (heap) vs [%v,%v] (reference)",
				seed, i, tasksNew[i].Start(), tasksNew[i].Finish(),
				tasksRef[i].Start(), tasksRef[i].Finish())
		}
	}
}

// TestSchedulerEquivalenceRandomDAGs is the property test guarding the
// event-driven rewrite: across many random DAGs, Run and RunReference must
// agree exactly.
func TestSchedulerEquivalenceRandomDAGs(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		checkEquivalent(t, seed, 5+int(seed%120))
	}
}

// FuzzSchedulerEquivalence extends the property test to fuzzed seeds and
// graph sizes.
func FuzzSchedulerEquivalence(f *testing.F) {
	f.Add(int64(1), 40)
	f.Add(int64(77), 3)
	f.Add(int64(1234), 200)
	f.Fuzz(func(t *testing.T, seed int64, n int) {
		if n < 1 || n > 400 {
			return
		}
		checkEquivalent(t, seed, n)
	})
}

// TestSchedulerEquivalencePipeline pins the exact workload shape of
// BenchmarkSchedulerListScheduling (two alternating resources, a long
// dependency chain) at a reduced size.
func TestSchedulerEquivalencePipeline(t *testing.T) {
	build := func(e *Engine) {
		r1 := e.Resource("a", 10)
		r2 := e.Resource("b", 5)
		var prev *Task
		for l := 0; l < 300; l++ {
			t1 := e.Task("x", r1, 3, prev)
			prev = e.Task("y", r2, 2, t1)
		}
	}
	eNew, eRef := NewEngine(), NewEngine()
	build(eNew)
	build(eRef)
	rNew, rRef := eNew.Run(), eRef.RunReference()
	if rNew.Makespan != rRef.Makespan {
		t.Fatalf("makespan %v != %v", rNew.Makespan, rRef.Makespan)
	}
	for i := range rRef.Tasks {
		if rNew.Tasks[i] != rRef.Tasks[i] {
			t.Fatalf("timeline[%d]: %+v vs %+v", i, rNew.Tasks[i], rRef.Tasks[i])
		}
	}
}

// TestCrossEngineDependencies: tasks may depend on tasks completed by a
// previous engine's Run (the InstInfer engine builds decode and prefill
// graphs separately); a finished foreign dependency contributes its finish
// time in both schedulers.
func TestCrossEngineDependencies(t *testing.T) {
	run := func(runner func(e *Engine) Result) (Time, Time) {
		e1 := NewEngine()
		r1 := e1.Resource("up", 2)
		a := e1.Task("first", r1, 10) // finishes at 5
		e1.Run()

		e2 := NewEngine()
		r2 := e2.Resource("down", 1)
		b := e2.Task("second", r2, 3, a) // must start at 5
		res := runner(e2)
		_ = res
		return b.Start(), b.Finish()
	}
	s1, f1 := run(func(e *Engine) Result { return e.Run() })
	s2, f2 := run(func(e *Engine) Result { return e.RunReference() })
	if s1 != 5 || f1 != 8 {
		t.Errorf("heap: cross-engine task scheduled [%v,%v], want [5,8]", s1, f1)
	}
	if s1 != s2 || f1 != f2 {
		t.Errorf("cross-engine schedules differ: [%v,%v] vs [%v,%v]", s1, f1, s2, f2)
	}
}

// TestRecordTimelineOptOut: disabling timeline recording must not change
// any aggregate, only suppress Result.Tasks.
func TestRecordTimelineOptOut(t *testing.T) {
	build := func() *Engine {
		e := NewEngine()
		buildRandomDAG(e, rand.New(rand.NewSource(99)), 60)
		return e
	}
	on := build()
	off := build()
	off.RecordTimeline(false)
	rOn, rOff := on.Run(), off.Run()
	if len(rOff.Tasks) != 0 {
		t.Fatalf("opt-out still recorded %d task records", len(rOff.Tasks))
	}
	if len(rOn.Tasks) == 0 {
		t.Fatal("default run recorded no task records")
	}
	if rOn.Makespan != rOff.Makespan {
		t.Errorf("makespan changed by opt-out: %v vs %v", rOn.Makespan, rOff.Makespan)
	}
	for k, v := range rOn.ByLabel {
		if rOff.ByLabel[k] != v {
			t.Errorf("ByLabel[%q] changed by opt-out: %v vs %v", k, rOff.ByLabel[k], v)
		}
	}

	// The reference scheduler honors the same opt-out.
	ref := build()
	ref.RecordTimeline(false)
	if rRef := ref.RunReference(); len(rRef.Tasks) != 0 {
		t.Fatalf("reference opt-out still recorded %d task records", len(rRef.Tasks))
	}
}

// TestGrowParity: building a DAG into a preallocated slab (Grow) must not
// change a single scheduling result vs individually allocated tasks —
// including when the slab is undersized and construction spills over to the
// allocation fallback, and when Grow is called again mid-build.
func TestGrowParity(t *testing.T) {
	const n = 80
	for _, grow := range []int{n, n / 3, 5} {
		plain, slab := NewEngine(), NewEngine()
		slab.Grow(grow)
		tasksPlain := buildRandomDAG(plain, rand.New(rand.NewSource(7)), n)
		tasksSlab := buildRandomDAG(slab, rand.New(rand.NewSource(7)), n)
		rPlain, rSlab := plain.Run(), slab.Run()
		if rPlain.Makespan != rSlab.Makespan {
			t.Fatalf("grow=%d: makespan %v != %v", grow, rSlab.Makespan, rPlain.Makespan)
		}
		for i := range rPlain.Tasks {
			if rPlain.Tasks[i] != rSlab.Tasks[i] {
				t.Fatalf("grow=%d: timeline[%d] %+v != %+v", grow, i, rSlab.Tasks[i], rPlain.Tasks[i])
			}
		}
		for i := range tasksPlain {
			if tasksPlain[i].Start() != tasksSlab[i].Start() || tasksPlain[i].Finish() != tasksSlab[i].Finish() {
				t.Fatalf("grow=%d: task %d schedules differ", grow, i)
			}
		}
	}
	// Regrowing mid-build must leave already-built tasks intact.
	e := NewEngine()
	r := e.Resource("r", 1)
	e.Grow(2)
	a := e.Task("a", r, 1)
	e.Grow(2)
	b := e.Task("b", r, 1, a)
	res := e.Run()
	if a.Label != "a" || b.Finish() != 2 || res.Makespan != 2 {
		t.Fatalf("regrow corrupted tasks: a=%q b.Finish=%v makespan=%v", a.Label, b.Finish(), res.Makespan)
	}
}

// TestRunReferencePanicsTwice mirrors TestRunTwicePanics for the reference
// entry point; both share the one-shot guard.
func TestRunReferencePanicsTwice(t *testing.T) {
	e := NewEngine()
	e.RunReference()
	defer func() {
		if recover() == nil {
			t.Error("second RunReference did not panic")
		}
	}()
	e.Run()
}
