package hilos

import (
	"fmt"

	"repro/internal/accel"
	"repro/internal/attention"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/energy"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/longbench"
	"repro/internal/model"
	"repro/internal/pipeline"
	"repro/internal/serving"
	"repro/internal/tensor"
	"repro/internal/workload"
)

// Re-exported domain types. Aliases keep the public surface small while the
// implementation lives in internal packages.
type (
	// Request describes one offline-inference workload point.
	Request = pipeline.Request
	// Report is the simulated outcome for one system on one request.
	Report = pipeline.Report
	// Model is a transformer configuration (Table 2).
	Model = model.Config
	// Testbed is the hardware configuration (Table 1).
	Testbed = device.Testbed
	// System identifies a simulated inference system.
	System = engine.System
	// Engine is one inference system bound to a hardware configuration:
	// Name, Describe, and Run. Engines resolve through the system registry,
	// so a new backend is one self-registering file in its own package.
	Engine = engine.Engine
	// HILOSOptions selects device count and the §4.2/§4.3 optimizations.
	HILOSOptions = core.Options
	// EnergyBreakdown is the per-token CPU/DRAM/GPU/SSD energy split of
	// Fig. 17(a), in joules.
	EnergyBreakdown = energy.Breakdown
	// ExperimentTable is one regenerated paper table/figure.
	ExperimentTable = experiments.Table
	// AccuracyTask is one synthetic long-context retrieval dataset.
	AccuracyTask = longbench.Task
	// BacklogSummary is the outcome of draining an offline request backlog.
	BacklogSummary = serving.Summary
)

// Models returns the Table 2 model zoo.
func Models() []Model { return model.All() }

// ModelByName looks up a Table 2 model ("OPT-66B", "Qwen2.5-32B", ...).
func ModelByName(name string) (Model, error) { return model.ByName(name) }

// DefaultTestbed returns the paper's Table 1 hardware configuration with
// all calibration constants documented at their definitions.
func DefaultTestbed() Testbed { return device.DefaultTestbed() }

// The systems evaluated in Figure 10 and Figure 17(b), re-exported from the
// packages that register them.
const (
	SystemFlexSSD    = baseline.SysFlexSSD   // FlexGen, KV on 4 PCIe 4.0 SSDs
	SystemFlexDRAM   = baseline.SysFlexDRAM  // FlexGen, KV in host DRAM
	SystemFlex16SSD  = baseline.SysFlex16SSD // FlexGen on 16 SmartSSDs, FPGAs off
	SystemDSUVM      = baseline.SysDSUVM     // DeepSpeed ZeRO-Inference + UVM
	SystemVLLM       = baseline.SysVLLM      // 2-node 8×A6000 vLLM
	SystemHILOS      = core.SysHILOS         // full HILOS (X-cache + writeback)
	SystemHILOSANS   = core.SysHILOSANS      // ablation: attention near storage only
	SystemHILOSWB    = core.SysHILOSWB       // ablation: ANS + delayed writeback
	SystemHILOSXOnly = core.SysHILOSX        // ablation: ANS + X-cache
)

// AlphaAuto requests the §4.2 cache scheduler's closed-form X-cache ratio.
const AlphaAuto = engine.AlphaAuto

// Systems returns every registered system identifier, in the paper's
// Fig. 10 presentation order.
func Systems() []System { return engine.Systems() }

// DescribeSystem returns the one-line summary a system registered with, or
// "" for unknown systems.
func DescribeSystem(sys System) string {
	spec, ok := engine.Lookup(sys)
	if !ok {
		return ""
	}
	return spec.Describe
}

// Simulator evaluates inference systems on a testbed. The zero value is not
// usable; construct with New.
type Simulator struct {
	tb        device.Testbed
	devices   int
	alpha     float64
	spill     int
	pipelines int
}

// Option configures a Simulator.
type Option func(*Simulator) error

// WithTestbed replaces the default Table 1 testbed.
func WithTestbed(tb Testbed) Option {
	return func(s *Simulator) error {
		if err := tb.Validate(); err != nil {
			return err
		}
		s.tb = tb
		return nil
	}
}

// WithDevices sets the SmartSSD count for NSP engines (default 8; the paper
// evaluates 4, 8 and 16). Baselines with fixed storage topologies ignore it.
func WithDevices(n int) Option {
	return func(s *Simulator) error {
		if n < 1 {
			return errorf("device count must be ≥ 1, got %d", n)
		}
		s.devices = n
		return nil
	}
}

// WithAlpha fixes the X-cache ratio α ∈ [0,1]; pass AlphaAuto (the default)
// to let the §4.2 cache scheduler choose per workload point.
func WithAlpha(a float64) Option {
	return func(s *Simulator) error {
		if a > 1 {
			return errorf("α must be in [0,1] or AlphaAuto, got %g", a)
		}
		if a < 0 {
			a = AlphaAuto
		}
		s.alpha = a
		return nil
	}
}

// WithSpillInterval sets the delayed-writeback spill interval c (default 16).
func WithSpillInterval(c int) Option {
	return func(s *Simulator) error {
		if c < 1 {
			return errorf("spill interval must be ≥ 1, got %d", c)
		}
		s.spill = c
		return nil
	}
}

// WithPipelines sets how many independent inference pipelines Backlog
// schedules over (default 1). Each pipeline models one deployed host
// draining the shared backlog queue.
func WithPipelines(n int) Option {
	return func(s *Simulator) error {
		if n < 1 {
			return errorf("pipelines must be ≥ 1, got %d", n)
		}
		s.pipelines = n
		return nil
	}
}

// New constructs a simulator on the paper defaults (Table 1 testbed, 8
// SmartSSDs, automatic α, spill interval 16, one pipeline), then applies the
// options in order.
func New(opts ...Option) (*Simulator, error) {
	s := &Simulator{
		tb:        device.DefaultTestbed(),
		devices:   8,
		alpha:     AlphaAuto,
		spill:     16,
		pipelines: 1,
	}
	for _, o := range opts {
		if err := o(s); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Must is a New wrapper that panics on error, for initialization chains:
// hilos.Must(hilos.New(hilos.WithDevices(16))).
func Must(s *Simulator, err error) *Simulator {
	if err != nil {
		panic(err)
	}
	return s
}

// Testbed returns the simulator's hardware configuration.
func (s *Simulator) Testbed() Testbed { return s.tb }

func (s *Simulator) engineConfig(devices int) engine.Config {
	if devices <= 0 {
		devices = s.devices
	}
	return engine.Config{Testbed: s.tb, Devices: devices, Alpha: s.alpha, SpillInterval: s.spill}
}

// Engine resolves a system through the registry, bound to this simulator's
// testbed and options.
func (s *Simulator) Engine(sys System) (Engine, error) {
	return engine.New(sys, s.engineConfig(0))
}

// Simulate runs one system on a request. Infeasible configurations are
// reported via Report.OOM; the error covers unknown systems and invalid
// configurations only.
func (s *Simulator) Simulate(sys System, req Request) (Report, error) {
	eng, err := s.Engine(sys)
	if err != nil {
		return Report{}, err
	}
	return eng.Run(req), nil
}

// RunHILOS simulates HILOS with explicit low-level options (ablations,
// fixed α, custom spill intervals) — the escape hatch below the registry.
func (s *Simulator) RunHILOS(req Request, opt HILOSOptions) Report {
	return core.Run(s.tb, req, opt)
}

// ChooseAlpha runs the §4.2 cache scheduler for a workload point.
func (s *Simulator) ChooseAlpha(m Model, batch, context, devices int) (float64, error) {
	return core.ChooseAlpha(s.tb, m, batch, context, devices)
}

// Energy integrates the Fig. 17(a) energy model over a report.
// smartSSDs > 0 selects the NSP storage power model with that device count;
// otherwise the four conventional SSDs are assumed.
func (s *Simulator) Energy(rep Report, smartSSDs int) (EnergyBreakdown, error) {
	cfg := energy.Config{Storage: energy.PlainSSDs, Devices: 4}
	if smartSSDs > 0 {
		cfg = energy.Config{Storage: energy.SmartSSDs, Devices: smartSSDs, AccelPowerW: s.tb.SmartSSD.AccelPowerW}
	}
	return energy.PerToken(s.tb, rep, cfg)
}

// Experiments regenerates every table and figure of the paper's evaluation,
// in paper order.
func (s *Simulator) Experiments() []ExperimentTable {
	r := experiments.Runner{TB: s.tb}
	var out []ExperimentTable
	for _, g := range experiments.Registry() {
		out = append(out, g.Run(r))
	}
	return out
}

// ExperimentByID regenerates a single experiment ("fig10", "table3", ...).
func (s *Simulator) ExperimentByID(id string) (ExperimentTable, error) {
	g, err := experiments.ByID(id)
	if err != nil {
		return ExperimentTable{}, err
	}
	return g.Run(experiments.Runner{TB: s.tb}), nil
}

// ExperimentIDs lists the available experiment identifiers.
func ExperimentIDs() []string { return experiments.IDs() }

// AccuracySuite returns the Fig. 18(c) synthetic retrieval tasks.
func AccuracySuite() []AccuracyTask { return longbench.Suite() }

// RequestClass is a request shape (prompt and output lengths) from the
// §6.6 workload study.
type RequestClass = workload.Class

// RequestClasses returns the Short/Medium/Long classes of §6.6.
func RequestClasses() []RequestClass { return workload.Classes() }

// NewWorkloadTrace draws n requests from the Azure-like offline mix
// (60% short, 30% medium, 10% long), deterministically per seed.
func NewWorkloadTrace(seed int64, n int) ([]RequestClass, error) {
	g, err := workload.NewGenerator(seed, workload.AzureLikeMix())
	if err != nil {
		return nil, err
	}
	return g.Trace(n), nil
}

// AcceleratorTable3 returns the FPGA resource/performance model rows for
// the given head dimension (Table 3 uses 128).
func AcceleratorTable3(headDim int) ([]accel.Utilization, error) {
	return accel.Table3(headDim)
}

// SetKernelWorkers overrides the process-wide worker count the functional
// attention kernels and large MatMuls shard across (n ≤ 0 restores the
// GOMAXPROCS default). Worker count never changes results — parallel runs
// are bit-identical to serial — only latency versus CPU; cap it at 1–2 when
// many kernel calls already run concurrently so the pool isn't
// oversubscribed.
func SetKernelWorkers(n int) { tensor.SetWorkers(n) }

// KernelWorkers reports the worker count kernels currently shard across.
func KernelWorkers() int { return tensor.DefaultWorkers() }

// SetKernelCacheBudget sets the per-worker cache budget (bytes) the
// attention and accelerator kernels size their K/V chunk spans against
// (n ≤ 0 restores the fixed 1 MiB default). Unlike worker count, the budget
// IS part of the numeric contract: it shapes the chunk partition and thus
// the fixed reduction tree, so results stay bit-identical across worker
// counts for any budget, but replaying a run bit-for-bit requires the same
// budget. The default is deliberately a constant — never probed from the
// host — so untuned runs reproduce identically across machines; use
// `hilos-bench -tune` to find the knee for a given box, then set it here
// explicitly.
func SetKernelCacheBudget(n int) { tensor.SetCacheBudget(n) }

// KernelCacheBudget reports the active per-worker cache budget in bytes.
func KernelCacheBudget() int { return tensor.CacheBudget() }

// SetKernelChunkTokens pins the kernel K/V chunk span directly in tokens,
// bypassing the cache-budget sizing (n ≤ 0 restores adaptive sizing). Used
// by calibration sweeps; like the budget, the pin is part of the numeric
// contract.
func SetKernelChunkTokens(n int) { tensor.SetChunkTokens(n) }

// KernelChunkSpan reports the K/V chunk span (tokens) the kernels would use
// for the given head dimension and block size under the current settings.
func KernelChunkSpan(headDim, blockSize int) int {
	return attention.ChunkSpan(headDim, blockSize)
}

// Backlog packs a request trace into same-shape batches of batchSize and
// drains them through the selected system over the simulator's configured
// pipeline count (WithPipelines) — the offline-inference deployment model
// of the paper's introduction, generalized to several hosts sharing one
// backlog queue. Makespan is the maximum pipeline load; per-pipeline and
// per-class attribution, plus failed-work accounting, are in the summary.
func (s *Simulator) Backlog(m Model, trace []RequestClass, batchSize int, sys System) (BacklogSummary, error) {
	eng, err := s.Engine(sys)
	if err != nil {
		return BacklogSummary{}, err
	}
	return runBacklog(m, trace, batchSize, eng.Run, s.pipelines)
}

func runBacklog(m Model, trace []RequestClass, batchSize int, run serving.Engine, pipelines int) (BacklogSummary, error) {
	jobs := make([]serving.Job, len(trace))
	for i, c := range trace {
		jobs[i] = serving.Job{ID: i, Class: c}
	}
	batches, err := serving.PackByClass(jobs, batchSize)
	if err != nil {
		return BacklogSummary{}, err
	}
	return serving.Evaluate(m, batches, run, serving.WithPipelines(pipelines))
}

// ---------------------------------------------------------------------------
// Deprecated shims over the registry. They keep the pre-registry call sites
// compiling and behaving identically; new code should use New with options,
// Engine/Simulate, Backlog and Energy.

// NewSimulator returns a simulator on the default testbed.
//
// Deprecated: use New.
func NewSimulator() (*Simulator, error) { return New() }

// NewSimulatorWithTestbed validates and adopts a custom testbed.
//
// Deprecated: use New(WithTestbed(tb)).
func NewSimulatorWithTestbed(tb Testbed) (*Simulator, error) {
	return New(WithTestbed(tb))
}

// Run simulates one system on a request. devices is the SmartSSD count for
// HILOS variants (ignored by the baselines; pass 0 for the simulator's
// configured count).
//
// Deprecated: use Simulate, with WithDevices selecting the device count, or
// resolve an Engine once and reuse it.
func (s *Simulator) Run(sys System, req Request, devices int) (Report, error) {
	eng, err := engine.New(sys, s.engineConfig(devices))
	if err != nil {
		return Report{}, err
	}
	return eng.Run(req), nil
}

// EnergyPerToken integrates the Fig. 17(a) energy model over a report and
// returns the four components separately.
//
// Deprecated: use Energy, which returns the EnergyBreakdown struct.
func (s *Simulator) EnergyPerToken(rep Report, smartSSDs int) (cpu, dram, gpu, ssd float64, err error) {
	b, err := s.Energy(rep, smartSSDs)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	return b.CPU, b.DRAM, b.GPU, b.SSD, nil
}

// RunBacklog packs a request trace into same-shape batches of batchSize and
// executes them serially on the selected system. devices applies to HILOS
// variants.
//
// Deprecated: use Backlog, with WithDevices and WithPipelines on the
// simulator selecting the deployment.
func (s *Simulator) RunBacklog(m Model, trace []RequestClass, batchSize int, sys System, devices int) (BacklogSummary, error) {
	eng, err := engine.New(sys, s.engineConfig(devices))
	if err != nil {
		return BacklogSummary{}, err
	}
	return runBacklog(m, trace, batchSize, eng.Run, 1)
}

func errorf(format string, args ...any) error {
	return fmt.Errorf("hilos: "+format, args...)
}
