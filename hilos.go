package hilos

import (
	"fmt"

	"repro/internal/accel"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/energy"
	"repro/internal/experiments"
	"repro/internal/longbench"
	"repro/internal/model"
	"repro/internal/pipeline"
	"repro/internal/serving"
	"repro/internal/workload"
)

// Re-exported domain types. Aliases keep the public surface small while the
// implementation lives in internal packages.
type (
	// Request describes one offline-inference workload point.
	Request = pipeline.Request
	// Report is the simulated outcome for one system on one request.
	Report = pipeline.Report
	// Model is a transformer configuration (Table 2).
	Model = model.Config
	// Testbed is the hardware configuration (Table 1).
	Testbed = device.Testbed
	// HILOSOptions selects device count and the §4.2/§4.3 optimizations.
	HILOSOptions = core.Options
	// ExperimentTable is one regenerated paper table/figure.
	ExperimentTable = experiments.Table
	// AccuracyTask is one synthetic long-context retrieval dataset.
	AccuracyTask = longbench.Task
)

// Models returns the Table 2 model zoo.
func Models() []Model { return model.All() }

// ModelByName looks up a Table 2 model ("OPT-66B", "Qwen2.5-32B", ...).
func ModelByName(name string) (Model, error) { return model.ByName(name) }

// DefaultTestbed returns the paper's Table 1 hardware configuration with
// all calibration constants documented at their definitions.
func DefaultTestbed() Testbed { return device.DefaultTestbed() }

// System identifies a simulated inference system.
type System string

// The systems evaluated in Figure 10 and Figure 17(b).
const (
	SystemFlexSSD    System = "flex-ssd"   // FlexGen, KV on 4 PCIe 4.0 SSDs
	SystemFlexDRAM   System = "flex-dram"  // FlexGen, KV in host DRAM
	SystemFlex16SSD  System = "flex-16ssd" // FlexGen on 16 SmartSSDs, FPGAs off
	SystemDSUVM      System = "ds-uvm"     // DeepSpeed ZeRO-Inference + UVM
	SystemVLLM       System = "vllm"       // 2-node 8×A6000 vLLM
	SystemHILOS      System = "hilos"      // full HILOS (X-cache + writeback)
	SystemHILOSANS   System = "hilos-ans"  // ablation: attention near storage only
	SystemHILOSWB    System = "hilos-wb"   // ablation: ANS + delayed writeback
	SystemHILOSXOnly System = "hilos-x"    // ablation: ANS + X-cache
)

// Systems returns every selectable system identifier.
func Systems() []System {
	return []System{
		SystemFlexSSD, SystemFlexDRAM, SystemFlex16SSD, SystemDSUVM,
		SystemVLLM, SystemHILOS, SystemHILOSANS, SystemHILOSWB, SystemHILOSXOnly,
	}
}

// Simulator evaluates inference systems on a testbed. The zero value is not
// usable; construct with NewSimulator or NewSimulatorWithTestbed.
type Simulator struct {
	tb device.Testbed
}

// NewSimulator returns a simulator on the default testbed.
func NewSimulator() (*Simulator, error) {
	return NewSimulatorWithTestbed(device.DefaultTestbed())
}

// NewSimulatorWithTestbed validates and adopts a custom testbed.
func NewSimulatorWithTestbed(tb Testbed) (*Simulator, error) {
	if err := tb.Validate(); err != nil {
		return nil, err
	}
	return &Simulator{tb: tb}, nil
}

// Testbed returns the simulator's hardware configuration.
func (s *Simulator) Testbed() Testbed { return s.tb }

// Run simulates one system on a request. devices is the SmartSSD count for
// HILOS variants (ignored by the baselines; pass 0 for the default 8).
func (s *Simulator) Run(sys System, req Request, devices int) (Report, error) {
	switch sys {
	case SystemFlexSSD:
		return baseline.FlexSSD(s.tb).Run(s.tb, req), nil
	case SystemFlexDRAM:
		return baseline.FlexDRAM(s.tb).Run(s.tb, req), nil
	case SystemFlex16SSD:
		return baseline.Flex16SSD(s.tb).Run(s.tb, req), nil
	case SystemDSUVM:
		return baseline.DeepSpeedUVM(s.tb).Run(s.tb, req), nil
	case SystemVLLM:
		return baseline.DefaultVLLM().Run(s.tb, req), nil
	case SystemHILOS:
		return core.Run(s.tb, req, core.DefaultOptions(devices)), nil
	case SystemHILOSANS:
		return core.Run(s.tb, req, core.Options{Devices: devices}), nil
	case SystemHILOSWB:
		return core.Run(s.tb, req, core.Options{Devices: devices, DelayedWriteback: true}), nil
	case SystemHILOSXOnly:
		return core.Run(s.tb, req, core.Options{Devices: devices, XCache: true, Alpha: -1}), nil
	default:
		return Report{}, fmt.Errorf("hilos: unknown system %q", sys)
	}
}

// RunHILOS simulates HILOS with explicit options (ablations, fixed α,
// custom spill intervals).
func (s *Simulator) RunHILOS(req Request, opt HILOSOptions) Report {
	return core.Run(s.tb, req, opt)
}

// ChooseAlpha runs the §4.2 cache scheduler for a workload point.
func (s *Simulator) ChooseAlpha(m Model, batch, context, devices int) (float64, error) {
	return core.ChooseAlpha(s.tb, m, batch, context, devices)
}

// EnergyPerToken integrates the Fig. 17(a) energy model over a report.
// smartSSDs > 0 selects the NSP storage power model with that device count;
// otherwise the four conventional SSDs are assumed.
func (s *Simulator) EnergyPerToken(rep Report, smartSSDs int) (cpu, dram, gpu, ssd float64, err error) {
	cfg := energy.Config{Storage: energy.PlainSSDs, Devices: 4}
	if smartSSDs > 0 {
		cfg = energy.Config{Storage: energy.SmartSSDs, Devices: smartSSDs, AccelPowerW: s.tb.SmartSSD.AccelPowerW}
	}
	b, err := energy.PerToken(s.tb, rep, cfg)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	return b.CPU, b.DRAM, b.GPU, b.SSD, nil
}

// Experiments regenerates every table and figure of the paper's evaluation,
// in paper order.
func (s *Simulator) Experiments() []ExperimentTable {
	r := experiments.Runner{TB: s.tb}
	var out []ExperimentTable
	for _, g := range experiments.Registry() {
		out = append(out, g.Run(r))
	}
	return out
}

// ExperimentByID regenerates a single experiment ("fig10", "table3", ...).
func (s *Simulator) ExperimentByID(id string) (ExperimentTable, error) {
	g, err := experiments.ByID(id)
	if err != nil {
		return ExperimentTable{}, err
	}
	return g.Run(experiments.Runner{TB: s.tb}), nil
}

// ExperimentIDs lists the available experiment identifiers.
func ExperimentIDs() []string { return experiments.IDs() }

// AccuracySuite returns the Fig. 18(c) synthetic retrieval tasks.
func AccuracySuite() []AccuracyTask { return longbench.Suite() }

// RequestClass is a request shape (prompt and output lengths) from the
// §6.6 workload study.
type RequestClass = workload.Class

// RequestClasses returns the Short/Medium/Long classes of §6.6.
func RequestClasses() []RequestClass { return workload.Classes() }

// NewWorkloadTrace draws n requests from the Azure-like offline mix
// (60% short, 30% medium, 10% long), deterministically per seed.
func NewWorkloadTrace(seed int64, n int) ([]RequestClass, error) {
	g, err := workload.NewGenerator(seed, workload.AzureLikeMix())
	if err != nil {
		return nil, err
	}
	return g.Trace(n), nil
}

// AcceleratorTable3 returns the FPGA resource/performance model rows for
// the given head dimension (Table 3 uses 128).
func AcceleratorTable3(headDim int) ([]accel.Utilization, error) {
	return accel.Table3(headDim)
}

// BacklogSummary is the outcome of running an offline request backlog.
type BacklogSummary = serving.Summary

// RunBacklog packs a request trace into same-shape batches of batchSize and
// executes them serially on the selected system — the offline-inference
// deployment model of the paper's introduction. devices applies to HILOS
// variants.
func (s *Simulator) RunBacklog(m Model, trace []RequestClass, batchSize int, sys System, devices int) (BacklogSummary, error) {
	jobs := make([]serving.Job, len(trace))
	for i, c := range trace {
		jobs[i] = serving.Job{ID: i, Class: c}
	}
	batches, err := serving.PackByClass(jobs, batchSize)
	if err != nil {
		return BacklogSummary{}, err
	}
	engine := func(req pipeline.Request) pipeline.Report {
		rep, err := s.Run(sys, req, devices)
		if err != nil {
			return pipeline.Report{OOM: true, Reason: err.Error()}
		}
		return rep
	}
	return serving.Evaluate(m, batches, engine)
}
