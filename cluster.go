package hilos

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/baseline"
	"repro/internal/cluster"
	"repro/internal/cost"
	"repro/internal/device"
	"repro/internal/energy"
	"repro/internal/engine"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Cluster-facing re-exports.
type (
	// TimedRequest is one timestamped inference request — the unit the
	// cluster admission layer drains.
	TimedRequest = workload.TimedRequest
	// ClusterSummary reports a cluster evaluation: makespan, queueing-delay
	// percentiles, rejected/failed work, and per-pipeline cost/energy
	// attribution.
	ClusterSummary = cluster.Summary
	// ClusterPipelineStats attributes work to one fleet member.
	ClusterPipelineStats = cluster.PipelineStats
	// DispatchPolicy selects how batches pick pipelines.
	DispatchPolicy = cluster.Policy
)

// The dispatch policies of the cluster scheduler.
const (
	// DispatchLeastLoaded sends each batch to the earliest-available
	// pipeline — serving.Evaluate's homogeneous semantics, generalized.
	DispatchLeastLoaded = cluster.LeastLoaded
	// DispatchCheapestFeasible sends each batch to the feasible pipeline
	// with the lowest amortized dollar cost for it (internal/cost pricing).
	DispatchCheapestFeasible = cluster.CheapestFeasible
	// DispatchFastestETA sends each batch to the pipeline that completes it
	// earliest, counting queueing.
	DispatchFastestETA = cluster.FastestETA
)

// DispatchPolicies lists the policies in documentation order.
func DispatchPolicies() []DispatchPolicy { return cluster.Policies() }

// SystemInstInfer is the InstInfer-style in-storage attention engine with
// lossy top-1/8 KV retrieval — the approximate middle tier between the
// exact NSP systems and the DRAM baselines.
const SystemInstInfer = baseline.SysInstInfer

// amortHours spreads a system's hardware price over a three-year service
// life, the horizon of the §6.6 cost-effectiveness analysis.
const amortHours = 3 * 365 * 24

// clusterConfig collects ClusterOption state.
type clusterConfig struct {
	tb         Testbed
	fleet      []fleetSpec
	policy     DispatchPolicy
	maxBatch   int
	maxWaitSec float64
	maxBacklog int
}

type fleetSpec struct {
	sys     System
	count   int
	devices int
}

// ClusterOption configures Cluster.
type ClusterOption func(*clusterConfig) error

// WithFleet appends count pipelines backed by the given registered system
// to the fleet; devices is the SmartSSD/computational-SSD count for NSP
// engines (≤0 = the default 8; baselines with fixed topologies ignore it).
// Repeat the option to compose heterogeneous fleets, e.g. two HILOS hosts
// plus a DRAM baseline plus an InstInfer tier.
func WithFleet(sys System, count, devices int) ClusterOption {
	return func(c *clusterConfig) error {
		if count < 1 {
			return errorf("fleet count for %s must be ≥ 1, got %d", sys, count)
		}
		c.fleet = append(c.fleet, fleetSpec{sys: sys, count: count, devices: devices})
		return nil
	}
}

// WithDispatchPolicy selects the batch-to-pipeline policy (default
// DispatchLeastLoaded).
func WithDispatchPolicy(p DispatchPolicy) ClusterOption {
	return func(c *clusterConfig) error {
		c.policy = p
		return nil
	}
}

// WithAdmission sets the batch-formation policy: a per-class batch closes
// at maxBatch requests or when its oldest member has waited maxWaitSec,
// whichever comes first (defaults: 16 and 60 s).
func WithAdmission(maxBatch int, maxWaitSec float64) ClusterOption {
	return func(c *clusterConfig) error {
		if maxBatch < 1 {
			return errorf("admission max batch must be ≥ 1, got %d", maxBatch)
		}
		if maxWaitSec < 0 {
			return errorf("admission max wait must be ≥ 0, got %g", maxWaitSec)
		}
		c.maxBatch, c.maxWaitSec = maxBatch, maxWaitSec
		return nil
	}
}

// WithMaxBacklog caps admitted-but-unstarted requests; arrivals beyond the
// cap are rejected (default 0 = unbounded, pure offline admission).
func WithMaxBacklog(n int) ClusterOption {
	return func(c *clusterConfig) error {
		if n < 0 {
			return errorf("max backlog must be ≥ 0, got %d", n)
		}
		c.maxBacklog = n
		return nil
	}
}

// WithClusterTestbed replaces the default Table 1 testbed for every fleet
// member (engine timing, pricing and energy attribution).
func WithClusterTestbed(tb Testbed) ClusterOption {
	return func(c *clusterConfig) error {
		if err := tb.Validate(); err != nil {
			return err
		}
		c.tb = tb
		return nil
	}
}

// Cluster drains a timestamped request trace through a heterogeneous fleet:
// the trace-driven generalization of Backlog. Requests are admitted into
// per-class queues, packed into batches under the admission policy, and
// dispatched to fleet pipelines — each backed by its own registered engine,
// priced by the §6.6 hardware model amortized over three years — under the
// selected policy. The default fleet is two 8-device HILOS hosts plus one
// FlexGen-DRAM baseline; results are deterministic for a given trace and
// configuration.
func Cluster(m Model, reqs []TimedRequest, opts ...ClusterOption) (ClusterSummary, error) {
	cfg := clusterConfig{
		tb:         device.DefaultTestbed(),
		policy:     DispatchLeastLoaded,
		maxBatch:   16,
		maxWaitSec: 60,
	}
	for _, o := range opts {
		if err := o(&cfg); err != nil {
			return ClusterSummary{}, err
		}
	}
	if len(cfg.fleet) == 0 {
		cfg.fleet = []fleetSpec{
			{sys: SystemHILOS, count: 2, devices: 8},
			{sys: SystemFlexDRAM, count: 1},
		}
	}

	var fleet []cluster.Pipeline
	for _, fs := range cfg.fleet {
		devices := fs.devices
		if devices <= 0 {
			devices = 8
		}
		eng, err := engine.New(fs.sys, engine.Config{
			Testbed: cfg.tb, Devices: devices, Alpha: AlphaAuto, SpillInterval: 16,
		})
		if err != nil {
			return ClusterSummary{}, err
		}
		usdPerHour, ec := pipelineEconomics(fs.sys, devices, cfg.tb)
		for i := 0; i < fs.count; i++ {
			fleet = append(fleet, cluster.Pipeline{
				Name:       fmt.Sprintf("%s/%d", fs.sys, len(fleet)),
				Run:        eng.Run,
				USDPerHour: usdPerHour,
				Energy:     ec,
				// Pipelines from one fleet spec share the engine, so their
				// batch simulations memoize together.
				EngineID: fmt.Sprintf("%s/%d-dev", fs.sys, devices),
			})
		}
	}

	return cluster.Run(cluster.Config{
		Model:  m,
		Fleet:  fleet,
		Policy: cfg.policy,
		Admission: cluster.Admission{
			MaxBatch:   cfg.maxBatch,
			MaxWaitSec: cfg.maxWaitSec,
			MaxBacklog: cfg.maxBacklog,
		},
	}, reqs)
}

// pipelineEconomics prices one pipeline's hardware via the §6.6 bill of
// materials, amortized to $/hour, and selects its Fig. 17(a) energy model.
func pipelineEconomics(sys System, devices int, tb Testbed) (float64, *cluster.EnergyConfig) {
	var cs cost.System
	ec := energy.Config{Storage: energy.PlainSSDs, Devices: 4}
	switch {
	case strings.HasPrefix(string(sys), "hilos") || sys == SystemInstInfer:
		// NSP tiers: host + GPU + chassis + computational SSDs.
		cs = cost.HILOSSystem(tb.GPU, devices)
		ec = energy.Config{Storage: energy.SmartSSDs, Devices: devices, AccelPowerW: tb.SmartSSD.AccelPowerW}
	case sys == SystemFlex16SSD:
		// The SmartSSD array with FPGAs off: chassis + 16 devices, SSD-only
		// power.
		cs = cost.System{Name: string(sys), GPU: tb.GPU, SmartSSDs: 16, Hosts: 1}
		ec = energy.Config{Storage: energy.SmartSSDs, Devices: 16}
	case sys == SystemVLLM:
		// Two 4-GPU nodes, no offload storage.
		cs = cost.System{Name: string(sys), GPU: tb.GPU, Hosts: 2, ExtraGPUs: 7}
		ec = energy.Config{Storage: energy.NoSSD, GPUCount: 8}
	default:
		// FlexGen-style single host with four plain SSDs.
		cs = cost.FlexSystem(tb.GPU)
	}
	return cs.PriceUSD(tb) / amortHours, &cluster.EnergyConfig{Testbed: tb, Model: ec}
}

// NewTimedWorkloadTrace draws n requests from the Azure-like offline mix
// and stamps them with Poisson arrivals at ratePerSec — deterministic per
// seed. The one-call path from nothing to a Cluster-ready trace.
func NewTimedWorkloadTrace(seed int64, n int, ratePerSec float64) ([]TimedRequest, error) {
	g, err := workload.NewGenerator(seed, workload.AzureLikeMix())
	if err != nil {
		return nil, err
	}
	arrivals, err := workload.PoissonArrivals(seed, ratePerSec, n)
	if err != nil {
		return nil, err
	}
	return g.TimedTrace(arrivals)
}

// ReadArrivalTrace parses an arrival-trace CSV (arrival_sec,class or
// arrival_sec,class,input_tokens,output_tokens; optional header) into
// timestamped requests.
func ReadArrivalTrace(r io.Reader) ([]TimedRequest, error) {
	return trace.ReadArrivalsCSV(r)
}

// WriteArrivalTrace writes requests as an arrival-trace CSV that
// round-trips through ReadArrivalTrace.
func WriteArrivalTrace(w io.Writer, reqs []TimedRequest) error {
	return trace.WriteArrivalsCSV(w, reqs)
}
