package hilos

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/baseline"
	"repro/internal/cluster"
	"repro/internal/cost"
	"repro/internal/device"
	"repro/internal/energy"
	"repro/internal/engine"
	"repro/internal/faults"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Cluster-facing re-exports.
type (
	// TimedRequest is one timestamped inference request — the unit the
	// cluster admission layer drains.
	TimedRequest = workload.TimedRequest
	// ClusterSummary reports a cluster evaluation: makespan, queueing-delay
	// percentiles, rejected/failed work, and per-pipeline cost/energy
	// attribution.
	ClusterSummary = cluster.Summary
	// ClusterPipelineStats attributes work to one fleet member.
	ClusterPipelineStats = cluster.PipelineStats
	// ClusterPriorityStats attributes scheduling outcomes (delay
	// percentiles, preempted jobs, deadline misses) to one priority class.
	ClusterPriorityStats = cluster.PriorityStats
	// DispatchPolicy selects how batches pick pipelines.
	DispatchPolicy = cluster.Policy
)

// The dispatch policies of the cluster scheduler.
const (
	// DispatchLeastLoaded sends each batch to the earliest-available
	// pipeline — serving.Evaluate's homogeneous semantics, generalized.
	DispatchLeastLoaded = cluster.LeastLoaded
	// DispatchCheapestFeasible sends each batch to the feasible pipeline
	// with the lowest amortized dollar cost for it (internal/cost pricing).
	DispatchCheapestFeasible = cluster.CheapestFeasible
	// DispatchFastestETA sends each batch to the pipeline that completes it
	// earliest, counting queueing.
	DispatchFastestETA = cluster.FastestETA
)

// DispatchPolicies lists the policies in documentation order.
func DispatchPolicies() []DispatchPolicy { return cluster.Policies() }

// SystemInstInfer is the InstInfer-style in-storage attention engine with
// lossy top-1/8 KV retrieval — the approximate middle tier between the
// exact NSP systems and the DRAM baselines.
const SystemInstInfer = baseline.SysInstInfer

// amortHours spreads a system's hardware price over a three-year service
// life, the horizon of the §6.6 cost-effectiveness analysis.
const amortHours = 3 * 365 * 24

// clusterConfig collects ClusterOption state.
type clusterConfig struct {
	tb         Testbed
	fleet      []fleetSpec
	policy     DispatchPolicy
	maxBatch   int
	maxWaitSec float64
	maxBacklog int
	preemption bool
	continuous bool
	priorities []PriorityClass
	telemetry  *ClusterTelemetry
	pace       func(simSec float64)
	faults     *FaultPlan
	retry      *ClusterRetryPolicy
}

type fleetSpec struct {
	sys     System
	count   int
	devices int
}

// ClusterOption configures Cluster.
type ClusterOption func(*clusterConfig) error

// WithFleet appends count pipelines backed by the given registered system
// to the fleet; devices is the SmartSSD/computational-SSD count for NSP
// engines (≤0 = the default 8; baselines with fixed topologies ignore it).
// Repeat the option to compose heterogeneous fleets, e.g. two HILOS hosts
// plus a DRAM baseline plus an InstInfer tier.
func WithFleet(sys System, count, devices int) ClusterOption {
	return func(c *clusterConfig) error {
		if count < 1 {
			return errorf("fleet count for %s must be ≥ 1, got %d", sys, count)
		}
		c.fleet = append(c.fleet, fleetSpec{sys: sys, count: count, devices: devices})
		return nil
	}
}

// WithDispatchPolicy selects the batch-to-pipeline policy (default
// DispatchLeastLoaded).
func WithDispatchPolicy(p DispatchPolicy) ClusterOption {
	return func(c *clusterConfig) error {
		c.policy = p
		return nil
	}
}

// WithAdmission sets the batch-formation policy: a per-class batch closes
// at maxBatch requests or when its oldest member has waited maxWaitSec,
// whichever comes first (defaults: 16 and 60 s).
func WithAdmission(maxBatch int, maxWaitSec float64) ClusterOption {
	return func(c *clusterConfig) error {
		if maxBatch < 1 {
			return errorf("admission max batch must be ≥ 1, got %d", maxBatch)
		}
		if maxWaitSec < 0 {
			return errorf("admission max wait must be ≥ 0, got %g", maxWaitSec)
		}
		c.maxBatch, c.maxWaitSec = maxBatch, maxWaitSec
		return nil
	}
}

// WithMaxBacklog caps admitted-but-unstarted requests; arrivals beyond the
// cap are rejected (default 0 = unbounded, pure offline admission).
func WithMaxBacklog(n int) ClusterOption {
	return func(c *clusterConfig) error {
		if n < 0 {
			return errorf("max backlog must be ≥ 0, got %d", n)
		}
		c.maxBacklog = n
		return nil
	}
}

// PriorityClass tags every request of one workload class with scheduling
// urgency: Priority ranks it against other classes (higher is served first;
// 0 is the offline default) and DeadlineSec is its queueing budget — the
// request should start within DeadlineSec of arrival (0 = no deadline).
type PriorityClass struct {
	// Class names the workload class the rule applies to (e.g. "Short").
	Class string
	// Priority is the scheduling rank (≥ 0; higher is more urgent).
	Priority int
	// DeadlineSec is the start-deadline budget in seconds (≥ 0; 0 = none).
	DeadlineSec float64
}

// WithPriorityClasses stamps matching requests of the trace with priority
// and deadline metadata before scheduling — the declarative way to split
// one trace into online and offline tiers (e.g. Short as priority 1 with a
// 15-second deadline, everything else the offline default). Rules override
// any metadata the requests already carry.
func WithPriorityClasses(rules ...PriorityClass) ClusterOption {
	return func(c *clusterConfig) error {
		if len(rules) == 0 {
			return errorf("priority classes need at least one rule")
		}
		for _, r := range rules {
			if r.Class == "" {
				return errorf("priority class rule needs a class name")
			}
			if r.Priority < 0 {
				return errorf("priority for class %s must be ≥ 0, got %d", r.Class, r.Priority)
			}
			if r.DeadlineSec < 0 {
				return errorf("deadline for class %s must be ≥ 0, got %g", r.Class, r.DeadlineSec)
			}
		}
		c.priorities = append(c.priorities, rules...)
		return nil
	}
}

// WithPreemption enables deadline-aware preemption: a request's deadline
// forces its partial batch out when it expires, and a batch that would
// still miss its deadline evicts strictly-lower-priority unstarted batches
// from the pipeline where it can start soonest. Evicted work is re-enqueued
// and re-run, never dropped, and the backlog cap stops rejecting arrivals
// that outrank the queued work. Running batches always complete: preemption
// acts only at batch boundaries. Combined with WithContinuousBatching
// there is never an unstarted batch to evict — work waits in its queue
// until a pipeline is free — so preemption reduces to deadline-triggered
// dispatch eligibility and the priority ordering of the queues, and the
// summary's preemption counters stay zero.
func WithPreemption() ClusterOption {
	return func(c *clusterConfig) error {
		c.preemption = true
		return nil
	}
}

// WithContinuousBatching re-forms batches at dispatch time: requests wait
// in per-priority queues until a pipeline is actually free, and the freed
// pipeline re-packs up to the admission batch size from the oldest waiting
// work — continuous batching, instead of shipping the batch that happened
// to close at admission.
func WithContinuousBatching() ClusterOption {
	return func(c *clusterConfig) error {
		c.continuous = true
		return nil
	}
}

// WithClusterTelemetry streams per-event metrics out of the scheduling
// loop into the given sink (see NewClusterTelemetry). Telemetry never
// feeds back into scheduling: the Summary is bit-identical with or without
// it, and a nil sink is a no-op.
func WithClusterTelemetry(t *ClusterTelemetry) ClusterOption {
	return func(c *clusterConfig) error {
		c.telemetry = t
		return nil
	}
}

// WithClusterPace installs a pacing hook called with the simulated time of
// each scheduler event before it executes — the boundary where a replay is
// slaved to the wall clock (e.g. sleeping until sim time × replay speed has
// elapsed). The hook must not mutate scheduling state; results are
// independent of how long it blocks.
func WithClusterPace(pace func(simSec float64)) ClusterOption {
	return func(c *clusterConfig) error {
		c.pace = pace
		return nil
	}
}

// WithClusterTestbed replaces the default Table 1 testbed for every fleet
// member (engine timing, pricing and energy attribution).
func WithClusterTestbed(tb Testbed) ClusterOption {
	return func(c *clusterConfig) error {
		if err := tb.Validate(); err != nil {
			return err
		}
		c.tb = tb
		return nil
	}
}

// Cluster drains a timestamped request trace through a heterogeneous fleet:
// the trace-driven generalization of Backlog. Requests are admitted into
// per-class queues, packed into batches under the admission policy, and
// dispatched to fleet pipelines — each backed by its own registered engine,
// priced by the §6.6 hardware model amortized over three years — under the
// selected policy. The default fleet is two 8-device HILOS hosts plus one
// FlexGen-DRAM baseline; results are deterministic for a given trace and
// configuration.
func Cluster(m Model, reqs []TimedRequest, opts ...ClusterOption) (ClusterSummary, error) {
	cfg := clusterConfig{
		tb:         device.DefaultTestbed(),
		policy:     DispatchLeastLoaded,
		maxBatch:   16,
		maxWaitSec: 60,
	}
	for _, o := range opts {
		if err := o(&cfg); err != nil {
			return ClusterSummary{}, err
		}
	}
	if len(cfg.fleet) == 0 {
		cfg.fleet = []fleetSpec{
			{sys: SystemHILOS, count: 2, devices: 8},
			{sys: SystemFlexDRAM, count: 1},
		}
	}

	var fleet []cluster.Pipeline
	for _, fs := range cfg.fleet {
		devices := fs.devices
		if devices <= 0 {
			devices = 8
		}
		eng, err := engine.New(fs.sys, engine.Config{
			Testbed: cfg.tb, Devices: devices, Alpha: AlphaAuto, SpillInterval: 16,
		})
		if err != nil {
			return ClusterSummary{}, err
		}
		usdPerHour, ec := pipelineEconomics(fs.sys, devices, cfg.tb)
		for i := 0; i < fs.count; i++ {
			fleet = append(fleet, cluster.Pipeline{
				Name:       fmt.Sprintf("%s/%d", fs.sys, len(fleet)),
				Run:        eng.Run,
				USDPerHour: usdPerHour,
				Energy:     ec,
				// Pipelines from one fleet spec share the engine, so their
				// batch simulations memoize together.
				EngineID: fmt.Sprintf("%s/%d-dev", fs.sys, devices),
				// InstInfer's top-1/8 KV retrieval is approximate: work that
				// lands here only because every exact tier is out of service
				// counts as degraded, not business as usual.
				Lossy: fs.sys == SystemInstInfer,
			})
		}
	}

	var inj *faults.Injector
	if cfg.faults != nil {
		var err error
		if inj, err = faults.New(*cfg.faults, len(fleet)); err != nil {
			return ClusterSummary{}, err
		}
	}
	var retry cluster.RetryPolicy
	switch {
	case cfg.retry != nil:
		retry = *cfg.retry
	case cfg.faults != nil:
		retry = cluster.DefaultRetryPolicy()
	}

	if len(cfg.priorities) > 0 {
		stamped := make([]TimedRequest, len(reqs))
		copy(stamped, reqs)
		rules := map[string]PriorityClass{}
		for _, r := range cfg.priorities {
			rules[r.Class] = r
		}
		for i := range stamped {
			if r, ok := rules[stamped[i].Class.Name]; ok {
				stamped[i].Priority = r.Priority
				stamped[i].DeadlineSec = r.DeadlineSec
			}
		}
		reqs = stamped
	}

	return cluster.Run(cluster.Config{
		Model:     m,
		Fleet:     fleet,
		Policy:    cfg.policy,
		Telemetry: cfg.telemetry,
		Pace:      cfg.pace,
		Faults:    inj,
		Retry:     retry,
		Admission: cluster.Admission{
			MaxBatch:           cfg.maxBatch,
			MaxWaitSec:         cfg.maxWaitSec,
			MaxBacklog:         cfg.maxBacklog,
			Preemption:         cfg.preemption,
			ContinuousBatching: cfg.continuous,
		},
	}, reqs)
}

// pipelineEconomics prices one pipeline's hardware via the §6.6 bill of
// materials, amortized to $/hour, and selects its Fig. 17(a) energy model.
func pipelineEconomics(sys System, devices int, tb Testbed) (float64, *cluster.EnergyConfig) {
	var cs cost.System
	ec := energy.Config{Storage: energy.PlainSSDs, Devices: 4}
	switch {
	case strings.HasPrefix(string(sys), "hilos") || sys == SystemInstInfer:
		// NSP tiers: host + GPU + chassis + computational SSDs.
		cs = cost.HILOSSystem(tb.GPU, devices)
		ec = energy.Config{Storage: energy.SmartSSDs, Devices: devices, AccelPowerW: tb.SmartSSD.AccelPowerW}
	case sys == SystemFlex16SSD:
		// The SmartSSD array with FPGAs off: chassis + 16 devices, SSD-only
		// power.
		cs = cost.System{Name: string(sys), GPU: tb.GPU, SmartSSDs: 16, Hosts: 1}
		ec = energy.Config{Storage: energy.SmartSSDs, Devices: 16}
	case sys == SystemVLLM:
		// Two 4-GPU nodes, no offload storage.
		cs = cost.System{Name: string(sys), GPU: tb.GPU, Hosts: 2, ExtraGPUs: 7}
		ec = energy.Config{Storage: energy.NoSSD, GPUCount: 8}
	default:
		// FlexGen-style single host with four plain SSDs.
		cs = cost.FlexSystem(tb.GPU)
	}
	return cs.PriceUSD(tb) / amortHours, &cluster.EnergyConfig{Testbed: tb, Model: ec}
}

// ArrivalProcess names a built-in arrival-time generator.
type ArrivalProcess string

// The built-in arrival processes.
const (
	// ArrivalsPoisson is a homogeneous Poisson process: exponential
	// inter-arrival gaps at the mean rate.
	ArrivalsPoisson ArrivalProcess = "poisson"
	// ArrivalsUniform is deterministic 1/rate spacing — the zero-variance
	// reference.
	ArrivalsUniform ArrivalProcess = "uniform"
	// ArrivalsBursty is a two-state MMPP: 80% of the time a quiet floor at
	// rate/4, 20% in bursts at 4×rate, time-averaging to the requested
	// rate — the day-night modulation of the ROADMAP's workload-realism
	// item.
	ArrivalsBursty ArrivalProcess = "bursty"
)

// ArrivalProcesses lists the built-in processes in documentation order.
func ArrivalProcesses() []ArrivalProcess {
	return []ArrivalProcess{ArrivalsPoisson, ArrivalsUniform, ArrivalsBursty}
}

// NewTimedWorkloadTrace draws n requests from the Azure-like offline mix
// and stamps them with Poisson arrivals at ratePerSec — deterministic per
// seed. The one-call path from nothing to a Cluster-ready trace.
func NewTimedWorkloadTrace(seed int64, n int, ratePerSec float64) ([]TimedRequest, error) {
	return NewWorkloadTraceWithArrivals(seed, n, ratePerSec, ArrivalsPoisson)
}

// NewWorkloadTraceWithArrivals draws n requests from the Azure-like offline
// mix and stamps them with arrivals from the selected process at the given
// mean rate — deterministic per seed.
func NewWorkloadTraceWithArrivals(seed int64, n int, ratePerSec float64, p ArrivalProcess) ([]TimedRequest, error) {
	g, err := workload.NewGenerator(seed, workload.AzureLikeMix())
	if err != nil {
		return nil, err
	}
	arrivals, err := arrivalTimes(seed, n, ratePerSec, p)
	if err != nil {
		return nil, err
	}
	return g.TimedTrace(arrivals)
}

func arrivalTimes(seed int64, n int, ratePerSec float64, p ArrivalProcess) ([]float64, error) {
	switch p {
	case ArrivalsPoisson:
		return workload.PoissonArrivals(seed, ratePerSec, n)
	case ArrivalsUniform:
		return workload.UniformArrivals(ratePerSec, n)
	case ArrivalsBursty:
		return workload.BurstyArrivals(seed, ratePerSec, n)
	}
	return nil, errorf("unknown arrival process %q (known: %v)", p, ArrivalProcesses())
}

// NewOnlineOfflineTrace builds the co-scheduling workload of the
// online/offline studies: nOffline offline requests (the Azure-like mix's
// Medium/Long tail, priority 0, no deadline) arriving as a Poisson process
// at offlineRate, interleaved with nOnline latency-sensitive Short requests
// (priority 1, the given start-deadline budget) at onlineRate. IDs are
// reassigned in arrival order; the result is deterministic per seed.
func NewOnlineOfflineTrace(seed int64, nOnline, nOffline int, onlineRate, offlineRate, deadlineSec float64) ([]TimedRequest, error) {
	if deadlineSec < 0 {
		return nil, errorf("online deadline must be ≥ 0, got %g", deadlineSec)
	}
	offMix := []workload.Mix{{Class: workload.Medium, Weight: 0.75}, {Class: workload.Long, Weight: 0.25}}
	g, err := workload.NewGenerator(seed, offMix)
	if err != nil {
		return nil, err
	}
	offArr, err := workload.PoissonArrivals(seed, offlineRate, nOffline)
	if err != nil {
		return nil, err
	}
	offline, err := g.TimedTrace(offArr)
	if err != nil {
		return nil, err
	}
	onArr, err := workload.PoissonArrivals(seed+1, onlineRate, nOnline)
	if err != nil {
		return nil, err
	}
	merged := make([]TimedRequest, 0, nOnline+nOffline)
	merged = append(merged, offline...)
	for _, t := range onArr {
		merged = append(merged, TimedRequest{
			Class: workload.Short, ArrivalSec: t, Priority: 1, DeadlineSec: deadlineSec,
		})
	}
	sort.SliceStable(merged, func(i, j int) bool { return merged[i].ArrivalSec < merged[j].ArrivalSec })
	for i := range merged {
		merged[i].ID = i
	}
	return merged, nil
}

// ReadArrivalTrace parses an arrival-trace CSV (arrival_sec,class or
// arrival_sec,class,input_tokens,output_tokens; optional header) into
// timestamped requests.
func ReadArrivalTrace(r io.Reader) ([]TimedRequest, error) {
	return trace.ReadArrivalsCSV(r)
}

// WriteArrivalTrace writes requests as an arrival-trace CSV that
// round-trips through ReadArrivalTrace.
func WriteArrivalTrace(w io.Writer, reqs []TimedRequest) error {
	return trace.WriteArrivalsCSV(w, reqs)
}
