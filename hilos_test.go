package hilos

import (
	"testing"
)

// All ten System identifiers resolve through the registry to an Engine
// whose name round-trips, in the paper's Fig. 10 presentation order (the
// InstInfer tier sits between the baselines and the HILOS family).
func TestRegistryResolvesAllSystems(t *testing.T) {
	want := []System{
		SystemFlexSSD, SystemFlexDRAM, SystemFlex16SSD, SystemDSUVM,
		SystemVLLM, SystemInstInfer, SystemHILOS, SystemHILOSANS, SystemHILOSWB, SystemHILOSXOnly,
	}
	got := Systems()
	if len(got) != len(want) {
		t.Fatalf("Systems() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Systems()[%d] = %q, want %q (presentation order must be stable)", i, got[i], want[i])
		}
	}

	s, err := New()
	if err != nil {
		t.Fatal(err)
	}
	for _, sys := range want {
		eng, err := s.Engine(sys)
		if err != nil {
			t.Fatalf("%s: %v", sys, err)
		}
		if eng.Name() != sys {
			t.Errorf("%s: engine reports name %q", sys, eng.Name())
		}
		if eng.Describe() == "" || DescribeSystem(sys) == "" {
			t.Errorf("%s: empty description", sys)
		}
	}
	if _, err := s.Engine(System("bogus")); err == nil {
		t.Error("unknown system resolved")
	}
	if DescribeSystem(System("bogus")) != "" {
		t.Error("unknown system described")
	}
}

func TestNewOptionValidation(t *testing.T) {
	for name, opt := range map[string]Option{
		"devices 0":       WithDevices(0),
		"alpha 1.5":       WithAlpha(1.5),
		"spill 0":         WithSpillInterval(0),
		"pipelines 0":     WithPipelines(0),
		"invalid testbed": WithTestbed(func() Testbed { tb := DefaultTestbed(); tb.GPU.EffFLOPS = 0; return tb }()),
	} {
		if _, err := New(opt); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	if _, err := New(WithDevices(16), WithAlpha(0.5), WithSpillInterval(32), WithPipelines(4)); err != nil {
		t.Errorf("valid options rejected: %v", err)
	}
}

// The functional-options constructor reproduces the deprecated positional
// API exactly: same engine, same report.
func TestSimulateMatchesDeprecatedRun(t *testing.T) {
	m, _ := ModelByName("OPT-66B")
	req := Request{Model: m, Batch: 8, Context: 16384, OutputLen: 32}
	oldSim, err := NewSimulator()
	if err != nil {
		t.Fatal(err)
	}
	newSim, err := New(WithDevices(16))
	if err != nil {
		t.Fatal(err)
	}
	for _, sys := range Systems() {
		old, err := oldSim.Run(sys, req, 16)
		if err != nil {
			t.Fatalf("%s: %v", sys, err)
		}
		got, err := newSim.Simulate(sys, req)
		if err != nil {
			t.Fatalf("%s: %v", sys, err)
		}
		if got.StepSec != old.StepSec || got.PrefillSec != old.PrefillSec || got.Batch != old.Batch {
			t.Errorf("%s: Simulate %+v differs from deprecated Run %+v", sys, got, old)
		}
	}
}

// Scheduling a 200-request Azure-like backlog over 4 pipelines strictly
// lowers the makespan while generating the identical token total.
func TestBacklogPipelinesSpeedup(t *testing.T) {
	m, _ := ModelByName("OPT-30B")
	trace, err := NewWorkloadTrace(11, 200)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := New(WithDevices(16), WithPipelines(1))
	if err != nil {
		t.Fatal(err)
	}
	fanned, err := New(WithDevices(16), WithPipelines(4))
	if err != nil {
		t.Fatal(err)
	}
	s1, err := serial.Backlog(m, trace, 16, SystemVLLM)
	if err != nil {
		t.Fatal(err)
	}
	s4, err := fanned.Backlog(m, trace, 16, SystemVLLM)
	if err != nil {
		t.Fatal(err)
	}
	if s4.MakespanSec >= s1.MakespanSec {
		t.Errorf("4 pipelines (%.1fs) not strictly below 1 pipeline (%.1fs)", s4.MakespanSec, s1.MakespanSec)
	}
	if s4.OutputTokens != s1.OutputTokens {
		t.Errorf("token totals differ: %d vs %d", s4.OutputTokens, s1.OutputTokens)
	}
	if s4.Pipelines != 4 || len(s4.PerPipelineSec) != 4 {
		t.Errorf("per-pipeline attribution missing: %+v", s4)
	}
	// Determinism across runs.
	again, err := fanned.Backlog(m, trace, 16, SystemVLLM)
	if err != nil {
		t.Fatal(err)
	}
	if again.MakespanSec != s4.MakespanSec {
		t.Errorf("makespan nondeterministic: %v vs %v", again.MakespanSec, s4.MakespanSec)
	}
}

func TestEnergyBreakdownFacade(t *testing.T) {
	s, _ := New()
	m, _ := ModelByName("OPT-30B")
	rep, err := s.Simulate(SystemHILOS, Request{Model: m, Batch: 8, Context: 16384, OutputLen: 32})
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Energy(rep, 8)
	if err != nil {
		t.Fatal(err)
	}
	if b.CPU <= 0 || b.DRAM <= 0 || b.GPU <= 0 || b.SSD <= 0 {
		t.Errorf("energy breakdown %+v", b)
	}
	if b.Total() != b.CPU+b.DRAM+b.GPU+b.SSD {
		t.Error("Total() does not sum the components")
	}
	// The deprecated 4-float shim agrees with the struct.
	cpu, dram, gpu, ssd, err := s.EnergyPerToken(rep, 8)
	if err != nil {
		t.Fatal(err)
	}
	if cpu != b.CPU || dram != b.DRAM || gpu != b.GPU || ssd != b.SSD {
		t.Error("EnergyPerToken shim disagrees with Energy")
	}
}

func TestNewSimulator(t *testing.T) {
	s, err := NewSimulator()
	if err != nil {
		t.Fatal(err)
	}
	if s.Testbed().GPU.Name == "" {
		t.Error("testbed not populated")
	}
	bad := DefaultTestbed()
	bad.GPU.EffFLOPS = 0
	if _, err := NewSimulatorWithTestbed(bad); err == nil {
		t.Error("invalid testbed accepted")
	}
}

func TestModelsFacade(t *testing.T) {
	if len(Models()) != 6 {
		t.Errorf("Models() returned %d entries, want 6 (Table 2)", len(Models()))
	}
	m, err := ModelByName("OPT-66B")
	if err != nil || m.Layers != 64 {
		t.Errorf("ModelByName = %+v, %v", m, err)
	}
	if _, err := ModelByName("nope"); err == nil {
		t.Error("unknown model accepted")
	}
}

func TestRunAllSystems(t *testing.T) {
	s, err := NewSimulator()
	if err != nil {
		t.Fatal(err)
	}
	m, _ := ModelByName("OPT-66B")
	req := Request{Model: m, Batch: 8, Context: 16384, OutputLen: 32}
	for _, sys := range Systems() {
		rep, err := s.Run(sys, req, 8)
		if err != nil {
			t.Fatalf("%s: %v", sys, err)
		}
		if !rep.OOM && rep.DecodeTokPerSec() <= 0 {
			t.Errorf("%s: non-positive throughput", sys)
		}
	}
	if _, err := s.Run(System("bogus"), req, 8); err == nil {
		t.Error("unknown system accepted")
	}
}

func TestHILOSBeatsFlexSSDViaFacade(t *testing.T) {
	s, _ := NewSimulator()
	m, _ := ModelByName("OPT-66B")
	req := Request{Model: m, Batch: 16, Context: 65536, OutputLen: 64}
	base, _ := s.Run(SystemFlexSSD, req, 0)
	h, _ := s.Run(SystemHILOS, req, 16)
	if h.DecodeTokPerSec() <= base.DecodeTokPerSec() {
		t.Error("HILOS not faster than FLEX(SSD) through the facade")
	}
}

func TestChooseAlphaFacade(t *testing.T) {
	s, _ := NewSimulator()
	m, _ := ModelByName("OPT-66B")
	a, err := s.ChooseAlpha(m, 16, 32768, 8)
	if err != nil || a != 0.5 {
		t.Errorf("ChooseAlpha = %v, %v; want 0.5", a, err)
	}
}

func TestEnergyFacade(t *testing.T) {
	s, _ := NewSimulator()
	m, _ := ModelByName("OPT-30B")
	req := Request{Model: m, Batch: 8, Context: 16384, OutputLen: 32}
	rep, _ := s.Run(SystemHILOS, req, 8)
	cpu, dram, gpu, ssd, err := s.EnergyPerToken(rep, 8)
	if err != nil {
		t.Fatal(err)
	}
	if cpu <= 0 || dram <= 0 || gpu <= 0 || ssd <= 0 {
		t.Errorf("energy components: %v %v %v %v", cpu, dram, gpu, ssd)
	}
}

func TestExperimentFacade(t *testing.T) {
	s, _ := NewSimulator()
	tab, err := s.ExperimentByID("table3")
	if err != nil || len(tab.Rows) != 3 {
		t.Errorf("ExperimentByID(table3) = %d rows, %v", len(tab.Rows), err)
	}
	if _, err := s.ExperimentByID("nope"); err == nil {
		t.Error("unknown experiment accepted")
	}
	if len(ExperimentIDs()) < 15 {
		t.Errorf("only %d experiment IDs", len(ExperimentIDs()))
	}
}

func TestAccuracySuiteFacade(t *testing.T) {
	if len(AccuracySuite()) != 5 {
		t.Errorf("AccuracySuite has %d tasks, want 5", len(AccuracySuite()))
	}
}

func TestAcceleratorTable3Facade(t *testing.T) {
	rows, err := AcceleratorTable3(128)
	if err != nil || len(rows) != 3 {
		t.Fatalf("AcceleratorTable3 = %d rows, %v", len(rows), err)
	}
	if rows[0].DGroup != 1 || rows[2].DGroup != 5 {
		t.Error("Table 3 rows out of order")
	}
}

func TestRunBacklogFacade(t *testing.T) {
	s, err := NewSimulator()
	if err != nil {
		t.Fatal(err)
	}
	m, _ := ModelByName("OPT-30B")
	trace, err := NewWorkloadTrace(5, 20)
	if err != nil {
		t.Fatal(err)
	}
	flex, err := s.RunBacklog(m, trace, 16, SystemFlexSSD, 0)
	if err != nil {
		t.Fatal(err)
	}
	hil, err := s.RunBacklog(m, trace, 16, SystemHILOS, 16)
	if err != nil {
		t.Fatal(err)
	}
	if flex.Jobs != 20 || hil.Jobs != 20 {
		t.Errorf("jobs = %d / %d, want 20", flex.Jobs, hil.Jobs)
	}
	if hil.MakespanSec >= flex.MakespanSec {
		t.Errorf("HILOS backlog %.1fs not below FlexGen %.1fs", hil.MakespanSec, flex.MakespanSec)
	}
	if hil.OutputTokens != flex.OutputTokens {
		t.Error("token accounting differs between engines")
	}
	if _, err := s.RunBacklog(m, nil, 16, SystemHILOS, 8); err == nil {
		t.Error("empty trace accepted")
	}
}
