package hilos

import (
	"testing"
)

func TestNewSimulator(t *testing.T) {
	s, err := NewSimulator()
	if err != nil {
		t.Fatal(err)
	}
	if s.Testbed().GPU.Name == "" {
		t.Error("testbed not populated")
	}
	bad := DefaultTestbed()
	bad.GPU.EffFLOPS = 0
	if _, err := NewSimulatorWithTestbed(bad); err == nil {
		t.Error("invalid testbed accepted")
	}
}

func TestModelsFacade(t *testing.T) {
	if len(Models()) != 6 {
		t.Errorf("Models() returned %d entries, want 6 (Table 2)", len(Models()))
	}
	m, err := ModelByName("OPT-66B")
	if err != nil || m.Layers != 64 {
		t.Errorf("ModelByName = %+v, %v", m, err)
	}
	if _, err := ModelByName("nope"); err == nil {
		t.Error("unknown model accepted")
	}
}

func TestRunAllSystems(t *testing.T) {
	s, err := NewSimulator()
	if err != nil {
		t.Fatal(err)
	}
	m, _ := ModelByName("OPT-66B")
	req := Request{Model: m, Batch: 8, Context: 16384, OutputLen: 32}
	for _, sys := range Systems() {
		rep, err := s.Run(sys, req, 8)
		if err != nil {
			t.Fatalf("%s: %v", sys, err)
		}
		if !rep.OOM && rep.DecodeTokPerSec() <= 0 {
			t.Errorf("%s: non-positive throughput", sys)
		}
	}
	if _, err := s.Run(System("bogus"), req, 8); err == nil {
		t.Error("unknown system accepted")
	}
}

func TestHILOSBeatsFlexSSDViaFacade(t *testing.T) {
	s, _ := NewSimulator()
	m, _ := ModelByName("OPT-66B")
	req := Request{Model: m, Batch: 16, Context: 65536, OutputLen: 64}
	base, _ := s.Run(SystemFlexSSD, req, 0)
	h, _ := s.Run(SystemHILOS, req, 16)
	if h.DecodeTokPerSec() <= base.DecodeTokPerSec() {
		t.Error("HILOS not faster than FLEX(SSD) through the facade")
	}
}

func TestChooseAlphaFacade(t *testing.T) {
	s, _ := NewSimulator()
	m, _ := ModelByName("OPT-66B")
	a, err := s.ChooseAlpha(m, 16, 32768, 8)
	if err != nil || a != 0.5 {
		t.Errorf("ChooseAlpha = %v, %v; want 0.5", a, err)
	}
}

func TestEnergyFacade(t *testing.T) {
	s, _ := NewSimulator()
	m, _ := ModelByName("OPT-30B")
	req := Request{Model: m, Batch: 8, Context: 16384, OutputLen: 32}
	rep, _ := s.Run(SystemHILOS, req, 8)
	cpu, dram, gpu, ssd, err := s.EnergyPerToken(rep, 8)
	if err != nil {
		t.Fatal(err)
	}
	if cpu <= 0 || dram <= 0 || gpu <= 0 || ssd <= 0 {
		t.Errorf("energy components: %v %v %v %v", cpu, dram, gpu, ssd)
	}
}

func TestExperimentFacade(t *testing.T) {
	s, _ := NewSimulator()
	tab, err := s.ExperimentByID("table3")
	if err != nil || len(tab.Rows) != 3 {
		t.Errorf("ExperimentByID(table3) = %d rows, %v", len(tab.Rows), err)
	}
	if _, err := s.ExperimentByID("nope"); err == nil {
		t.Error("unknown experiment accepted")
	}
	if len(ExperimentIDs()) < 15 {
		t.Errorf("only %d experiment IDs", len(ExperimentIDs()))
	}
}

func TestAccuracySuiteFacade(t *testing.T) {
	if len(AccuracySuite()) != 5 {
		t.Errorf("AccuracySuite has %d tasks, want 5", len(AccuracySuite()))
	}
}

func TestAcceleratorTable3Facade(t *testing.T) {
	rows, err := AcceleratorTable3(128)
	if err != nil || len(rows) != 3 {
		t.Fatalf("AcceleratorTable3 = %d rows, %v", len(rows), err)
	}
	if rows[0].DGroup != 1 || rows[2].DGroup != 5 {
		t.Error("Table 3 rows out of order")
	}
}

func TestRunBacklogFacade(t *testing.T) {
	s, err := NewSimulator()
	if err != nil {
		t.Fatal(err)
	}
	m, _ := ModelByName("OPT-30B")
	trace, err := NewWorkloadTrace(5, 20)
	if err != nil {
		t.Fatal(err)
	}
	flex, err := s.RunBacklog(m, trace, 16, SystemFlexSSD, 0)
	if err != nil {
		t.Fatal(err)
	}
	hil, err := s.RunBacklog(m, trace, 16, SystemHILOS, 16)
	if err != nil {
		t.Fatal(err)
	}
	if flex.Jobs != 20 || hil.Jobs != 20 {
		t.Errorf("jobs = %d / %d, want 20", flex.Jobs, hil.Jobs)
	}
	if hil.MakespanSec >= flex.MakespanSec {
		t.Errorf("HILOS backlog %.1fs not below FlexGen %.1fs", hil.MakespanSec, flex.MakespanSec)
	}
	if hil.OutputTokens != flex.OutputTokens {
		t.Error("token accounting differs between engines")
	}
	if _, err := s.RunBacklog(m, nil, 16, SystemHILOS, 8); err == nil {
		t.Error("empty trace accepted")
	}
}
