// Package hilos is a full-system reproduction of "A Cost-Effective
// Near-Storage Processing Solution for Offline Inference of Long-Context
// LLMs" (HILOS, ASPLOS 2026).
//
// HILOS accelerates offloading-based batched LLM inference by moving the
// KV-cache-bound attention computation into near-storage processing (NSP)
// devices — SmartSSDs with an FPGA behind a private PCIe switch — so the
// terabyte-scale KV cache never crosses the host interconnect. Three
// techniques make that practical: attention near storage (§4.1),
// cooperative X-cache execution between GPU and devices (§4.2), and delayed
// KV-cache writeback (§4.3), backed by a memory-efficient blocked attention
// accelerator (§4.4).
//
// Because the original system requires SmartSSD/GPU hardware, this
// repository substitutes two coupled simulators, both implemented from
// scratch in pure Go:
//
//   - a functional substrate with exact attention numerics (two-pass online
//     softmax, 128-token blocked dataflow with online transpose, GQA,
//     X-cache regeneration, delayed-writeback merging) under FP16 storage
//     with FP32 accumulation; and
//   - a timing substrate: a deterministic discrete-event model of the
//     paper's testbed (A100/H100, Xeon host, PCIe topology, PM9A3 SSDs,
//     SmartSSDs with internal P2P paths and an accelerator cycle model),
//     on which HILOS and all baselines (FlexGen SSD/DRAM/16-SSD,
//     DeepSpeed+UVM, multi-node vLLM) are evaluated.
//
// The package exposes a small façade over the internal packages: construct
// a Simulator, describe a Request, and run any System on it. The
// experiments behind every figure and table of the paper are available via
// Experiments and ExperimentByID, and the accuracy harness via
// AccuracySuite. See the examples directory for runnable walkthroughs and
// DESIGN.md/EXPERIMENTS.md for the reproduction methodology.
package hilos
