// Package hilos is a full-system reproduction of "A Cost-Effective
// Near-Storage Processing Solution for Offline Inference of Long-Context
// LLMs" (HILOS, ASPLOS 2026).
//
// HILOS accelerates offloading-based batched LLM inference by moving the
// KV-cache-bound attention computation into near-storage processing (NSP)
// devices — SmartSSDs with an FPGA behind a private PCIe switch — so the
// terabyte-scale KV cache never crosses the host interconnect. Three
// techniques make that practical: attention near storage (§4.1),
// cooperative X-cache execution between GPU and devices (§4.2), and delayed
// KV-cache writeback (§4.3), backed by a memory-efficient blocked attention
// accelerator (§4.4).
//
// Because the original system requires SmartSSD/GPU hardware, this
// repository substitutes two coupled simulators, both implemented from
// scratch in pure Go:
//
//   - a functional substrate with exact attention numerics (two-pass online
//     softmax, 128-token blocked dataflow with online transpose, GQA,
//     X-cache regeneration, delayed-writeback merging) under FP16 storage
//     with FP32 accumulation; and
//   - a timing substrate: a deterministic discrete-event model of the
//     paper's testbed (A100/H100, Xeon host, PCIe topology, PM9A3 SSDs,
//     SmartSSDs with internal P2P paths and an accelerator cycle model),
//     on which HILOS and all baselines (FlexGen SSD/DRAM/16-SSD,
//     DeepSpeed+UVM, multi-node vLLM) are evaluated.
//
// # The Engine abstraction
//
// Every simulated system implements the Engine interface — Name, Describe,
// and Run — and registers a factory in a process-wide registry
// (internal/engine) from its own package's init. The facade never switches
// on system identifiers: adding a backend (an InstInfer-style in-storage
// attention engine, a future CSD generation) is one self-registering file.
//
// # Quickstart
//
// Construct a Simulator with functional options, then resolve any System
// through it:
//
//	sim, err := hilos.New(
//		hilos.WithDevices(16),        // SmartSSD count for NSP engines
//		hilos.WithAlpha(0.5),         // or hilos.AlphaAuto (default)
//		hilos.WithSpillInterval(16),  // delayed-writeback interval c
//	)
//	if err != nil { ... }
//	m, _ := hilos.ModelByName("OPT-66B")
//	req := hilos.Request{Model: m, Batch: 16, Context: 64 * 1024, OutputLen: 64}
//	rep, err := sim.Simulate(hilos.SystemHILOS, req)
//	// or: eng, _ := sim.Engine(hilos.SystemHILOS); rep = eng.Run(req)
//
// Energy integrates the Fig. 17(a) model and returns an EnergyBreakdown;
// the experiments behind every figure and table of the paper are available
// via Experiments and ExperimentByID, and the accuracy harness via
// AccuracySuite.
//
// # Serving: the event-driven cluster scheduler
//
// The service layer is the internal/cluster scheduler: one discrete-event,
// simulated-clock loop over eight event kinds — request arrival, batch
// wait-timeout, request start-deadline, batch completion, fault injection,
// pipeline repair, retry release, and pipeline-free — draining
// per-priority-class queues through a fleet whose members may be backed by
// different registered engines. Cluster composes a fleet with functional
// options and drains a trace through it:
//
//	reqs, _ := hilos.NewTimedWorkloadTrace(7, 96, 0.8) // Poisson 0.8 req/s
//	sum, err := hilos.Cluster(m, reqs,
//		hilos.WithFleet(hilos.SystemHILOS, 2, 16),    // two 16-device NSP hosts
//		hilos.WithFleet(hilos.SystemFlexDRAM, 1, 0),  // one DRAM baseline
//		hilos.WithFleet(hilos.SystemInstInfer, 1, 16),// lossy 1/8 middle tier
//		hilos.WithAdmission(16, 30),                  // batch ≤16, wait ≤30 s
//		hilos.WithDispatchPolicy(hilos.DispatchCheapestFeasible),
//	)
//
// Dispatch policies: DispatchLeastLoaded (earliest-available pipeline),
// DispatchCheapestFeasible (lowest amortized dollars for the batch, §6.6
// pricing over a three-year life), and DispatchFastestETA (earliest
// completion counting queueing). Arrival processes: Poisson, uniform, and
// a two-state MMPP burst generator (NewWorkloadTraceWithArrivals).
//
// Online/offline co-scheduling layers three extensions over the same loop:
//
//   - WithPriorityClasses tags workload classes with a priority rank and a
//     start-deadline budget (e.g. Short as priority 1, 120 s), splitting
//     one trace into online and offline tiers; NewOnlineOfflineTrace
//     generates such a mix directly.
//   - WithPreemption makes deadlines actionable: an expiring request
//     forces its partial batch out immediately, and a batch that would
//     still miss its deadline evicts strictly-lower-priority *unstarted*
//     batches from the pipeline where it can start soonest. Evicted work
//     is re-enqueued and re-run, never dropped; running batches always
//     complete (preemption acts at batch boundaries only). The backlog cap
//     (WithMaxBacklog) then rejects only arrivals that do not outrank the
//     queued work, so offline queues absorb overload instead of bouncing
//     online traffic.
//   - WithContinuousBatching re-forms batches at dispatch time: a freed
//     pipeline re-packs up to the admission batch size from the oldest
//     waiting requests, instead of shipping the batch that happened to
//     close at admission.
//
// The summary reports makespan, queueing-delay percentiles (p50/p95/p99)
// overall and per priority class, rejected/failed/preempted work, deadline
// misses, and per-pipeline utilization/cost/energy attribution —
// deterministically, run after run. Arrival traces round-trip through
// ReadArrivalTrace/WriteArrivalTrace CSV (optional priority/deadline
// columns; legacy traces parse unchanged), and cmd/hilos-cluster sweeps
// fleet compositions, rates, arrival processes, scheduling modes and
// policies from the command line.
//
// Backlog remains the offline special case — a request trace packed into
// same-shape batches, released at time zero over WithPipelines(n)
// identical pipelines — and serving.Evaluate delegates to the same cluster
// dispatch core, so there is exactly one scheduling implementation. When
// an engine shrinks a batch, the remainder is charged as a smaller final
// pass simulated at its exact tail shape:
//
//	deploy, _ := hilos.New(hilos.WithDevices(16), hilos.WithPipelines(4))
//	trace, _ := hilos.NewWorkloadTrace(7, 200)
//	sum, err := deploy.Backlog(m, trace, 16, hilos.SystemHILOS)
//
// The pre-registry entry points (NewSimulator, Simulator.Run,
// Simulator.RunBacklog, Simulator.EnergyPerToken) remain as deprecated
// shims over the registry and behave identically.
//
// # Robustness: deterministic faults and self-healing dispatch
//
// Weeks-long offline batches on cheap near-storage hardware make device
// loss, gray failures and flash wear first-class events. internal/faults
// models them as a deterministic injector over the simulated clock, and the
// cluster loop reacts with a recovery layer; WithFaults(FaultPlan{...})
// wires a plan into Cluster, and WithRetryPolicy tunes the reaction.
//
// The fault vocabulary (FaultKinds): fail-stop takes a pipeline down at a
// scheduled instant and repairs it a window later — the running batch is
// killed mid-flight (its flash writes prorated by run fraction) and queued
// work fails over; transient is a per-batch execution error probability
// drawn from the plan's seeded PRNG (the batch burns its time, produces
// nothing, retries); straggler multiplies a pipeline's service time over a
// window — slow-but-alive; wear-out permanently retires a pipeline once its
// cumulative flash writes cross an endurance budget (the §6.6 budget acted
// on, not just reported — there is no repair for worn-out flash).
// GenerateFailStops draws an exponential MTBF/MTTR schedule per pipeline,
// deterministic per seed.
//
// The recovery layer reacts per attempt: a failed batch re-dispatches after
// deterministic exponential backoff (base doubling per attempt up to a cap,
// never jittered) until RetryPolicy.MaxRetries is exhausted, at which point
// it fails terminally — exactly once, however many attempts burned.
// FailureThreshold consecutive failures on one pipeline trip a circuit
// breaker: the pipeline is quarantined for QuarantineSec, its queued-ahead
// work fails over to the rest of the fleet immediately, and a repair event
// re-admits it. When every pipeline that could serve a batch is temporarily
// down or quarantined, placement defers to the earliest re-admission
// instant rather than failing; when the exact tiers are out of service
// permanently and a lossy tier (the InstInfer pipeline) can still serve,
// work degrades there and is counted as degraded service. Only a batch no
// fleet member can ever place fails for infeasibility.
//
// Two property tests pin the contracts under fuzzing with -race, on
// checked-in corpora (internal/cluster/testdata/fuzz):
//
//   - Fault parity (FuzzFaultParity): an injector with nothing scheduled
//     produces a Summary bit-identical (reflect.DeepEqual) to no injector
//     at all — the fault machinery costs nothing and changes nothing until
//     a fault actually fires.
//   - Job conservation (FuzzJobConservation): under arbitrary fail-stop
//     schedules, transient rates, stragglers and wear budgets, every
//     admitted job completes, fails terminally, or is rejected exactly
//     once. Nothing is lost, nothing double-counted, and
//     Admitted == Completed + FailedJobs always balances.
//
// The Summary reports the whole story — FaultsInjected, RetriedBatches/
// RetriedJobs, FailedOverBatches/FailedOverJobs, Quarantines,
// DegradedBatches/DegradedJobs, and per-pipeline Faults/Quarantines/WearOut
// — and telemetry streams fault, repair, retry, quarantine, failover and
// degrade events as they happen. cmd/hilos-cluster drives it from the
// command line (-faults 'fail-stop:pipe=0,at=120,repair=60;transient:
// prob=0.05', -mtbf/-mttr for generated schedules, -max-retries), printing
// a robustness line that ends in "lost 0 jobs" — CI greps for exactly
// that. examples/chaos-replay walks through a full chaos run and its
// bit-identical replay.
//
// # Performance
//
// Every simulation bottoms out in internal/sim's Engine.Run, which
// schedules the per-step task graph with a dependency-counting event loop
// over indexed min-heaps: tasks become ready when their last dependency
// finishes, each resource keeps its ready tasks in (earliest-start, id)
// heaps, and a global candidate heap picks the next task — O((n+m)·log n)
// for n tasks and m edges. The original O(n²) rescanning list scheduler is
// retained as Engine.RunReference; a property test runs random DAGs
// (barriers, pure-latency delays, fan-in/fan-out) through both and requires
// bit-identical Results, so the rewrite is a pure speedup (≈17x at 5,000
// tasks, see BENCH_PR4.json). Simulations whose timelines nobody reads can
// call Engine.RecordTimeline(false) to skip the per-task TaskRecord append,
// and graph builders that know their size can call Engine.Grow(n) to draw
// the next n tasks from one preallocated slab. Together these carry the
// scheduler to million-task DAGs — the per-token granularity of a 1M-token
// decode timeline: BenchmarkScheduler1M builds and schedules a
// 1,048,576-task graph per op (about a second on a laptop core, where the
// O(n²) reference would take hours).
//
// The functional attention kernels follow the accelerator's true block
// dataflow: Blocked/GQA/TopKBlocks reduce each K/V block's local softmax
// statistics first (attention.Partial.AddBlock) and rescale the value
// accumulator at most once per block — the §5.4 streaming update unit —
// instead of once per token. Top-k retrieval selects through a bounded
// min-heap in O(n·log k), reproducing the old O(n·k) selection's output
// exactly (descending score, ascending index among ties, every k). All
// optimized paths stay within the existing FP32 tolerances of the Ref
// golden reference (and bit-exact where tests demand it, e.g. the X-cache
// regeneration path).
//
// tensor.Dot stripes its accumulation across eight independent lanes —
// modeling the accelerator's parallel MAC lane groups — with a documented
// canonical reduction order that is part of the numeric contract: lane L
// takes the products at indices i+L over full 8-element groups, the
// fewer-than-8 tail folds sequentially into lane 0 (so lengths < 8 are
// exactly the scalar sequential sum), and the lanes reduce as
// ((s0+s1)+(s2+s3)) + ((s4+s5)+(s6+s7)). The scalar single-accumulator
// loop is retained as tensor.DotRef; equivalence is property- and
// fuzz-tested (bitwise below one stripe, FP32 tolerance for finite data,
// NaN-for-NaN, bitwise determinism for all inputs including Inf), and
// cmd/hilos-bench floors the striped speedup over DotRef at 1.3x.
// Mat.T transposes through 64×64 cache tiles (bit-identical to the naive
// TransposeRef — transposition is pure data movement); large MatMuls
// transpose the right operand once and stream both operands contiguously
// through the striped Dot, while small products keep the original exact
// axpy loop.
//
// Chunk geometry is cache-budget-derived: the attention and accelerator
// kernels size their block-aligned K/V chunk spans so one chunk's K and V
// rows at FP32 fit a process-wide per-worker budget
// (attention.ChunkSpan(headDim, blockSize); hilos.SetKernelCacheBudget /
// KernelCacheBudget, with hilos.SetKernelChunkTokens pinning the span
// outright). The default budget is a fixed 1 MiB constant — deliberately
// never probed from the host CPU — because the chunk partition shapes the
// fixed reduction tree and is therefore part of the numeric contract:
// results are bit-identical across worker counts for any budget, and
// bit-identical across machines exactly when budgets agree. Tuning is an
// explicit act: `hilos-bench -tune` sweeps spans over a decode-shape call
// and reports the knee as a SetKernelCacheBudget value to apply by hand.
//
// Within one attention call the kernels are parallel: a process-wide worker
// pool (tensor.ParallelFor — long-lived goroutines, a shared atomic item
// cursor, the caller always participating so nesting can't deadlock) shards
// the (query row × K/V chunk) work grid, with per-worker score scratch and
// per-item Partial accumulators drawn from sync.Pool arenas so steady-state
// calls allocate only the output. Parallel results are bit-identical to a
// one-worker run for every worker count, by construction rather than by
// tolerance: the K/V range is split into block-aligned chunks as a pure
// function of shape + settings (never of the worker count), every work
// item writes only its own index-owned Partial, and each row's chunk
// partials reduce
// through a fixed-shape binary tree of Merge calls (stride 1, 2, 4, …) whose
// combination order depends only on the chunk count — goroutine completion
// order can never reach a float32 bit. Property and fuzz tests pin
// reflect.DeepEqual equality across worker counts {1, 2, 3, 8} under -race.
// GQA shares each K/V block traversal across the group's query heads (one K
// row read per block for all dGroup heads, per-head numerics bitwise equal
// to Blocked); TopKBlocks parallelizes its score+pool phase into
// index-owned slots and keeps block selection serial and deterministic; the
// accelerator model and large MatMuls shard rows on the same pool.
//
// Picking Workers: the default (tensor.DefaultWorkers, overridable
// process-wide with tensor.SetWorkers or hilos.SetKernelWorkers) is
// GOMAXPROCS, right for latency-sensitive single-call workloads; cap it at
// 1–2 when many attention calls already run concurrently (e.g. under the
// experiment sweep pool) so the pool isn't oversubscribed; the explicit
// *Workers kernel variants pin a count per call for benchmarking. Worker
// count never changes results — only latency versus CPU.
//
// Experiment tables evaluate their sweep points concurrently on a bounded
// worker pool with index-ordered assembly, so regenerated tables are
// byte-identical to a sequential run. Independent points that hit the same
// simulation share it through internal/repcache, a process-wide memoized
// report cache keyed on the complete (testbed, request, options) input.
// The cluster dispatcher's per-fleet report memo is a repcache.Group — a
// private namespace over the same cache with the same per-key singleflight,
// so concurrent prewarm workers share one run per batch shape.
//
// BENCH_PR10.json records the whole benchmark suite (ns/op, allocs/op,
// bytes/op, and the GOMAXPROCS each benchmark ran under), including the
// 1M-scale entries (BenchmarkBlockedAttention1M, BenchmarkScheduler1M), the
// serial/4-worker attention and accelerator pairs, and the single-thread ILP
// pairs (BenchmarkDot/DotRef, BenchmarkTransposeBlocked/TransposeRef). To
// regenerate it, pipe `go test -bench` output through cmd/hilos-bench
// (later lines refine earlier ones, so append longer runs of the gated
// pairs after the 1x full sweep):
//
//	go test -run '^$' -bench . -benchtime 1x -benchmem . > bench.out
//	go test -run '^$' -bench Scheduler -benchtime 20x -benchmem . >> bench.out
//	go test -run '^$' -bench 'BlockedAttention64K(Serial|Workers4)$' -benchtime 20x -benchmem . >> bench.out
//	go test -run '^$' -bench 'BenchmarkDot(Ref)?$|Transpose(Blocked|Ref)$' -benchtime 300ms -benchmem . >> bench.out
//	go test -run '^$' -bench 'AcceleratorAttention16K(Serial|Workers4)$' -benchtime 3x -benchmem . >> bench.out
//	go run ./cmd/hilos-bench -bench-json BENCH_PR10.json < bench.out
//
// CI replays that recipe and fails if BenchmarkSchedulerListScheduling
// regresses against the checked-in baseline (measured as the
// machine-independent ratio to BenchmarkSchedulerListSchedulingReference;
// 20% headroom by default, widened to 50% in CI for cross-runner
// variance), or if the speedup falls below the hard 5x acceptance floor.
// On runners with GOMAXPROCS ≥ 4 it additionally floors the
// BenchmarkBlockedAttention64KSerial / ...Workers4 speedup at 2x and the
// BenchmarkAcceleratorAttention16KSerial / ...Workers4 speedup at 1.5x;
// below 4 procs those gates report themselves skipped rather than passing
// vacuously. The ILP gates apply at any proc count: the striped Dot must
// beat the scalar DotRef by 1.3x and the blocked transpose must beat
// TransposeRef by 1.2x. Every gated pair is also compared against the
// baseline's recorded ratio with the same regression headroom.
//
// # Observability
//
// The telemetry layer (internal/telemetry, re-exported here) is
// zero-dependency and strictly passive: counters, gauges, fixed-bucket
// histograms in a MetricsRegistry, plus an EventStream that fans
// simulated-clock events out to bounded subscribers. Three contracts hold
// everywhere telemetry touches the simulators:
//
//   - Determinism: every timestamp is simulated-clock seconds, and metrics
//     never feed back into scheduling — a run with telemetry attached
//     produces a bit-identical Summary to a run without
//     (FuzzClusterTelemetryParity pins this on a checked-in corpus).
//   - Non-blocking: Publish never waits on a subscriber. A laggard's
//     events are dropped and counted (Subscriber.Dropped, StreamStats),
//     never buffered unboundedly, never backpressured into the hot loop.
//   - Zero disabled cost: a nil registry, stream, or sink is a no-op on
//     every method, so uninstrumented runs pay one nil check per event.
//     BenchmarkClusterTelemetryOff/On measure the cluster loop both ways,
//     and hilos-bench caps the enabled overhead ratio at 2x.
//
// Metric names are dot-separated subsystem prefixes. The cluster scheduler
// (WithClusterTelemetry) emits cluster.arrivals, cluster.rejections,
// cluster.dispatched_batches/_jobs, cluster.preempted_batches/_jobs,
// cluster.completed_jobs, cluster.failed_batches/_jobs,
// cluster.deadline_misses, the robustness counters
// (cluster.faults_injected, cluster.repairs, cluster.retried_batches/_jobs,
// cluster.quarantines, cluster.failed_over_batches/_jobs,
// cluster.degraded_batches/_jobs), the cluster.delay_sec histogram,
// cluster.queue_depth.p<prio>.<class> gauges, cluster.makespan_sec,
// cluster.total_write_bytes, and per-pipeline
// cluster.pipeline.<name>.{busy_sec, utilization, write_bytes, wear_pct,
// write_pressure_bps, worn_out} gauges. The discrete-event engines
// (EnableSimTelemetry) emit sim.tasks_scheduled and sim.resource_busy_sec;
// the report cache (EnableCacheMetrics) emits repcache.hits,
// repcache.misses and repcache.coalesced. Event kinds on the stream are
// arrival, reject, dispatch, preempt, fail, fault, repair, retry,
// quarantine, failover, degrade, task and resource_busy.
//
// Counters and live queue-depth gauges update as the event loop runs;
// schedule-dependent metrics (completions, deadline misses, the delay
// histogram, per-pipeline gauges) are finalized from the settled Summary,
// so a snapshot taken after the run always agrees with it exactly.
//
// cmd/hilos-cluster serves the layer over HTTP: -metrics-addr exposes
// GET /metrics (registry snapshot plus stream accounting as JSON) and
// GET /events (newline-delimited JSON event stream; ?max=N, ?buf=N), and
// -trace-out writes the last run's batch schedule as Chrome trace-event
// JSON for chrome://tracing or Perfetto (WriteClusterTrace; per-DAG
// timelines via WriteChrome in internal/trace). -replay-speed slaves the
// simulated clock to the wall clock at a multiple — the pacing hook is the
// one sanctioned wall-clock boundary, it lives in cmd (not in any
// simulation package) behind a //lint:allow simdeterminism annotation, and
// it only delays event processing: the schedule is bit-identical at any
// speed.
//
// # Invariants
//
// Three conventions hold everywhere in this repository, and the
// cmd/hilos-lint analyzer suite (internal/lint) enforces them in CI:
//
//   - Determinism (simdeterminism): identical inputs produce bit-identical
//     tables. The simulation and kernel packages (internal/sim,
//     internal/cluster, internal/faults, internal/serving,
//     internal/experiments, internal/attention, internal/tensor,
//     internal/accel) never read
//     time.Now, the process environment, or an unseeded entropy source —
//     randomness comes from explicitly seeded rand.New(rand.NewSource(seed))
//     streams — and Go's randomized map iteration order never reaches an
//     output: code collects keys, sorts, then walks. Appending inside a map
//     range is fine exactly when the slice is sorted afterwards in the same
//     function. Goroutine completion order never reaches an output either:
//     the analyzer flags appends and float accumulation driven by channel
//     receives (`for v := range ch { out = append(out, v) }`, `sum += <-ch`),
//     which record whichever worker finished first. The sanctioned shapes
//     are index-owned writes (out[i] = v), fixed-shape tree reduction over
//     an index-ordered slice, and collect-then-sort.
//   - Numerics (floataccum): long float reductions in the kernel packages
//     (internal/attention, internal/tensor, internal/fp16, internal/accel)
//     accumulate in float64 — attention.Partial/Stats — and convert once at
//     the boundary.
//     float32 `+=` in a loop is reserved for code that deliberately models
//     the accelerator's FP32 MAC datapath, and says so.
//   - Concurrency (guardedby, heapsafe): shared state annotated
//     `// guarded by <mu>` (repcache's cache and entries, the engine
//     registry) is only touched with the named mutex held — RLock suffices
//     for reads, never for writes. Heap-ordering fields of internal/sim's
//     indexed min-heaps (Task.ready, Task.id, Resource.free) change only on
//     the heap's own Fix/Push/Pop paths, or with a re-heapify call following
//     in the same function. Code with no mutex at all — the experiment
//     worker pools, the cluster event loop — stays race-free structurally:
//     single-goroutine loops and index-disjoint writes.
//
// Run the suite with `go run ./cmd/hilos-lint ./...` (flags: -json for
// machine-readable output, -rules to select analyzers, -list to enumerate
// them). A deliberate exception is annotated in source with
// `//lint:allow <rule> <reason>` — on the offending line, in a declaration's
// doc comment, or in the package doc — and the reason is part of the
// contract: it documents why the invariant bends there. Fixtures under
// internal/lint/testdata/src pin each analyzer's catch and no-false-positive
// behavior.
//
// See the examples directory for runnable walkthroughs and
// DESIGN.md/EXPERIMENTS.md for the reproduction methodology.
package hilos
