package hilos

import (
	"bytes"
	"reflect"
	"testing"
)

// Acceptance: a mixed fleet (two distinct engine systems plus the InstInfer
// tier) drains a timestamped trace deterministically, reporting makespan,
// delay percentiles and per-pipeline cost/energy attribution — and
// least-loaded vs cheapest-feasible produce different assignments.
func TestClusterMixedFleet(t *testing.T) {
	m, err := ModelByName("OPT-30B")
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := NewTimedWorkloadTrace(7, 48, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	fleet := []ClusterOption{
		WithFleet(SystemHILOS, 2, 8),
		WithFleet(SystemFlexDRAM, 1, 0),
		WithFleet(SystemInstInfer, 1, 8),
		WithAdmission(8, 30),
	}

	run := func(p DispatchPolicy) ClusterSummary {
		s, err := Cluster(m, reqs, append(fleet, WithDispatchPolicy(p))...)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	ll := run(DispatchLeastLoaded)
	if ll.Completed == 0 || ll.MakespanSec <= 0 {
		t.Fatalf("degenerate summary %+v", ll)
	}
	if len(ll.Pipelines) != 4 {
		t.Fatalf("fleet size %d, want 4", len(ll.Pipelines))
	}
	if ll.DelayP50Sec > ll.DelayP95Sec || ll.DelayP95Sec > ll.DelayP99Sec {
		t.Errorf("delay percentiles not monotone: %v/%v/%v", ll.DelayP50Sec, ll.DelayP95Sec, ll.DelayP99Sec)
	}
	if ll.TotalCostUSD <= 0 || ll.TotalEnergyJ <= 0 {
		t.Errorf("missing attribution: cost %v, energy %v", ll.TotalCostUSD, ll.TotalEnergyJ)
	}

	// Determinism across repeated facade calls.
	again := run(DispatchLeastLoaded)
	if !reflect.DeepEqual(ll, again) {
		t.Fatal("repeated cluster runs differ")
	}

	// Cost-aware dispatch must route differently from load balancing on
	// this fleet (the cheap DRAM baseline attracts short batches).
	cf := run(DispatchCheapestFeasible)
	same := true
	for i := range ll.Assignments {
		if ll.Assignments[i].Pipeline != cf.Assignments[i].Pipeline {
			same = false
			break
		}
	}
	if same {
		t.Error("least-loaded and cheapest-feasible produced identical assignments")
	}
	if cf.TotalCostUSD >= ll.TotalCostUSD {
		t.Errorf("cheapest-feasible cost $%.4f not below least-loaded $%.4f",
			cf.TotalCostUSD, ll.TotalCostUSD)
	}
	if cf.OutputTokens != ll.OutputTokens {
		t.Errorf("policies completed different work: %d vs %d tokens", cf.OutputTokens, ll.OutputTokens)
	}
}

func TestClusterDefaultsAndErrors(t *testing.T) {
	m, _ := ModelByName("OPT-30B")
	reqs, err := NewTimedWorkloadTrace(3, 12, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Default fleet: 2× HILOS + 1 DRAM baseline.
	s, err := Cluster(m, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Pipelines) != 3 {
		t.Errorf("default fleet size %d, want 3", len(s.Pipelines))
	}
	if _, err := Cluster(m, reqs, WithFleet("no-such-system", 1, 0)); err == nil {
		t.Error("unknown system accepted")
	}
	if _, err := Cluster(m, reqs, WithFleet(SystemHILOS, 0, 8)); err == nil {
		t.Error("zero count accepted")
	}
	if _, err := Cluster(m, reqs, WithAdmission(0, 1)); err == nil {
		t.Error("zero batch accepted")
	}
	if _, err := Cluster(m, reqs, WithAdmission(1, -1)); err == nil {
		t.Error("negative wait accepted")
	}
	if _, err := Cluster(m, reqs, WithMaxBacklog(-1)); err == nil {
		t.Error("negative backlog accepted")
	}
	if _, err := Cluster(m, reqs, WithDispatchPolicy("vibes")); err == nil {
		t.Error("unknown policy accepted")
	}
	if _, err := Cluster(m, nil); err == nil {
		t.Error("empty trace accepted")
	}
}

func TestArrivalTraceRoundTripFacade(t *testing.T) {
	reqs, err := NewTimedWorkloadTrace(5, 20, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteArrivalTrace(&buf, reqs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadArrivalTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(reqs, back) {
		t.Error("arrival trace did not round-trip through CSV")
	}
}
