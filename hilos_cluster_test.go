package hilos

import (
	"bytes"
	"reflect"
	"testing"
)

// Acceptance: a mixed fleet (two distinct engine systems plus the InstInfer
// tier) drains a timestamped trace deterministically, reporting makespan,
// delay percentiles and per-pipeline cost/energy attribution — and
// least-loaded vs cheapest-feasible produce different assignments.
func TestClusterMixedFleet(t *testing.T) {
	m, err := ModelByName("OPT-30B")
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := NewTimedWorkloadTrace(7, 48, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	fleet := []ClusterOption{
		WithFleet(SystemHILOS, 2, 8),
		WithFleet(SystemFlexDRAM, 1, 0),
		WithFleet(SystemInstInfer, 1, 8),
		WithAdmission(8, 30),
	}

	run := func(p DispatchPolicy) ClusterSummary {
		s, err := Cluster(m, reqs, append(fleet, WithDispatchPolicy(p))...)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	ll := run(DispatchLeastLoaded)
	if ll.Completed == 0 || ll.MakespanSec <= 0 {
		t.Fatalf("degenerate summary %+v", ll)
	}
	if len(ll.Pipelines) != 4 {
		t.Fatalf("fleet size %d, want 4", len(ll.Pipelines))
	}
	if ll.DelayP50Sec > ll.DelayP95Sec || ll.DelayP95Sec > ll.DelayP99Sec {
		t.Errorf("delay percentiles not monotone: %v/%v/%v", ll.DelayP50Sec, ll.DelayP95Sec, ll.DelayP99Sec)
	}
	if ll.TotalCostUSD <= 0 || ll.TotalEnergyJ <= 0 {
		t.Errorf("missing attribution: cost %v, energy %v", ll.TotalCostUSD, ll.TotalEnergyJ)
	}

	// Determinism across repeated facade calls.
	again := run(DispatchLeastLoaded)
	if !reflect.DeepEqual(ll, again) {
		t.Fatal("repeated cluster runs differ")
	}

	// Cost-aware dispatch must route differently from load balancing on
	// this fleet (the cheap DRAM baseline attracts short batches).
	cf := run(DispatchCheapestFeasible)
	same := true
	for i := range ll.Assignments {
		if ll.Assignments[i].Pipeline != cf.Assignments[i].Pipeline {
			same = false
			break
		}
	}
	if same {
		t.Error("least-loaded and cheapest-feasible produced identical assignments")
	}
	if cf.TotalCostUSD >= ll.TotalCostUSD {
		t.Errorf("cheapest-feasible cost $%.4f not below least-loaded $%.4f",
			cf.TotalCostUSD, ll.TotalCostUSD)
	}
	if cf.OutputTokens != ll.OutputTokens {
		t.Errorf("policies completed different work: %d vs %d tokens", cf.OutputTokens, ll.OutputTokens)
	}
}

func TestClusterDefaultsAndErrors(t *testing.T) {
	m, _ := ModelByName("OPT-30B")
	reqs, err := NewTimedWorkloadTrace(3, 12, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Default fleet: 2× HILOS + 1 DRAM baseline.
	s, err := Cluster(m, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Pipelines) != 3 {
		t.Errorf("default fleet size %d, want 3", len(s.Pipelines))
	}
	if _, err := Cluster(m, reqs, WithFleet("no-such-system", 1, 0)); err == nil {
		t.Error("unknown system accepted")
	}
	if _, err := Cluster(m, reqs, WithFleet(SystemHILOS, 0, 8)); err == nil {
		t.Error("zero count accepted")
	}
	if _, err := Cluster(m, reqs, WithAdmission(0, 1)); err == nil {
		t.Error("zero batch accepted")
	}
	if _, err := Cluster(m, reqs, WithAdmission(1, -1)); err == nil {
		t.Error("negative wait accepted")
	}
	if _, err := Cluster(m, reqs, WithMaxBacklog(-1)); err == nil {
		t.Error("negative backlog accepted")
	}
	if _, err := Cluster(m, reqs, WithDispatchPolicy("vibes")); err == nil {
		t.Error("unknown policy accepted")
	}
	if _, err := Cluster(m, nil); err == nil {
		t.Error("empty trace accepted")
	}
}

// Acceptance: with preemption enabled on a mixed online/offline trace, the
// online priority class's p99 queueing delay is strictly lower than under
// the FIFO baseline at equal fleet and policy; offline work is displaced,
// not dropped, and its slowdown stays bounded.
func TestClusterPreemptionBeatsFIFOForOnlineClass(t *testing.T) {
	m, err := ModelByName("OPT-30B")
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := NewOnlineOfflineTrace(21, 24, 40, 0.4, 0.5, 120)
	if err != nil {
		t.Fatal(err)
	}
	fleet := []ClusterOption{
		WithFleet(SystemHILOS, 2, 8),
		WithFleet(SystemFlexDRAM, 1, 0),
		WithAdmission(8, 90),
		WithDispatchPolicy(DispatchLeastLoaded),
	}
	fifo, err := Cluster(m, reqs, fleet...)
	if err != nil {
		t.Fatal(err)
	}
	pre, err := Cluster(m, reqs, append(fleet, WithPreemption())...)
	if err != nil {
		t.Fatal(err)
	}

	onFIFO, ok := fifo.PriorityByClass(1)
	if !ok {
		t.Fatalf("FIFO run lost the online class: %+v", fifo.PerPriority)
	}
	onPre, ok := pre.PriorityByClass(1)
	if !ok {
		t.Fatalf("preemptive run lost the online class: %+v", pre.PerPriority)
	}
	if onPre.DelayP99Sec >= onFIFO.DelayP99Sec {
		t.Errorf("online p99 %.1fs under preemption not strictly below FIFO %.1fs",
			onPre.DelayP99Sec, onFIFO.DelayP99Sec)
	}
	if onPre.DeadlineMisses > onFIFO.DeadlineMisses {
		t.Errorf("preemption increased online deadline misses: %d vs %d",
			onPre.DeadlineMisses, onFIFO.DeadlineMisses)
	}

	// Offline degradation is bounded: every offline job still completes
	// (displaced, never dropped) and the total makespan stays within 2× of
	// the FIFO schedule's.
	offFIFO, _ := fifo.PriorityByClass(0)
	offPre, _ := pre.PriorityByClass(0)
	if offPre.Completed != offFIFO.Completed {
		t.Errorf("preemption lost offline work: %d completed vs %d", offPre.Completed, offFIFO.Completed)
	}
	if pre.OutputTokens != fifo.OutputTokens {
		t.Errorf("token totals differ: %d vs %d", pre.OutputTokens, fifo.OutputTokens)
	}
	if pre.MakespanSec > 2*fifo.MakespanSec {
		t.Errorf("offline slowdown unbounded: makespan %.0fs vs FIFO %.0fs",
			pre.MakespanSec, fifo.MakespanSec)
	}
	t.Logf("online p99: FIFO %.1fs → preempt %.1fs; makespan %.0fs → %.0fs; preempted %d jobs",
		onFIFO.DelayP99Sec, onPre.DelayP99Sec, fifo.MakespanSec, pre.MakespanSec, pre.PreemptedJobs)

	// Determinism across repeated facade calls with every extension on.
	all := append(fleet, WithPreemption(), WithContinuousBatching())
	first, err := Cluster(m, reqs, all...)
	if err != nil {
		t.Fatal(err)
	}
	again, err := Cluster(m, reqs, all...)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, again) {
		t.Fatal("repeated preemptive+continuous cluster runs differ")
	}
}

// WithPriorityClasses stamps a plain trace declaratively, equivalent to
// hand-tagging the requests.
func TestClusterPriorityClassStamping(t *testing.T) {
	m, _ := ModelByName("OPT-30B")
	reqs, err := NewTimedWorkloadTrace(9, 24, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	opts := []ClusterOption{
		WithAdmission(4, 30),
		WithPriorityClasses(PriorityClass{Class: "Short", Priority: 1, DeadlineSec: 20}),
		WithPreemption(),
	}
	s, err := Cluster(m, reqs, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.PriorityByClass(1); !ok {
		t.Fatalf("stamped online class missing: %+v", s.PerPriority)
	}
	// The input trace must not be mutated by the stamping.
	for _, r := range reqs {
		if r.Priority != 0 || r.DeadlineSec != 0 {
			t.Fatalf("caller's trace was mutated: %+v", r)
		}
	}
	// Hand-stamping must agree with the option.
	tagged := make([]TimedRequest, len(reqs))
	copy(tagged, reqs)
	for i := range tagged {
		if tagged[i].Class.Name == "Short" {
			tagged[i].Priority = 1
			tagged[i].DeadlineSec = 20
		}
	}
	byHand, err := Cluster(m, tagged, WithAdmission(4, 30), WithPreemption())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, byHand) {
		t.Error("WithPriorityClasses disagrees with hand-stamped requests")
	}

	if _, err := Cluster(m, reqs, WithPriorityClasses()); err == nil {
		t.Error("empty rule list accepted")
	}
	if _, err := Cluster(m, reqs, WithPriorityClasses(PriorityClass{Class: "Short", Priority: -1})); err == nil {
		t.Error("negative priority accepted")
	}
	if _, err := Cluster(m, reqs, WithPriorityClasses(PriorityClass{Class: "Short", DeadlineSec: -2})); err == nil {
		t.Error("negative deadline accepted")
	}
}

// The bursty generator wires through the facade and produces a valid,
// deterministic cluster trace.
func TestWorkloadTraceArrivalProcesses(t *testing.T) {
	for _, p := range ArrivalProcesses() {
		reqs, err := NewWorkloadTraceWithArrivals(3, 16, 2, p)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if len(reqs) != 16 {
			t.Fatalf("%s: %d requests, want 16", p, len(reqs))
		}
		again, err := NewWorkloadTraceWithArrivals(3, 16, 2, p)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(reqs, again) {
			t.Errorf("%s: trace not deterministic per seed", p)
		}
	}
	if _, err := NewWorkloadTraceWithArrivals(3, 16, 2, "sawtooth"); err == nil {
		t.Error("unknown arrival process accepted")
	}
}

// Scheduling metadata survives the CSV round trip through the facade.
func TestOnlineOfflineTraceRoundTrip(t *testing.T) {
	reqs, err := NewOnlineOfflineTrace(5, 8, 12, 1.0, 1.5, 30)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteArrivalTrace(&buf, reqs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadArrivalTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(reqs, back) {
		t.Error("online/offline trace did not round-trip through CSV")
	}
	online := 0
	for _, r := range back {
		if r.Priority == 1 {
			online++
			if r.DeadlineSec != 30 {
				t.Errorf("online request lost its deadline: %+v", r)
			}
		}
	}
	if online != 8 {
		t.Errorf("%d online requests after round trip, want 8", online)
	}
}

func TestArrivalTraceRoundTripFacade(t *testing.T) {
	reqs, err := NewTimedWorkloadTrace(5, 20, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteArrivalTrace(&buf, reqs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadArrivalTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(reqs, back) {
		t.Error("arrival trace did not round-trip through CSV")
	}
}

// Robustness facade: WithFaults with a zero-value plan is bit-identical to
// no faults at all; a real fail-stop schedule kills and recovers work with
// nothing lost; and the InstInfer tier absorbs degraded traffic once the
// exact pipelines wear out.
func TestClusterWithFaults(t *testing.T) {
	m, err := ModelByName("OPT-30B")
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := NewTimedWorkloadTrace(11, 32, 1)
	if err != nil {
		t.Fatal(err)
	}
	fleet := []ClusterOption{
		WithFleet(SystemHILOS, 2, 8),
		WithFleet(SystemInstInfer, 1, 8),
		WithAdmission(8, 30),
		WithDispatchPolicy(DispatchLeastLoaded),
	}

	plain, err := Cluster(m, reqs, fleet...)
	if err != nil {
		t.Fatal(err)
	}
	empty, err := Cluster(m, reqs, append(append([]ClusterOption{}, fleet...), WithFaults(FaultPlan{Seed: 3}))...)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, empty) {
		t.Fatal("empty fault plan changed the summary")
	}

	schedule, err := GenerateFailStops(3, 3, plain.MakespanSec, plain.MakespanSec/4, 120)
	if err != nil {
		t.Fatal(err)
	}
	faulty, err := Cluster(m, reqs, append(append([]ClusterOption{}, fleet...),
		WithFaults(FaultPlan{Seed: 3, Events: schedule, TransientProb: 0.1}))...)
	if err != nil {
		t.Fatal(err)
	}
	if faulty.Admitted != faulty.Completed+faulty.FailedJobs {
		t.Fatalf("jobs lost under faults: admitted %d, completed %d, failed %d",
			faulty.Admitted, faulty.Completed, faulty.FailedJobs)
	}
	if faulty.FaultsInjected == 0 {
		t.Fatalf("no faults fired from schedule %v", schedule)
	}
	again, err := Cluster(m, reqs, append(append([]ClusterOption{}, fleet...),
		WithFaults(FaultPlan{Seed: 3, Events: schedule, TransientProb: 0.1}))...)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(faulty, again) {
		t.Fatal("faulty replay is not deterministic")
	}

	// A custom retry policy is honored: zero retries make the first
	// transient error terminal.
	strict, err := Cluster(m, reqs, append(append([]ClusterOption{}, fleet...),
		WithFaults(FaultPlan{Seed: 3, TransientProb: 1}),
		WithRetryPolicy(ClusterRetryPolicy{}))...)
	if err != nil {
		t.Fatal(err)
	}
	if strict.Completed != 0 || strict.RetriedBatches != 0 || strict.FailedJobs != strict.Admitted {
		t.Fatalf("zero-retry policy not honored: %+v", strict)
	}
}
