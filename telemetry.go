package hilos

import (
	"io"
	"net/http"

	"repro/internal/cluster"
	"repro/internal/repcache"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Telemetry-facing re-exports. The observability layer is zero-dependency
// and strictly passive: metrics and events never feed back into
// scheduling, timestamps are simulated-clock seconds, and a nil sink
// anywhere is a no-op — see the Observability section of the package
// documentation for the determinism contract and metric names.
type (
	// MetricsRegistry holds named counters, gauges and fixed-bucket
	// histograms; Snapshot() serializes them deterministically.
	MetricsRegistry = telemetry.Registry
	// MetricsSnapshot is a point-in-time copy of every registered metric.
	MetricsSnapshot = telemetry.Snapshot
	// EventStream fans simulated-clock events out to bounded subscribers
	// without ever blocking the publisher; overflow is counted, not
	// buffered.
	EventStream = telemetry.Stream
	// TelemetryEvent is one simulated-clock observation on an EventStream.
	TelemetryEvent = telemetry.Event
	// TelemetrySubscriber receives events from an EventStream.
	TelemetrySubscriber = telemetry.Subscriber
	// ClusterTelemetry is the cluster scheduler's instrumentation sink;
	// pass it via WithClusterTelemetry.
	ClusterTelemetry = cluster.Telemetry
)

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return telemetry.NewRegistry() }

// NewEventStream returns an event stream with no subscribers.
func NewEventStream() *EventStream { return telemetry.NewStream() }

// NewClusterTelemetry binds a cluster instrumentation sink to a registry
// and/or event stream; either may be nil, both nil returns a disabled
// (nil) sink.
func NewClusterTelemetry(reg *MetricsRegistry, stream *EventStream) *ClusterTelemetry {
	return cluster.NewTelemetry(reg, stream)
}

// EnableSimTelemetry installs a process-wide sink for the discrete-event
// engines underneath every system simulation: scheduled-task counts,
// resource busy seconds, and (with a stream) per-task events. Both nil
// uninstalls. Applies to simulations started after the call.
func EnableSimTelemetry(reg *MetricsRegistry, stream *EventStream) {
	sim.EnableTelemetry(reg, stream)
}

// EnableCacheMetrics wires the process-wide report cache's hit, miss and
// singleflight-coalesced counters into reg; nil disables them again.
func EnableCacheMetrics(reg *MetricsRegistry) { repcache.EnableMetrics(reg) }

// TelemetryHandler serves live stats over HTTP: GET /metrics returns the
// registry snapshot plus stream accounting as JSON, GET /events streams
// newline-delimited JSON events as they are published (bounded per-client
// buffers; laggards drop events rather than slow the publisher).
func TelemetryHandler(reg *MetricsRegistry, stream *EventStream) http.Handler {
	return telemetry.Handler(reg, stream)
}

// WriteClusterTrace serializes a cluster run's batch schedule as Chrome
// trace-event JSON — one lane per pipeline, one span per placed batch —
// loadable at chrome://tracing or in Perfetto.
func WriteClusterTrace(w io.Writer, s ClusterSummary, label string) error {
	return trace.WriteClusterChrome(w, s, label)
}
