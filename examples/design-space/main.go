// Design-space exploration: sweep the HILOS configuration knobs — device
// count, X-cache ratio α and spill interval c — for a workload, and check
// that the §4.2 cache scheduler's closed-form α matches the empirical
// optimum of the sweep. Each sweep point is one functional-options
// configuration of the simulator.
package main

import (
	"fmt"
	"log"

	hilos "repro"
)

func main() {
	m, err := hilos.ModelByName("OPT-30B")
	if err != nil {
		log.Fatal(err)
	}
	req := hilos.Request{Model: m, Batch: 16, Context: 32 * 1024, OutputLen: 64}

	fmt.Printf("design space for %s, bs=%d, s=%d (tok/s)\n\n", m.Name, req.Batch, req.Context)
	alphas := []float64{0, 0.125, 0.25, 0.5, 0.75}
	spills := []int{4, 16, 64}
	scheduler := hilos.Must(hilos.New())

	for _, devices := range []int{4, 8, 16} {
		fmt.Printf("--- %d SmartSSDs ---\n", devices)
		fmt.Printf("%8s", "alpha\\c")
		for _, c := range spills {
			fmt.Printf("%10d", c)
		}
		fmt.Println()

		bestT, bestAlpha, bestC := 0.0, 0.0, 0
		for _, a := range alphas {
			fmt.Printf("%7.1f%%", 100*a)
			for _, c := range spills {
				sim, err := hilos.New(
					hilos.WithDevices(devices),
					hilos.WithAlpha(a),
					hilos.WithSpillInterval(c),
				)
				if err != nil {
					log.Fatal(err)
				}
				rep, err := sim.Simulate(hilos.SystemHILOS, req)
				if err != nil {
					log.Fatal(err)
				}
				t := rep.DecodeTokPerSec()
				fmt.Printf("%10.3f", t)
				if t > bestT {
					bestT, bestAlpha, bestC = t, a, c
				}
			}
			fmt.Println()
		}
		auto, err := scheduler.ChooseAlpha(m, req.Batch, req.Context, devices)
		if err != nil {
			log.Fatal(err)
		}
		match := "matches"
		if auto != bestAlpha {
			match = fmt.Sprintf("differs from sweep optimum %.0f%%", 100*bestAlpha)
		}
		fmt.Printf("sweep best: α=%.0f%% c=%d (%.3f tok/s); scheduler picks α=%.0f%% (%s)\n\n",
			100*bestAlpha, bestC, bestT, 100*auto, match)
	}
}
