// Chaos replay: the robustness story in one run. A mixed fleet — two exact
// NSP hosts and one lossy InstInfer tier — drains the same trace three
// times: clean, under a deterministic fault plan (fail-stops, a straggler
// window, transient errors, a flash endurance budget), and under the same
// plan again. The middle run shows the recovery layer working — retries
// with backoff, failover off dead pipelines, degraded dispatch onto the
// lossy tier — and the two fault runs are bit-identical: chaos here is a
// replayable schedule, not a dice roll.
package main

import (
	"fmt"
	"log"
	"reflect"

	hilos "repro"
)

func main() {
	m, err := hilos.ModelByName("OPT-30B")
	if err != nil {
		log.Fatal(err)
	}
	reqs, err := hilos.NewTimedWorkloadTrace(29, 40, 1.2)
	if err != nil {
		log.Fatal(err)
	}
	fleet := []hilos.ClusterOption{
		hilos.WithFleet(hilos.SystemHILOS, 2, 8),
		hilos.WithFleet(hilos.SystemInstInfer, 1, 16),
		hilos.WithAdmission(8, 30),
		hilos.WithDispatchPolicy(hilos.DispatchLeastLoaded),
	}

	run := func(extra ...hilos.ClusterOption) hilos.ClusterSummary {
		s, err := hilos.Cluster(m, reqs, append(append([]hilos.ClusterOption{}, fleet...), extra...)...)
		if err != nil {
			log.Fatal(err)
		}
		return s
	}

	clean := run()

	// The fault plan: pipeline 0 crashes twice mid-run, pipeline 1 limps at
	// 3x service time for ten minutes, every batch carries a 10% transient
	// error probability, and the exact tiers each get a 4 GB flash
	// endurance budget — enough that sustained KV spill traffic wears one
	// out before the trace ends.
	plan := hilos.FaultPlan{
		Seed: 29,
		Events: []hilos.FaultEvent{
			{Kind: hilos.FaultFailStop, Pipeline: 0, AtSec: clean.MakespanSec * 0.2, DurationSec: 300},
			{Kind: hilos.FaultFailStop, Pipeline: 0, AtSec: clean.MakespanSec * 0.7, DurationSec: 300},
			{Kind: hilos.FaultStraggler, Pipeline: 1, AtSec: clean.MakespanSec * 0.3, DurationSec: 600, Factor: 3},
			{Kind: hilos.FaultWearOut, Pipeline: 0, BudgetBytes: 4e9},
			{Kind: hilos.FaultWearOut, Pipeline: 1, BudgetBytes: 4e9},
		},
		TransientProb: 0.1,
	}
	chaos := run(hilos.WithFaults(plan))
	replay := run(hilos.WithFaults(plan))

	fmt.Printf("trace: %d requests, model %s, fleet 2x %s + 1x %s (lossy)\n\n",
		len(reqs), m.Name, hilos.SystemHILOS, hilos.SystemInstInfer)
	fmt.Printf("  %-12s %12s %10s %10s %10s %10s %10s\n",
		"run", "makespan (s)", "completed", "failed", "retried", "degraded", "faults")
	for _, row := range []struct {
		name string
		s    hilos.ClusterSummary
	}{{"clean", clean}, {"chaos", chaos}, {"replay", replay}} {
		fmt.Printf("  %-12s %12.1f %10d %10d %10d %10d %10d\n",
			row.name, row.s.MakespanSec, row.s.Completed, row.s.FailedJobs,
			row.s.RetriedBatches, row.s.DegradedJobs, row.s.FaultsInjected)
	}

	// The robustness layer's two contracts, checked the same way the
	// property tests pin them.
	if lost := chaos.Admitted - chaos.Completed - chaos.FailedJobs; lost != 0 {
		log.Fatalf("job conservation broken: %d jobs lost", lost)
	}
	if !reflect.DeepEqual(chaos, replay) {
		log.Fatal("chaos replay diverged: fault injection is not deterministic")
	}
	fmt.Println("\njob conservation holds: every admitted request completed or failed")
	fmt.Println("terminally — none vanished. And both fault runs are bit-identical:")
	fmt.Println("the fault plan is a schedule, so failures replay exactly.")

	for _, ps := range chaos.Pipelines {
		if ps.Faults == 0 && !ps.WearOut {
			continue
		}
		fmt.Printf("  %-14s absorbed %d faults", ps.Name, ps.Faults)
		if ps.WearOut {
			fmt.Printf(", then wore out at %.0f GB written", ps.WriteBytes/1e9)
		}
		fmt.Println()
	}
}
