// Offline-summarization walkthrough: the paper motivates HILOS with offline
// workloads like book-length summarization and large-scale information
// extraction (§1). This example pushes a trace of mixed-length extraction
// requests through three systems and compares completion time, energy and
// hardware cost per million generated tokens, then scales the winning
// deployment out to several pipelines draining the same backlog.
package main

import (
	"fmt"
	"log"

	hilos "repro"
)

// batchFor groups a request class into the fixed offline batch the systems
// run (the paper's default batch of 16 long-context sequences).
func batchFor(m hilos.Model, class hilos.RequestClass) hilos.Request {
	return hilos.Request{Model: m, Batch: 16, Context: class.Input, OutputLen: class.Output}
}

func main() {
	// One simulator configures the hardware point for every system:
	// baselines ignore the SmartSSD count.
	sim, err := hilos.New(hilos.WithDevices(16))
	if err != nil {
		log.Fatal(err)
	}
	m, err := hilos.ModelByName("OPT-66B")
	if err != nil {
		log.Fatal(err)
	}

	// A deterministic trace of 200 extraction jobs: 60% short tickets, 30%
	// medium documents, 10% book-length inputs (§6.6's Azure-like mix).
	trace, err := hilos.NewWorkloadTrace(7, 200)
	if err != nil {
		log.Fatal(err)
	}
	counts := map[string]int{}
	for _, c := range trace {
		counts[c.Name]++
	}
	fmt.Printf("trace: %d jobs (%d short / %d medium / %d long), model %s\n\n",
		len(trace), counts["Short"], counts["Medium"], counts["Long"], m.Name)

	type system struct {
		id       hilos.System
		smartSSD int // SmartSSD count for the energy model (0 = plain SSDs)
	}
	systems := []system{
		{hilos.SystemFlexSSD, 0},
		{hilos.SystemFlexDRAM, 0},
		{hilos.SystemHILOS, 16},
	}

	fmt.Printf("%-24s %14s %14s %16s\n", "system", "completion (h)", "kWh total", "J per out-token")
	for _, s := range systems {
		var totalSec, totalJ, outTokens float64
		feasible := true
		for _, class := range trace {
			rep, err := sim.Simulate(s.id, batchFor(m, class))
			if err != nil {
				log.Fatal(err)
			}
			if rep.OOM {
				feasible = false
				break
			}
			// Each trace entry is one batch-of-16 job.
			totalSec += rep.TotalSec(class.Output)
			outTokens += float64(rep.Batch * class.Output)
			eb, err := sim.Energy(rep, s.smartSSD)
			if err != nil {
				log.Fatal(err)
			}
			totalJ += eb.Total() * float64(rep.Batch*class.Output)
		}
		if !feasible {
			fmt.Printf("%-24s %14s\n", string(s.id), "OOM")
			continue
		}
		fmt.Printf("%-24s %14.1f %14.1f %16.1f\n",
			string(s.id), totalSec/3600, totalJ/3.6e6, totalJ/outTokens)
	}

	// The mix above is short-dominated; HILOS's advantage concentrates in
	// the long-context tail (the workloads the paper targets). Show it.
	fmt.Println("\nlong-context jobs only (I:8K/O:350):")
	long := hilos.RequestClasses()[2]
	for _, s := range systems {
		rep, err := sim.Simulate(s.id, batchFor(m, long))
		if err != nil || rep.OOM {
			fmt.Printf("  %-24s OOM\n", string(s.id))
			continue
		}
		eb, err := sim.Energy(rep, s.smartSSD)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-24s %8.2f h/job  %8.1f J per out-token\n",
			string(s.id), rep.TotalSec(long.Output)/3600, eb.Total())
	}

	// Scale out: the same backlog drained by 1, 2 and 4 HILOS pipelines
	// (e.g. four SmartSSD hosts). Makespan is the maximum pipeline load;
	// token totals are identical by construction.
	fmt.Println("\nscaling the HILOS deployment over the shared backlog (batch 16):")
	fmt.Printf("  %-10s %14s %14s %10s\n", "pipelines", "makespan (h)", "tok/s", "speedup")
	var base float64
	for _, p := range []int{1, 2, 4} {
		deploy, err := hilos.New(hilos.WithDevices(16), hilos.WithPipelines(p))
		if err != nil {
			log.Fatal(err)
		}
		sum, err := deploy.Backlog(m, trace, 16, hilos.SystemHILOS)
		if err != nil {
			log.Fatal(err)
		}
		if p == 1 {
			base = sum.MakespanSec
		}
		fmt.Printf("  %-10d %14.2f %14.1f %9.2fx\n",
			p, sum.MakespanSec/3600, sum.Throughput(), base/sum.MakespanSec)
	}

	fmt.Println("\nHILOS finishes the backlog first; its energy advantage appears in the")
	fmt.Println("long-context regime the paper targets, while short prompts remain")
	fmt.Println("cheapest on the DRAM baseline (the Fig. 16/17 trade-off).")
}
