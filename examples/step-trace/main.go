// Step-trace walkthrough: export the simulated HILOS decoding step as a
// Chrome trace (open at chrome://tracing or in Perfetto) and print a
// per-resource lane summary showing where the step's time goes — the flash
// stream, the GDS X-cache path, the uplink and the GPU.
package main

import (
	"fmt"
	"log"
	"os"
	"sort"

	hilos "repro"
	"repro/internal/trace"
)

func main() {
	sim, err := hilos.New(hilos.WithDevices(8))
	if err != nil {
		log.Fatal(err)
	}
	m, err := hilos.ModelByName("OPT-66B")
	if err != nil {
		log.Fatal(err)
	}
	req := hilos.Request{Model: m, Batch: 16, Context: 32 * 1024, OutputLen: 64}
	rep, err := sim.Simulate(hilos.SystemHILOS, req)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("HILOS decode step: %.3f s (%d scheduled tasks)\n\n", rep.StepSec, len(rep.Trace))
	fmt.Printf("%-12s %8s %12s %12s\n", "lane", "tasks", "busy (s)", "utilization")
	summary := trace.Summary(rep.Trace)
	var lanes []string
	for l := range summary {
		lanes = append(lanes, l)
	}
	sort.Strings(lanes)
	for _, l := range lanes {
		s := summary[l]
		fmt.Printf("%-12s %8d %12.3f %11.1f%%\n", l, s.Tasks, s.Busy, 100*s.Busy/rep.StepSec)
	}

	out := "hilos-step-trace.json"
	f, err := os.Create(out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := trace.WriteChrome(f, rep.Trace, "HILOS OPT-66B 32K bs16"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwrote %s — open it at chrome://tracing to see the pipeline.\n", out)
}
