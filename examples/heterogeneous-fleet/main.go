// Heterogeneous-fleet walkthrough: the paper prices one HILOS host against
// one baseline server (§6.6), but a production deployment mixes tiers —
// exact NSP hosts for the long-context tail, a cheap DRAM baseline for
// short prompts, and an approximate InstInfer tier in between. This example
// drains one trace-driven workload through such a fleet under each dispatch
// policy and shows where every policy sends the work, what it costs, and
// what happens when a burst exceeds the admission backlog.
package main

import (
	"fmt"
	"log"

	hilos "repro"
)

func main() {
	m, err := hilos.ModelByName("OPT-30B")
	if err != nil {
		log.Fatal(err)
	}

	// A timestamped trace: 96 requests arriving as a Poisson process at 0.8
	// req/s, drawn from the Azure-like mix (60% short, 30% medium, 10%
	// long-context). Deterministic per seed.
	reqs, err := hilos.NewTimedWorkloadTrace(7, 96, 0.8)
	if err != nil {
		log.Fatal(err)
	}
	last := reqs[len(reqs)-1].ArrivalSec
	fmt.Printf("trace: %d requests over %.0f s (%.2f req/s), model %s\n\n",
		len(reqs), last, float64(len(reqs))/last, m.Name)

	// The fleet mixes three engine tiers. Prices come from the §6.6 bill of
	// materials amortized over three years; energy from the Fig. 17(a)
	// model.
	fleet := []hilos.ClusterOption{
		hilos.WithFleet(hilos.SystemHILOS, 2, 8),     // exact NSP, fast on long contexts
		hilos.WithFleet(hilos.SystemFlexDRAM, 1, 0),  // cheapest hardware, DRAM-bound
		hilos.WithFleet(hilos.SystemInstInfer, 1, 8), // lossy 1/8 retrieval middle tier
		hilos.WithAdmission(8, 30),                   // batch up to 8/class, ≤30 s wait
	}

	fmt.Println("policy comparison (same trace, same fleet):")
	fmt.Printf("  %-18s %12s %9s %22s %10s\n", "policy", "makespan (h)", "tok/s", "delay p50/p95/p99 (s)", "cost ($)")
	for _, p := range hilos.DispatchPolicies() {
		s, err := hilos.Cluster(m, reqs, append(fleet, hilos.WithDispatchPolicy(p))...)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-18s %12.2f %9.1f %8.0f/%5.0f/%5.0f %10.4f\n",
			s.Policy, s.MakespanSec/3600, s.Throughput(),
			s.DelayP50Sec, s.DelayP95Sec, s.DelayP99Sec, s.TotalCostUSD)
		for _, ps := range s.Pipelines {
			if ps.Batches == 0 {
				continue
			}
			fmt.Printf("      %-16s %3d batches  util %5.1f%%  $%.4f  %.0f kJ\n",
				ps.Name, ps.Batches, 100*ps.Utilization, ps.CostUSD, ps.EnergyJ/1e3)
		}
	}

	fmt.Println("\nleast-loaded balances queues; cheapest-feasible concentrates work on")
	fmt.Println("the cheapest adequate tier (lower $, longer makespan); fastest-eta")
	fmt.Println("buys back completion time wherever the ETA is best.")

	// Online admission: quadruple the arrival rate and cap the backlog.
	// Requests beyond the cap are rejected instead of queueing unboundedly —
	// the online/offline mix the ROADMAP calls for.
	burst, err := hilos.NewTimedWorkloadTrace(11, 96, 4.0)
	if err != nil {
		log.Fatal(err)
	}
	s, err := hilos.Cluster(m, burst, append(fleet,
		hilos.WithDispatchPolicy(hilos.DispatchFastestETA),
		hilos.WithMaxBacklog(24),
	)...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nburst at 4 req/s with a 24-request backlog cap (fastest-eta):\n")
	fmt.Printf("  admitted %d / rejected %d of %d; makespan %.2f h; delay p99 %.0f s\n",
		s.Admitted, s.RejectedJobs, s.Requests, s.MakespanSec/3600, s.DelayP99Sec)
}
