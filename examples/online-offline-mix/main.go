// Online/offline co-scheduling walkthrough: the paper's economics hold only
// if the near-storage tier absorbs offline work *without* starving
// latency-sensitive traffic. This example drains one mixed trace — an
// online tier of Short requests with a start-deadline budget, over an
// offline backlog of Medium/Long work — through the same fleet under three
// schedulers: the FIFO baseline (batches close at admission, run to
// completion), deadline-aware preemption, and preemption plus continuous
// batching. The online class's p99 queueing delay collapses while the
// offline backlog still completes in full, a bounded makespan later.
package main

import (
	"fmt"
	"log"

	hilos "repro"
)

func main() {
	m, err := hilos.ModelByName("OPT-30B")
	if err != nil {
		log.Fatal(err)
	}

	// 24 online Short requests (priority 1, must start within 900 s of
	// arrival — a batch-inference SLO, not an interactive one: a single
	// long-context batch runs for minutes on this hardware) at 0.4 req/s,
	// over 40 offline Medium/Long requests at 0.5 req/s. Deterministic per
	// seed.
	const deadline = 900.0
	reqs, err := hilos.NewOnlineOfflineTrace(21, 24, 40, 0.4, 0.5, deadline)
	if err != nil {
		log.Fatal(err)
	}
	online, offline := 0, 0
	for _, r := range reqs {
		if r.Priority > 0 {
			online++
		} else {
			offline++
		}
	}
	fmt.Printf("trace: %d online (deadline %.0f s) + %d offline requests, model %s\n\n",
		online, deadline, offline, m.Name)

	// Two NSP hosts plus a cheap DRAM baseline, least-loaded dispatch: the
	// same fleet for every scheduler, so only the scheduling changes.
	fleet := []hilos.ClusterOption{
		hilos.WithFleet(hilos.SystemHILOS, 2, 8),
		hilos.WithFleet(hilos.SystemFlexDRAM, 1, 0),
		hilos.WithAdmission(8, 90),
		hilos.WithDispatchPolicy(hilos.DispatchLeastLoaded),
	}

	schedulers := []struct {
		name string
		opts []hilos.ClusterOption
	}{
		{"fifo baseline", nil},
		{"preemption", []hilos.ClusterOption{hilos.WithPreemption()}},
		{"preempt+continuous", []hilos.ClusterOption{hilos.WithPreemption(), hilos.WithContinuousBatching()}},
	}

	fmt.Printf("  %-20s %14s %14s %10s %10s %10s\n",
		"scheduler", "online p99 (s)", "misses (of 24)", "preempted", "mksp (h)", "tok/s")
	var base hilos.ClusterSummary
	for i, sch := range schedulers {
		s, err := hilos.Cluster(m, reqs, append(append([]hilos.ClusterOption{}, fleet...), sch.opts...)...)
		if err != nil {
			log.Fatal(err)
		}
		if i == 0 {
			base = s
		}
		on, ok := s.PriorityByClass(1)
		if !ok {
			log.Fatalf("%s: online class missing from summary", sch.name)
		}
		fmt.Printf("  %-20s %14.1f %14d %10d %10.2f %10.1f\n",
			sch.name, on.DelayP99Sec, on.DeadlineMisses, s.PreemptedJobs,
			s.MakespanSec/3600, s.Throughput())
		if i > 0 && s.OutputTokens != base.OutputTokens {
			log.Fatalf("%s: offline work was lost (%d vs %d tokens)",
				sch.name, s.OutputTokens, base.OutputTokens)
		}
	}

	fmt.Println("\nWith preemption, an online request whose deadline expires forces its")
	fmt.Println("partial batch out immediately and evicts unstarted offline batches from")
	fmt.Println("the pipeline where it can start soonest; the evicted batches re-enqueue")
	fmt.Println("and re-run — the token totals above prove nothing is dropped. Continuous")
	fmt.Println("batching then lets a freed pipeline re-pack the oldest waiting work, so")
	fmt.Println("the offline backlog fills the gaps between online bursts.")
}
