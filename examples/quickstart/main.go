// Quickstart: simulate offline decoding of OPT-66B at a 64K context on the
// paper's testbed, comparing the FlexGen SSD baseline against HILOS with 16
// SmartSSDs, and print where the time goes.
//
// The API is a Simulator built with functional options plus a system
// registry: hilos.New configures the hardware point once, and any System
// identifier resolves to an Engine bound to it.
package main

import (
	"fmt"
	"log"

	hilos "repro"
)

func main() {
	sim, err := hilos.New(hilos.WithDevices(16))
	if err != nil {
		log.Fatal(err)
	}

	m, err := hilos.ModelByName("OPT-66B")
	if err != nil {
		log.Fatal(err)
	}
	req := hilos.Request{Model: m, Batch: 16, Context: 64 * 1024, OutputLen: 64}

	baselineRep, err := sim.Simulate(hilos.SystemFlexSSD, req)
	if err != nil {
		log.Fatal(err)
	}

	// Engines can also be resolved once and reused; Describe explains the
	// configuration behind the identifier.
	eng, err := sim.Engine(hilos.SystemHILOS)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("engine %q: %s\n\n", eng.Name(), eng.Describe())
	hilosRep := eng.Run(req)

	fmt.Printf("workload: %s, batch %d, context %d, generate %d tokens\n\n",
		m.Name, req.Batch, req.Context, req.OutputLen)
	fmt.Printf("%-24s %12s %14s %12s\n", "system", "tok/s", "KV I/O share", "CPU util")
	for _, r := range []hilos.Report{baselineRep, hilosRep} {
		fmt.Printf("%-24s %12.4f %13.1f%% %11.1f%%\n",
			r.System, r.DecodeTokPerSec(), 100*r.BreakdownShare("LoadKVCache"), 100*r.HostUtilCPU)
	}
	fmt.Printf("\nHILOS speedup over FLEX(SSD): %.2fx\n",
		hilosRep.DecodeTokPerSec()/baselineRep.DecodeTokPerSec())

	// The §4.2 cache scheduler picks the X-cache ratio automatically from
	// the bandwidth balance α = 2·B_PCI/(B_SSD + B_PCI).
	alpha, err := sim.ChooseAlpha(m, req.Batch, req.Context, 16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scheduler-selected X-cache ratio α = %.0f%%\n", 100*alpha)
}
