// Accuracy evaluation: reproduce the Fig. 18(c) comparison on the synthetic
// long-context retrieval suite — exact FlashAttention-style attention, the
// HILOS accelerator's blocked dataflow (lossless), and InstAttention-style
// 1/8 lossy KV retrieval.
package main

import (
	"fmt"
	"log"

	hilos "repro"
	"repro/internal/longbench"
)

func main() {
	const seed = 42
	fmt.Println("long-context retrieval accuracy (F1, %)")
	fmt.Printf("%-20s %14s %8s %12s %8s\n", "dataset", "FlashAttention", "HILOS", "lossy 1/8", "drop")

	var sumDrop float64
	tasks := hilos.AccuracySuite()
	for _, task := range tasks {
		exact, err := task.Score(seed, longbench.Exact)
		if err != nil {
			log.Fatal(err)
		}
		blocked, err := task.Score(seed, longbench.Blocked)
		if err != nil {
			log.Fatal(err)
		}
		lossy, err := task.Score(seed, longbench.LossyOneEighth)
		if err != nil {
			log.Fatal(err)
		}
		drop := exact - lossy
		sumDrop += drop
		fmt.Printf("%-20s %14.1f %8.1f %12.1f %7.1fp\n", task.Name, exact, blocked, lossy, drop)
		if blocked != exact {
			log.Fatalf("%s: HILOS accelerator deviated from exact attention", task.Name)
		}
	}
	fmt.Printf("\naverage lossy-retrieval degradation: %.2f%%p (paper: 3.52-5.73%%p)\n",
		sumDrop/float64(len(tasks)))
	fmt.Println("the HILOS accelerator is bit-faithful to exact attention on every task.")
}
