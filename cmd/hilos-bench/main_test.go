package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkBlockedAttention4K 	     200	    798511 ns/op	2626.33 MB/s	    1536 B/op	       3 allocs/op
BenchmarkSchedulerListScheduling-8          	      20	   1699564 ns/op	 1905304 B/op	   15048 allocs/op
BenchmarkSchedulerListSchedulingReference-8 	      20	  28862819 ns/op	 1906128 B/op	   10043 allocs/op
BenchmarkCycleModelKernelTime 	35726197	        33.64 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	repro	12.3s
`

func TestParseBench(t *testing.T) {
	f, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4", len(f.Benchmarks))
	}
	attn := f.Benchmarks["BenchmarkBlockedAttention4K"]
	if attn.NsPerOp != 798511 || attn.BytesPerOp != 1536 || attn.AllocsPerOp != 3 {
		t.Errorf("attention parse: %+v", attn)
	}
	// The GOMAXPROCS suffix must be stripped from the name but recorded.
	sched, ok := f.Benchmarks["BenchmarkSchedulerListScheduling"]
	if !ok {
		t.Error("suffixed benchmark name not normalized")
	}
	if sched.Procs != 8 {
		t.Errorf("suffixed benchmark procs = %d, want 8", sched.Procs)
	}
	if attn.Procs != 1 {
		t.Errorf("unsuffixed benchmark procs = %d, want 1", attn.Procs)
	}
	// Fractional ns/op parses.
	if cm := f.Benchmarks["BenchmarkCycleModelKernelTime"]; cm.NsPerOp != 33.64 {
		t.Errorf("fractional ns/op = %v", cm.NsPerOp)
	}
}

func TestParseBenchEmpty(t *testing.T) {
	if _, err := parseBench(strings.NewReader("PASS\nok repro 1s\n")); err == nil {
		t.Error("empty benchmark output accepted")
	}
}

func TestParseBenchLaterOverrides(t *testing.T) {
	in := "BenchmarkX 	 1	 100 ns/op\nBenchmarkX-8 	 50	 200 ns/op\n"
	f, err := parseBench(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if f.Benchmarks["BenchmarkX"].NsPerOp != 200 {
		t.Errorf("later run did not override: %v", f.Benchmarks["BenchmarkX"].NsPerOp)
	}
}

func snapshot(sched, ref float64) benchFile {
	return benchFile{Benchmarks: map[string]benchResult{
		schedBench:    {NsPerOp: sched},
		schedRefBench: {NsPerOp: ref},
	}}
}

func TestCheckRegression(t *testing.T) {
	base := snapshot(1e6, 17e6) // baseline ratio ≈ 0.0588
	cases := []struct {
		name    string
		current benchFile
		ok      bool
	}{
		{"same speed", snapshot(1e6, 17e6), true},
		{"faster", snapshot(0.5e6, 17e6), true},
		{"within 20%", snapshot(1.1e6, 17e6), true},
		{"regressed 50%", snapshot(1.5e6, 17e6), false},
		{"below 5x floor", snapshot(5e6, 17e6), false},
		{"reference missing", benchFile{Benchmarks: map[string]benchResult{schedBench: {NsPerOp: 1}}}, false},
	}
	for _, c := range cases {
		err := checkRegression(c.current, base, 0.20)
		if (err == nil) != c.ok {
			t.Errorf("%s: err = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func telSnapshot(sched, ref, on, off float64) benchFile {
	f := snapshot(sched, ref)
	if on > 0 {
		f.Benchmarks[telOnBench] = benchResult{NsPerOp: on}
	}
	if off > 0 {
		f.Benchmarks[telOffBench] = benchResult{NsPerOp: off}
	}
	return f
}

func TestCheckTelemetryOverhead(t *testing.T) {
	preTelemetryBase := snapshot(1e6, 17e6) // e.g. BENCH_PR4.json: no cluster entries
	telBase := telSnapshot(1e6, 17e6, 1.1e6, 1e6)
	cases := []struct {
		name     string
		current  benchFile
		baseline benchFile
		ok       bool
	}{
		{"benches absent: skip", snapshot(1e6, 17e6), preTelemetryBase, true},
		{"under cap, no baseline ratio", telSnapshot(1e6, 17e6, 1.5e6, 1e6), preTelemetryBase, true},
		{"over hard cap", telSnapshot(1e6, 17e6, 2.5e6, 1e6), preTelemetryBase, false},
		{"within 20% of baseline ratio", telSnapshot(1e6, 17e6, 1.2e6, 1e6), telBase, true},
		{"regressed vs baseline ratio", telSnapshot(1e6, 17e6, 1.9e6, 1e6), telBase, false},
	}
	for _, c := range cases {
		err := checkRegression(c.current, c.baseline, 0.20)
		if (err == nil) != c.ok {
			t.Errorf("%s: err = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

// kernelSnapshot extends a passing scheduler snapshot with the parallel
// attention pair at the given serial/parallel timings and parallel-run
// GOMAXPROCS.
func kernelSnapshot(serial, par float64, procs int) benchFile {
	f := snapshot(1e6, 17e6)
	f.Benchmarks[kernelSerialBench] = benchResult{NsPerOp: serial, Procs: 1}
	f.Benchmarks[kernelParBench] = benchResult{NsPerOp: par, Procs: procs}
	return f
}

func TestCheckKernelParallel(t *testing.T) {
	base := snapshot(1e6, 17e6) // no kernel pair recorded
	kernelBase := kernelSnapshot(12e6, 4e6, 4)
	cases := []struct {
		name     string
		current  benchFile
		baseline benchFile
		ok       bool
	}{
		{"pair absent: skip", snapshot(1e6, 17e6), base, true},
		{"GOMAXPROCS 1: skip", kernelSnapshot(12e6, 11e6, 1), base, true},
		{"3x speedup at 4 procs", kernelSnapshot(12e6, 4e6, 4), base, true},
		{"below 2x floor", kernelSnapshot(12e6, 7e6, 4), base, false},
		{"within regress headroom of baseline", kernelSnapshot(12e6, 4.6e6, 4), kernelBase, true},
		{"regressed vs baseline 3x", kernelSnapshot(12e6, 5.8e6, 8), kernelBase, false},
	}
	for _, c := range cases {
		err := checkRegression(c.current, c.baseline, 0.20)
		if (err == nil) != c.ok {
			t.Errorf("%s: err = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}
