// Command hilos-bench regenerates the paper's evaluation: every table and
// figure, printed as aligned text tables with the paper's expected shapes
// as notes.
//
// Usage:
//
//	hilos-bench                 # run everything in paper order
//	hilos-bench -only fig10     # run one experiment
//	hilos-bench -list           # list experiment identifiers
//
// It is also the benchmark bookkeeping tool behind BENCH_*.json: piping the
// output of `go test -run '^$' -bench . -benchmem` into -bench-json parses
// the suite into a {name → ns/op, allocs/op, bytes/op} snapshot, and
// -bench-baseline guards the scheduler against regressions:
//
//	go test -run '^$' -bench . -benchtime 1x -benchmem . |
//	    hilos-bench -bench-json BENCH_PR4.json
//	go test -run '^$' -bench Scheduler -benchtime 20x -benchmem . |
//	    hilos-bench -bench-json /dev/null -bench-baseline BENCH_PR4.json
//
// The guard compares the machine-independent ratio of
// BenchmarkSchedulerListScheduling to its retained O(n²) reference
// (BenchmarkSchedulerListSchedulingReference): the run fails if the current
// ratio regresses more than -max-regress over the baseline's ratio, or if
// the event-driven scheduler is no longer at least 5x faster than the
// reference (the PR 4 acceptance floor).
//
// When the run includes BenchmarkClusterTelemetryOn/Off, the same guard
// caps the cluster loop's enabled-telemetry overhead at 2x and compares
// the on/off ratio against the baseline's (skipped for snapshots that
// predate the telemetry layer).
//
// When the run includes the parallel attention pair
// (BenchmarkBlockedAttention64KSerial / ...Workers4), the guard also floors
// the serial/parallel speedup at 2x — but only when the Workers4 bench ran
// with GOMAXPROCS ≥ 4 (read from the benchmark name's -N suffix): on a
// smaller machine no parallel speedup is physically measurable, so the
// check reports itself skipped instead of failing vacuously.
//
// Three further machine-independent kernel ratios are floored when their
// pairs appear in the run: the 8-lane striped Dot must beat the retained
// scalar DotRef by ≥ 1.3x, the blocked transpose must beat the naive loop by
// ≥ 1.2x (both pure-ILP ratios, checked at any GOMAXPROCS), and the
// accelerator serial/4-worker pair (BenchmarkAcceleratorAttention16K*) must
// clear 1.5x under the same ≥ 4-proc gate as the attention pair.
//
// `hilos-bench -tune` calibrates the kernel chunk span for the current
// machine: it sweeps K/V chunk spans over a decode-shape attention call and
// reports the knee as a hilos.SetKernelCacheBudget value. The default budget
// is a fixed constant (never probed from the host), so chunk geometry — part
// of the numeric contract — only changes when a user applies the reported
// knob explicitly.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"regexp"
	"strconv"
	"strings"
	"time"

	hilos "repro"
	"repro/internal/attention"
	"repro/internal/tensor"
)

// benchResult is one benchmark's recorded measurements.
type benchResult struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	// Procs is the GOMAXPROCS the benchmark ran under (the -N name suffix;
	// 1 when absent). The parallel-kernel gate only applies to runs that
	// actually had cores to parallelize over.
	Procs int `json:"procs,omitempty"`
}

// benchFile is the BENCH_*.json schema.
type benchFile struct {
	// Benchmarks maps benchmark name (GOMAXPROCS suffix stripped) to its
	// measurements.
	Benchmarks map[string]benchResult `json:"benchmarks"`
}

const (
	schedBench    = "BenchmarkSchedulerListScheduling"
	schedRefBench = "BenchmarkSchedulerListSchedulingReference"
	// minSpeedup is the acceptance floor: the event-driven scheduler must
	// stay at least this many times faster than the retained reference.
	minSpeedup = 5.0

	telOffBench = "BenchmarkClusterTelemetryOff"
	telOnBench  = "BenchmarkClusterTelemetryOn"
	// maxTelemetryRatio caps ns(telemetry on)/ns(telemetry off) for the
	// cluster loop: instrumentation must never come close to doubling the
	// scheduler's cost even when fully enabled.
	maxTelemetryRatio = 2.0

	kernelSerialBench = "BenchmarkBlockedAttention64KSerial"
	kernelParBench    = "BenchmarkBlockedAttention64KWorkers4"
	// minKernelSpeedup floors ns(serial)/ns(4 workers) for the 64K-context
	// decode-shape attention kernel: the chunked worker-pool dataflow must
	// actually scale, not just stay bit-identical. Enforced only when the
	// parallel bench ran with GOMAXPROCS ≥ minKernelProcs.
	minKernelSpeedup = 2.0
	minKernelProcs   = 4

	dotBench    = "BenchmarkDot"
	dotRefBench = "BenchmarkDotRef"
	// minDotSpeedup floors ns(DotRef)/ns(Dot): the 8-lane striped dot must
	// beat the retained scalar reference by this much on the same vectors.
	// Machine-independent (both run on the same core in the same process)
	// and enforced at any GOMAXPROCS — lane striping is ILP, not threading.
	minDotSpeedup = 1.3

	transposeBench    = "BenchmarkTransposeBlocked"
	transposeRefBench = "BenchmarkTransposeRef"
	// minTransposeSpeedup floors ns(naive)/ns(blocked) for the 16 MiB
	// transpose whose column writes stride far past L1.
	minTransposeSpeedup = 1.2

	accelSerialBench = "BenchmarkAcceleratorAttention16KSerial"
	accelParBench    = "BenchmarkAcceleratorAttention16KWorkers4"
	// minAccelSpeedup floors ns(serial)/ns(4 workers) for the accelerator
	// functional datapath. Lower than the attention floor: the per-group
	// stats fold, tree merge and normalization stay serial by design
	// (Amdahl), and FP16 quantization is shared work. Proc-gated like the
	// attention pair.
	minAccelSpeedup = 1.5
)

// benchLine matches `go test -bench` result lines, e.g.
// "BenchmarkFoo-8   	 100	  123 ns/op	  45 B/op	  6 allocs/op".
var benchLine = regexp.MustCompile(`^(Benchmark\S*?)(?:-(\d+))?\s+\d+\s+([0-9.]+) ns/op(.*)$`)

// parseBench reads `go test -bench` output and collects one result per
// benchmark. Later lines override earlier ones, so a re-run of selected
// benchmarks at a longer -benchtime can refine a full-suite pass.
func parseBench(r io.Reader) (benchFile, error) {
	out := benchFile{Benchmarks: map[string]benchResult{}}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return out, fmt.Errorf("hilos-bench: bad ns/op in %q: %v", sc.Text(), err)
		}
		res := benchResult{NsPerOp: ns, Procs: 1}
		if m[2] != "" {
			if p, err := strconv.Atoi(m[2]); err == nil {
				res.Procs = p
			}
		}
		for _, field := range strings.Split(m[4], "\t") {
			field = strings.TrimSpace(field)
			switch {
			case strings.HasSuffix(field, " B/op"):
				res.BytesPerOp, _ = strconv.ParseFloat(strings.TrimSuffix(field, " B/op"), 64)
			case strings.HasSuffix(field, " allocs/op"):
				res.AllocsPerOp, _ = strconv.ParseFloat(strings.TrimSuffix(field, " allocs/op"), 64)
			}
		}
		out.Benchmarks[m[1]] = res
	}
	if err := sc.Err(); err != nil {
		return out, err
	}
	if len(out.Benchmarks) == 0 {
		return out, fmt.Errorf("hilos-bench: no benchmark lines found on stdin")
	}
	return out, nil
}

// schedRatio returns ns(scheduler)/ns(reference) from a snapshot.
func schedRatio(f benchFile) (float64, error) {
	cur, ok := f.Benchmarks[schedBench]
	if !ok {
		return 0, fmt.Errorf("hilos-bench: %s missing", schedBench)
	}
	ref, ok := f.Benchmarks[schedRefBench]
	if !ok {
		return 0, fmt.Errorf("hilos-bench: %s missing", schedRefBench)
	}
	if ref.NsPerOp <= 0 {
		return 0, fmt.Errorf("hilos-bench: non-positive reference timing %v", ref.NsPerOp)
	}
	return cur.NsPerOp / ref.NsPerOp, nil
}

// checkRegression enforces the scheduler guard against a baseline snapshot.
func checkRegression(current, baseline benchFile, maxRegress float64) error {
	cur, err := schedRatio(current)
	if err != nil {
		return err
	}
	base, err := schedRatio(baseline)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	fmt.Printf("scheduler/reference ratio: current %.4f (%.1fx speedup), baseline %.4f (%.1fx)\n",
		cur, 1/cur, base, 1/base)
	if cur > 1/minSpeedup {
		return fmt.Errorf("hilos-bench: scheduler speedup %.2fx below the %.0fx acceptance floor", 1/cur, minSpeedup)
	}
	if cur > base*(1+maxRegress) {
		return fmt.Errorf("hilos-bench: scheduler regressed: ratio %.4f exceeds baseline %.4f by more than %.0f%%",
			cur, base, 100*maxRegress)
	}
	return checkTelemetryOverhead(current, baseline, maxRegress)
}

// checkTelemetryOverhead enforces the observability guard: with both
// telemetry cluster benchmarks present, the machine-independent on/off
// ratio must stay under maxTelemetryRatio, and — once a baseline snapshot
// records the ratio — must not regress past it by more than maxRegress.
// Snapshots predating the telemetry layer (e.g. BENCH_PR4.json) simply
// skip the baseline comparison.
func checkTelemetryOverhead(current, baseline benchFile, maxRegress float64) error {
	ratio := func(f benchFile) (float64, bool) {
		on, okOn := f.Benchmarks[telOnBench]
		off, okOff := f.Benchmarks[telOffBench]
		if !okOn || !okOff || off.NsPerOp <= 0 {
			return 0, false
		}
		return on.NsPerOp / off.NsPerOp, true
	}
	cur, ok := ratio(current)
	if !ok {
		fmt.Println("telemetry overhead check skipped (cluster telemetry benchmarks not in this run)")
		return checkKernelParallel(current, baseline, maxRegress)
	}
	fmt.Printf("cluster telemetry on/off ratio: current %.4f (cap %.1f)\n", cur, maxTelemetryRatio)
	if cur > maxTelemetryRatio {
		return fmt.Errorf("hilos-bench: telemetry overhead ratio %.2f exceeds the %.1f cap", cur, maxTelemetryRatio)
	}
	if base, ok := ratio(baseline); ok && cur > base*(1+maxRegress) {
		return fmt.Errorf("hilos-bench: telemetry overhead regressed: ratio %.4f exceeds baseline %.4f by more than %.0f%%",
			cur, base, 100*maxRegress)
	}
	return checkKernelParallel(current, baseline, maxRegress)
}

// checkKernelParallel enforces the parallel-attention guard: with the
// serial/4-worker 64K decode pair present and run on a machine with
// GOMAXPROCS ≥ minKernelProcs, the speedup ns(serial)/ns(parallel) must
// clear the minKernelSpeedup floor and must not regress more than
// maxRegress below a baseline that recorded the pair under the same
// condition. Runs on smaller machines (or without the pair) report the
// check skipped — a 1-core container cannot measure parallelism, and a
// vacuous pass would hide that.
func checkKernelParallel(current, baseline benchFile, maxRegress float64) error {
	speedup := func(f benchFile) (float64, bool) {
		ser, okS := f.Benchmarks[kernelSerialBench]
		par, okP := f.Benchmarks[kernelParBench]
		if !okS || !okP || par.NsPerOp <= 0 || par.Procs < minKernelProcs {
			return 0, false
		}
		return ser.NsPerOp / par.NsPerOp, true
	}
	cur, ok := speedup(current)
	if !ok {
		fmt.Println("kernel parallel check skipped (serial/parallel pair absent or GOMAXPROCS < 4)")
		return checkKernelRatios(current, baseline, maxRegress)
	}
	fmt.Printf("attention serial/parallel speedup: current %.2fx (floor %.1fx at %d workers)\n",
		cur, minKernelSpeedup, minKernelProcs)
	if cur < minKernelSpeedup {
		return fmt.Errorf("hilos-bench: parallel attention speedup %.2fx below the %.1fx floor", cur, minKernelSpeedup)
	}
	if base, ok := speedup(baseline); ok && cur < base*(1-maxRegress) {
		return fmt.Errorf("hilos-bench: parallel attention speedup regressed: %.2fx is more than %.0f%% below baseline %.2fx",
			cur, 100*maxRegress, base)
	}
	return checkKernelRatios(current, baseline, maxRegress)
}

// pairRatio returns ns(slow)/ns(fast) for a benchmark pair in a snapshot,
// optionally requiring the fast bench to have run with at least minProcs.
func pairRatio(f benchFile, slow, fast string, minProcs int) (float64, bool) {
	s, okS := f.Benchmarks[slow]
	fa, okF := f.Benchmarks[fast]
	if !okS || !okF || fa.NsPerOp <= 0 || fa.Procs < minProcs {
		return 0, false
	}
	return s.NsPerOp / fa.NsPerOp, true
}

// checkKernelRatios enforces the PR 10 cache-aware kernel floors: the striped
// Dot over the scalar reference, the blocked transpose over the naive loop
// (both pure-ILP ratios, enforced at any GOMAXPROCS), and the accelerator
// serial/4-worker pair (proc-gated like the attention pair). Each ratio is
// ns(slow)/ns(fast) within one process on one machine — machine-independent —
// and each also guards against regressing more than maxRegress below a
// baseline that recorded it.
func checkKernelRatios(current, baseline benchFile, maxRegress float64) error {
	checks := []struct {
		name, slow, fast string
		floor            float64
		minProcs         int
		skipNote         string
	}{
		{"striped Dot vs scalar DotRef", dotRefBench, dotBench, minDotSpeedup, 0,
			"Dot pair absent from this run"},
		{"blocked transpose vs naive", transposeRefBench, transposeBench, minTransposeSpeedup, 0,
			"transpose pair absent from this run"},
		{"accel serial/parallel", accelSerialBench, accelParBench, minAccelSpeedup, minKernelProcs,
			"accel pair absent or GOMAXPROCS < 4"},
	}
	for _, c := range checks {
		cur, ok := pairRatio(current, c.slow, c.fast, c.minProcs)
		if !ok {
			fmt.Printf("%s check skipped (%s)\n", c.name, c.skipNote)
			continue
		}
		fmt.Printf("%s speedup: current %.2fx (floor %.1fx)\n", c.name, cur, c.floor)
		if cur < c.floor {
			return fmt.Errorf("hilos-bench: %s speedup %.2fx below the %.1fx floor", c.name, cur, c.floor)
		}
		if base, ok := pairRatio(baseline, c.slow, c.fast, c.minProcs); ok && cur < base*(1-maxRegress) {
			return fmt.Errorf("hilos-bench: %s speedup regressed: %.2fx is more than %.0f%% below baseline %.2fx",
				c.name, cur, 100*maxRegress, base)
		}
	}
	return nil
}

// runTune sweeps K/V chunk spans on a decode-shape Blocked attention call
// and reports the knee: the smallest span within 5% of the fastest — smaller
// chunks balance better across workers, so prefer them when the cache stops
// mattering. It prints the SetKernelCacheBudget value that reproduces the
// knee span for this head dimension. Tuning is an explicit act: nothing is
// persisted, and untuned runs keep the fixed default budget so results
// replay identically across machines.
func runTune(seq, dim, workers int) {
	rng := rand.New(rand.NewSource(1))
	q := tensor.RandMat(rng, 1, dim, 1)
	k := tensor.RandMat(rng, seq, dim, 1)
	v := tensor.RandMat(rng, seq, dim, 1)
	if workers <= 0 {
		workers = tensor.DefaultWorkers()
	}
	defer tensor.SetChunkTokens(0)
	fmt.Printf("chunk-span sweep: seq=%d dim=%d workers=%d (current budget %d B → span %d)\n",
		seq, dim, workers, tensor.CacheBudget(), attention.ChunkSpan(dim, 128))
	type point struct {
		span int
		sec  float64
	}
	var pts []point
	for span := 256; span <= 65536 && span <= 2*seq; span *= 2 {
		tensor.SetChunkTokens(span)
		attention.BlockedWorkers(q, k, v, nil, 128, workers) // warm-up
		const reps = 3
		t0 := time.Now()
		for r := 0; r < reps; r++ {
			attention.BlockedWorkers(q, k, v, nil, 128, workers)
		}
		sec := time.Since(t0).Seconds() / reps
		pts = append(pts, point{span, sec})
		fmt.Printf("  span %6d: %8.2f ms/op  %7.1f Mtok/s\n", span, sec*1e3, float64(seq)/sec/1e6)
	}
	best := pts[0]
	for _, p := range pts {
		if p.sec < best.sec {
			best = p
		}
	}
	knee := best
	for _, p := range pts {
		if p.sec <= best.sec*1.05 {
			knee = p
			break
		}
	}
	budget := knee.span * 2 * dim * 4
	fmt.Printf("fastest span %d (%.2f ms/op); knee span %d → hilos.SetKernelCacheBudget(%d)\n",
		best.span, best.sec*1e3, knee.span, budget)
}

func runBenchMode(jsonOut, baselinePath string, maxRegress float64) error {
	current, err := parseBench(os.Stdin)
	if err != nil {
		return err
	}
	if jsonOut != "" {
		data, err := json.MarshalIndent(current, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %d benchmark results to %s\n", len(current.Benchmarks), jsonOut)
	}
	if baselinePath != "" {
		raw, err := os.ReadFile(baselinePath)
		if err != nil {
			return err
		}
		var baseline benchFile
		if err := json.Unmarshal(raw, &baseline); err != nil {
			return fmt.Errorf("hilos-bench: parsing baseline %s: %v", baselinePath, err)
		}
		if err := checkRegression(current, baseline, maxRegress); err != nil {
			return err
		}
		fmt.Println("scheduler regression check passed")
	}
	return nil
}

func main() {
	only := flag.String("only", "", "run a single experiment by ID (e.g. fig10)")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	benchJSON := flag.String("bench-json", "", "parse `go test -bench` output from stdin and write it as JSON to this path")
	benchBaseline := flag.String("bench-baseline", "", "compare stdin's scheduler benchmarks against this BENCH_*.json baseline")
	maxRegress := flag.Float64("max-regress", 0.20, "allowed fractional regression of the scheduler/reference ratio")
	tune := flag.Bool("tune", false, "sweep kernel K/V chunk spans and report the knee as a SetKernelCacheBudget value")
	tuneSeq := flag.Int("tune-seq", 64*1024, "context length (tokens) for the -tune sweep")
	tuneDim := flag.Int("tune-dim", 128, "head dimension for the -tune sweep")
	tuneWorkers := flag.Int("tune-workers", 0, "worker count for the -tune sweep (0 = pool default)")
	flag.Parse()

	if *tune {
		runTune(*tuneSeq, *tuneDim, *tuneWorkers)
		return
	}

	if *benchJSON != "" || *benchBaseline != "" {
		if err := runBenchMode(*benchJSON, *benchBaseline, *maxRegress); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *list {
		fmt.Println(strings.Join(hilos.ExperimentIDs(), "\n"))
		return
	}

	sim, err := hilos.New()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *only != "" {
		tab, err := sim.ExperimentByID(*only)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Print(tab)
		return
	}

	start := time.Now()
	for _, id := range hilos.ExperimentIDs() {
		t0 := time.Now()
		tab, err := sim.ExperimentByID(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Print(tab)
		fmt.Printf("(%s in %.1fs)\n\n", id, time.Since(t0).Seconds())
	}
	fmt.Printf("all experiments completed in %.1fs\n", time.Since(start).Seconds())
}
