// Command hilos-bench regenerates the paper's evaluation: every table and
// figure, printed as aligned text tables with the paper's expected shapes
// as notes.
//
// Usage:
//
//	hilos-bench                 # run everything in paper order
//	hilos-bench -only fig10     # run one experiment
//	hilos-bench -list           # list experiment identifiers
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	hilos "repro"
)

func main() {
	only := flag.String("only", "", "run a single experiment by ID (e.g. fig10)")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(hilos.ExperimentIDs(), "\n"))
		return
	}

	sim, err := hilos.New()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *only != "" {
		tab, err := sim.ExperimentByID(*only)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Print(tab)
		return
	}

	start := time.Now()
	for _, id := range hilos.ExperimentIDs() {
		t0 := time.Now()
		tab, err := sim.ExperimentByID(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Print(tab)
		fmt.Printf("(%s in %.1fs)\n\n", id, time.Since(t0).Seconds())
	}
	fmt.Printf("all experiments completed in %.1fs\n", time.Since(start).Seconds())
}
