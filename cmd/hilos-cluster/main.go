// Command hilos-cluster evaluates event-driven scheduling over a
// heterogeneous fleet of simulated inference systems: the
// production-deployment question the paper's offline-inference framing
// leads to — given mixed hardware tiers and mixed online/offline traffic,
// which requests should run where, and when?
//
// Usage:
//
//	hilos-cluster                                # default fleet, all policies
//	hilos-cluster -fleet hilos:2x16,flex-dram:1,instinfer:1x16
//	hilos-cluster -n 96 -rate 1.5 -seed 7        # Poisson arrivals
//	hilos-cluster -arrivals bursty               # two-state MMPP arrivals
//	hilos-cluster -trace reqs.csv                # replay a recorded trace
//	hilos-cluster -policy cheapest-feasible      # one policy only
//	hilos-cluster -sweep 0.5,1,2,4               # arrival-rate sweep
//	hilos-cluster -priority Short=1@15 -preempt  # online tier w/ deadline
//	hilos-cluster -continuous                    # re-form batches at dispatch
//	hilos-cluster -metrics-addr :8080            # live /metrics + /events
//	hilos-cluster -trace-out cluster.json        # Chrome trace of the run
//	hilos-cluster -replay-speed 60               # 1 wall second = 60 sim s
//	hilos-cluster -faults 'fail-stop:pipe=0,at=120,repair=60'
//	hilos-cluster -faults 'transient:prob=0.05;wear-out:budget=2e12'
//	hilos-cluster -mtbf 600 -mttr 60             # generated fail-stop schedule
//	hilos-cluster -list-systems
//
// Observability: -metrics-addr serves live stats over HTTP while runs
// execute — GET /metrics returns a JSON snapshot of every counter, gauge
// and histogram (cluster, sim and report-cache subsystems) plus event-
// stream accounting, and GET /events streams newline-delimited JSON
// scheduler events as they happen (bounded per-client buffers; laggards
// drop events). -trace-out writes the last run's batch schedule as Chrome
// trace JSON for chrome://tracing. -replay-speed slaves the simulated
// clock to the wall clock at the given multiple (1 = real time) so /events
// can be watched live; it delays event processing only and never changes
// the schedule. -serve-linger keeps the stats server up after runs finish
// so scripts can scrape the final state.
//
// Fleet syntax: comma-separated system[:count[xdevices]] terms — e.g.
// "hilos:2x16" is two HILOS pipelines with 16 SmartSSDs each, "flex-dram:1"
// one DRAM-baseline pipeline. Any registered engine system is accepted.
//
// Admission: -batch is the per-class target batch size; a partial batch is
// released once its oldest request has waited -wait seconds. -backlog caps
// admitted-but-unstarted requests (0 = unbounded); arrivals beyond the cap
// are rejected and reported.
//
// Scheduling: -priority tags workload classes with an online tier
// (class=priority[@deadlineSec], comma-separated); -preempt enables
// deadline-aware preemption (deadline-expired batches dispatch immediately
// and evict unstarted lower-priority batches, which re-enqueue); -continuous
// re-forms batches at dispatch time so a freed pipeline re-packs the oldest
// waiting work.
//
// Robustness: -faults injects a deterministic fault plan — semicolon-
// separated kind:key=value,... terms:
//
//	fail-stop:pipe=0,at=120,repair=60   pipeline 0 down at t=120 for 60 s
//	straggler:pipe=1,at=200,for=300,factor=3
//	transient:prob=0.05[,pipe=1]        per-batch error probability
//	wear-out:budget=2e12[,pipe=0]       flash endurance budget in bytes
//
// -mtbf (with optional -mttr) generates a per-pipeline exponential
// fail-stop schedule over the trace horizon instead, seeded by -seed.
// -max-retries bounds per-batch retries (exponential backoff, quarantine
// and failover per the default retry policy). Every run reports the jobs
// lost — always 0: admitted work completes, fails terminally, or is
// rejected, never vanishes.
//
// Dispatch policies (-policy, default "all"):
//
//	least-loaded       earliest-available pipeline (pure load balancing)
//	cheapest-feasible  lowest amortized $ for the batch among feasible
//	                   pipelines (§6.6 hardware pricing over 3 years)
//	fastest-eta        earliest completion, counting queueing
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	hilos "repro"
)

func main() {
	modelName := flag.String("model", "OPT-30B", "Table 2 model name")
	fleetSpec := flag.String("fleet", "hilos:2x8,flex-dram:1", "fleet composition: system[:count[xdevices]],...")
	n := flag.Int("n", 64, "number of generated requests (ignored with -trace)")
	rate := flag.Float64("rate", 1.0, "mean arrival rate, requests/second (ignored with -trace)")
	arrivals := flag.String("arrivals", "poisson", "arrival process: poisson, uniform or bursty (ignored with -trace)")
	seed := flag.Int64("seed", 7, "workload seed (ignored with -trace)")
	traceFile := flag.String("trace", "", "replay an arrival-trace CSV instead of generating one")
	batch := flag.Int("batch", 8, "admission: target batch size per class")
	wait := flag.Float64("wait", 30, "admission: max seconds the oldest queued request waits")
	backlog := flag.Int("backlog", 0, "admission: reject arrivals beyond this unstarted backlog (0 = unbounded)")
	priority := flag.String("priority", "", "priority classes: class=priority[@deadlineSec],... (e.g. Short=1@15)")
	preempt := flag.Bool("preempt", false, "enable deadline-aware preemption of unstarted lower-priority batches")
	continuous := flag.Bool("continuous", false, "re-form batches at dispatch time (continuous batching)")
	policy := flag.String("policy", "all", "dispatch policy, or \"all\" to compare")
	sweep := flag.String("sweep", "", "comma-separated arrival rates to sweep (e.g. 0.5,1,2)")
	listSystems := flag.Bool("list-systems", false, "list registered engine systems and exit")
	metricsAddr := flag.String("metrics-addr", "", "serve live stats over HTTP on this address (GET /metrics, /events); :0 picks a free port")
	traceOut := flag.String("trace-out", "", "write the last run's batch schedule as Chrome trace JSON to this file")
	replaySpeed := flag.Float64("replay-speed", 0, "slave the simulated clock to the wall clock at this multiple (1 = real time; 0 = fast-forward)")
	serveLinger := flag.Float64("serve-linger", 0, "with -metrics-addr, keep serving this many seconds after runs complete")
	faultSpec := flag.String("faults", "", "inject faults: kind:key=value,...;... (e.g. 'fail-stop:pipe=0,at=120,repair=60;transient:prob=0.05')")
	mtbf := flag.Float64("mtbf", 0, "generate a fail-stop schedule with this mean time between failures in seconds (0 = off)")
	mttr := flag.Float64("mttr", 60, "mean repair window in seconds for the generated schedule (with -mtbf)")
	maxRetries := flag.Int("max-retries", 3, "bound per-batch retries under faults (0 = every failure is terminal)")
	flag.Parse()

	if *listSystems {
		for _, sys := range hilos.Systems() {
			fmt.Printf("%-12s %s\n", sys, hilos.DescribeSystem(sys))
		}
		return
	}

	m, err := hilos.ModelByName(*modelName)
	check(err)
	fleet, fleetPipes, err := parseFleet(*fleetSpec)
	check(err)
	policies, err := parsePolicies(*policy)
	check(err)
	process, err := parseArrivals(*arrivals)
	check(err)
	prioOpts, err := parsePriorities(*priority)
	check(err)
	basePlan, err := parseFaults(*faultSpec)
	check(err)
	faultsOn := basePlan != nil || *mtbf > 0

	// Observability: one registry/stream pair spans every run of the
	// invocation (sweeps and policy comparisons accumulate), so /metrics
	// scraped mid-sweep shows live totals.
	var reg *hilos.MetricsRegistry
	var stream *hilos.EventStream
	var telOpts []hilos.ClusterOption
	if *metricsAddr != "" {
		reg = hilos.NewMetricsRegistry()
		stream = hilos.NewEventStream()
		hilos.EnableSimTelemetry(reg, stream)
		hilos.EnableCacheMetrics(reg)
		telOpts = append(telOpts, hilos.WithClusterTelemetry(hilos.NewClusterTelemetry(reg, stream)))
		ln, err := net.Listen("tcp", *metricsAddr)
		check(err)
		fmt.Printf("live stats on http://%s (GET /metrics, /events)\n", ln.Addr())
		srv := &http.Server{Handler: hilos.TelemetryHandler(reg, stream)}
		go func() { _ = srv.Serve(ln) }()
	}
	if *replaySpeed > 0 {
		telOpts = append(telOpts, hilos.WithClusterPace(newPacer(*replaySpeed)))
	}

	rates := []float64{*rate}
	if *sweep != "" {
		rates = nil
		for _, f := range strings.Split(*sweep, ",") {
			r, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			check(err)
			rates = append(rates, r)
		}
		if *traceFile != "" {
			check(fmt.Errorf("-sweep and -trace are mutually exclusive"))
		}
	}

	var lastSummary hilos.ClusterSummary
	var lastLabel string
	haveSummary := false
	for _, r := range rates {
		reqs, label, err := loadTrace(*traceFile, *seed, *n, r, process)
		check(err)
		var faultOpts []hilos.ClusterOption
		if faultsOn {
			plan := hilos.FaultPlan{Seed: *seed}
			if basePlan != nil {
				plan = *basePlan
				plan.Seed = *seed
			}
			if *mtbf > 0 {
				// Generated fail-stops cover the whole trace horizon plus a
				// recovery tail, so late arrivals still see churn.
				horizon := 0.0
				for _, req := range reqs {
					if req.ArrivalSec > horizon {
						horizon = req.ArrivalSec
					}
				}
				schedule, err := hilos.GenerateFailStops(*seed, fleetPipes, horizon+*mttr, *mtbf, *mttr)
				check(err)
				plan.Events = append(plan.Events, schedule...)
			}
			rp := hilos.DefaultClusterRetryPolicy()
			rp.MaxRetries = *maxRetries
			faultOpts = []hilos.ClusterOption{hilos.WithFaults(plan), hilos.WithRetryPolicy(rp)}
		}
		fmt.Printf("== %s | model %s | fleet %s | batch %d wait %gs", label, m.Name, *fleetSpec, *batch, *wait)
		if *backlog > 0 {
			fmt.Printf(" backlog %d", *backlog)
		}
		if *preempt {
			fmt.Print(" preempt")
		}
		if *continuous {
			fmt.Print(" continuous")
		}
		fmt.Println(" ==")
		for _, p := range policies {
			opts := append(append([]hilos.ClusterOption{}, fleet...),
				hilos.WithAdmission(*batch, *wait),
				hilos.WithMaxBacklog(*backlog),
				hilos.WithDispatchPolicy(p),
			)
			opts = append(opts, prioOpts...)
			opts = append(opts, telOpts...)
			opts = append(opts, faultOpts...)
			if *preempt {
				opts = append(opts, hilos.WithPreemption())
			}
			if *continuous {
				opts = append(opts, hilos.WithContinuousBatching())
			}
			s, err := hilos.Cluster(m, reqs, opts...)
			check(err)
			printSummary(s)
			if faultsOn {
				printRobustness(s)
			}
			lastSummary, lastLabel, haveSummary = s, fmt.Sprintf("%s | %s", label, s.Policy), true
		}
		fmt.Println()
	}

	if *traceOut != "" {
		if !haveSummary {
			check(fmt.Errorf("-trace-out: no run to export"))
		}
		f, err := os.Create(*traceOut)
		check(err)
		check(hilos.WriteClusterTrace(f, lastSummary, lastLabel))
		check(f.Close())
		fmt.Printf("wrote cluster trace to %s (open in chrome://tracing)\n", *traceOut)
	}
	if stream != nil {
		// Terminate /events clients: their NDJSON responses end when the
		// stream closes, so scripted curls don't hang on a finished replay.
		defer stream.Close()
		if *serveLinger > 0 {
			fmt.Printf("runs complete; serving stats for another %gs\n", *serveLinger)
			time.Sleep(time.Duration(*serveLinger * float64(time.Second)))
		}
	}
}

// newPacer returns a pacing hook that slaves the simulated clock to the
// wall clock at the given speed multiple: before each scheduler event it
// sleeps until (simSec elapsed)/speed of wall time has passed since the
// first event. This is the replay boundary — the only place the toolchain
// touches the wall clock — and it delays event processing only; the
// schedule is bit-identical at any speed.
//
//lint:allow simdeterminism real-time replay pacing is the wall-clock serving boundary; the hook only delays event processing and never feeds back into scheduling
func newPacer(speed float64) func(simSec float64) {
	var start time.Time
	var base float64
	started := false
	return func(simSec float64) {
		if !started {
			started, start, base = true, time.Now(), simSec
			return
		}
		target := time.Duration((simSec - base) / speed * float64(time.Second))
		if d := target - time.Since(start); d > 0 {
			time.Sleep(d)
		}
	}
}

// parseFleet turns "hilos:2x16,flex-dram:1" into fleet options, rejecting
// unregistered system names up front with the registry listing. It also
// returns the total pipeline count, which fault plans are sized against.
func parseFleet(spec string) ([]hilos.ClusterOption, int, error) {
	var opts []hilos.ClusterOption
	pipes := 0
	for _, term := range strings.Split(spec, ",") {
		term = strings.TrimSpace(term)
		if term == "" {
			continue
		}
		sys, rest, _ := strings.Cut(term, ":")
		if !knownSystem(hilos.System(sys)) {
			return nil, 0, fmt.Errorf("unknown system %q in fleet term %q (known: %s)",
				sys, term, joinSystems())
		}
		count, devices := 1, 0
		if rest != "" {
			c, d, hasDev := strings.Cut(rest, "x")
			var err error
			if count, err = strconv.Atoi(c); err != nil {
				return nil, 0, fmt.Errorf("bad fleet term %q: count %q", term, c)
			}
			if hasDev {
				if devices, err = strconv.Atoi(d); err != nil {
					return nil, 0, fmt.Errorf("bad fleet term %q: devices %q", term, d)
				}
			}
		}
		opts = append(opts, hilos.WithFleet(hilos.System(sys), count, devices))
		pipes += count
	}
	if len(opts) == 0 {
		return nil, 0, fmt.Errorf("empty fleet spec")
	}
	return opts, pipes, nil
}

// faultKeys lists the accepted spec keys per fault kind.
var faultKeys = map[hilos.FaultKind][]string{
	hilos.FaultFailStop:  {"pipe", "at", "repair"},
	hilos.FaultStraggler: {"pipe", "at", "for", "factor"},
	hilos.FaultTransient: {"pipe", "prob"},
	hilos.FaultWearOut:   {"pipe", "budget"},
}

// parseFaults turns a -faults spec — semicolon-separated kind:key=value,...
// terms — into a fault plan. Unknown kinds and keys are rejected with the
// registered vocabulary, so a typo never silently runs fault-free.
func parseFaults(spec string) (*hilos.FaultPlan, error) {
	if spec == "" {
		return nil, nil
	}
	plan := &hilos.FaultPlan{}
	for _, term := range strings.Split(spec, ";") {
		term = strings.TrimSpace(term)
		if term == "" {
			continue
		}
		kindStr, rest, _ := strings.Cut(term, ":")
		kind := hilos.FaultKind(strings.TrimSpace(kindStr))
		if !kind.Valid() {
			return nil, fmt.Errorf("unknown fault kind %q in term %q (known: %v)",
				kindStr, term, hilos.FaultKinds())
		}
		kv := map[string]float64{}
		for _, field := range strings.Split(rest, ",") {
			field = strings.TrimSpace(field)
			if field == "" {
				continue
			}
			k, v, ok := strings.Cut(field, "=")
			k = strings.TrimSpace(k)
			if !ok || !allowedFaultKey(kind, k) {
				return nil, fmt.Errorf("bad fault term %q: field %q (want %v=value)",
					term, field, faultKeys[kind])
			}
			x, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
			if err != nil {
				return nil, fmt.Errorf("bad fault term %q: %s=%q is not a number", term, k, v)
			}
			kv[k] = x
		}
		pipe, hasPipe := kv["pipe"]
		switch kind {
		case hilos.FaultFailStop:
			plan.Events = append(plan.Events, hilos.FaultEvent{
				Kind: kind, Pipeline: int(pipe), AtSec: kv["at"], DurationSec: kv["repair"],
			})
		case hilos.FaultStraggler:
			plan.Events = append(plan.Events, hilos.FaultEvent{
				Kind: kind, Pipeline: int(pipe), AtSec: kv["at"], DurationSec: kv["for"], Factor: kv["factor"],
			})
		case hilos.FaultTransient:
			if hasPipe {
				plan.Events = append(plan.Events, hilos.FaultEvent{
					Kind: kind, Pipeline: int(pipe), Factor: kv["prob"],
				})
			} else {
				plan.TransientProb = kv["prob"]
			}
		case hilos.FaultWearOut:
			if hasPipe {
				plan.Events = append(plan.Events, hilos.FaultEvent{
					Kind: kind, Pipeline: int(pipe), BudgetBytes: kv["budget"],
				})
			} else {
				plan.WearBudgetBytes = kv["budget"]
			}
		}
	}
	return plan, nil
}

func allowedFaultKey(kind hilos.FaultKind, key string) bool {
	for _, k := range faultKeys[kind] {
		if k == key {
			return true
		}
	}
	return false
}

func knownSystem(sys hilos.System) bool {
	for _, s := range hilos.Systems() {
		if s == sys {
			return true
		}
	}
	return false
}

func joinSystems() string {
	var names []string
	for _, s := range hilos.Systems() {
		names = append(names, string(s))
	}
	return strings.Join(names, ", ")
}

// parsePolicies resolves -policy against the registered dispatch policies.
func parsePolicies(spec string) ([]hilos.DispatchPolicy, error) {
	if spec == "all" {
		return hilos.DispatchPolicies(), nil
	}
	for _, p := range hilos.DispatchPolicies() {
		if p == hilos.DispatchPolicy(spec) {
			return []hilos.DispatchPolicy{p}, nil
		}
	}
	var names []string
	for _, p := range hilos.DispatchPolicies() {
		names = append(names, string(p))
	}
	return nil, fmt.Errorf("unknown dispatch policy %q (known: %s, or \"all\")",
		spec, strings.Join(names, ", "))
}

// parseArrivals resolves -arrivals against the built-in processes.
func parseArrivals(spec string) (hilos.ArrivalProcess, error) {
	for _, p := range hilos.ArrivalProcesses() {
		if p == hilos.ArrivalProcess(spec) {
			return p, nil
		}
	}
	var names []string
	for _, p := range hilos.ArrivalProcesses() {
		names = append(names, string(p))
	}
	return "", fmt.Errorf("unknown arrival process %q (known: %s)",
		spec, strings.Join(names, ", "))
}

// parsePriorities turns "Short=1@15,Medium=0" into priority-class options.
func parsePriorities(spec string) ([]hilos.ClusterOption, error) {
	if spec == "" {
		return nil, nil
	}
	var rules []hilos.PriorityClass
	for _, term := range strings.Split(spec, ",") {
		term = strings.TrimSpace(term)
		if term == "" {
			continue
		}
		class, rest, ok := strings.Cut(term, "=")
		if !ok || class == "" {
			return nil, fmt.Errorf("bad priority term %q (want class=priority[@deadlineSec])", term)
		}
		prioStr, dlStr, hasDl := strings.Cut(rest, "@")
		prio, err := strconv.Atoi(prioStr)
		if err != nil || prio < 0 {
			return nil, fmt.Errorf("bad priority term %q: priority %q (want integer ≥ 0)", term, prioStr)
		}
		dl := 0.0
		if hasDl {
			if dl, err = strconv.ParseFloat(dlStr, 64); err != nil || dl < 0 {
				return nil, fmt.Errorf("bad priority term %q: deadline %q (want seconds ≥ 0)", term, dlStr)
			}
		}
		rules = append(rules, hilos.PriorityClass{Class: class, Priority: prio, DeadlineSec: dl})
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("empty priority spec")
	}
	return []hilos.ClusterOption{hilos.WithPriorityClasses(rules...)}, nil
}

func loadTrace(path string, seed int64, n int, rate float64, p hilos.ArrivalProcess) ([]hilos.TimedRequest, string, error) {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, "", err
		}
		defer f.Close()
		reqs, err := hilos.ReadArrivalTrace(f)
		return reqs, fmt.Sprintf("trace %s (%d requests)", path, len(reqs)), err
	}
	reqs, err := hilos.NewWorkloadTraceWithArrivals(seed, n, rate, p)
	return reqs, fmt.Sprintf("%d requests, %s %g req/s, seed %d", n, p, rate, seed), err
}

func printSummary(s hilos.ClusterSummary) {
	fmt.Printf("%-18s makespan %9.1fs  tok/s %8.1f  delay p50/p95/p99 %6.1f/%6.1f/%6.1fs",
		s.Policy, s.MakespanSec, s.Throughput(), s.DelayP50Sec, s.DelayP95Sec, s.DelayP99Sec)
	fmt.Printf("  cost $%.4f  energy %.1fkJ", s.TotalCostUSD, s.TotalEnergyJ/1e3)
	if s.RejectedJobs > 0 || s.FailedJobs > 0 {
		fmt.Printf("  rejected %d failed %d", s.RejectedJobs, s.FailedJobs)
	}
	if s.PreemptedJobs > 0 {
		fmt.Printf("  preempted %d", s.PreemptedJobs)
	}
	fmt.Println()
	if len(s.PerPriority) > 1 {
		for _, ps := range s.PerPriority {
			fmt.Printf("    prio %-2d %4d reqs  delay p50/p99 %6.1f/%6.1fs",
				ps.Priority, ps.Requests, ps.DelayP50Sec, ps.DelayP99Sec)
			if ps.DeadlineMisses > 0 {
				fmt.Printf("  missed %d deadlines", ps.DeadlineMisses)
			}
			if ps.PreemptedJobs > 0 {
				fmt.Printf("  preempted %d", ps.PreemptedJobs)
			}
			fmt.Println()
		}
	}
	for _, ps := range s.Pipelines {
		fmt.Printf("    %-16s %3d batches %4d jobs  busy %8.1fs  util %5.1f%%  $%.4f  %.1fkJ",
			ps.Name, ps.Batches, ps.Jobs, ps.BusySec, 100*ps.Utilization, ps.CostUSD, ps.EnergyJ/1e3)
		if ps.WriteBytes > 0 {
			fmt.Printf("  wrote %.1fGB", ps.WriteBytes/1e9)
			if ps.WearPct > 0 {
				fmt.Printf(" (%.4f%% PBW, %.0fMB/s)", ps.WearPct, ps.WritePressureBps/1e6)
			}
		}
		if ps.EnergyErr != "" {
			fmt.Printf("  (energy: %s)", ps.EnergyErr)
		}
		fmt.Println()
	}
	if s.TotalWriteBytes > 0 {
		fmt.Printf("    flash writes total %.1fGB\n", s.TotalWriteBytes/1e9)
	}
}

// printRobustness reports the recovery layer's accounting, ending with the
// job-conservation check scripts grep for: admitted work that neither
// completed nor failed terminally would be a lost job, and there are none.
func printRobustness(s hilos.ClusterSummary) {
	lost := s.Admitted - s.Completed - s.FailedJobs
	fmt.Printf("    robustness: faults %d  retried %d batches/%d jobs  failed-over %d/%d  quarantines %d  degraded %d/%d  lost %d jobs\n",
		s.FaultsInjected, s.RetriedBatches, s.RetriedJobs,
		s.FailedOverBatches, s.FailedOverJobs, s.Quarantines,
		s.DegradedBatches, s.DegradedJobs, lost)
	for _, ps := range s.Pipelines {
		if ps.Faults == 0 && ps.Quarantines == 0 && !ps.WearOut {
			continue
		}
		fmt.Printf("      %-16s faults %d  quarantines %d", ps.Name, ps.Faults, ps.Quarantines)
		if ps.WearOut {
			fmt.Print("  WORN OUT")
		}
		fmt.Println()
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "hilos-cluster:", err)
		os.Exit(1)
	}
}
